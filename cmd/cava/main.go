// Command cava is the AvA stack generator (Figure 2 of the paper).
//
// Given an annotated API specification, it generates the API-specific
// components of the remoting stack as a Go source file: the typed guest
// library and the API server dispatch scaffolding. With -infer it first
// runs the inference pass over bare declarations and (with -emit-spec)
// writes back the preliminary specification for the developer to refine.
//
// Usage:
//
//	cava -spec api.ava -pkg myapi -o gen.go        # generate the stack
//	cava -spec api.ava -infer -emit-spec           # preliminary spec
//	cava -spec api.ava -stats                      # developer-effort stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ava/internal/cava"
	"ava/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cava:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cava", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath = fs.String("spec", "", "path to the CAvA API specification (required)")
		pkg      = fs.String("pkg", "", "package name for generated code (default: API name)")
		out      = fs.String("o", "", "output file (default: stdout)")
		infer    = fs.Bool("infer", false, "run the inference pass over bare declarations first")
		emitSpec = fs.Bool("emit-spec", false, "print the canonical (optionally inferred) specification instead of code")
		stats    = fs.Bool("stats", false, "print developer-effort statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		fs.Usage()
		return fmt.Errorf("-spec is required")
	}
	src, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}

	api, err := spec.ParseNoValidate(string(src))
	if err != nil {
		return err
	}
	if *infer {
		for _, note := range spec.Infer(api) {
			fmt.Fprintln(stderr, "cava:", note)
		}
	}
	if err := spec.Validate(api); err != nil {
		return fmt.Errorf("specification does not validate (refine it, or run with -infer):\n%w", err)
	}

	if *emitSpec {
		return emit(*out, []byte(spec.Print(api)), stdout)
	}

	desc, err := cava.Compile(api)
	if err != nil {
		return err
	}
	code, st, err := cava.Generate(desc, string(src), cava.GenOptions{Package: *pkg})
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprintf(stderr, "cava: api %q: %d functions, %d spec lines -> %d generated lines (%.1fx)\n",
			st.API, st.Functions, st.SpecLines, st.GeneratedLines,
			float64(st.GeneratedLines)/float64(max(st.SpecLines, 1)))
	}
	return emit(*out, code, stdout)
}

func emit(path string, data []byte, stdout io.Writer) error {
	if path == "" {
		_, err := stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
