package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const bareSpec = `
handle dev;
const OK = 0;
type st = int32_t { success(OK); };
st devWrite(dev d, const uint8_t *data, size_t data_size);
`

func writeSpec(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "api.ava")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRequiresSpec(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err == nil {
		t.Fatal("no error without -spec")
	}
}

func TestRunEmitSpecWithInference(t *testing.T) {
	path := writeSpec(t, bareSpec)
	var out, errb bytes.Buffer
	if err := run([]string{"-spec", path, "-infer", "-emit-spec"}, &out, &errb); err != nil {
		t.Fatalf("%v\nstderr: %s", err, errb.String())
	}
	if !strings.Contains(out.String(), "buffer(data_size)") {
		t.Fatalf("inference missing from emitted spec:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "inferred") {
		t.Fatalf("no inference notes on stderr: %s", errb.String())
	}
}

func TestRunRejectsUnannotatedWithoutInfer(t *testing.T) {
	path := writeSpec(t, bareSpec)
	var out, errb bytes.Buffer
	err := run([]string{"-spec", path}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "does not validate") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunGeneratesToFile(t *testing.T) {
	path := writeSpec(t, bareSpec)
	outPath := filepath.Join(t.TempDir(), "gen.go")
	var out, errb bytes.Buffer
	if err := run([]string{"-spec", path, "-infer", "-pkg", "devapi", "-o", outPath, "-stats"}, &out, &errb); err != nil {
		t.Fatalf("%v\nstderr: %s", err, errb.String())
	}
	code, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package devapi", "func (c *Client) DevWrite(", "Implementation interface"} {
		if !strings.Contains(string(code), want) {
			t.Fatalf("generated code missing %q", want)
		}
	}
	if !strings.Contains(errb.String(), "generated lines") {
		t.Fatalf("stats missing: %s", errb.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-spec", "/no/such/file.ava"}, &out, &errb); err == nil {
		t.Fatal("missing file accepted")
	}
}
