// Command avactl inspects and controls a live AvA process over its HTTP
// control endpoint (internal/ctlplane, avad's -ctl flag).
//
// Usage:
//
//	avactl -host 127.0.0.1:7273 stats
//	avactl -host 127.0.0.1:7273 vms
//	avactl -host 127.0.0.1:7273 drain
//	avactl -host 127.0.0.1:7273 checkpoint 1
//	avactl -host 127.0.0.1:7273 migrate 1 gpu-host-b
//
// `stats` prints every section the process serves (router policy
// counters, live server byte/queue counters, guardian checkpoint state,
// fleet membership); `vms` prints the compact per-VM join. -json emits
// the raw endpoint payload for scripts. Control errors come back in the
// stack's categorized taxonomy and exit non-zero.
//
// Control (POST) commands against a daemon started with -ctl-token need
// the matching token, via -token or the AVACTL_TOKEN environment
// variable. Read-only commands never need one.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"text/tabwriter"
	"time"

	"ava/internal/ctlplane"
)

func main() {
	var (
		host    = flag.String("host", "127.0.0.1:7273", "control endpoint address (avad -ctl)")
		asJSON  = flag.Bool("json", false, "emit raw JSON instead of tables")
		timeout = flag.Duration("timeout", 10*time.Second, "request timeout")
		token   = flag.String("token", os.Getenv("AVACTL_TOKEN"), "shared token for control POSTs (default $AVACTL_TOKEN)")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}

	c := ctlplane.NewClient(*host)
	c.SetToken(*token)
	_ = timeout // the client's default timeout covers interactive use

	var err error
	switch cmd := flag.Arg(0); cmd {
	case "health":
		if err = c.Health(); err == nil {
			fmt.Println("ok")
		}
	case "stats":
		err = cmdStats(c, *asJSON)
	case "vms":
		err = cmdVMs(c, *asJSON)
	case "drain":
		if err = c.Drain(); err == nil {
			fmt.Println("draining")
		}
	case "checkpoint":
		var vm uint64
		if vm, err = vmArg(); err == nil {
			if err = c.Checkpoint(uint32(vm)); err == nil {
				fmt.Printf("checkpointed VM %d\n", vm)
			}
		}
	case "migrate":
		var vm uint64
		if vm, err = vmArg(); err == nil {
			target := flag.Arg(2)
			if err = c.Migrate(uint32(vm), target); err == nil {
				if target == "" {
					target = "lightest live peer"
				}
				fmt.Printf("migrating VM %d to %s\n", vm, target)
			}
		}
	case "sched":
		err = cmdSched(c, *asJSON)
	case "mirror":
		err = cmdMirror(c, *asJSON)
	case "rebalance":
		var n int
		if n, err = c.Rebalance(); err == nil {
			fmt.Printf("rebalance pass started %d migration(s)\n", n)
		}
	case "metrics":
		var body string
		if body, err = c.Metrics(); err == nil {
			fmt.Print(body)
		}
	default:
		fmt.Fprintf(os.Stderr, "avactl: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		report(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: avactl [-host addr] [-json] <command> [args]

commands:
  stats                  full telemetry snapshot
  vms                    compact per-VM table (router + server counters)
  drain                  begin a graceful drain of the process
  checkpoint <vm>        force a checkpoint of one VM now
  migrate <vm> [target]  move one VM (no target = lightest live peer)
  sched                  scheduling decision log (placements, migrations)
  mirror                 per-VM replication standing of a mirror host
  rebalance              force one rebalance evaluation pass now
  metrics                Prometheus exposition dump (GET /metrics)
  health                 liveness probe

flags:
`)
	flag.PrintDefaults()
}

func vmArg() (uint64, error) {
	if flag.NArg() < 2 {
		return 0, errors.New("avactl: missing <vm> argument")
	}
	vm, err := strconv.ParseUint(flag.Arg(1), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("avactl: bad vm %q: %v", flag.Arg(1), err)
	}
	return vm, nil
}

// report prints an error with its taxonomy, when it crossed the ctl
// boundary carrying one, and exits non-zero.
func report(err error) {
	var re *ctlplane.RemoteError
	if errors.As(err, &re) && re.Code != "" {
		fmt.Fprintf(os.Stderr, "avactl: %s (category=%s code=%s status=%s)\n",
			re.Msg, re.Category, re.Code, re.Status)
	} else {
		fmt.Fprintf(os.Stderr, "avactl: %v\n", err)
	}
	os.Exit(1)
}

func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func cmdStats(c *ctlplane.Client, asJSON bool) error {
	snap, err := c.Stats()
	if err != nil {
		return err
	}
	if asJSON {
		return emitJSON(snap)
	}
	fmt.Printf("%s", renderStats(snap))
	return nil
}

func renderStats(snap *ctlplane.Snapshot) string {
	out := fmt.Sprintf("service %s", snap.Ident.Service)
	if snap.Ident.ID != "" {
		out += " id " + snap.Ident.ID
	}
	if snap.Ident.API != "" {
		out += " api " + snap.Ident.API
	}
	if snap.Ident.Addr != "" {
		out += " addr " + snap.Ident.Addr
	}
	out += "\n"
	if r := snap.Router; r != nil {
		out += fmt.Sprintf("router: recent stall %v, shed threshold %v\n", r.RecentStall, r.ShedStallThreshold)
		for _, vm := range r.VMs {
			out += fmt.Sprintf("  vm %d (%s): forwarded=%d denied=%d shed=%d deadline-denied=%d stall=%v host=%q epoch=%d\n",
				vm.ID, vm.Name, vm.Stats.Forwarded, vm.Stats.Denied, vm.Stats.ShedDenied,
				vm.Stats.DeadlineDenied, vm.Stats.Stall, vm.Host, vm.Epoch)
			out += fmt.Sprintf("    band stall [0..3]: %v %v %v %v\n",
				vm.Stats.BandStall[0], vm.Stats.BandStall[1], vm.Stats.BandStall[2], vm.Stats.BandStall[3])
		}
	}
	for _, vm := range snap.Server {
		out += fmt.Sprintf("server vm %d (%s): calls=%d errors=%d queue=%d copied=%d borrowed=%d in=%d out=%d exec=%v\n",
			vm.VM, vm.Name, vm.Stats.Calls, vm.Stats.Errors, vm.QueueDepth,
			vm.Stats.BytesCopied, vm.Stats.BytesBorrowed, vm.Stats.BytesIn, vm.Stats.BytesOut, vm.Stats.ExecTime)
	}
	for _, g := range snap.Guests {
		out += fmt.Sprintf("guest vm %d: calls=%d copied=%d borrowed=%d overload-denied=%d\n",
			g.VM, g.Stats.Calls, g.Stats.BytesCopied, g.Stats.BytesBorrowed, g.Stats.OverloadDenied)
	}
	for _, g := range snap.Guardians {
		out += fmt.Sprintf("guardian vm %d: epoch=%d watermark=%d checkpoints=%d (delta %d, last %dB) recoveries=%d",
			g.VM, g.Epoch, g.Watermark, g.Stats.Checkpoints, g.Stats.DeltaCheckpoints,
			g.Stats.LastCkptBytes, g.Stats.Recoveries)
		if g.Dead != "" {
			out += " DEAD: " + g.Dead
		}
		out += "\n"
	}
	for _, m := range snap.Fleet {
		live := "live"
		if !m.Live {
			live = "expired"
		}
		out += fmt.Sprintf("fleet %s (%s): addr=%s load=%d %s\n", m.ID, m.API, m.Addr, m.Load, live)
	}
	return out
}

func cmdSched(c *ctlplane.Client, asJSON bool) error {
	ds, err := c.Sched()
	if err != nil {
		return err
	}
	if asJSON {
		return emitJSON(ds)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "SEQ\tTIME\tKIND\tVM\tFROM\tTO\tPOLICY\tREASON")
	for _, d := range ds {
		fmt.Fprintf(w, "%d\t%s\t%s\t%d\t%s\t%s\t%s\t%s\n",
			d.Seq, d.Time.Format(time.RFC3339), d.Kind, d.VM, d.From, d.To, d.Policy, d.Reason)
	}
	return w.Flush()
}

func cmdMirror(c *ctlplane.Client, asJSON bool) error {
	ms, err := c.Mirror()
	if err != nil {
		return err
	}
	if asJSON {
		return emitJSON(ms)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "VM\tNAME\tENTRIES\tWATERMARK\tEPOCH\tOBJECTS")
	for _, m := range ms {
		fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%d\n",
			m.VM, m.Name, m.Entries, m.W, m.Epoch, m.Objects)
	}
	return w.Flush()
}

func cmdVMs(c *ctlplane.Client, asJSON bool) error {
	rows, err := c.VMs()
	if err != nil {
		return err
	}
	if asJSON {
		return emitJSON(rows)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "VM\tNAME\tHOST\tEPOCH\tFWD\tDENIED\tSHED\tCALLS\tERRS\tQUEUE\tCOPIED\tBORROWED\tEXEC")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
			r.ID, r.Name, r.Host, r.Epoch, r.Forwarded, r.Denied, r.ShedDenied,
			r.Calls, r.Errors, r.QueueDepth, r.BytesCopied, r.BytesBorrowed, r.ExecTime)
	}
	return w.Flush()
}
