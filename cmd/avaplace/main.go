// Command avaplace is a placement probe: it attaches one VM through the
// admission-time placement path (internal/sched) against a live fleet
// registry, runs one trivial call against whichever avad the policy
// picked, and prints the scheduling decision. It is the smallest
// end-to-end proof that discovery, ranking and dialing agree — CI's
// sched_smoke.sh boots a registry and two avads and requires exactly one
// "place" decision from this probe.
//
// Usage:
//
//	avaplace -registry 127.0.0.1:7400
//	avaplace -registry 127.0.0.1:7400 -vm 7 -policy spread
//	avaplace -registry reg-a:7400,reg-b:7400   # quorum-read across replicas
//
// Placement is a guest-side act: the probe ranks the registry's live
// opencl hosts (least-load by default), dials the winner, and verifies
// the host actually serves calls before reporting. Exit is non-zero when
// no live host is reachable.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ava"
	"ava/internal/cl"
	"ava/internal/fleet"
	"ava/internal/sched"
	"ava/internal/server"
)

func main() {
	var (
		registry = flag.String("registry", "127.0.0.1:7400", "comma-separated fleet registry addresses (avaregd)")
		vm       = flag.Uint("vm", 1, "VM identity to place")
		name     = flag.String("name", "", "VM name (default: vm<id>)")
		policy   = flag.String("policy", "least-load", "placement policy: least-load or spread")
	)
	flag.Parse()
	if *name == "" {
		*name = fmt.Sprintf("vm%d", *vm)
	}

	var pol sched.Policy
	switch *policy {
	case "least-load":
		pol = sched.LeastLoad{}
	case "spread":
		pol = sched.NewSpreadByVMCount()
	default:
		log.Fatalf("avaplace: unknown policy %q (least-load, spread)", *policy)
	}

	// Any Locator flavor works here; several replicas quorum-merge.
	var loc fleet.Locator
	if addrs := strings.Split(*registry, ","); len(addrs) > 1 {
		loc = fleet.DialRegistries(addrs...)
	} else {
		loc = fleet.DialRegistry(*registry)
	}
	defer loc.(interface{ Close() }).Close()

	desc := cl.Descriptor()
	stack := ava.NewStack(desc, server.NewRegistry(desc),
		ava.WithPlacement(ava.PlacementConfig{
			Locator: loc,
			API:     "opencl",
			Policy:  pol,
		}))
	defer stack.Close()

	lib, err := stack.AttachVM(ava.VMConfig{ID: uint32(*vm), Name: *name})
	if err != nil {
		fmt.Fprintf(os.Stderr, "avaplace: attach: %v\n", err)
		os.Exit(1)
	}
	// Prove the placement serves, not just dials: one real call.
	if _, err := cl.NewRemote(lib).PlatformIDs(); err != nil {
		fmt.Fprintf(os.Stderr, "avaplace: probe call on %q failed: %v\n", stack.VMHost(uint32(*vm)), err)
		os.Exit(1)
	}
	for _, d := range stack.SchedDecisions() {
		fmt.Printf("decision %d: %s vm %d -> %s (policy %s, %s)\n",
			d.Seq, d.Kind, d.VM, d.To, d.Policy, d.Reason)
	}
	fmt.Printf("placed vm %d on %s\n", *vm, stack.VMHost(uint32(*vm)))
}
