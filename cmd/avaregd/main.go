// Command avaregd is the fleet registry daemon: the discovery service
// behind cross-host failover. avad instances announce themselves here
// (-announce on avad); registry-backed failover dialers query it for the
// best live peer when a serving host dies.
//
// Usage:
//
//	avaregd -listen 127.0.0.1:7400
//	avaregd -listen :7400 -ttl 5s
//
// The registry is soft state: members expire when their heartbeats stop,
// so a restarted avaregd repopulates within one announce interval and
// announcers redial transparently (fleet.Client). Nothing is persisted.
//
// With -ctl, avaregd serves the HTTP control endpoint (internal/ctlplane):
// GET /stats returns the registry's full admin table — every member with
// liveness, not just the live set a dialer queries — so
// `avactl stats -host <addr>` is the fleet-wide inspection entry point,
// and `avactl drain` stops the registry gracefully.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ava/internal/ctlplane"
	"ava/internal/fleet"
	"ava/internal/transport"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7400", "address to listen on")
		ttl      = flag.Duration("ttl", 0, "member liveness TTL (default: fleet.DefaultTTL)")
		sweep    = flag.Duration("sweep", time.Minute, "how often to reclaim expired members")
		ctl      = flag.String("ctl", "", "HTTP control/metrics endpoint address (empty = disabled)")
		ctlToken = flag.String("ctl-token", "", "shared token required on ctl POSTs (empty = open)")
	)
	flag.Parse()

	reg := fleet.NewRegistry(*ttl, nil)
	l, err := transport.Listen(*listen)
	if err != nil {
		log.Fatalf("avaregd: %v", err)
	}

	var cs *ctlplane.Server
	if *ctl != "" {
		cs = ctlplane.New(ctlplane.Config{
			Ident: ctlplane.Ident{Service: "avaregd", Addr: l.Addr()},
			Fleet: reg.Members,
			Drain: func() error {
				log.Printf("avaregd: ctl drain requested")
				l.Close()
				return nil
			},
			Token: *ctlToken,
		})
		ctlAddr, err := cs.Start(*ctl)
		if err != nil {
			log.Fatalf("avaregd: %v", err)
		}
		log.Printf("avaregd: ctl listening on %s", ctlAddr)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sigs
		log.Printf("avaregd: %v: shutting down", s)
		l.Close()
	}()

	// Queries already ignore expired members; the sweep just reclaims
	// table space so a long-lived registry doesn't accrete dead entries.
	go func() {
		for {
			time.Sleep(*sweep)
			if n := reg.Expire(); n > 0 {
				log.Printf("avaregd: reclaimed %d expired member(s)", n)
			}
		}
	}()

	log.Printf("avaregd: serving fleet registry on %s", l.Addr())
	fleet.Serve(l, reg)
	if cs != nil {
		cs.Close()
	}
	log.Printf("avaregd: shut down cleanly")
}
