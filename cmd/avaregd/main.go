// Command avaregd is the fleet registry daemon: the discovery service
// behind cross-host failover. avad instances announce themselves here
// (-announce on avad); registry-backed failover dialers query it for the
// best live peer when a serving host dies.
//
// Usage:
//
//	avaregd -listen 127.0.0.1:7400
//	avaregd -listen :7400 -ttl 5s
//
// The registry is soft state: members expire when their heartbeats stop,
// so a restarted avaregd repopulates within one announce interval and
// announcers redial transparently (fleet.Client). Nothing is persisted.
//
// For an HA control plane, run several registries and point each at the
// others with -peers (avaregd -listen :7400 -peers reg-b:7400,reg-c:7400):
// each pushes its full member table to its peers on a timer, merged
// last-write-wins by announce time with TTL'd tombstones, so an announce
// that reached any one replica reaches all of them within a gossip
// interval. Announcers name every replica (avad -announce a:7400,b:7400)
// and dialers quorum-read through fleet.MultiClient.
//
// With -ctl, avaregd serves the HTTP control endpoint (internal/ctlplane):
// GET /stats returns the registry's full admin table — every member with
// liveness, not just the live set a dialer queries — so
// `avactl stats -host <addr>` is the fleet-wide inspection entry point,
// and `avactl drain` stops the registry gracefully.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ava/internal/ctlplane"
	"ava/internal/fleet"
	"ava/internal/transport"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7400", "address to listen on")
		ttl      = flag.Duration("ttl", 0, "member liveness TTL (default: fleet.DefaultTTL)")
		sweep    = flag.Duration("sweep", time.Minute, "how often to reclaim expired members")
		ctl      = flag.String("ctl", "", "HTTP control/metrics endpoint address (empty = disabled)")
		ctlToken = flag.String("ctl-token", "", "shared token required on ctl POSTs (empty = open)")
		peers    = flag.String("peers", "", "comma-separated peer registry addresses to gossip the member table to")
		gossipEv = flag.Duration("gossip-every", 0, "gossip push interval (default: fleet TTL/4)")
	)
	flag.Parse()

	reg := fleet.NewRegistry(*ttl, nil)
	l, err := transport.Listen(*listen)
	if err != nil {
		log.Fatalf("avaregd: %v", err)
	}

	var gossiper *fleet.Gossiper
	if *peers != "" {
		var gps []fleet.GossipPeer
		var named []string
		for _, a := range strings.Split(*peers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				gps = append(gps, fleet.DialRegistry(a))
				named = append(named, a)
			}
		}
		if len(gps) > 0 {
			gossiper = fleet.StartGossip(reg, gps, *gossipEv, nil)
			log.Printf("avaregd: gossiping member table to %d peer(s): %s", len(gps), strings.Join(named, ", "))
		}
	}

	var cs *ctlplane.Server
	if *ctl != "" {
		cs = ctlplane.New(ctlplane.Config{
			Ident: ctlplane.Ident{Service: "avaregd", Addr: l.Addr()},
			Fleet: reg.Members,
			Drain: func() error {
				log.Printf("avaregd: ctl drain requested")
				l.Close()
				return nil
			},
			Token: *ctlToken,
		})
		ctlAddr, err := cs.Start(*ctl)
		if err != nil {
			log.Fatalf("avaregd: %v", err)
		}
		log.Printf("avaregd: ctl listening on %s", ctlAddr)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sigs
		log.Printf("avaregd: %v: shutting down", s)
		l.Close()
	}()

	// Queries already ignore expired members; the sweep just reclaims
	// table space so a long-lived registry doesn't accrete dead entries.
	go func() {
		for {
			time.Sleep(*sweep)
			if n := reg.Expire(); n > 0 {
				log.Printf("avaregd: reclaimed %d expired member(s)", n)
			}
		}
	}()

	log.Printf("avaregd: serving fleet registry on %s", l.Addr())
	fleet.Serve(l, reg)
	if gossiper != nil {
		gossiper.Close()
	}
	if cs != nil {
		cs.Close()
	}
	log.Printf("avaregd: shut down cleanly")
}
