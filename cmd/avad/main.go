// Command avad is the standalone AvA API server: an unprivileged process
// that executes forwarded accelerator API calls over TCP. Pointing a
// router at a remote avad yields the disaggregated-accelerator
// configuration of §4.1 (LegoOS-style), with the accelerator on a machine
// the guest never sees.
//
// Usage:
//
//	avad -listen 127.0.0.1:7272 -api opencl
//	avad -listen :7272 -api mvnc -sticks 2
//	avad -listen :7272 -api opencl -announce 127.0.0.1:7400 -id gpu-host-a
//
// Each accepted connection serves one VM. The connection opens with a
// hello preamble (transport.EncodeHello): the VM identifier, optionally
// followed by the endpoint epoch and VM name — a bare legacy [vm][name]
// preamble is still accepted.
//
// With -announce, avad registers itself with a fleet registry (cmd/avaregd
// or an in-process fleet.Registry served over TCP) and heartbeats until
// shutdown, making it a failover target for guardians using a registry-
// backed dialer. Several registries may be named comma-separated
// (-announce reg-a:7400,reg-b:7400): announces fan out to every replica
// and reads quorum-merge (fleet.MultiClient), so losing any single
// registry is invisible. On SIGTERM or SIGINT avad shuts down gracefully: it stops
// accepting, deregisters from the fleet, drains in-flight connections
// under the -drain budget, and closes stragglers in order — guests observe
// an orderly end-of-stream, never a sever.
//
// With -ctl, avad serves the HTTP control/metrics endpoint
// (internal/ctlplane) on the given address — conventionally :7273 — so
// `avactl stats -host <addr>` reads live per-VM counters and
// `avactl drain` triggers the same graceful sequence as SIGTERM. The
// counters are read from the live server contexts, so a connection that
// dies severed (guest crash, network partition) keeps its byte counters
// visible; they are not lost the way a log-at-disconnect-only scheme
// would lose them on SIGKILL.
//
// With -mirror, avad additionally serves a replication mirror host
// (failover.MirrorServer) on the given address: remote guardians stream
// their shadow logs here (ava.WithRemoteMirror), and a replacement
// guardian on any machine rehydrates with failover.FetchMirrorState. The
// per-VM replication standing appears on the ctl endpoint as GET /mirror.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"ava/internal/cl"
	"ava/internal/ctlplane"
	"ava/internal/devsim"
	"ava/internal/failover"
	"ava/internal/fleet"
	"ava/internal/mvnc"
	"ava/internal/qat"
	"ava/internal/sched"
	"ava/internal/server"
	"ava/internal/swap"
	"ava/internal/transport"
)

// rejectTTL is how long an evicted VM's reconnects are refused: long
// enough for its guardian to spend the same-host retry budget and land on
// a peer, short enough that the VM stays schedulable here afterwards.
const rejectTTL = 30 * time.Second

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7272", "address to listen on")
		api      = flag.String("api", "opencl", "API to serve: opencl, mvnc or qat")
		memMB    = flag.Uint64("mem", 4096, "device memory in MiB (opencl)")
		cus      = flag.Int("cus", 8, "compute units (opencl)")
		sticks   = flag.Int("sticks", 1, "device count (mvnc sticks / qat engines)")
		withSwap = flag.Bool("swap", true, "enable buffer-granularity memory swapping (opencl)")

		announce  = flag.String("announce", "", "comma-separated fleet registry addresses to announce to (empty = standalone)")
		id        = flag.String("id", "", "fleet member identity (default: the advertised address)")
		advertise = flag.String("advertise", "", "address peers dial for this host (default: the bound listen address)")
		every     = flag.Duration("announce-every", 0, "heartbeat interval (default: fleet TTL/4)")
		drain     = flag.Duration("drain", 5*time.Second, "in-flight drain budget on SIGTERM/SIGINT")
		ctl       = flag.String("ctl", "", "HTTP control/metrics endpoint address, e.g. :7273 (empty = disabled)")
		ctlToken  = flag.String("ctl-token", "", "shared token required on ctl POSTs (empty = open)")
		mirror    = flag.String("mirror", "", "serve a replication mirror host on this address (empty = disabled)")

		rebalance = flag.Bool("rebalance", false, "shed sustained load skew by evicting VMs toward lighter fleet peers (requires -announce)")
		rebEvery  = flag.Duration("rebalance-interval", 2*time.Second, "rebalance evaluation interval")
		rebSkew   = flag.Float64("rebalance-skew", 1.5, "load-EWMA-over-fleet-mean ratio that marks this host hot")
		rebMax    = flag.Int("rebalance-max", 4, "migration budget per sliding window")
	)
	flag.Parse()

	reg, err := buildRegistry(*api, *memMB, *cus, *sticks, *withSwap)
	if err != nil {
		fmt.Fprintf(os.Stderr, "avad: %v\n", err)
		os.Exit(2)
	}

	l, err := transport.Listen(*listen)
	if err != nil {
		log.Fatalf("avad: %v", err)
	}
	d := newDaemon(server.New(reg), *drain)

	memberID := ""
	if *announce != "" {
		addr := *advertise
		if addr == "" {
			addr = l.Addr()
		}
		member := fleet.Member{ID: *id, Addr: addr, API: *api}
		if member.ID == "" {
			member.ID = addr
		}
		addrs := splitAddrs(*announce)
		var loc fleet.Locator
		if len(addrs) == 1 {
			loc = fleet.DialRegistry(addrs[0])
		} else {
			loc = fleet.DialRegistries(addrs...)
		}
		d.announcer = fleet.StartAnnouncer(loc, member, *every, nil)
		d.announcer.SetSampler(d.sampleLoad)
		d.registry = loc
		memberID = member.ID
		log.Printf("avad: announcing %s (%s) to %d fleet registr%s (%s)",
			member.ID, member.Addr, len(addrs), plural(len(addrs), "y", "ies"), *announce)
	}

	if *mirror != "" {
		ml, err := transport.Listen(*mirror)
		if err != nil {
			log.Fatalf("avad: mirror listen: %v", err)
		}
		d.mirror = failover.NewMirrorServer()
		d.mirrorL = ml
		go d.mirror.Serve(ml)
		log.Printf("avad: mirror host serving on %s", ml.Addr())
	}

	if *rebalance {
		if d.registry == nil {
			fmt.Fprintln(os.Stderr, "avad: -rebalance requires -announce")
			os.Exit(2)
		}
		d.schedLog = sched.NewLog()
		d.rebalancer = sched.New(sched.Config{
			Interval:     *rebEvery,
			SkewRatio:    *rebSkew,
			MaxPerWindow: *rebMax,
			From:         memberID,
			Log:          d.schedLog,
		}, d.hostLoads(*api, memberID), d.evictVM)
		d.rebalancer.Start()
		log.Printf("avad: rebalancing enabled (interval %v, skew %.2f, max %d/window)", *rebEvery, *rebSkew, *rebMax)
	}

	var cs *ctlplane.Server
	if *ctl != "" {
		cfg := d.ctlConfig(*api, memberID, l)
		cfg.Token = *ctlToken
		cs = ctlplane.New(cfg)
		ctlAddr, err := cs.Start(*ctl)
		if err != nil {
			log.Fatalf("avad: %v", err)
		}
		log.Printf("avad: ctl listening on %s", ctlAddr)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sigs
		log.Printf("avad: %v: draining (budget %v)", s, *drain)
		d.Shutdown(l)
	}()

	log.Printf("avad: serving %s on %s", *api, l.Addr())
	d.Serve(l)
	d.Wait()
	if cs != nil {
		// Closed after the drain completes, so a drain acknowledgement
		// flushes and final counters stay scrapeable to the very end.
		cs.Close()
	}
	log.Printf("avad: shut down cleanly")
}

// ctlConfig wires the control endpoint over the daemon's live state: the
// server's per-VM contexts (counters survive severed links — they live in
// the context, not the connection), the fleet's live peer view when
// announced, and a drain hook running the same graceful sequence as
// SIGTERM.
func (d *daemon) ctlConfig(api, memberID string, l *transport.Listener) ctlplane.Config {
	cfg := ctlplane.Config{
		Ident:  ctlplane.Ident{Service: "avad", ID: memberID, API: api, Addr: l.Addr()},
		Server: ctlplane.ServerSource(d.srv),
		Drain: func() error {
			log.Printf("avad: ctl drain requested (budget %v)", d.drain)
			d.Shutdown(l)
			return nil
		},
	}
	if d.registry != nil {
		cfg.Fleet = func() []fleet.Status {
			ms, err := d.registry.Live(api)
			if err != nil {
				return nil
			}
			out := make([]fleet.Status, len(ms))
			for i, m := range ms {
				out[i] = fleet.Status{Member: m, Live: true}
			}
			return out
		}
	}
	if d.rebalancer != nil {
		cfg.Sched = d.schedLog.Decisions
		cfg.Rebalance = func() (int, error) { return d.rebalancer.Kick(), nil }
		cfg.RebalanceStats = d.rebalancer.Stats
	}
	if d.mirror != nil {
		cfg.Mirror = d.mirror.Snapshot
	}
	return cfg
}

// splitAddrs parses a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// buildRegistry assembles the silo and handler registry for one API. The
// OpenCL registry carries an object restorer so a guardian failing over
// from another host can replay mirrored object state into this server
// (marshal.FuncRestore).
func buildRegistry(api string, memMB uint64, cus, sticks int, withSwap bool) (*server.Registry, error) {
	switch api {
	case "opencl":
		reg := server.NewRegistry(cl.Descriptor())
		silo := cl.NewSilo(cl.Config{
			Devices: []devsim.Config{{
				Name:         "avad-gpu0",
				MemoryBytes:  memMB << 20,
				ComputeUnits: cus,
			}},
		})
		cl.BindServer(reg, silo)
		reg.Restorer = cl.MigrationAdapter{Silo: silo}
		if withSwap {
			swap.NewManager(silo).Install(reg)
		}
		return reg, nil
	case "mvnc":
		reg := server.NewRegistry(mvnc.Descriptor())
		mvnc.BindServer(reg, mvnc.NewSilo(mvnc.Config{Sticks: sticks}))
		return reg, nil
	case "qat":
		reg := server.NewRegistry(qat.Descriptor())
		qat.BindServer(reg, qat.NewSilo(sticks))
		return reg, nil
	default:
		return nil, fmt.Errorf("unknown -api %q (opencl, mvnc, qat)", api)
	}
}

// daemon tracks the serving state a graceful shutdown must settle: the
// set of live connections and a waitgroup over their serve loops.
type daemon struct {
	srv        *server.Server
	drain      time.Duration
	announcer  *fleet.Announcer
	registry   fleet.Locator
	rebalancer *sched.Rebalancer
	schedLog   *sched.Log
	mirror     *failover.MirrorServer
	mirrorL    *transport.Listener

	mu        sync.Mutex
	conns     map[transport.Endpoint]struct{}
	vms       map[uint32]transport.Endpoint // latest serving connection per VM
	rejected  map[uint32]time.Time          // VM -> eviction instant; refused for rejectTTL after it
	prevBytes uint64                        // data-plane bytes at the last load sample
	closed    bool

	active   sync.WaitGroup
	shutOnce sync.Once
	done     chan struct{}
}

func newDaemon(srv *server.Server, drain time.Duration) *daemon {
	return &daemon{
		srv:      srv,
		drain:    drain,
		conns:    make(map[transport.Endpoint]struct{}),
		vms:      make(map[uint32]transport.Endpoint),
		rejected: make(map[uint32]time.Time),
		done:     make(chan struct{}),
	}
}

// sampleLoad refreshes the announced load signal in place (announcer
// sampler): active VM connections, the summed dispatch backlog, and
// data-plane bytes moved since the previous sample.
func (d *daemon) sampleLoad(m *fleet.Member) {
	d.mu.Lock()
	m.Load = len(d.vms)
	d.mu.Unlock()
	var queue int
	var bytes uint64
	for _, vm := range d.srv.Snapshot() {
		queue += vm.QueueDepth
		bytes += vm.Stats.BytesIn + vm.Stats.BytesOut
	}
	m.QueueDepth = queue
	d.mu.Lock()
	if bytes >= d.prevBytes {
		m.BytesInFlight = bytes - d.prevBytes
	}
	d.prevBytes = bytes
	d.mu.Unlock()
}

// hostLoads builds the self-evict rebalancer's load source: the fleet's
// announced view, with this host's member joined to the VMs it serves.
// Peers' VM lists stay empty — the From restriction means only the local
// host ever sheds, and announced loads alone rank the targets.
func (d *daemon) hostLoads(api, selfID string) func() []sched.HostLoad {
	return func() []sched.HostLoad {
		ms, err := d.registry.Live(api)
		if err != nil {
			return nil
		}
		d.mu.Lock()
		local := make([]uint32, 0, len(d.vms))
		for vm := range d.vms {
			local = append(local, vm)
		}
		d.mu.Unlock()
		sort.Slice(local, func(i, j int) bool { return local[i] < local[j] })
		out := make([]sched.HostLoad, 0, len(ms))
		for _, m := range ms {
			hl := sched.HostLoad{Member: m}
			if m.ID == selfID {
				hl.VMs = local
			}
			out = append(out, hl)
		}
		return out
	}
}

// evictVM is the self-evict migration hook: refuse the VM's reconnects
// for rejectTTL, sever its serving connection so the guardian recovers
// cross-host (wire replay onto whichever lighter peer its dialer picks —
// target is advisory; the guest-side ranking makes the final call), and
// push the lightened load immediately so admission-time placement stops
// steering new VMs here.
func (d *daemon) evictVM(vm uint32, target string) error {
	d.mu.Lock()
	ep, ok := d.vms[vm]
	if ok {
		d.rejected[vm] = time.Now()
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("vm %d not connected", vm)
	}
	log.Printf("avad: evicting VM %d (advisory target %q)", vm, target)
	transport.Sever(ep)
	// Push the lightened load now rather than when the severed serveConn
	// unwinds: placement must stop steering new VMs here the moment the
	// eviction is decided, even if the old connection is slow to die.
	d.announceNow()
	return nil
}

// rejectedVM reports whether a VM is inside its post-eviction refusal
// window and how long ago it was evicted, pruning expired entries.
func (d *daemon) rejectedVM(vm uint32) (time.Duration, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	at, ok := d.rejected[vm]
	if !ok {
		return 0, false
	}
	age := time.Since(at)
	if age > rejectTTL {
		delete(d.rejected, vm)
		return 0, false
	}
	return age, true
}

// bindVM records the serving connection for a VM; the bool reports
// whether the binding was installed (false = VM currently rejected).
func (d *daemon) bindVM(vm uint32, ep transport.Endpoint) bool {
	if _, rejected := d.rejectedVM(vm); rejected {
		return false
	}
	d.mu.Lock()
	d.vms[vm] = ep
	d.mu.Unlock()
	return true
}

func (d *daemon) unbindVM(vm uint32, ep transport.Endpoint) {
	d.mu.Lock()
	if d.vms[vm] == ep {
		delete(d.vms, vm)
	}
	d.mu.Unlock()
}

// announceNow pushes the current load signal immediately — called when a
// VM disconnects (migrated away, crashed, drained) so placement decisions
// never steer against the stale pre-departure load.
func (d *daemon) announceNow() {
	if d.announcer != nil {
		d.announcer.AnnounceNow()
	}
}

// Serve accepts connections until the listener closes (shutdown or error).
func (d *daemon) Serve(l *transport.Listener) {
	for {
		ep, err := l.Accept()
		if err != nil {
			return
		}
		if !d.track(ep) {
			ep.Close() // raced shutdown: refuse, do not serve
			continue
		}
		go func() {
			defer d.active.Done()
			defer d.untrack(ep)
			d.serveConn(ep)
		}()
	}
}

func (d *daemon) track(ep transport.Endpoint) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	d.conns[ep] = struct{}{}
	d.active.Add(1)
	return true
}

func (d *daemon) untrack(ep transport.Endpoint) {
	d.mu.Lock()
	delete(d.conns, ep)
	d.mu.Unlock()
}

// Shutdown runs the graceful sequence: stop accepting, leave the fleet so
// no guardian is steered here, wait out in-flight connections under the
// drain budget, then orderly-close stragglers (guests see ErrClosed /
// end-of-stream, never ErrSevered — a drain is not a crash).
func (d *daemon) Shutdown(l *transport.Listener) {
	d.shutOnce.Do(func() {
		if l != nil {
			l.Close()
		}
		if d.rebalancer != nil {
			d.rebalancer.Close()
		}
		if d.announcer != nil {
			d.announcer.Close()
		}
		if c, ok := d.registry.(interface{ Close() }); ok {
			c.Close()
		}
		if d.mirrorL != nil {
			d.mirrorL.Close()
		}
		d.mu.Lock()
		d.closed = true
		d.mu.Unlock()

		go func() {
			defer close(d.done)
			drained := make(chan struct{})
			go func() {
				d.active.Wait()
				close(drained)
			}()
			select {
			case <-drained:
				return
			case <-time.After(d.drain):
			}
			d.mu.Lock()
			n := len(d.conns)
			for ep := range d.conns {
				ep.Close()
			}
			d.mu.Unlock()
			if n > 0 {
				log.Printf("avad: drain budget spent, closed %d lingering connection(s)", n)
			}
			<-drained
		}()
	})
}

// Wait blocks until a Shutdown completes its drain.
func (d *daemon) Wait() {
	d.Shutdown(nil) // no-op if a signal already started it; covers Accept errors
	<-d.done
}

// serveConn reads the VM-identification hello preamble and runs the serve
// loop. The preamble is either the legacy [vm u32][name] form or the
// extended form carrying the guardian's endpoint epoch (transport.Hello),
// which a failover dial stamps so logs tie a connection to the recovery
// generation that produced it.
func (d *daemon) serveConn(ep transport.Endpoint) {
	defer ep.Close()
	frame, err := ep.Recv()
	if err != nil {
		return
	}
	h, err := transport.DecodeHello(frame)
	if err != nil {
		log.Printf("avad: bad hello: %v", err)
		return
	}
	name := h.Name
	if name == "" {
		name = fmt.Sprintf("tcp-vm%d", h.VM)
	}
	if !d.bindVM(h.VM, ep) {
		// Freshly evicted: refuse — with an explicit reject ack for
		// dialers that asked for one, so the rejection is a dial *failure*
		// that spends the guardian's per-host budget and moves it to a
		// peer, instead of a silent connect-then-sever it retries forever.
		age, _ := d.rejectedVM(h.VM)
		log.Printf("avad: VM %d refused (evicted %v ago)", h.VM, age.Round(time.Millisecond))
		transport.AckHello(ep, h, false, fmt.Sprintf("vm %d evicted %v ago, rebalancing", h.VM, age.Round(time.Millisecond)))
		return
	}
	defer d.unbindVM(h.VM, ep)
	defer d.announceNow()
	if err := transport.AckHello(ep, h, true, ""); err != nil {
		return
	}
	ctx := d.srv.Context(h.VM, name)
	log.Printf("avad: VM %d (%s) connected, epoch %d", h.VM, name, h.Epoch)
	// The stats summary is emitted however the connection ends — orderly
	// end-of-stream, severed mid-flight, or protocol error — and tagged
	// with the reason, so a SIGKILL'd guest's byte counters land in the
	// log as well as staying live on the ctl endpoint (the counters
	// belong to the server context, which outlives the connection).
	reason := "orderly"
	if err := d.srv.ServeVM(ctx, ep); err != nil {
		if errors.Is(err, transport.ErrSevered) {
			reason = "severed"
		} else {
			reason = "error"
		}
		log.Printf("avad: VM %d: %v", h.VM, err)
	}
	st := ctx.Stats()
	log.Printf("avad: VM %d stats: calls=%d (async %d, errors %d, replays %d) bytes in=%d out=%d copied=%d borrowed=%d exec=%v",
		h.VM, st.Calls, st.AsyncCalls, st.Errors, st.Replays,
		st.BytesIn, st.BytesOut, st.BytesCopied, st.BytesBorrowed, st.ExecTime)
	log.Printf("avad: VM %d disconnected (%s)", h.VM, reason)
}
