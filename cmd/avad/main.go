// Command avad is the standalone AvA API server: an unprivileged process
// that executes forwarded accelerator API calls over TCP. Pointing a
// router at a remote avad yields the disaggregated-accelerator
// configuration of §4.1 (LegoOS-style), with the accelerator on a machine
// the guest never sees.
//
// Usage:
//
//	avad -listen 127.0.0.1:7272 -api opencl
//	avad -listen :7272 -api mvnc -sticks 2
//
// Each accepted connection serves one VM; the first 4 bytes of the
// connection are the VM identifier.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"ava/internal/cl"
	"ava/internal/devsim"
	"ava/internal/mvnc"
	"ava/internal/qat"
	"ava/internal/server"
	"ava/internal/swap"
	"ava/internal/transport"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7272", "address to listen on")
		api      = flag.String("api", "opencl", "API to serve: opencl or mvnc")
		memMB    = flag.Uint64("mem", 4096, "device memory in MiB (opencl)")
		cus      = flag.Int("cus", 8, "compute units (opencl)")
		sticks   = flag.Int("sticks", 1, "device count (mvnc sticks / qat engines)")
		withSwap = flag.Bool("swap", true, "enable buffer-granularity memory swapping (opencl)")
	)
	flag.Parse()

	var reg *server.Registry
	switch *api {
	case "opencl":
		desc := cl.Descriptor()
		reg = server.NewRegistry(desc)
		silo := cl.NewSilo(cl.Config{
			Devices: []devsim.Config{{
				Name:         "avad-gpu0",
				MemoryBytes:  *memMB << 20,
				ComputeUnits: *cus,
			}},
		})
		cl.BindServer(reg, silo)
		if *withSwap {
			swap.NewManager(silo).Install(reg)
		}
	case "mvnc":
		desc := mvnc.Descriptor()
		reg = server.NewRegistry(desc)
		mvnc.BindServer(reg, mvnc.NewSilo(mvnc.Config{Sticks: *sticks}))
	case "qat":
		desc := qat.Descriptor()
		reg = server.NewRegistry(desc)
		qat.BindServer(reg, qat.NewSilo(*sticks))
	default:
		fmt.Fprintf(os.Stderr, "avad: unknown -api %q (opencl, mvnc, qat)\n", *api)
		os.Exit(2)
	}

	srv := server.New(reg)
	l, err := transport.Listen(*listen)
	if err != nil {
		log.Fatalf("avad: %v", err)
	}
	log.Printf("avad: serving %s on %s", *api, l.Addr())
	for {
		ep, err := l.Accept()
		if err != nil {
			log.Printf("avad: accept: %v", err)
			return
		}
		go serveConn(srv, ep)
	}
}

// serveConn reads the VM-identification preamble and runs the serve loop.
func serveConn(srv *server.Server, ep transport.Endpoint) {
	defer ep.Close()
	hello, err := ep.Recv()
	if err != nil || len(hello) < 4 {
		if err != io.EOF {
			log.Printf("avad: bad hello: %v", err)
		}
		return
	}
	vm := binary.LittleEndian.Uint32(hello)
	name := fmt.Sprintf("tcp-vm%d", vm)
	if len(hello) > 4 {
		name = string(hello[4:])
	}
	ctx := srv.Context(vm, name)
	log.Printf("avad: VM %d (%s) connected", vm, name)
	if err := srv.ServeVM(ctx, ep); err != nil {
		log.Printf("avad: VM %d: %v", vm, err)
	}
	log.Printf("avad: VM %d disconnected", vm)
}
