// Command avad is the standalone AvA API server: an unprivileged process
// that executes forwarded accelerator API calls over TCP. Pointing a
// router at a remote avad yields the disaggregated-accelerator
// configuration of §4.1 (LegoOS-style), with the accelerator on a machine
// the guest never sees.
//
// Usage:
//
//	avad -listen 127.0.0.1:7272 -api opencl
//	avad -listen :7272 -api mvnc -sticks 2
//	avad -listen :7272 -api opencl -announce 127.0.0.1:7400 -id gpu-host-a
//
// Each accepted connection serves one VM. The connection opens with a
// hello preamble (transport.EncodeHello): the VM identifier, optionally
// followed by the endpoint epoch and VM name — a bare legacy [vm][name]
// preamble is still accepted.
//
// With -announce, avad registers itself with a fleet registry (cmd/avaregd
// or an in-process fleet.Registry served over TCP) and heartbeats until
// shutdown, making it a failover target for guardians using a registry-
// backed dialer. On SIGTERM or SIGINT avad shuts down gracefully: it stops
// accepting, deregisters from the fleet, drains in-flight connections
// under the -drain budget, and closes stragglers in order — guests observe
// an orderly end-of-stream, never a sever.
//
// With -ctl, avad serves the HTTP control/metrics endpoint
// (internal/ctlplane) on the given address — conventionally :7273 — so
// `avactl stats -host <addr>` reads live per-VM counters and
// `avactl drain` triggers the same graceful sequence as SIGTERM. The
// counters are read from the live server contexts, so a connection that
// dies severed (guest crash, network partition) keeps its byte counters
// visible; they are not lost the way a log-at-disconnect-only scheme
// would lose them on SIGKILL.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"ava/internal/cl"
	"ava/internal/ctlplane"
	"ava/internal/devsim"
	"ava/internal/fleet"
	"ava/internal/mvnc"
	"ava/internal/qat"
	"ava/internal/server"
	"ava/internal/swap"
	"ava/internal/transport"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7272", "address to listen on")
		api      = flag.String("api", "opencl", "API to serve: opencl, mvnc or qat")
		memMB    = flag.Uint64("mem", 4096, "device memory in MiB (opencl)")
		cus      = flag.Int("cus", 8, "compute units (opencl)")
		sticks   = flag.Int("sticks", 1, "device count (mvnc sticks / qat engines)")
		withSwap = flag.Bool("swap", true, "enable buffer-granularity memory swapping (opencl)")

		announce  = flag.String("announce", "", "fleet registry address to announce to (empty = standalone)")
		id        = flag.String("id", "", "fleet member identity (default: the advertised address)")
		advertise = flag.String("advertise", "", "address peers dial for this host (default: the bound listen address)")
		every     = flag.Duration("announce-every", 0, "heartbeat interval (default: fleet TTL/4)")
		drain     = flag.Duration("drain", 5*time.Second, "in-flight drain budget on SIGTERM/SIGINT")
		ctl       = flag.String("ctl", "", "HTTP control/metrics endpoint address, e.g. :7273 (empty = disabled)")
	)
	flag.Parse()

	reg, err := buildRegistry(*api, *memMB, *cus, *sticks, *withSwap)
	if err != nil {
		fmt.Fprintf(os.Stderr, "avad: %v\n", err)
		os.Exit(2)
	}

	l, err := transport.Listen(*listen)
	if err != nil {
		log.Fatalf("avad: %v", err)
	}
	d := newDaemon(server.New(reg), *drain)

	memberID := ""
	if *announce != "" {
		addr := *advertise
		if addr == "" {
			addr = l.Addr()
		}
		member := fleet.Member{ID: *id, Addr: addr, API: *api}
		if member.ID == "" {
			member.ID = addr
		}
		client := fleet.DialRegistry(*announce)
		d.announcer = fleet.StartAnnouncer(client, member, *every, nil)
		d.registry = client
		memberID = member.ID
		log.Printf("avad: announcing %s (%s) to fleet registry %s", member.ID, member.Addr, *announce)
	}

	var cs *ctlplane.Server
	if *ctl != "" {
		cs = ctlplane.New(d.ctlConfig(*api, memberID, l))
		ctlAddr, err := cs.Start(*ctl)
		if err != nil {
			log.Fatalf("avad: %v", err)
		}
		log.Printf("avad: ctl listening on %s", ctlAddr)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sigs
		log.Printf("avad: %v: draining (budget %v)", s, *drain)
		d.Shutdown(l)
	}()

	log.Printf("avad: serving %s on %s", *api, l.Addr())
	d.Serve(l)
	d.Wait()
	if cs != nil {
		// Closed after the drain completes, so a drain acknowledgement
		// flushes and final counters stay scrapeable to the very end.
		cs.Close()
	}
	log.Printf("avad: shut down cleanly")
}

// ctlConfig wires the control endpoint over the daemon's live state: the
// server's per-VM contexts (counters survive severed links — they live in
// the context, not the connection), the fleet's live peer view when
// announced, and a drain hook running the same graceful sequence as
// SIGTERM.
func (d *daemon) ctlConfig(api, memberID string, l *transport.Listener) ctlplane.Config {
	cfg := ctlplane.Config{
		Ident:  ctlplane.Ident{Service: "avad", ID: memberID, API: api, Addr: l.Addr()},
		Server: ctlplane.ServerSource(d.srv),
		Drain: func() error {
			log.Printf("avad: ctl drain requested (budget %v)", d.drain)
			d.Shutdown(l)
			return nil
		},
	}
	if d.registry != nil {
		cfg.Fleet = func() []fleet.Status {
			ms, err := d.registry.Live(api)
			if err != nil {
				return nil
			}
			out := make([]fleet.Status, len(ms))
			for i, m := range ms {
				out[i] = fleet.Status{Member: m, Live: true}
			}
			return out
		}
	}
	return cfg
}

// buildRegistry assembles the silo and handler registry for one API. The
// OpenCL registry carries an object restorer so a guardian failing over
// from another host can replay mirrored object state into this server
// (marshal.FuncRestore).
func buildRegistry(api string, memMB uint64, cus, sticks int, withSwap bool) (*server.Registry, error) {
	switch api {
	case "opencl":
		reg := server.NewRegistry(cl.Descriptor())
		silo := cl.NewSilo(cl.Config{
			Devices: []devsim.Config{{
				Name:         "avad-gpu0",
				MemoryBytes:  memMB << 20,
				ComputeUnits: cus,
			}},
		})
		cl.BindServer(reg, silo)
		reg.Restorer = cl.MigrationAdapter{Silo: silo}
		if withSwap {
			swap.NewManager(silo).Install(reg)
		}
		return reg, nil
	case "mvnc":
		reg := server.NewRegistry(mvnc.Descriptor())
		mvnc.BindServer(reg, mvnc.NewSilo(mvnc.Config{Sticks: sticks}))
		return reg, nil
	case "qat":
		reg := server.NewRegistry(qat.Descriptor())
		qat.BindServer(reg, qat.NewSilo(sticks))
		return reg, nil
	default:
		return nil, fmt.Errorf("unknown -api %q (opencl, mvnc, qat)", api)
	}
}

// daemon tracks the serving state a graceful shutdown must settle: the
// set of live connections and a waitgroup over their serve loops.
type daemon struct {
	srv       *server.Server
	drain     time.Duration
	announcer *fleet.Announcer
	registry  *fleet.Client

	mu     sync.Mutex
	conns  map[transport.Endpoint]struct{}
	closed bool

	active   sync.WaitGroup
	shutOnce sync.Once
	done     chan struct{}
}

func newDaemon(srv *server.Server, drain time.Duration) *daemon {
	return &daemon{
		srv:   srv,
		drain: drain,
		conns: make(map[transport.Endpoint]struct{}),
		done:  make(chan struct{}),
	}
}

// Serve accepts connections until the listener closes (shutdown or error).
func (d *daemon) Serve(l *transport.Listener) {
	for {
		ep, err := l.Accept()
		if err != nil {
			return
		}
		if !d.track(ep) {
			ep.Close() // raced shutdown: refuse, do not serve
			continue
		}
		go func() {
			defer d.active.Done()
			defer d.untrack(ep)
			d.serveConn(ep)
		}()
	}
}

func (d *daemon) track(ep transport.Endpoint) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	d.conns[ep] = struct{}{}
	d.active.Add(1)
	return true
}

func (d *daemon) untrack(ep transport.Endpoint) {
	d.mu.Lock()
	delete(d.conns, ep)
	d.mu.Unlock()
}

// Shutdown runs the graceful sequence: stop accepting, leave the fleet so
// no guardian is steered here, wait out in-flight connections under the
// drain budget, then orderly-close stragglers (guests see ErrClosed /
// end-of-stream, never ErrSevered — a drain is not a crash).
func (d *daemon) Shutdown(l *transport.Listener) {
	d.shutOnce.Do(func() {
		if l != nil {
			l.Close()
		}
		if d.announcer != nil {
			d.announcer.Close()
		}
		if d.registry != nil {
			d.registry.Close()
		}
		d.mu.Lock()
		d.closed = true
		d.mu.Unlock()

		go func() {
			defer close(d.done)
			drained := make(chan struct{})
			go func() {
				d.active.Wait()
				close(drained)
			}()
			select {
			case <-drained:
				return
			case <-time.After(d.drain):
			}
			d.mu.Lock()
			n := len(d.conns)
			for ep := range d.conns {
				ep.Close()
			}
			d.mu.Unlock()
			if n > 0 {
				log.Printf("avad: drain budget spent, closed %d lingering connection(s)", n)
			}
			<-drained
		}()
	})
}

// Wait blocks until a Shutdown completes its drain.
func (d *daemon) Wait() {
	d.Shutdown(nil) // no-op if a signal already started it; covers Accept errors
	<-d.done
}

// serveConn reads the VM-identification hello preamble and runs the serve
// loop. The preamble is either the legacy [vm u32][name] form or the
// extended form carrying the guardian's endpoint epoch (transport.Hello),
// which a failover dial stamps so logs tie a connection to the recovery
// generation that produced it.
func (d *daemon) serveConn(ep transport.Endpoint) {
	defer ep.Close()
	frame, err := ep.Recv()
	if err != nil {
		return
	}
	h, err := transport.DecodeHello(frame)
	if err != nil {
		log.Printf("avad: bad hello: %v", err)
		return
	}
	name := h.Name
	if name == "" {
		name = fmt.Sprintf("tcp-vm%d", h.VM)
	}
	ctx := d.srv.Context(h.VM, name)
	log.Printf("avad: VM %d (%s) connected, epoch %d", h.VM, name, h.Epoch)
	// The stats summary is emitted however the connection ends — orderly
	// end-of-stream, severed mid-flight, or protocol error — and tagged
	// with the reason, so a SIGKILL'd guest's byte counters land in the
	// log as well as staying live on the ctl endpoint (the counters
	// belong to the server context, which outlives the connection).
	reason := "orderly"
	if err := d.srv.ServeVM(ctx, ep); err != nil {
		if errors.Is(err, transport.ErrSevered) {
			reason = "severed"
		} else {
			reason = "error"
		}
		log.Printf("avad: VM %d: %v", h.VM, err)
	}
	st := ctx.Stats()
	log.Printf("avad: VM %d stats: calls=%d (async %d, errors %d, replays %d) bytes in=%d out=%d copied=%d borrowed=%d exec=%v",
		h.VM, st.Calls, st.AsyncCalls, st.Errors, st.Replays,
		st.BytesIn, st.BytesOut, st.BytesCopied, st.BytesBorrowed, st.ExecTime)
	log.Printf("avad: VM %d disconnected (%s)", h.VM, reason)
}
