package main

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"ava/internal/cl"
	"ava/internal/ctlplane"
	"ava/internal/devsim"
	"ava/internal/marshal"
	"ava/internal/server"
	"ava/internal/transport"
)

func newTestDaemon(t *testing.T, drain time.Duration) *daemon {
	t.Helper()
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, cl.NewSilo(cl.Config{
		Devices: []devsim.Config{{Name: "avad-test-gpu", MemoryBytes: 16 << 20}},
	}))
	return newDaemon(server.New(reg), drain)
}

// legacyHello builds the bare [vm][name] preamble older dialers send.
func legacyHello(vm uint32, name string) []byte {
	b := make([]byte, 4+len(name))
	binary.LittleEndian.PutUint32(b, vm)
	copy(b[4:], name)
	return b
}

func platformCountCall(t *testing.T, seq uint64) []byte {
	t.Helper()
	fd, ok := cl.Descriptor().Lookup("clGetPlatformIDs")
	if !ok {
		t.Fatal("clGetPlatformIDs missing")
	}
	call := marshal.EncodeCall(&marshal.Call{
		Seq: seq, Func: fd.ID,
		Args: []marshal.Value{marshal.Uint(0), marshal.Null(), marshal.Len(4)},
	})
	return marshal.EncodeBatch([][]byte{call})
}

func TestServeConnHelloAndCall(t *testing.T) {
	d := newTestDaemon(t, time.Second)
	client, sv := transport.NewInProc()
	go d.serveConn(sv)

	if err := client.Send(legacyHello(7, "tcp-guest")); err != nil {
		t.Fatal(err)
	}
	if err := client.Send(platformCountCall(t, 1)); err != nil {
		t.Fatal(err)
	}
	frame, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := marshal.DecodeReply(frame)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != marshal.StatusOK || rep.Outs[1].Uint != 1 {
		t.Fatalf("reply = %+v", rep)
	}
	// The context carries the announced identity.
	ctx := d.srv.Context(7, "")
	if ctx.Name != "tcp-guest" {
		t.Fatalf("context name = %q", ctx.Name)
	}
	client.Close()
}

// The extended preamble (VM + epoch + name) must identify the VM the same
// way a failover dialer's hello does.
func TestServeConnExtendedHello(t *testing.T) {
	d := newTestDaemon(t, time.Second)
	client, sv := transport.NewInProc()
	go d.serveConn(sv)

	h := transport.EncodeHello(transport.Hello{VM: 9, Epoch: 3, Name: "failover-guest"})
	if err := client.Send(h); err != nil {
		t.Fatal(err)
	}
	if err := client.Send(platformCountCall(t, 1)); err != nil {
		t.Fatal(err)
	}
	frame, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := marshal.DecodeReply(frame)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != marshal.StatusOK {
		t.Fatalf("reply = %+v", rep)
	}
	if ctx := d.srv.Context(9, ""); ctx.Name != "failover-guest" {
		t.Fatalf("context name = %q", ctx.Name)
	}
	client.Close()
}

func TestServeConnShortHello(t *testing.T) {
	d := newTestDaemon(t, time.Second)
	client, sv := transport.NewInProc()
	done := make(chan struct{})
	go func() {
		d.serveConn(sv)
		close(done)
	}()
	if err := client.Send([]byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	<-done // short hello: connection dropped, no panic
	client.Close()
}

// An eviction must be visible at dial time: the serving connection is
// severed, and a reconnect inside the refusal window gets an explicit
// reject ack — a dial *failure* the guardian charges against its per-host
// budget — never a silent accept-then-sever the dialer would mistake for
// a successful landing.
func TestEvictVMSeversAndRefusesWithRejectAck(t *testing.T) {
	d := newTestDaemon(t, time.Second)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go d.Serve(l)

	dialAck := func() (transport.Endpoint, transport.HelloAck) {
		t.Helper()
		client, err := transport.Dial(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		hello := transport.EncodeHello(transport.Hello{VM: 4, Name: "evictee", WantAck: true})
		if err := client.Send(hello); err != nil {
			t.Fatal(err)
		}
		frame, err := client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		ack, err := transport.DecodeHelloAck(frame)
		if err != nil {
			t.Fatal(err)
		}
		return client, ack
	}

	client, ack := dialAck()
	defer client.Close()
	if !ack.OK {
		t.Fatalf("first dial refused: %+v", ack)
	}

	// Evicting an unknown VM is an error; the bound VM evicts cleanly.
	if err := d.evictVM(99, ""); err == nil {
		t.Fatal("evicting an unconnected VM succeeded")
	}
	if err := d.evictVM(4, "peer-host"); err != nil {
		t.Fatal(err)
	}
	// The serving link dies severed — a crash signal the guardian's
	// failure detector acts on, not an orderly end-of-stream.
	if _, err := client.Recv(); !errors.Is(err, transport.ErrSevered) {
		t.Fatalf("recv after eviction = %v, want ErrSevered", err)
	}

	// A bounce-back inside the refusal window is rejected at the hello.
	c2, ack := dialAck()
	defer c2.Close()
	if ack.OK {
		t.Fatal("redial inside the refusal window was admitted")
	}
	if ack.Reason == "" {
		t.Fatal("reject ack carries no reason")
	}
	// The rejected connection was never bound as the VM's serving link
	// (the evicted one unbinds as its serve loop unwinds).
	deadline := time.Now().Add(2 * time.Second)
	for {
		d.mu.Lock()
		_, bound := d.vms[4]
		d.mu.Unlock()
		if !bound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("VM still bound after eviction and rejected redial")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A graceful shutdown drains in-flight connections and ends them with an
// orderly close: the guest must observe ErrClosed (end-of-stream), never
// ErrSevered — the failover layer treats a sever as a server crash and
// would trigger a pointless recovery against a host that is merely
// restarting for maintenance.
func TestShutdownDrainIsNotSever(t *testing.T) {
	d := newTestDaemon(t, 300*time.Millisecond)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(l)

	client, err := transport.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Send(transport.EncodeHello(transport.Hello{VM: 1, Name: "drain-guest"})); err != nil {
		t.Fatal(err)
	}
	// One in-flight call, then shut down before reading the reply: the
	// drain must deliver the reply before the close lands.
	if err := client.Send(platformCountCall(t, 1)); err != nil {
		t.Fatal(err)
	}
	frame, err := client.Recv()
	if err != nil {
		t.Fatalf("in-flight reply lost to shutdown: %v", err)
	}
	if rep, err := marshal.DecodeReply(frame); err != nil || rep.Status != marshal.StatusOK {
		t.Fatalf("reply = %+v, err %v", rep, err)
	}

	d.Shutdown(l)
	d.Wait()

	// After the drain the daemon closed its side in order: the guest sees
	// end-of-stream, not a severed link.
	if _, err := client.Recv(); err == nil {
		t.Fatal("recv after shutdown succeeded, want closed")
	} else if errors.Is(err, transport.ErrSevered) {
		t.Fatalf("drain surfaced as sever: %v", err)
	}

	// New connections are refused once draining.
	if ep, err := transport.Dial(l.Addr()); err == nil {
		ep.Close()
		t.Fatal("dial after shutdown succeeded, want refused")
	}
}

// A guest whose connection dies severed — SIGKILL, network partition —
// must not take its byte counters with it. The counters live in the
// server context, which outlives the connection, so both the
// at-disconnect log path and the ctl endpoint still see them. This is
// the regression test for the logged-only-on-orderly-disconnect bug.
func TestSeveredConnStatsSurvive(t *testing.T) {
	d := newTestDaemon(t, time.Second)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go d.Serve(l)

	client, err := transport.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Send(transport.EncodeHello(transport.Hello{VM: 5, Name: "doomed-guest"})); err != nil {
		t.Fatal(err)
	}
	const calls = 3
	for i := uint64(1); i <= calls; i++ {
		if err := client.Send(platformCountCall(t, i)); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Recv(); err != nil {
			t.Fatal(err)
		}
	}

	// SIGKILL the guest: a hard reset, not an orderly close.
	transport.Sever(client)

	// The serve loop must notice the sever and return; the counters must
	// still be there afterward, served by the same snapshot the ctl
	// endpoint reads.
	deadline := time.Now().Add(2 * time.Second)
	for {
		snaps := d.srv.Snapshot()
		if len(snaps) == 1 && snaps[0].VM == 5 &&
			snaps[0].Stats.Calls == calls && snaps[0].Stats.BytesIn > 0 && snaps[0].Stats.BytesOut > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("severed VM's counters not observable: %+v", snaps)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// An `avactl drain` round trip against a live daemon: the drain travels
// over the ctl endpoint, guests observe an orderly end-of-stream
// (ErrClosed, never ErrSevered), and final per-VM counters stay
// scrapeable until the ctl server itself closes.
func TestCtlDrainRoundTrip(t *testing.T) {
	d := newTestDaemon(t, 300*time.Millisecond)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(l)

	cs := ctlplane.New(d.ctlConfig("opencl", "", l))
	ctlAddr, err := cs.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	c := ctlplane.NewClient(ctlAddr)

	client, err := transport.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Send(transport.EncodeHello(transport.Hello{VM: 3, Name: "ctl-drain-guest"})); err != nil {
		t.Fatal(err)
	}
	if err := client.Send(platformCountCall(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Recv(); err != nil {
		t.Fatal(err)
	}

	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Ident.Service != "avad" || len(snap.Server) != 1 || snap.Server[0].Stats.Calls != 1 {
		t.Fatalf("pre-drain snapshot = %+v", snap)
	}

	if err := c.Drain(); err != nil {
		t.Fatalf("avactl-style drain failed: %v", err)
	}
	d.Wait()

	// The drain must land as an orderly close on the guest.
	if _, err := client.Recv(); err == nil {
		t.Fatal("recv after drain succeeded, want closed")
	} else if errors.Is(err, transport.ErrSevered) {
		t.Fatalf("ctl drain surfaced as sever: %v", err)
	}

	// Final counters remain scrapeable after the drain (the ctl server
	// closes only when the process exits).
	snap, err = c.Stats()
	if err != nil {
		t.Fatalf("post-drain scrape failed: %v", err)
	}
	if len(snap.Server) != 1 || snap.Server[0].Stats.Calls != 1 {
		t.Fatalf("post-drain counters lost: %+v", snap.Server)
	}
}

// A connection still streaming when the budget expires is closed, not
// severed, and Wait returns promptly after the budget.
func TestShutdownBudgetClosesStragglers(t *testing.T) {
	d := newTestDaemon(t, 50*time.Millisecond)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(l)

	client, err := transport.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Send(transport.EncodeHello(transport.Hello{VM: 2, Name: "straggler"})); err != nil {
		t.Fatal(err)
	}
	// Never send a call and never close: the serve loop sits in Recv until
	// the drain budget forces the close.
	start := time.Now()
	d.Shutdown(l)
	d.Wait()
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("drain took %v, budget was 50ms", waited)
	}
	if _, err := client.Recv(); err == nil {
		t.Fatal("straggler recv succeeded after forced close")
	} else if errors.Is(err, transport.ErrSevered) {
		t.Fatalf("forced close surfaced as sever: %v", err)
	}
}
