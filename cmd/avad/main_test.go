package main

import (
	"encoding/binary"
	"testing"

	"ava/internal/cl"
	"ava/internal/devsim"
	"ava/internal/marshal"
	"ava/internal/server"
	"ava/internal/transport"
)

func newServer(t *testing.T) *server.Server {
	t.Helper()
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, cl.NewSilo(cl.Config{
		Devices: []devsim.Config{{Name: "avad-test-gpu", MemoryBytes: 16 << 20}},
	}))
	return server.New(reg)
}

// hello builds the VM-identification preamble.
func hello(vm uint32, name string) []byte {
	b := make([]byte, 4+len(name))
	binary.LittleEndian.PutUint32(b, vm)
	copy(b[4:], name)
	return b
}

func TestServeConnHelloAndCall(t *testing.T) {
	srv := newServer(t)
	client, sv := transport.NewInProc()
	go serveConn(srv, sv)

	if err := client.Send(hello(7, "tcp-guest")); err != nil {
		t.Fatal(err)
	}
	// One sync call: clGetPlatformIDs count query.
	desc := cl.Descriptor()
	fd, _ := desc.Lookup("clGetPlatformIDs")
	call := marshal.EncodeCall(&marshal.Call{
		Seq: 1, Func: fd.ID,
		Args: []marshal.Value{marshal.Uint(0), marshal.Null(), marshal.Len(4)},
	})
	if err := client.Send(marshal.EncodeBatch([][]byte{call})); err != nil {
		t.Fatal(err)
	}
	frame, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := marshal.DecodeReply(frame)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != marshal.StatusOK || rep.Outs[1].Uint != 1 {
		t.Fatalf("reply = %+v", rep)
	}
	// The context carries the announced identity.
	ctx := srv.Context(7, "")
	if ctx.Name != "tcp-guest" {
		t.Fatalf("context name = %q", ctx.Name)
	}
	client.Close()
}

func TestServeConnShortHello(t *testing.T) {
	srv := newServer(t)
	client, sv := transport.NewInProc()
	done := make(chan struct{})
	go func() {
		serveConn(srv, sv)
		close(done)
	}()
	if err := client.Send([]byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	<-done // short hello: connection dropped, no panic
	client.Close()
}
