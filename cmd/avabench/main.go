// Command avabench regenerates the paper's evaluation tables and figures
// against the simulated accelerators. See DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	avabench                 # run everything
//	avabench -exp fig5       # one experiment: fig5, async, fullvirt,
//	                         # sharing, swap, migrate, effort, transport,
//	                         # breakdown, pipeline, overload, failover,
//	                         # crosshost, copycost
//	avabench -scale 2 -reps 5
//	avabench -json out/     # also write machine-readable BENCH_<exp>.json
//	avabench -exp failover -ctl 127.0.0.1:7273   # scrape the run live
//
// With -ctl, avabench serves the HTTP control endpoint (internal/ctlplane)
// over whichever stack the current experiment is running, so
// `avactl stats -host <addr>` mid-run reads live router/server/guest
// counters and — during failover experiments — guardian epoch, watermark
// and delta-checkpoint counts. `avactl checkpoint <vm>` forces a
// checkpoint; `avactl migrate <vm>` checkpoints then kills the serving
// link so the guardian fails the VM over.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"

	"ava"
	"ava/internal/bench"
	"ava/internal/ctlplane"
	"ava/internal/sched"
	"ava/internal/server"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment to run (default: all)")
		scale    = flag.Int("scale", 1, "workload problem-size multiplier")
		reps     = flag.Int("reps", 3, "repetitions per measurement (minimum reported)")
		jsonDir  = flag.String("json", "", "directory to write BENCH_<exp>.json files into (default: tables only)")
		ctl      = flag.String("ctl", "", "HTTP control/metrics endpoint address (empty = disabled)")
		ctlToken = flag.String("ctl-token", "", "shared token required on ctl POSTs (empty = open)")
	)
	flag.Parse()
	opts := bench.Options{Scale: *scale, Reps: *reps}

	if *ctl != "" {
		cs := ctlplane.New(benchCtlConfig(*ctlToken))
		addr, err := cs.Start(*ctl)
		if err != nil {
			fatal(err)
		}
		defer cs.Close()
		log.Printf("avabench: ctl listening on %s", addr)
	}

	names := bench.Experiments()
	if *exp != "" {
		names = []string{*exp}
	}
	for _, name := range names {
		tbl, err := bench.ByName(name, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tbl)
		if *jsonDir != "" {
			path, err := bench.WriteJSON(*jsonDir, name, tbl)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "avabench: wrote %s\n", path)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avabench:", err)
	os.Exit(1)
}

// benchCtlConfig builds a control-endpoint config whose sources follow
// the experiment currently running: bench.SetStackObserver hands us each
// stack as an experiment assembles it, and every source func re-reads
// the current pointer, so a scraper polling /stats mid-run sees the live
// stack of the moment (and empty sections between experiments).
func benchCtlConfig(token string) ctlplane.Config {
	var (
		mu  sync.Mutex
		cur *ava.Stack
	)
	bench.SetStackObserver(func(s *ava.Stack) {
		mu.Lock()
		cur = s
		mu.Unlock()
	})
	current := func() *ava.Stack {
		mu.Lock()
		defer mu.Unlock()
		return cur
	}
	return ctlplane.Config{
		Ident: ctlplane.Ident{Service: "avabench"},
		Router: func() *ctlplane.RouterInfo {
			s := current()
			if s == nil {
				return nil
			}
			return ctlplane.RouterSource(s.Router)()
		},
		Server: func() []server.VMSnapshot {
			s := current()
			if s == nil {
				return nil
			}
			return s.Server.Snapshot()
		},
		Guests: func() []ctlplane.GuestSnapshot {
			s := current()
			if s == nil {
				return nil
			}
			var out []ctlplane.GuestSnapshot
			for _, id := range s.VMs() {
				if lib := s.GuestLib(id); lib != nil {
					out = append(out, ctlplane.GuestSnapshot{VM: id, Stats: lib.Stats()})
				}
			}
			return out
		},
		Guardians: func() []ctlplane.GuardianSnapshot {
			s := current()
			if s == nil {
				return nil
			}
			var out []ctlplane.GuardianSnapshot
			for _, id := range s.VMs() {
				if g := s.Guardian(id); g != nil {
					out = append(out, ctlplane.GuardianSource(id, g))
				}
			}
			return out
		},
		Checkpoint: func(vm uint32) error {
			s := current()
			if s == nil {
				return fmt.Errorf("no experiment is running")
			}
			g := s.Guardian(vm)
			if g == nil {
				return fmt.Errorf("VM %d has no failover guardian", vm)
			}
			return g.CheckpointNow()
		},
		Migrate: func(vm uint32, target string) error {
			// In-process migration: checkpoint, then sever the serving link
			// so the guardian fails the VM over to the next host its dialer
			// picks (the registry's lightest live peer; target is advisory).
			s := current()
			if s == nil {
				return fmt.Errorf("no experiment is running")
			}
			if g := s.Guardian(vm); g != nil {
				if err := g.CheckpointNow(); err != nil {
					return err
				}
			}
			return s.KillServer(vm)
		},
		Sched: func() []sched.Decision {
			s := current()
			if s == nil {
				return nil
			}
			return s.SchedDecisions()
		},
		Rebalance: func() (int, error) {
			s := current()
			if s == nil {
				return 0, fmt.Errorf("no experiment is running")
			}
			r := s.Rebalancer()
			if r == nil {
				return 0, fmt.Errorf("no rebalancer is configured")
			}
			return r.Kick(), nil
		},
		RebalanceStats: func() sched.Stats {
			s := current()
			if s == nil {
				return sched.Stats{}
			}
			if r := s.Rebalancer(); r != nil {
				return r.Stats()
			}
			return sched.Stats{}
		},
		Token: token,
	}
}
