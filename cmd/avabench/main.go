// Command avabench regenerates the paper's evaluation tables and figures
// against the simulated accelerators. See DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	avabench                 # run everything
//	avabench -exp fig5       # one experiment: fig5, async, fullvirt,
//	                         # sharing, swap, migrate, effort, transport,
//	                         # breakdown, pipeline, overload, failover,
//	                         # crosshost, copycost
//	avabench -scale 2 -reps 5
//	avabench -json out/     # also write machine-readable BENCH_<exp>.json
package main

import (
	"flag"
	"fmt"
	"os"

	"ava/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment to run (default: all)")
		scale   = flag.Int("scale", 1, "workload problem-size multiplier")
		reps    = flag.Int("reps", 3, "repetitions per measurement (minimum reported)")
		jsonDir = flag.String("json", "", "directory to write BENCH_<exp>.json files into (default: tables only)")
	)
	flag.Parse()
	opts := bench.Options{Scale: *scale, Reps: *reps}

	names := bench.Experiments()
	if *exp != "" {
		names = []string{*exp}
	}
	for _, name := range names {
		tbl, err := bench.ByName(name, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tbl)
		if *jsonDir != "" {
			path, err := bench.WriteJSON(*jsonDir, name, tbl)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "avabench: wrote %s\n", path)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avabench:", err)
	os.Exit(1)
}
