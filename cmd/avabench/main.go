// Command avabench regenerates the paper's evaluation tables and figures
// against the simulated accelerators. See DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	avabench                 # run everything
//	avabench -exp fig5       # one experiment: fig5, async, fullvirt,
//	                         # sharing, swap, migrate, effort, transport,
//	                         # breakdown, pipeline, overload, failover,
//	                         # crosshost
//	avabench -scale 2 -reps 5
package main

import (
	"flag"
	"fmt"
	"os"

	"ava/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment to run (default: all)")
		scale = flag.Int("scale", 1, "workload problem-size multiplier")
		reps  = flag.Int("reps", 3, "repetitions per measurement (minimum reported)")
	)
	flag.Parse()
	opts := bench.Options{Scale: *scale, Reps: *reps}

	if *exp != "" {
		tbl, err := bench.ByName(*exp, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tbl)
		return
	}
	tables, err := bench.All(opts)
	for _, tbl := range tables {
		fmt.Println(tbl)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avabench:", err)
	os.Exit(1)
}
