package ava_test

import (
	"strings"
	"testing"

	"ava"
	"ava/internal/cl"
	"ava/internal/marshal"
	"ava/internal/server"
)

const stackSpec = `
handle obj;
const OK = 0;
type st = int32_t { success(OK); };
st make(uint32_t kind, obj *o) {
  parameter(o) { out; element { allocates; } }
  track(create, o);
}
st poke(obj o, uint32_t v) { async; }
st count(uint32_t *n) { parameter(n) { out; element; } }
`

func newToyStack(t *testing.T, opts ...ava.Option) *ava.Stack {
	t.Helper()
	desc, err := ava.CompileSpec(stackSpec)
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry(desc)
	var pokes int
	reg.MustRegister("make", func(v *server.Invocation) error {
		v.SetOutHandle(1, v.Ctx.Handles.Insert(int(v.Uint(0))))
		v.SetStatus(0)
		return nil
	})
	reg.MustRegister("poke", func(v *server.Invocation) error {
		pokes++
		v.SetStatus(0)
		return nil
	})
	reg.MustRegister("count", func(v *server.Invocation) error {
		v.SetOutUint(0, uint64(pokes))
		v.SetStatus(0)
		return nil
	})
	stack := ava.NewStack(desc, reg, opts...)
	t.Cleanup(stack.Close)
	return stack
}

func TestStackAttachDetach(t *testing.T) {
	stack := newToyStack(t)
	lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "vm1"})
	if err != nil {
		t.Fatal(err)
	}
	var h marshal.Handle
	if _, err := lib.Call("make", uint32(7), &h); err != nil {
		t.Fatal(err)
	}
	if h == 0 {
		t.Fatal("no handle")
	}
	stack.DetachVM(1)
	if _, err := lib.Call("make", uint32(7), &h); err == nil {
		t.Fatal("detached VM still served")
	}
	// Re-attach with the same ID works.
	if _, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "vm1"}); err != nil {
		t.Fatal(err)
	}
}

func TestStackDuplicateAttach(t *testing.T) {
	stack := newToyStack(t)
	if _, err := stack.AttachVM(ava.VMConfig{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := stack.AttachVM(ava.VMConfig{ID: 1}); err == nil {
		t.Fatal("duplicate VM attached")
	}
}

func TestStackMultipleVMsIsolated(t *testing.T) {
	stack := newToyStack(t)
	lib1, _ := stack.AttachVM(ava.VMConfig{ID: 1, Name: "vm1"})
	lib2, _ := stack.AttachVM(ava.VMConfig{ID: 2, Name: "vm2"})
	var h1, h2 marshal.Handle
	lib1.Call("make", uint32(1), &h1)
	lib2.Call("make", uint32(2), &h2)
	// Handle tables are per-VM: both guests get handle 1, but they name
	// different objects.
	ctx1 := stack.Server.Context(1, "vm1")
	ctx2 := stack.Server.Context(2, "vm2")
	o1, _ := ctx1.Handles.Get(h1)
	o2, _ := ctx2.Handles.Get(h2)
	if o1 == o2 {
		t.Fatal("VMs share objects")
	}
	if o1 != 1 || o2 != 2 {
		t.Fatalf("objects = %v, %v", o1, o2)
	}
}

func TestStackRingTransport(t *testing.T) {
	stack := newToyStack(t, ava.WithRingTransport(1<<16))
	lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "vm1"})
	if err != nil {
		t.Fatal(err)
	}
	var h marshal.Handle
	if _, err := lib.Call("make", uint32(7), &h); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := lib.Call("poke", h, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	var n uint32
	if _, err := lib.Call("count", &n); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("pokes = %d", n)
	}
}

func TestStackAsyncByDefault(t *testing.T) {
	stack := newToyStack(t)
	lib, _ := stack.AttachVM(ava.VMConfig{ID: 1, Name: "vm"})
	var h marshal.Handle
	lib.Call("make", uint32(0), &h)
	lib.Call("poke", h, uint32(1))
	if st := lib.Stats(); st.AsyncCalls != 1 {
		t.Fatalf("default stats = %+v", st)
	}
}

func TestCompileSpecErrors(t *testing.T) {
	if _, err := ava.CompileSpec("not a spec %%"); err == nil {
		t.Fatal("garbage compiled")
	}
	if _, err := ava.CompileSpec(`mystery f(int32_t a);`); err == nil {
		t.Fatal("invalid spec compiled")
	}
}

func TestInferSpecWorkflow(t *testing.T) {
	text, notes, err := ava.InferSpec(`
		handle dev;
		const OK = 0;
		type st = int32_t { success(OK); };
		st write(dev d, const uint8_t *data, size_t data_size);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) == 0 {
		t.Fatal("no inference notes")
	}
	if !strings.Contains(text, "buffer(data_size)") {
		t.Fatalf("inferred spec missing size:\n%s", text)
	}
	if _, err := ava.CompileSpec(text); err != nil {
		t.Fatalf("inferred spec does not compile: %v", err)
	}
}

func TestStackContextAccess(t *testing.T) {
	stack := newToyStack(t, ava.WithRecording())
	lib, _ := stack.AttachVM(ava.VMConfig{ID: 5, Name: "vm5"})
	var h marshal.Handle
	lib.Call("make", uint32(0), &h)
	ctx := stack.Server.Context(5, "vm5")
	if !ctx.Recording() {
		t.Fatal("recording not enabled by config")
	}
	if len(ctx.RecordLog()) != 1 {
		t.Fatalf("record log = %d", len(ctx.RecordLog()))
	}
}

func TestClSpecIsGeneratable(t *testing.T) {
	// The shipped OpenCL spec must survive the full generator path (the
	// cl bindings are hand-written in the generated idiom; this proves the
	// generator handles the real 39-function surface).
	desc := cl.Descriptor()
	src, stats, err := ava.GenerateStack(desc, cl.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Functions != 39 || len(src) == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if !strings.Contains(string(src), "func (c *Client) ClEnqueueReadBuffer(") {
		t.Fatal("generated guest stub missing")
	}
	if !strings.Contains(string(src), "Implementation interface") {
		t.Fatal("generated server interface missing")
	}
}
