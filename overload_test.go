package ava_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ava"
	"ava/internal/cl"
	"ava/internal/devsim"
	"ava/internal/hv"
	"ava/internal/server"
)

func clQuotaStack(t *testing.T, quotas map[string]int64) (*ava.Stack, *cl.RemoteClient) {
	t.Helper()
	silo := cl.NewSilo(cl.Config{
		Devices: []devsim.Config{{Name: "test-gpu", MemoryBytes: 1 << 30, ComputeUnits: 4}},
	})
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, silo)
	stack := ava.NewStack(desc, reg)
	lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "guest", Quotas: quotas})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stack.Close)
	return stack, cl.NewRemote(lib)
}

// A non-blocking clEnqueueWriteBuffer denied at the router (bandwidth
// quota) has no reply to carry the error; §4.2 requires the next
// synchronization point — clFinish — to surface it.
func TestStackDeniedAsyncEnqueueSurfacesAtFinish(t *testing.T) {
	_, c := clQuotaStack(t, map[string]int64{"bandwidth": 1000})

	ps, err := c.PlatformIDs()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := c.DeviceIDs(ps[0], cl.DeviceTypeAll)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := c.CreateContext(ds[:1])
	if err != nil {
		t.Fatal(err)
	}
	q, err := c.CreateQueue(ctx, ds[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := c.CreateBuffer(ctx, 0, 8192)
	if err != nil {
		t.Fatal(err)
	}

	// 4096 bytes against a 1000-byte bandwidth quota: the router drops the
	// async write with no reply.
	if err := c.EnqueueWrite(q, buf, false, 0, make([]byte, 4096)); err != nil {
		t.Fatalf("async enqueue returned synchronously: %v", err)
	}
	// clFinish is the synchronization point: the deferred denial lands here.
	err = c.Finish(q)
	if err == nil {
		t.Fatal("clFinish after denied async write returned nil, want deferred denial")
	}
	if !strings.Contains(err.Error(), "deferred") || !strings.Contains(err.Error(), "quota") {
		t.Fatalf("clFinish error = %v, want deferred quota denial", err)
	}
	// The deferred slot drains: the queue is usable again.
	if err := c.Finish(q); err != nil {
		t.Fatalf("second clFinish = %v, want nil", err)
	}
}

// overloadedSched reports permanent admission pressure, forcing the shed
// path regardless of real load.
type overloadedSched struct{}

func (overloadedSched) Admit(vm hv.VMID, cost int64, pri uint8)     {}
func (overloadedSched) Done(vm hv.VMID, cost int64, measured int64) {}
func (overloadedSched) Usage(vm hv.VMID) int64                      { return 0 }
func (overloadedSched) QueueDepth() int                             { return 1 << 20 }
func (overloadedSched) RecentStall() time.Duration                  { return time.Hour }

// A shed call surfaces as ava.ErrOverloaded through the full stack, and
// the guest library counts it.
func TestStackShedCallMapsToErrOverloaded(t *testing.T) {
	desc, err := ava.CompileSpec(`
const OK = 0;
type st = int32_t { success(OK); };
st ping(uint32_t v);
`)
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry(desc)
	reg.MustRegister("ping", func(inv *server.Invocation) error {
		inv.SetStatus(0)
		return nil
	})
	stack := ava.NewStack(desc, reg,
		ava.WithScheduler(overloadedSched{}),
		ava.WithShedding(ava.ShedConfig{MaxQueueDepth: 1}))
	defer stack.Close()
	lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "guest"})
	if err != nil {
		t.Fatal(err)
	}

	_, err = lib.Call("ping", uint32(1))
	if !errors.Is(err, ava.ErrOverloaded) {
		t.Fatalf("shed call error = %v, want ava.ErrOverloaded", err)
	}
	if got := lib.Stats().OverloadDenied; got != 1 {
		t.Fatalf("guest OverloadDenied = %d, want 1", got)
	}
	// High-priority calls pass through the same overloaded router.
	if _, err := lib.CallWith(ava.CallOptions{Priority: 255}, "ping", uint32(2)); err != nil {
		t.Fatalf("high-priority call = %v, want nil", err)
	}
	st, err := stack.Router.Stats(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShedDenied != 1 || st.Forwarded != 1 {
		t.Fatalf("router stats = %+v", st)
	}
}
