#!/bin/sh
# ctl_smoke.sh — end-to-end smoke of the operability front door: start a
# real avad with its HTTP control endpoint, scrape it with avactl, drain
# it via avactl, and require a clean exit. Run from the repo root
# (`make ctl-smoke` does). Everything binds to port 0, so parallel CI
# runs do not collide.
set -eu

GO=${GO:-go}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"; [ -n "${avad_pid:-}" ] && kill "$avad_pid" 2>/dev/null || true' EXIT

echo "ctl-smoke: building avad + avactl"
$GO build -o "$workdir/avad" ./cmd/avad
$GO build -o "$workdir/avactl" ./cmd/avactl

"$workdir/avad" -listen 127.0.0.1:0 -ctl 127.0.0.1:0 >"$workdir/avad.log" 2>&1 &
avad_pid=$!

# The daemon logs its bound ctl address; poll for it.
ctl_addr=""
i=0
while [ $i -lt 100 ]; do
    ctl_addr=$(sed -n 's/.*avad: ctl listening on //p' "$workdir/avad.log" | head -1)
    [ -n "$ctl_addr" ] && break
    kill -0 "$avad_pid" 2>/dev/null || { echo "ctl-smoke: avad died:"; cat "$workdir/avad.log"; exit 1; }
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$ctl_addr" ]; then
    echo "ctl-smoke: avad never announced its ctl address:"
    cat "$workdir/avad.log"
    exit 1
fi
echo "ctl-smoke: avad up, ctl at $ctl_addr"

"$workdir/avactl" -host "$ctl_addr" health
"$workdir/avactl" -host "$ctl_addr" stats
"$workdir/avactl" -host "$ctl_addr" vms
"$workdir/avactl" -host "$ctl_addr" -json stats | grep -q '"service": "avad"' || {
    echo "ctl-smoke: stats JSON missing ident"; exit 1
}

echo "ctl-smoke: draining via avactl"
"$workdir/avactl" -host "$ctl_addr" drain

# The drain must take avad down cleanly on its own.
i=0
while kill -0 "$avad_pid" 2>/dev/null; do
    i=$((i + 1))
    if [ $i -gt 100 ]; then
        echo "ctl-smoke: avad still running 10s after drain:"
        cat "$workdir/avad.log"
        exit 1
    fi
    sleep 0.1
done
wait "$avad_pid" || { echo "ctl-smoke: avad exited non-zero:"; cat "$workdir/avad.log"; exit 1; }
avad_pid=""
grep -q "avad: shut down cleanly" "$workdir/avad.log" || {
    echo "ctl-smoke: no clean-shutdown log line:"; cat "$workdir/avad.log"; exit 1
}
echo "ctl-smoke: OK"
