#!/bin/sh
# ha_smoke.sh — end-to-end smoke of the replicated control plane: two real
# avaregd replicas gossiping their member tables, one avad announcing to
# both plus one announcing to a single replica (so only gossip can spread
# it), a mirror host scraped over the ctl endpoint, and a hard kill of one
# registry that placement must survive through the surviving replica. Run
# from the repo root (`make ha-smoke` does). Everything binds to port 0,
# so parallel CI runs do not collide.
set -eu

GO=${GO:-go}
workdir=$(mktemp -d)
cleanup() {
    rm -rf "$workdir"
    [ -n "${regd_a_pid:-}" ] && kill "$regd_a_pid" 2>/dev/null || true
    [ -n "${regd_b_pid:-}" ] && kill "$regd_b_pid" 2>/dev/null || true
    [ -n "${avad_a_pid:-}" ] && kill "$avad_a_pid" 2>/dev/null || true
    [ -n "${avad_b_pid:-}" ] && kill "$avad_b_pid" 2>/dev/null || true
}
trap cleanup EXIT

echo "ha-smoke: building avaregd + avad + avaplace + avactl"
$GO build -o "$workdir/avaregd" ./cmd/avaregd
$GO build -o "$workdir/avad" ./cmd/avad
$GO build -o "$workdir/avaplace" ./cmd/avaplace
$GO build -o "$workdir/avactl" ./cmd/avactl

# reg_addr <logfile> <pid>: poll a registry log for its bound address.
reg_addr() {
    addr=""
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's/.*serving fleet registry on //p' "$1" | head -1)
        [ -n "$addr" ] && break
        kill -0 "$2" 2>/dev/null || { echo "ha-smoke: avaregd died:" >&2; cat "$1" >&2; exit 1; }
        i=$((i + 1))
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "ha-smoke: avaregd never announced its address" >&2; cat "$1" >&2; exit 1; }
    echo "$addr"
}

"$workdir/avaregd" -listen 127.0.0.1:0 -ctl 127.0.0.1:0 >"$workdir/regd-a.log" 2>&1 &
regd_a_pid=$!
reg_a=$(reg_addr "$workdir/regd-a.log" "$regd_a_pid")

# Replica B gossips its member table to A on a tight cadence, so a member
# announced only to B becomes visible through A without ever dialing A.
"$workdir/avaregd" -listen 127.0.0.1:0 -peers "$reg_a" -gossip-every 100ms >"$workdir/regd-b.log" 2>&1 &
regd_b_pid=$!
reg_b=$(reg_addr "$workdir/regd-b.log" "$regd_b_pid")
echo "ha-smoke: registry replicas up at $reg_a and $reg_b"

# host-a announces to BOTH replicas (the HA announce fan-out) and serves a
# replication mirror host plus the ctl endpoint.
"$workdir/avad" -listen 127.0.0.1:0 -announce "$reg_a,$reg_b" -id gpu-host-a \
    -mirror 127.0.0.1:0 -ctl 127.0.0.1:0 >"$workdir/avad-a.log" 2>&1 &
avad_a_pid=$!
# host-b announces to replica B only: replica A must learn it by gossip.
"$workdir/avad" -listen 127.0.0.1:0 -announce "$reg_b" -id gpu-host-b >"$workdir/avad-b.log" 2>&1 &
avad_b_pid=$!

for h in a b; do
    i=0
    while [ $i -lt 100 ]; do
        grep -q "announcing .* fleet registr" "$workdir/avad-$h.log" 2>/dev/null && break
        kill -0 "$(eval echo \$avad_${h}_pid)" 2>/dev/null || { echo "ha-smoke: avad-$h died:"; cat "$workdir/avad-$h.log"; exit 1; }
        i=$((i + 1))
        sleep 0.1
    done
done
echo "ha-smoke: two avads announced (host-b to one replica only)"

# Gossip must deliver host-b to replica A: its admin table eventually
# lists both hosts even though host-b never dialed it.
ctl_reg_a=""
i=0
while [ $i -lt 100 ]; do
    ctl_reg_a=$(sed -n 's/.*avaregd: ctl listening on //p' "$workdir/regd-a.log" | head -1)
    [ -n "$ctl_reg_a" ] && break
    i=$((i + 1))
    sleep 0.1
done
[ -n "$ctl_reg_a" ] || { echo "ha-smoke: regd-a never announced its ctl address"; cat "$workdir/regd-a.log"; exit 1; }
n=0
i=0
while [ $i -lt 100 ]; do
    n=$("$workdir/avactl" -host "$ctl_reg_a" stats 2>/dev/null | grep -c '^fleet gpu-host-' || true)
    [ "$n" = "2" ] && break
    i=$((i + 1))
    sleep 0.1
done
[ "$n" = "2" ] || { echo "ha-smoke: gossip never delivered host-b to replica A (saw $n members)"; cat "$workdir/regd-a.log"; exit 1; }
echo "ha-smoke: gossip converged — replica A sees both hosts"

# Quorum-read placement over both replicas.
out=$("$workdir/avaplace" -registry "$reg_a,$reg_b" -vm 2)
echo "$out" | grep -q '^placed vm 2 on gpu-host-' || { echo "ha-smoke: quorum placement failed:"; echo "$out"; exit 1; }
echo "ha-smoke: quorum-read placement OK"

# The ctl endpoint reports the mirror host's replication standing.
ctl_a=""
i=0
while [ $i -lt 100 ]; do
    ctl_a=$(sed -n 's/.*avad: ctl listening on //p' "$workdir/avad-a.log" | head -1)
    [ -n "$ctl_a" ] && break
    i=$((i + 1))
    sleep 0.1
done
[ -n "$ctl_a" ] || { echo "ha-smoke: avad-a never announced its ctl address"; cat "$workdir/avad-a.log"; exit 1; }
grep -q "avad: mirror host serving on " "$workdir/avad-a.log" || { echo "ha-smoke: avad-a never started its mirror host"; cat "$workdir/avad-a.log"; exit 1; }
"$workdir/avactl" -host "$ctl_a" mirror >/dev/null || { echo "ha-smoke: avactl mirror scrape failed"; exit 1; }
"$workdir/avactl" -host "$ctl_a" stats >/dev/null
echo "ha-smoke: mirror host up and scrapeable via avactl"

# SIGKILL registry replica A. Placement and announces must keep working
# through the survivor — the avads' heartbeats ride out the death.
kill -9 "$regd_a_pid" 2>/dev/null || true
regd_a_pid=""
out=$("$workdir/avaplace" -registry "$reg_a,$reg_b" -vm 3)
echo "$out" | grep -q '^placed vm 3 on gpu-host-' || { echo "ha-smoke: placement did not survive the registry kill:"; echo "$out"; exit 1; }
echo "ha-smoke: placement survived a registry replica SIGKILL"

echo "ha-smoke: OK"
