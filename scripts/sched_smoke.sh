#!/bin/sh
# sched_smoke.sh — end-to-end smoke of the cluster-scheduling front door:
# boot a real avaregd and two announced avads, run the avaplace probe, and
# require exactly one placement decision landing on the lighter host. Run
# from the repo root (`make sched-smoke` does). Everything binds to
# port 0, so parallel CI runs do not collide.
set -eu

GO=${GO:-go}
workdir=$(mktemp -d)
cleanup() {
    rm -rf "$workdir"
    [ -n "${regd_pid:-}" ] && kill "$regd_pid" 2>/dev/null || true
    [ -n "${avad_a_pid:-}" ] && kill "$avad_a_pid" 2>/dev/null || true
    [ -n "${avad_b_pid:-}" ] && kill "$avad_b_pid" 2>/dev/null || true
}
trap cleanup EXIT

echo "sched-smoke: building avaregd + avad + avaplace"
$GO build -o "$workdir/avaregd" ./cmd/avaregd
$GO build -o "$workdir/avad" ./cmd/avad
$GO build -o "$workdir/avaplace" ./cmd/avaplace

"$workdir/avaregd" -listen 127.0.0.1:0 >"$workdir/avaregd.log" 2>&1 &
regd_pid=$!

# The registry logs its bound address; poll for it.
reg_addr=""
i=0
while [ $i -lt 100 ]; do
    reg_addr=$(sed -n 's/.*serving fleet registry on //p' "$workdir/avaregd.log" | head -1)
    [ -n "$reg_addr" ] && break
    kill -0 "$regd_pid" 2>/dev/null || { echo "sched-smoke: avaregd died:"; cat "$workdir/avaregd.log"; exit 1; }
    i=$((i + 1))
    sleep 0.1
done
[ -n "$reg_addr" ] || { echo "sched-smoke: avaregd never announced its address"; cat "$workdir/avaregd.log"; exit 1; }
echo "sched-smoke: registry up at $reg_addr"

"$workdir/avad" -listen 127.0.0.1:0 -announce "$reg_addr" -id gpu-host-a >"$workdir/avad-a.log" 2>&1 &
avad_a_pid=$!
"$workdir/avad" -listen 127.0.0.1:0 -announce "$reg_addr" -id gpu-host-b >"$workdir/avad-b.log" 2>&1 &
avad_b_pid=$!

# Both hosts must be announced before the probe ranks them.
for h in a b; do
    i=0
    while [ $i -lt 100 ]; do
        grep -q "announcing .* to fleet registry" "$workdir/avad-$h.log" 2>/dev/null && break
        kill -0 "$(eval echo \$avad_${h}_pid)" 2>/dev/null || { echo "sched-smoke: avad-$h died:"; cat "$workdir/avad-$h.log"; exit 1; }
        i=$((i + 1))
        sleep 0.1
    done
done
echo "sched-smoke: two avads announced"

out=$("$workdir/avaplace" -registry "$reg_addr" -vm 1)
echo "$out"

# Exactly one placement decision, and it names a real fleet member.
decisions=$(echo "$out" | grep -c '^decision .* place ' || true)
[ "$decisions" = "1" ] || { echo "sched-smoke: want exactly 1 place decision, got $decisions"; exit 1; }
echo "$out" | grep -q '^placed vm 1 on gpu-host-' || { echo "sched-smoke: probe did not land on a fleet host"; exit 1; }

echo "sched-smoke: OK"
