module ava

go 1.22
