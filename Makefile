# Pre-merge gate: formatting, static checks, build, race-enabled tests.
# ROADMAP.md's tier-1 line is the subset `go build ./... && go test ./...`;
# `make check` is the stricter local/CI version of the same gate.

GO ?= go

.PHONY: check fmt vet build test bench bench-smoke bench-json chaos ctl-smoke sched-smoke ha-smoke

check: fmt vet build test bench-smoke ctl-smoke sched-smoke ha-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark, no unit tests: catches benchmarks that
# stopped compiling or panic without paying for a full measurement run.
# Also exercises the overload-control (E11), failover (E12), cross-host
# failover (E13), zero-copy/copy-cost (E14), cluster-rebalancing (E15) and
# replicated-control-plane (E16) experiments end to end, since their
# assertions live in the table generation, not in a Benchmark func.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...
	$(GO) run ./cmd/avabench -exp overload -reps 1
	$(GO) run ./cmd/avabench -exp failover -reps 1
	$(GO) run ./cmd/avabench -exp crosshost -reps 1
	$(GO) run ./cmd/avabench -exp copycost -reps 1
	$(GO) run ./cmd/avabench -exp rebalance -reps 1
	$(GO) run ./cmd/avabench -exp ha -reps 1

# Operability smoke: boot a real avad with -ctl, scrape it with avactl,
# drain it over HTTP, and require a clean exit (scripts/ctl_smoke.sh).
ctl-smoke:
	GO="$(GO)" sh scripts/ctl_smoke.sh

# Scheduling smoke: boot a real avaregd and two announced avads, run the
# avaplace probe, and require exactly one placement decision
# (scripts/sched_smoke.sh).
sched-smoke:
	GO="$(GO)" sh scripts/sched_smoke.sh

# HA smoke: two gossiping avaregd replicas, multi-registry announce, a
# mirror host scraped via avactl, and placement surviving a registry
# SIGKILL through the surviving replica (scripts/ha_smoke.sh).
ha-smoke:
	GO="$(GO)" sh scripts/ha_smoke.sh

# Full experiment sweep with machine-readable output: one BENCH_<exp>.json
# per experiment lands in bench-out/ alongside the printed tables.
bench-json:
	mkdir -p bench-out
	$(GO) run ./cmd/avabench -json bench-out

# Chaos gate: every fault-injection and kill-the-server test under -race,
# with fixed seeds (the tests pin their own Flaky/backoff seeds), so CI
# reproduces the same failure schedules run to run. CrossHost covers the
# whole-machine kill with fleet-registry failover to a peer host;
# Rebalance covers skewed-load live migration (fixed skew, deterministic
# decisions) through the same guardian machinery; Mirror/Gossip/MultiClient
# /WireClient cover the replicated control plane — remote mirror hosts
# killed mid-stream, registry replicas killed under quorum reads, gossip
# repair after partitioned announces.
chaos:
	$(GO) test -race -count=1 -run 'Failover|Flaky|Severed|Liveness|Backoff|Control|CrossHost|Rehydration|Rebalance|Mirror|Gossip|MultiClient|WireClient' \
		./internal/transport/ ./internal/failover/ ./internal/stacktest/ ./internal/sched/ ./internal/fleet/ ./internal/bench/ .
