# Pre-merge gate: formatting, static checks, build, race-enabled tests.
# ROADMAP.md's tier-1 line is the subset `go build ./... && go test ./...`;
# `make check` is the stricter local/CI version of the same gate.

GO ?= go

.PHONY: check fmt vet build test bench bench-smoke

check: fmt vet build test bench-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark, no unit tests: catches benchmarks that
# stopped compiling or panic without paying for a full measurement run.
# Also exercises the overload-control experiment (E11) end to end, since
# its assertions live in the table generation, not in a Benchmark func.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...
	$(GO) run ./cmd/avabench -exp overload -reps 1
