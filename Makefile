# Pre-merge gate: formatting, static checks, build, race-enabled tests.
# ROADMAP.md's tier-1 line is the subset `go build ./... && go test ./...`;
# `make check` is the stricter local/CI version of the same gate.

GO ?= go

.PHONY: check fmt vet build test bench

check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
