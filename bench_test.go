// Benchmarks regenerating the paper's evaluation, one per table/figure.
// See DESIGN.md for the experiment index (E1-E8) and EXPERIMENTS.md for
// recorded results. The avabench command prints the same data as formatted
// tables; these wrappers integrate it with `go test -bench`.
package ava_test

import (
	"fmt"
	"testing"
	"time"

	"ava"
	"ava/internal/cl"
	"ava/internal/devsim"
	"ava/internal/fullvirt"
	"ava/internal/guest"
	"ava/internal/migrate"
	"ava/internal/mvnc"
	"ava/internal/rodinia"
	"ava/internal/server"
	"ava/internal/swap"
)

func benchSilo() *cl.Silo {
	return cl.NewSilo(cl.Config{
		Devices: []devsim.Config{{
			Name:           "bench-gpu",
			MemoryBytes:    2 << 30,
			ComputeUnits:   8,
			KernelOverhead: 8 * time.Microsecond,
			DMALatency:     10 * time.Microsecond,
			DMABandwidth:   12e9,
		}},
	})
}

func benchStack(b *testing.B, opts ...guest.Option) (*ava.Stack, *cl.RemoteClient) {
	b.Helper()
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, benchSilo())
	stack := ava.NewStack(desc, reg)
	lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "bench-vm"}, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(stack.Close)
	return stack, cl.NewRemote(lib)
}

// BenchmarkFigure5 is E1: end-to-end Rodinia + Inception, native vs AvA.
// The per-workload relative runtimes are the bars of the paper's Figure 5.
func BenchmarkFigure5(b *testing.B) {
	for _, w := range rodinia.All() {
		w := w
		b.Run(w.Name+"/native", func(b *testing.B) {
			c := cl.NewNative(benchSilo())
			for i := 0; i < b.N; i++ {
				if _, err := w.Run(c, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(w.Name+"/ava", func(b *testing.B) {
			_, c := benchStack(b)
			for i := 0; i < b.N; i++ {
				if _, err := w.Run(c, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("inception/native", func(b *testing.B) {
		c := mvnc.NewNative(mvnc.NewSilo(mvnc.Config{}))
		for i := 0; i < b.N; i++ {
			if _, err := mvnc.RunInception(c, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("inception/ava", func(b *testing.B) {
		desc := mvnc.Descriptor()
		reg := server.NewRegistry(desc)
		mvnc.BindServer(reg, mvnc.NewSilo(mvnc.Config{}))
		stack := ava.NewStack(desc, reg)
		b.Cleanup(stack.Close)
		lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "ncs"})
		if err != nil {
			b.Fatal(err)
		}
		c := mvnc.NewRemote(lib)
		for i := 0; i < b.N; i++ {
			if _, err := mvnc.RunInception(c, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAsyncAblation is E2: the §5 optimization experiment — the same
// call-intensive workload with asynchronous forwarding disabled
// (the unoptimized specification) and enabled.
func BenchmarkAsyncAblation(b *testing.B) {
	for _, name := range []string{"gaussian", "pathfinder"} {
		w, _ := rodinia.ByName(name)
		b.Run(name+"/sync-only", func(b *testing.B) {
			_, c := benchStack(b, guest.WithForceSync())
			for i := 0; i < b.N; i++ {
				if _, err := w.Run(c, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/async", func(b *testing.B) {
			_, c := benchStack(b)
			for i := 0; i < b.N; i++ {
				if _, err := w.Run(c, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFullVirtBaseline is E3: the §2 motivation numbers. The fullvirt
// figure reports modeled time (traps x vm-exit cost + real emulation);
// compare against BenchmarkFigure5 vector paths for the AvA side.
func BenchmarkFullVirtBaseline(b *testing.B) {
	const n = 1 << 13
	a := make([]float32, n)
	v := make([]float32, n)
	b.Run("fullvirt-modeled", func(b *testing.B) {
		var modeled time.Duration
		for i := 0; i < b.N; i++ {
			dev := fullvirt.New(fullvirt.Config{})
			start := time.Now()
			if _, _, err := dev.GuestVectorAdd(a, v); err != nil {
				b.Fatal(err)
			}
			modeled += time.Since(start) + dev.ModeledTrapTime()
		}
		b.ReportMetric(float64(modeled.Nanoseconds())/float64(b.N), "modeled-ns/op")
	})
}

// BenchmarkSharing is E4: two VMs contending through the router under the
// fair scheduler.
func BenchmarkSharing(b *testing.B) {
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, benchSilo())
	stack := ava.NewStack(desc, reg)
	b.Cleanup(stack.Close)
	lib1, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "vm1"})
	if err != nil {
		b.Fatal(err)
	}
	lib2, err := stack.AttachVM(ava.VMConfig{ID: 2, Name: "vm2"})
	if err != nil {
		b.Fatal(err)
	}
	w, _ := rodinia.ByName("lud")
	c1, c2 := cl.NewRemote(lib1), cl.NewRemote(lib2)
	for i := 0; i < b.N; i++ {
		done := make(chan error, 2)
		go func() { _, err := w.Run(c1, 1); done <- err }()
		go func() { _, err := w.Run(c2, 1); done <- err }()
		for j := 0; j < 2; j++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSwap is E5: a write/read cycle over 2x oversubscribed device
// memory, every allocation surviving through buffer-granularity swapping.
func BenchmarkSwap(b *testing.B) {
	const devMem = 8 << 20
	const bufSize = 1 << 20
	const count = 2 * devMem / bufSize
	silo := cl.NewSilo(cl.Config{
		Devices: []devsim.Config{{Name: "small-gpu", MemoryBytes: devMem, ComputeUnits: 2}},
	})
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, silo)
	swap.NewManager(silo).Install(reg)
	stack := ava.NewStack(desc, reg)
	b.Cleanup(stack.Close)
	lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "vm"})
	if err != nil {
		b.Fatal(err)
	}
	c := cl.NewRemote(lib)
	ps, _ := c.PlatformIDs()
	ds, _ := c.DeviceIDs(ps[0], cl.DeviceTypeGPU)
	ctx, _ := c.CreateContext(ds)
	q, _ := c.CreateQueue(ctx, ds[0], 0)
	bufs := make([]cl.Ref, count)
	for i := range bufs {
		bufs[i], err = c.CreateBuffer(ctx, 1, bufSize)
		if err != nil {
			b.Fatal(err)
		}
	}
	data := make([]byte, bufSize)
	b.SetBytes(int64(count * bufSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range bufs {
			if err := c.EnqueueWrite(q, bufs[j], true, 0, data); err != nil {
				b.Fatal(err)
			}
		}
		for j := range bufs {
			if err := c.EnqueueRead(q, bufs[j], true, 0, data); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMigration is E6: capture + restore of a populated VM context.
func BenchmarkMigration(b *testing.B) {
	const n = 64 << 10
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srcSilo := benchSilo()
		desc := cl.Descriptor()
		reg := server.NewRegistry(desc)
		cl.BindServer(reg, srcSilo)
		src := ava.NewStack(desc, reg, ava.WithRecording())
		lib, err := src.AttachVM(ava.VMConfig{ID: 1, Name: "vm"})
		if err != nil {
			b.Fatal(err)
		}
		c := cl.NewRemote(lib)
		ps, _ := c.PlatformIDs()
		ds, _ := c.DeviceIDs(ps[0], cl.DeviceTypeGPU)
		ctx, _ := c.CreateContext(ds)
		q, _ := c.CreateQueue(ctx, ds[0], 0)
		for j := 0; j < 8; j++ {
			buf, err := c.CreateBuffer(ctx, 1, n)
			if err != nil {
				b.Fatal(err)
			}
			if err := c.EnqueueWrite(q, buf, true, 0, make([]byte, n)); err != nil {
				b.Fatal(err)
			}
		}
		dstSilo := benchSilo()
		reg2 := server.NewRegistry(desc)
		cl.BindServer(reg2, dstSilo)
		dst := ava.NewStack(desc, reg2, ava.WithRecording())
		dstCtx := dst.Server.Context(1, "vm")
		b.StartTimer()

		snap, err := migrate.Capture(src.Server.Context(1, "vm"), cl.MigrationAdapter{Silo: srcSilo})
		if err != nil {
			b.Fatal(err)
		}
		wire, err := snap.Encode()
		if err != nil {
			b.Fatal(err)
		}
		snap2, err := migrate.Decode(wire)
		if err != nil {
			b.Fatal(err)
		}
		if err := migrate.Restore(snap2, dst.Server, dstCtx, cl.MigrationAdapter{Silo: dstSilo}); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		src.Close()
		dst.Close()
		b.StartTimer()
	}
}

// BenchmarkTransports is E8: one sync call round trip over each transport.
func BenchmarkTransports(b *testing.B) {
	run := func(b *testing.B, kind ava.TransportKind) {
		desc := cl.Descriptor()
		reg := server.NewRegistry(desc)
		cl.BindServer(reg, benchSilo())
		stack := ava.NewStack(desc, reg, ava.WithTransport(kind))
		b.Cleanup(stack.Close)
		lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "vm"})
		if err != nil {
			b.Fatal(err)
		}
		c := cl.NewRemote(lib)
		ps, _ := c.PlatformIDs()
		ds, _ := c.DeviceIDs(ps[0], cl.DeviceTypeGPU)
		ctx, err := c.CreateContext(ds)
		if err != nil {
			b.Fatal(err)
		}
		q, _ := c.CreateQueue(ctx, ds[0], 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Finish(q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("inproc", func(b *testing.B) { run(b, ava.TransportInProc) })
	b.Run("shm-ring", func(b *testing.B) { run(b, ava.TransportRing) })
}

// BenchmarkCallOverhead measures the raw per-call cost of the remoting
// stack, the quantity amortized against kernel time in every experiment:
// a synchronous no-output call (clFinish) and an asynchronous batched call
// (clSetKernelArg).
func BenchmarkCallOverhead(b *testing.B) {
	_, c := benchStack(b)
	ps, _ := c.PlatformIDs()
	ds, _ := c.DeviceIDs(ps[0], cl.DeviceTypeGPU)
	ctx, _ := c.CreateContext(ds)
	q, _ := c.CreateQueue(ctx, ds[0], 0)
	prog, _ := c.CreateProgram(ctx, "vector_add")
	if err := c.BuildProgram(prog, ""); err != nil {
		b.Fatal(err)
	}
	kern, _ := c.CreateKernel(prog, "vector_add")

	b.Run("sync-round-trip", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := c.Finish(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("async-batched", func(b *testing.B) {
		b.ReportAllocs()
		arg := cl.ArgU32(7)
		for i := 0; i < b.N; i++ {
			if err := c.SetKernelArgScalar(kern, 3, arg); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Finish(q); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkEffort is E7 as a compile-speed metric: generating the full
// OpenCL stack from its specification.
func BenchmarkEffort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		desc, err := ava.CompileSpec(cl.Spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(desc.Funcs) != 39 {
			b.Fatal("wrong function count")
		}
	}
}

// BenchmarkBatchingWindow ablates the guest's async batch window (DESIGN
// calls this out as a design choice): 1 = flush after every async call
// (pure per-call forwarding), larger windows coalesce more calls per
// transport frame.
func BenchmarkBatchingWindow(b *testing.B) {
	w, _ := rodinia.ByName("gaussian")
	for _, window := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("window-%d", window), func(b *testing.B) {
			_, c := benchStack(b, guest.WithBatchLimit(window))
			for i := 0; i < b.N; i++ {
				if _, err := w.Run(c, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
