// Vectoradd: the canonical OpenCL program running against the full AvA
// stack — 39 virtualized functions, hypervisor routing, and the simulated
// GPU — compared side by side with a native run on the same silo type.
//
// Run with: go run ./examples/vectoradd
package main

import (
	"fmt"
	"log"
	"time"

	"ava"
	"ava/internal/bytesconv"
	"ava/internal/cl"
	"ava/internal/devsim"
	"ava/internal/server"
)

const n = 1 << 20

func newSilo() *cl.Silo {
	return cl.NewSilo(cl.Config{
		Devices: []devsim.Config{{Name: "example-gpu", MemoryBytes: 512 << 20, ComputeUnits: 8}},
	})
}

func main() {
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = float32(i)
		b[i] = float32(3 * i)
	}

	// Native run.
	t0 := time.Now()
	nativeSum, err := run(cl.NewNative(newSilo()), a, b)
	if err != nil {
		log.Fatal(err)
	}
	nativeTime := time.Since(t0)

	// Remoted run: guest library -> router -> API server -> silo.
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, newSilo())
	stack := ava.NewStack(desc, reg)
	defer stack.Close()
	lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "vectoradd-vm"})
	if err != nil {
		log.Fatal(err)
	}
	client := cl.NewRemote(lib)
	t0 = time.Now()
	remoteSum, err := run(client, a, b)
	if err != nil {
		log.Fatal(err)
	}
	remoteTime := time.Since(t0)

	fmt.Printf("vector add, %d elements\n", n)
	fmt.Printf("  native : sum=%.6g  %v\n", nativeSum, nativeTime)
	fmt.Printf("  ava    : sum=%.6g  %v (%.2fx)\n", remoteSum, remoteTime,
		float64(remoteTime)/float64(nativeTime))
	if nativeSum != remoteSum {
		log.Fatal("results differ!")
	}
	st := lib.Stats()
	fmt.Printf("  guest  : %d calls (%d async), %d transport frames\n",
		st.Calls, st.AsyncCalls, st.Batches)
	rst, _ := stack.Router.Stats(1)
	fmt.Printf("  router : %d forwarded, %d denied, %d bytes, bandwidth estimate %d\n",
		rst.Forwarded, rst.Denied, rst.Bytes, rst.Resources["bandwidth"])
}

func run(c cl.Client, a, b []float32) (float64, error) {
	ps, err := c.PlatformIDs()
	if err != nil {
		return 0, err
	}
	ds, err := c.DeviceIDs(ps[0], cl.DeviceTypeGPU)
	if err != nil {
		return 0, err
	}
	name, _ := c.DeviceInfo(ds[0], cl.DeviceName)
	fmt.Printf("device: %s\n", name)

	ctx, err := c.CreateContext(ds)
	if err != nil {
		return 0, err
	}
	defer c.ReleaseContext(ctx)
	q, err := c.CreateQueue(ctx, ds[0], 0)
	if err != nil {
		return 0, err
	}
	defer c.ReleaseQueue(q)

	bufA, err := c.CreateBuffer(ctx, 1, 4*n)
	if err != nil {
		return 0, err
	}
	bufB, _ := c.CreateBuffer(ctx, 1, 4*n)
	bufO, _ := c.CreateBuffer(ctx, 1, 4*n)
	defer c.ReleaseBuffer(bufA)
	defer c.ReleaseBuffer(bufB)
	defer c.ReleaseBuffer(bufO)

	if err := c.EnqueueWrite(q, bufA, false, 0, bytesconv.Float32Bytes(a)); err != nil {
		return 0, err
	}
	if err := c.EnqueueWrite(q, bufB, false, 0, bytesconv.Float32Bytes(b)); err != nil {
		return 0, err
	}

	prog, err := c.CreateProgram(ctx, "vector_add")
	if err != nil {
		return 0, err
	}
	defer c.ReleaseProgram(prog)
	if err := c.BuildProgram(prog, ""); err != nil {
		return 0, err
	}
	kern, err := c.CreateKernel(prog, "vector_add")
	if err != nil {
		return 0, err
	}
	defer c.ReleaseKernel(kern)

	c.SetKernelArgBuffer(kern, 0, bufA)
	c.SetKernelArgBuffer(kern, 1, bufB)
	c.SetKernelArgBuffer(kern, 2, bufO)
	c.SetKernelArgScalar(kern, 3, cl.ArgU32(n))
	if err := c.EnqueueNDRange(q, kern, []uint64{n}, []uint64{256}); err != nil {
		return 0, err
	}
	if err := c.Finish(q); err != nil {
		return 0, err
	}

	out := make([]byte, 4*n)
	if err := c.EnqueueRead(q, bufO, true, 0, out); err != nil {
		return 0, err
	}
	if err := c.DeferredError(); err != nil {
		return 0, err
	}
	var sum float64
	for _, v := range bytesconv.ToFloat32(out) {
		sum += float64(v)
	}
	return sum, nil
}
