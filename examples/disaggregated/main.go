// Disaggregated: the guest uses an accelerator that lives on another
// machine. The API server runs behind a TCP listener (as cmd/avad does);
// the hypervisor router forwards the guest's calls over the socket — the
// pluggable-transport, resource-disaggregation configuration of §4.1.
//
// Run with: go run ./examples/disaggregated
package main

import (
	"fmt"
	"log"
	"time"

	"ava/internal/bytesconv"
	"ava/internal/cl"
	"ava/internal/devsim"
	"ava/internal/guest"
	"ava/internal/hv"
	"ava/internal/server"
	"ava/internal/transport"
)

const n = 1 << 18

func main() {
	// "Remote machine": an API server with the GPU, listening on TCP.
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go func() {
		silo := cl.NewSilo(cl.Config{
			Devices: []devsim.Config{{Name: "remote-gpu", MemoryBytes: 512 << 20, ComputeUnits: 8}},
		})
		desc := cl.Descriptor()
		reg := server.NewRegistry(desc)
		cl.BindServer(reg, silo)
		srv := server.New(reg)
		for {
			ep, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeVM(srv.Context(1, "remote-vm"), ep)
		}
	}()

	// "Hypervisor host": the router interposes locally, then forwards over
	// the socket to the disaggregated accelerator.
	desc := cl.Descriptor()
	router := hv.NewRouter(desc, nil, nil)
	if err := router.RegisterVM(hv.VMConfig{ID: 1, Name: "remote-vm"}); err != nil {
		log.Fatal(err)
	}
	guestEP, routerGuest := transport.NewInProc()
	routerServer, err := transport.Dial(l.Addr())
	if err != nil {
		log.Fatal(err)
	}
	go router.Attach(1, routerGuest, routerServer)
	defer guestEP.Close()

	// "Guest VM": ordinary OpenCL, unaware the GPU is across the network.
	c := cl.NewRemote(guest.New(desc, guestEP))
	ps, err := c.PlatformIDs()
	if err != nil {
		log.Fatal(err)
	}
	ds, _ := c.DeviceIDs(ps[0], cl.DeviceTypeGPU)
	name, _ := c.DeviceInfo(ds[0], cl.DeviceName)
	fmt.Printf("guest sees device %q over %s\n", name, l.Addr())

	ctx, err := c.CreateContext(ds)
	if err != nil {
		log.Fatal(err)
	}
	q, _ := c.CreateQueue(ctx, ds[0], 0)
	bufX, _ := c.CreateBuffer(ctx, 1, 4*n)
	bufY, _ := c.CreateBuffer(ctx, 1, 4*n)

	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		x[i], y[i] = float32(i), 1
	}
	start := time.Now()
	if err := c.EnqueueWrite(q, bufX, false, 0, bytesconv.Float32Bytes(x)); err != nil {
		log.Fatal(err)
	}
	if err := c.EnqueueWrite(q, bufY, false, 0, bytesconv.Float32Bytes(y)); err != nil {
		log.Fatal(err)
	}
	prog, _ := c.CreateProgram(ctx, "saxpy")
	if err := c.BuildProgram(prog, ""); err != nil {
		log.Fatal(err)
	}
	kern, _ := c.CreateKernel(prog, "saxpy")
	c.SetKernelArgScalar(kern, 0, cl.ArgF32(2.0))
	c.SetKernelArgBuffer(kern, 1, bufX)
	c.SetKernelArgBuffer(kern, 2, bufY)
	c.SetKernelArgScalar(kern, 3, cl.ArgU32(n))
	if err := c.EnqueueNDRange(q, kern, []uint64{n}, []uint64{256}); err != nil {
		log.Fatal(err)
	}
	out := make([]byte, 4*n)
	if err := c.EnqueueRead(q, bufY, true, 0, out); err != nil {
		log.Fatal(err)
	}
	if err := c.DeferredError(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	res := bytesconv.ToFloat32(out)
	for i := range res {
		if res[i] != 2*float32(i)+1 {
			log.Fatalf("saxpy wrong at %d: %v", i, res[i])
		}
	}
	st, _ := router.Stats(1)
	fmt.Printf("saxpy over %d elements across TCP: %v, %d calls forwarded, %.1f MB moved\n",
		n, elapsed.Round(time.Millisecond), st.Forwarded, float64(st.Bytes)/(1<<20))
	fmt.Println("result verified: y = 2x + 1")
}
