// Migration: live-migrate a guest's accelerator state between two API
// servers (§4.3). The application uploads data, binds kernel arguments and
// runs a launch on host A; the hypervisor captures the record/replay
// snapshot and synthesized buffer copies, moves them to host B (a fresh
// silo), and the application resumes with its original handles — reading
// the pre-migration result and launching again, none the wiser.
//
// Run with: go run ./examples/migration
package main

import (
	"fmt"
	"log"
	"time"

	"ava"
	"ava/internal/bytesconv"
	"ava/internal/cl"
	"ava/internal/devsim"
	"ava/internal/migrate"
	"ava/internal/server"
)

const n = 4096

func newStack() (*ava.Stack, *cl.Silo) {
	silo := cl.NewSilo(cl.Config{
		Devices: []devsim.Config{{Name: "gpu", MemoryBytes: 256 << 20, ComputeUnits: 4}},
	})
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, silo)
	return ava.NewStack(desc, reg, ava.WithRecording()), silo
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	// --- Host A: the application sets up and computes. ---
	srcStack, srcSilo := newStack()
	lib1, err := srcStack.AttachVM(ava.VMConfig{ID: 42, Name: "migrating-vm"})
	must(err)
	c1 := cl.NewRemote(lib1)

	ps, _ := c1.PlatformIDs()
	ds, _ := c1.DeviceIDs(ps[0], cl.DeviceTypeGPU)
	ctx, err := c1.CreateContext(ds)
	must(err)
	q, err := c1.CreateQueue(ctx, ds[0], 0)
	must(err)
	bufA, _ := c1.CreateBuffer(ctx, 1, 4*n)
	bufB, _ := c1.CreateBuffer(ctx, 1, 4*n)
	bufO, _ := c1.CreateBuffer(ctx, 1, 4*n)
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i], b[i] = float32(i), float32(100*i)
	}
	must(c1.EnqueueWrite(q, bufA, true, 0, bytesconv.Float32Bytes(a)))
	must(c1.EnqueueWrite(q, bufB, true, 0, bytesconv.Float32Bytes(b)))
	prog, _ := c1.CreateProgram(ctx, "vector_add")
	must(c1.BuildProgram(prog, ""))
	kern, _ := c1.CreateKernel(prog, "vector_add")
	c1.SetKernelArgBuffer(kern, 0, bufA)
	c1.SetKernelArgBuffer(kern, 1, bufB)
	c1.SetKernelArgBuffer(kern, 2, bufO)
	c1.SetKernelArgScalar(kern, 3, cl.ArgU32(n))
	must(c1.EnqueueNDRange(q, kern, []uint64{n}, []uint64{256}))
	must(c1.Finish(q))
	fmt.Println("host A: application initialized, one kernel executed")

	// --- The hypervisor migrates the VM. ---
	srcCtx := srcStack.Server.Context(42, "migrating-vm")
	start := time.Now()
	snap, err := migrate.Capture(srcCtx, cl.MigrationAdapter{Silo: srcSilo})
	must(err)
	wire, err := snap.Encode()
	must(err)
	captureTime := time.Since(start)
	fmt.Printf("captured: %d recorded calls, %d stateful buffers, %d-byte snapshot (%v)\n",
		len(snap.Log), len(snap.Objects), len(wire), captureTime.Round(time.Microsecond))

	dstStack, dstSilo := newStack()
	defer dstStack.Close()
	dstCtx := dstStack.Server.Context(42, "migrating-vm")
	start = time.Now()
	snap2, err := migrate.Decode(wire)
	must(err)
	must(migrate.Restore(snap2, dstStack.Server, dstCtx, cl.MigrationAdapter{Silo: dstSilo}))
	fmt.Printf("restored on host B in %v\n", time.Since(start).Round(time.Microsecond))
	srcStack.Close()

	// --- Host B: the application resumes with its ORIGINAL handles. ---
	lib2, err := dstStack.AttachVM(ava.VMConfig{ID: 42, Name: "migrating-vm"})
	must(err)
	c2 := cl.NewRemote(lib2)

	out := make([]byte, 4*n)
	must(c2.EnqueueRead(q, bufO, true, 0, out))
	res := bytesconv.ToFloat32(out)
	fmt.Printf("host B: pre-migration result intact: out[1]=%v out[%d]=%v\n",
		res[1], n-1, res[n-1])

	// Keep computing: kernel arguments survived the replay.
	must(c2.EnqueueNDRange(q, kern, []uint64{n}, []uint64{256}))
	must(c2.Finish(q))
	must(c2.EnqueueRead(q, bufO, true, 0, out))
	for i, v := range bytesconv.ToFloat32(out) {
		if v != float32(101*i) {
			log.Fatalf("post-migration result wrong at %d: %v", i, v)
		}
	}
	fmt.Println("host B: post-migration launch verified — application never noticed")
}
