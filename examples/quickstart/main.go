// Quickstart: virtualize a brand-new accelerator API with AvA.
//
// This is the paper's end-to-end workflow (Figure 2) in one file:
//
//  1. Start from bare C-like declarations for a fictional "cryptodev"
//     accelerator and let CAvA infer a preliminary specification.
//  2. Refine it (here: one annotation CAvA cannot infer).
//  3. Compile the spec, implement the silo glue, and assemble the full
//     stack: guest library → hypervisor router → API server.
//  4. Call the virtualized API from a "VM".
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ava"
	"ava/internal/marshal"
	"ava/internal/server"
)

// bareHeader is what a vendor ships: declarations, no semantics.
const bareHeader = `
api "cryptodev" version "0.9";

handle crypto_ctx;

const CRYPTO_OK = 0;

type crypto_status = int32_t { success(CRYPTO_OK); };

crypto_status cryptoOpen(uint32_t flags, crypto_ctx *ctx_out) {
  parameter(ctx_out) { out; element { allocates; } }
  track(create, ctx_out);
}

crypto_status cryptoSetKey(crypto_ctx ctx, const uint8_t *key, size_t key_size) {
  track(modify, ctx);
}

crypto_status cryptoEncrypt(crypto_ctx ctx, size_t size, const void *plain,
                            void *cipher) {
  parameter(cipher) { out; buffer(size); }
}

crypto_status cryptoClose(crypto_ctx ctx) {
  track(destroy, ctx);
}
`

func main() {
	// Step 1-2: CAvA infers what the declarations imply (const uint8_t*
	// key is an input buffer sized by key_size; plain needs review...) and
	// prints the preliminary spec a developer would refine.
	preliminary, notes, err := ava.InferSpec(bareHeader)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== CAvA inference notes ===")
	for _, n := range notes {
		fmt.Println(" ", n)
	}
	fmt.Println("\n=== preliminary specification ===")
	fmt.Println(preliminary)

	// Step 3: compile the (inferred) specification into a stack
	// descriptor. For this API the inference is already complete.
	desc, err := ava.CompileSpec(preliminary)
	if err != nil {
		log.Fatal(err)
	}

	// The silo glue: a toy XOR "accelerator". This is the only hand-
	// written per-API server code.
	type cryptoCtx struct{ key []byte }
	reg := server.NewRegistry(desc)
	reg.MustRegister("cryptoOpen", func(v *server.Invocation) error {
		h := v.Ctx.Handles.Insert(&cryptoCtx{})
		v.SetOutHandle(1, h)
		v.SetStatus(0)
		return nil
	})
	reg.MustRegister("cryptoSetKey", func(v *server.Invocation) error {
		obj, ok := v.Ctx.Handles.Get(v.Handle(0))
		if !ok {
			v.SetStatus(-1)
			return nil
		}
		obj.(*cryptoCtx).key = append([]byte(nil), v.Bytes(1)...)
		v.SetStatus(0)
		return nil
	})
	reg.MustRegister("cryptoEncrypt", func(v *server.Invocation) error {
		obj, ok := v.Ctx.Handles.Get(v.Handle(0))
		if !ok || len(obj.(*cryptoCtx).key) == 0 {
			v.SetStatus(-1)
			return nil
		}
		key := obj.(*cryptoCtx).key
		plain, cipher := v.Bytes(2), v.Bytes(3)
		for i := range plain {
			cipher[i] = plain[i] ^ key[i%len(key)]
		}
		v.SetStatus(0)
		return nil
	})
	reg.MustRegister("cryptoClose", func(v *server.Invocation) error {
		v.Ctx.Handles.Remove(v.Handle(0))
		v.SetStatus(0)
		return nil
	})

	// Step 4: assemble the stack and use the API from a guest VM.
	stack := ava.NewStack(desc, reg)
	defer stack.Close()
	lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "quickstart-vm"})
	if err != nil {
		log.Fatal(err)
	}

	var ctx marshal.Handle
	if _, err := lib.Call("cryptoOpen", uint32(0), &ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := lib.Call("cryptoSetKey", ctx, []byte("ava-secret"), uint64(10)); err != nil {
		log.Fatal(err)
	}
	plain := []byte("accelerators want to be virtualized")
	cipher := make([]byte, len(plain))
	if _, err := lib.Call("cryptoEncrypt", ctx, uint64(len(plain)), plain, cipher); err != nil {
		log.Fatal(err)
	}
	back := make([]byte, len(plain))
	if _, err := lib.Call("cryptoEncrypt", ctx, uint64(len(plain)), cipher, back); err != nil {
		log.Fatal(err)
	}
	if _, err := lib.Call("cryptoClose", ctx); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== remoted round trip ===")
	fmt.Printf("plain : %q\n", plain)
	fmt.Printf("cipher: %x\n", cipher[:16])
	fmt.Printf("back  : %q\n", back)
	st := lib.Stats()
	fmt.Printf("\nguest stats: %d calls (%d sync), %d bytes out, %d bytes in\n",
		st.Calls, st.SyncCalls, st.BytesSent, st.BytesRecv)
}
