// Multitenant: three guest VMs share one simulated GPU through the
// hypervisor router — the consolidation the paper argues pass-through
// cannot provide (§1). A fair-share scheduler arbitrates device time at
// call granularity, one VM is given double weight, and a third is
// rate-limited; per-VM router statistics show the policies acting.
//
// Run with: go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"ava"
	"ava/internal/cl"
	"ava/internal/devsim"
	"ava/internal/hv"
	"ava/internal/rodinia"
	"ava/internal/server"
)

func main() {
	silo := cl.NewSilo(cl.Config{
		Devices: []devsim.Config{{Name: "shared-gpu", MemoryBytes: 1 << 30, ComputeUnits: 4}},
	})
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, silo)

	sched := hv.NewFairScheduler(5 * time.Millisecond)
	stack := ava.NewStack(desc, reg, ava.WithScheduler(sched))
	defer stack.Close()

	vms := []ava.VMConfig{
		{ID: 1, Name: "tenant-gold", Weight: 2},
		{ID: 2, Name: "tenant-std", Weight: 1},
		{ID: 3, Name: "tenant-capped", Weight: 1, CallsPerSec: 5000, CallBurst: 64},
	}
	w, _ := rodinia.ByName("pathfinder")

	var wg sync.WaitGroup
	times := make([]time.Duration, len(vms))
	for i, cfg := range vms {
		lib, err := stack.AttachVM(cfg)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			if _, err := w.Run(cl.NewRemote(lib), 1); err != nil {
				log.Printf("%s: %v", vms[i].Name, err)
				return
			}
			times[i] = time.Since(start)
		}(i)
	}
	wg.Wait()

	fmt.Println("three tenants ran the pathfinder workload concurrently on one GPU:")
	fmt.Printf("%-15s %-10s %-10s %-10s %-12s %-12s\n",
		"tenant", "weight", "runtime", "forwarded", "stall", "device-busy")
	for i, cfg := range vms {
		st, err := stack.Router.Stats(cfg.ID)
		if err != nil {
			log.Fatal(err)
		}
		busy := silo.GetPlatformIDs()[0]
		_ = busy
		fmt.Printf("%-15s %-10d %-10v %-10d %-12v %-12v\n",
			cfg.Name, max(cfg.Weight, 1), times[i].Round(time.Millisecond),
			st.Forwarded, st.Stall.Round(time.Millisecond),
			deviceBusy(silo, cfg.Name))
	}
	fmt.Println("\nthe capped tenant accumulates stall from its token bucket;")
	fmt.Println("the fair scheduler keeps device-time shares proportional to weight.")
}

// deviceBusy reads the per-client kernel-time accounting off the device.
func deviceBusy(silo *cl.Silo, client string) time.Duration {
	ds, _ := silo.GetDeviceIDs(silo.GetPlatformIDs()[0], cl.DeviceTypeGPU)
	return ds[0].Sim().BusyTime(client)
}
