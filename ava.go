// Package ava assembles complete AvA stacks: automatic virtualization of
// accelerator APIs by API remoting, after Yu, Peters, Akshintala and
// Rossbach, "Automatic Virtualization of Accelerators" (HotOS 2019).
//
// An AvA stack for an API consists of (Figure 3 of the paper):
//
//   - a guest library that intercepts and marshals API calls in a VM
//     (internal/guest, driven by metadata compiled from the API's CAvA
//     specification by internal/cava),
//   - a hypervisor-level router that verifies, rate-limits and schedules
//     forwarded calls over interposable transport (internal/hv,
//     internal/transport),
//   - an API server that executes calls against the accelerator silo under
//     per-VM isolation (internal/server).
//
// This package wires those components together. Given a compiled
// Descriptor and a silo's handler registry, NewStack builds the router and
// server; AttachVM connects one guest, returning the guest library an
// application (or a generated typed binding such as cl.RemoteClient) uses.
//
//	desc := cl.Descriptor()
//	reg := server.NewRegistry(desc)
//	cl.BindServer(reg, silo)
//	stack := ava.NewStack(desc, reg)
//	lib, _ := stack.AttachVM(ava.VMConfig{ID: 1, Name: "guest-vm"})
//	client := cl.NewRemote(lib)
package ava

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ava/internal/averr"
	"ava/internal/cava"
	"ava/internal/clock"
	"ava/internal/failover"
	"ava/internal/fleet"
	"ava/internal/guest"
	"ava/internal/hv"
	"ava/internal/migrate"
	"ava/internal/sched"
	"ava/internal/server"
	"ava/internal/spec"
	"ava/internal/transport"
)

// Re-exported aliases so stack consumers rarely need the internal paths.
type (
	// Descriptor is a compiled API stack descriptor.
	Descriptor = cava.Descriptor
	// VMConfig is the per-VM sharing policy.
	VMConfig = hv.VMConfig
	// Scheduler orders calls across contending VMs.
	Scheduler = hv.Scheduler
	// GuestLib is the descriptor-driven guest stub engine.
	GuestLib = guest.Lib
	// CallOptions carries per-call deadline and priority metadata
	// (guest.CallOptions; pass to GuestLib.CallWith or a binding's With).
	CallOptions = guest.CallOptions
	// CallOption adjusts one call's forwarding metadata (guest.CallOption;
	// built with guest.WithTimeout, guest.WithPriority, ...).
	CallOption = guest.CallOption
	// ShedConfig tunes the router's load shedder (hv.ShedConfig).
	ShedConfig = hv.ShedConfig
	// SchedPolicy orders placement candidates for a VM (sched.Policy;
	// built-ins: sched.LeastLoad, sched.NewSpreadByVMCount).
	SchedPolicy = sched.Policy
	// SchedDecision is one recorded scheduling choice (sched.Decision).
	SchedDecision = sched.Decision
	// RebalanceConfig tunes the background rebalancer (sched.Config).
	RebalanceConfig = sched.Config
)

// Stack-wide sentinel errors (internal/averr), usable with errors.Is on
// any error surfaced by any layer.
var (
	// ErrDeadlineExceeded reports a call whose deadline passed before it
	// completed, whether it failed fast in the guest, was denied at the
	// router, or was aborted at the server.
	ErrDeadlineExceeded = averr.ErrDeadlineExceeded
	// ErrCanceled reports a call aborted by an explicit cancellation.
	ErrCanceled = averr.ErrCanceled
	// ErrOverloaded reports a call shed by the router's overload control.
	ErrOverloaded = averr.ErrOverloaded
	// ErrUnknownVM reports routing or stats for an unregistered VM.
	ErrUnknownVM = averr.ErrUnknownVM
	// ErrBadArg reports arguments that do not match the specification.
	ErrBadArg = averr.ErrBadArg
	// ErrRetryable reports a call lost to an API-server failure that the
	// failover layer could not transparently resubmit; the caller may
	// safely reissue it.
	ErrRetryable = averr.ErrRetryable
)

// CompileSpec parses and compiles a CAvA specification.
func CompileSpec(src string) (*Descriptor, error) {
	api, err := spec.Parse(src)
	if err != nil {
		return nil, err
	}
	return cava.Compile(api)
}

// GenerateStack emits the generated Go source for an API's stack
// components (typed guest library + server dispatch scaffolding), as the
// cava command does.
func GenerateStack(desc *Descriptor, specSrc string) ([]byte, cava.GenStats, error) {
	return cava.Generate(desc, specSrc, cava.GenOptions{})
}

// InferSpec generates a preliminary annotated specification from bare
// declarations (the CAvA workflow of Figure 2) and returns its canonical
// text plus the inference notes for developer review.
func InferSpec(src string) (string, []spec.Note, error) {
	api, err := spec.ParseNoValidate(src)
	if err != nil {
		return "", nil, err
	}
	notes := spec.Infer(api)
	return spec.Print(api), notes, nil
}

// TransportKind selects the remoting transport for a VM attachment.
type TransportKind int

// Available transports.
const (
	// TransportInProc uses channel pairs (hypercall-like, the default).
	TransportInProc TransportKind = iota
	// TransportRing uses simulated shared-memory FIFO rings (the SVGA-
	// style hypervisor-managed queues the paper cites).
	TransportRing
)

// Option configures a Stack at construction; pass options to NewStack.
// Each With* option sets one cohesive knob; WithConfig applies a full
// Config literal for callers that prefer to build one programmatically.
type Option func(*Config)

// Config is a Stack's full configuration, grouped by the layer each knob
// steers. The zero value is a working default (in-process transport, FIFO
// scheduling, wall clock, no recording, no shedding, no failover).
// Options populate it; NewStack consumes it.
type Config struct {
	// Scheduler orders calls across contending VMs; nil = FIFO.
	Scheduler hv.Scheduler
	// Clock is the stack-wide time source (guest stamping, router
	// admission, server dispatch); nil = wall clock.
	Clock clock.Clock
	// Transport groups the wiring between guest, router and server.
	Transport TransportConfig
	// Router groups hypervisor-side admission control.
	Router RouterConfig
	// Server groups API-server execution policy.
	Server ServerConfig
	// Guest groups defaults applied to every attached guest library.
	Guest GuestConfig
	// Failover enables fault-tolerant remoting for attached VMs: a per-VM
	// guardian shadows the record log, checkpoints periodically, and on
	// API-server failure respawns or re-dials the server, replays state,
	// and directs the guest library to resubmit its unacked calls. Nil
	// disables.
	Failover *FailoverConfig
	// Placement enables admission-time placement: every attached VM dials
	// the fleet registry through a per-VM FleetDialer ranked by the
	// configured policy, and each landing is recorded in the scheduling
	// decision log. Implies failover (a zero FailoverConfig is assumed
	// when Failover is nil). Nil disables.
	Placement *PlacementConfig
	// Rebalance starts the background rebalancer over the placement
	// fleet: sustained load skew live-migrates VMs off hot hosts through
	// the guardian's checkpoint/migrate machinery. Requires Placement.
	// Nil disables.
	Rebalance *RebalanceConfig
}

// TransportConfig selects and sizes the remoting transport.
type TransportConfig struct {
	// Kind selects the guest↔router and router↔server transports.
	Kind TransportKind
	// RingBytes sizes each ring when Kind == TransportRing; 0 = 1MiB.
	RingBytes int
}

// RouterConfig groups hypervisor-side admission policy.
type RouterConfig struct {
	// Shed configures the router's load shedder; the zero value leaves
	// shedding off.
	Shed hv.ShedConfig
}

// ServerConfig groups API-server execution policy.
type ServerConfig struct {
	// Recording enables the migration record log for attached VMs (§4.3);
	// off by default because tracking costs time on call-heavy workloads.
	Recording bool
}

// GuestConfig groups guest-library defaults.
type GuestConfig struct {
	// Options apply to every attached guest library (e.g.
	// guest.WithForceSync() for the paper's unoptimized-spec ablation).
	Options []guest.Option
}

// WithConfig replaces the accumulated configuration wholesale.
func WithConfig(cfg Config) Option { return func(c *Config) { *c = cfg } }

// WithScheduler sets the cross-VM scheduler.
func WithScheduler(s hv.Scheduler) Option { return func(c *Config) { c.Scheduler = s } }

// WithClock sets the stack-wide time source.
func WithClock(clk clock.Clock) Option { return func(c *Config) { c.Clock = clk } }

// WithTransport selects the remoting transport kind.
func WithTransport(k TransportKind) Option { return func(c *Config) { c.Transport.Kind = k } }

// WithRingTransport selects the shared-memory ring transport sized at n
// bytes per ring (0 = 1MiB).
func WithRingTransport(n int) Option {
	return func(c *Config) { c.Transport = TransportConfig{Kind: TransportRing, RingBytes: n} }
}

// WithRecording enables the migration record log for attached VMs.
func WithRecording() Option { return func(c *Config) { c.Server.Recording = true } }

// WithShedding configures the router's load shedder.
func WithShedding(cfg hv.ShedConfig) Option { return func(c *Config) { c.Router.Shed = cfg } }

// WithGuestDefaults appends options applied to every attached guest
// library (per-attachment options still override them).
func WithGuestDefaults(opts ...guest.Option) Option {
	return func(c *Config) { c.Guest.Options = append(c.Guest.Options, opts...) }
}

// WithFailover enables fault-tolerant remoting with the given tuning.
func WithFailover(fc FailoverConfig) Option {
	return func(c *Config) { c.Failover = &fc }
}

// WithPlacement enables registry-backed admission-time placement.
func WithPlacement(pc PlacementConfig) Option {
	return func(c *Config) { c.Placement = &pc }
}

// WithMirror streams every attached VM's shadow log to sink (enabling
// failover with default tuning when WithFailover was not given). Delta
// capability is auto-detected from the sink. Apply after WithFailover —
// WithFailover replaces the whole failover config.
func WithMirror(sink failover.LogSink) Option {
	return func(c *Config) {
		if c.Failover == nil {
			c.Failover = &FailoverConfig{}
		}
		c.Failover.Replication.Sink = failover.UseSink(sink)
	}
}

// WithRemoteMirror replicates every attached VM's shadow log to the AVAM
// mirror listener at addr — a peer avad started with -mirror — so a
// replacement guardian on a different machine can rehydrate from it
// (failover.FetchMirrorState). Enables failover with default tuning when
// WithFailover was not given; apply after WithFailover.
func WithRemoteMirror(addr string) Option {
	return func(c *Config) {
		if c.Failover == nil {
			c.Failover = &FailoverConfig{}
		}
		c.Failover.Replication.RemoteAddr = addr
	}
}

// WithRebalance starts the background rebalancer; requires WithPlacement.
// An Interval of 0 builds the rebalancer in manual mode — no background
// loop; Stack.Rebalancer().Tick()/Kick() drive it — which is what
// deterministic tests and operator-triggered-only deployments want.
func WithRebalance(rc RebalanceConfig) Option {
	return func(c *Config) { c.Rebalance = &rc }
}

// PlacementConfig wires a stack to a fleet registry for admission-time
// placement (see internal/sched). Every attached VM gets a FleetDialer
// over Locator whose candidate ranking is delegated to Policy; landings
// feed the decision log and, for history-tracking policies, the policy's
// observed placements.
type PlacementConfig struct {
	// Locator is the fleet registry handle (fleet.Registry in-process, or
	// a fleet.Client over TCP). Required.
	Locator fleet.Locator
	// API names the accelerator API requested from the registry; "" uses
	// the stack descriptor's name.
	API string
	// Policy ranks live candidates per VM; nil = sched.LeastLoad.
	Policy sched.Policy
	// PerHostAttempts is the dialer's same-host retry budget; 0 = 2.
	PerHostAttempts int
	// Resolve overrides how a chosen member becomes a live ServerLink for
	// one VM; nil = TCP dial to m.Addr with the hello preamble (the avad
	// wire). Tests use it to simulate a fleet in-process.
	Resolve func(vm uint32, m fleet.Member, epoch uint32) (failover.ServerLink, error)
	// Log receives placement/failover/rebalance decisions; nil builds a
	// fresh log (read it back via Stack.SchedLog).
	Log *sched.Log
}

// FailoverConfig tunes the per-VM failover guardian (see internal/failover).
type FailoverConfig struct {
	// Adapter supplies silo-specific object snapshot/restore, as for
	// migration. Nil disables object-state checkpointing (replay alone
	// reconstructs objects; stateful contents are lost on recovery).
	Adapter migrate.Adapter
	// Checkpoint groups checkpoint cadence policy.
	Checkpoint CheckpointConfig
	// Liveness groups failure-detection timing.
	Liveness LivenessConfig
	// Backoff shapes respawn retries and the guest's shared retry budget.
	Backoff failover.BackoffConfig
	// Retain caps the guest's retained-call window; 0 = 4096.
	Retain int
	// Replication groups shadow-log mirroring and rehydration.
	Replication ReplicationConfig
	// Dial, when set, replaces the default in-process server respawn with
	// a custom server dialer — e.g. a failover.FleetDialer's Dial bound to
	// a fleet registry for cross-host failover. The guardian calls it
	// under its respawn backoff budget; each call is one attempt.
	Dial func(id uint32, name string) (failover.ServerLink, error)
	// Host, when set alongside Dial, reports the identity of the host the
	// last successful dial landed on (failover.FleetDialer.Host); the
	// stack feeds it to the router's serving-host re-fence bookkeeping.
	// The default in-process dial always reports "local".
	Host func(id uint32) string
	// WrapServerLink, when set, wraps each freshly dialed router→server
	// endpoint — e.g. transport.NewFlaky for fault injection in tests.
	// Ignored when Dial is set (wrap inside the custom dialer instead).
	WrapServerLink func(transport.Endpoint) transport.Endpoint
}

// CheckpointConfig groups the guardian's checkpoint cadence.
type CheckpointConfig struct {
	// Every cuts a quiesced checkpoint after this many calls; 0 disables
	// periodic checkpoints.
	Every int
	// Adaptive scales the cadence with device load: a due checkpoint is
	// deferred while synchronous calls are in flight (the quiesce barrier
	// would stall them) until the uncheckpointed span approaches half the
	// retained window, and the heartbeat cuts overdue checkpoints as soon
	// as the link goes idle.
	Adaptive bool
}

// LivenessConfig groups the guardian's failure-detection timing.
type LivenessConfig struct {
	// HeartbeatEvery probes server liveness when the link has been idle
	// this long; 0 disables probing (transport errors still detect death).
	HeartbeatEvery time.Duration
	// Timeout bounds quiesce/liveness marker round trips; 0 = 2s.
	Timeout time.Duration
}

// ReplicationConfig groups shadow-log mirroring and rehydration, the
// guardian-crash half of cross-host recovery. Exactly one of Sink, Mirror
// or RemoteAddr names the mirror destination (Sink wins, then Mirror, then
// RemoteAddr); WithMirror and WithRemoteMirror set them without spelling
// the nesting out.
type ReplicationConfig struct {
	// Mirror, if set, receives a synchronous stream of the guardian's
	// shadow-log mutations (failover.LogSink) so replay state survives a
	// guardian crash, not just an API-server crash.
	//
	// Deprecated: set Sink (failover.UseSink(s)) or use WithMirror. The
	// field keeps working — it is folded into Sink when Sink is unset.
	Mirror failover.LogSink
	// Sink names the replication sink once, with delta capability
	// auto-detected when Sink.Delta is nil; see failover.SinkConfig.
	Sink failover.SinkConfig
	// RemoteAddr, when non-empty (and no in-process sink is set),
	// replicates each attached VM's shadow log to the AVAM mirror listener
	// at this address (a peer avad started with -mirror). Each VM gets its
	// own failover.RemoteMirror, closed on detach; a replacement stack on
	// any machine rehydrates with failover.FetchMirrorState(addr, vm) into
	// Restore.
	RemoteAddr string
	// Restore, if set, rehydrates the guardian from a mirrored shadow log
	// instead of starting empty: on attach the guardian replays the
	// restored log onto a freshly dialed server and tells the guest to
	// resubmit everything past the restored watermark.
	Restore *failover.MirrorState
}

// sinkFor resolves the replication wiring for one VM, building the per-VM
// RemoteMirror when the config names a remote address. The bool reports
// whether the returned sink is a RemoteMirror the attachment must close.
func (rc ReplicationConfig) sinkFor(vm uint32, name string, bo failover.BackoffConfig) (failover.SinkConfig, *failover.RemoteMirror) {
	if rc.Sink.Log != nil {
		return rc.Sink, nil
	}
	if rc.Mirror != nil {
		return failover.UseSink(rc.Mirror), nil
	}
	if rc.RemoteAddr != "" {
		rm := failover.NewRemoteMirror(rc.RemoteAddr, failover.RemoteMirrorConfig{
			VM: vm, Name: name, Backoff: bo,
		})
		return failover.UseSink(rm), rm
	}
	return failover.SinkConfig{}, nil
}

// Stack is an assembled AvA deployment for one API: one router, one API
// server, any number of attached VMs.
type Stack struct {
	Desc   *cava.Descriptor
	Router *hv.Router
	Server *server.Server

	cfg  Config
	breg *transport.BufRegistry // shared-address-space deployments only

	policy     sched.Policy // placement ranking; nil without Placement
	schedLog   *sched.Log   // decision log; nil without Placement
	rebalancer *sched.Rebalancer

	mu         sync.Mutex
	vms        map[uint32]*attachment
	relocating map[uint32]bool // VMs with a rebalance move in flight
}

type attachment struct {
	lib      *guest.Lib
	eps      []transport.Endpoint
	done     chan struct{}
	guardian *failover.Guardian
	dialer   *failover.FleetDialer  // placement-built dialer, else nil
	remote   *failover.RemoteMirror // stack-built remote mirror, else nil
}

// NewStack builds the hypervisor and server halves over a silo registry.
func NewStack(desc *cava.Descriptor, reg *server.Registry, opts ...Option) *Stack {
	var cfg Config
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	s := &Stack{
		Desc:       desc,
		Router:     hv.NewRouter(desc, cfg.Scheduler, cfg.Clock),
		Server:     server.New(reg),
		cfg:        cfg,
		vms:        make(map[uint32]*attachment),
		relocating: make(map[uint32]bool),
	}
	s.Router.SetShedPolicy(cfg.Router.Shed)
	if pc := cfg.Placement; pc != nil && pc.Locator != nil {
		s.policy = pc.Policy
		if s.policy == nil {
			s.policy = sched.LeastLoad{}
		}
		s.schedLog = pc.Log
		if s.schedLog == nil {
			s.schedLog = sched.NewLog()
		}
		if rc := cfg.Rebalance; rc != nil {
			background := rc.Interval > 0
			rcv := *rc
			if rcv.Policy == nil {
				rcv.Policy = s.policy
			}
			if rcv.Log == nil {
				rcv.Log = s.schedLog
			}
			if rcv.Clock == nil {
				rcv.Clock = cfg.Clock
			}
			s.rebalancer = sched.New(rcv, s.hostLoads, s.MigrateVM)
			if background {
				s.rebalancer.Start()
			}
		}
	}
	// Both built-in transports keep guest and server in one address space
	// (InProc channels; the ring simulates hypervisor shared memory), so
	// the registered-buffer fast path applies: one registry, shared by the
	// guest libraries and the server. A cross-machine deployment (TCP,
	// assembled manually) never gets one.
	s.breg = transport.NewBufRegistry()
	s.Server.SetBufRegistry(s.breg)
	return s
}

// BufRegistry returns the stack's shared registered-buffer registry.
// Applications register transfer regions through the guest library
// (GuestLib.RegisterBuffer); direct access is for tests and tools.
func (s *Stack) BufRegistry() *transport.BufRegistry { return s.breg }

func (s *Stack) pair() (transport.Endpoint, transport.Endpoint) {
	switch s.cfg.Transport.Kind {
	case TransportRing:
		n := s.cfg.Transport.RingBytes
		if n <= 0 {
			n = 1 << 20
		}
		return transport.NewRing(n)
	default:
		return transport.NewInProc()
	}
}

// newContext builds a fresh server-side execution context for one VM,
// wired to the stack's recording policy and clock.
func (s *Stack) newContext(id uint32, name string) *server.Context {
	ctx := s.Server.Context(id, name)
	ctx.SetRecording(s.cfg.Server.Recording)
	if s.cfg.Clock != nil {
		ctx.SetClock(s.cfg.Clock)
	}
	return ctx
}

// AttachVM registers a VM with the router, starts its router and server
// loops, and returns the guest library bound to its transport. With
// Config.Failover set, a per-VM guardian is interposed between the router
// and the API server: it shadows the record log, checkpoints periodically,
// and on server failure respawns a fresh server incarnation, replays its
// state, and coordinates the guest library's transparent resubmission.
func (s *Stack) AttachVM(cfg VMConfig, opts ...guest.Option) (*guest.Lib, error) {
	if err := s.Router.RegisterVM(cfg); err != nil {
		return nil, err
	}
	guestEP, routerGuest := s.pair()

	var (
		routerServer transport.Endpoint
		g            *failover.Guardian
		placed       *failover.FleetDialer
		remote       *failover.RemoteMirror
		foOpts       []guest.Option
	)
	fc := s.cfg.Failover
	if fc == nil && s.policy != nil {
		// Placement implies failover: the placed dialer becomes the
		// guardian's dial closure, with default guardian tuning.
		fc = &FailoverConfig{}
	}
	if fc != nil {
		var north transport.Endpoint
		routerServer, north = s.pair()
		id, name := cfg.ID, cfg.Name
		var dial func() (failover.ServerLink, error)
		switch {
		case s.policy != nil && fc.Dial == nil:
			// Registry-backed placement: a per-VM FleetDialer ranked by
			// the stack's policy. Every landing updates the router's
			// serving-host record so a cross-host move re-fences any
			// frames stamped for the old host.
			placed = s.newPlacedDialer(id, name)
			dial = func() (failover.ServerLink, error) {
				link, err := placed.Dial()
				if err != nil {
					return link, err
				}
				s.Router.SetServingHost(id, placed.Host())
				return link, nil
			}
		case fc.Dial != nil:
			// Custom dialer (e.g. a fleet-registry FleetDialer): every
			// successful dial updates the router's serving-host record so a
			// cross-host move re-fences any frames stamped for the old host.
			dial = func() (failover.ServerLink, error) {
				link, err := fc.Dial(id, name)
				if err != nil {
					return link, err
				}
				host := "remote"
				if fc.Host != nil {
					host = fc.Host(id)
				}
				s.Router.SetServingHost(id, host)
				return link, nil
			}
		default:
			dial = func() (failover.ServerLink, error) {
				south, serverEP := s.pair()
				if fc.WrapServerLink != nil {
					south = fc.WrapServerLink(south)
				}
				// Each server incarnation starts from a clean context; the
				// guardian replays state into it before traffic resumes.
				s.Server.DropContext(id)
				ctx := s.newContext(id, name)
				go s.Server.ServeVM(ctx, serverEP)
				s.Router.SetServingHost(id, "local")
				return failover.ServerLink{EP: south, Server: s.Server, Ctx: ctx, Adapter: fc.Adapter}, nil
			}
		}
		sink, ownedMirror := fc.Replication.sinkFor(id, name, fc.Backoff)
		remote = ownedMirror
		g = failover.New(s.Desc, north, dial, failover.Config{
			CheckpointEvery:    fc.Checkpoint.Every,
			AdaptiveCheckpoint: fc.Checkpoint.Adaptive,
			HeartbeatEvery:     fc.Liveness.HeartbeatEvery,
			LivenessTimeout:    fc.Liveness.Timeout,
			Backoff:            fc.Backoff,
			Retain:             fc.Retain,
			Sink:               sink,
			Restore:            fc.Replication.Restore,
			Clock:              s.cfg.Clock,
			OnEpoch:            func(e uint32) { s.Router.SetEpoch(id, e) },
		})
		if placed != nil {
			// The dialer stamps the guardian's epoch into the hello
			// preamble; wire the source before the first (Start) dial.
			placed.SetEpochSource(g.Epoch)
		}
		if err := g.Start(); err != nil {
			s.Router.UnregisterVM(cfg.ID)
			if remote != nil {
				remote.Close()
			}
			for _, ep := range []transport.Endpoint{guestEP, routerGuest, routerServer, north} {
				ep.Close()
			}
			return nil, err
		}
		foOpts = append(foOpts, guest.WithFailover(guest.FailoverPolicy{Retain: fc.Retain}))
		if fc.Replication.Restore != nil {
			// The mirror's watermark fences the first life's sequence
			// numbers; a fresh library must number its calls past it or
			// its first calls would be trimmed as already-covered.
			foOpts = append(foOpts, guest.WithSequenceBase(fc.Replication.Restore.W))
		}
	} else {
		var serverEP transport.Endpoint
		routerServer, serverEP = s.pair()
		go s.Server.ServeVM(s.newContext(cfg.ID, cfg.Name), serverEP)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Router.Attach(cfg.ID, routerGuest, routerServer)
	}()

	// The configured clock reaches every layer: guest deadline stamping
	// and fail-fast run on the same time source as router admission and
	// server dispatch (options may still override per attachment).
	base := []guest.Option{guest.WithBufRegistry(s.breg)}
	if s.cfg.Clock != nil {
		base = append(base, guest.WithClock(s.cfg.Clock))
	}
	base = append(base, foOpts...)
	opts = append(append(base, s.cfg.Guest.Options...), opts...)
	lib := guest.New(s.Desc, guestEP, opts...)
	s.mu.Lock()
	s.vms[cfg.ID] = &attachment{
		lib:      lib,
		eps:      []transport.Endpoint{guestEP, routerGuest, routerServer},
		done:     done,
		guardian: g,
		dialer:   placed,
		remote:   remote,
	}
	s.mu.Unlock()
	return lib, nil
}

// newPlacedDialer builds the per-VM registry dialer placement uses.
func (s *Stack) newPlacedDialer(id uint32, name string) *failover.FleetDialer {
	pc := s.cfg.Placement
	var resolve func(m fleet.Member, epoch uint32) (failover.ServerLink, error)
	if pc.Resolve != nil {
		resolve = func(m fleet.Member, epoch uint32) (failover.ServerLink, error) {
			return pc.Resolve(id, m, epoch)
		}
	}
	return failover.NewFleetDialer(pc.Locator, failover.FleetDialConfig{
		API:             s.placementAPI(),
		VM:              id,
		Name:            name,
		PerHostAttempts: pc.PerHostAttempts,
		Resolve:         resolve,
		Rank:            s.policy.Rank,
		OnDial:          s.noteDial,
	})
}

func (s *Stack) placementAPI() string {
	if api := s.cfg.Placement.API; api != "" {
		return api
	}
	return s.Desc.Name
}

// noteDial observes every successful placed dial: history-tracking
// policies follow the move, and the decision log records admissions and
// failover landings (rebalance moves are logged by the rebalancer itself,
// so a relocation in flight is not double-counted as a failover).
func (s *Stack) noteDial(vm uint32, host, prev string) {
	if obs, ok := s.policy.(interface{ Observe(uint32, string) }); ok {
		obs.Observe(vm, host)
	}
	s.mu.Lock()
	reloc := s.relocating[vm]
	delete(s.relocating, vm)
	s.mu.Unlock()
	switch {
	case prev == "":
		s.schedLog.Add(sched.Decision{
			Time: s.now(), Kind: "place", VM: vm, To: host,
			Policy: s.policy.Name(), Reason: "admission",
		})
	case host != prev && !reloc:
		s.schedLog.Add(sched.Decision{
			Time: s.now(), Kind: "failover", VM: vm, From: prev, To: host,
			Policy: s.policy.Name(), Reason: "host failure",
		})
	}
}

func (s *Stack) now() time.Time {
	if s.cfg.Clock != nil {
		return s.cfg.Clock.Now()
	}
	return time.Now()
}

// hostLoads joins the registry's live view with the stack's per-VM
// serving hosts — the rebalancer's load source.
func (s *Stack) hostLoads() []sched.HostLoad {
	ms, err := s.cfg.Placement.Locator.Live(s.placementAPI())
	if err != nil {
		return nil
	}
	s.mu.Lock()
	byHost := make(map[string][]uint32)
	for id, at := range s.vms {
		if at.dialer == nil {
			continue
		}
		if h := at.dialer.Host(); h != "" {
			byHost[h] = append(byHost[h], id)
		}
	}
	s.mu.Unlock()
	out := make([]sched.HostLoad, 0, len(ms))
	for _, m := range ms {
		vms := byHost[m.ID]
		sort.Slice(vms, func(i, j int) bool { return vms[i] < vms[j] })
		out = append(out, sched.HostLoad{Member: m, VMs: vms})
	}
	return out
}

// MigrateVM live-migrates a placed VM: cut a quiesced checkpoint through
// the guardian, direct the dialer off its current host (toward target, or
// the policy's best peer when target is ""), and sever the serving link
// so the guardian's recovery dials — and lands — elsewhere under epoch
// fencing. The rebalancer calls this; the control plane's POST /migrate
// may too. Recovery is asynchronous: the call returns once the migration
// is irrevocably started.
func (s *Stack) MigrateVM(id uint32, target string) error {
	s.mu.Lock()
	at := s.vms[id]
	s.mu.Unlock()
	if at == nil || at.guardian == nil || at.dialer == nil {
		return fmt.Errorf("%w: VM %d is not under placement", averr.ErrUnknownVM, id)
	}
	if err := at.guardian.CheckpointNow(); err != nil {
		return fmt.Errorf("migrate vm %d: checkpoint: %w", id, err)
	}
	s.mu.Lock()
	s.relocating[id] = true
	s.mu.Unlock()
	at.dialer.Relocate(target)
	at.guardian.KillServer()
	return nil
}

// VMHost reports the fleet member currently serving a placed VM ("" for
// unplaced or unknown VMs).
func (s *Stack) VMHost(id uint32) string {
	s.mu.Lock()
	at := s.vms[id]
	s.mu.Unlock()
	if at == nil || at.dialer == nil {
		return ""
	}
	return at.dialer.Host()
}

// SchedLog returns the scheduling decision log (nil without placement).
func (s *Stack) SchedLog() *sched.Log { return s.schedLog }

// SchedDecisions returns the retained scheduling decisions, oldest first
// (empty without placement).
func (s *Stack) SchedDecisions() []SchedDecision {
	if s.schedLog == nil {
		return nil
	}
	return s.schedLog.Decisions()
}

// Rebalancer returns the background rebalancer (nil unless WithRebalance).
func (s *Stack) Rebalancer() *sched.Rebalancer { return s.rebalancer }

// VMs returns the IDs of currently attached VMs, sorted ascending.
func (s *Stack) VMs() []uint32 {
	s.mu.Lock()
	out := make([]uint32, 0, len(s.vms))
	for id := range s.vms {
		out = append(out, id)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GuestLib returns the guest library of an attached VM, or nil for an
// unknown VM — the handle observability surfaces use to read guest-side
// counters without holding an attachment reference of their own.
func (s *Stack) GuestLib(id uint32) *guest.Lib {
	s.mu.Lock()
	defer s.mu.Unlock()
	if at := s.vms[id]; at != nil {
		return at.lib
	}
	return nil
}

// Guardian returns the failover guardian for an attached VM, or nil when
// failover is disabled or the VM is unknown.
func (s *Stack) Guardian(id uint32) *failover.Guardian {
	s.mu.Lock()
	defer s.mu.Unlock()
	if at := s.vms[id]; at != nil {
		return at.guardian
	}
	return nil
}

// KillServer abruptly severs a VM's router→server link — the SIGKILL
// equivalent used by chaos tests and the E12 experiment. Requires failover.
func (s *Stack) KillServer(id uint32) error {
	g := s.Guardian(id)
	if g == nil {
		return fmt.Errorf("%w: VM %d has no failover guardian", averr.ErrUnknownVM, id)
	}
	g.KillServer()
	return nil
}

// Context returns the server-side execution context for an attached VM.
func (s *Stack) Context(id uint32) *server.Context {
	return s.Server.Context(id, fmt.Sprintf("vm%d", id))
}

// DetachVM tears down one VM's plumbing.
func (s *Stack) DetachVM(id uint32) {
	s.mu.Lock()
	at := s.vms[id]
	delete(s.vms, id)
	delete(s.relocating, id)
	s.mu.Unlock()
	if fg, ok := s.policy.(interface{ Forget(uint32) }); ok {
		fg.Forget(id)
	}
	if at == nil {
		return
	}
	at.lib.Close()
	for _, ep := range at.eps {
		ep.Close()
	}
	if at.guardian != nil {
		at.guardian.Close()
	}
	if at.remote != nil {
		// Let queued replication land before the connection drops; a
		// graceful detach should leave the mirror host current.
		at.remote.Flush(time.Second)
		at.remote.Close()
	}
	<-at.done
	s.Router.UnregisterVM(id)
	s.Server.DropContext(id)
}

// Close tears down every attachment and stops the rebalancer.
func (s *Stack) Close() {
	if s.rebalancer != nil {
		s.rebalancer.Close()
	}
	s.mu.Lock()
	ids := make([]uint32, 0, len(s.vms))
	for id := range s.vms {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	for _, id := range ids {
		s.DetachVM(id)
	}
}
