// Package ava assembles complete AvA stacks: automatic virtualization of
// accelerator APIs by API remoting, after Yu, Peters, Akshintala and
// Rossbach, "Automatic Virtualization of Accelerators" (HotOS 2019).
//
// An AvA stack for an API consists of (Figure 3 of the paper):
//
//   - a guest library that intercepts and marshals API calls in a VM
//     (internal/guest, driven by metadata compiled from the API's CAvA
//     specification by internal/cava),
//   - a hypervisor-level router that verifies, rate-limits and schedules
//     forwarded calls over interposable transport (internal/hv,
//     internal/transport),
//   - an API server that executes calls against the accelerator silo under
//     per-VM isolation (internal/server).
//
// This package wires those components together. Given a compiled
// Descriptor and a silo's handler registry, NewStack builds the router and
// server; AttachVM connects one guest, returning the guest library an
// application (or a generated typed binding such as cl.RemoteClient) uses.
//
//	desc := cl.Descriptor()
//	reg := server.NewRegistry(desc)
//	cl.BindServer(reg, silo)
//	stack := ava.NewStack(desc, reg, ava.Config{})
//	lib, _ := stack.AttachVM(ava.VMConfig{ID: 1, Name: "guest-vm"})
//	client := cl.NewRemote(lib)
package ava

import (
	"fmt"
	"sync"
	"time"

	"ava/internal/averr"
	"ava/internal/cava"
	"ava/internal/clock"
	"ava/internal/failover"
	"ava/internal/guest"
	"ava/internal/hv"
	"ava/internal/migrate"
	"ava/internal/server"
	"ava/internal/spec"
	"ava/internal/transport"
)

// Re-exported aliases so stack consumers rarely need the internal paths.
type (
	// Descriptor is a compiled API stack descriptor.
	Descriptor = cava.Descriptor
	// VMConfig is the per-VM sharing policy.
	VMConfig = hv.VMConfig
	// Scheduler orders calls across contending VMs.
	Scheduler = hv.Scheduler
	// GuestLib is the descriptor-driven guest stub engine.
	GuestLib = guest.Lib
	// CallOptions carries per-call deadline and priority metadata
	// (guest.CallOptions; pass to GuestLib.CallWith or a binding's With).
	CallOptions = guest.CallOptions
	// ShedConfig tunes the router's load shedder (hv.ShedConfig).
	ShedConfig = hv.ShedConfig
)

// Stack-wide sentinel errors (internal/averr), usable with errors.Is on
// any error surfaced by any layer.
var (
	// ErrDeadlineExceeded reports a call whose deadline passed before it
	// completed, whether it failed fast in the guest, was denied at the
	// router, or was aborted at the server.
	ErrDeadlineExceeded = averr.ErrDeadlineExceeded
	// ErrCanceled reports a call aborted by an explicit cancellation.
	ErrCanceled = averr.ErrCanceled
	// ErrOverloaded reports a call shed by the router's overload control.
	ErrOverloaded = averr.ErrOverloaded
	// ErrUnknownVM reports routing or stats for an unregistered VM.
	ErrUnknownVM = averr.ErrUnknownVM
	// ErrBadArg reports arguments that do not match the specification.
	ErrBadArg = averr.ErrBadArg
	// ErrRetryable reports a call lost to an API-server failure that the
	// failover layer could not transparently resubmit; the caller may
	// safely reissue it.
	ErrRetryable = averr.ErrRetryable
)

// CompileSpec parses and compiles a CAvA specification.
func CompileSpec(src string) (*Descriptor, error) {
	api, err := spec.Parse(src)
	if err != nil {
		return nil, err
	}
	return cava.Compile(api)
}

// GenerateStack emits the generated Go source for an API's stack
// components (typed guest library + server dispatch scaffolding), as the
// cava command does.
func GenerateStack(desc *Descriptor, specSrc string) ([]byte, cava.GenStats, error) {
	return cava.Generate(desc, specSrc, cava.GenOptions{})
}

// InferSpec generates a preliminary annotated specification from bare
// declarations (the CAvA workflow of Figure 2) and returns its canonical
// text plus the inference notes for developer review.
func InferSpec(src string) (string, []spec.Note, error) {
	api, err := spec.ParseNoValidate(src)
	if err != nil {
		return "", nil, err
	}
	notes := spec.Infer(api)
	return spec.Print(api), notes, nil
}

// TransportKind selects the remoting transport for a VM attachment.
type TransportKind int

// Available transports.
const (
	// TransportInProc uses channel pairs (hypercall-like, the default).
	TransportInProc TransportKind = iota
	// TransportRing uses simulated shared-memory FIFO rings (the SVGA-
	// style hypervisor-managed queues the paper cites).
	TransportRing
)

// Config configures a Stack.
type Config struct {
	// Scheduler for cross-VM contention; nil = FIFO.
	Scheduler hv.Scheduler
	// Clock for policy timing; nil = wall clock.
	Clock clock.Clock
	// Transport selects the guest↔router and router↔server transports.
	Transport TransportKind
	// RingBytes sizes each ring when Transport == TransportRing.
	RingBytes int
	// GuestOptions apply to every attached guest library (e.g.
	// guest.WithForceSync() for the paper's unoptimized-spec ablation).
	GuestOptions []guest.Option
	// Recording enables the migration record log for attached VMs (§4.3);
	// off by default because tracking costs time on call-heavy workloads.
	Recording bool
	// Shed configures the router's load shedder (hv.ShedConfig); the zero
	// value leaves shedding off.
	Shed hv.ShedConfig
	// Failover enables fault-tolerant remoting for attached VMs: a per-VM
	// guardian shadows the record log, checkpoints periodically, and on
	// API-server failure respawns the server, replays state, and directs
	// the guest library to resubmit its unacked calls. Nil disables.
	Failover *FailoverConfig
}

// FailoverConfig tunes the per-VM failover guardian (see internal/failover).
type FailoverConfig struct {
	// Adapter supplies silo-specific object snapshot/restore, as for
	// migration. Nil disables object-state checkpointing (replay alone
	// reconstructs objects; stateful contents are lost on recovery).
	Adapter migrate.Adapter
	// CheckpointEvery cuts a quiesced checkpoint after this many calls;
	// 0 disables periodic checkpoints.
	CheckpointEvery int
	// HeartbeatEvery probes server liveness when the link has been idle
	// this long; 0 disables probing (transport errors still detect death).
	HeartbeatEvery time.Duration
	// LivenessTimeout bounds quiesce/liveness marker round trips; 0 = 2s.
	LivenessTimeout time.Duration
	// Backoff shapes respawn retries and the guest's shared retry budget.
	Backoff failover.BackoffConfig
	// Retain caps the guest's retained-call window; 0 = 4096.
	Retain int
	// WrapServerLink, when set, wraps each freshly dialed router→server
	// endpoint — e.g. transport.NewFlaky for fault injection in tests.
	WrapServerLink func(transport.Endpoint) transport.Endpoint
}

// Stack is an assembled AvA deployment for one API: one router, one API
// server, any number of attached VMs.
type Stack struct {
	Desc   *cava.Descriptor
	Router *hv.Router
	Server *server.Server

	cfg Config

	mu  sync.Mutex
	vms map[uint32]*attachment
}

type attachment struct {
	lib      *guest.Lib
	eps      []transport.Endpoint
	done     chan struct{}
	guardian *failover.Guardian
}

// NewStack builds the hypervisor and server halves over a silo registry.
func NewStack(desc *cava.Descriptor, reg *server.Registry, cfg Config) *Stack {
	s := &Stack{
		Desc:   desc,
		Router: hv.NewRouter(desc, cfg.Scheduler, cfg.Clock),
		Server: server.New(reg),
		cfg:    cfg,
		vms:    make(map[uint32]*attachment),
	}
	s.Router.SetShedPolicy(cfg.Shed)
	return s
}

func (s *Stack) pair() (transport.Endpoint, transport.Endpoint) {
	switch s.cfg.Transport {
	case TransportRing:
		n := s.cfg.RingBytes
		if n <= 0 {
			n = 1 << 20
		}
		return transport.NewRing(n)
	default:
		return transport.NewInProc()
	}
}

// newContext builds a fresh server-side execution context for one VM,
// wired to the stack's recording policy and clock.
func (s *Stack) newContext(id uint32, name string) *server.Context {
	ctx := s.Server.Context(id, name)
	ctx.SetRecording(s.cfg.Recording)
	if s.cfg.Clock != nil {
		ctx.SetClock(s.cfg.Clock)
	}
	return ctx
}

// AttachVM registers a VM with the router, starts its router and server
// loops, and returns the guest library bound to its transport. With
// Config.Failover set, a per-VM guardian is interposed between the router
// and the API server: it shadows the record log, checkpoints periodically,
// and on server failure respawns a fresh server incarnation, replays its
// state, and coordinates the guest library's transparent resubmission.
func (s *Stack) AttachVM(cfg VMConfig, opts ...guest.Option) (*guest.Lib, error) {
	if err := s.Router.RegisterVM(cfg); err != nil {
		return nil, err
	}
	guestEP, routerGuest := s.pair()

	var (
		routerServer transport.Endpoint
		g            *failover.Guardian
		foOpts       []guest.Option
	)
	if fc := s.cfg.Failover; fc != nil {
		var north transport.Endpoint
		routerServer, north = s.pair()
		id, name := cfg.ID, cfg.Name
		dial := func() (failover.ServerLink, error) {
			south, serverEP := s.pair()
			if fc.WrapServerLink != nil {
				south = fc.WrapServerLink(south)
			}
			// Each server incarnation starts from a clean context; the
			// guardian replays state into it before traffic resumes.
			s.Server.DropContext(id)
			ctx := s.newContext(id, name)
			go s.Server.ServeVM(ctx, serverEP)
			return failover.ServerLink{EP: south, Server: s.Server, Ctx: ctx, Adapter: fc.Adapter}, nil
		}
		g = failover.New(s.Desc, north, dial, failover.Config{
			CheckpointEvery: fc.CheckpointEvery,
			HeartbeatEvery:  fc.HeartbeatEvery,
			LivenessTimeout: fc.LivenessTimeout,
			Backoff:         fc.Backoff,
			Clock:           s.cfg.Clock,
			OnEpoch:         func(e uint32) { s.Router.SetEpoch(id, e) },
		})
		if err := g.Start(); err != nil {
			s.Router.UnregisterVM(cfg.ID)
			for _, ep := range []transport.Endpoint{guestEP, routerGuest, routerServer, north} {
				ep.Close()
			}
			return nil, err
		}
		foOpts = append(foOpts, guest.WithFailover(guest.FailoverPolicy{Retain: fc.Retain}))
	} else {
		var serverEP transport.Endpoint
		routerServer, serverEP = s.pair()
		go s.Server.ServeVM(s.newContext(cfg.ID, cfg.Name), serverEP)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Router.Attach(cfg.ID, routerGuest, routerServer)
	}()

	// The configured clock reaches every layer: guest deadline stamping
	// and fail-fast run on the same time source as router admission and
	// server dispatch (options may still override per attachment).
	base := []guest.Option(nil)
	if s.cfg.Clock != nil {
		base = append(base, guest.WithClock(s.cfg.Clock))
	}
	base = append(base, foOpts...)
	opts = append(append(base, s.cfg.GuestOptions...), opts...)
	lib := guest.New(s.Desc, guestEP, opts...)
	s.mu.Lock()
	s.vms[cfg.ID] = &attachment{
		lib:      lib,
		eps:      []transport.Endpoint{guestEP, routerGuest, routerServer},
		done:     done,
		guardian: g,
	}
	s.mu.Unlock()
	return lib, nil
}

// Guardian returns the failover guardian for an attached VM, or nil when
// failover is disabled or the VM is unknown.
func (s *Stack) Guardian(id uint32) *failover.Guardian {
	s.mu.Lock()
	defer s.mu.Unlock()
	if at := s.vms[id]; at != nil {
		return at.guardian
	}
	return nil
}

// KillServer abruptly severs a VM's router→server link — the SIGKILL
// equivalent used by chaos tests and the E12 experiment. Requires failover.
func (s *Stack) KillServer(id uint32) error {
	g := s.Guardian(id)
	if g == nil {
		return fmt.Errorf("ava: VM %d has no failover guardian", id)
	}
	g.KillServer()
	return nil
}

// Context returns the server-side execution context for an attached VM.
func (s *Stack) Context(id uint32) *server.Context {
	return s.Server.Context(id, fmt.Sprintf("vm%d", id))
}

// DetachVM tears down one VM's plumbing.
func (s *Stack) DetachVM(id uint32) {
	s.mu.Lock()
	at := s.vms[id]
	delete(s.vms, id)
	s.mu.Unlock()
	if at == nil {
		return
	}
	at.lib.Close()
	for _, ep := range at.eps {
		ep.Close()
	}
	if at.guardian != nil {
		at.guardian.Close()
	}
	<-at.done
	s.Router.UnregisterVM(id)
	s.Server.DropContext(id)
}

// Close tears down every attachment.
func (s *Stack) Close() {
	s.mu.Lock()
	ids := make([]uint32, 0, len(s.vms))
	for id := range s.vms {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	for _, id := range ids {
		s.DetachVM(id)
	}
}
