// Package ava assembles complete AvA stacks: automatic virtualization of
// accelerator APIs by API remoting, after Yu, Peters, Akshintala and
// Rossbach, "Automatic Virtualization of Accelerators" (HotOS 2019).
//
// An AvA stack for an API consists of (Figure 3 of the paper):
//
//   - a guest library that intercepts and marshals API calls in a VM
//     (internal/guest, driven by metadata compiled from the API's CAvA
//     specification by internal/cava),
//   - a hypervisor-level router that verifies, rate-limits and schedules
//     forwarded calls over interposable transport (internal/hv,
//     internal/transport),
//   - an API server that executes calls against the accelerator silo under
//     per-VM isolation (internal/server).
//
// This package wires those components together. Given a compiled
// Descriptor and a silo's handler registry, NewStack builds the router and
// server; AttachVM connects one guest, returning the guest library an
// application (or a generated typed binding such as cl.RemoteClient) uses.
//
//	desc := cl.Descriptor()
//	reg := server.NewRegistry(desc)
//	cl.BindServer(reg, silo)
//	stack := ava.NewStack(desc, reg)
//	lib, _ := stack.AttachVM(ava.VMConfig{ID: 1, Name: "guest-vm"})
//	client := cl.NewRemote(lib)
package ava

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ava/internal/averr"
	"ava/internal/cava"
	"ava/internal/clock"
	"ava/internal/failover"
	"ava/internal/guest"
	"ava/internal/hv"
	"ava/internal/migrate"
	"ava/internal/server"
	"ava/internal/spec"
	"ava/internal/transport"
)

// Re-exported aliases so stack consumers rarely need the internal paths.
type (
	// Descriptor is a compiled API stack descriptor.
	Descriptor = cava.Descriptor
	// VMConfig is the per-VM sharing policy.
	VMConfig = hv.VMConfig
	// Scheduler orders calls across contending VMs.
	Scheduler = hv.Scheduler
	// GuestLib is the descriptor-driven guest stub engine.
	GuestLib = guest.Lib
	// CallOptions carries per-call deadline and priority metadata
	// (guest.CallOptions; pass to GuestLib.CallWith or a binding's With).
	CallOptions = guest.CallOptions
	// CallOption adjusts one call's forwarding metadata (guest.CallOption;
	// built with guest.WithTimeout, guest.WithPriority, ...).
	CallOption = guest.CallOption
	// ShedConfig tunes the router's load shedder (hv.ShedConfig).
	ShedConfig = hv.ShedConfig
)

// Stack-wide sentinel errors (internal/averr), usable with errors.Is on
// any error surfaced by any layer.
var (
	// ErrDeadlineExceeded reports a call whose deadline passed before it
	// completed, whether it failed fast in the guest, was denied at the
	// router, or was aborted at the server.
	ErrDeadlineExceeded = averr.ErrDeadlineExceeded
	// ErrCanceled reports a call aborted by an explicit cancellation.
	ErrCanceled = averr.ErrCanceled
	// ErrOverloaded reports a call shed by the router's overload control.
	ErrOverloaded = averr.ErrOverloaded
	// ErrUnknownVM reports routing or stats for an unregistered VM.
	ErrUnknownVM = averr.ErrUnknownVM
	// ErrBadArg reports arguments that do not match the specification.
	ErrBadArg = averr.ErrBadArg
	// ErrRetryable reports a call lost to an API-server failure that the
	// failover layer could not transparently resubmit; the caller may
	// safely reissue it.
	ErrRetryable = averr.ErrRetryable
)

// CompileSpec parses and compiles a CAvA specification.
func CompileSpec(src string) (*Descriptor, error) {
	api, err := spec.Parse(src)
	if err != nil {
		return nil, err
	}
	return cava.Compile(api)
}

// GenerateStack emits the generated Go source for an API's stack
// components (typed guest library + server dispatch scaffolding), as the
// cava command does.
func GenerateStack(desc *Descriptor, specSrc string) ([]byte, cava.GenStats, error) {
	return cava.Generate(desc, specSrc, cava.GenOptions{})
}

// InferSpec generates a preliminary annotated specification from bare
// declarations (the CAvA workflow of Figure 2) and returns its canonical
// text plus the inference notes for developer review.
func InferSpec(src string) (string, []spec.Note, error) {
	api, err := spec.ParseNoValidate(src)
	if err != nil {
		return "", nil, err
	}
	notes := spec.Infer(api)
	return spec.Print(api), notes, nil
}

// TransportKind selects the remoting transport for a VM attachment.
type TransportKind int

// Available transports.
const (
	// TransportInProc uses channel pairs (hypercall-like, the default).
	TransportInProc TransportKind = iota
	// TransportRing uses simulated shared-memory FIFO rings (the SVGA-
	// style hypervisor-managed queues the paper cites).
	TransportRing
)

// Option configures a Stack at construction; pass options to NewStack.
// Each With* option sets one cohesive knob; WithConfig applies a full
// Config literal for callers that prefer to build one programmatically.
type Option func(*Config)

// Config is a Stack's full configuration, grouped by the layer each knob
// steers. The zero value is a working default (in-process transport, FIFO
// scheduling, wall clock, no recording, no shedding, no failover).
// Options populate it; NewStack consumes it.
type Config struct {
	// Scheduler orders calls across contending VMs; nil = FIFO.
	Scheduler hv.Scheduler
	// Clock is the stack-wide time source (guest stamping, router
	// admission, server dispatch); nil = wall clock.
	Clock clock.Clock
	// Transport groups the wiring between guest, router and server.
	Transport TransportConfig
	// Router groups hypervisor-side admission control.
	Router RouterConfig
	// Server groups API-server execution policy.
	Server ServerConfig
	// Guest groups defaults applied to every attached guest library.
	Guest GuestConfig
	// Failover enables fault-tolerant remoting for attached VMs: a per-VM
	// guardian shadows the record log, checkpoints periodically, and on
	// API-server failure respawns or re-dials the server, replays state,
	// and directs the guest library to resubmit its unacked calls. Nil
	// disables.
	Failover *FailoverConfig
}

// TransportConfig selects and sizes the remoting transport.
type TransportConfig struct {
	// Kind selects the guest↔router and router↔server transports.
	Kind TransportKind
	// RingBytes sizes each ring when Kind == TransportRing; 0 = 1MiB.
	RingBytes int
}

// RouterConfig groups hypervisor-side admission policy.
type RouterConfig struct {
	// Shed configures the router's load shedder; the zero value leaves
	// shedding off.
	Shed hv.ShedConfig
}

// ServerConfig groups API-server execution policy.
type ServerConfig struct {
	// Recording enables the migration record log for attached VMs (§4.3);
	// off by default because tracking costs time on call-heavy workloads.
	Recording bool
}

// GuestConfig groups guest-library defaults.
type GuestConfig struct {
	// Options apply to every attached guest library (e.g.
	// guest.WithForceSync() for the paper's unoptimized-spec ablation).
	Options []guest.Option
}

// WithConfig replaces the accumulated configuration wholesale.
func WithConfig(cfg Config) Option { return func(c *Config) { *c = cfg } }

// WithScheduler sets the cross-VM scheduler.
func WithScheduler(s hv.Scheduler) Option { return func(c *Config) { c.Scheduler = s } }

// WithClock sets the stack-wide time source.
func WithClock(clk clock.Clock) Option { return func(c *Config) { c.Clock = clk } }

// WithTransport selects the remoting transport kind.
func WithTransport(k TransportKind) Option { return func(c *Config) { c.Transport.Kind = k } }

// WithRingTransport selects the shared-memory ring transport sized at n
// bytes per ring (0 = 1MiB).
func WithRingTransport(n int) Option {
	return func(c *Config) { c.Transport = TransportConfig{Kind: TransportRing, RingBytes: n} }
}

// WithRecording enables the migration record log for attached VMs.
func WithRecording() Option { return func(c *Config) { c.Server.Recording = true } }

// WithShedding configures the router's load shedder.
func WithShedding(cfg hv.ShedConfig) Option { return func(c *Config) { c.Router.Shed = cfg } }

// WithGuestDefaults appends options applied to every attached guest
// library (per-attachment options still override them).
func WithGuestDefaults(opts ...guest.Option) Option {
	return func(c *Config) { c.Guest.Options = append(c.Guest.Options, opts...) }
}

// WithFailover enables fault-tolerant remoting with the given tuning.
func WithFailover(fc FailoverConfig) Option {
	return func(c *Config) { c.Failover = &fc }
}

// FailoverConfig tunes the per-VM failover guardian (see internal/failover).
type FailoverConfig struct {
	// Adapter supplies silo-specific object snapshot/restore, as for
	// migration. Nil disables object-state checkpointing (replay alone
	// reconstructs objects; stateful contents are lost on recovery).
	Adapter migrate.Adapter
	// Checkpoint groups checkpoint cadence policy.
	Checkpoint CheckpointConfig
	// Liveness groups failure-detection timing.
	Liveness LivenessConfig
	// Backoff shapes respawn retries and the guest's shared retry budget.
	Backoff failover.BackoffConfig
	// Retain caps the guest's retained-call window; 0 = 4096.
	Retain int
	// Replication groups shadow-log mirroring and rehydration.
	Replication ReplicationConfig
	// Dial, when set, replaces the default in-process server respawn with
	// a custom server dialer — e.g. a failover.FleetDialer's Dial bound to
	// a fleet registry for cross-host failover. The guardian calls it
	// under its respawn backoff budget; each call is one attempt.
	Dial func(id uint32, name string) (failover.ServerLink, error)
	// Host, when set alongside Dial, reports the identity of the host the
	// last successful dial landed on (failover.FleetDialer.Host); the
	// stack feeds it to the router's serving-host re-fence bookkeeping.
	// The default in-process dial always reports "local".
	Host func(id uint32) string
	// WrapServerLink, when set, wraps each freshly dialed router→server
	// endpoint — e.g. transport.NewFlaky for fault injection in tests.
	// Ignored when Dial is set (wrap inside the custom dialer instead).
	WrapServerLink func(transport.Endpoint) transport.Endpoint
}

// CheckpointConfig groups the guardian's checkpoint cadence.
type CheckpointConfig struct {
	// Every cuts a quiesced checkpoint after this many calls; 0 disables
	// periodic checkpoints.
	Every int
	// Adaptive scales the cadence with device load: a due checkpoint is
	// deferred while synchronous calls are in flight (the quiesce barrier
	// would stall them) until the uncheckpointed span approaches half the
	// retained window, and the heartbeat cuts overdue checkpoints as soon
	// as the link goes idle.
	Adaptive bool
}

// LivenessConfig groups the guardian's failure-detection timing.
type LivenessConfig struct {
	// HeartbeatEvery probes server liveness when the link has been idle
	// this long; 0 disables probing (transport errors still detect death).
	HeartbeatEvery time.Duration
	// Timeout bounds quiesce/liveness marker round trips; 0 = 2s.
	Timeout time.Duration
}

// ReplicationConfig groups shadow-log mirroring and rehydration, the
// guardian-crash half of cross-host recovery.
type ReplicationConfig struct {
	// Mirror, if set, receives a synchronous stream of the guardian's
	// shadow-log mutations (failover.LogSink) so replay state survives a
	// guardian crash, not just an API-server crash.
	Mirror failover.LogSink
	// Restore, if set, rehydrates the guardian from a mirrored shadow log
	// instead of starting empty: on attach the guardian replays the
	// restored log onto a freshly dialed server and tells the guest to
	// resubmit everything past the restored watermark.
	Restore *failover.MirrorState
}

// Stack is an assembled AvA deployment for one API: one router, one API
// server, any number of attached VMs.
type Stack struct {
	Desc   *cava.Descriptor
	Router *hv.Router
	Server *server.Server

	cfg  Config
	breg *transport.BufRegistry // shared-address-space deployments only

	mu  sync.Mutex
	vms map[uint32]*attachment
}

type attachment struct {
	lib      *guest.Lib
	eps      []transport.Endpoint
	done     chan struct{}
	guardian *failover.Guardian
}

// NewStack builds the hypervisor and server halves over a silo registry.
func NewStack(desc *cava.Descriptor, reg *server.Registry, opts ...Option) *Stack {
	var cfg Config
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	s := &Stack{
		Desc:   desc,
		Router: hv.NewRouter(desc, cfg.Scheduler, cfg.Clock),
		Server: server.New(reg),
		cfg:    cfg,
		vms:    make(map[uint32]*attachment),
	}
	s.Router.SetShedPolicy(cfg.Router.Shed)
	// Both built-in transports keep guest and server in one address space
	// (InProc channels; the ring simulates hypervisor shared memory), so
	// the registered-buffer fast path applies: one registry, shared by the
	// guest libraries and the server. A cross-machine deployment (TCP,
	// assembled manually) never gets one.
	s.breg = transport.NewBufRegistry()
	s.Server.SetBufRegistry(s.breg)
	return s
}

// BufRegistry returns the stack's shared registered-buffer registry.
// Applications register transfer regions through the guest library
// (GuestLib.RegisterBuffer); direct access is for tests and tools.
func (s *Stack) BufRegistry() *transport.BufRegistry { return s.breg }

func (s *Stack) pair() (transport.Endpoint, transport.Endpoint) {
	switch s.cfg.Transport.Kind {
	case TransportRing:
		n := s.cfg.Transport.RingBytes
		if n <= 0 {
			n = 1 << 20
		}
		return transport.NewRing(n)
	default:
		return transport.NewInProc()
	}
}

// newContext builds a fresh server-side execution context for one VM,
// wired to the stack's recording policy and clock.
func (s *Stack) newContext(id uint32, name string) *server.Context {
	ctx := s.Server.Context(id, name)
	ctx.SetRecording(s.cfg.Server.Recording)
	if s.cfg.Clock != nil {
		ctx.SetClock(s.cfg.Clock)
	}
	return ctx
}

// AttachVM registers a VM with the router, starts its router and server
// loops, and returns the guest library bound to its transport. With
// Config.Failover set, a per-VM guardian is interposed between the router
// and the API server: it shadows the record log, checkpoints periodically,
// and on server failure respawns a fresh server incarnation, replays its
// state, and coordinates the guest library's transparent resubmission.
func (s *Stack) AttachVM(cfg VMConfig, opts ...guest.Option) (*guest.Lib, error) {
	if err := s.Router.RegisterVM(cfg); err != nil {
		return nil, err
	}
	guestEP, routerGuest := s.pair()

	var (
		routerServer transport.Endpoint
		g            *failover.Guardian
		foOpts       []guest.Option
	)
	if fc := s.cfg.Failover; fc != nil {
		var north transport.Endpoint
		routerServer, north = s.pair()
		id, name := cfg.ID, cfg.Name
		var dial func() (failover.ServerLink, error)
		if fc.Dial != nil {
			// Custom dialer (e.g. a fleet-registry FleetDialer): every
			// successful dial updates the router's serving-host record so a
			// cross-host move re-fences any frames stamped for the old host.
			dial = func() (failover.ServerLink, error) {
				link, err := fc.Dial(id, name)
				if err != nil {
					return link, err
				}
				host := "remote"
				if fc.Host != nil {
					host = fc.Host(id)
				}
				s.Router.SetServingHost(id, host)
				return link, nil
			}
		} else {
			dial = func() (failover.ServerLink, error) {
				south, serverEP := s.pair()
				if fc.WrapServerLink != nil {
					south = fc.WrapServerLink(south)
				}
				// Each server incarnation starts from a clean context; the
				// guardian replays state into it before traffic resumes.
				s.Server.DropContext(id)
				ctx := s.newContext(id, name)
				go s.Server.ServeVM(ctx, serverEP)
				s.Router.SetServingHost(id, "local")
				return failover.ServerLink{EP: south, Server: s.Server, Ctx: ctx, Adapter: fc.Adapter}, nil
			}
		}
		g = failover.New(s.Desc, north, dial, failover.Config{
			CheckpointEvery:    fc.Checkpoint.Every,
			AdaptiveCheckpoint: fc.Checkpoint.Adaptive,
			HeartbeatEvery:     fc.Liveness.HeartbeatEvery,
			LivenessTimeout:    fc.Liveness.Timeout,
			Backoff:            fc.Backoff,
			Retain:             fc.Retain,
			Mirror:             fc.Replication.Mirror,
			Restore:            fc.Replication.Restore,
			Clock:              s.cfg.Clock,
			OnEpoch:            func(e uint32) { s.Router.SetEpoch(id, e) },
		})
		if err := g.Start(); err != nil {
			s.Router.UnregisterVM(cfg.ID)
			for _, ep := range []transport.Endpoint{guestEP, routerGuest, routerServer, north} {
				ep.Close()
			}
			return nil, err
		}
		foOpts = append(foOpts, guest.WithFailover(guest.FailoverPolicy{Retain: fc.Retain}))
		if fc.Replication.Restore != nil {
			// The mirror's watermark fences the first life's sequence
			// numbers; a fresh library must number its calls past it or
			// its first calls would be trimmed as already-covered.
			foOpts = append(foOpts, guest.WithSequenceBase(fc.Replication.Restore.W))
		}
	} else {
		var serverEP transport.Endpoint
		routerServer, serverEP = s.pair()
		go s.Server.ServeVM(s.newContext(cfg.ID, cfg.Name), serverEP)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Router.Attach(cfg.ID, routerGuest, routerServer)
	}()

	// The configured clock reaches every layer: guest deadline stamping
	// and fail-fast run on the same time source as router admission and
	// server dispatch (options may still override per attachment).
	base := []guest.Option{guest.WithBufRegistry(s.breg)}
	if s.cfg.Clock != nil {
		base = append(base, guest.WithClock(s.cfg.Clock))
	}
	base = append(base, foOpts...)
	opts = append(append(base, s.cfg.Guest.Options...), opts...)
	lib := guest.New(s.Desc, guestEP, opts...)
	s.mu.Lock()
	s.vms[cfg.ID] = &attachment{
		lib:      lib,
		eps:      []transport.Endpoint{guestEP, routerGuest, routerServer},
		done:     done,
		guardian: g,
	}
	s.mu.Unlock()
	return lib, nil
}

// VMs returns the IDs of currently attached VMs, sorted ascending.
func (s *Stack) VMs() []uint32 {
	s.mu.Lock()
	out := make([]uint32, 0, len(s.vms))
	for id := range s.vms {
		out = append(out, id)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GuestLib returns the guest library of an attached VM, or nil for an
// unknown VM — the handle observability surfaces use to read guest-side
// counters without holding an attachment reference of their own.
func (s *Stack) GuestLib(id uint32) *guest.Lib {
	s.mu.Lock()
	defer s.mu.Unlock()
	if at := s.vms[id]; at != nil {
		return at.lib
	}
	return nil
}

// Guardian returns the failover guardian for an attached VM, or nil when
// failover is disabled or the VM is unknown.
func (s *Stack) Guardian(id uint32) *failover.Guardian {
	s.mu.Lock()
	defer s.mu.Unlock()
	if at := s.vms[id]; at != nil {
		return at.guardian
	}
	return nil
}

// KillServer abruptly severs a VM's router→server link — the SIGKILL
// equivalent used by chaos tests and the E12 experiment. Requires failover.
func (s *Stack) KillServer(id uint32) error {
	g := s.Guardian(id)
	if g == nil {
		return fmt.Errorf("%w: VM %d has no failover guardian", averr.ErrUnknownVM, id)
	}
	g.KillServer()
	return nil
}

// Context returns the server-side execution context for an attached VM.
func (s *Stack) Context(id uint32) *server.Context {
	return s.Server.Context(id, fmt.Sprintf("vm%d", id))
}

// DetachVM tears down one VM's plumbing.
func (s *Stack) DetachVM(id uint32) {
	s.mu.Lock()
	at := s.vms[id]
	delete(s.vms, id)
	s.mu.Unlock()
	if at == nil {
		return
	}
	at.lib.Close()
	for _, ep := range at.eps {
		ep.Close()
	}
	if at.guardian != nil {
		at.guardian.Close()
	}
	<-at.done
	s.Router.UnregisterVM(id)
	s.Server.DropContext(id)
}

// Close tears down every attachment.
func (s *Stack) Close() {
	s.mu.Lock()
	ids := make([]uint32, 0, len(s.vms))
	for id := range s.vms {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	for _, id := range ids {
		s.DetachVM(id)
	}
}
