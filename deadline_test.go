package ava_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"ava"
	"ava/internal/clock"
	"ava/internal/guest"
	"ava/internal/hv"
	"ava/internal/marshal"
	"ava/internal/server"
)

const deadlineSpec = `
const OK = 0;
type st = int32_t { success(OK); };
st ping(uint32_t v) { }
st slow(uint32_t v) { }
`

// deadlineStack is a full guest→router→server deployment on one virtual
// clock: the same time source drives guest stamping and fail-fast, router
// admission and stall accounting, and the server's abort timers.
type deadlineStack struct {
	stack   *ava.Stack
	clk     *clock.Virtual
	pings   atomic.Uint64
	started chan struct{} // signaled when the slow handler begins waiting
	release chan struct{} // lets a parked slow handler finish normally
}

func newDeadlineStack(t *testing.T, opts ...ava.Option) *deadlineStack {
	t.Helper()
	desc, err := ava.CompileSpec(deadlineSpec)
	if err != nil {
		t.Fatal(err)
	}
	ds := &deadlineStack{
		clk:     clock.NewVirtual(),
		started: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
	reg := server.NewRegistry(desc)
	reg.MustRegister("ping", func(v *server.Invocation) error {
		ds.pings.Add(1)
		v.SetStatus(0)
		return nil
	})
	reg.MustRegister("slow", func(v *server.Invocation) error {
		ds.started <- struct{}{}
		select {
		case <-v.Done():
			return v.Err()
		case <-ds.release:
			v.SetStatus(0)
			return nil
		}
	})
	ds.stack = ava.NewStack(desc, reg, append([]ava.Option{ava.WithClock(ds.clk)}, opts...)...)
	t.Cleanup(ds.stack.Close)
	return ds
}

func wantDeadlineErr(t *testing.T, err error) *guest.APIError {
	t.Helper()
	if !errors.Is(err, ava.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	var apiErr *guest.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *guest.APIError", err)
	}
	return apiErr
}

// An expired call must be denied at the router — it never reaches the
// silo. The second call's 50ms budget is consumed by a ~100ms rate-limit
// stall (burst 1 at 10 calls/sec on the virtual clock), so the router
// rejects it with StatusDeadline after charging the stall.
func TestStackRouterDeniesExpiredDeadline(t *testing.T) {
	ds := newDeadlineStack(t)
	lib, err := ds.stack.AttachVM(ava.VMConfig{
		ID: 1, Name: "vm1", CallsPerSec: 10, CallBurst: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.CallWith(ava.CallOptions{Timeout: time.Second}, "ping", uint32(1)); err != nil {
		t.Fatal(err)
	}
	_, err = lib.CallWith(ava.CallOptions{Timeout: 50 * time.Millisecond}, "ping", uint32(2))
	apiErr := wantDeadlineErr(t, err)
	if apiErr.Status != marshal.StatusDeadline {
		t.Fatalf("status = %v, want StatusDeadline", apiErr.Status)
	}
	if got := ds.pings.Load(); got != 1 {
		t.Fatalf("silo ran %d pings, want 1 (expired call must not reach it)", got)
	}
	vs, err := ds.stack.Router.Stats(1)
	if err != nil {
		t.Fatal(err)
	}
	if vs.DeadlineDenied != 1 {
		t.Fatalf("router DeadlineDenied = %d, want 1", vs.DeadlineDenied)
	}
}

// An in-flight call that outlives its budget is aborted at the server: the
// dispatcher's timer fires on the virtual clock, the cancellation signal
// reaches the parked handler through Invocation.Done, and the guest gets
// StatusDeadline.
func TestStackInFlightCallAborts(t *testing.T) {
	ds := newDeadlineStack(t)
	lib, err := ds.stack.AttachVM(ava.VMConfig{ID: 1, Name: "vm1"})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := lib.CallWith(ava.CallOptions{Timeout: 50 * time.Millisecond}, "slow", uint32(1))
		errc <- err
	}()
	<-ds.started // the handler is parked on Done(); now burn the budget
	var callErr error
	deadline := time.After(5 * time.Second)
	for done := false; !done; {
		ds.clk.Advance(10 * time.Millisecond)
		select {
		case callErr = <-errc:
			done = true
		case <-deadline:
			t.Fatal("call did not abort after its deadline")
		case <-time.After(time.Millisecond):
		}
	}
	apiErr := wantDeadlineErr(t, callErr)
	if apiErr.Status != marshal.StatusDeadline {
		t.Fatalf("status = %v, want StatusDeadline", apiErr.Status)
	}
	if st := ds.stack.Context(1).Stats(); st.DeadlineAborts != 1 {
		t.Fatalf("server DeadlineAborts = %d, want 1", st.DeadlineAborts)
	}
}

// A deadline that has already passed fails in the guest before any
// marshalling: nothing is forwarded, nothing reaches the router or silo.
func TestStackGuestFailsFast(t *testing.T) {
	ds := newDeadlineStack(t)
	lib, err := ds.stack.AttachVM(ava.VMConfig{ID: 1, Name: "vm1"})
	if err != nil {
		t.Fatal(err)
	}
	past := ds.clk.Now().Add(-time.Millisecond)
	_, err = lib.CallWith(ava.CallOptions{Deadline: past}, "ping", uint32(1))
	if !errors.Is(err, ava.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if st := lib.Stats(); st.DeadlineFailFast != 1 {
		t.Fatalf("DeadlineFailFast = %d, want 1", st.DeadlineFailFast)
	}
	vs, err := ds.stack.Router.Stats(1)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Forwarded != 0 {
		t.Fatalf("router forwarded %d calls, want 0", vs.Forwarded)
	}
	if got := ds.pings.Load(); got != 0 {
		t.Fatalf("silo ran %d pings, want 0", got)
	}
}

// A stack configured with the priority scheduler serves prioritized calls
// end to end; strict ordering under contention is pinned down by the
// scheduler's own virtual-clock tests in internal/hv.
func TestStackPrioritySchedulerSmoke(t *testing.T) {
	clk := clock.NewVirtual()
	desc, err := ava.CompileSpec(deadlineSpec)
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry(desc)
	reg.MustRegister("ping", func(v *server.Invocation) error {
		v.SetStatus(0)
		return nil
	})
	reg.MustRegister("slow", func(v *server.Invocation) error {
		v.SetStatus(0)
		return nil
	})
	stack := ava.NewStack(desc, reg,
		ava.WithClock(clk),
		ava.WithScheduler(hv.NewPriorityScheduler(clk, 10*time.Millisecond)))
	defer stack.Close()
	lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "vm1"}, guest.WithPriority(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := lib.CallWith(ava.CallOptions{Priority: uint8(i)}, "ping", uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := lib.Call("ping", uint32(9)); err != nil {
		t.Fatal(err)
	}
}
