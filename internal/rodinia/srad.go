package rodinia

import (
	"math"

	"ava/internal/bytesconv"
	"ava/internal/cl"
)

// srad: speckle-reducing anisotropic diffusion over an ultrasound-like
// image. Each iteration needs region-of-interest statistics on the host, so
// the pattern alternates a blocking partial readback with two kernel
// launches — a mix of bandwidth and synchronization load.

func init() {
	cl.DefaultKernels.MustRegister(&cl.KernelDef{
		Name: "srad_kernel1",
		// img, dN, dS, dW, dE, c | rows, cols, q0sqr
		Args: []cl.ArgKind{
			cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer,
			cl.ArgScalar, cl.ArgScalar, cl.ArgScalar,
		},
		Run: func(env *cl.KernelEnv) {
			img := bytesconv.F32(env.Buf(0))
			dN := bytesconv.F32(env.Buf(1))
			dS := bytesconv.F32(env.Buf(2))
			dW := bytesconv.F32(env.Buf(3))
			dE := bytesconv.F32(env.Buf(4))
			cc := bytesconv.F32(env.Buf(5))
			rows := int(env.U32(6))
			cols := int(env.U32(7))
			q0 := env.F32(8)
			at := func(r, c int) float32 {
				if r < 0 {
					r = 0
				}
				if r >= rows {
					r = rows - 1
				}
				if c < 0 {
					c = 0
				}
				if c >= cols {
					c = cols - 1
				}
				return img.At(r*cols + c)
			}
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					j := at(r, c)
					n := at(r-1, c) - j
					sv := at(r+1, c) - j
					w := at(r, c-1) - j
					e := at(r, c+1) - j
					dN.Set(r*cols+c, n)
					dS.Set(r*cols+c, sv)
					dW.Set(r*cols+c, w)
					dE.Set(r*cols+c, e)
					g2 := (n*n + sv*sv + w*w + e*e) / (j * j)
					l := (n + sv + w + e) / j
					num := 0.5*g2 - (1.0/16.0)*l*l
					den := 1 + 0.25*l
					qsqr := num / (den * den)
					den = (qsqr - q0) / (q0 * (1 + q0))
					cv := 1.0 / (1.0 + den)
					if cv < 0 {
						cv = 0
					}
					if cv > 1 {
						cv = 1
					}
					cc.Set(r*cols+c, cv)
				}
			}
		},
	})
	cl.DefaultKernels.MustRegister(&cl.KernelDef{
		Name: "srad_kernel2",
		// img, dN, dS, dW, dE, c | rows, cols, lambda
		Args: []cl.ArgKind{
			cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer,
			cl.ArgScalar, cl.ArgScalar, cl.ArgScalar,
		},
		Run: func(env *cl.KernelEnv) {
			img := bytesconv.F32(env.Buf(0))
			dN := bytesconv.F32(env.Buf(1))
			dS := bytesconv.F32(env.Buf(2))
			dW := bytesconv.F32(env.Buf(3))
			dE := bytesconv.F32(env.Buf(4))
			cc := bytesconv.F32(env.Buf(5))
			rows := int(env.U32(6))
			cols := int(env.U32(7))
			lambda := env.F32(8)
			cat := func(r, c int) float32 {
				if r >= rows {
					r = rows - 1
				}
				if c >= cols {
					c = cols - 1
				}
				return cc.At(r*cols + c)
			}
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					idx := r*cols + c
					d := cat(r, c)*dN.At(idx) + cat(r+1, c)*dS.At(idx) +
						cat(r, c)*dW.At(idx) + cat(r, c+1)*dE.At(idx)
					img.Set(idx, img.At(idx)+0.25*lambda*d)
				}
			}
		},
	})

	register(Workload{
		Name:    "srad",
		Pattern: "per-iteration: blocking stats readback + 2 launches (bandwidth+sync)",
		Run:     runSRAD,
	})
}

func runSRAD(c cl.Client, scale int) (float64, error) {
	dim := 192 * scale
	const iters = 8
	const lambda = 0.5
	s, err := openSession(c, "srad_kernel1, srad_kernel2")
	if err != nil {
		return 0, err
	}
	defer s.close()

	r := rng(97)
	img := make([]float32, dim*dim)
	for i := range img {
		img[i] = float32(math.Exp(float64(r.Float32())))
	}

	sz := uint64(4 * dim * dim)
	bufImg, err := s.buffer(sz)
	if err != nil {
		return 0, err
	}
	var dirs [4]cl.Ref
	for i := range dirs {
		if dirs[i], err = s.buffer(sz); err != nil {
			return 0, err
		}
	}
	bufC, err := s.buffer(sz)
	if err != nil {
		return 0, err
	}
	if err := c.EnqueueWrite(s.q, bufImg, false, 0, bytesconv.Float32Bytes(img)); err != nil {
		return 0, err
	}

	k1, err := s.kernel("srad_kernel1")
	if err != nil {
		return 0, err
	}
	k2, err := s.kernel("srad_kernel2")
	if err != nil {
		return 0, err
	}

	roi := make([]byte, 4*dim) // first row as the region of interest
	for it := 0; it < iters; it++ {
		// Host computes ROI statistics from a blocking partial readback.
		if err := c.EnqueueRead(s.q, bufImg, true, 0, roi); err != nil {
			return 0, err
		}
		vals := bytesconv.ToFloat32(roi)
		var sum, sum2 float64
		for _, v := range vals {
			sum += float64(v)
			sum2 += float64(v) * float64(v)
		}
		mean := sum / float64(len(vals))
		variance := sum2/float64(len(vals)) - mean*mean
		q0 := float32(variance / (mean * mean))

		c.SetKernelArgBuffer(k1, 0, bufImg)
		for i := 0; i < 4; i++ {
			c.SetKernelArgBuffer(k1, uint32(1+i), dirs[i])
		}
		c.SetKernelArgBuffer(k1, 5, bufC)
		c.SetKernelArgScalar(k1, 6, cl.ArgU32(uint32(dim)))
		c.SetKernelArgScalar(k1, 7, cl.ArgU32(uint32(dim)))
		c.SetKernelArgScalar(k1, 8, cl.ArgF32(q0))
		if err := c.EnqueueNDRange(s.q, k1, []uint64{uint64(dim), uint64(dim)}, []uint64{16, 16}); err != nil {
			return 0, err
		}

		c.SetKernelArgBuffer(k2, 0, bufImg)
		for i := 0; i < 4; i++ {
			c.SetKernelArgBuffer(k2, uint32(1+i), dirs[i])
		}
		c.SetKernelArgBuffer(k2, 5, bufC)
		c.SetKernelArgScalar(k2, 6, cl.ArgU32(uint32(dim)))
		c.SetKernelArgScalar(k2, 7, cl.ArgU32(uint32(dim)))
		c.SetKernelArgScalar(k2, 8, cl.ArgF32(lambda))
		if err := c.EnqueueNDRange(s.q, k2, []uint64{uint64(dim), uint64(dim)}, []uint64{16, 16}); err != nil {
			return 0, err
		}
	}
	if err := c.Finish(s.q); err != nil {
		return 0, err
	}

	out := make([]byte, sz)
	if err := c.EnqueueRead(s.q, bufImg, true, 0, out); err != nil {
		return 0, err
	}
	if err := c.DeferredError(); err != nil {
		return 0, err
	}
	return checksum(bytesconv.ToFloat32(out)), nil
}
