package rodinia

import (
	"ava/internal/bytesconv"
	"ava/internal/cl"
)

// hotspot: thermal stencil simulation. Iterative single-kernel launches
// over ping-ponged temperature grids with a final readback — moderate call
// rate, compute-heavy kernels.

func init() {
	cl.DefaultKernels.MustRegister(&cl.KernelDef{
		Name: "hotspot_kernel",
		// power, temp_src, temp_dst | rows, cols, cap, rx, ry, rz, step
		Args: []cl.ArgKind{
			cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer,
			cl.ArgScalar, cl.ArgScalar, cl.ArgScalar, cl.ArgScalar,
			cl.ArgScalar, cl.ArgScalar, cl.ArgScalar,
		},
		Run: func(env *cl.KernelEnv) {
			power := bytesconv.F32(env.Buf(0))
			src := bytesconv.F32(env.Buf(1))
			dst := bytesconv.F32(env.Buf(2))
			rows := int(env.U32(3))
			cols := int(env.U32(4))
			cap := env.F32(5)
			rx, ry, rz := env.F32(6), env.F32(7), env.F32(8)
			step := env.F32(9)
			at := func(r, c int) float32 {
				if r < 0 {
					r = 0
				}
				if r >= rows {
					r = rows - 1
				}
				if c < 0 {
					c = 0
				}
				if c >= cols {
					c = cols - 1
				}
				return src.At(r*cols + c)
			}
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					t := src.At(r*cols + c)
					delta := (step / cap) * (power.At(r*cols+c) +
						(at(r+1, c)+at(r-1, c)-2*t)/ry +
						(at(r, c+1)+at(r, c-1)-2*t)/rx +
						(80.0-t)/rz)
					dst.Set(r*cols+c, t+delta)
				}
			}
		},
	})

	register(Workload{
		Name:    "hotspot",
		Pattern: "per-iteration launch over ping-pong grids, final readback (compute-bound)",
		Run:     runHotspot,
	})
}

func runHotspot(c cl.Client, scale int) (float64, error) {
	dim := 256 * scale
	const iters = 16
	s, err := openSession(c, "hotspot_kernel")
	if err != nil {
		return 0, err
	}
	defer s.close()

	r := rng(41)
	temp := make([]float32, dim*dim)
	power := make([]float32, dim*dim)
	for i := range temp {
		temp[i] = 323 + 2*r.Float32()
		power[i] = 0.001 * r.Float32()
	}

	bufP, err := s.buffer(uint64(4 * dim * dim))
	if err != nil {
		return 0, err
	}
	bufT0, err := s.buffer(uint64(4 * dim * dim))
	if err != nil {
		return 0, err
	}
	bufT1, err := s.buffer(uint64(4 * dim * dim))
	if err != nil {
		return 0, err
	}
	c.EnqueueWrite(s.q, bufP, false, 0, bytesconv.Float32Bytes(power))
	c.EnqueueWrite(s.q, bufT0, false, 0, bytesconv.Float32Bytes(temp))

	k, err := s.kernel("hotspot_kernel")
	if err != nil {
		return 0, err
	}
	srcBuf, dstBuf := bufT0, bufT1
	for it := 0; it < iters; it++ {
		c.SetKernelArgBuffer(k, 0, bufP)
		c.SetKernelArgBuffer(k, 1, srcBuf)
		c.SetKernelArgBuffer(k, 2, dstBuf)
		c.SetKernelArgScalar(k, 3, cl.ArgU32(uint32(dim)))
		c.SetKernelArgScalar(k, 4, cl.ArgU32(uint32(dim)))
		c.SetKernelArgScalar(k, 5, cl.ArgF32(0.5))
		c.SetKernelArgScalar(k, 6, cl.ArgF32(1.0))
		c.SetKernelArgScalar(k, 7, cl.ArgF32(1.0))
		c.SetKernelArgScalar(k, 8, cl.ArgF32(4.0))
		c.SetKernelArgScalar(k, 9, cl.ArgF32(0.001))
		if err := c.EnqueueNDRange(s.q, k, []uint64{uint64(dim), uint64(dim)}, []uint64{16, 16}); err != nil {
			return 0, err
		}
		srcBuf, dstBuf = dstBuf, srcBuf
	}
	if err := c.Finish(s.q); err != nil {
		return 0, err
	}

	out := make([]byte, 4*dim*dim)
	if err := c.EnqueueRead(s.q, srcBuf, true, 0, out); err != nil {
		return 0, err
	}
	if err := c.DeferredError(); err != nil {
		return 0, err
	}
	return checksum(bytesconv.ToFloat32(out)), nil
}
