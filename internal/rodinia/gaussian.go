package rodinia

import (
	"ava/internal/bytesconv"
	"ava/internal/cl"
)

// gaussian: Gaussian elimination. The Rodinia pattern is call-intensive:
// two kernel launches (Fan1 computes the multiplier column, Fan2 updates
// the trailing submatrix) with fresh clSetKernelArg calls for every one of
// the N-1 elimination steps, so the API-call rate is high relative to
// per-kernel work — the regime where AvA's asynchronous forwarding of
// clSetKernelArg pays off.

func init() {
	cl.DefaultKernels.MustRegister(&cl.KernelDef{
		Name: "gaussian_fan1",
		// m, a | size, t
		Args: []cl.ArgKind{cl.ArgBuffer, cl.ArgBuffer, cl.ArgScalar, cl.ArgScalar},
		Run: func(env *cl.KernelEnv) {
			m := bytesconv.F32(env.Buf(0))
			a := bytesconv.F32(env.Buf(1))
			size := int(env.U32(2))
			t := int(env.U32(3))
			for i := 0; i < size-1-t; i++ {
				m.Set((i+t+1)*size+t, a.At((i+t+1)*size+t)/a.At(t*size+t))
			}
		},
	})
	cl.DefaultKernels.MustRegister(&cl.KernelDef{
		Name: "gaussian_fan2",
		// m, a, b | size, t
		Args: []cl.ArgKind{cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgScalar, cl.ArgScalar},
		Run: func(env *cl.KernelEnv) {
			m := bytesconv.F32(env.Buf(0))
			a := bytesconv.F32(env.Buf(1))
			b := bytesconv.F32(env.Buf(2))
			size := int(env.U32(3))
			t := int(env.U32(4))
			for i := 0; i < size-1-t; i++ {
				mult := m.At((i+t+1)*size + t)
				for j := 0; j < size-t; j++ {
					idx := (i+t+1)*size + (j + t)
					a.Set(idx, a.At(idx)-mult*a.At(t*size+(j+t)))
				}
				b.Set(i+t+1, b.At(i+t+1)-mult*b.At(t))
			}
		},
	})

	register(Workload{
		Name:    "gaussian",
		Pattern: "2 launches + ~9 SetKernelArg per elimination step, ~2N launches (call-intensive)",
		Run:     runGaussian,
	})
}

func runGaussian(c cl.Client, scale int) (float64, error) {
	size := 320 * scale
	s, err := openSession(c, "gaussian_fan1, gaussian_fan2")
	if err != nil {
		return 0, err
	}
	defer s.close()

	// Diagonally dominant system so elimination is stable.
	r := rng(31)
	a := make([]float32, size*size)
	b := make([]float32, size)
	for i := 0; i < size; i++ {
		var row float32
		for j := 0; j < size; j++ {
			v := r.Float32()
			a[i*size+j] = v
			row += v
		}
		a[i*size+i] = row + 1
		b[i] = r.Float32()
	}

	bufM, err := s.buffer(uint64(4 * size * size))
	if err != nil {
		return 0, err
	}
	bufA, err := s.buffer(uint64(4 * size * size))
	if err != nil {
		return 0, err
	}
	bufB, err := s.buffer(uint64(4 * size))
	if err != nil {
		return 0, err
	}
	c.EnqueueFill(s.q, bufM, []byte{0, 0, 0, 0}, 0, uint64(4*size*size))
	c.EnqueueWrite(s.q, bufA, false, 0, bytesconv.Float32Bytes(a))
	c.EnqueueWrite(s.q, bufB, false, 0, bytesconv.Float32Bytes(b))

	fan1, err := s.kernel("gaussian_fan1")
	if err != nil {
		return 0, err
	}
	fan2, err := s.kernel("gaussian_fan2")
	if err != nil {
		return 0, err
	}

	for t := 0; t < size-1; t++ {
		// Rodinia re-sets every argument each step.
		c.SetKernelArgBuffer(fan1, 0, bufM)
		c.SetKernelArgBuffer(fan1, 1, bufA)
		c.SetKernelArgScalar(fan1, 2, cl.ArgU32(uint32(size)))
		c.SetKernelArgScalar(fan1, 3, cl.ArgU32(uint32(t)))
		if err := c.EnqueueNDRange(s.q, fan1, []uint64{uint64(size)}, []uint64{64}); err != nil {
			return 0, err
		}
		c.SetKernelArgBuffer(fan2, 0, bufM)
		c.SetKernelArgBuffer(fan2, 1, bufA)
		c.SetKernelArgBuffer(fan2, 2, bufB)
		c.SetKernelArgScalar(fan2, 3, cl.ArgU32(uint32(size)))
		c.SetKernelArgScalar(fan2, 4, cl.ArgU32(uint32(t)))
		if err := c.EnqueueNDRange(s.q, fan2, []uint64{uint64(size), uint64(size)}, []uint64{16, 16}); err != nil {
			return 0, err
		}
	}
	if err := c.Finish(s.q); err != nil {
		return 0, err
	}

	outA := make([]byte, 4*size*size)
	outB := make([]byte, 4*size)
	if err := c.EnqueueRead(s.q, bufA, true, 0, outA); err != nil {
		return 0, err
	}
	if err := c.EnqueueRead(s.q, bufB, true, 0, outB); err != nil {
		return 0, err
	}
	if err := c.DeferredError(); err != nil {
		return 0, err
	}

	// Back substitution on the host, as Rodinia does.
	ra := bytesconv.ToFloat32(outA)
	rb := bytesconv.ToFloat32(outB)
	x := make([]float32, size)
	for i := size - 1; i >= 0; i-- {
		sum := rb[i]
		for j := i + 1; j < size; j++ {
			sum -= ra[i*size+j] * x[j]
		}
		x[i] = sum / ra[i*size+i]
	}
	return checksum(x), nil
}
