package rodinia

import (
	"ava/internal/bytesconv"
	"ava/internal/cl"
)

// nw: Needleman-Wunsch sequence alignment. Dynamic programming over
// anti-diagonals of 16x16 blocks: one launch per block diagonal, first
// growing from the top-left corner, then shrinking toward the bottom-right
// — ~2*(N/16) launches with tiny per-launch work at the extremes.

const nwBlock = 16

func nwCell(score bytesconv.Int32View, ref bytesconv.Int32View, dim, i, j int, penalty int32) {
	up := score.At((i-1)*dim+j) - penalty
	left := score.At(i*dim+j-1) - penalty
	diag := score.At((i-1)*dim+j-1) + ref.At(i*dim+j)
	m := diag
	if up > m {
		m = up
	}
	if left > m {
		m = left
	}
	score.Set(i*dim+j, m)
}

func nwProcessBlock(score, ref bytesconv.Int32View, dim, bi, bj int, penalty int32) {
	for i := bi*nwBlock + 1; i <= (bi+1)*nwBlock && i < dim; i++ {
		for j := bj*nwBlock + 1; j <= (bj+1)*nwBlock && j < dim; j++ {
			nwCell(score, ref, dim, i, j, penalty)
		}
	}
}

func init() {
	cl.DefaultKernels.MustRegister(&cl.KernelDef{
		Name: "nw_kernel1",
		// score, ref | dim, diag, penalty  (upper-left triangle diagonal)
		Args: []cl.ArgKind{cl.ArgBuffer, cl.ArgBuffer, cl.ArgScalar, cl.ArgScalar, cl.ArgScalar},
		Run: func(env *cl.KernelEnv) {
			score := bytesconv.I32(env.Buf(0))
			ref := bytesconv.I32(env.Buf(1))
			dim := int(env.U32(2))
			diag := int(env.U32(3))
			penalty := env.I32(4)
			for bi := 0; bi <= diag; bi++ {
				nwProcessBlock(score, ref, dim, bi, diag-bi, penalty)
			}
		},
	})
	cl.DefaultKernels.MustRegister(&cl.KernelDef{
		Name: "nw_kernel2",
		// score, ref | dim, diag, penalty  (lower-right triangle diagonal)
		Args: []cl.ArgKind{cl.ArgBuffer, cl.ArgBuffer, cl.ArgScalar, cl.ArgScalar, cl.ArgScalar},
		Run: func(env *cl.KernelEnv) {
			score := bytesconv.I32(env.Buf(0))
			ref := bytesconv.I32(env.Buf(1))
			dim := int(env.U32(2))
			diag := int(env.U32(3))
			penalty := env.I32(4)
			nb := (dim - 1) / nwBlock
			for bi := nb - diag; bi < nb; bi++ {
				nwProcessBlock(score, ref, dim, bi, nb-1-(bi-(nb-diag)), penalty)
			}
		},
	})

	register(Workload{
		Name:    "nw",
		Pattern: "one launch per block anti-diagonal (~2N/16), small early/late kernels",
		Run:     runNW,
	})
}

func runNW(c cl.Client, scale int) (float64, error) {
	dim := 512*scale + 1
	const penalty = 10
	s, err := openSession(c, "nw_kernel1, nw_kernel2")
	if err != nil {
		return 0, err
	}
	defer s.close()

	r := rng(71)
	ref := make([]int32, dim*dim)
	score := make([]int32, dim*dim)
	for i := 1; i < dim; i++ {
		for j := 1; j < dim; j++ {
			ref[i*dim+j] = int32(r.Intn(21) - 10)
		}
	}
	for i := 1; i < dim; i++ {
		score[i*dim] = int32(-i * penalty)
		score[i] = int32(-i * penalty)
	}

	bufScore, err := s.buffer(uint64(4 * dim * dim))
	if err != nil {
		return 0, err
	}
	bufRef, err := s.buffer(uint64(4 * dim * dim))
	if err != nil {
		return 0, err
	}
	c.EnqueueWrite(s.q, bufScore, false, 0, bytesconv.Int32Bytes(score))
	c.EnqueueWrite(s.q, bufRef, false, 0, bytesconv.Int32Bytes(ref))

	k1, err := s.kernel("nw_kernel1")
	if err != nil {
		return 0, err
	}
	k2, err := s.kernel("nw_kernel2")
	if err != nil {
		return 0, err
	}

	nb := (dim - 1) / nwBlock
	for d := 0; d < nb; d++ {
		c.SetKernelArgBuffer(k1, 0, bufScore)
		c.SetKernelArgBuffer(k1, 1, bufRef)
		c.SetKernelArgScalar(k1, 2, cl.ArgU32(uint32(dim)))
		c.SetKernelArgScalar(k1, 3, cl.ArgU32(uint32(d)))
		c.SetKernelArgScalar(k1, 4, cl.ArgI32(penalty))
		if err := c.EnqueueNDRange(s.q, k1, []uint64{uint64(d + 1)}, []uint64{1}); err != nil {
			return 0, err
		}
	}
	for d := nb - 1; d >= 1; d-- {
		c.SetKernelArgBuffer(k2, 0, bufScore)
		c.SetKernelArgBuffer(k2, 1, bufRef)
		c.SetKernelArgScalar(k2, 2, cl.ArgU32(uint32(dim)))
		c.SetKernelArgScalar(k2, 3, cl.ArgU32(uint32(d)))
		c.SetKernelArgScalar(k2, 4, cl.ArgI32(penalty))
		if err := c.EnqueueNDRange(s.q, k2, []uint64{uint64(d)}, []uint64{1}); err != nil {
			return 0, err
		}
	}
	if err := c.Finish(s.q); err != nil {
		return 0, err
	}

	out := make([]byte, 4*dim*dim)
	if err := c.EnqueueRead(s.q, bufScore, true, 0, out); err != nil {
		return 0, err
	}
	if err := c.DeferredError(); err != nil {
		return 0, err
	}
	return checksumI(bytesconv.ToInt32(out)), nil
}
