package rodinia_test

import (
	"math"
	mrand "math/rand"
	"testing"

	"ava"
	"ava/internal/cl"
	"ava/internal/devsim"
	"ava/internal/rodinia"
	"ava/internal/server"
)

func newSilo() *cl.Silo {
	return cl.NewSilo(cl.Config{
		Devices: []devsim.Config{{Name: "bench-gpu", MemoryBytes: 1 << 30, ComputeUnits: 8}},
	})
}

func remoteClient(t testing.TB) cl.Client {
	t.Helper()
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, newSilo())
	stack := ava.NewStack(desc, reg)
	lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "rodinia-vm"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stack.Close)
	return cl.NewRemote(lib)
}

func TestAllNineWorkloadsRegistered(t *testing.T) {
	ws := rodinia.All()
	if len(ws) != 9 {
		t.Fatalf("workloads = %d, want 9 (Rodinia suite)", len(ws))
	}
	want := []string{"backprop", "bfs", "gaussian", "hotspot", "lud", "nn", "nw", "pathfinder", "srad"}
	for i, name := range want {
		if ws[i].Name != name {
			t.Errorf("workload %d = %q, want %q", i, ws[i].Name, name)
		}
		if ws[i].Pattern == "" {
			t.Errorf("%s has no pattern description", name)
		}
	}
	if _, ok := rodinia.ByName("bfs"); !ok {
		t.Fatal("ByName(bfs) failed")
	}
	if _, ok := rodinia.ByName("ghost"); ok {
		t.Fatal("ByName(ghost) succeeded")
	}
}

// TestNativeRemoteChecksumEquality is the core fidelity property: every
// workload must compute the identical result natively and through the full
// AvA stack.
func TestNativeRemoteChecksumEquality(t *testing.T) {
	for _, w := range rodinia.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			native := cl.NewNative(newSilo())
			nsum, err := w.Run(native, 1)
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			remote := remoteClient(t)
			rsum, err := w.Run(remote, 1)
			if err != nil {
				t.Fatalf("remote: %v", err)
			}
			if nsum != rsum {
				t.Fatalf("checksum mismatch: native %v, remote %v", nsum, rsum)
			}
			if nsum == 0 || math.IsNaN(nsum) || math.IsInf(nsum, 0) {
				t.Fatalf("degenerate checksum %v", nsum)
			}
		})
	}
}

// TestWorkloadsDeterministic: same client, same scale, same result.
func TestWorkloadsDeterministic(t *testing.T) {
	for _, w := range rodinia.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			c := cl.NewNative(newSilo())
			a, err := w.Run(c, 1)
			if err != nil {
				t.Fatal(err)
			}
			b, err := w.Run(c, 1)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("non-deterministic: %v vs %v", a, b)
			}
		})
	}
}

// TestGaussianSolvesSystem checks numerical correctness, not just
// cross-path equality: the back-substituted solution must satisfy the
// original system.
func TestGaussianSolvesSystem(t *testing.T) {
	// Rebuild the same inputs the workload generates and verify through an
	// independent host-side elimination.
	w, _ := rodinia.ByName("gaussian")
	sum, err := w.Run(cl.NewNative(newSilo()), 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := hostGaussianChecksum(320)
	if math.Abs(sum-ref) > math.Abs(ref)*1e-3 {
		t.Fatalf("device solution %v, host reference %v", sum, ref)
	}
}

// hostGaussianChecksum replicates gaussian's input generation and solves
// on the host with float32 arithmetic.
func hostGaussianChecksum(size int) float64 {
	r := testRng(31)
	a := make([]float32, size*size)
	b := make([]float32, size)
	for i := 0; i < size; i++ {
		var row float32
		for j := 0; j < size; j++ {
			v := r.Float32()
			a[i*size+j] = v
			row += v
		}
		a[i*size+i] = row + 1
		b[i] = r.Float32()
	}
	for t := 0; t < size-1; t++ {
		for i := t + 1; i < size; i++ {
			m := a[i*size+t] / a[t*size+t]
			for j := t; j < size; j++ {
				a[i*size+j] -= m * a[t*size+j]
			}
			b[i] -= m * b[t]
		}
	}
	x := make([]float32, size)
	for i := size - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < size; j++ {
			sum -= a[i*size+j] * x[j]
		}
		x[i] = sum / a[i*size+i]
	}
	var s float64
	for i, v := range x {
		s += float64(v) * float64(1+i%7)
	}
	return s
}

func TestRemoteAsyncHeavyWorkloadUsesFewRoundTrips(t *testing.T) {
	// pathfinder issues ~63 launches and ~252 SetKernelArgs, all async:
	// sync round trips should be dominated by setup + the final readbacks,
	// far below the total call count.
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, newSilo())
	stack := ava.NewStack(desc, reg)
	defer stack.Close()
	lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "vm"})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := rodinia.ByName("pathfinder")
	if _, err := w.Run(cl.NewRemote(lib), 1); err != nil {
		t.Fatal(err)
	}
	st := lib.Stats()
	if st.AsyncCalls < 250 {
		t.Fatalf("async calls = %d, expected hundreds", st.AsyncCalls)
	}
	// Sync round trips (object creates/releases, blocking readbacks) must
	// not dominate: the iteration loop itself is fully asynchronous.
	if st.SyncCalls >= st.AsyncCalls {
		t.Fatalf("too many sync round trips: %+v", st)
	}
}

// testRng mirrors the workload input generator.
func testRng(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }

// TestRingTransportWorkload runs a full Rodinia workload over the
// shared-memory ring transport (the SVGA-style queue pair), proving the
// alternative transport end to end, not just on microbenchmarks.
func TestRingTransportWorkload(t *testing.T) {
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, newSilo())
	stack := ava.NewStack(desc, reg, ava.WithRingTransport(8<<20))
	defer stack.Close()
	lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "ring-vm"})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := rodinia.ByName("lud")
	rsum, err := w.Run(cl.NewRemote(lib), 1)
	if err != nil {
		t.Fatal(err)
	}
	nsum, err := w.Run(cl.NewNative(newSilo()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rsum != nsum {
		t.Fatalf("ring transport checksum %v != native %v", rsum, nsum)
	}
}
