package rodinia

import (
	"ava/internal/bytesconv"
	"ava/internal/cl"
)

// bfs: level-synchronous breadth-first search. The Rodinia pattern is
// synchronization-bound: every frontier expansion is two kernel launches
// followed by a blocking 4-byte readback of the continuation flag — the
// worst case for remoting latency, and the benchmark with the highest
// overhead in Figure 5's cluster of sync-heavy workloads.

func init() {
	cl.DefaultKernels.MustRegister(&cl.KernelDef{
		Name: "bfs_kernel1",
		// nodes(start,count pairs), edges, mask, updating, visited, cost | n
		Args: []cl.ArgKind{cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgScalar},
		Run: func(env *cl.KernelEnv) {
			nodes := bytesconv.I32(env.Buf(0))
			edges := bytesconv.I32(env.Buf(1))
			mask := env.Buf(2)
			updating := env.Buf(3)
			visited := env.Buf(4)
			cost := bytesconv.I32(env.Buf(5))
			n := int(env.U32(6))
			for tid := 0; tid < n; tid++ {
				if mask[tid] == 0 {
					continue
				}
				mask[tid] = 0
				start := int(nodes.At(2 * tid))
				cnt := int(nodes.At(2*tid + 1))
				for e := start; e < start+cnt; e++ {
					nb := int(edges.At(e))
					if visited[nb] == 0 {
						cost.Set(nb, cost.At(tid)+1)
						updating[nb] = 1
					}
				}
			}
		},
	})
	cl.DefaultKernels.MustRegister(&cl.KernelDef{
		Name: "bfs_kernel2",
		// mask, updating, visited, stop | n
		Args: []cl.ArgKind{cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgScalar},
		Run: func(env *cl.KernelEnv) {
			mask := env.Buf(0)
			updating := env.Buf(1)
			visited := env.Buf(2)
			stop := env.Buf(3)
			n := int(env.U32(4))
			for tid := 0; tid < n; tid++ {
				if updating[tid] == 0 {
					continue
				}
				mask[tid] = 1
				visited[tid] = 1
				stop[0] = 1
				updating[tid] = 0
			}
		},
	})

	register(Workload{
		Name:    "bfs",
		Pattern: "per-level: 2 launches + blocking 4-byte flag readback (sync-bound)",
		Run:     runBFS,
	})
}

func runBFS(c cl.Client, scale int) (float64, error) {
	n := 65536 * scale
	const deg = 4
	s, err := openSession(c, "bfs_kernel1, bfs_kernel2")
	if err != nil {
		return 0, err
	}
	defer s.close()

	// Random graph with a chain backbone so the frontier takes many levels.
	r := rng(23)
	nodes := make([]int32, 2*n)
	edges := make([]int32, 0, n*deg)
	for i := 0; i < n; i++ {
		nodes[2*i] = int32(len(edges))
		cnt := 0
		// Backbone edge keeps the graph connected and the level count
		// meaningful.
		if i+1 < n {
			edges = append(edges, int32(i+1))
			cnt++
		}
		for j := 0; j < deg-1; j++ {
			// Local random edges: forward jumps up to 512 nodes.
			tgt := i + 1 + r.Intn(2048)
			if tgt >= n {
				tgt = r.Intn(n)
			}
			edges = append(edges, int32(tgt))
			cnt++
		}
		nodes[2*i+1] = int32(cnt)
	}

	mask := make([]byte, n)
	visited := make([]byte, n)
	cost := make([]int32, n)
	for i := range cost {
		cost[i] = -1
	}
	mask[0] = 1
	visited[0] = 1
	cost[0] = 0

	bNodes, err := s.buffer(uint64(4 * len(nodes)))
	if err != nil {
		return 0, err
	}
	bEdges, err := s.buffer(uint64(4 * len(edges)))
	if err != nil {
		return 0, err
	}
	bMask, err := s.buffer(uint64(n))
	if err != nil {
		return 0, err
	}
	bUpd, err := s.buffer(uint64(n))
	if err != nil {
		return 0, err
	}
	bVis, err := s.buffer(uint64(n))
	if err != nil {
		return 0, err
	}
	bCost, err := s.buffer(uint64(4 * n))
	if err != nil {
		return 0, err
	}
	bStop, err := s.buffer(4)
	if err != nil {
		return 0, err
	}

	c.EnqueueWrite(s.q, bNodes, false, 0, bytesconv.Int32Bytes(nodes))
	c.EnqueueWrite(s.q, bEdges, false, 0, bytesconv.Int32Bytes(edges))
	c.EnqueueWrite(s.q, bMask, false, 0, mask)
	c.EnqueueWrite(s.q, bUpd, false, 0, make([]byte, n))
	c.EnqueueWrite(s.q, bVis, false, 0, visited)
	c.EnqueueWrite(s.q, bCost, false, 0, bytesconv.Int32Bytes(cost))

	k1, err := s.kernel("bfs_kernel1")
	if err != nil {
		return 0, err
	}
	k2, err := s.kernel("bfs_kernel2")
	if err != nil {
		return 0, err
	}
	c.SetKernelArgBuffer(k1, 0, bNodes)
	c.SetKernelArgBuffer(k1, 1, bEdges)
	c.SetKernelArgBuffer(k1, 2, bMask)
	c.SetKernelArgBuffer(k1, 3, bUpd)
	c.SetKernelArgBuffer(k1, 4, bVis)
	c.SetKernelArgBuffer(k1, 5, bCost)
	c.SetKernelArgScalar(k1, 6, cl.ArgU32(uint32(n)))
	c.SetKernelArgBuffer(k2, 0, bMask)
	c.SetKernelArgBuffer(k2, 1, bUpd)
	c.SetKernelArgBuffer(k2, 2, bVis)
	c.SetKernelArgBuffer(k2, 3, bStop)
	c.SetKernelArgScalar(k2, 4, cl.ArgU32(uint32(n)))

	global := []uint64{uint64(n)}
	local := []uint64{256}
	stop := make([]byte, 4)
	for {
		if err := c.EnqueueFill(s.q, bStop, []byte{0, 0, 0, 0}, 0, 4); err != nil {
			return 0, err
		}
		if err := c.EnqueueNDRange(s.q, k1, global, local); err != nil {
			return 0, err
		}
		if err := c.EnqueueNDRange(s.q, k2, global, local); err != nil {
			return 0, err
		}
		// Blocking read of the continuation flag: the per-level sync.
		if err := c.EnqueueRead(s.q, bStop, true, 0, stop); err != nil {
			return 0, err
		}
		if stop[0] == 0 {
			break
		}
	}

	out := make([]byte, 4*n)
	if err := c.EnqueueRead(s.q, bCost, true, 0, out); err != nil {
		return 0, err
	}
	if err := c.DeferredError(); err != nil {
		return 0, err
	}
	return checksumI(bytesconv.ToInt32(out)), nil
}
