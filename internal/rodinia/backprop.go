package rodinia

import (
	"math"

	"ava/internal/bytesconv"
	"ava/internal/cl"
)

// backprop: two-layer neural network training step. The Rodinia pattern is
// transfer-dominated: large input/weight uploads, two kernel launches
// (layer-forward partial sums, weight adjustment), and a readback.

const (
	bpHidden   = 16
	bpEta      = 0.3
	bpMomentum = 0.3
)

func init() {
	cl.DefaultKernels.MustRegister(&cl.KernelDef{
		Name: "backprop_layerforward",
		// input_units, input_weights, hidden_sums | n, hid
		Args: []cl.ArgKind{cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgScalar, cl.ArgScalar},
		Run: func(env *cl.KernelEnv) {
			in := bytesconv.F32(env.Buf(0))
			w := bytesconv.F32(env.Buf(1))
			sums := bytesconv.F32(env.Buf(2))
			n := int(env.U32(3))
			hid := int(env.U32(4))
			for j := 0; j < hid; j++ {
				var s float32
				for i := 0; i < n; i++ {
					s += in.At(i) * w.At(i*hid+j)
				}
				sums.Set(j, s)
			}
		},
	})
	cl.DefaultKernels.MustRegister(&cl.KernelDef{
		Name: "backprop_adjust_weights",
		// delta, ly, w, oldw | n, hid
		Args: []cl.ArgKind{cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgScalar, cl.ArgScalar},
		Run: func(env *cl.KernelEnv) {
			delta := bytesconv.F32(env.Buf(0))
			ly := bytesconv.F32(env.Buf(1))
			w := bytesconv.F32(env.Buf(2))
			oldw := bytesconv.F32(env.Buf(3))
			n := int(env.U32(4))
			hid := int(env.U32(5))
			for i := 0; i < n; i++ {
				for j := 0; j < hid; j++ {
					idx := i*hid + j
					dw := bpEta*delta.At(j)*ly.At(i) + bpMomentum*oldw.At(idx)
					w.Add(idx, dw)
					oldw.Set(idx, dw)
				}
			}
		},
	})

	register(Workload{
		Name:    "backprop",
		Pattern: "2 large uploads, 2 kernel launches, 2 readbacks (transfer-bound)",
		Run:     runBackprop,
	})
}

func runBackprop(c cl.Client, scale int) (float64, error) {
	n := 32768 * scale
	s, err := openSession(c, "backprop_layerforward, backprop_adjust_weights")
	if err != nil {
		return 0, err
	}
	defer s.close()

	r := rng(17)
	input := make([]float32, n)
	weights := make([]float32, n*bpHidden)
	oldw := make([]float32, n*bpHidden)
	for i := range input {
		input[i] = r.Float32()
	}
	for i := range weights {
		weights[i] = r.Float32() - 0.5
	}

	bufIn, err := s.buffer(uint64(4 * n))
	if err != nil {
		return 0, err
	}
	bufW, err := s.buffer(uint64(4 * n * bpHidden))
	if err != nil {
		return 0, err
	}
	bufSums, err := s.buffer(uint64(4 * bpHidden))
	if err != nil {
		return 0, err
	}
	bufDelta, err := s.buffer(uint64(4 * bpHidden))
	if err != nil {
		return 0, err
	}
	bufOldW, err := s.buffer(uint64(4 * n * bpHidden))
	if err != nil {
		return 0, err
	}

	if err := c.EnqueueWrite(s.q, bufIn, false, 0, bytesconv.Float32Bytes(input)); err != nil {
		return 0, err
	}
	if err := c.EnqueueWrite(s.q, bufW, false, 0, bytesconv.Float32Bytes(weights)); err != nil {
		return 0, err
	}
	if err := c.EnqueueWrite(s.q, bufOldW, false, 0, bytesconv.Float32Bytes(oldw)); err != nil {
		return 0, err
	}

	kFwd, err := s.kernel("backprop_layerforward")
	if err != nil {
		return 0, err
	}
	c.SetKernelArgBuffer(kFwd, 0, bufIn)
	c.SetKernelArgBuffer(kFwd, 1, bufW)
	c.SetKernelArgBuffer(kFwd, 2, bufSums)
	c.SetKernelArgScalar(kFwd, 3, cl.ArgU32(uint32(n)))
	c.SetKernelArgScalar(kFwd, 4, cl.ArgU32(bpHidden))
	if err := c.EnqueueNDRange(s.q, kFwd, []uint64{uint64(n)}, []uint64{256}); err != nil {
		return 0, err
	}

	// Host step: sigmoid over hidden sums, compute output deltas (Rodinia
	// does the small layers on the CPU).
	sums := make([]byte, 4*bpHidden)
	if err := c.EnqueueRead(s.q, bufSums, true, 0, sums); err != nil {
		return 0, err
	}
	hidden := bytesconv.ToFloat32(sums)
	delta := make([]float32, bpHidden)
	for j := range hidden {
		h := float32(1.0 / (1.0 + math.Exp(-float64(hidden[j]/float32(n)))))
		delta[j] = h * (1 - h) * (0.75 - h)
	}
	if err := c.EnqueueWrite(s.q, bufDelta, false, 0, bytesconv.Float32Bytes(delta)); err != nil {
		return 0, err
	}

	kAdj, err := s.kernel("backprop_adjust_weights")
	if err != nil {
		return 0, err
	}
	c.SetKernelArgBuffer(kAdj, 0, bufDelta)
	c.SetKernelArgBuffer(kAdj, 1, bufIn)
	c.SetKernelArgBuffer(kAdj, 2, bufW)
	c.SetKernelArgBuffer(kAdj, 3, bufOldW)
	c.SetKernelArgScalar(kAdj, 4, cl.ArgU32(uint32(n)))
	c.SetKernelArgScalar(kAdj, 5, cl.ArgU32(bpHidden))
	if err := c.EnqueueNDRange(s.q, kAdj, []uint64{uint64(n)}, []uint64{256}); err != nil {
		return 0, err
	}
	if err := c.Finish(s.q); err != nil {
		return 0, err
	}

	out := make([]byte, 4*n*bpHidden)
	if err := c.EnqueueRead(s.q, bufW, true, 0, out); err != nil {
		return 0, err
	}
	if err := c.DeferredError(); err != nil {
		return 0, err
	}
	return checksum(bytesconv.ToFloat32(out)), nil
}
