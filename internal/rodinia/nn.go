package rodinia

import (
	"math"
	"sort"

	"ava/internal/bytesconv"
	"ava/internal/cl"
)

// nn: nearest neighbors over hurricane-track-like records. One upload, one
// distance kernel, one full readback; the host selects the k smallest —
// near-native territory for remoting because almost all time is a single
// kernel plus bulk transfers.

func init() {
	cl.DefaultKernels.MustRegister(&cl.KernelDef{
		Name: "nn_distance",
		// locations(lat,lng pairs), distances | n, lat, lng
		Args: []cl.ArgKind{cl.ArgBuffer, cl.ArgBuffer, cl.ArgScalar, cl.ArgScalar, cl.ArgScalar},
		Run: func(env *cl.KernelEnv) {
			loc := bytesconv.F32(env.Buf(0))
			dist := bytesconv.F32(env.Buf(1))
			n := int(env.U32(2))
			lat := env.F32(3)
			lng := env.F32(4)
			for i := 0; i < n; i++ {
				dla := loc.At(2*i) - lat
				dln := loc.At(2*i+1) - lng
				dist.Set(i, float32(math.Sqrt(float64(dla*dla+dln*dln))))
			}
		},
	})

	register(Workload{
		Name:    "nn",
		Pattern: "1 upload, 1 launch, 1 bulk readback; host top-k (transfer-bound)",
		Run:     runNN,
	})
}

func runNN(c cl.Client, scale int) (float64, error) {
	n := 262144 * scale
	const k = 5
	s, err := openSession(c, "nn_distance")
	if err != nil {
		return 0, err
	}
	defer s.close()

	r := rng(61)
	loc := make([]float32, 2*n)
	for i := range loc {
		loc[i] = r.Float32() * 90
	}

	bufLoc, err := s.buffer(uint64(4 * 2 * n))
	if err != nil {
		return 0, err
	}
	bufDist, err := s.buffer(uint64(4 * n))
	if err != nil {
		return 0, err
	}
	if err := c.EnqueueWrite(s.q, bufLoc, false, 0, bytesconv.Float32Bytes(loc)); err != nil {
		return 0, err
	}

	kern, err := s.kernel("nn_distance")
	if err != nil {
		return 0, err
	}
	c.SetKernelArgBuffer(kern, 0, bufLoc)
	c.SetKernelArgBuffer(kern, 1, bufDist)
	c.SetKernelArgScalar(kern, 2, cl.ArgU32(uint32(n)))
	c.SetKernelArgScalar(kern, 3, cl.ArgF32(30.0))
	c.SetKernelArgScalar(kern, 4, cl.ArgF32(-60.0))
	if err := c.EnqueueNDRange(s.q, kern, []uint64{uint64(n)}, []uint64{256}); err != nil {
		return 0, err
	}

	out := make([]byte, 4*n)
	if err := c.EnqueueRead(s.q, bufDist, true, 0, out); err != nil {
		return 0, err
	}
	if err := c.DeferredError(); err != nil {
		return 0, err
	}
	dist := bytesconv.ToFloat32(out)
	sort.Slice(dist, func(i, j int) bool { return dist[i] < dist[j] })
	return checksum(dist[:k]), nil
}
