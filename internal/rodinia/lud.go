package rodinia

import (
	"ava/internal/bytesconv"
	"ava/internal/cl"
)

// lud: blocked LU decomposition. Three kernel launches (diagonal,
// perimeter, internal) per block step — a balanced mix of call rate and
// compute, shrinking work per step as the factorization proceeds.

const ludBlock = 16

func init() {
	cl.DefaultKernels.MustRegister(&cl.KernelDef{
		Name: "lud_diagonal",
		// a | size, offset
		Args: []cl.ArgKind{cl.ArgBuffer, cl.ArgScalar, cl.ArgScalar},
		Run: func(env *cl.KernelEnv) {
			a := bytesconv.F32(env.Buf(0))
			size := int(env.U32(1))
			off := int(env.U32(2))
			// In-place LU (no pivoting) of the diagonal block.
			for k := 0; k < ludBlock; k++ {
				piv := a.At((off+k)*size + off + k)
				for i := k + 1; i < ludBlock; i++ {
					l := a.At((off+i)*size+off+k) / piv
					a.Set((off+i)*size+off+k, l)
					for j := k + 1; j < ludBlock; j++ {
						idx := (off+i)*size + off + j
						a.Set(idx, a.At(idx)-l*a.At((off+k)*size+off+j))
					}
				}
			}
		},
	})
	cl.DefaultKernels.MustRegister(&cl.KernelDef{
		Name: "lud_perimeter",
		// a | size, offset
		Args: []cl.ArgKind{cl.ArgBuffer, cl.ArgScalar, cl.ArgScalar},
		Run: func(env *cl.KernelEnv) {
			a := bytesconv.F32(env.Buf(0))
			size := int(env.U32(1))
			off := int(env.U32(2))
			// Row blocks right of the diagonal: forward-solve L*X = A.
			for jb := off + ludBlock; jb < size; jb += ludBlock {
				for k := 0; k < ludBlock; k++ {
					for i := k + 1; i < ludBlock; i++ {
						l := a.At((off+i)*size + off + k)
						for j := 0; j < ludBlock; j++ {
							idx := (off+i)*size + jb + j
							a.Set(idx, a.At(idx)-l*a.At((off+k)*size+jb+j))
						}
					}
				}
			}
			// Column blocks below the diagonal: solve X*U = A.
			for ib := off + ludBlock; ib < size; ib += ludBlock {
				for k := 0; k < ludBlock; k++ {
					piv := a.At((off+k)*size + off + k)
					for i := 0; i < ludBlock; i++ {
						idx := (ib+i)*size + off + k
						v := a.At(idx)
						for p := 0; p < k; p++ {
							v -= a.At((ib+i)*size+off+p) * a.At((off+p)*size+off+k)
						}
						a.Set(idx, v/piv)
					}
				}
			}
		},
	})
	cl.DefaultKernels.MustRegister(&cl.KernelDef{
		Name: "lud_internal",
		// a | size, offset
		Args: []cl.ArgKind{cl.ArgBuffer, cl.ArgScalar, cl.ArgScalar},
		Run: func(env *cl.KernelEnv) {
			a := bytesconv.F32(env.Buf(0))
			size := int(env.U32(1))
			off := int(env.U32(2))
			for ib := off + ludBlock; ib < size; ib += ludBlock {
				for jb := off + ludBlock; jb < size; jb += ludBlock {
					for i := 0; i < ludBlock; i++ {
						for j := 0; j < ludBlock; j++ {
							var s float32
							for k := 0; k < ludBlock; k++ {
								s += a.At((ib+i)*size+off+k) * a.At((off+k)*size+jb+j)
							}
							idx := (ib+i)*size + jb + j
							a.Set(idx, a.At(idx)-s)
						}
					}
				}
			}
		},
	})

	register(Workload{
		Name:    "lud",
		Pattern: "3 launches per block step over a shrinking trailing matrix",
		Run:     runLUD,
	})
}

func runLUD(c cl.Client, scale int) (float64, error) {
	size := 192 * scale
	size -= size % ludBlock
	s, err := openSession(c, "lud_diagonal, lud_perimeter, lud_internal")
	if err != nil {
		return 0, err
	}
	defer s.close()

	r := rng(53)
	a := make([]float32, size*size)
	for i := 0; i < size; i++ {
		var row float32
		for j := 0; j < size; j++ {
			v := r.Float32()
			a[i*size+j] = v
			row += v
		}
		a[i*size+i] = row + float32(size)
	}

	buf, err := s.buffer(uint64(4 * size * size))
	if err != nil {
		return 0, err
	}
	c.EnqueueWrite(s.q, buf, false, 0, bytesconv.Float32Bytes(a))

	kd, err := s.kernel("lud_diagonal")
	if err != nil {
		return 0, err
	}
	kp, err := s.kernel("lud_perimeter")
	if err != nil {
		return 0, err
	}
	ki, err := s.kernel("lud_internal")
	if err != nil {
		return 0, err
	}

	for off := 0; off < size; off += ludBlock {
		c.SetKernelArgBuffer(kd, 0, buf)
		c.SetKernelArgScalar(kd, 1, cl.ArgU32(uint32(size)))
		c.SetKernelArgScalar(kd, 2, cl.ArgU32(uint32(off)))
		if err := c.EnqueueNDRange(s.q, kd, []uint64{ludBlock}, []uint64{ludBlock}); err != nil {
			return 0, err
		}
		if off+ludBlock >= size {
			break
		}
		c.SetKernelArgBuffer(kp, 0, buf)
		c.SetKernelArgScalar(kp, 1, cl.ArgU32(uint32(size)))
		c.SetKernelArgScalar(kp, 2, cl.ArgU32(uint32(off)))
		if err := c.EnqueueNDRange(s.q, kp, []uint64{uint64(size - off)}, []uint64{ludBlock}); err != nil {
			return 0, err
		}
		c.SetKernelArgBuffer(ki, 0, buf)
		c.SetKernelArgScalar(ki, 1, cl.ArgU32(uint32(size)))
		c.SetKernelArgScalar(ki, 2, cl.ArgU32(uint32(off)))
		if err := c.EnqueueNDRange(s.q, ki, []uint64{uint64(size - off), uint64(size - off)}, []uint64{ludBlock, ludBlock}); err != nil {
			return 0, err
		}
	}
	if err := c.Finish(s.q); err != nil {
		return 0, err
	}

	out := make([]byte, 4*size*size)
	if err := c.EnqueueRead(s.q, buf, true, 0, out); err != nil {
		return 0, err
	}
	if err := c.DeferredError(); err != nil {
		return 0, err
	}
	return checksum(bytesconv.ToFloat32(out)), nil
}
