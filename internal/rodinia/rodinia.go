// Package rodinia reimplements nine Rodinia OpenCL benchmarks against the
// cl.Client surface, preserving each benchmark's API call pattern: the mix
// of buffer allocations, host↔device transfers, per-iteration
// clSetKernelArg / clEnqueueNDRangeKernel loops, synchronization points and
// result readbacks that determines how much API-boundary overhead AvA adds
// (Figure 5 of the paper). Kernels execute real compute on the simulated
// device, so remote-vs-native ratios reflect genuine work.
//
// The benchmarks are backprop, bfs, gaussian, hotspot, lud, nn, nw,
// pathfinder and srad — the Rodinia OpenCL suite the paper ran on a GTX
// 1080. Problem sizes are scaled for a software device; Scale multiplies
// the default size.
package rodinia

import (
	"fmt"
	"math/rand"
	"sort"

	"ava/internal/cl"
)

// Workload is one benchmark.
type Workload struct {
	Name string
	// Description of the call pattern, for documentation output.
	Pattern string
	// Run executes the workload and returns a result checksum, which
	// must be identical between native and remoted execution.
	Run func(c cl.Client, scale int) (float64, error)
}

var registry []Workload

func register(w Workload) { registry = append(registry, w) }

// All returns the workloads sorted by name.
func All() []Workload {
	out := append([]Workload(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns a workload.
func ByName(name string) (Workload, bool) {
	for _, w := range registry {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// session wraps the boilerplate every Rodinia benchmark shares: platform
// discovery, context and queue setup, program build, and teardown.
type session struct {
	c    cl.Client
	ctx  cl.Ref
	dev  cl.Ref
	q    cl.Ref
	prog cl.Ref

	bufs  []cl.Ref
	kerns []cl.Ref
}

// openSession bootstraps a context/queue and builds a program exposing the
// named kernels.
func openSession(c cl.Client, kernels string) (*session, error) {
	ps, err := c.PlatformIDs()
	if err != nil {
		return nil, err
	}
	if len(ps) == 0 {
		return nil, fmt.Errorf("rodinia: no platforms")
	}
	ds, err := c.DeviceIDs(ps[0], cl.DeviceTypeGPU)
	if err != nil {
		return nil, err
	}
	ctx, err := c.CreateContext(ds)
	if err != nil {
		return nil, err
	}
	q, err := c.CreateQueue(ctx, ds[0], 0)
	if err != nil {
		return nil, err
	}
	prog, err := c.CreateProgram(ctx, kernels)
	if err != nil {
		return nil, err
	}
	if err := c.BuildProgram(prog, ""); err != nil {
		return nil, err
	}
	return &session{c: c, ctx: ctx, dev: ds[0], q: q, prog: prog}, nil
}

func (s *session) buffer(size uint64) (cl.Ref, error) {
	b, err := s.c.CreateBuffer(s.ctx, 1, size)
	if err != nil {
		return cl.Ref{}, err
	}
	s.bufs = append(s.bufs, b)
	return b, nil
}

func (s *session) kernel(name string) (cl.Ref, error) {
	k, err := s.c.CreateKernel(s.prog, name)
	if err != nil {
		return cl.Ref{}, err
	}
	s.kerns = append(s.kerns, k)
	return k, nil
}

func (s *session) close() {
	for _, k := range s.kerns {
		s.c.ReleaseKernel(k)
	}
	for _, b := range s.bufs {
		s.c.ReleaseBuffer(b)
	}
	s.c.ReleaseProgram(s.prog)
	s.c.ReleaseQueue(s.q)
	s.c.ReleaseContext(s.ctx)
}

// rng returns the deterministic generator used to build inputs; both the
// native and the remoted run of a workload must see identical data.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// checksum folds a float32 slice into a stable scalar.
func checksum(xs []float32) float64 {
	var s float64
	for i, x := range xs {
		s += float64(x) * float64(1+i%7)
	}
	return s
}

// checksumI folds an int32 slice.
func checksumI(xs []int32) float64 {
	var s float64
	for i, x := range xs {
		s += float64(x) * float64(1+i%5)
	}
	return s
}
