package rodinia

import (
	"ava/internal/bytesconv"
	"ava/internal/cl"
)

// pathfinder: grid dynamic programming. One kernel launch per row with
// re-set arguments and ping-ponged result rows; the per-launch work is a
// single row, so the call rate is high and each call cheap — another
// async-forwarding beneficiary.

func init() {
	cl.DefaultKernels.MustRegister(&cl.KernelDef{
		Name: "pathfinder_kernel",
		// wall_row, src, dst | cols
		Args: []cl.ArgKind{cl.ArgBuffer, cl.ArgBuffer, cl.ArgBuffer, cl.ArgScalar},
		Run: func(env *cl.KernelEnv) {
			wall := bytesconv.I32(env.Buf(0))
			src := bytesconv.I32(env.Buf(1))
			dst := bytesconv.I32(env.Buf(2))
			cols := int(env.U32(3))
			for x := 0; x < cols; x++ {
				m := src.At(x)
				if x > 0 && src.At(x-1) < m {
					m = src.At(x - 1)
				}
				if x < cols-1 && src.At(x+1) < m {
					m = src.At(x + 1)
				}
				dst.Set(x, wall.At(x)+m)
			}
		},
	})

	register(Workload{
		Name:    "pathfinder",
		Pattern: "one cheap launch + 4 SetKernelArg per grid row (call-rate-bound)",
		Run:     runPathfinder,
	})
}

func runPathfinder(c cl.Client, scale int) (float64, error) {
	cols := 65536 * scale
	const rows = 64
	s, err := openSession(c, "pathfinder_kernel")
	if err != nil {
		return 0, err
	}
	defer s.close()

	r := rng(83)
	wall := make([][]int32, rows)
	for i := range wall {
		wall[i] = make([]int32, cols)
		for j := range wall[i] {
			wall[i][j] = int32(r.Intn(10))
		}
	}

	rowBytes := uint64(4 * cols)
	bufWall := make([]cl.Ref, rows)
	for i := 0; i < rows; i++ {
		b, err := s.buffer(rowBytes)
		if err != nil {
			return 0, err
		}
		bufWall[i] = b
		if err := c.EnqueueWrite(s.q, b, false, 0, bytesconv.Int32Bytes(wall[i])); err != nil {
			return 0, err
		}
	}
	bufSrc, err := s.buffer(rowBytes)
	if err != nil {
		return 0, err
	}
	bufDst, err := s.buffer(rowBytes)
	if err != nil {
		return 0, err
	}
	if err := c.EnqueueWrite(s.q, bufSrc, false, 0, bytesconv.Int32Bytes(wall[0])); err != nil {
		return 0, err
	}

	k, err := s.kernel("pathfinder_kernel")
	if err != nil {
		return 0, err
	}
	for row := 1; row < rows; row++ {
		c.SetKernelArgBuffer(k, 0, bufWall[row])
		c.SetKernelArgBuffer(k, 1, bufSrc)
		c.SetKernelArgBuffer(k, 2, bufDst)
		c.SetKernelArgScalar(k, 3, cl.ArgU32(uint32(cols)))
		if err := c.EnqueueNDRange(s.q, k, []uint64{uint64(cols)}, []uint64{256}); err != nil {
			return 0, err
		}
		bufSrc, bufDst = bufDst, bufSrc
	}
	if err := c.Finish(s.q); err != nil {
		return 0, err
	}

	out := make([]byte, rowBytes)
	if err := c.EnqueueRead(s.q, bufSrc, true, 0, out); err != nil {
		return 0, err
	}
	if err := c.DeferredError(); err != nil {
		return 0, err
	}
	return checksumI(bytesconv.ToInt32(out)), nil
}
