package bench

import (
	"fmt"

	"ava"
	"ava/internal/bytesconv"
	"ava/internal/cava"
	"ava/internal/cl"
	"ava/internal/guest"
	"ava/internal/hv"
	"ava/internal/mvnc"
	"ava/internal/qat"
	"ava/internal/server"
	"ava/internal/swap"
	"ava/internal/transport"
)

// clStackSwap assembles an OpenCL stack with a swap manager installed and
// returns both.
func clStackSwap(silo *cl.Silo, opts ...ava.Option) (*ava.Stack, *swap.Manager) {
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, silo)
	mgr := swap.NewManager(silo)
	mgr.Install(reg)
	return ava.NewStack(desc, reg, opts...), mgr
}

// f32bytes aliases the conversion used throughout the workloads.
func f32bytes(xs []float32) []byte { return bytesconv.Float32Bytes(xs) }

// tcpVectorAdd runs the vector-add workload against a disaggregated API
// server: guest → router locally, router → server over a real TCP socket
// (the LegoOS-style configuration of §4.1).
func tcpVectorAdd(a, b []float32) error {
	silo := gpuSilo(0)
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, silo)
	srv := server.New(reg)

	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	go func() {
		ep, err := l.Accept()
		if err != nil {
			return
		}
		srv.ServeVM(srv.Context(1, "remote-vm"), ep)
	}()

	router := hv.NewRouter(desc, nil, nil)
	if err := router.RegisterVM(hv.VMConfig{ID: 1, Name: "remote-vm"}); err != nil {
		return err
	}
	guestEP, routerGuest := transport.NewInProc()
	routerServer, err := transport.Dial(l.Addr())
	if err != nil {
		return err
	}
	go router.Attach(1, routerGuest, routerServer)
	defer guestEP.Close()

	lib := guest.New(desc, guestEP)
	return vectorAdd(cl.NewRemote(lib), a, b)
}

// Effort reproduces the paper's developer-effort claim (§1/§5: a single
// developer virtualizes an API in days; hand-built systems took 25k LoC
// and person-years). It reports, for each shipped API, the specification
// size against the volume of stack code CAvA generates from it.
func Effort() (*Table, error) {
	t := &Table{
		ID:     "E7/Effort",
		Title:  "Developer effort: specification vs generated stack",
		Header: []string{"api", "functions", "spec-lines", "generated-lines", "leverage"},
	}
	cases := []struct {
		name string
		spec string
	}{
		{"opencl (39 fns)", cl.Spec},
		{"ncsdk/mvnc", mvnc.Spec},
		{"quickassist/qat", qat.Spec},
	}
	for _, cse := range cases {
		desc := cava.MustCompile(cse.spec)
		_, st, err := cava.Generate(desc, cse.spec, cava.GenOptions{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cse.name, err)
		}
		t.Add(cse.name, fmt.Sprint(st.Functions), fmt.Sprint(st.SpecLines),
			fmt.Sprint(st.GeneratedLines),
			fmt.Sprintf("%.1fx", float64(st.GeneratedLines)/float64(max(st.SpecLines, 1))))
	}
	t.Note("the spec is the only per-API artifact a developer writes besides silo glue; prior systems (GvirtuS) took ~25k hand-written LoC")
	return t, nil
}

// All runs every experiment.
func All(opts Options) ([]*Table, error) {
	type exp struct {
		name string
		run  func(Options) (*Table, error)
	}
	var out []*Table
	for _, e := range []exp{
		{"fig5", Figure5},
		{"async", AsyncAblation},
		{"fullvirt", FullVirtBaseline},
		{"sharing", Sharing},
		{"swap", Swap},
		{"migrate", Migration},
		{"effort", func(Options) (*Table, error) { return Effort() }},
		{"transport", Transports},
		{"breakdown", Breakdown},
		{"pipeline", Pipeline},
		{"overload", Overload},
		{"failover", Failover},
		{"crosshost", CrossHost},
		{"copycost", CopyCost},
		{"rebalance", Rebalance},
		{"ha", HA},
	} {
		tbl, err := e.run(opts)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.name, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// ByName runs one experiment by its short name.
func ByName(name string, opts Options) (*Table, error) {
	switch name {
	case "fig5", "figure5":
		return Figure5(opts)
	case "async", "ablation":
		return AsyncAblation(opts)
	case "fullvirt", "baseline":
		return FullVirtBaseline(opts)
	case "sharing":
		return Sharing(opts)
	case "swap":
		return Swap(opts)
	case "migrate", "migration":
		return Migration(opts)
	case "effort":
		return Effort()
	case "transport", "transports":
		return Transports(opts)
	case "breakdown", "stages":
		return Breakdown(opts)
	case "pipeline", "pipelining":
		return Pipeline(opts)
	case "overload", "shed":
		return Overload(opts)
	case "failover", "chaos":
		return Failover(opts)
	case "crosshost", "fleet":
		return CrossHost(opts)
	case "copycost", "zerocopy":
		return CopyCost(opts)
	case "rebalance", "sched":
		return Rebalance(opts)
	case "ha", "replicated":
		return HA(opts)
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q (fig5, async, fullvirt, sharing, swap, migrate, effort, transport, breakdown, pipeline, overload, failover, crosshost, copycost, rebalance, ha)", name)
	}
}
