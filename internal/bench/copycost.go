package bench

import (
	"fmt"
	"strings"
	"time"

	"ava"
	"ava/internal/cl"
	"ava/internal/devsim"
	"ava/internal/guest"
	"ava/internal/marshal"
	"ava/internal/server"
	"ava/internal/transport"
)

// CopyCost is E14: where the data plane's bytes go. The zero-copy work
// (scatter-gather TCP sends, registered buffers on shared-address-space
// transports, delta checkpoints) claims that large-transfer cost should be
// bounded by the copies the hardware demands, not the ones the remoting
// stack adds. This experiment isolates those stack-added copies three
// ways: the marshal stage alone (encode-with-copy vs borrowed segments),
// end-to-end H2D/D2H transfers on every transport with the device's
// simulated DMA costs zeroed (so only marshal+copy+transport time
// remains), and checkpoint payloads (full snapshot vs dirty-range delta).
func CopyCost(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E14/CopyCost",
		Title:  "Zero-copy data plane: marshal+copy cost and checkpoint deltas",
		Header: []string{"stage", "mode", "ns/byte", "copied", "borrowed"},
	}

	const payloadN = 256 << 10
	iters := 8 * opts.scale()

	// --- Marshal stage: encode a large-payload call with the copying
	// encoder vs the scatter-gather encoder that borrows the payload.
	payload := make([]byte, payloadN)
	for i := range payload {
		payload[i] = byte(i)
	}
	call := &marshal.Call{Seq: 1, Func: 7, Args: []marshal.Value{
		marshal.Uint(42), marshal.BytesVal(payload),
	}}
	buf := make([]byte, 0, payloadN+4096)
	marshalBytes := int64(payloadN) * int64(iters)
	copyDur, err := timeIt(opts.reps(), func() error {
		for i := 0; i < iters; i++ {
			buf = marshal.AppendCall(buf[:0], call)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sgDur, err := timeIt(opts.reps(), func() error {
		for i := 0; i < iters; i++ {
			buf, _ = marshal.AppendCallSegments(buf[:0], call, marshal.SegmentThreshold)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Add("marshal", "copy", nsPerByte(copyDur, marshalBytes), size(marshalBytes), size(0))
	t.Add("marshal", "scatter-gather", nsPerByte(sgDur, marshalBytes), size(0), size(marshalBytes))
	t.AddMetric("marshal-copy", "ns/B", nsbFloat(copyDur, marshalBytes))
	t.AddMetric("marshal-scatter-gather", "ns/B", nsbFloat(sgDur, marshalBytes))
	t.AddMetric("marshal-copy-throughput", "B/s", bytesPerSec(copyDur, marshalBytes))
	t.AddMetric("marshal-scatter-gather-throughput", "B/s", bytesPerSec(sgDur, marshalBytes))
	t.Note("marshal copy vs scatter-gather: %.1fx less time per byte", ratio(copyDur, sgDur))

	// --- End-to-end transfers. The silo's simulated DMA cost is zero, so
	// wall time is marshal + copies + transport — exactly the stack's
	// contribution the zero-copy paths attack.
	type xferResult struct {
		dur      time.Duration
		copied   uint64
		borrowed uint64
	}
	transfer := func(kind string, zc bool, d2h bool) (xferResult, error) {
		var r xferResult
		var lib *guest.Lib
		var cleanup func()
		switch kind {
		case "tcp":
			var err error
			lib, cleanup, err = tcpDirectLib(zc)
			if err != nil {
				return r, err
			}
		default:
			tk := ava.TransportInProc
			if kind == "shm-ring" {
				tk = ava.TransportRing
			}
			stack := clStack(freeSilo(), false, ava.WithTransport(tk))
			var err error
			lib, err = stack.AttachVM(ava.VMConfig{ID: 1, Name: "e14-vm"},
				guest.WithZeroCopy(zc))
			if err != nil {
				stack.Close()
				return r, err
			}
			cleanup = stack.Close
		}
		defer cleanup()

		// The transfer source/destination lives in a registered region, so
		// on shared-address-space transports (with zero-copy on) writes and
		// reads take the registered-buffer fast path. TCP has no registry:
		// its zero-copy form is the scatter-gather send.
		region := make([]byte, payloadN)
		for i := range region {
			region[i] = byte(3 * i)
		}
		id := lib.RegisterBuffer(region)
		defer lib.UnregisterBuffer(id)

		c := cl.NewRemote(lib)
		q, mem, err := clTransferSetup(c, payloadN)
		if err != nil {
			return r, err
		}
		if d2h {
			// Populate the device buffer once so reads return real data.
			if err := c.EnqueueWrite(q, mem, true, 0, region); err != nil {
				return r, err
			}
		}
		before := lib.Stats()
		start := time.Now()
		for i := 0; i < iters; i++ {
			if d2h {
				err = c.EnqueueRead(q, mem, true, 0, region)
			} else {
				err = c.EnqueueWrite(q, mem, true, 0, region)
			}
			if err != nil {
				return r, err
			}
		}
		r.dur = time.Since(start)
		after := lib.Stats()
		r.copied = after.BytesCopied - before.BytesCopied
		r.borrowed = after.BytesBorrowed - before.BytesBorrowed
		return r, nil
	}

	xferBytes := int64(payloadN) * int64(iters)
	xferCases := []struct {
		stage  string
		kind   string
		d2h    bool
		zcName string
	}{
		{"tcp h2d", "tcp", false, "scatter-gather"},
		{"shm-ring h2d", "shm-ring", false, "regref"},
		{"shm-ring d2h", "shm-ring", true, "regref"},
		{"inproc h2d", "inproc", false, "regref"},
	}
	for _, cse := range xferCases {
		run := func(zc bool) (xferResult, error) {
			best := xferResult{}
			for rep := 0; rep < opts.reps(); rep++ {
				r, err := transfer(cse.kind, zc, cse.d2h)
				if err != nil {
					return r, fmt.Errorf("%s: %w", cse.stage, err)
				}
				if best.dur == 0 || r.dur < best.dur {
					best = r
				}
			}
			return best, nil
		}
		cp, err := run(false)
		if err != nil {
			return nil, err
		}
		zc, err := run(true)
		if err != nil {
			return nil, err
		}
		t.Add(cse.stage, "copy", nsPerByte(cp.dur, xferBytes), size(int64(cp.copied)), size(int64(cp.borrowed)))
		t.Add(cse.stage, cse.zcName, nsPerByte(zc.dur, xferBytes), size(int64(zc.copied)), size(int64(zc.borrowed)))
		key := strings.ReplaceAll(cse.stage, " ", "-")
		t.AddMetric(key+"-copy", "ns/B", nsbFloat(cp.dur, xferBytes))
		t.AddMetric(key+"-"+cse.zcName, "ns/B", nsbFloat(zc.dur, xferBytes))
		t.AddMetric(key+"-copy-throughput", "B/s", bytesPerSec(cp.dur, xferBytes))
		t.AddMetric(key+"-"+cse.zcName+"-throughput", "B/s", bytesPerSec(zc.dur, xferBytes))
		t.Note("%s copy vs %s: %.1fx less time per byte", cse.stage, cse.zcName, ratio(cp.dur, zc.dur))
	}

	// --- Checkpoints: a full snapshot ships the device footprint; a delta
	// checkpoint ships only the ranges written since the last one.
	const bufN = 4 << 20
	const touchN = 64 << 10
	shippedFull, shippedDelta, err := checkpointDelta(bufN, touchN)
	if err != nil {
		return nil, err
	}
	t.Add("checkpoint", "full", "-", size(shippedFull), size(0))
	t.Add("checkpoint", fmt.Sprintf("delta(%s touched)", size(touchN)), "-", size(shippedDelta), size(0))
	t.AddMetric("checkpoint-full", "B", float64(shippedFull))
	t.AddMetric("checkpoint-delta", "B", float64(shippedDelta))
	t.AddMetric("checkpoint-touched", "B", float64(touchN))
	t.Note("delta checkpoint ships %s of a %s footprint after touching %s (%.1fx fewer bytes)",
		size(shippedDelta), size(bufN), size(touchN),
		float64(shippedFull)/float64(max(shippedDelta, 1)))
	return t, nil
}

// freeSilo builds a GPU whose simulated hardware costs are all zero, so
// E14 measures only what the remoting stack itself spends per byte.
func freeSilo() *cl.Silo {
	return cl.NewSilo(cl.Config{
		Devices: []devsim.Config{{Name: "e14-gpu", MemoryBytes: 1 << 30}},
	})
}

// tcpDirectLib attaches a guest library straight to a disaggregated API
// server over a real TCP socket — no router hop, so the guest holds the
// TCP endpoint and its scatter-gather send path can engage.
func tcpDirectLib(zc bool) (*guest.Lib, func(), error) {
	silo := freeSilo()
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, silo)
	srv := server.New(reg)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go func() {
		ep, err := l.Accept()
		if err != nil {
			return
		}
		srv.ServeVM(srv.Context(1, "e14-vm"), ep)
	}()
	ep, err := transport.Dial(l.Addr())
	if err != nil {
		l.Close()
		return nil, nil, err
	}
	lib := guest.New(desc, ep, guest.WithZeroCopy(zc))
	cleanup := func() {
		lib.Close()
		ep.Close()
		l.Close()
	}
	return lib, cleanup, nil
}

// clTransferSetup runs the OpenCL boilerplate down to one device buffer of
// n bytes and returns the queue and buffer refs.
func clTransferSetup(c *cl.RemoteClient, n uint64) (cl.Ref, cl.Ref, error) {
	ps, err := c.PlatformIDs()
	if err != nil {
		return cl.Ref{}, cl.Ref{}, err
	}
	ds, err := c.DeviceIDs(ps[0], cl.DeviceTypeGPU)
	if err != nil {
		return cl.Ref{}, cl.Ref{}, err
	}
	ctx, err := c.CreateContext(ds)
	if err != nil {
		return cl.Ref{}, cl.Ref{}, err
	}
	q, err := c.CreateQueue(ctx, ds[0], 0)
	if err != nil {
		return cl.Ref{}, cl.Ref{}, err
	}
	mem, err := c.CreateBuffer(ctx, 1, n)
	if err != nil {
		return cl.Ref{}, cl.Ref{}, err
	}
	return q, mem, nil
}

// checkpointDelta cuts a full checkpoint of a bufN-byte device buffer,
// touches touchN bytes, cuts a second checkpoint, and reports the payload
// bytes each one shipped (guardian stats).
func checkpointDelta(bufN, touchN int) (full, delta int64, err error) {
	silo := freeSilo()
	stack := clStack(silo, false, ava.WithFailover(ava.FailoverConfig{
		Adapter: cl.MigrationAdapter{Silo: silo},
	}))
	defer stack.Close()
	lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "e14-ckpt-vm"})
	if err != nil {
		return 0, 0, err
	}
	c := cl.NewRemote(lib)
	q, mem, err := clTransferSetup(c, uint64(bufN))
	if err != nil {
		return 0, 0, err
	}
	data := make([]byte, bufN)
	for i := range data {
		data[i] = byte(7 * i)
	}
	if err := c.EnqueueWrite(q, mem, true, 0, data); err != nil {
		return 0, 0, err
	}
	g := stack.Guardian(1)
	if err := g.CheckpointNow(); err != nil {
		return 0, 0, err
	}
	full = int64(g.Stats().LastCkptBytes)
	if err := c.EnqueueWrite(q, mem, true, uint64(bufN-touchN), data[:touchN]); err != nil {
		return 0, 0, err
	}
	if err := g.CheckpointNow(); err != nil {
		return 0, 0, err
	}
	gs := g.Stats()
	if gs.DeltaCheckpoints == 0 {
		return 0, 0, fmt.Errorf("bench: second checkpoint did not use the delta path")
	}
	delta = int64(gs.LastCkptBytes)
	return full, delta, nil
}

func nsPerByte(d time.Duration, bytes int64) string {
	if bytes <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.4f", nsbFloat(d, bytes))
}

func nsbFloat(d time.Duration, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(d.Nanoseconds()) / float64(bytes)
}

func bytesPerSec(d time.Duration, bytes int64) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds()
}

// size renders a byte count with a binary-unit suffix.
func size(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
