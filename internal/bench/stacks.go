package bench

import (
	"time"

	"ava"
	"ava/internal/cl"
	"ava/internal/devsim"
	"ava/internal/guest"
	"ava/internal/mvnc"
	"ava/internal/server"
	"ava/internal/swap"
)

// gpuSilo builds the standard benchmark GPU. The hardware model charges
// realistic discrete-GPU costs — kernel launch latency and PCIe DMA
// setup/bandwidth — which both the native and the remoted path pay
// identically, exactly as the paper's GTX 1080 baseline does. Without
// them the "native" path would be an unrealistically free function call
// and every remoting ratio would be inflated.
func gpuSilo(memBytes uint64) *cl.Silo {
	if memBytes == 0 {
		memBytes = 2 << 30
	}
	return cl.NewSilo(cl.Config{
		Devices: []devsim.Config{{
			Name:           "bench-gpu",
			MemoryBytes:    memBytes,
			ComputeUnits:   8,
			KernelOverhead: 8 * time.Microsecond,  // GPU launch latency
			DMALatency:     10 * time.Microsecond, // PCIe transaction setup
			DMABandwidth:   12e9,                  // ~PCIe 3.0 x16
		}},
	})
}

// stackObserver, when set, sees every stack a benchmark assembles, for
// the lifetime of that experiment. avabench's -ctl wiring uses it to
// point the control endpoint at whichever stack is currently running, so
// `avactl stats` mid-experiment reads live counters.
var stackObserver func(*ava.Stack)

// SetStackObserver installs fn as the stack observer. Call before any
// experiment runs; experiments themselves run serially.
func SetStackObserver(fn func(*ava.Stack)) { stackObserver = fn }

func observe(stack *ava.Stack) *ava.Stack {
	if stackObserver != nil {
		stackObserver(stack)
	}
	return stack
}

// clStack assembles a full OpenCL AvA deployment and returns the stack.
func clStack(silo *cl.Silo, withSwap bool, opts ...ava.Option) *ava.Stack {
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, silo)
	if withSwap {
		swap.NewManager(silo).Install(reg)
	}
	return observe(ava.NewStack(desc, reg, opts...))
}

// clRemote attaches one VM and returns its remote client.
func clRemote(stack *ava.Stack, id uint32, opts ...guest.Option) (*cl.RemoteClient, error) {
	lib, err := stack.AttachVM(ava.VMConfig{ID: id, Name: vmName(id)}, opts...)
	if err != nil {
		return nil, err
	}
	return cl.NewRemote(lib), nil
}

func vmName(id uint32) string {
	return "vm" + string(rune('0'+id%10))
}

// mvncStack assembles an MVNC deployment.
func mvncStack(opts ...ava.Option) (*ava.Stack, *mvnc.Silo) {
	silo := mvnc.NewSilo(mvnc.Config{Sticks: 1})
	desc := mvnc.Descriptor()
	reg := server.NewRegistry(desc)
	mvnc.BindServer(reg, silo)
	return observe(ava.NewStack(desc, reg, opts...)), silo
}
