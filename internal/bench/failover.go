package bench

import (
	"fmt"
	"math"
	"time"

	"ava"
	"ava/internal/cl"
	"ava/internal/failover"
	"ava/internal/guest"
	"ava/internal/hv"
	"ava/internal/rodinia"
	"ava/internal/server"
	"ava/internal/transport"
)

// Failover is E12: a SIGKILL-equivalent API-server death in the middle of
// the Rodinia gaussian workload, on every transport. The guardian must
// detect the crash, respawn the server, replay the record log up to the
// checkpoint watermark and let the guest resubmit the rest — completing
// the workload with a checksum byte-identical to an undisturbed run and
// zero calls dropped. The table reports the cost: end-to-end slowdown of
// the killed run and the recovery pause itself.
func Failover(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E12/Failover",
		Title:  "Fault tolerance: server SIGKILL mid-gaussian, replay recovery",
		Header: []string{"transport", "undisturbed", "with kill", "recovery pause", "identical", "resubmitted"},
	}
	w, ok := rodinia.ByName("gaussian")
	if !ok {
		return nil, fmt.Errorf("bench: gaussian workload missing")
	}
	scale := opts.scale()

	type result struct {
		dur   time.Duration
		sum   float64
		gs    failover.Stats
		resub uint64
		retry uint64
	}
	foCfg := func(silo *cl.Silo) ava.FailoverConfig {
		return ava.FailoverConfig{
			Adapter:    cl.MigrationAdapter{Silo: silo},
			Checkpoint: ava.CheckpointConfig{Every: 64},
			Backoff:    failover.BackoffConfig{Seed: 12},
		}
	}
	stackRun := func(kind ava.TransportKind, killAfter time.Duration) (result, error) {
		var r result
		silo := gpuSilo(0)
		stack := clStack(silo, false, ava.WithTransport(kind), ava.WithFailover(foCfg(silo)))
		defer stack.Close()
		lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "e12-vm"})
		if err != nil {
			return r, err
		}
		c := cl.NewRemote(lib)
		if killAfter > 0 {
			go func() {
				time.Sleep(killAfter)
				stack.KillServer(1)
			}()
		}
		start := time.Now()
		r.sum, err = w.Run(c, scale)
		r.dur = time.Since(start)
		if err != nil {
			return r, err
		}
		r.gs = stack.Guardian(1).Stats()
		ls := lib.Stats()
		r.resub, r.retry = ls.ResubmittedCalls, ls.RetryableFailed
		return r, nil
	}
	// TCP: disaggregated API server behind a persistent listener, one
	// server incarnation per accepted connection (the respawn model).
	tcpRun := func(killAfter time.Duration) (result, error) {
		var r result
		silo := gpuSilo(0)
		desc := cl.Descriptor()
		reg := server.NewRegistry(desc)
		cl.BindServer(reg, silo)
		srv := server.New(reg)
		l, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			return r, err
		}
		defer l.Close()
		go func() {
			for {
				ep, err := l.Accept()
				if err != nil {
					return
				}
				go srv.ServeVM(srv.Context(1, "e12-vm"), ep)
			}
		}()
		router := hv.NewRouter(desc, nil, nil)
		if err := router.RegisterVM(ava.VMConfig{ID: 1, Name: "e12-vm"}); err != nil {
			return r, err
		}
		guestEP, routerGuest := transport.NewInProc()
		routerServer, north := transport.NewInProc()
		defer func() {
			for _, ep := range []transport.Endpoint{guestEP, routerGuest, routerServer} {
				ep.Close()
			}
		}()
		dial := func() (failover.ServerLink, error) {
			srv.DropContext(1)
			ctx := srv.Context(1, "e12-vm")
			ep, err := transport.Dial(l.Addr())
			if err != nil {
				return failover.ServerLink{}, err
			}
			return failover.ServerLink{EP: ep, Server: srv, Ctx: ctx, Adapter: cl.MigrationAdapter{Silo: silo}}, nil
		}
		g := failover.New(desc, north, dial, failover.Config{
			CheckpointEvery: 64,
			Backoff:         failover.BackoffConfig{Seed: 12},
			OnEpoch:         func(e uint32) { router.SetEpoch(1, e) },
		})
		if err := g.Start(); err != nil {
			return r, err
		}
		defer g.Close()
		go router.Attach(1, routerGuest, routerServer)
		lib := guest.New(desc, guestEP, guest.WithFailover(guest.FailoverPolicy{}))
		defer lib.Close()
		c := cl.NewRemote(lib)
		if killAfter > 0 {
			go func() {
				time.Sleep(killAfter)
				g.KillServer()
			}()
		}
		start := time.Now()
		r.sum, err = w.Run(c, scale)
		r.dur = time.Since(start)
		if err != nil {
			return r, err
		}
		r.gs = g.Stats()
		ls := lib.Stats()
		r.resub, r.retry = ls.ResubmittedCalls, ls.RetryableFailed
		return r, nil
	}

	for _, tr := range []struct {
		name string
		run  func(time.Duration) (result, error)
	}{
		{"inproc", func(k time.Duration) (result, error) { return stackRun(ava.TransportInProc, k) }},
		{"shm-ring", func(k time.Duration) (result, error) { return stackRun(ava.TransportRing, k) }},
		{"tcp(disagg)", tcpRun},
	} {
		base, err := tr.run(0)
		if err != nil {
			return nil, fmt.Errorf("%s undisturbed: %w", tr.name, err)
		}
		killAt := base.dur / 3
		if killAt < time.Millisecond {
			killAt = time.Millisecond
		}
		killed, err := tr.run(killAt)
		if err != nil {
			return nil, fmt.Errorf("%s killed run: %w", tr.name, err)
		}
		identical := math.Float64bits(killed.sum) == math.Float64bits(base.sum) &&
			killed.retry == 0 && killed.gs.Recoveries >= 1
		t.Add(tr.name, ms(base.dur), ms(killed.dur), ms(killed.gs.LastRecoveryPause),
			fmt.Sprintf("%v", identical), fmt.Sprintf("%d", killed.resub))
	}
	t.Note("identical = bitwise-equal checksum vs the undisturbed run, >=1 recovery, zero calls dropped (E12 acceptance)")
	t.Note("recovery pause covers respawn dial + record-log replay + checkpoint state restore")
	return t, nil
}
