package bench

import (
	"fmt"
	"time"

	"ava"
	"ava/internal/cl"
	"ava/internal/guest"
)

// us renders a per-call stage mean, which lives at microsecond scale.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1fus", float64(d)/float64(time.Microsecond))
}

// breakdownVectorAdd is the vectoradd call sequence with host buffers
// prepared by the caller. The shared vectorAdd helper converts its float
// slices to bytes inside the workload; that host-side data preparation is
// not remoting-stack work, so the breakdown experiment keeps it outside
// the timed region to compare stamped stages against pure stack latency.
func breakdownVectorAdd(c cl.Client, abytes, bbytes, out []byte, n int) error {
	ps, err := c.PlatformIDs()
	if err != nil {
		return err
	}
	ds, err := c.DeviceIDs(ps[0], cl.DeviceTypeGPU)
	if err != nil {
		return err
	}
	ctx, err := c.CreateContext(ds)
	if err != nil {
		return err
	}
	defer c.ReleaseContext(ctx)
	q, err := c.CreateQueue(ctx, ds[0], 0)
	if err != nil {
		return err
	}
	defer c.ReleaseQueue(q)
	mk := func() (cl.Ref, error) { return c.CreateBuffer(ctx, 1, uint64(4*n)) }
	ba, err := mk()
	if err != nil {
		return err
	}
	bb, err := mk()
	if err != nil {
		return err
	}
	bo, err := mk()
	if err != nil {
		return err
	}
	if err := c.EnqueueWrite(q, ba, false, 0, abytes); err != nil {
		return err
	}
	if err := c.EnqueueWrite(q, bb, false, 0, bbytes); err != nil {
		return err
	}
	prog, err := c.CreateProgram(ctx, "vector_add")
	if err != nil {
		return err
	}
	if err := c.BuildProgram(prog, ""); err != nil {
		return err
	}
	k, err := c.CreateKernel(prog, "vector_add")
	if err != nil {
		return err
	}
	c.SetKernelArgBuffer(k, 0, ba)
	c.SetKernelArgBuffer(k, 1, bb)
	c.SetKernelArgBuffer(k, 2, bo)
	c.SetKernelArgScalar(k, 3, cl.ArgU32(uint32(n)))
	if err := c.EnqueueNDRange(q, k, []uint64{uint64(n)}, []uint64{256}); err != nil {
		return err
	}
	if err := c.EnqueueRead(q, bo, true, 0, out); err != nil {
		return err
	}
	return c.DeferredError()
}

// Breakdown decomposes remoted call latency using the stamped Call/Reply
// headers. Every synchronous call carries four timestamps — guest encode,
// router admit, server dispatch, server done — so the guest can attribute
// its blocked time to the guest→router leg (marshal + transport + policing),
// router queueing/scheduling, silo execution, and the reply path. The
// table runs the vectoradd workload with forced-sync calls and checks that
// the four stages account for (nearly all of) the measured end-to-end wall
// time: coverage should sit within ~10% of 100%.
func Breakdown(opts Options) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "per-call stage breakdown (vectoradd, sync calls)",
		Header: []string{"transport", "calls", "enc->admit", "admit->disp",
			"exec", "reply", "stage sum", "e2e", "coverage"},
	}

	n := (1 << 16) * opts.scale()
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = float32(i)
		b[i] = float32(2 * i)
	}
	abytes, bbytes := f32bytes(a), f32bytes(b)
	out := make([]byte, 4*n)

	for _, tr := range []struct {
		name string
		kind ava.TransportKind
	}{
		{"inproc", ava.TransportInProc},
		{"shm-ring", ava.TransportRing},
	} {
		stack := clStack(gpuSilo(0), false, ava.WithTransport(tr.kind))
		c, err := clRemote(stack, 1, guest.WithForceSync())
		if err != nil {
			stack.Close()
			return nil, err
		}
		run := func() error { return breakdownVectorAdd(c, abytes, bbytes, out, n) }

		// Warm up once so one-time costs (handle tables, ring setup)
		// do not pollute the stage accounting.
		if err := run(); err != nil {
			stack.Close()
			return nil, err
		}

		before := c.Lib().Stats()
		start := time.Now()
		for r := 0; r < opts.reps(); r++ {
			if err := run(); err != nil {
				stack.Close()
				return nil, err
			}
		}
		e2e := time.Since(start)
		after := c.Lib().Stats()
		stack.Close()

		calls := after.StagedCalls - before.StagedCalls
		if calls == 0 {
			return nil, fmt.Errorf("breakdown: %s: no staged calls recorded", tr.name)
		}
		encAdmit := after.StageEncodeToAdmit - before.StageEncodeToAdmit
		admitDisp := after.StageAdmitToDispatch - before.StageAdmitToDispatch
		exec := after.StageExec - before.StageExec
		reply := after.StageReply - before.StageReply
		sum := encAdmit + admitDisp + exec + reply

		per := func(d time.Duration) string { return us(d / time.Duration(calls)) }
		t.Add(tr.name, fmt.Sprintf("%d", calls),
			per(encAdmit), per(admitDisp), per(exec), per(reply),
			ms(sum), ms(e2e), fmt.Sprintf("%.0f%%", 100*ratio(sum, e2e)))
	}
	t.Note("coverage = stamped stage sum / measured wall time; forced-sync calls, so the four stages should account for ~all of it")
	t.Note("exec dominates on DMA-heavy calls (the silo charges PCIe + launch costs); enc->admit and reply are the remoting tax")
	return t, nil
}
