// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (and the quantified claims in its
// motivation and design sections) against the simulated accelerators. Each
// experiment returns a Table whose rows mirror what the paper reports;
// cmd/avabench prints them, bench_test.go wraps them as Go benchmarks, and
// EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's result in printable form.
type Table struct {
	ID      string // experiment id from DESIGN.md (e.g. "E1")
	Title   string
	Header  []string
	Rows    [][]string
	Notes   []string
	Metrics []Metric // machine-readable values for the BENCH_*.json output
}

// Metric is one machine-readable measurement attached to a table. The
// string cells in Rows are for humans; tooling consumes these instead
// (avabench -json writes them into BENCH_<exp>.json).
type Metric struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddMetric attaches a machine-readable measurement.
func (t *Table) AddMetric(name, unit string, value float64) {
	t.Metrics = append(t.Metrics, Metric{Name: name, Unit: unit, Value: value})
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// timeIt runs f reps times and returns the minimum wall time (the standard
// way to suppress scheduling noise for end-to-end runtimes).
func timeIt(reps int, f func() error) (time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}
