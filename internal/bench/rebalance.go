package bench

import (
	"fmt"
	"sync"
	"time"

	"ava"
	"ava/internal/fleet"
	"ava/internal/server"
	"ava/internal/transport"
)

// E15 uses its own tiny API instead of a Rodinia workload: the point is
// the scheduler, so the handler models a fixed device-service time and a
// deterministic reply, and every host serializes calls on one "device" —
// queueing delay, and therefore tail latency, is purely a function of
// how many VMs the scheduler parked on the host.
const rebalanceSpec = `
api "simload";
const OK = 0;
type st = int32_t { success(OK); };
st work(uint32_t x, uint32_t *y) { parameter(y) { out; element; } }
`

// rebalanceService is the modeled per-call device time. Long enough to
// dominate transport jitter, short enough that the experiment stays fast.
const rebalanceService = 200 * time.Microsecond

func rebalanceReply(x uint32) uint32 { return x*2654435761 + 0x9e37 }

// rebalStateless serves the guardian's wire snapshot/restore control
// calls for the stateless simload API: nothing lives in the handle
// table, so snapshots are empty and restores are no-ops — migration
// cost is the replay log alone.
type rebalStateless struct{}

func (rebalStateless) RestoreObject(obj any, state []byte) error    { return nil }
func (rebalStateless) SnapshotObject(obj any) ([]byte, bool, error) { return nil, false, nil }

// rebalHost is one API-server "machine" in the E15 mini-fleet, the same
// in-process avad stand-in as E13's crossHostServer, plus the two things
// a scheduled host needs: a single-device service queue and a live
// announcer whose load signal is the number of VMs it currently serves.
type rebalHost struct {
	id  string
	srv *server.Server
	l   *transport.Listener
	ann *fleet.Announcer

	mu     sync.Mutex
	dev    sync.Mutex // the "device": one call executes at a time
	eps    []transport.Endpoint
	served map[uint32]int // VM -> live connection count
	dead   bool
}

func newRebalHost(id string) (*rebalHost, error) {
	d, err := ava.CompileSpec(rebalanceSpec)
	if err != nil {
		return nil, err
	}
	reg := server.NewRegistry(d)
	reg.Restorer = rebalStateless{}
	h := &rebalHost{id: id, served: make(map[uint32]int)}
	reg.MustRegister("work", func(inv *server.Invocation) error {
		h.dev.Lock()
		time.Sleep(rebalanceService)
		h.dev.Unlock()
		inv.SetOutUint(1, uint64(rebalanceReply(uint32(inv.Uint(0)))))
		inv.SetStatus(0)
		return nil
	})
	h.srv = server.New(reg)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h.l = l
	go h.accept()
	return h, nil
}

// announce starts the host's live heartbeat: truthful load (VMs served)
// sampled on every push. Before this is called the registry holds only
// whatever stale figure the experiment seeded — that is the skew.
func (h *rebalHost) announce(loc fleet.Locator, every time.Duration) {
	h.ann = fleet.StartAnnouncer(loc, fleet.Member{ID: h.id, Addr: h.l.Addr(), API: "simload"}, every, nil)
	h.ann.SetSampler(func(m *fleet.Member) {
		h.mu.Lock()
		m.Load = len(h.served)
		h.mu.Unlock()
	})
}

func (h *rebalHost) accept() {
	for {
		ep, err := h.l.Accept()
		if err != nil {
			return
		}
		h.mu.Lock()
		if h.dead {
			h.mu.Unlock()
			ep.Close()
			continue
		}
		h.eps = append(h.eps, ep)
		h.mu.Unlock()
		go h.serve(ep)
	}
}

func (h *rebalHost) serve(ep transport.Endpoint) {
	defer ep.Close()
	frame, err := ep.Recv()
	if err != nil {
		return
	}
	hello, err := transport.DecodeHello(frame)
	if err != nil {
		return
	}
	if err := transport.AckHello(ep, hello, true, ""); err != nil {
		return
	}
	h.mu.Lock()
	h.served[hello.VM]++
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		if h.served[hello.VM]--; h.served[hello.VM] <= 0 {
			delete(h.served, hello.VM)
		}
		h.mu.Unlock()
	}()
	h.srv.DropContext(hello.VM)
	h.srv.ServeVM(h.srv.Context(hello.VM, hello.Name), ep)
}

func (h *rebalHost) vmCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.served)
}

func (h *rebalHost) close() {
	if h.ann != nil {
		h.ann.Close()
	}
	h.mu.Lock()
	h.dead = true
	eps := append([]transport.Endpoint(nil), h.eps...)
	h.mu.Unlock()
	h.l.Close()
	for _, ep := range eps {
		ep.Close()
	}
}

// rebalanceResult is one full run: every VM's reply checksum, the tail
// latency of the steady-state window, and what the scheduler did.
type rebalanceResult struct {
	dur        time.Duration
	p99        time.Duration // steady-state window (second half of each VM's calls)
	p50        time.Duration
	checksums  []uint32 // per VM, order = VM id
	migrations uint64
	maxHostVMs int // fleet's hottest host after the run
}

// rebalanceRun drives one E15 phase: vms guests piled onto host-a by a
// stale announcement, then live announcers catch up and — when rebalance
// is on — the stack's background rebalancer spreads them mid-workload.
func rebalanceRun(rebalance bool, vms, calls int) (*rebalanceResult, error) {
	loc := fleet.NewRegistry(0, nil)
	hostIDs := []string{"host-a", "host-b", "host-c"}
	hosts := make([]*rebalHost, 0, len(hostIDs))
	for _, id := range hostIDs {
		h, err := newRebalHost(id)
		if err != nil {
			return nil, err
		}
		defer h.close()
		hosts = append(hosts, h)
	}
	// The stale picture every real scheduler eventually faces: host-a
	// announced before its peers took load, so admission parks every VM
	// there. The live announcers (started below) correct it too late.
	loc.Announce(fleet.Member{ID: "host-a", Addr: hosts[0].l.Addr(), API: "simload", Load: 0})
	loc.Announce(fleet.Member{ID: "host-b", Addr: hosts[1].l.Addr(), API: "simload", Load: 99})
	loc.Announce(fleet.Member{ID: "host-c", Addr: hosts[2].l.Addr(), API: "simload", Load: 99})

	desc, err := ava.CompileSpec(rebalanceSpec)
	if err != nil {
		return nil, err
	}
	opts := []ava.Option{
		ava.WithRecording(),
		ava.WithPlacement(ava.PlacementConfig{Locator: loc, API: "simload"}),
	}
	if rebalance {
		opts = append(opts, ava.WithRebalance(ava.RebalanceConfig{
			Interval:        20 * time.Millisecond,
			Alpha:           0.5,
			SkewRatio:       1.3,
			HysteresisTicks: 2,
			CooldownTicks:   1,
			WindowTicks:     10,
			MaxPerWindow:    4,
			BatchMax:        2,
			VMCooldownTicks: 5,
		}))
	}
	stack := observe(ava.NewStack(desc, server.NewRegistry(desc), opts...))
	defer stack.Close()

	libs := make([]*ava.GuestLib, vms)
	for i := 0; i < vms; i++ {
		lib, err := stack.AttachVM(ava.VMConfig{ID: uint32(i + 1), Name: vmName(uint32(i + 1))})
		if err != nil {
			return nil, err
		}
		libs[i] = lib
	}
	for _, h := range hosts {
		h.announce(loc, 15*time.Millisecond)
	}

	res := &rebalanceResult{checksums: make([]uint32, vms)}
	lats := make([][]time.Duration, vms)
	errs := make([]error, vms)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range libs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lib := libs[i]
			sum := uint32(2166136261)
			for c := 0; c < calls; c++ {
				x := uint32(i)<<16 | uint32(c)
				var y uint32
				t0 := time.Now()
				if _, err := lib.Call("work", x, &y); err != nil {
					errs[i] = fmt.Errorf("vm %d call %d: %w", i+1, c, err)
					return
				}
				lats[i] = append(lats[i], time.Since(t0))
				if y != rebalanceReply(x) {
					errs[i] = fmt.Errorf("vm %d call %d: corrupted reply %d", i+1, c, y)
					return
				}
				sum = (sum ^ y) * 16777619
			}
			res.checksums[i] = sum
		}(i)
	}
	wg.Wait()
	res.dur = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Tail latency over the steady-state window: the second half of each
	// VM's calls, after the rebalancer (when on) has had time to act.
	var tail []time.Duration
	for _, ls := range lats {
		tail = append(tail, ls[len(ls)/2:]...)
	}
	res.p50, res.p99 = percentile(tail, 0.50), percentile(tail, 0.99)
	if r := stack.Rebalancer(); r != nil {
		res.migrations = r.Stats().Migrations
	}
	for _, h := range hosts {
		if n := h.vmCount(); n > res.maxHostVMs {
			res.maxHostVMs = n
		}
	}
	return res, nil
}

// Rebalance is E15: every VM lands on one host through a stale load
// announcement, and the background rebalancer live-migrates the fleet
// toward balance mid-workload through the guardian checkpoint/relocate
// path. Acceptance: the rebalanced run's steady-state p99 beats the
// static run's, every reply is correct, and the per-VM reply checksums
// are byte-identical between the two runs — migration lost and
// duplicated nothing.
func Rebalance(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E15/Rebalance",
		Title:  "Cluster rebalancing: skewed admissions live-migrated off the hot host mid-workload",
		Header: []string{"mode", "total", "p50 (tail)", "p99 (tail)", "migrations", "hottest host", "identical"},
	}
	const vms = 9
	calls := 200 * opts.scale()

	static, err := rebalanceRun(false, vms, calls)
	if err != nil {
		return nil, fmt.Errorf("static run: %w", err)
	}
	rebal, err := rebalanceRun(true, vms, calls)
	if err != nil {
		return nil, fmt.Errorf("rebalanced run: %w", err)
	}
	identical := len(static.checksums) == len(rebal.checksums)
	for i := range static.checksums {
		identical = identical && static.checksums[i] == rebal.checksums[i]
	}
	t.Add("static (skewed)", ms(static.dur), ms(static.p50), ms(static.p99),
		fmt.Sprintf("%d", static.migrations), fmt.Sprintf("%d VMs", static.maxHostVMs), "-")
	t.Add("rebalanced", ms(rebal.dur), ms(rebal.p50), ms(rebal.p99),
		fmt.Sprintf("%d", rebal.migrations), fmt.Sprintf("%d VMs", rebal.maxHostVMs),
		fmt.Sprintf("%v", identical))
	t.AddMetric("static_p99", "ms", float64(static.p99)/1e6)
	t.AddMetric("rebalanced_p99", "ms", float64(rebal.p99)/1e6)
	t.AddMetric("migrations", "count", float64(rebal.migrations))
	t.Note("identical = per-VM FNV checksums over every reply match the static run bit for bit (no call lost, duplicated or corrupted by migration)")
	t.Note("each host serializes calls on one modeled device (%v/call): tail latency is queueing delay, i.e. pure scheduler quality", rebalanceService)
	return t, nil
}
