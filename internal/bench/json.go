package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Experiments lists every experiment's canonical short name in run order —
// the names ByName accepts and the <exp> part of BENCH_<exp>.json.
func Experiments() []string {
	return []string{
		"fig5", "async", "fullvirt", "sharing", "swap", "migrate", "effort",
		"transport", "breakdown", "pipeline", "overload", "failover",
		"crosshost", "copycost", "rebalance", "ha",
	}
}

// jsonTable is the on-disk shape of one experiment result.
type jsonTable struct {
	Exp     string     `json:"exp"`
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	Metrics []Metric   `json:"metrics,omitempty"`
}

// WriteJSON writes tbl as dir/BENCH_<exp>.json and returns the path.
func WriteJSON(dir, exp string, tbl *Table) (string, error) {
	b, err := json.MarshalIndent(jsonTable{
		Exp:     exp,
		ID:      tbl.ID,
		Title:   tbl.Title,
		Header:  tbl.Header,
		Rows:    tbl.Rows,
		Notes:   tbl.Notes,
		Metrics: tbl.Metrics,
	}, "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: encode %s: %w", exp, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+exp+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
