package bench

import (
	"fmt"
	"math"
	"sync"
	"time"

	"ava"
	"ava/internal/cl"
	"ava/internal/failover"
	"ava/internal/fleet"
	"ava/internal/rodinia"
	"ava/internal/server"
	"ava/internal/transport"
)

// crossHostServer is one standalone API-server "machine" in the E13
// mini-fleet: its own silo, its own server, a TCP listener, and a fleet
// registration. It is the in-process equivalent of one avad host.
type crossHostServer struct {
	id   string
	silo *cl.Silo
	srv  *server.Server
	l    *transport.Listener

	mu   sync.Mutex
	eps  []transport.Endpoint
	dead bool
}

func newCrossHostServer(id string, loc fleet.Locator, load int) (*crossHostServer, error) {
	silo := gpuSilo(0)
	reg := server.NewRegistry(cl.Descriptor())
	cl.BindServer(reg, silo)
	// A guardian failing over from a peer host replays mirrored object
	// snapshots as marshal.FuncRestore calls; the restorer rebuilds them.
	reg.Restorer = cl.MigrationAdapter{Silo: silo}
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h := &crossHostServer{id: id, silo: silo, srv: server.New(reg), l: l}
	go h.accept()
	loc.Announce(fleet.Member{ID: id, Addr: l.Addr(), API: "opencl", Load: load})
	return h, nil
}

func (h *crossHostServer) accept() {
	for {
		ep, err := h.l.Accept()
		if err != nil {
			return
		}
		h.mu.Lock()
		if h.dead {
			h.mu.Unlock()
			ep.Close()
			continue
		}
		h.eps = append(h.eps, ep)
		h.mu.Unlock()
		go h.serve(ep)
	}
}

func (h *crossHostServer) serve(ep transport.Endpoint) {
	defer ep.Close()
	frame, err := ep.Recv()
	if err != nil {
		return
	}
	hello, err := transport.DecodeHello(frame)
	if err != nil {
		return
	}
	if err := transport.AckHello(ep, hello, true, ""); err != nil {
		return
	}
	// Each accepted connection is one server incarnation for the VM: the
	// guardian replays state into a clean context before traffic resumes.
	h.srv.DropContext(hello.VM)
	h.srv.ServeVM(h.srv.Context(hello.VM, hello.Name), ep)
}

// kill is the SIGKILL of a whole machine: the host stops accepting, every
// live connection is severed mid-stream (not closed — a crash must look
// like a crash to the guardian's failure detector), and only then does the
// fleet learn of the death. The deregister stands in for TTL expiry, and
// ordering it after the sever matters: against an HA registry set with a
// dead replica, the deregister fan-out can block on the replica's retry
// budget, and a SIGKILL does not wait for the control plane.
func (h *crossHostServer) kill(loc fleet.Locator) {
	h.mu.Lock()
	h.dead = true
	eps := append([]transport.Endpoint(nil), h.eps...)
	h.mu.Unlock()
	h.l.Close()
	for _, ep := range eps {
		transport.Sever(ep)
	}
	loc.Deregister(h.id)
}

func (h *crossHostServer) close() {
	h.mu.Lock()
	h.dead = true
	eps := append([]transport.Endpoint(nil), h.eps...)
	h.mu.Unlock()
	h.l.Close()
	for _, ep := range eps {
		ep.Close()
	}
}

// CrossHost is E13: kill the entire machine serving the VM mid-gaussian —
// listener, connections and silo all gone — and complete the workload on a
// peer host selected through the fleet registry, byte-identical to an
// undisturbed run. This is the cross-host extension of E12: the guardian's
// respawn budget fails against the dead endpoint, the registry-backed
// dialer excludes the dead host and picks the best live peer, and the
// record-log replay reconstructs every buffer on the peer's fresh silo.
func CrossHost(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E13/CrossHost",
		Title:  "Cross-host failover: serving machine killed mid-gaussian, replay on a fleet peer",
		Header: []string{"transport", "undisturbed", "with kill", "recovery pause", "identical", "served-by"},
	}
	w, ok := rodinia.ByName("gaussian")
	if !ok {
		return nil, fmt.Errorf("bench: gaussian workload missing")
	}
	scale := opts.scale()

	type result struct {
		dur     time.Duration
		sum     float64
		gs      failover.Stats
		retry   uint64
		changes int
		host    string
	}
	run := func(kind ava.TransportKind, killAfter time.Duration) (result, error) {
		var r result
		loc := fleet.NewRegistry(0, nil)
		// host-a carries the lighter load, so the health-ranked registry
		// steers the first dial there deterministically; host-b is the
		// failover target.
		hostA, err := newCrossHostServer("host-a", loc, 0)
		if err != nil {
			return r, err
		}
		defer hostA.close()
		hostB, err := newCrossHostServer("host-b", loc, 1)
		if err != nil {
			return r, err
		}
		defer hostB.close()

		dialer := failover.NewFleetDialer(loc, failover.FleetDialConfig{
			API: "opencl", VM: 1, Name: "e13-vm",
		})
		// The guest-side stack has no local server to fall back on: every
		// server incarnation is dialed out of the fleet.
		desc := cl.Descriptor()
		stack := ava.NewStack(desc, server.NewRegistry(desc),
			ava.WithTransport(kind),
			ava.WithFailover(ava.FailoverConfig{
				Checkpoint: ava.CheckpointConfig{Every: 64},
				Backoff:    failover.BackoffConfig{Seed: 13},
				Dial: func(id uint32, name string) (failover.ServerLink, error) {
					return dialer.Dial()
				},
				Host: func(uint32) string { return dialer.Host() },
			}))
		defer stack.Close()
		lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "e13-vm"})
		if err != nil {
			return r, err
		}
		dialer.SetEpochSource(stack.Guardian(1).Epoch)
		c := cl.NewRemote(lib)
		if killAfter > 0 {
			go func() {
				time.Sleep(killAfter)
				hostA.kill(loc)
			}()
		}
		start := time.Now()
		r.sum, err = w.Run(c, scale)
		r.dur = time.Since(start)
		if err != nil {
			return r, err
		}
		r.gs = stack.Guardian(1).Stats()
		r.retry = lib.Stats().RetryableFailed
		r.changes = dialer.HostChanges()
		r.host = dialer.Host()
		return r, nil
	}

	// The guest↔router hop varies (hypercall-like vs shared-memory rings);
	// the router↔server hop is a real TCP socket to the fleet host in both.
	for _, tr := range []struct {
		name string
		kind ava.TransportKind
	}{
		{"inproc+tcp", ava.TransportInProc},
		{"shm-ring+tcp", ava.TransportRing},
	} {
		base, err := run(tr.kind, 0)
		if err != nil {
			return nil, fmt.Errorf("%s undisturbed: %w", tr.name, err)
		}
		killAt := base.dur / 3
		if killAt < time.Millisecond {
			killAt = time.Millisecond
		}
		killed, err := run(tr.kind, killAt)
		if err != nil {
			return nil, fmt.Errorf("%s killed run: %w", tr.name, err)
		}
		identical := math.Float64bits(killed.sum) == math.Float64bits(base.sum) &&
			killed.retry == 0 && killed.gs.Recoveries >= 1 && killed.changes >= 1
		t.Add(tr.name, ms(base.dur), ms(killed.dur), ms(killed.gs.LastRecoveryPause),
			fmt.Sprintf("%v", identical), killed.host)
	}
	t.Note("identical = bitwise-equal checksum vs the undisturbed run, >=1 recovery, >=1 cross-host move, zero calls dropped (E13 acceptance)")
	t.Note("the killed run finishes on a different machine with a cold silo: replay rebuilds every buffer from the shadow log")
	return t, nil
}
