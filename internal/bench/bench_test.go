package bench

import (
	"fmt"
	"strings"
	"testing"
)

// Smoke tests: the fast experiments run end to end and produce plausible
// tables. The heavyweight ones (fig5, sharing) are exercised by avabench
// and the root-package benchmarks.

func TestEffortTable(t *testing.T) {
	tbl, err := Effort()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	out := tbl.String()
	for _, want := range []string{"opencl", "mvnc", "qat", "leverage"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFullVirtTable(t *testing.T) {
	tbl, err := FullVirtBaseline(Options{Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The fullvirt column must show a slowdown of at least 10x everywhere
	// ("orders of magnitude").
	for _, row := range tbl.Rows {
		slow := row[len(row)-1]
		if !strings.HasSuffix(slow, "x") {
			t.Fatalf("bad slowdown cell %q", slow)
		}
	}
}

func TestSwapTable(t *testing.T) {
	tbl, err := Swap(Options{Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "all buffers intact" {
			t.Fatalf("swap corruption: %v", row)
		}
	}
}

func TestMigrationTable(t *testing.T) {
	tbl, err := Migration(Options{Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("migration unverified: %v", row)
		}
	}
}

func TestRebalanceImprovesTailLatency(t *testing.T) {
	const vms, calls = 9, 150
	static, err := rebalanceRun(false, vms, calls)
	if err != nil {
		t.Fatal(err)
	}
	rebal, err := rebalanceRun(true, vms, calls)
	if err != nil {
		t.Fatal(err)
	}
	// Acceptance (E15): rebalancing reduces the hot host's steady-state
	// p99. The workload is sleep-dominated (200us of modeled device time
	// per call behind a per-host mutex), so queueing delay — and the
	// improvement — survives loaded CI machines; measured headroom is ~3x
	// against the 0.8x bound here.
	if rebal.p99 >= static.p99*8/10 {
		t.Fatalf("rebalanced p99 = %v, want < 0.8x static p99 %v", rebal.p99, static.p99)
	}
	if rebal.migrations == 0 {
		t.Fatal("no migrations despite sustained skew")
	}
	if rebal.maxHostVMs >= vms {
		t.Fatalf("hottest host still serves all %d VMs", rebal.maxHostVMs)
	}
	// Zero lost/duplicated/corrupted calls: every VM's reply checksum is
	// byte-identical to the undisturbed static run's.
	for i := range static.checksums {
		if static.checksums[i] != rebal.checksums[i] {
			t.Fatalf("vm %d checksum diverged across migration: %08x != %08x",
				i+1, rebal.checksums[i], static.checksums[i])
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nonsense", Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "X", Title: "t", Header: []string{"a", "bee"}}
	tbl.Add("1", "2")
	tbl.Note("hello %d", 7)
	out := tbl.String()
	for _, want := range []string{"X — t", "bee", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBreakdownCoverage(t *testing.T) {
	tbl, err := Breakdown(Options{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Acceptance: the stamped stage sum accounts for the end-to-end
	// latency of the sync vectoradd workload to within ~10% (a little
	// slack for scheduler noise on loaded CI machines).
	for _, row := range tbl.Rows {
		cov := row[len(row)-1]
		var pct float64
		if _, err := fmt.Sscanf(cov, "%f%%", &pct); err != nil {
			t.Fatalf("bad coverage cell %q: %v", cov, err)
		}
		if pct < 85 || pct > 112 {
			t.Fatalf("%s: stage sum covers %.0f%% of e2e, want ~100%%: %v", row[0], pct, row)
		}
	}
}

func TestPipelineScaling(t *testing.T) {
	tbl, err := Pipeline(Options{Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 12 { // 3 transports x 4 thread counts
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Acceptance: >=3x sync-call throughput at 8 guest threads vs 1 on the
	// in-process transport. The workload is sleep-dominated (400us of
	// modeled device time per call), so the scaling survives loaded CI
	// machines; measured headroom is ~7x.
	for _, row := range tbl.Rows {
		if row[0] != "inproc" || row[1] != "8" {
			continue
		}
		var scale float64
		if _, err := fmt.Sscanf(row[len(row)-1], "%fx", &scale); err != nil {
			t.Fatalf("bad scaling cell %q: %v", row[len(row)-1], err)
		}
		if scale < 3 {
			t.Fatalf("inproc scaling at 8 threads = %.2fx, want >= 3x: %v", scale, row)
		}
		return
	}
	t.Fatal("inproc/8 row missing")
}

func TestOverloadShedding(t *testing.T) {
	res, err := overloadRun(150)
	if err != nil {
		t.Fatal(err)
	}
	// Acceptance: under low-priority saturation, high-priority p99 stays
	// within 2x of its uncontended value. The workload is sleep-dominated
	// (3ms of handler time per call), so the bound survives loaded CI
	// machines; measured headroom is ~1.1x.
	if res.contP99 > 2*res.soloP99 {
		t.Fatalf("contended hi p99 = %v, want <= 2x solo p99 %v", res.contP99, res.soloP99)
	}
	// Low-priority overflow is shed with StatusOverload at admission time,
	// well under its deadline — not discovered by timeout.
	if res.loShed < 50 {
		t.Fatalf("only %d calls shed (of %d attempts); shedding did not engage", res.loShed, res.loAttempts)
	}
	if res.shedP50 > overloadDeadline/4 {
		t.Fatalf("median shed denial latency = %v, want well under the %v deadline", res.shedP50, overloadDeadline)
	}
	if res.shedP99 >= overloadDeadline {
		t.Fatalf("p99 shed denial latency = %v, not under the %v deadline", res.shedP99, overloadDeadline)
	}
	if res.loOther > 0 {
		t.Fatalf("%d low-priority calls failed with unexpected errors", res.loOther)
	}
	// The high band is never sheddable.
	if res.hiShedDenied != 0 {
		t.Fatalf("high-priority VM had %d calls shed", res.hiShedDenied)
	}
	// Client-observed denials and router-side counters agree.
	if res.shedDenied < uint64(res.loShed) {
		t.Fatalf("router ShedDenied = %d < client-observed %d", res.shedDenied, res.loShed)
	}
}
