package bench

import (
	"fmt"
	"math"
	"sync"
	"time"

	"ava"
	"ava/internal/backoff"
	"ava/internal/cl"
	"ava/internal/failover"
	"ava/internal/fleet"
	"ava/internal/rodinia"
	"ava/internal/server"
	"ava/internal/transport"
)

// haRegistry is one wire-served avaregd "machine" in the E16 mini-fleet.
// kill severs the accept socket and every established client stream —
// the failure a crashed registry host actually presents to announcers and
// quorum readers.
type haRegistry struct {
	reg *fleet.Registry
	l   *transport.Listener

	mu  sync.Mutex
	eps []transport.Endpoint
}

func newHARegistry() (*haRegistry, error) {
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h := &haRegistry{reg: fleet.NewRegistry(0, nil), l: l}
	go func() {
		for {
			ep, err := l.Accept()
			if err != nil {
				return
			}
			h.mu.Lock()
			h.eps = append(h.eps, ep)
			h.mu.Unlock()
			go fleet.ServeConn(ep, h.reg)
		}
	}()
	return h, nil
}

func (h *haRegistry) addr() string { return h.l.Addr() }

func (h *haRegistry) kill() {
	h.l.Close()
	h.mu.Lock()
	eps := append([]transport.Endpoint(nil), h.eps...)
	h.eps = nil
	h.mu.Unlock()
	for _, ep := range eps {
		transport.Sever(ep)
	}
}

// haMirror is the mirror "machine": an avad -mirror process accumulating
// the guardian's replicated shadow log.
type haMirror struct {
	srv *failover.MirrorServer
	l   *transport.Listener

	mu  sync.Mutex
	eps []transport.Endpoint
}

func newHAMirror() (*haMirror, error) {
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h := &haMirror{srv: failover.NewMirrorServer(), l: l}
	go func() {
		for {
			ep, err := l.Accept()
			if err != nil {
				return
			}
			h.mu.Lock()
			h.eps = append(h.eps, ep)
			h.mu.Unlock()
			go h.srv.ServeConn(ep)
		}
	}()
	return h, nil
}

func (h *haMirror) addr() string { return h.l.Addr() }

func (h *haMirror) kill() {
	h.l.Close()
	h.mu.Lock()
	eps := append([]transport.Endpoint(nil), h.eps...)
	h.eps = nil
	h.mu.Unlock()
	for _, ep := range eps {
		transport.Sever(ep)
	}
}

// haRetry keeps probes of a dead replica from dragging the run out while
// staying a real jittered-backoff series.
func haRetry() backoff.Config {
	return backoff.Config{Base: time.Millisecond, Cap: 5 * time.Millisecond, Budget: 100 * time.Millisecond, Seed: 17}
}

// HA is E16: the full replicated control plane — two registry replicas
// behind a quorum-reading MultiClient, two serving hosts, and a remote
// mirror host accumulating the guardian's shadow log — with any single
// machine SIGKILLed at one third of the runtime. Three scenarios per
// transport stack:
//
//   - host: the serving machine dies; the guardian replays onto the fleet
//     peer chosen through the (still replicated) registry — E13 plus a
//     remote mirror that must converge afterwards.
//   - mirror: the mirror machine dies; replication is a durability
//     upgrade, never a liveness dependency, so the run must not notice.
//   - registry: one registry replica dies, and to prove the survivor
//     actually carries the control plane, the serving host dies later in
//     the same run — failover must route through the surviving replica.
//
// Every scenario must complete byte-identical to the undisturbed run.
func HA(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E16/HA",
		Title:  "Replicated control plane: serving host, mirror host, or registry replica killed mid-gaussian",
		Header: []string{"transport", "killed", "undisturbed", "with kill", "recovery pause", "identical", "served-by"},
	}
	w, ok := rodinia.ByName("gaussian")
	if !ok {
		return nil, fmt.Errorf("bench: gaussian workload missing")
	}
	scale := opts.scale()

	type result struct {
		dur      time.Duration
		sum      float64
		gs       failover.Stats
		retry    uint64
		changes  int
		host     string
		mirrorOK bool
	}
	run := func(kind ava.TransportKind, scenario string, killAt time.Duration) (result, error) {
		var r result
		regA, err := newHARegistry()
		if err != nil {
			return r, err
		}
		defer regA.kill()
		regB, err := newHARegistry()
		if err != nil {
			return r, err
		}
		defer regB.kill()
		cA, cB := fleet.DialRegistry(regA.addr()), fleet.DialRegistry(regB.addr())
		cA.SetRetry(haRetry())
		cB.SetRetry(haRetry())
		mc := fleet.NewMultiClient(cA, cB)
		defer mc.Close()

		hostA, err := newCrossHostServer("host-a", mc, 0)
		if err != nil {
			return r, err
		}
		defer hostA.close()
		hostB, err := newCrossHostServer("host-b", mc, 1)
		if err != nil {
			return r, err
		}
		defer hostB.close()
		mir, err := newHAMirror()
		if err != nil {
			return r, err
		}
		defer mir.kill()
		rm := failover.NewRemoteMirror(mir.addr(), failover.RemoteMirrorConfig{
			VM: 1, Name: "e16-vm", Backoff: haRetry(),
		})
		defer rm.Close()

		dialer := failover.NewFleetDialer(mc, failover.FleetDialConfig{
			API: "opencl", VM: 1, Name: "e16-vm",
		})
		desc := cl.Descriptor()
		stack := ava.NewStack(desc, server.NewRegistry(desc),
			ava.WithTransport(kind),
			ava.WithFailover(ava.FailoverConfig{
				Checkpoint: ava.CheckpointConfig{Every: 64},
				Backoff:    failover.BackoffConfig{Seed: 16},
				Dial: func(id uint32, name string) (failover.ServerLink, error) {
					return dialer.Dial()
				},
				Host: func(uint32) string { return dialer.Host() },
			}),
			ava.WithMirror(rm)) // after WithFailover: it replaces the whole failover config
		defer stack.Close()
		lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "e16-vm"})
		if err != nil {
			return r, err
		}
		dialer.SetEpochSource(stack.Guardian(1).Epoch)
		c := cl.NewRemote(lib)

		switch scenario {
		case "host":
			go func() {
				time.Sleep(killAt)
				hostA.kill(mc)
			}()
		case "mirror":
			go func() {
				time.Sleep(killAt)
				mir.kill()
			}()
		case "registry":
			go func() {
				time.Sleep(killAt)
				regA.kill()
			}()
			go func() {
				time.Sleep(2 * killAt)
				hostA.kill(mc)
			}()
		}

		start := time.Now()
		r.sum, err = w.Run(c, scale)
		r.dur = time.Since(start)
		if err != nil {
			return r, err
		}
		r.gs = stack.Guardian(1).Stats()
		r.retry = lib.Stats().RetryableFailed
		r.changes = dialer.HostChanges()
		r.host = dialer.Host()

		if scenario == "mirror" {
			// The mirror machine is gone; the staging copy is the proof that
			// a dead mirror host costs durability, not correctness.
			r.mirrorOK = rm.State().W > 0
		} else if r.mirrorOK = rm.Flush(5 * time.Second); r.mirrorOK {
			remote, staging := mir.srv.State(1), rm.State()
			r.mirrorOK = remote.W == staging.W && len(remote.Entries) == len(staging.Entries)
		}
		return r, nil
	}

	for _, tr := range []struct {
		name string
		kind ava.TransportKind
	}{
		{"inproc+tcp", ava.TransportInProc},
		{"shm-ring+tcp", ava.TransportRing},
	} {
		base, err := run(tr.kind, "", 0)
		if err != nil {
			return nil, fmt.Errorf("%s undisturbed: %w", tr.name, err)
		}
		if !base.mirrorOK {
			return nil, fmt.Errorf("%s undisturbed: mirror did not converge", tr.name)
		}
		killAt := base.dur / 3
		if killAt < time.Millisecond {
			killAt = time.Millisecond
		}
		for _, scenario := range []string{"host", "mirror", "registry"} {
			killed, err := run(tr.kind, scenario, killAt)
			if err != nil {
				return nil, fmt.Errorf("%s kill-%s run: %w", tr.name, scenario, err)
			}
			identical := math.Float64bits(killed.sum) == math.Float64bits(base.sum) &&
				killed.retry == 0 && killed.mirrorOK
			switch scenario {
			case "host", "registry":
				identical = identical && killed.gs.Recoveries >= 1 && killed.changes >= 1
			case "mirror":
				identical = identical && killed.gs.Recoveries == 0
			}
			t.Add(tr.name, scenario, ms(base.dur), ms(killed.dur), ms(killed.gs.LastRecoveryPause),
				fmt.Sprintf("%v", identical), killed.host)
		}
	}
	t.Note("identical = bitwise-equal checksum vs the undisturbed run, zero dropped calls, and the mirror converged to staging wherever the mirror host survived (E16 acceptance)")
	t.Note("registry rows also kill the serving host later in the run: failover must route through the surviving registry replica")
	t.Note("mirror rows require zero recoveries: a dead mirror host is a durability downgrade, never a data-path event")
	return t, nil
}
