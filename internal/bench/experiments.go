package bench

import (
	"fmt"
	"time"

	"ava"
	"ava/internal/cl"
	"ava/internal/fullvirt"
	"ava/internal/guest"
	"ava/internal/hv"
	"ava/internal/migrate"
	"ava/internal/mvnc"
	"ava/internal/rodinia"
)

// Options tune experiment scale.
type Options struct {
	// Scale multiplies workload problem sizes (default 1).
	Scale int
	// Reps per measurement; the minimum is reported (default 3).
	Reps int
}

func (o Options) scale() int {
	if o.Scale < 1 {
		return 1
	}
	return o.Scale
}

func (o Options) reps() int {
	if o.Reps < 1 {
		return 3
	}
	return o.Reps
}

// Figure5 reproduces the paper's Figure 5: end-to-end relative execution
// time of the Rodinia benchmarks plus Inception v3 on the NCS, normalized
// to native. The paper reports ≤1.16x with mean ≈1.08x for OpenCL and
// ≈1.01x for the NCS.
func Figure5(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E1/Figure5",
		Title:  "End-to-end relative execution time (AvA / native)",
		Header: []string{"benchmark", "native", "ava", "relative"},
	}
	var sum, n float64
	for _, w := range rodinia.All() {
		native, err := timeIt(opts.reps(), func() error {
			c := cl.NewNative(gpuSilo(0))
			_, err := w.Run(c, opts.scale())
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s native: %w", w.Name, err)
		}
		remote, err := timeIt(opts.reps(), func() error {
			stack := clStack(gpuSilo(0), false)
			defer stack.Close()
			c, err := clRemote(stack, 1)
			if err != nil {
				return err
			}
			_, err = w.Run(c, opts.scale())
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s remote: %w", w.Name, err)
		}
		rel := ratio(remote, native)
		sum += rel
		n++
		t.Add(w.Name, ms(native), ms(remote), fmt.Sprintf("%.2fx", rel))
	}

	// Inception on the simulated NCS.
	inferences := 4 * opts.scale()
	native, err := timeIt(opts.reps(), func() error {
		_, err := mvnc.RunInception(mvnc.NewNative(mvnc.NewSilo(mvnc.Config{})), inferences)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("inception native: %w", err)
	}
	remote, err := timeIt(opts.reps(), func() error {
		stack, _ := mvncStack()
		defer stack.Close()
		lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "ncs-vm"})
		if err != nil {
			return err
		}
		_, err = mvnc.RunInception(mvnc.NewRemote(lib), inferences)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("inception remote: %w", err)
	}
	rel := ratio(remote, native)
	t.Add("inception(ncs)", ms(native), ms(remote), fmt.Sprintf("%.2fx", rel))

	t.Note("Rodinia mean overhead: %.1f%% (paper: ~8%%, max 16%%); inception: %.1f%% (paper: ~1%%)",
		(sum/n-1)*100, (rel-1)*100)
	return t, nil
}

// AsyncAblation reproduces the §5 optimization experiment: asynchronous
// forwarding of annotated calls vs the unoptimized (fully synchronous)
// specification. The paper reports an 8.6% speedup from the optimization
// and ~5% residual overhead vs native on the affected workloads.
func AsyncAblation(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E2/AsyncAblation",
		Title:  "Asynchronous forwarding ablation (call-intensive workloads)",
		Header: []string{"benchmark", "native", "ava-sync-only", "ava-async", "speedup", "vs-native"},
	}
	// The call-intensive workloads are where async forwarding matters.
	names := []string{"gaussian", "pathfinder", "nw", "bfs"}
	for _, name := range names {
		w, ok := rodinia.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown workload %s", name)
		}
		native, err := timeIt(opts.reps(), func() error {
			_, err := w.Run(cl.NewNative(gpuSilo(0)), opts.scale())
			return err
		})
		if err != nil {
			return nil, err
		}
		syncOnly, err := timeIt(opts.reps(), func() error {
			stack := clStack(gpuSilo(0), false)
			defer stack.Close()
			c, err := clRemote(stack, 1, guest.WithForceSync())
			if err != nil {
				return err
			}
			_, err = w.Run(c, opts.scale())
			return err
		})
		if err != nil {
			return nil, err
		}
		async, err := timeIt(opts.reps(), func() error {
			stack := clStack(gpuSilo(0), false)
			defer stack.Close()
			c, err := clRemote(stack, 1)
			if err != nil {
				return err
			}
			_, err = w.Run(c, opts.scale())
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add(name, ms(native), ms(syncOnly), ms(async),
			fmt.Sprintf("%.1f%%", (ratio(syncOnly, async)-1)*100),
			fmt.Sprintf("%.1f%%", (ratio(async, native)-1)*100))
	}
	t.Note("speedup = sync-only/async - 1 (paper: 8.6%%); vs-native = async/native - 1 (paper: ~5%%)")
	return t, nil
}

// FullVirtBaseline reproduces the §2 motivation comparison: trap-based
// full virtualization vs AvA's API remoting vs native, on a vector-add
// microworkload. The paper cites orders-of-magnitude losses for trapping
// every MMIO/BAR access.
func FullVirtBaseline(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E3/FullVirt",
		Title:  "Full virtualization (trap-and-emulate) vs AvA vs native, vector add",
		Header: []string{"elements", "native", "ava", "fullvirt(modeled)", "ava-slowdown", "fullvirt-slowdown"},
	}
	for _, n := range []int{1 << 10, 1 << 13, 1 << 16} {
		n := n
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(i)
			b[i] = float32(2 * i)
		}

		native, err := timeIt(opts.reps(), func() error {
			return vectorAdd(cl.NewNative(gpuSilo(0)), a, b)
		})
		if err != nil {
			return nil, err
		}
		remote, err := timeIt(opts.reps(), func() error {
			stack := clStack(gpuSilo(0), false)
			defer stack.Close()
			c, err := clRemote(stack, 1)
			if err != nil {
				return err
			}
			return vectorAdd(c, a, b)
		})
		if err != nil {
			return nil, err
		}

		// Full virtualization: real execution plus the modeled per-trap
		// vm-exit cost (1.5µs); the guest pays 3 traps per element.
		dev := fullvirt.New(fullvirt.Config{})
		start := time.Now()
		if _, _, err := dev.GuestVectorAdd(a, b); err != nil {
			return nil, err
		}
		fv := time.Since(start) + dev.ModeledTrapTime()

		t.Add(fmt.Sprintf("%d", n), ms(native), ms(remote), ms(fv),
			fmt.Sprintf("%.2fx", ratio(remote, native)),
			fmt.Sprintf("%.0fx", ratio(fv, native)))
	}
	t.Note("fullvirt = measured emulation + traps x 1.5us vm-exit cost (paper: 'orders-of-magnitude performance losses')")
	return t, nil
}

// vectorAdd is the shared micro-workload.
func vectorAdd(c cl.Client, a, b []float32) error {
	n := len(a)
	ps, err := c.PlatformIDs()
	if err != nil {
		return err
	}
	ds, err := c.DeviceIDs(ps[0], cl.DeviceTypeGPU)
	if err != nil {
		return err
	}
	ctx, err := c.CreateContext(ds)
	if err != nil {
		return err
	}
	defer c.ReleaseContext(ctx)
	q, err := c.CreateQueue(ctx, ds[0], 0)
	if err != nil {
		return err
	}
	defer c.ReleaseQueue(q)
	mk := func() (cl.Ref, error) { return c.CreateBuffer(ctx, 1, uint64(4*n)) }
	ba, err := mk()
	if err != nil {
		return err
	}
	bb, err := mk()
	if err != nil {
		return err
	}
	bo, err := mk()
	if err != nil {
		return err
	}
	if err := c.EnqueueWrite(q, ba, false, 0, f32bytes(a)); err != nil {
		return err
	}
	if err := c.EnqueueWrite(q, bb, false, 0, f32bytes(b)); err != nil {
		return err
	}
	prog, err := c.CreateProgram(ctx, "vector_add")
	if err != nil {
		return err
	}
	if err := c.BuildProgram(prog, ""); err != nil {
		return err
	}
	k, err := c.CreateKernel(prog, "vector_add")
	if err != nil {
		return err
	}
	c.SetKernelArgBuffer(k, 0, ba)
	c.SetKernelArgBuffer(k, 1, bb)
	c.SetKernelArgBuffer(k, 2, bo)
	c.SetKernelArgScalar(k, 3, cl.ArgU32(uint32(n)))
	if err := c.EnqueueNDRange(q, k, []uint64{uint64(n)}, []uint64{256}); err != nil {
		return err
	}
	out := make([]byte, 4*n)
	if err := c.EnqueueRead(q, bo, true, 0, out); err != nil {
		return err
	}
	return c.DeferredError()
}

// Sharing reproduces the §4.3 resource-management claims: the router's
// schedulers arbitrate contending VMs at call granularity. Two VMs issue
// identical kernel streams; the table compares their device-time shares
// under FIFO and fair scheduling, and shows rate limiting throttling a VM.
func Sharing(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E4/Sharing",
		Title:  "Cross-VM sharing policies at the router",
		Header: []string{"policy", "vm1-launches", "vm2-launches", "vm1-stall", "vm2-stall"},
	}

	run := func(sched hv.Scheduler) ([2]uint64, [2]time.Duration, error) {
		silo := gpuSilo(0)
		stack := clStack(silo, false, ava.WithScheduler(sched))
		defer stack.Close()
		c1, err := clRemote(stack, 1)
		if err != nil {
			return [2]uint64{}, [2]time.Duration{}, err
		}
		c2, err := clRemote(stack, 2)
		if err != nil {
			return [2]uint64{}, [2]time.Duration{}, err
		}
		done := make(chan error, 2)
		work := func(c cl.Client) {
			w, _ := rodinia.ByName("pathfinder")
			_, err := w.Run(c, opts.scale())
			done <- err
		}
		go work(c1)
		go work(c2)
		for i := 0; i < 2; i++ {
			if err := <-done; err != nil {
				return [2]uint64{}, [2]time.Duration{}, err
			}
		}
		s1, _ := stack.Router.Stats(1)
		s2, _ := stack.Router.Stats(2)
		return [2]uint64{s1.Forwarded, s2.Forwarded}, [2]time.Duration{s1.Stall, s2.Stall}, nil
	}

	// FIFO and fair share (equal weights; examples/multitenant shows
	// weighted shares).
	fwd, stall, err := run(hv.NewFIFOScheduler())
	if err != nil {
		return nil, err
	}
	t.Add("fifo", fmt.Sprint(fwd[0]), fmt.Sprint(fwd[1]), stall[0].Round(time.Microsecond).String(), stall[1].Round(time.Microsecond).String())

	fwd, stall, err = run(hv.NewFairScheduler(10 * time.Millisecond))
	if err != nil {
		return nil, err
	}
	t.Add("fair-share", fmt.Sprint(fwd[0]), fmt.Sprint(fwd[1]), stall[0].Round(time.Microsecond).String(), stall[1].Round(time.Microsecond).String())

	// Rate limiting: vm2 capped hard; its stall time dominates.
	{
		silo := gpuSilo(0)
		stack := clStack(silo, false)
		lib1, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "vm1"})
		if err != nil {
			return nil, err
		}
		lib2, err := stack.AttachVM(ava.VMConfig{ID: 2, Name: "vm2", CallsPerSec: 2000, CallBurst: 16})
		if err != nil {
			return nil, err
		}
		done := make(chan error, 2)
		work := func(lib *ava.GuestLib) {
			w, _ := rodinia.ByName("pathfinder")
			_, err := w.Run(cl.NewRemote(lib), opts.scale())
			done <- err
		}
		go work(lib1)
		go work(lib2)
		for i := 0; i < 2; i++ {
			if err := <-done; err != nil {
				stack.Close()
				return nil, err
			}
		}
		s1, _ := stack.Router.Stats(1)
		s2, _ := stack.Router.Stats(2)
		t.Add("rate-limit(vm2)", fmt.Sprint(s1.Forwarded), fmt.Sprint(s2.Forwarded),
			s1.Stall.Round(time.Microsecond).String(), s2.Stall.Round(time.Microsecond).String())
		stack.Close()
	}
	t.Note("equal fair-share usage with bounded lead; rate-limited VM accumulates stall while the other runs free")
	return t, nil
}

// Swap reproduces the §4.3 memory-oversubscription claim: buffer-object-
// granularity swapping lets aggregate allocations exceed device memory
// without exposing OOM to guests.
func Swap(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E5/Swap",
		Title:  "Device memory oversubscription via buffer-granularity swapping",
		Header: []string{"oversubscription", "buffers", "evictions", "runtime", "result"},
	}
	const devMem = 8 << 20
	const bufSize = 1 << 20
	for _, factor := range []int{1, 2, 4} {
		count := factor * devMem / bufSize
		silo := gpuSilo(devMem)
		stack, mgr := clStackSwap(silo)
		c, err := clRemote(stack, 1)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		ok, err := swapWorkload(c, count, bufSize)
		elapsed := time.Since(start)
		evictions := mgr.Stats().Evictions
		stack.Close()
		if err != nil {
			return nil, err
		}
		res := "all buffers intact"
		if !ok {
			res = "CORRUPTED"
		}
		t.Add(fmt.Sprintf("%dx", factor), fmt.Sprint(count), fmt.Sprint(evictions), ms(elapsed), res)
	}
	t.Note("without the swap manager the 2x and 4x rows fail with CL_MEM_OBJECT_ALLOCATION_FAILURE")
	return t, nil
}

func swapWorkload(c cl.Client, count, bufSize int) (bool, error) {
	ps, err := c.PlatformIDs()
	if err != nil {
		return false, err
	}
	ds, _ := c.DeviceIDs(ps[0], cl.DeviceTypeGPU)
	ctx, err := c.CreateContext(ds)
	if err != nil {
		return false, err
	}
	q, _ := c.CreateQueue(ctx, ds[0], 0)
	bufs := make([]cl.Ref, count)
	for i := range bufs {
		b, err := c.CreateBuffer(ctx, 1, uint64(bufSize))
		if err != nil {
			return false, err
		}
		bufs[i] = b
		pat := make([]byte, bufSize)
		for j := range pat {
			pat[j] = byte(i)
		}
		if err := c.EnqueueWrite(q, b, true, 0, pat); err != nil {
			return false, err
		}
	}
	got := make([]byte, bufSize)
	for i := range bufs {
		if err := c.EnqueueRead(q, bufs[i], true, 0, got); err != nil {
			return false, err
		}
		for _, x := range got {
			if x != byte(i) {
				return false, nil
			}
		}
	}
	return true, nil
}

// Migration reproduces the §4.3 migration claim: record/replay plus
// synthesized device copies moves a running guest between API servers.
func Migration(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E6/Migration",
		Title:  "VM migration by record/replay + device buffer copies",
		Header: []string{"buffers", "state", "capture", "snapshot-size", "restore", "verified"},
	}
	for _, bufCount := range []int{4, 16, 64} {
		row, err := migrationRun(bufCount, 256<<10)
		if err != nil {
			return nil, err
		}
		t.Add(row...)
	}
	t.Note("verified = post-restore readback of every buffer matches pre-migration contents")
	return t, nil
}

func migrationRun(bufCount, bufSize int) ([]string, error) {
	srcSilo := gpuSilo(0)
	src := clStack(srcSilo, false, ava.WithRecording())
	defer src.Close()
	c, err := clRemote(src, 3)
	if err != nil {
		return nil, err
	}
	ps, _ := c.PlatformIDs()
	ds, _ := c.DeviceIDs(ps[0], cl.DeviceTypeGPU)
	ctx, err := c.CreateContext(ds)
	if err != nil {
		return nil, err
	}
	q, _ := c.CreateQueue(ctx, ds[0], 0)
	bufs := make([]cl.Ref, bufCount)
	for i := range bufs {
		bufs[i], err = c.CreateBuffer(ctx, 1, uint64(bufSize))
		if err != nil {
			return nil, err
		}
		pat := make([]byte, bufSize)
		for j := range pat {
			pat[j] = byte(i * 13)
		}
		if err := c.EnqueueWrite(q, bufs[i], true, 0, pat); err != nil {
			return nil, err
		}
	}

	srcCtx := src.Server.Context(3, "vm3")
	start := time.Now()
	snap, err := migrate.Capture(srcCtx, cl.MigrationAdapter{Silo: srcSilo})
	if err != nil {
		return nil, err
	}
	wire, err := snap.Encode()
	if err != nil {
		return nil, err
	}
	captureTime := time.Since(start)

	dstSilo := gpuSilo(0)
	dst := clStack(dstSilo, false)
	defer dst.Close()
	dstCtx := dst.Server.Context(3, "vm3")
	start = time.Now()
	snap2, err := migrate.Decode(wire)
	if err != nil {
		return nil, err
	}
	if err := migrate.Restore(snap2, dst.Server, dstCtx, cl.MigrationAdapter{Silo: dstSilo}); err != nil {
		return nil, err
	}
	restoreTime := time.Since(start)

	c2, err := clRemote(dst, 3)
	if err != nil {
		return nil, err
	}
	verified := true
	got := make([]byte, bufSize)
	for i := range bufs {
		if err := c2.EnqueueRead(q, bufs[i], true, 0, got); err != nil {
			return nil, err
		}
		for _, x := range got {
			if x != byte(i*13) {
				verified = false
			}
		}
	}
	state := fmt.Sprintf("%dMB", bufCount*bufSize>>20)
	v := "yes"
	if !verified {
		v = "NO"
	}
	return []string{
		fmt.Sprint(bufCount), state, ms(captureTime),
		fmt.Sprintf("%.1fMB", float64(len(wire))/(1<<20)), ms(restoreTime), v,
	}, nil
}

// Transports reproduces the pluggable-transport claim (§1, §4.1): the same
// stack runs over hypercall-style channels, SVGA-style shared-memory rings,
// and TCP for disaggregated accelerators.
func Transports(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E8/Transports",
		Title:  "Pluggable transports (vector add, 64K elements)",
		Header: []string{"transport", "native", "remoted", "relative"},
	}
	n := 1 << 16
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = float32(i)
	}
	native, err := timeIt(opts.reps(), func() error {
		return vectorAdd(cl.NewNative(gpuSilo(0)), a, b)
	})
	if err != nil {
		return nil, err
	}
	for _, tr := range []struct {
		name string
		kind ava.TransportKind
	}{
		{"inproc", ava.TransportInProc},
		{"shm-ring", ava.TransportRing},
	} {
		remote, err := timeIt(opts.reps(), func() error {
			stack := clStack(gpuSilo(0), false, ava.WithTransport(tr.kind))
			defer stack.Close()
			c, err := clRemote(stack, 1)
			if err != nil {
				return err
			}
			return vectorAdd(c, a, b)
		})
		if err != nil {
			return nil, err
		}
		t.Add(tr.name, ms(native), ms(remote), fmt.Sprintf("%.2fx", ratio(remote, native)))
	}
	// TCP: disaggregated API server over a real socket.
	remote, err := timeIt(opts.reps(), func() error {
		return tcpVectorAdd(a, b)
	})
	if err != nil {
		return nil, err
	}
	t.Add("tcp(disagg)", ms(native), ms(remote), fmt.Sprintf("%.2fx", ratio(remote, native)))
	return t, nil
}
