package bench

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ava"
	"ava/internal/averr"
	"ava/internal/cava"
	"ava/internal/guest"
	"ava/internal/hv"
	"ava/internal/server"
)

// overloadSpec is the minimal API for the overload-control experiment: one
// synchronous call with a fixed modeled device cost.
const overloadSpec = `
api "overload";
const OK = 0;
type st = int32_t { success(OK); };
st ping(uint32_t x);
`

const (
	overloadDeviceTime = 3 * time.Millisecond  // handler cost per call
	overloadDeadline   = 50 * time.Millisecond // low-priority call budget
	overloadLoVMs      = 5                     // flooding VMs
	overloadLoThreads  = 2                     // flooders per VM
)

// overloadResult is one full run of the E11 scenario; TestOverloadShedding
// enforces the acceptance bounds on it directly.
type overloadResult struct {
	soloP50, soloP99 time.Duration // high-priority alone
	contP50, contP99 time.Duration // high-priority under low-priority flood

	loAttempts, loOK, loShed, loDeadline, loOther int
	shedP50, shedP99                              time.Duration // latency of StatusOverload denials

	hiShedDenied uint64 // must stay 0: high band is never sheddable
	shedDenied   uint64 // router-side total across the flooding VMs
}

func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// overloadRun measures one solo + one contended phase. calls is the number
// of high-priority probes per phase.
func overloadRun(calls int) (*overloadResult, error) {
	desc := cava.MustCompile(overloadSpec)
	reg := server.NewRegistry(desc)
	reg.MustRegister("ping", func(inv *server.Invocation) error {
		time.Sleep(overloadDeviceTime)
		inv.SetStatus(0)
		return nil
	})
	stack := ava.NewStack(desc, reg,
		ava.WithScheduler(hv.NewPriorityScheduler(nil, 0)),
		ava.WithShedding(hv.ShedConfig{
			MaxQueueDepth:  64,
			MaxRecentStall: 2 * time.Millisecond,
		}))
	defer stack.Close()

	// The probe VM runs in the top priority band with no rate limit.
	hi, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "hi"}, guest.WithPriority(192))
	if err != nil {
		return nil, err
	}
	// The flooders run in band 0 under a tight per-VM rate limit, so their
	// pressure shows up as rate-limit stall the shedder reacts to.
	los := make([]*guest.Lib, overloadLoVMs)
	for i := range los {
		los[i], err = stack.AttachVM(ava.VMConfig{
			ID: uint32(2 + i), Name: fmt.Sprintf("lo%d", i),
			CallsPerSec: 100, CallBurst: 2,
		})
		if err != nil {
			return nil, err
		}
	}

	probe := func(n int) ([]time.Duration, error) {
		lats := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			t0 := time.Now()
			if _, err := hi.Call("ping", uint32(i)); err != nil {
				return nil, fmt.Errorf("high-priority call: %w", err)
			}
			lats = append(lats, time.Since(t0))
		}
		return lats, nil
	}

	res := &overloadResult{}

	// Phase 1: uncontended baseline.
	solo, err := probe(calls)
	if err != nil {
		return nil, err
	}
	res.soloP50, res.soloP99 = percentile(solo, 0.50), percentile(solo, 0.99)

	// Phase 2: saturate with low-priority sync floods, then probe again.
	var (
		mu       sync.Mutex
		shedLats []time.Duration
		stop     = make(chan struct{})
		wg       sync.WaitGroup
	)
	for _, lo := range los {
		for g := 0; g < overloadLoThreads; g++ {
			wg.Add(1)
			go func(lib *guest.Lib) {
				defer wg.Done()
				var n uint32
				for {
					select {
					case <-stop:
						return
					default:
					}
					n++
					t0 := time.Now()
					_, err := lib.CallWith(guest.CallOptions{Timeout: overloadDeadline}, "ping", n)
					lat := time.Since(t0)
					mu.Lock()
					res.loAttempts++
					switch {
					case err == nil:
						res.loOK++
					case errors.Is(err, averr.ErrOverloaded):
						res.loShed++
						shedLats = append(shedLats, lat)
					case errors.Is(err, averr.ErrDeadlineExceeded):
						res.loDeadline++
					default:
						res.loOther++
					}
					mu.Unlock()
					if errors.Is(err, averr.ErrOverloaded) {
						// StatusOverload means "back off and retry": honoring
						// it is the point of admission-time denial (and keeps
						// the flood from degenerating into a CPU-spin that
						// measures the Go scheduler instead of the router).
						time.Sleep(500 * time.Microsecond)
					}
				}
			}(lo)
		}
	}
	time.Sleep(50 * time.Millisecond) // let the flood build pressure
	cont, err := probe(calls)
	close(stop)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	res.contP50, res.contP99 = percentile(cont, 0.50), percentile(cont, 0.99)
	res.shedP50, res.shedP99 = percentile(shedLats, 0.50), percentile(shedLats, 0.99)

	hiStats, err := stack.Router.Stats(1)
	if err != nil {
		return nil, err
	}
	res.hiShedDenied = hiStats.ShedDenied
	for i := range los {
		st, err := stack.Router.Stats(uint32(2 + i))
		if err != nil {
			return nil, err
		}
		res.shedDenied += st.ShedDenied
	}
	return res, nil
}

// Overload (E11) demonstrates admission-time overload control: one
// high-priority VM probes the stack while low-priority VMs saturate the
// router. The per-priority bucket hierarchy plus the load shedder keep the
// high-priority tail bounded, and excess low-priority calls are denied
// with StatusOverload in well under their deadline instead of timing out.
func Overload(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E11/Overload",
		Title:  "Router overload control: shed low-priority, protect high-priority",
		Header: []string{"phase", "hi p50", "hi p99", "p99 vs solo", "lo ok", "lo shed", "lo deadline", "shed p50", "shed p99"},
	}
	calls := 150 * opts.scale()
	var best *overloadResult
	for r := 0; r < opts.reps(); r++ {
		res, err := overloadRun(calls)
		if err != nil {
			return nil, err
		}
		if best == nil || res.contP99 < best.contP99 {
			best = res
		}
	}
	t.Add("solo", ms(best.soloP50), ms(best.soloP99), "1.00x", "-", "-", "-", "-", "-")
	t.Add("contended",
		ms(best.contP50), ms(best.contP99),
		fmt.Sprintf("%.2fx", float64(best.contP99)/float64(best.soloP99)),
		fmt.Sprint(best.loOK), fmt.Sprint(best.loShed), fmt.Sprint(best.loDeadline),
		ms(best.shedP50), ms(best.shedP99))
	t.AddMetric("hi-solo-p50", "ns", float64(best.soloP50))
	t.AddMetric("hi-solo-p99", "ns", float64(best.soloP99))
	t.AddMetric("hi-contended-p50", "ns", float64(best.contP50))
	t.AddMetric("hi-contended-p99", "ns", float64(best.contP99))
	t.AddMetric("shed-p50", "ns", float64(best.shedP50))
	t.AddMetric("shed-p99", "ns", float64(best.shedP99))
	t.Note("%d low-priority VMs x %d threads flood sync calls (%.0fms deadline) against 100/s per-VM buckets; shed thresholds: queue depth 64 or 2ms recent stall",
		overloadLoVMs, overloadLoThreads, overloadDeadline.Seconds()*1e3)
	t.Note("shed denials carry StatusOverload (ava.ErrOverloaded) at admission time — no timeout-based discovery; high band is never shed (hi ShedDenied=%d)",
		best.hiShedDenied)
	return t, nil
}
