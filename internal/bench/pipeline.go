package bench

import (
	"fmt"
	"sync"
	"time"

	"ava"
	"ava/internal/cl"
	"ava/internal/devsim"
	"ava/internal/guest"
	"ava/internal/hv"
	"ava/internal/server"
	"ava/internal/transport"
)

// pipelineSilo builds the GPU for the pipelining sweep. Device costs are
// set well above the clock's busy-spin threshold so a blocking transfer
// genuinely parks its caller, and the compute-unit/DMA model admits as many
// concurrent operations as the sweep issues — the benchmark then measures
// the remoting stack's ability to keep independent calls in flight, not
// the simulated device's occupancy limit.
func pipelineSilo() *cl.Silo {
	return cl.NewSilo(cl.Config{
		Devices: []devsim.Config{{
			Name:         "pipeline-gpu",
			MemoryBytes:  2 << 30,
			ComputeUnits: 16,
			// No KernelOverhead/DMABandwidth refinement: one flat latency
			// per transfer keeps per-call device time identical across
			// goroutine counts.
			DMALatency: 400 * time.Microsecond,
		}},
	})
}

// pipelineClient builds a remoted OpenCL client over the named transport.
// InProc and Ring go through the standard stack; TCP mirrors the
// disaggregated wiring of tcpVectorAdd (guest → router locally, router →
// API server over a socket).
func pipelineClient(kind string) (*cl.RemoteClient, func(), error) {
	switch kind {
	case "inproc", "shm-ring":
		tr := ava.TransportInProc
		if kind == "shm-ring" {
			tr = ava.TransportRing
		}
		stack := clStack(pipelineSilo(), false, ava.WithTransport(tr))
		c, err := clRemote(stack, 1)
		if err != nil {
			stack.Close()
			return nil, nil, err
		}
		return c, func() { stack.Close() }, nil
	case "tcp":
		desc := cl.Descriptor()
		reg := server.NewRegistry(desc)
		cl.BindServer(reg, pipelineSilo())
		srv := server.New(reg)
		l, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		go func() {
			ep, err := l.Accept()
			if err != nil {
				return
			}
			srv.ServeVM(srv.Context(1, "pipeline-vm"), ep)
		}()
		router := hv.NewRouter(desc, nil, nil)
		if err := router.RegisterVM(hv.VMConfig{ID: 1, Name: "pipeline-vm"}); err != nil {
			l.Close()
			return nil, nil, err
		}
		guestEP, routerGuest := transport.NewInProc()
		routerServer, err := transport.Dial(l.Addr())
		if err != nil {
			l.Close()
			return nil, nil, err
		}
		go router.Attach(1, routerGuest, routerServer)
		lib := guest.New(desc, guestEP)
		return cl.NewRemote(lib), func() { guestEP.Close(); l.Close() }, nil
	default:
		return nil, nil, fmt.Errorf("bench: unknown pipeline transport %q", kind)
	}
}

// pipelineRun drives the given number of concurrent guest threads against
// one Lib, each issuing blocking transfers on its own command queue (= its
// own ordering domain), and returns the wall time for all of them.
func pipelineRun(c *cl.RemoteClient, goroutines, calls int) (time.Duration, error) {
	ps, err := c.PlatformIDs()
	if err != nil {
		return 0, err
	}
	ds, err := c.DeviceIDs(ps[0], cl.DeviceTypeAll)
	if err != nil {
		return 0, err
	}
	ctx, err := c.CreateContext(ds[:1])
	if err != nil {
		return 0, err
	}
	defer c.ReleaseContext(ctx)

	src := make([]byte, 4096)
	queues := make([]cl.Ref, goroutines)
	bufs := make([]cl.Ref, goroutines)
	for i := range queues {
		if queues[i], err = c.CreateQueue(ctx, ds[0], 0); err != nil {
			return 0, err
		}
		defer c.ReleaseQueue(queues[i])
		if bufs[i], err = c.CreateBuffer(ctx, 0, uint64(len(src))); err != nil {
			return 0, err
		}
		defer c.ReleaseBuffer(bufs[i])
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				if err := c.EnqueueWrite(queues[g], bufs[g], true, 0, src); err != nil {
					errs <- fmt.Errorf("goroutine %d call %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, err
	}
	return elapsed, nil
}

// Pipeline (E10) measures how synchronous-call throughput scales with the
// number of guest threads issuing calls on independent command queues. A
// serial remoting stack is pinned near 1x: every blocking call holds the
// channel until its reply returns. The pipelined stack (concurrent
// in-flight calls at the guest, per-domain dispatch workers at the server)
// should scale until the device model or a serial stack stage saturates.
func Pipeline(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E10/Pipeline",
		Title:  "Pipelined remoting: sync-call throughput vs guest threads",
		Header: []string{"transport", "threads", "calls", "time", "calls/s", "scaling"},
	}
	calls := 32 * opts.scale()
	for _, kind := range []string{"inproc", "shm-ring", "tcp"} {
		var base float64
		for _, n := range []int{1, 2, 4, 8} {
			// timeIt would fold stack setup into the measurement; time the
			// call section alone and keep the minimum across reps.
			var elapsed time.Duration
			for r := 0; r < opts.reps(); r++ {
				c, cleanup, err := pipelineClient(kind)
				if err != nil {
					return nil, fmt.Errorf("%s/%d: %w", kind, n, err)
				}
				d, runErr := pipelineRun(c, n, calls)
				cleanup()
				if runErr != nil {
					return nil, fmt.Errorf("%s/%d: %w", kind, n, runErr)
				}
				if elapsed == 0 || d < elapsed {
					elapsed = d
				}
			}
			rate := float64(n*calls) / elapsed.Seconds()
			if n == 1 {
				base = rate
			}
			t.Add(kind, fmt.Sprint(n), fmt.Sprint(n*calls), ms(elapsed),
				fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.2fx", rate/base))
		}
	}
	t.Note("each thread owns a command queue (one ordering domain); every call is a blocking 4KB write costing 400us of modeled device time")
	return t, nil
}
