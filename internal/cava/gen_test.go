package cava

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const genSpec = `
api "edgecase";
handle obj;
const OK = 0;
type st = int32_t { success(OK); };

// Parameter names that collide with Go keywords and generator locals.
st tricky(uint32_t type, uint64_t func, int32_t map, double c, bool v, string range) {
  async;
}

void voidReturn(obj o, uint32_t x);

obj handleReturn(uint32_t kind, int32_t *errcode_ret) {
  parameter(errcode_ret) { out; element; }
  track(create);
}

uint64_t uintReturn(obj o);

st buffers(obj o, size_t n, const float *in_data, float *out_data,
           uint64_t *count, obj *made) {
  parameter(in_data) { in; buffer(n); }
  parameter(out_data) { out; buffer(n); }
  parameter(count) { out; element; }
  parameter(made) { out; element { allocates; } }
}
`

func TestGenerateEdgeCases(t *testing.T) {
	d := MustCompile(genSpec)
	src, stats, err := Generate(d, genSpec, GenOptions{Package: "edgecase"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Functions != 5 {
		t.Fatalf("stats = %+v", stats)
	}
	code := string(src)

	// Keyword parameters must be renamed, not emitted verbatim.
	for _, banned := range []string{"(type uint32", " func uint64", " map int32"} {
		if strings.Contains(code, banned) {
			t.Fatalf("generated code contains reserved name: %q", banned)
		}
	}
	// All four return shapes appear.
	for _, want := range []string{
		"func (c *Client) Tricky(",
		") error {",                 // void return
		") (marshal.Handle, error)", // handle return
		") (uint64, error)",         // uint64 return
		") (int32, error)",          // status return
		"func Register(reg *server.Registry, impl Implementation)",
	} {
		if !strings.Contains(code, want) {
			t.Fatalf("generated code missing %q", want)
		}
	}

	// The output must be syntactically valid Go.
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated code does not parse: %v", err)
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	d := MustCompile(genSpec)
	a, _, err := Generate(d, genSpec, GenOptions{Package: "p"})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(d, genSpec, GenOptions{Package: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("generation is not deterministic")
	}
}

func TestGenerateDefaultPackageName(t *testing.T) {
	d := MustCompile(`api "My-API 2"; void f(uint32_t x);`)
	src, _, err := Generate(d, "", GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "package myapi2") {
		t.Fatalf("package name not sanitized:\n%.200s", src)
	}
}
