// Package cava is the AvA stack generator.
//
// CAvA consumes a validated API specification and produces the API-specific
// components of the remoting stack. It has two outputs:
//
//   - A Descriptor: flat, index-addressed runtime metadata that drives the
//     generic guest stub engine, the hypervisor router's policy checks, and
//     the API server's dispatcher. This is the form the rest of the runtime
//     consumes.
//   - Generated Go source for typed guest bindings and server dispatch
//     scaffolding (gen.go), the analogue of the C code the paper's CAvA
//     emits for guest library, driver and API server.
package cava

import (
	"fmt"

	"ava/internal/marshal"
	"ava/internal/spec"
)

// ParamDesc is the compiled form of a parameter.
type ParamDesc struct {
	Name      string
	TypeName  string        // declared type name, for code generation
	Kind      spec.BaseKind // scalar kind, or element kind for pointers
	ElemSize  int           // bytes per element for buffers/elements
	Dir       spec.Direction
	IsPointer bool
	IsBuffer  bool
	IsElement bool
	Allocates bool
	Dealloc   bool
	SizeExpr  spec.Expr // element count (buffers only)
}

// In reports whether the parameter carries data guest→server.
func (p *ParamDesc) In() bool {
	if !p.IsPointer {
		return true
	}
	return p.Dir == spec.DirIn || p.Dir == spec.DirInOut
}

// Out reports whether the parameter carries data server→guest.
func (p *ParamDesc) Out() bool {
	return p.IsPointer && (p.Dir == spec.DirOut || p.Dir == spec.DirInOut)
}

// ResourceDesc is a compiled resource estimate.
type ResourceDesc struct {
	Resource string
	Amount   spec.Expr
}

// FuncDesc is the compiled form of one API function.
type FuncDesc struct {
	ID     uint32
	Name   string
	Params []ParamDesc

	RetKind    spec.BaseKind
	HasSuccess bool
	SuccessVal int64

	Sync         spec.SyncSpec
	CondParamIdx int // parameter index for conditional synchrony, else -1

	Resources []ResourceDesc
	Track     spec.TrackAnn
	TrackIdx  int // parameter index of the tracked object, else -1

	NumOuts int // count of out/inout parameters (Reply.Outs arity)

	// DomainIdx is the parameter index of the call's ordering domain — the
	// first non-pointer handle parameter (for OpenCL enqueues, the command
	// queue) — or -1 for handle-less calls, which share a single fallback
	// domain. The server's dispatcher preserves FIFO order within a domain
	// while executing independent domains concurrently.
	DomainIdx int
}

// AlwaysSync reports whether the call is forwarded synchronously for every
// argument vector.
func (f *FuncDesc) AlwaysSync() bool { return f.Sync.Mode == spec.SyncAlways }

// Descriptor is the compiled stack metadata for one API.
type Descriptor struct {
	API    *spec.API
	Name   string
	Funcs  []*FuncDesc
	byName map[string]*FuncDesc
}

// Compile lowers a validated API specification into a Descriptor.
func Compile(api *spec.API) (*Descriptor, error) {
	if err := spec.Validate(api); err != nil {
		return nil, err
	}
	d := &Descriptor{
		API:    api,
		Name:   api.Name,
		byName: make(map[string]*FuncDesc, len(api.Funcs)),
	}
	for i, fn := range api.Funcs {
		fd, err := compileFunc(api, fn, uint32(i))
		if err != nil {
			return nil, err
		}
		d.Funcs = append(d.Funcs, fd)
		d.byName[fd.Name] = fd
	}
	return d, nil
}

// MustCompile parses and compiles src, panicking on error. For specs
// shipped inside the binary (the OpenCL and MVNC stacks), where a failure
// is a build bug.
func MustCompile(src string) *Descriptor {
	api, err := spec.Parse(src)
	if err != nil {
		panic(fmt.Sprintf("cava: shipped spec does not parse: %v", err))
	}
	d, err := Compile(api)
	if err != nil {
		panic(fmt.Sprintf("cava: shipped spec does not compile: %v", err))
	}
	return d
}

func compileFunc(api *spec.API, fn *spec.Func, id uint32) (*FuncDesc, error) {
	fd := &FuncDesc{
		ID:           id,
		Name:         fn.Name,
		Sync:         fn.Sync,
		Track:        fn.Track,
		CondParamIdx: -1,
		TrackIdx:     -1,
		DomainIdx:    -1,
	}

	rt, err := api.Resolve(fn.Ret.Name)
	if err != nil {
		return nil, fmt.Errorf("cava: %s: %v", fn.Name, err)
	}
	fd.RetKind = rt.Kind
	if v, ok := api.SuccessValue(fn); ok {
		fd.HasSuccess = true
		fd.SuccessVal = v
	}

	for _, prm := range fn.Params {
		pd, err := compileParam(api, prm)
		if err != nil {
			return nil, fmt.Errorf("cava: %s(%s): %v", fn.Name, prm.Name, err)
		}
		if pd.Out() {
			fd.NumOuts++
		}
		if fd.DomainIdx < 0 && !pd.IsPointer && pd.Kind == spec.KindHandle {
			fd.DomainIdx = len(fd.Params)
		}
		fd.Params = append(fd.Params, pd)
	}

	if fn.Sync.Mode == spec.SyncConditional {
		fd.CondParamIdx = fn.ParamIndex(fn.Sync.CondParam)
		if fd.CondParamIdx < 0 {
			return nil, fmt.Errorf("cava: %s: missing sync condition parameter", fn.Name)
		}
	}
	for _, res := range fn.Resources {
		fd.Resources = append(fd.Resources, ResourceDesc{Resource: res.Resource, Amount: res.Amount})
	}
	if fn.Track.Kind != spec.TrackNone && fn.Track.Param != "" {
		fd.TrackIdx = fn.ParamIndex(fn.Track.Param)
	}
	return fd, nil
}

func compileParam(api *spec.API, prm *spec.Param) (ParamDesc, error) {
	rt, err := api.Resolve(prm.Type.Name)
	if err != nil {
		return ParamDesc{}, err
	}
	pd := ParamDesc{
		Name:      prm.Name,
		TypeName:  prm.Type.Name,
		Kind:      rt.Kind,
		Dir:       prm.Dir,
		IsPointer: prm.Type.Stars > 0,
		IsBuffer:  prm.IsBuffer,
		IsElement: prm.IsElement,
		Allocates: prm.Allocates,
		Dealloc:   prm.Deallocates,
		SizeExpr:  prm.SizeExpr,
	}
	if pd.IsPointer {
		es, err := api.ElemSize(prm.Type.Name)
		if err != nil {
			return ParamDesc{}, err
		}
		pd.ElemSize = es
		if pd.Dir == spec.DirDefault {
			// Validation guarantees pointer params are annotated; const
			// pointers default to in.
			pd.Dir = spec.DirIn
		}
		// `const char*` without buffer/element is a string value.
		if rt.Kind == spec.KindString || (prm.Type.Name == "char" && !pd.IsBuffer && !pd.IsElement) {
			pd.Kind = spec.KindString
			pd.IsPointer = false
			pd.IsBuffer = false
		}
	} else if rt.Kind == spec.KindString {
		pd.Kind = spec.KindString
	}
	return pd, nil
}

// Lookup returns the descriptor for a function name.
func (d *Descriptor) Lookup(name string) (*FuncDesc, bool) {
	fd, ok := d.byName[name]
	return fd, ok
}

// ByID returns the descriptor for a function index.
func (d *Descriptor) ByID(id uint32) (*FuncDesc, bool) {
	if int(id) >= len(d.Funcs) {
		return nil, false
	}
	return d.Funcs[id], true
}

// argScalar reads the scalar value of parameter i from an argument vector
// without building an environment map (hot path).
func (f *FuncDesc) argScalar(args []marshal.Value, i int) (int64, bool) {
	if i < 0 || i >= len(args) || i >= len(f.Params) || f.Params[i].IsPointer {
		return 0, false
	}
	switch v := args[i]; v.Kind {
	case marshal.KindInt:
		return v.Int, true
	case marshal.KindUint, marshal.KindHandle:
		return int64(v.Uint), true
	case marshal.KindBool:
		if v.Bool {
			return 1, true
		}
		return 0, true
	case marshal.KindFloat:
		return int64(v.Float), true
	}
	return 0, false
}

// argLookup adapts an argument vector to the expression evaluator's
// identifier resolver.
func (f *FuncDesc) argLookup(args []marshal.Value) func(string) (int64, bool) {
	return func(name string) (int64, bool) {
		return f.argScalar(args, f.paramIndex(name))
	}
}

func (f *FuncDesc) paramIndex(name string) int {
	for i := range f.Params {
		if f.Params[i].Name == name {
			return i
		}
	}
	return -1
}

// Env builds the expression-evaluation environment from a call's scalar
// arguments; buffer sizes and resource estimates are expressions over these.
func (f *FuncDesc) Env(args []marshal.Value) spec.Env {
	env := make(spec.Env, len(args))
	for i, pd := range f.Params {
		if i >= len(args) || pd.IsPointer {
			continue
		}
		v := args[i]
		switch v.Kind {
		case marshal.KindInt:
			env[pd.Name] = v.Int
		case marshal.KindUint, marshal.KindHandle:
			env[pd.Name] = int64(v.Uint)
		case marshal.KindBool:
			if v.Bool {
				env[pd.Name] = 1
			} else {
				env[pd.Name] = 0
			}
		case marshal.KindFloat:
			env[pd.Name] = int64(v.Float)
		}
	}
	return env
}

// BufferBytes computes the byte length of the buffer parameter at index i
// for the given environment.
func (f *FuncDesc) BufferBytes(i int, api *spec.API, env spec.Env) (int, error) {
	return f.bufferBytes(i, api, func(name string) (int64, bool) {
		v, ok := env[name]
		return v, ok
	})
}

// BufferBytesArgs is BufferBytes resolving identifiers directly from the
// argument vector (hot path; no environment map).
func (f *FuncDesc) BufferBytesArgs(i int, api *spec.API, args []marshal.Value) (int, error) {
	return f.bufferBytes(i, api, f.argLookup(args))
}

func (f *FuncDesc) bufferBytes(i int, api *spec.API, lookup func(string) (int64, bool)) (int, error) {
	pd := &f.Params[i]
	if !pd.IsBuffer {
		if pd.IsElement {
			return pd.ElemSize, nil
		}
		return 0, fmt.Errorf("cava: %s(%s) is not a buffer", f.Name, pd.Name)
	}
	n, err := spec.EvalExprWith(pd.SizeExpr, api, lookup)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("cava: %s(%s): negative element count %d", f.Name, pd.Name, n)
	}
	return int(n) * pd.ElemSize, nil
}

// IsSync decides the forwarding mode for a concrete argument vector,
// implementing Figure 4's `if (blocking_read == CL_TRUE) sync; else async;`.
func (f *FuncDesc) IsSync(api *spec.API, args []marshal.Value) (bool, error) {
	switch f.Sync.Mode {
	case spec.SyncAlways:
		return true, nil
	case spec.AsyncAlways:
		return false, nil
	}
	got, ok := f.argScalar(args, f.CondParamIdx)
	if !ok {
		return true, fmt.Errorf("cava: %s: malformed sync condition", f.Name)
	}
	want, err := spec.EvalExprWith(f.Sync.CondValue, api, f.argLookup(args))
	if err != nil {
		return true, err
	}
	eq := got == want
	if f.Sync.Negate {
		return !eq, nil
	}
	return eq, nil
}

// Domain returns the call's ordering-domain key for an argument vector:
// the value of the first handle parameter, or 0 — the shared fallback
// domain — for handle-less functions and null handles.
func (f *FuncDesc) Domain(args []marshal.Value) uint64 {
	if f.DomainIdx < 0 || f.DomainIdx >= len(args) {
		return 0
	}
	if v := args[f.DomainIdx]; v.Kind == marshal.KindHandle {
		return v.Uint
	}
	return 0
}

// EstimateResources evaluates every resource annotation for a call.
// Unknown estimates evaluate to 0 rather than failing the call: scheduling
// uses approximations (§4.3), and a broken estimate must not break the API.
func (f *FuncDesc) EstimateResources(api *spec.API, args []marshal.Value) map[string]int64 {
	if len(f.Resources) == 0 {
		return nil
	}
	lookup := f.argLookup(args)
	out := make(map[string]int64, len(f.Resources))
	for _, r := range f.Resources {
		v, err := spec.EvalExprWith(r.Amount, api, lookup)
		if err != nil {
			v = 0
		}
		out[r.Resource] += v
	}
	return out
}
