package cava

import (
	"strings"
	"testing"

	"ava/internal/marshal"
	"ava/internal/spec"
)

const testSpec = `
api "testapi" version "0.1";

handle dev;
handle buf;

const OK = 0;
const TRUE = 1;

type status = int32_t { success(OK); };

status openDevice(uint32_t index, dev *d) {
  parameter(d) { out; element { allocates; } }
  track(create, d);
}

status writeBuf(dev d, buf b, size_t offset, size_t size, const void *data,
                uint32_t blocking) {
  if (blocking == TRUE) sync; else async;
  parameter(data) { in; buffer(size); }
  resource(bandwidth, size);
}

status readBuf(dev d, buf b, size_t size, void *out) {
  parameter(out) { out; buffer(size); }
  resource(bandwidth, size);
}

status setName(dev d, const char *name);

status launch(dev d, size_t global, size_t local) {
  async;
  resource(device_time, global / local);
  track(modify, d);
}

status closeDevice(dev d) {
  track(destroy, d);
}
`

func compileTest(t *testing.T) *Descriptor {
	t.Helper()
	api, err := spec.Parse(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compile(api)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCompileAssignsSequentialIDs(t *testing.T) {
	d := compileTest(t)
	if len(d.Funcs) != 6 {
		t.Fatalf("funcs = %d", len(d.Funcs))
	}
	for i, fd := range d.Funcs {
		if fd.ID != uint32(i) {
			t.Errorf("func %s ID = %d, want %d", fd.Name, fd.ID, i)
		}
		got, ok := d.ByID(fd.ID)
		if !ok || got != fd {
			t.Errorf("ByID(%d) mismatch", fd.ID)
		}
		byName, ok := d.Lookup(fd.Name)
		if !ok || byName != fd {
			t.Errorf("Lookup(%s) mismatch", fd.Name)
		}
	}
	if _, ok := d.ByID(99); ok {
		t.Error("ByID(99) found")
	}
	if _, ok := d.Lookup("ghost"); ok {
		t.Error("Lookup(ghost) found")
	}
}

func TestCompileParamShapes(t *testing.T) {
	d := compileTest(t)

	open, _ := d.Lookup("openDevice")
	dp := open.Params[1]
	if !dp.IsPointer || !dp.IsElement || !dp.Allocates || dp.Kind != spec.KindHandle || dp.ElemSize != 8 {
		t.Fatalf("openDevice(d) = %+v", dp)
	}
	if open.NumOuts != 1 || open.TrackIdx != 1 || open.Track.Kind != spec.TrackCreate {
		t.Fatalf("openDevice meta = %+v", open)
	}

	wr, _ := d.Lookup("writeBuf")
	data := wr.Params[4]
	if !data.IsBuffer || data.Dir != spec.DirIn || data.ElemSize != 1 {
		t.Fatalf("writeBuf(data) = %+v", data)
	}
	if wr.NumOuts != 0 {
		t.Fatalf("writeBuf outs = %d", wr.NumOuts)
	}
	if wr.CondParamIdx != 5 {
		t.Fatalf("writeBuf cond idx = %d", wr.CondParamIdx)
	}

	sn, _ := d.Lookup("setName")
	name := sn.Params[1]
	if name.Kind != spec.KindString || name.IsBuffer || name.IsPointer {
		t.Fatalf("setName(name) = %+v", name)
	}
}

func TestCompileSuccessValues(t *testing.T) {
	d := compileTest(t)
	for _, fd := range d.Funcs {
		if !fd.HasSuccess || fd.SuccessVal != 0 {
			t.Errorf("%s: success = %t/%d", fd.Name, fd.HasSuccess, fd.SuccessVal)
		}
	}
}

func TestIsSyncConditional(t *testing.T) {
	d := compileTest(t)
	wr, _ := d.Lookup("writeBuf")
	args := []marshal.Value{
		marshal.HandleVal(1), marshal.HandleVal(2),
		marshal.Uint(0), marshal.Uint(64), marshal.BytesVal(make([]byte, 64)),
		marshal.Uint(1), // blocking == TRUE
	}
	sync, err := wr.IsSync(d.API, args)
	if err != nil || !sync {
		t.Fatalf("blocking write: sync=%t err=%v", sync, err)
	}
	args[5] = marshal.Uint(0)
	sync, err = wr.IsSync(d.API, args)
	if err != nil || sync {
		t.Fatalf("non-blocking write: sync=%t err=%v", sync, err)
	}
}

func TestIsSyncAlwaysModes(t *testing.T) {
	d := compileTest(t)
	rd, _ := d.Lookup("readBuf")
	if s, _ := rd.IsSync(d.API, nil); !s {
		t.Fatal("readBuf should be sync")
	}
	la, _ := d.Lookup("launch")
	if s, _ := la.IsSync(d.API, nil); s {
		t.Fatal("launch should be async")
	}
	if la.AlwaysSync() || !rd.AlwaysSync() {
		t.Fatal("AlwaysSync flags wrong")
	}
}

func TestBufferBytes(t *testing.T) {
	d := compileTest(t)
	wr, _ := d.Lookup("writeBuf")
	env := spec.Env{"size": 4096}
	n, err := wr.BufferBytes(4, d.API, env)
	if err != nil || n != 4096 {
		t.Fatalf("buffer bytes = %d, %v", n, err)
	}
	// Element parameters report their element size.
	open, _ := d.Lookup("openDevice")
	n, err = open.BufferBytes(1, d.API, nil)
	if err != nil || n != 8 {
		t.Fatalf("element bytes = %d, %v", n, err)
	}
	// Non-buffer parameters are an error.
	if _, err := wr.BufferBytes(0, d.API, env); err == nil {
		t.Fatal("scalar BufferBytes succeeded")
	}
	// Negative sizes are rejected.
	if _, err := wr.BufferBytes(4, d.API, spec.Env{"size": -5}); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestEnvConversion(t *testing.T) {
	d := compileTest(t)
	wr, _ := d.Lookup("writeBuf")
	args := []marshal.Value{
		marshal.HandleVal(7), marshal.HandleVal(8),
		marshal.Uint(16), marshal.Uint(256), marshal.BytesVal(nil),
		marshal.Bool(true),
	}
	env := wr.Env(args)
	if env["offset"] != 16 || env["size"] != 256 || env["blocking"] != 1 {
		t.Fatalf("env = %v", env)
	}
	if _, ok := env["data"]; ok {
		t.Fatal("pointer parameter leaked into env")
	}
	// Handles are scalars and participate too (d is a handle).
	if env["d"] != 7 {
		t.Fatalf("handle env = %v", env)
	}
}

func TestEstimateResources(t *testing.T) {
	d := compileTest(t)
	wr, _ := d.Lookup("writeBuf")
	args := []marshal.Value{
		marshal.HandleVal(1), marshal.HandleVal(2),
		marshal.Uint(0), marshal.Uint(1 << 20), marshal.BytesVal(nil),
		marshal.Uint(1),
	}
	res := wr.EstimateResources(d.API, args)
	if res["bandwidth"] != 1<<20 {
		t.Fatalf("bandwidth = %d", res["bandwidth"])
	}

	la, _ := d.Lookup("launch")
	res = la.EstimateResources(d.API, []marshal.Value{
		marshal.HandleVal(1), marshal.Uint(1024), marshal.Uint(64),
	})
	if res["device_time"] != 16 {
		t.Fatalf("device_time = %d", res["device_time"])
	}

	rd, _ := d.Lookup("readBuf")
	// Broken env (missing size): estimate degrades to zero, not an error.
	res = rd.EstimateResources(d.API, nil)
	if res["bandwidth"] != 0 {
		t.Fatalf("degraded estimate = %d", res["bandwidth"])
	}

	open, _ := d.Lookup("openDevice")
	if open.EstimateResources(d.API, nil) != nil {
		t.Fatal("no annotations should return nil")
	}
}

func TestCompileRejectsInvalidSpec(t *testing.T) {
	api := spec.NewAPI("broken")
	api.Funcs = append(api.Funcs, &spec.Func{
		Name: "f",
		Ret:  spec.TypeRef{Name: "mystery"},
	})
	if _, err := Compile(api); err == nil {
		t.Fatal("invalid spec compiled")
	}
}

func TestMustCompilePanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustCompile("this is not a spec %%%")
}

func TestMustCompileGood(t *testing.T) {
	d := MustCompile(`handle h; void f(h x);`)
	if _, ok := d.Lookup("f"); !ok {
		t.Fatal("f missing")
	}
}

func TestInOutHelpers(t *testing.T) {
	d := compileTest(t)
	wr, _ := d.Lookup("writeBuf")
	if !wr.Params[0].In() || wr.Params[0].Out() {
		t.Fatal("scalar should be in-only")
	}
	if !wr.Params[4].In() || wr.Params[4].Out() {
		t.Fatal("in buffer direction wrong")
	}
	rd, _ := d.Lookup("readBuf")
	if rd.Params[3].In() || !rd.Params[3].Out() {
		t.Fatal("out buffer direction wrong")
	}
}

func TestCompiledSpecPrintedFormStillCompiles(t *testing.T) {
	api, err := spec.Parse(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	printed := spec.Print(api)
	api2, err := spec.Parse(printed)
	if err != nil {
		t.Fatalf("printed spec: %v", err)
	}
	d2, err := Compile(api2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Funcs) != 6 {
		t.Fatalf("round-tripped funcs = %d", len(d2.Funcs))
	}
	if !strings.Contains(printed, "track(create, d);") {
		t.Fatalf("printed spec lost track annotation:\n%s", printed)
	}
}

func TestOrderingDomain(t *testing.T) {
	d := compileTest(t)

	// writeBuf(dev d, buf b, ...): the first non-pointer handle parameter
	// is the ordering domain.
	wb, _ := d.Lookup("writeBuf")
	if wb.DomainIdx != 0 {
		t.Fatalf("writeBuf DomainIdx = %d, want 0", wb.DomainIdx)
	}
	args := []marshal.Value{
		marshal.HandleVal(0xD0), marshal.HandleVal(0xB1),
		marshal.Uint(0), marshal.Uint(4),
		marshal.BytesVal([]byte{1, 2, 3, 4}), marshal.Uint(1),
	}
	if dom := wb.Domain(args); dom != 0xD0 {
		t.Fatalf("writeBuf domain = %#x, want 0xD0", dom)
	}

	// openDevice(uint32_t, dev *d): the only handle is an out pointer, so
	// the call lands in the fallback domain.
	od, _ := d.Lookup("openDevice")
	if od.DomainIdx != -1 {
		t.Fatalf("openDevice DomainIdx = %d, want -1", od.DomainIdx)
	}
	if dom := od.Domain([]marshal.Value{marshal.Uint(0), marshal.Null()}); dom != 0 {
		t.Fatalf("openDevice domain = %d, want 0 (fallback)", dom)
	}

	// A malformed (short) argument vector must not panic and falls back.
	if dom := wb.Domain(nil); dom != 0 {
		t.Fatalf("short args domain = %d, want 0", dom)
	}
}
