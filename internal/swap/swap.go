// Package swap implements AvA's buffer-object-granularity device-memory
// swapping (§4.3): when a guest's allocation would exhaust device memory,
// the API server evicts least-recently-used buffer objects to host memory
// and retries, so out-of-memory conditions caused by one VM are never
// exposed to contending guests. Swapping at buffer granularity — rather
// than pages or chunks — needs no driver modification: eviction and
// fault-in use the silo's ordinary snapshot/restore operations.
package swap

import (
	"sync"

	"ava/internal/cava"
	"ava/internal/cl"
	"ava/internal/server"
)

// Stats counts swap activity.
type Stats struct {
	Evictions    uint64
	BytesEvicted uint64
	OOMRescues   uint64 // OOM events where eviction made the retry succeed
	Failures     uint64 // OOM events with nothing left to evict
}

// Manager implements the server's OOM policy over an OpenCL silo.
type Manager struct {
	silo *cl.Silo

	mu    sync.Mutex
	stats Stats
	// MinEvict is the minimum bytes to free per OOM event; evicting only
	// exactly-enough would thrash under a tight loop of allocations.
	MinEvict uint64
}

// NewManager builds a swap manager for silo.
func NewManager(silo *cl.Silo) *Manager {
	return &Manager{silo: silo, MinEvict: 1 << 20}
}

// Install hooks the manager into a registry as its OOM policy.
func (m *Manager) Install(reg *server.Registry) {
	reg.OnOOM = func(ctx *server.Context, fd *cava.FuncDesc) bool {
		return m.OnOOM(ctx, fd)
	}
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// OnOOM evicts LRU resident buffers until at least MinEvict bytes were
// freed (or nothing remains to evict) and reports whether a retry is worth
// attempting.
func (m *Manager) OnOOM(ctx *server.Context, fd *cava.FuncDesc) bool {
	var freed uint64
	for freed < m.minEvict() {
		victim := cl.LRUVictim(m.silo.LiveBuffers())
		if victim == nil {
			break
		}
		size := victim.Size()
		if err := m.silo.EvictBuffer(victim); err != nil {
			break
		}
		freed += size
		m.mu.Lock()
		m.stats.Evictions++
		m.stats.BytesEvicted += size
		m.mu.Unlock()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if freed == 0 {
		m.stats.Failures++
		return false
	}
	m.stats.OOMRescues++
	return true
}

func (m *Manager) minEvict() uint64 {
	if m.MinEvict == 0 {
		return 1
	}
	return m.MinEvict
}

// EvictAll force-evicts every resident buffer (used by migration to
// quiesce device memory, and by tests).
func (m *Manager) EvictAll() (int, error) {
	n := 0
	for _, b := range m.silo.LiveBuffers() {
		if !b.Resident() {
			continue
		}
		if err := m.silo.EvictBuffer(b); err != nil {
			return n, err
		}
		n++
		m.mu.Lock()
		m.stats.Evictions++
		m.stats.BytesEvicted += b.Size()
		m.mu.Unlock()
	}
	return n, nil
}
