package swap_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"ava"
	"ava/internal/cl"
	"ava/internal/devsim"
	"ava/internal/server"
	"ava/internal/swap"
)

// tinySilo has 1 MiB of device memory so oversubscription is easy.
func tinySilo() *cl.Silo {
	return cl.NewSilo(cl.Config{
		Devices: []devsim.Config{{Name: "tiny-gpu", MemoryBytes: 1 << 20, ComputeUnits: 2}},
	})
}

func remoteWithSwap(t *testing.T) (cl.Client, *swap.Manager, *cl.Silo) {
	t.Helper()
	silo := tinySilo()
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, silo)
	mgr := swap.NewManager(silo)
	mgr.Install(reg)
	stack := ava.NewStack(desc, reg)
	t.Cleanup(stack.Close)
	lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "vm1"})
	if err != nil {
		t.Fatal(err)
	}
	return cl.NewRemote(lib), mgr, silo
}

func bootstrap(t *testing.T, c cl.Client) (ctx, q cl.Ref) {
	t.Helper()
	ps, _ := c.PlatformIDs()
	ds, _ := c.DeviceIDs(ps[0], cl.DeviceTypeGPU)
	ctx, err := c.CreateContext(ds)
	if err != nil {
		t.Fatal(err)
	}
	q, err = c.CreateQueue(ctx, ds[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, q
}

func TestOversubscriptionSucceedsWithSwap(t *testing.T) {
	c, mgr, _ := remoteWithSwap(t)
	ctx, q := bootstrap(t, c)

	// Allocate 4x the device memory in 256 KiB buffers, writing a
	// distinct pattern to each.
	const bufSize = 256 << 10
	const count = 16
	bufs := make([]cl.Ref, count)
	for i := 0; i < count; i++ {
		b, err := c.CreateBuffer(ctx, 1, bufSize)
		if err != nil {
			t.Fatalf("buffer %d: %v", i, err)
		}
		bufs[i] = b
		pat := bytes.Repeat([]byte{byte(i + 1)}, bufSize)
		if err := c.EnqueueWrite(q, b, true, 0, pat); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	st := mgr.Stats()
	if st.Evictions == 0 || st.OOMRescues == 0 {
		t.Fatalf("no swapping happened: %+v", st)
	}

	// Every buffer's contents must survive, including evicted ones.
	got := make([]byte, bufSize)
	for i := 0; i < count; i++ {
		if err := c.EnqueueRead(q, bufs[i], true, 0, got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		for _, x := range got {
			if x != byte(i+1) {
				t.Fatalf("buffer %d corrupted: %d", i, x)
			}
		}
	}
}

func TestOversubscriptionFailsWithoutSwap(t *testing.T) {
	silo := tinySilo()
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, silo) // no swap manager installed
	stack := ava.NewStack(desc, reg)
	t.Cleanup(stack.Close)
	lib, _ := stack.AttachVM(ava.VMConfig{ID: 1, Name: "vm1"})
	c := cl.NewRemote(lib)
	ctx, _ := bootstrap(t, c)
	var err error
	for i := 0; i < 16 && err == nil; i++ {
		_, err = c.CreateBuffer(ctx, 1, 256<<10)
	}
	if err == nil {
		t.Fatal("oversubscription succeeded without a swap manager")
	}
}

func TestKernelFaultsEvictedBuffersBackIn(t *testing.T) {
	c, _, silo := remoteWithSwap(t)
	ctx, q := bootstrap(t, c)

	const n = 1024
	a, _ := c.CreateBuffer(ctx, 1, 4*n)
	b, _ := c.CreateBuffer(ctx, 1, 4*n)
	o, _ := c.CreateBuffer(ctx, 1, 4*n)
	one := bytes.Repeat([]byte{0, 0, 128, 63}, n) // 1.0f LE
	two := bytes.Repeat([]byte{0, 0, 0, 64}, n)   // 2.0f LE
	c.EnqueueWrite(q, a, true, 0, one)
	c.EnqueueWrite(q, b, true, 0, two)

	// Force-evict everything, then launch: the silo must fault buffers in.
	mgr := swap.NewManager(silo)
	if _, err := mgr.EvictAll(); err != nil {
		t.Fatal(err)
	}

	prog, _ := c.CreateProgram(ctx, "vector_add")
	c.BuildProgram(prog, "")
	k, _ := c.CreateKernel(prog, "vector_add")
	c.SetKernelArgBuffer(k, 0, a)
	c.SetKernelArgBuffer(k, 1, b)
	c.SetKernelArgBuffer(k, 2, o)
	c.SetKernelArgScalar(k, 3, cl.ArgU32(n))
	if err := c.EnqueueNDRange(q, k, []uint64{n}, []uint64{256}); err != nil {
		t.Fatal(err)
	}
	if err := c.Finish(q); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4*n)
	if err := c.EnqueueRead(q, o, true, 0, out); err != nil {
		t.Fatal(err)
	}
	if err := c.DeferredError(); err != nil {
		t.Fatal(err)
	}
	// 1.0 + 2.0 = 3.0 = 0x40400000 LE.
	for i := 0; i < n; i++ {
		if out[4*i+3] != 0x40 || out[4*i+2] != 0x40 {
			t.Fatalf("element %d wrong: % x", i, out[4*i:4*i+4])
		}
	}
}

func TestEvictAllCountsAndIdempotent(t *testing.T) {
	silo := tinySilo()
	c := cl.NewNative(silo)
	ctx, q := bootstrap(t, c)
	for i := 0; i < 3; i++ {
		b, err := c.CreateBuffer(ctx, 1, 1024)
		if err != nil {
			t.Fatal(err)
		}
		c.EnqueueWrite(q, b, true, 0, make([]byte, 1024))
	}
	mgr := swap.NewManager(silo)
	n, err := mgr.EvictAll()
	if err != nil || n != 3 {
		t.Fatalf("evicted %d, %v", n, err)
	}
	n, err = mgr.EvictAll()
	if err != nil || n != 0 {
		t.Fatalf("second EvictAll evicted %d, %v", n, err)
	}
}

func TestOOMWithNothingToEvict(t *testing.T) {
	silo := tinySilo()
	mgr := swap.NewManager(silo)
	if mgr.OnOOM(nil, nil) {
		t.Fatal("OnOOM claimed success with no buffers")
	}
	if st := mgr.Stats(); st.Failures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUOrderRespected(t *testing.T) {
	silo := tinySilo()
	c := cl.NewNative(silo)
	ctx, q := bootstrap(t, c)
	a, _ := c.CreateBuffer(ctx, 1, 1024)
	b, _ := c.CreateBuffer(ctx, 1, 1024)
	c.EnqueueWrite(q, a, true, 0, make([]byte, 1024))
	c.EnqueueWrite(q, b, true, 0, make([]byte, 1024))
	// Touch a, making b the LRU.
	c.EnqueueRead(q, a, true, 0, make([]byte, 1024))

	victim := cl.LRUVictim(silo.LiveBuffers())
	bm, _ := cl.NativeMem(b)
	if victim != bm {
		t.Fatal("LRU victim is not the least recently used buffer")
	}
}

// Property: any interleaving of writes, evictions and reads preserves
// every buffer's logical contents.
func TestQuickEvictionPreservesContents(t *testing.T) {
	f := func(ops []uint8) bool {
		silo := tinySilo()
		c := cl.NewNative(silo)
		ps, _ := c.PlatformIDs()
		ds, _ := c.DeviceIDs(ps[0], cl.DeviceTypeGPU)
		ctx, err := c.CreateContext(ds)
		if err != nil {
			return false
		}
		q, _ := c.CreateQueue(ctx, ds[0], 0)
		const nb = 4
		const sz = 1024
		bufs := make([]cl.Ref, nb)
		want := make([][]byte, nb)
		for i := range bufs {
			bufs[i], err = c.CreateBuffer(ctx, 1, sz)
			if err != nil {
				return false
			}
			want[i] = make([]byte, sz)
		}
		for _, op := range ops {
			i := int(op) % nb
			switch (op / 16) % 3 {
			case 0: // write a fresh pattern
				for j := range want[i] {
					want[i][j] = byte(op) + byte(j)
				}
				if err := c.EnqueueWrite(q, bufs[i], true, 0, want[i]); err != nil {
					return false
				}
			case 1: // evict
				if m, ok := cl.NativeMem(bufs[i]); ok {
					silo.EvictBuffer(m)
				}
			case 2: // read and check
				got := make([]byte, sz)
				if err := c.EnqueueRead(q, bufs[i], true, 0, got); err != nil {
					return false
				}
				if !bytes.Equal(got, want[i]) {
					return false
				}
			}
		}
		// Final sweep: every buffer intact.
		for i := range bufs {
			got := make([]byte, sz)
			if err := c.EnqueueRead(q, bufs[i], true, 0, got); err != nil {
				return false
			}
			if !bytes.Equal(got, want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
