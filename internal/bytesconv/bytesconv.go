// Package bytesconv converts between typed numeric slices and the byte
// buffers that cross the AvA wire and live in simulated device memory.
//
// The guest library marshals buffers as raw bytes (as the real system DMAs
// untyped memory); workloads and kernels view those bytes as float32 / int32
// / uint32 / ... using the little-endian accessors here. Conversions are
// explicit copies — the cost models the (un)marshalling a real remoting
// stack pays — while the View types provide indexed access without copying
// for kernel inner loops.
package bytesconv

import (
	"encoding/binary"
	"math"
)

// Float32Bytes encodes a float32 slice.
func Float32Bytes(src []float32) []byte {
	out := make([]byte, 4*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// ToFloat32 decodes a byte buffer into a new float32 slice.
func ToFloat32(src []byte) []float32 {
	out := make([]float32, len(src)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return out
}

// Int32Bytes encodes an int32 slice.
func Int32Bytes(src []int32) []byte {
	out := make([]byte, 4*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// ToInt32 decodes a byte buffer into a new int32 slice.
func ToInt32(src []byte) []int32 {
	out := make([]int32, len(src)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return out
}

// Uint32Bytes encodes a uint32 slice.
func Uint32Bytes(src []uint32) []byte {
	out := make([]byte, 4*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// ToUint32 decodes a byte buffer into a new uint32 slice.
func ToUint32(src []byte) []uint32 {
	out := make([]uint32, len(src)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(src[4*i:])
	}
	return out
}

// Uint64Bytes encodes a uint64 slice.
func Uint64Bytes(src []uint64) []byte {
	out := make([]byte, 8*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint64(out[8*i:], v)
	}
	return out
}

// ToUint64 decodes a byte buffer into a new uint64 slice.
func ToUint64(src []byte) []uint64 {
	out := make([]uint64, len(src)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(src[8*i:])
	}
	return out
}

// Float32View provides indexed float32 access over a byte buffer without
// copying; kernels use it to treat device memory as a typed array.
type Float32View struct{ b []byte }

// F32 wraps a byte buffer as a Float32View.
func F32(b []byte) Float32View { return Float32View{b} }

// Len returns the element count.
func (v Float32View) Len() int { return len(v.b) / 4 }

// At returns element i.
func (v Float32View) At(i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(v.b[4*i:]))
}

// Set stores element i.
func (v Float32View) Set(i int, x float32) {
	binary.LittleEndian.PutUint32(v.b[4*i:], math.Float32bits(x))
}

// Add accumulates into element i.
func (v Float32View) Add(i int, x float32) { v.Set(i, v.At(i)+x) }

// Int32View provides indexed int32 access over a byte buffer.
type Int32View struct{ b []byte }

// I32 wraps a byte buffer as an Int32View.
func I32(b []byte) Int32View { return Int32View{b} }

// Len returns the element count.
func (v Int32View) Len() int { return len(v.b) / 4 }

// At returns element i.
func (v Int32View) At(i int) int32 {
	return int32(binary.LittleEndian.Uint32(v.b[4*i:]))
}

// Set stores element i.
func (v Int32View) Set(i int, x int32) {
	binary.LittleEndian.PutUint32(v.b[4*i:], uint32(x))
}

// Uint32View provides indexed uint32 access over a byte buffer.
type Uint32View struct{ b []byte }

// U32 wraps a byte buffer as a Uint32View.
func U32(b []byte) Uint32View { return Uint32View{b} }

// Len returns the element count.
func (v Uint32View) Len() int { return len(v.b) / 4 }

// At returns element i.
func (v Uint32View) At(i int) uint32 { return binary.LittleEndian.Uint32(v.b[4*i:]) }

// Set stores element i.
func (v Uint32View) Set(i int, x uint32) { binary.LittleEndian.PutUint32(v.b[4*i:], x) }
