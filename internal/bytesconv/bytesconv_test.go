package bytesconv

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloat32RoundTrip(t *testing.T) {
	in := []float32{0, 1.5, -2.25, float32(math.Pi), math.MaxFloat32}
	out := ToFloat32(Float32Bytes(in))
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("elem %d: %v != %v", i, in[i], out[i])
		}
	}
}

func TestQuickFloat32RoundTrip(t *testing.T) {
	f := func(in []float32) bool {
		out := ToFloat32(Float32Bytes(in))
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			a, b := in[i], out[i]
			if a != b && !(math.IsNaN(float64(a)) && math.IsNaN(float64(b))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInt32RoundTrip(t *testing.T) {
	f := func(in []int32) bool {
		out := ToInt32(Int32Bytes(in))
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUint32RoundTrip(t *testing.T) {
	f := func(in []uint32) bool {
		out := ToUint32(Uint32Bytes(in))
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return len(out) == len(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUint64RoundTrip(t *testing.T) {
	f := func(in []uint64) bool {
		out := ToUint64(Uint64Bytes(in))
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return len(out) == len(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat32View(t *testing.T) {
	b := Float32Bytes(make([]float32, 4))
	v := F32(b)
	if v.Len() != 4 {
		t.Fatalf("len = %d", v.Len())
	}
	v.Set(2, 3.5)
	if v.At(2) != 3.5 {
		t.Fatalf("at = %v", v.At(2))
	}
	v.Add(2, 1.5)
	if v.At(2) != 5 {
		t.Fatalf("after add = %v", v.At(2))
	}
	// The view writes through to the backing bytes.
	if got := ToFloat32(b)[2]; got != 5 {
		t.Fatalf("backing = %v", got)
	}
}

func TestInt32View(t *testing.T) {
	v := I32(make([]byte, 12))
	v.Set(0, -7)
	v.Set(2, 1<<30)
	if v.At(0) != -7 || v.At(2) != 1<<30 || v.Len() != 3 {
		t.Fatal("int32 view mismatch")
	}
}

func TestUint32View(t *testing.T) {
	v := U32(make([]byte, 8))
	v.Set(1, math.MaxUint32)
	if v.At(1) != math.MaxUint32 || v.Len() != 2 {
		t.Fatal("uint32 view mismatch")
	}
}

func TestEmptySlices(t *testing.T) {
	if len(Float32Bytes(nil)) != 0 || len(ToFloat32(nil)) != 0 {
		t.Fatal("empty conversion not empty")
	}
}

func BenchmarkFloat32Bytes1K(b *testing.B) {
	src := make([]float32, 1024)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Float32Bytes(src)
	}
}

func BenchmarkF32ViewSum1K(b *testing.B) {
	buf := Float32Bytes(make([]float32, 1024))
	v := F32(buf)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		var s float32
		for j := 0; j < v.Len(); j++ {
			s += v.At(j)
		}
		_ = s
	}
}
