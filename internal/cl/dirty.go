package cl

// Coarse dirty-range tracking for buffer objects. Every write path through
// the silo (EnqueueWriteBuffer, EnqueueFillBuffer, EnqueueCopyBuffer's
// destination, kernel launches that bind the buffer, RestoreBuffer) marks
// the written byte range; SnapshotBufferDelta drains the accumulated set,
// so a checkpoint ships only the bytes touched since the previous one
// instead of the buffer's full footprint.
//
// The tracking is deliberately coarse: ranges are rounded out to
// dirtyGranule-sized blocks and the set is capped at maxDirtyRanges merged
// ranges — past the cap the whole buffer degrades to dirty, trading delta
// precision for O(1) bookkeeping on pathological scatter patterns. Kernel
// launches mark every bound buffer wholly dirty, because kernels receive
// raw device memory slices and the silo cannot see which bytes they write.

// dirtyGranule is the rounding unit for tracked ranges.
const dirtyGranule = 4096

// maxDirtyRanges caps the merged range list per buffer.
const maxDirtyRanges = 32

// dirtyRange is one half-open written byte range [off, end).
type dirtyRange struct{ off, end uint64 }

// dirtySet accumulates written ranges between delta watermarks. The zero
// value is clean. Callers synchronize through the silo mutex.
type dirtySet struct {
	all    bool         // whole buffer dirty: overflow or an untracked write
	ranges []dirtyRange // sorted by off, non-overlapping, non-adjacent
}

// markAll degrades the whole buffer to dirty.
func (d *dirtySet) markAll() {
	d.all = true
	d.ranges = d.ranges[:0]
}

// reset clears the set (watermark advance).
func (d *dirtySet) reset() {
	d.all = false
	d.ranges = d.ranges[:0]
}

// clean reports whether nothing has been written since the last reset.
func (d *dirtySet) clean() bool { return !d.all && len(d.ranges) == 0 }

// mark records a write of n bytes at off into a size-byte buffer, rounded
// out to granule boundaries and merged into the sorted range set.
func (d *dirtySet) mark(off, n, size uint64) {
	if d.all || n == 0 {
		return
	}
	if off >= size {
		return // the device copy will fail; nothing real was written
	}
	end := off + n
	if end > size || end < off {
		end = size
	}
	off -= off % dirtyGranule
	if rem := end % dirtyGranule; rem != 0 {
		end += dirtyGranule - rem
	}
	if end > size {
		end = size
	}

	// Insert keeping sort order, then merge overlapping/adjacent ranges in
	// one pass. The list is tiny (≤ maxDirtyRanges), so linear is fine.
	idx := len(d.ranges)
	for i := range d.ranges {
		if d.ranges[i].off > off {
			idx = i
			break
		}
	}
	d.ranges = append(d.ranges, dirtyRange{})
	copy(d.ranges[idx+1:], d.ranges[idx:])
	d.ranges[idx] = dirtyRange{off: off, end: end}

	merged := d.ranges[:1]
	for _, r := range d.ranges[1:] {
		last := &merged[len(merged)-1]
		if r.off <= last.end {
			if r.end > last.end {
				last.end = r.end
			}
			continue
		}
		merged = append(merged, r)
	}
	d.ranges = merged
	if len(d.ranges) > maxDirtyRanges {
		d.markAll()
	}
}

// dirtyBytes sums the tracked range lengths (size when wholly dirty).
func (d *dirtySet) dirtyBytes(size uint64) uint64 {
	if d.all {
		return size
	}
	var n uint64
	for _, r := range d.ranges {
		n += r.end - r.off
	}
	return n
}
