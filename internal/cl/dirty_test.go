package cl

import "testing"

func TestDirtySetMarkMergesRanges(t *testing.T) {
	const size = 64 * dirtyGranule
	var d dirtySet
	if !d.clean() {
		t.Fatal("zero value not clean")
	}

	// Two disjoint writes stay two granule-rounded ranges.
	d.mark(1, 1, size)
	d.mark(10*dirtyGranule+5, 10, size)
	want := []dirtyRange{
		{0, dirtyGranule},
		{10 * dirtyGranule, 11 * dirtyGranule},
	}
	if len(d.ranges) != len(want) {
		t.Fatalf("ranges = %v, want %v", d.ranges, want)
	}
	for i, r := range want {
		if d.ranges[i] != r {
			t.Fatalf("range %d = %v, want %v", i, d.ranges[i], r)
		}
	}
	if got := d.dirtyBytes(size); got != 2*dirtyGranule {
		t.Fatalf("dirtyBytes = %d, want %d", got, 2*dirtyGranule)
	}

	// A write bridging the gap merges everything into one range.
	d.mark(dirtyGranule, 9*dirtyGranule, size)
	if len(d.ranges) != 1 || d.ranges[0] != (dirtyRange{0, 11 * dirtyGranule}) {
		t.Fatalf("after bridge: ranges = %v", d.ranges)
	}

	// Adjacent (touching) ranges merge too.
	d.mark(11*dirtyGranule, 1, size)
	if len(d.ranges) != 1 || d.ranges[0] != (dirtyRange{0, 12 * dirtyGranule}) {
		t.Fatalf("after adjacent: ranges = %v", d.ranges)
	}
}

func TestDirtySetMarkClampsToSize(t *testing.T) {
	const size = 2*dirtyGranule + 100 // deliberately not granule-aligned
	var d dirtySet

	d.mark(size-1, 50, size) // runs past the end: clamp, don't round past size
	if len(d.ranges) != 1 || d.ranges[0].end != size {
		t.Fatalf("ranges = %v, want end clamped to %d", d.ranges, size)
	}
	d.reset()

	d.mark(size+10, 1, size) // fully out of bounds: the device copy fails too
	if !d.clean() {
		t.Fatalf("out-of-bounds mark dirtied the set: %v", d.ranges)
	}
	d.mark(0, 0, size) // zero-length write
	if !d.clean() {
		t.Fatal("zero-length mark dirtied the set")
	}
}

func TestDirtySetOverflowDegradesToAll(t *testing.T) {
	const size = 1 << 30
	var d dirtySet
	// Alternating granules never merge; past maxDirtyRanges the set must
	// degrade to wholly dirty rather than grow without bound.
	for i := 0; i < maxDirtyRanges+1; i++ {
		d.mark(uint64(2*i)*dirtyGranule, 1, size)
	}
	if !d.all {
		t.Fatalf("set did not degrade to all after %d scattered marks (len %d)",
			maxDirtyRanges+1, len(d.ranges))
	}
	if got := d.dirtyBytes(size); got != size {
		t.Fatalf("dirtyBytes = %d, want full size %d", got, size)
	}
	// Further marks on a degraded set are no-ops.
	d.mark(0, 1, size)
	if len(d.ranges) != 0 {
		t.Fatal("mark on degraded set grew ranges")
	}
	d.reset()
	if !d.clean() {
		t.Fatal("reset did not clean a degraded set")
	}
}
