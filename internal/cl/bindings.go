package cl

import (
	"encoding/binary"
	"fmt"
	"sync"

	"ava/internal/marshal"
	"ava/internal/server"
)

// This file is the API-server binding for the OpenCL silo: the component
// CAvA generates in the paper (the "API server" box of Figure 3). Each
// handler translates a verified Invocation into silo operations, mapping
// guest-visible opaque handles to silo objects through the per-VM handle
// table. It is written in the exact shape cava's code generator emits (see
// internal/cava/gen.go); the generated form for a toy API is golden-tested
// against this idiom.

// vmBinding is per-VM binding state: a reverse map so stable silo objects
// (platforms, devices) keep a stable guest handle across repeated queries.
// Dispatch workers run handlers for one VM concurrently, so the map is
// guarded by its own mutex (held across the whole lookup-or-insert so two
// workers cannot mint distinct handles for the same platform).
type vmBinding struct {
	mu      sync.Mutex
	reverse map[any]marshal.Handle
}

func binding(ctx *server.Context) *vmBinding {
	return ctx.AuxInit(func() any {
		return &vmBinding{reverse: make(map[any]marshal.Handle)}
	}).(*vmBinding)
}

// insertStable returns the existing handle for obj or inserts it. The
// liveness check matters after migration, where the replay engine rebinds
// table entries underneath this cache.
func insertStable(ctx *server.Context, obj any) marshal.Handle {
	b := binding(ctx)
	b.mu.Lock()
	defer b.mu.Unlock()
	if h, ok := b.reverse[obj]; ok {
		if got, live := ctx.Handles.Get(h); live && got == obj {
			return h
		}
		delete(b.reverse, obj)
	}
	h := ctx.Handles.Insert(obj)
	b.reverse[obj] = h
	return h
}

// insertFresh inserts an always-new object (buffers, kernels, events).
func insertFresh(ctx *server.Context, obj any) marshal.Handle {
	b := binding(ctx)
	h := ctx.Handles.Insert(obj)
	b.mu.Lock()
	b.reverse[obj] = h
	b.mu.Unlock()
	return h
}

func dropHandle(ctx *server.Context, h marshal.Handle) {
	if obj, ok := ctx.Handles.Remove(h); ok {
		b := binding(ctx)
		b.mu.Lock()
		delete(b.reverse, obj)
		b.mu.Unlock()
	}
}

// resolve fetches a typed silo object from a guest handle.
func resolve[T any](ctx *server.Context, h marshal.Handle) (T, bool) {
	var zero T
	obj, ok := ctx.Handles.Get(h)
	if !ok {
		return zero, false
	}
	t, ok := obj.(T)
	return t, ok
}

// putHandles encodes handles into an out-buffer of cl_* handle elements.
func putHandles(dst []byte, hs []marshal.Handle) {
	for i, h := range hs {
		if 8*i+8 <= len(dst) {
			binary.LittleEndian.PutUint64(dst[8*i:], uint64(h))
		}
	}
}

// getHandles decodes a wait-list buffer into handles.
func getHandles(src []byte) []marshal.Handle {
	out := make([]marshal.Handle, len(src)/8)
	for i := range out {
		out[i] = marshal.Handle(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return out
}

// eventsOf resolves a wait list; invalid entries yield an error status.
func eventsOf(ctx *server.Context, src []byte) ([]*Event, Status) {
	hs := getHandles(src)
	evs := make([]*Event, 0, len(hs))
	for _, h := range hs {
		e, ok := resolve[*Event](ctx, h)
		if !ok {
			return nil, ErrInvalidEvent
		}
		evs = append(evs, e)
	}
	return evs, Success
}

// finishEvent publishes an enqueue's completion event if the guest asked
// for one (the `event` out element, freshly allocated).
func finishEvent(inv *server.Invocation, paramIdx int, ev *Event) {
	if ev == nil || inv.IsNull(paramIdx) {
		return
	}
	inv.SetOutHandle(paramIdx, insertFresh(inv.Ctx, ev))
}

// BindServer registers all 39 OpenCL handlers against reg, executing on
// silo. It also installs the registry's OOM hook via swapmgr-compatible
// error wrapping: clCreateBuffer allocation failures surface as
// server.ErrDeviceOOM so a swap policy can evict and retry (§4.3).
func BindServer(reg *server.Registry, silo *Silo) {
	type inv = server.Invocation

	// --- Discovery ---

	reg.MustRegister("clGetPlatformIDs", func(v *inv) error {
		ps := silo.GetPlatformIDs()
		n := uint32(len(ps))
		if !v.IsNull(1) {
			hs := make([]marshal.Handle, 0, len(ps))
			for _, p := range ps {
				hs = append(hs, insertStable(v.Ctx, p))
			}
			putHandles(v.Bytes(1), hs)
		}
		if !v.IsNull(2) {
			v.SetOutUint(2, uint64(n))
		}
		v.SetStatus(int64(Success))
		return nil
	})

	reg.MustRegister("clGetPlatformInfo", func(v *inv) error {
		p, ok := resolve[*Platform](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidPlatform))
			return nil
		}
		n, st := silo.GetPlatformInfo(p, uint32(v.Uint(1)), v.Bytes(3))
		if !v.IsNull(4) {
			v.SetOutUint(4, n)
		}
		v.SetStatus(int64(st))
		return nil
	})

	reg.MustRegister("clGetDeviceIDs", func(v *inv) error {
		p, ok := resolve[*Platform](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidPlatform))
			return nil
		}
		ds, st := silo.GetDeviceIDs(p, v.Uint(1))
		if st != Success {
			v.SetStatus(int64(st))
			return nil
		}
		if !v.IsNull(3) {
			hs := make([]marshal.Handle, 0, len(ds))
			for _, d := range ds {
				hs = append(hs, insertStable(v.Ctx, d))
			}
			putHandles(v.Bytes(3), hs)
		}
		if !v.IsNull(4) {
			v.SetOutUint(4, uint64(len(ds)))
		}
		v.SetStatus(int64(Success))
		return nil
	})

	reg.MustRegister("clGetDeviceInfo", func(v *inv) error {
		d, ok := resolve[*Device](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidDevice))
			return nil
		}
		n, st := silo.GetDeviceInfo(d, uint32(v.Uint(1)), v.Bytes(3))
		if !v.IsNull(4) {
			v.SetOutUint(4, n)
		}
		v.SetStatus(int64(st))
		return nil
	})

	// --- Contexts ---

	reg.MustRegister("clCreateContext", func(v *inv) error {
		hs := getHandles(v.Bytes(1))
		devs := make([]*Device, 0, len(hs))
		st := Success
		for _, h := range hs {
			d, ok := resolve[*Device](v.Ctx, h)
			if !ok {
				st = ErrInvalidDevice
				break
			}
			devs = append(devs, d)
		}
		var ret marshal.Handle
		if st == Success {
			c, cst := silo.CreateContext(devs)
			st = cst
			if st == Success {
				c.SetOwner(v.Ctx.Name)
				ret = insertFresh(v.Ctx, c)
			}
		}
		if !v.IsNull(2) {
			v.SetOutInt(2, int64(st))
		}
		v.SetRetHandle(ret)
		return nil
	})

	reg.MustRegister("clRetainContext", func(v *inv) error {
		c, ok := resolve[*Context](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidContext))
			return nil
		}
		v.SetStatus(int64(silo.RetainContext(c)))
		return nil
	})

	reg.MustRegister("clReleaseContext", func(v *inv) error {
		h := v.Handle(0)
		c, ok := resolve[*Context](v.Ctx, h)
		if !ok {
			v.SetStatus(int64(ErrInvalidContext))
			return nil
		}
		st := silo.ReleaseContext(c)
		if st == Success && c.dead {
			dropHandle(v.Ctx, h)
		}
		v.SetStatus(int64(st))
		return nil
	})

	reg.MustRegister("clGetContextInfo", func(v *inv) error {
		c, ok := resolve[*Context](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidContext))
			return nil
		}
		n, st := silo.GetContextInfo(c, uint32(v.Uint(1)), v.Bytes(3))
		if !v.IsNull(4) {
			v.SetOutUint(4, n)
		}
		v.SetStatus(int64(st))
		return nil
	})

	// --- Queues ---

	reg.MustRegister("clCreateCommandQueue", func(v *inv) error {
		c, okc := resolve[*Context](v.Ctx, v.Handle(0))
		d, okd := resolve[*Device](v.Ctx, v.Handle(1))
		st := Success
		var ret marshal.Handle
		switch {
		case !okc:
			st = ErrInvalidContext
		case !okd:
			st = ErrInvalidDevice
		default:
			q, qst := silo.CreateCommandQueue(c, d, v.Uint(2))
			st = qst
			if st == Success {
				ret = insertFresh(v.Ctx, q)
			}
		}
		if !v.IsNull(3) {
			v.SetOutInt(3, int64(st))
		}
		v.SetRetHandle(ret)
		return nil
	})

	reg.MustRegister("clRetainCommandQueue", func(v *inv) error {
		q, ok := resolve[*Queue](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidCommandQueue))
			return nil
		}
		v.SetStatus(int64(silo.RetainCommandQueue(q)))
		return nil
	})

	reg.MustRegister("clReleaseCommandQueue", func(v *inv) error {
		h := v.Handle(0)
		q, ok := resolve[*Queue](v.Ctx, h)
		if !ok {
			v.SetStatus(int64(ErrInvalidCommandQueue))
			return nil
		}
		st := silo.ReleaseCommandQueue(q)
		if st == Success && q.dead {
			dropHandle(v.Ctx, h)
		}
		v.SetStatus(int64(st))
		return nil
	})

	// --- Buffers ---

	reg.MustRegister("clCreateBuffer", func(v *inv) error {
		c, ok := resolve[*Context](v.Ctx, v.Handle(0))
		st := Success
		var ret marshal.Handle
		if !ok {
			st = ErrInvalidContext
		} else {
			m, mst := silo.CreateBuffer(c, v.Uint(1), v.Uint(2))
			st = mst
			if st == ErrMemObjectAllocFailure {
				// Let the server's OOM policy (swap manager) evict and
				// retry the call once.
				return fmt.Errorf("clCreateBuffer(%d bytes): %w", v.Uint(2), server.ErrDeviceOOM)
			}
			if st == Success {
				ret = insertFresh(v.Ctx, m)
			}
		}
		if !v.IsNull(3) {
			v.SetOutInt(3, int64(st))
		}
		v.SetRetHandle(ret)
		return nil
	})

	reg.MustRegister("clRetainMemObject", func(v *inv) error {
		m, ok := resolve[*Mem](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidMemObject))
			return nil
		}
		v.SetStatus(int64(silo.RetainMemObject(m)))
		return nil
	})

	reg.MustRegister("clReleaseMemObject", func(v *inv) error {
		h := v.Handle(0)
		m, ok := resolve[*Mem](v.Ctx, h)
		if !ok {
			v.SetStatus(int64(ErrInvalidMemObject))
			return nil
		}
		st := silo.ReleaseMemObject(m)
		if st == Success && m.dead {
			dropHandle(v.Ctx, h)
		}
		v.SetStatus(int64(st))
		return nil
	})

	// --- Programs and kernels ---

	reg.MustRegister("clCreateProgramWithSource", func(v *inv) error {
		c, ok := resolve[*Context](v.Ctx, v.Handle(0))
		st := Success
		var ret marshal.Handle
		if !ok {
			st = ErrInvalidContext
		} else {
			p, pst := silo.CreateProgramWithSource(c, v.Str(1))
			st = pst
			if st == Success {
				ret = insertFresh(v.Ctx, p)
			}
		}
		if !v.IsNull(2) {
			v.SetOutInt(2, int64(st))
		}
		v.SetRetHandle(ret)
		return nil
	})

	reg.MustRegister("clBuildProgram", func(v *inv) error {
		p, ok := resolve[*Program](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidProgram))
			return nil
		}
		v.SetStatus(int64(silo.BuildProgram(p, v.Str(1))))
		return nil
	})

	reg.MustRegister("clGetProgramBuildInfo", func(v *inv) error {
		p, ok := resolve[*Program](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidProgram))
			return nil
		}
		n, st := silo.GetProgramBuildInfo(p, uint32(v.Uint(1)), v.Bytes(3))
		if !v.IsNull(4) {
			v.SetOutUint(4, n)
		}
		v.SetStatus(int64(st))
		return nil
	})

	reg.MustRegister("clRetainProgram", func(v *inv) error {
		p, ok := resolve[*Program](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidProgram))
			return nil
		}
		v.SetStatus(int64(silo.RetainProgram(p)))
		return nil
	})

	reg.MustRegister("clReleaseProgram", func(v *inv) error {
		h := v.Handle(0)
		p, ok := resolve[*Program](v.Ctx, h)
		if !ok {
			v.SetStatus(int64(ErrInvalidProgram))
			return nil
		}
		st := silo.ReleaseProgram(p)
		if st == Success && p.dead {
			dropHandle(v.Ctx, h)
		}
		v.SetStatus(int64(st))
		return nil
	})

	reg.MustRegister("clCreateKernel", func(v *inv) error {
		p, ok := resolve[*Program](v.Ctx, v.Handle(0))
		st := Success
		var ret marshal.Handle
		if !ok {
			st = ErrInvalidProgram
		} else {
			k, kst := silo.CreateKernel(p, v.Str(1))
			st = kst
			if st == Success {
				ret = insertFresh(v.Ctx, k)
			}
		}
		if !v.IsNull(2) {
			v.SetOutInt(2, int64(st))
		}
		v.SetRetHandle(ret)
		return nil
	})

	reg.MustRegister("clRetainKernel", func(v *inv) error {
		k, ok := resolve[*Kernel](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidKernel))
			return nil
		}
		v.SetStatus(int64(silo.RetainKernel(k)))
		return nil
	})

	reg.MustRegister("clReleaseKernel", func(v *inv) error {
		h := v.Handle(0)
		k, ok := resolve[*Kernel](v.Ctx, h)
		if !ok {
			v.SetStatus(int64(ErrInvalidKernel))
			return nil
		}
		st := silo.ReleaseKernel(k)
		if st == Success && k.dead {
			dropHandle(v.Ctx, h)
		}
		v.SetStatus(int64(st))
		return nil
	})

	reg.MustRegister("clSetKernelArg", func(v *inv) error {
		k, ok := resolve[*Kernel](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidKernel))
			return nil
		}
		idx := uint32(v.Uint(1))
		val := v.Bytes(3)
		// The kernel's declared argument kinds disambiguate: a buffer
		// argument arrives as the 8-byte guest handle of a cl_mem, which
		// the server translates through the per-VM handle table. This is
		// the handle-translation half of what the paper's generated
		// server must do for opaque object arguments.
		if int(idx) < len(k.def.Args) && k.def.Args[idx] == ArgBuffer {
			if len(val) != 8 {
				v.SetStatus(int64(ErrInvalidKernelArgs))
				return nil
			}
			m, ok := resolve[*Mem](v.Ctx, marshal.Handle(binary.LittleEndian.Uint64(val)))
			if !ok {
				v.SetStatus(int64(ErrInvalidMemObject))
				return nil
			}
			v.SetStatus(int64(silo.SetKernelArgBuffer(k, idx, m)))
			return nil
		}
		v.SetStatus(int64(silo.SetKernelArgBytes(k, idx, val)))
		return nil
	})

	reg.MustRegister("clGetKernelWorkGroupInfo", func(v *inv) error {
		k, ok := resolve[*Kernel](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidKernel))
			return nil
		}
		d, _ := resolve[*Device](v.Ctx, v.Handle(1))
		n, st := silo.GetKernelWorkGroupInfo(k, d, uint32(v.Uint(2)), v.Bytes(4))
		if !v.IsNull(5) {
			v.SetOutUint(5, n)
		}
		v.SetStatus(int64(st))
		return nil
	})

	// --- Enqueues ---

	reg.MustRegister("clEnqueueNDRangeKernel", func(v *inv) error {
		q, okq := resolve[*Queue](v.Ctx, v.Handle(0))
		k, okk := resolve[*Kernel](v.Ctx, v.Handle(1))
		if !okq {
			v.SetStatus(int64(ErrInvalidCommandQueue))
			return nil
		}
		if !okk {
			v.SetStatus(int64(ErrInvalidKernel))
			return nil
		}
		if _, st := eventsOf(v.Ctx, v.Bytes(6)); st != Success {
			v.SetStatus(int64(st))
			return nil
		}
		global := decodeSizes(v.Bytes(3))
		local := decodeSizes(v.Bytes(4))
		ev, st := silo.EnqueueNDRangeKernel(q, k, global, local)
		finishEvent(v, 7, ev)
		if err := oomOrStatus(v, "clEnqueueNDRangeKernel", st); err != nil {
			return err
		}
		return nil
	})

	reg.MustRegister("clEnqueueTask", func(v *inv) error {
		q, okq := resolve[*Queue](v.Ctx, v.Handle(0))
		k, okk := resolve[*Kernel](v.Ctx, v.Handle(1))
		if !okq {
			v.SetStatus(int64(ErrInvalidCommandQueue))
			return nil
		}
		if !okk {
			v.SetStatus(int64(ErrInvalidKernel))
			return nil
		}
		if _, st := eventsOf(v.Ctx, v.Bytes(3)); st != Success {
			v.SetStatus(int64(st))
			return nil
		}
		ev, st := silo.EnqueueTask(q, k)
		finishEvent(v, 4, ev)
		if err := oomOrStatus(v, "clEnqueueTask", st); err != nil {
			return err
		}
		return nil
	})

	reg.MustRegister("clEnqueueReadBuffer", func(v *inv) error {
		q, okq := resolve[*Queue](v.Ctx, v.Handle(0))
		m, okm := resolve[*Mem](v.Ctx, v.Handle(1))
		if !okq {
			v.SetStatus(int64(ErrInvalidCommandQueue))
			return nil
		}
		if !okm {
			v.SetStatus(int64(ErrInvalidMemObject))
			return nil
		}
		if _, st := eventsOf(v.Ctx, v.Bytes(7)); st != Success {
			v.SetStatus(int64(st))
			return nil
		}
		ev, st := silo.EnqueueReadBuffer(q, m, v.Uint(3), v.Bytes(5))
		finishEvent(v, 8, ev)
		if err := oomOrStatus(v, "clEnqueueReadBuffer", st); err != nil {
			return err
		}
		return nil
	})

	reg.MustRegister("clEnqueueWriteBuffer", func(v *inv) error {
		q, okq := resolve[*Queue](v.Ctx, v.Handle(0))
		m, okm := resolve[*Mem](v.Ctx, v.Handle(1))
		if !okq {
			v.SetStatus(int64(ErrInvalidCommandQueue))
			return nil
		}
		if !okm {
			v.SetStatus(int64(ErrInvalidMemObject))
			return nil
		}
		if _, st := eventsOf(v.Ctx, v.Bytes(7)); st != Success {
			v.SetStatus(int64(st))
			return nil
		}
		ev, st := silo.EnqueueWriteBuffer(q, m, v.Uint(3), v.Bytes(5))
		finishEvent(v, 8, ev)
		if err := oomOrStatus(v, "clEnqueueWriteBuffer", st); err != nil {
			return err
		}
		return nil
	})

	reg.MustRegister("clEnqueueCopyBuffer", func(v *inv) error {
		q, okq := resolve[*Queue](v.Ctx, v.Handle(0))
		src, oks := resolve[*Mem](v.Ctx, v.Handle(1))
		dst, okd := resolve[*Mem](v.Ctx, v.Handle(2))
		if !okq {
			v.SetStatus(int64(ErrInvalidCommandQueue))
			return nil
		}
		if !oks || !okd {
			v.SetStatus(int64(ErrInvalidMemObject))
			return nil
		}
		if _, st := eventsOf(v.Ctx, v.Bytes(7)); st != Success {
			v.SetStatus(int64(st))
			return nil
		}
		ev, st := silo.EnqueueCopyBuffer(q, src, dst, v.Uint(3), v.Uint(4), v.Uint(5))
		finishEvent(v, 8, ev)
		if err := oomOrStatus(v, "clEnqueueCopyBuffer", st); err != nil {
			return err
		}
		return nil
	})

	reg.MustRegister("clEnqueueFillBuffer", func(v *inv) error {
		q, okq := resolve[*Queue](v.Ctx, v.Handle(0))
		m, okm := resolve[*Mem](v.Ctx, v.Handle(1))
		if !okq {
			v.SetStatus(int64(ErrInvalidCommandQueue))
			return nil
		}
		if !okm {
			v.SetStatus(int64(ErrInvalidMemObject))
			return nil
		}
		if _, st := eventsOf(v.Ctx, v.Bytes(6)); st != Success {
			v.SetStatus(int64(st))
			return nil
		}
		ev, st := silo.EnqueueFillBuffer(q, m, v.Bytes(2), v.Uint(4), v.Uint(5))
		finishEvent(v, 7, ev)
		if err := oomOrStatus(v, "clEnqueueFillBuffer", st); err != nil {
			return err
		}
		return nil
	})

	reg.MustRegister("clEnqueueMarker", func(v *inv) error {
		q, ok := resolve[*Queue](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidCommandQueue))
			return nil
		}
		ev, st := silo.EnqueueMarker(q)
		finishEvent(v, 1, ev)
		v.SetStatus(int64(st))
		return nil
	})

	reg.MustRegister("clEnqueueBarrier", func(v *inv) error {
		q, ok := resolve[*Queue](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidCommandQueue))
			return nil
		}
		v.SetStatus(int64(silo.EnqueueBarrier(q)))
		return nil
	})

	// --- Synchronization and events ---

	reg.MustRegister("clFinish", func(v *inv) error {
		q, ok := resolve[*Queue](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidCommandQueue))
			return nil
		}
		v.SetStatus(int64(silo.Finish(q)))
		return nil
	})

	reg.MustRegister("clFlush", func(v *inv) error {
		q, ok := resolve[*Queue](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidCommandQueue))
			return nil
		}
		v.SetStatus(int64(silo.Flush(q)))
		return nil
	})

	reg.MustRegister("clWaitForEvents", func(v *inv) error {
		evs, st := eventsOf(v.Ctx, v.Bytes(1))
		if st != Success {
			v.SetStatus(int64(st))
			return nil
		}
		v.SetStatus(int64(silo.WaitForEvents(evs)))
		return nil
	})

	reg.MustRegister("clGetEventInfo", func(v *inv) error {
		e, ok := resolve[*Event](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidEvent))
			return nil
		}
		n, st := silo.GetEventInfo(e, uint32(v.Uint(1)), v.Bytes(3))
		if !v.IsNull(4) {
			v.SetOutUint(4, n)
		}
		v.SetStatus(int64(st))
		return nil
	})

	reg.MustRegister("clGetEventProfilingInfo", func(v *inv) error {
		e, ok := resolve[*Event](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidEvent))
			return nil
		}
		n, st := silo.GetEventProfilingInfo(e, uint32(v.Uint(1)), v.Bytes(3))
		if !v.IsNull(4) {
			v.SetOutUint(4, n)
		}
		v.SetStatus(int64(st))
		return nil
	})

	reg.MustRegister("clRetainEvent", func(v *inv) error {
		e, ok := resolve[*Event](v.Ctx, v.Handle(0))
		if !ok {
			v.SetStatus(int64(ErrInvalidEvent))
			return nil
		}
		v.SetStatus(int64(silo.RetainEvent(e)))
		return nil
	})

	reg.MustRegister("clReleaseEvent", func(v *inv) error {
		h := v.Handle(0)
		e, ok := resolve[*Event](v.Ctx, h)
		if !ok {
			v.SetStatus(int64(ErrInvalidEvent))
			return nil
		}
		st := silo.ReleaseEvent(e)
		if st == Success && e.refs <= 0 {
			dropHandle(v.Ctx, h)
		}
		v.SetStatus(int64(st))
		return nil
	})
}

// oomOrStatus maps an allocation-failure status to the server's OOM
// sentinel so the swap policy can evict and retry; other statuses flow to
// the guest as ordinary API results.
func oomOrStatus(v *server.Invocation, op string, st Status) error {
	if st == ErrMemObjectAllocFailure {
		return fmt.Errorf("%s: %w", op, server.ErrDeviceOOM)
	}
	v.SetStatus(int64(st))
	return nil
}

// decodeSizes turns a size_t buffer into work sizes.
func decodeSizes(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}
