package cl

import "ava/internal/cava"

// Spec is the CAvA specification for the 39 OpenCL functions the paper's
// prototype para-virtualizes (§5). The declarations are folded into the
// spec (the self-contained dialect of this reproduction); annotations
// follow Figure 4: conditional synchrony for blocking transfers, explicit
// `async;` for clSetKernelArg and the enqueue family (the paper's §4.2
// optimization), buffer sizes as expressions over sibling arguments,
// freshly allocated event output elements, resource estimates for the
// router, and track annotations driving record/replay migration.
//
// Deviations from Khronos cl.h, all documented in DESIGN.md: pointer-to-
// pointer parameters are flattened (contexts take a device list and length
// directly), clCreateBuffer omits host_ptr (use clEnqueueWriteBuffer), and
// info queries use cl_uint parameter names.
const Spec = `
api "opencl" version "1.2";

handle cl_platform_id;
handle cl_device_id;
handle cl_context;
handle cl_command_queue;
handle cl_mem;
handle cl_program;
handle cl_kernel;
handle cl_event;

const CL_SUCCESS = 0;
const CL_DEVICE_NOT_FOUND = -1;
const CL_OUT_OF_RESOURCES = -5;
const CL_MEM_OBJECT_ALLOCATION_FAILURE = -4;
const CL_BUILD_PROGRAM_FAILURE = -11;
const CL_INVALID_VALUE = -30;
const CL_INVALID_PLATFORM = -32;
const CL_INVALID_DEVICE = -33;
const CL_INVALID_CONTEXT = -34;
const CL_INVALID_COMMAND_QUEUE = -36;
const CL_INVALID_MEM_OBJECT = -38;
const CL_INVALID_PROGRAM = -44;
const CL_INVALID_PROGRAM_EXECUTABLE = -45;
const CL_INVALID_KERNEL_NAME = -46;
const CL_INVALID_KERNEL = -48;
const CL_INVALID_ARG_INDEX = -49;
const CL_INVALID_KERNEL_ARGS = -52;
const CL_INVALID_WORK_DIMENSION = -53;
const CL_INVALID_EVENT = -58;
const CL_INVALID_OPERATION = -59;

const CL_FALSE = 0;
const CL_TRUE = 1;

const CL_MEM_READ_WRITE = 1;
const CL_MEM_WRITE_ONLY = 2;
const CL_MEM_READ_ONLY = 4;

const CL_QUEUE_PROFILING_ENABLE = 2;

const CL_DEVICE_TYPE_GPU = 4;
const CL_DEVICE_TYPE_ALL = 0xFFFFFFFF;

// Info query parameter names (simplified numeric space).
const CL_PLATFORM_NAME = 0x0902;
const CL_PLATFORM_VERSION = 0x0901;
const CL_DEVICE_NAME = 0x102B;
const CL_DEVICE_TYPE = 0x1000;
const CL_DEVICE_MAX_COMPUTE_UNITS = 0x1002;
const CL_DEVICE_GLOBAL_MEM_SIZE = 0x101F;
const CL_DEVICE_MAX_WORK_GROUP_SIZE = 0x1004;
const CL_CONTEXT_NUM_DEVICES = 0x1083;
const CL_CONTEXT_REFERENCE_COUNT = 0x1080;
const CL_PROGRAM_BUILD_STATUS = 0x1181;
const CL_PROGRAM_BUILD_LOG = 0x1183;
const CL_KERNEL_WORK_GROUP_SIZE = 0x11B0;
const CL_EVENT_COMMAND_EXECUTION_STATUS = 0x11D3;
const CL_PROFILING_COMMAND_QUEUED = 0x1280;
const CL_PROFILING_COMMAND_START = 0x1282;
const CL_PROFILING_COMMAND_END = 0x1283;
const CL_COMPLETE = 0;
const CL_BUILD_SUCCESS = 0;
const CL_BUILD_ERROR = -2;

type cl_int = int32_t { success(CL_SUCCESS); };
type cl_uint = uint32_t;
type cl_bool = uint32_t;
type cl_ulong = uint64_t;
type cl_mem_flags = uint64_t;
type cl_device_type = uint64_t;

// 1
cl_int clGetPlatformIDs(cl_uint num_entries, cl_platform_id *platforms,
                        cl_uint *num_platforms) {
  parameter(platforms) { out; buffer(num_entries); }
  parameter(num_platforms) { out; element; }
  track(config);
}

// 2
cl_int clGetPlatformInfo(cl_platform_id platform, cl_uint param_name,
                         size_t param_value_size, void *param_value,
                         size_t *param_value_size_ret) {
  parameter(param_value) { out; buffer(param_value_size); }
  parameter(param_value_size_ret) { out; element; }
}

// 3
cl_int clGetDeviceIDs(cl_platform_id platform, cl_device_type device_type,
                      cl_uint num_entries, cl_device_id *devices,
                      cl_uint *num_devices) {
  parameter(devices) { out; buffer(num_entries); }
  parameter(num_devices) { out; element; }
  track(config);
}

// 4
cl_int clGetDeviceInfo(cl_device_id device, cl_uint param_name,
                       size_t param_value_size, void *param_value,
                       size_t *param_value_size_ret) {
  parameter(param_value) { out; buffer(param_value_size); }
  parameter(param_value_size_ret) { out; element; }
}

// 5
cl_context clCreateContext(cl_uint num_devices, const cl_device_id *devices,
                           cl_int *errcode_ret) {
  parameter(devices) { in; buffer(num_devices); }
  parameter(errcode_ret) { out; element; }
  track(create);
}

// 6
cl_int clRetainContext(cl_context context);

// 7
cl_int clReleaseContext(cl_context context) {
  track(destroy, context);
}

// 8
cl_command_queue clCreateCommandQueue(cl_context context, cl_device_id device,
                                      cl_ulong properties, cl_int *errcode_ret) {
  parameter(errcode_ret) { out; element; }
  track(create);
}

// 9
cl_int clRetainCommandQueue(cl_command_queue command_queue);

// 10
cl_int clReleaseCommandQueue(cl_command_queue command_queue) {
  track(destroy, command_queue);
}

// 11
cl_mem clCreateBuffer(cl_context context, cl_mem_flags flags, size_t size,
                      cl_int *errcode_ret) {
  parameter(errcode_ret) { out; element; }
  resource(device_memory, size);
  track(create);
}

// 12
cl_int clRetainMemObject(cl_mem buf);

// 13
cl_int clReleaseMemObject(cl_mem buf) {
  track(destroy, buf);
}

// 14
cl_program clCreateProgramWithSource(cl_context context, const char *source,
                                     cl_int *errcode_ret) {
  parameter(errcode_ret) { out; element; }
  track(create);
}

// 15
cl_int clBuildProgram(cl_program program, const char *options) {
  track(modify, program);
}

// 16
cl_int clGetProgramBuildInfo(cl_program program, cl_uint param_name,
                             size_t param_value_size, void *param_value,
                             size_t *param_value_size_ret) {
  parameter(param_value) { out; buffer(param_value_size); }
  parameter(param_value_size_ret) { out; element; }
}

// 17
cl_int clRetainProgram(cl_program program);

// 18
cl_int clReleaseProgram(cl_program program) {
  track(destroy, program);
}

// 19
cl_kernel clCreateKernel(cl_program program, const char *kernel_name,
                         cl_int *errcode_ret) {
  parameter(errcode_ret) { out; element; }
  track(create);
}

// 20
cl_int clRetainKernel(cl_kernel kernel);

// 21
cl_int clReleaseKernel(cl_kernel kernel) {
  track(destroy, kernel);
}

// 22 — forwarded asynchronously even though OpenCL defines it synchronous,
// the paper's flagship latency optimization (§4.2).
cl_int clSetKernelArg(cl_kernel kernel, cl_uint arg_index, size_t arg_size,
                      const void *arg_value) {
  async;
  parameter(arg_value) { in; buffer(arg_size); }
  track(modify, kernel);
}

// 23
cl_int clEnqueueNDRangeKernel(cl_command_queue command_queue, cl_kernel kernel,
                              cl_uint work_dim, const size_t *global_work_size,
                              const size_t *local_work_size,
                              cl_uint num_events_in_wait_list,
                              const cl_event *event_wait_list, cl_event *event) {
  async;
  parameter(global_work_size) { in; buffer(work_dim); }
  parameter(local_work_size) { in; buffer(work_dim); }
  parameter(event_wait_list) { in; buffer(num_events_in_wait_list); }
  parameter(event) { out; element { allocates; } }
  resource(device_time, 1);
}

// 24
cl_int clEnqueueTask(cl_command_queue command_queue, cl_kernel kernel,
                     cl_uint num_events_in_wait_list,
                     const cl_event *event_wait_list, cl_event *event) {
  async;
  parameter(event_wait_list) { in; buffer(num_events_in_wait_list); }
  parameter(event) { out; element { allocates; } }
  resource(device_time, 1);
}

// 25 — Figure 4 verbatim, plus the event plumbing.
cl_int clEnqueueReadBuffer(cl_command_queue command_queue, cl_mem buf,
                           cl_bool blocking_read, size_t offset, size_t size,
                           void *ptr, cl_uint num_events_in_wait_list,
                           const cl_event *event_wait_list, cl_event *event) {
  if (blocking_read == CL_TRUE) sync; else async;
  parameter(ptr) { out; buffer(size); }
  parameter(event_wait_list) { in; buffer(num_events_in_wait_list); }
  parameter(event) { out; element { allocates; } }
  resource(bandwidth, size);
}

// 26
cl_int clEnqueueWriteBuffer(cl_command_queue command_queue, cl_mem buf,
                            cl_bool blocking_write, size_t offset, size_t size,
                            const void *ptr, cl_uint num_events_in_wait_list,
                            const cl_event *event_wait_list, cl_event *event) {
  if (blocking_write == CL_TRUE) sync; else async;
  parameter(ptr) { in; buffer(size); }
  parameter(event_wait_list) { in; buffer(num_events_in_wait_list); }
  parameter(event) { out; element { allocates; } }
  resource(bandwidth, size);
}

// 27
cl_int clEnqueueCopyBuffer(cl_command_queue command_queue, cl_mem src_buffer,
                           cl_mem dst_buffer, size_t src_offset,
                           size_t dst_offset, size_t size,
                           cl_uint num_events_in_wait_list,
                           const cl_event *event_wait_list, cl_event *event) {
  async;
  parameter(event_wait_list) { in; buffer(num_events_in_wait_list); }
  parameter(event) { out; element { allocates; } }
  resource(bandwidth, size);
}

// 28
cl_int clEnqueueFillBuffer(cl_command_queue command_queue, cl_mem buf,
                           const void *pattern, size_t pattern_size,
                           size_t offset, size_t size,
                           cl_uint num_events_in_wait_list,
                           const cl_event *event_wait_list, cl_event *event) {
  async;
  parameter(pattern) { in; buffer(pattern_size); }
  parameter(event_wait_list) { in; buffer(num_events_in_wait_list); }
  parameter(event) { out; element { allocates; } }
  resource(bandwidth, size);
}

// 29
cl_int clFinish(cl_command_queue command_queue);

// 30 — cheap submission barrier; async is faithful because the guest
// library's transport flush provides the submission guarantee.
cl_int clFlush(cl_command_queue command_queue) {
  async;
}

// 31
cl_int clWaitForEvents(cl_uint num_events, const cl_event *event_list) {
  parameter(event_list) { in; buffer(num_events); }
}

// 32
cl_int clGetEventInfo(cl_event event, cl_uint param_name,
                      size_t param_value_size, void *param_value,
                      size_t *param_value_size_ret) {
  parameter(param_value) { out; buffer(param_value_size); }
  parameter(param_value_size_ret) { out; element; }
}

// 33
cl_int clGetEventProfilingInfo(cl_event event, cl_uint param_name,
                               size_t param_value_size, void *param_value,
                               size_t *param_value_size_ret) {
  parameter(param_value) { out; buffer(param_value_size); }
  parameter(param_value_size_ret) { out; element; }
}

// 34
cl_int clRetainEvent(cl_event event);

// 35
cl_int clReleaseEvent(cl_event event);

// 36
cl_int clEnqueueBarrier(cl_command_queue command_queue);

// 37
cl_int clEnqueueMarker(cl_command_queue command_queue, cl_event *event) {
  parameter(event) { out; element { allocates; } }
}

// 38
cl_int clGetKernelWorkGroupInfo(cl_kernel kernel, cl_device_id device,
                                cl_uint param_name, size_t param_value_size,
                                void *param_value,
                                size_t *param_value_size_ret) {
  parameter(param_value) { out; buffer(param_value_size); }
  parameter(param_value_size_ret) { out; element; }
}

// 39
cl_int clGetContextInfo(cl_context context, cl_uint param_name,
                        size_t param_value_size, void *param_value,
                        size_t *param_value_size_ret) {
  parameter(param_value) { out; buffer(param_value_size); }
  parameter(param_value_size_ret) { out; element; }
}
`

// Descriptor returns the compiled OpenCL stack descriptor. The result is
// freshly compiled per call; callers cache it.
func Descriptor() *cava.Descriptor { return cava.MustCompile(Spec) }
