package cl

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
)

// ArgKind classifies a kernel argument.
type ArgKind uint8

// Kernel argument kinds.
const (
	// ArgBuffer is a __global pointer argument, bound to a cl_mem.
	ArgBuffer ArgKind = iota
	// ArgScalar is a by-value argument, bound to raw bytes.
	ArgScalar
)

// KernelEnv is what a running kernel sees: its bound arguments and the
// launch geometry. Buffer arguments alias simulated device memory.
type KernelEnv struct {
	Global []uint64
	Local  []uint64
	bufs   [][]byte
	raws   [][]byte
}

// Buf returns the device memory bound to buffer argument i.
func (e *KernelEnv) Buf(i int) []byte { return e.bufs[i] }

// Raw returns the raw bytes of scalar argument i.
func (e *KernelEnv) Raw(i int) []byte { return e.raws[i] }

// U32 decodes scalar argument i as uint32.
func (e *KernelEnv) U32(i int) uint32 { return binary.LittleEndian.Uint32(e.raws[i]) }

// I32 decodes scalar argument i as int32.
func (e *KernelEnv) I32(i int) int32 { return int32(e.U32(i)) }

// U64 decodes scalar argument i as uint64.
func (e *KernelEnv) U64(i int) uint64 { return binary.LittleEndian.Uint64(e.raws[i]) }

// F32 decodes scalar argument i as float32.
func (e *KernelEnv) F32(i int) float32 { return math.Float32frombits(e.U32(i)) }

// GlobalSize returns the total work-item count.
func (e *KernelEnv) GlobalSize() uint64 {
	n := uint64(1)
	for _, g := range e.Global {
		n *= g
	}
	return n
}

// KernelDef is one registered kernel: the silo's executable form of what
// OpenCL C source would compile to.
type KernelDef struct {
	Name string
	Args []ArgKind
	Run  func(env *KernelEnv)
}

// KernelRegistry maps kernel names to definitions. A silo builds programs
// by resolving source-named kernels here.
type KernelRegistry struct {
	mu sync.Mutex
	m  map[string]*KernelDef
}

// NewKernelRegistry returns an empty registry.
func NewKernelRegistry() *KernelRegistry {
	return &KernelRegistry{m: make(map[string]*KernelDef)}
}

// Register adds a kernel definition.
func (r *KernelRegistry) Register(def *KernelDef) error {
	if def == nil || def.Name == "" || def.Run == nil {
		return fmt.Errorf("cl: malformed kernel definition")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[def.Name]; dup {
		return fmt.Errorf("cl: kernel %q already registered", def.Name)
	}
	r.m[def.Name] = def
	return nil
}

// MustRegister is Register for statically known kernels.
func (r *KernelRegistry) MustRegister(def *KernelDef) {
	if err := r.Register(def); err != nil {
		panic(err)
	}
}

// Lookup returns a kernel definition or nil.
func (r *KernelRegistry) Lookup(name string) *KernelDef {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[name]
}

// Names lists registered kernels, sorted.
func (r *KernelRegistry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DefaultKernels is the process-global registry. The rodinia package and
// examples register their kernels here at init time.
var DefaultKernels = NewKernelRegistry()

func init() {
	// vector_add: out[i] = a[i] + b[i], the canonical smoke-test kernel.
	DefaultKernels.MustRegister(&KernelDef{
		Name: "vector_add",
		Args: []ArgKind{ArgBuffer, ArgBuffer, ArgBuffer, ArgScalar},
		Run: func(env *KernelEnv) {
			a, b, out := env.Buf(0), env.Buf(1), env.Buf(2)
			n := int(env.U32(3))
			for i := 0; i < n; i++ {
				av := math.Float32frombits(binary.LittleEndian.Uint32(a[4*i:]))
				bv := math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
				binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(av+bv))
			}
		},
	})
	// saxpy: y[i] = alpha*x[i] + y[i].
	DefaultKernels.MustRegister(&KernelDef{
		Name: "saxpy",
		Args: []ArgKind{ArgScalar, ArgBuffer, ArgBuffer, ArgScalar},
		Run: func(env *KernelEnv) {
			alpha := env.F32(0)
			x, y := env.Buf(1), env.Buf(2)
			n := int(env.U32(3))
			for i := 0; i < n; i++ {
				xv := math.Float32frombits(binary.LittleEndian.Uint32(x[4*i:]))
				yv := math.Float32frombits(binary.LittleEndian.Uint32(y[4*i:]))
				binary.LittleEndian.PutUint32(y[4*i:], math.Float32bits(alpha*xv+yv))
			}
		},
	})
}
