package cl_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ava/internal/cl"
	"ava/internal/devsim"
	"ava/internal/marshal"
	"ava/internal/server"
	"ava/internal/stacktest"
)

// Additional conformance tests over both clients: reference counting,
// event queries, info-query two-phase protocol, and argument edge cases.

func TestRetainReleaseRefcounts(t *testing.T) {
	// Retain/release pairs must keep objects alive exactly until the last
	// release (native path; the remote path shares the silo logic).
	silo := newSilo()
	c := cl.NewNative(silo)
	ctx, _, q := bootstrap(t, c)
	_ = q

	buf, err := c.CreateBuffer(ctx, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := cl.NativeMem(buf)
	if st := silo.RetainMemObject(m); st != cl.Success {
		t.Fatalf("retain = %d", st)
	}
	// First release: still alive (refcount 1).
	if err := c.ReleaseBuffer(buf); err != nil {
		t.Fatal(err)
	}
	if err := c.EnqueueWrite(q, buf, true, 0, make([]byte, 64)); err != nil {
		t.Fatalf("buffer died early: %v", err)
	}
	// Second release: dead.
	if err := c.ReleaseBuffer(buf); err != nil {
		t.Fatal(err)
	}
	if err := c.EnqueueWrite(q, buf, true, 0, make([]byte, 64)); err == nil {
		t.Fatal("write to dead buffer succeeded")
	}
}

func TestContextRefcountViaInfo(t *testing.T) {
	silo := newSilo()
	c := cl.NewNative(silo)
	ctx, _, _ := bootstrap(t, c)
	rc, err := c.ContextInfo(ctx, cl.ContextRefCount)
	if err != nil || binary.LittleEndian.Uint64(rc) != 1 {
		t.Fatalf("refcount = %v, %v", rc, err)
	}
}

func TestEventExecStatusQuery(t *testing.T) {
	for name, c := range clients(t) {
		t.Run(name, func(t *testing.T) {
			_, _, q := bootstrap(t, c)
			ev, err := c.EnqueueMarker(q)
			if err != nil {
				t.Fatal(err)
			}
			// Eager queues: the marker is complete on creation; the
			// profiling timestamps are ordered.
			qd, err := c.EventProfiling(ev, cl.ProfilingQueued)
			if err != nil {
				t.Fatal(err)
			}
			end, err := c.EventProfiling(ev, cl.ProfilingEnd)
			if err != nil {
				t.Fatal(err)
			}
			if end < qd {
				t.Fatalf("end %d < queued %d", end, qd)
			}
		})
	}
}

func TestInfoQueryTwoPhase(t *testing.T) {
	// Size query (nil buffer) then data query — the standard OpenCL
	// application idiom, exercised explicitly across the wire.
	for name, c := range clients(t) {
		t.Run(name, func(t *testing.T) {
			ps, _ := c.PlatformIDs()
			version, err := c.PlatformInfo(ps[0], cl.PlatformVersion)
			if err != nil || len(version) == 0 {
				t.Fatalf("version = %q, %v", version, err)
			}
		})
	}
}

func TestKernelWorkGroupInfo(t *testing.T) {
	silo := newSilo()
	c := cl.NewNative(silo)
	ctx, dev, _ := bootstrap(t, c)
	prog, _ := c.CreateProgram(ctx, "vector_add")
	c.BuildProgram(prog, "")
	k, _ := c.CreateKernel(prog, "vector_add")
	km, ok := nativeKernel(k)
	if !ok {
		t.Fatal("not a native kernel ref")
	}
	_ = dev
	buf := make([]byte, 8)
	n, st := silo.GetKernelWorkGroupInfo(km, nil, cl.KernelWorkGroupSize, buf)
	if st != cl.Success || n != 8 || binary.LittleEndian.Uint64(buf) == 0 {
		t.Fatalf("wg info = %d bytes, st %d", n, st)
	}
}

// nativeKernel unwraps a native Ref to its kernel (test helper mirroring
// NativeMem).
func nativeKernel(r cl.Ref) (*cl.Kernel, bool) {
	return cl.NativeKernel(r)
}

func TestSetKernelArgErrors(t *testing.T) {
	for name, c := range clients(t) {
		t.Run(name, func(t *testing.T) {
			ctx, _, q := bootstrap(t, c)
			prog, _ := c.CreateProgram(ctx, "vector_add")
			c.BuildProgram(prog, "")
			k, _ := c.CreateKernel(prog, "vector_add")
			// clSetKernelArg is forwarded asynchronously: its failure
			// arrives via the next synchronization point (§4.2 error
			// deferral), so each probe is followed by a sync barrier.
			// Index out of range.
			if err := c.SetKernelArgScalar(k, 99, cl.ArgU32(1)); err == nil {
				c.Finish(q)
				if err2 := c.DeferredError(); err2 == nil {
					t.Fatal("bad arg index accepted")
				}
			}
			// Scalar where a buffer is declared.
			if err := c.SetKernelArgScalar(k, 0, cl.ArgU32(1)); err == nil {
				c.Finish(q)
				if err2 := c.DeferredError(); err2 == nil {
					t.Fatal("scalar bound to buffer slot")
				}
			}
		})
	}
}

func TestWaitListValidation(t *testing.T) {
	// A wait list naming a bogus event must be rejected server-side.
	for name, c := range clients(t) {
		if name == "native" {
			continue // wait lists are remoted-path plumbing
		}
		t.Run(name, func(t *testing.T) {
			rc := c.(*cl.RemoteClient)
			_, _, q := bootstrap(t, c)
			bogus := make([]byte, 8)
			binary.LittleEndian.PutUint64(bogus, 424242)
			ret, err := rc.Lib().Call("clWaitForEvents", uint32(1), bogus)
			if err != nil {
				t.Fatal(err)
			}
			if ret.Int == int64(cl.Success) {
				t.Fatal("bogus wait list accepted")
			}
			_ = q
		})
	}
}

func TestFillPatternValidation(t *testing.T) {
	for name, c := range clients(t) {
		t.Run(name, func(t *testing.T) {
			ctx, _, q := bootstrap(t, c)
			buf, _ := c.CreateBuffer(ctx, 1, 64)
			// Size not a multiple of the pattern: invalid.
			err := c.EnqueueFill(q, buf, []byte{1, 2, 3}, 0, 64)
			if err == nil {
				c.Finish(q)
				err = c.DeferredError()
			}
			if err == nil {
				t.Fatal("misaligned fill accepted")
			}
		})
	}
}

func TestEnqueueTaskSingleWorkItem(t *testing.T) {
	for name, c := range clients(t) {
		if name == "native" {
			continue // exercised through the remote wire format here
		}
		t.Run(name, func(t *testing.T) {
			rc := c.(*cl.RemoteClient)
			ctx, _, q := bootstrap(t, c)
			a, _ := c.CreateBuffer(ctx, 1, 4)
			b, _ := c.CreateBuffer(ctx, 1, 4)
			o, _ := c.CreateBuffer(ctx, 1, 4)
			c.EnqueueWrite(q, a, true, 0, []byte{0, 0, 128, 63}) // 1.0
			c.EnqueueWrite(q, b, true, 0, []byte{0, 0, 0, 64})   // 2.0
			prog, _ := c.CreateProgram(ctx, "vector_add")
			c.BuildProgram(prog, "")
			k, _ := c.CreateKernel(prog, "vector_add")
			c.SetKernelArgBuffer(k, 0, a)
			c.SetKernelArgBuffer(k, 1, b)
			c.SetKernelArgBuffer(k, 2, o)
			c.SetKernelArgScalar(k, 3, cl.ArgU32(1))
			ret, err := rc.Lib().Call("clEnqueueTask", q.Handle(), k.Handle(), uint32(0), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			_ = ret // async: success value
			if err := c.Finish(q); err != nil {
				t.Fatal(err)
			}
			out := make([]byte, 4)
			if err := c.EnqueueRead(q, o, true, 0, out); err != nil {
				t.Fatal(err)
			}
			if out[2] != 0x40 || out[3] != 0x40 { // 3.0f LE
				t.Fatalf("task result = % x", out)
			}
			if err := c.DeferredError(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMultiDeviceContext(t *testing.T) {
	// Two devices in one silo: a queue on device 1 must operate on
	// context buffers (which live on the context's primary device) and
	// run kernels on its own device, with busy time charged there.
	silo := cl.NewSilo(cl.Config{
		Devices: []devsim.Config{
			{Name: "gpu0", MemoryBytes: 16 << 20, ComputeUnits: 2},
			{Name: "gpu1", MemoryBytes: 16 << 20, ComputeUnits: 2},
		},
	})
	c := cl.NewNative(silo)
	ps, _ := c.PlatformIDs()
	ds, err := c.DeviceIDs(ps[0], cl.DeviceTypeGPU)
	if err != nil || len(ds) != 2 {
		t.Fatalf("devices: %v %v", ds, err)
	}
	ctx, err := c.CreateContext(ds)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := c.CreateQueue(ctx, ds[1], 0) // queue on the SECOND device
	if err != nil {
		t.Fatal(err)
	}
	buf, err := c.CreateBuffer(ctx, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	pat := bytes.Repeat([]byte{0x5C}, 1024)
	if err := c.EnqueueWrite(q1, buf, true, 0, pat); err != nil {
		t.Fatalf("write via second-device queue: %v", err)
	}
	got := make([]byte, 1024)
	if err := c.EnqueueRead(q1, buf, true, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat) {
		t.Fatal("contents lost across devices")
	}
	// Kernel launch on device 1 accounts busy time on device 1.
	prog, _ := c.CreateProgram(ctx, "vector_add")
	c.BuildProgram(prog, "")
	k, _ := c.CreateKernel(prog, "vector_add")
	a, _ := c.CreateBuffer(ctx, 1, 64)
	b, _ := c.CreateBuffer(ctx, 1, 64)
	o, _ := c.CreateBuffer(ctx, 1, 64)
	c.SetKernelArgBuffer(k, 0, a)
	c.SetKernelArgBuffer(k, 1, b)
	c.SetKernelArgBuffer(k, 2, o)
	c.SetKernelArgScalar(k, 3, cl.ArgU32(16))
	if err := c.EnqueueNDRange(q1, k, []uint64{16}, []uint64{16}); err != nil {
		t.Fatal(err)
	}
	d1 := ds[1]
	dsim, ok := cl.NativeDevice(d1)
	if !ok {
		t.Fatal("not a native device ref")
	}
	if dsim.Sim().Stats().KernelsRun != 1 {
		t.Fatal("kernel not executed on the queue's device")
	}
}

func TestSweepBogusHandles(t *testing.T) {
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, newSilo())
	stacktest.SweepBogusHandles(t, server.New(reg))
}

func TestSweepRandomArgs(t *testing.T) {
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, newSilo())
	stacktest.SweepRandomArgs(t, server.New(reg), 50)
}

func TestOrderingDomainsFollowFirstHandle(t *testing.T) {
	desc := cl.Descriptor()
	// Enqueues order on the command queue; clSetKernelArg orders on the
	// kernel it mutates. The dispatch pipeline serializes the two through
	// the shared kernel handle, so the split is safe — but the primary
	// domains must differ or per-queue parallelism disappears.
	for _, name := range []string{
		"clEnqueueNDRangeKernel", "clEnqueueWriteBuffer", "clFinish",
		"clSetKernelArg",
	} {
		fd, ok := desc.Lookup(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if fd.DomainIdx != 0 {
			t.Fatalf("%s DomainIdx = %d, want 0", name, fd.DomainIdx)
		}
	}
	// Two queues are two domains.
	fd, _ := desc.Lookup("clFinish")
	q1 := []marshal.Value{marshal.HandleVal(7)}
	q2 := []marshal.Value{marshal.HandleVal(8)}
	if fd.Domain(q1) == fd.Domain(q2) {
		t.Fatal("distinct queues mapped to one ordering domain")
	}
	// Discovery calls carry no input handle: fallback domain.
	gp, _ := desc.Lookup("clGetPlatformIDs")
	if gp.DomainIdx != -1 {
		t.Fatalf("clGetPlatformIDs DomainIdx = %d, want -1", gp.DomainIdx)
	}
}
