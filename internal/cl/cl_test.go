package cl_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"ava"
	"ava/internal/bytesconv"
	"ava/internal/cl"
	"ava/internal/devsim"
	"ava/internal/server"
)

// newSilo builds a small silo for tests.
func newSilo() *cl.Silo {
	return cl.NewSilo(cl.Config{
		Devices: []devsim.Config{{Name: "test-gpu", MemoryBytes: 64 << 20, ComputeUnits: 4}},
	})
}

// clients returns the same logical client both ways: native and through
// the full AvA stack (guest -> router -> server -> silo).
func clients(t *testing.T) map[string]cl.Client {
	t.Helper()
	out := map[string]cl.Client{}

	out["native"] = cl.NewNative(newSilo())

	silo := newSilo()
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, silo)
	stack := ava.NewStack(desc, reg)
	lib, err := stack.AttachVM(ava.VMConfig{ID: 1, Name: "test-vm"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stack.Close)
	out["remote"] = cl.NewRemote(lib)
	return out
}

// bootstrap opens platform/device/context/queue, failing the test on error.
func bootstrap(t *testing.T, c cl.Client) (ctx, dev, q cl.Ref) {
	t.Helper()
	ps, err := c.PlatformIDs()
	if err != nil || len(ps) != 1 {
		t.Fatalf("platforms: %v %v", ps, err)
	}
	ds, err := c.DeviceIDs(ps[0], cl.DeviceTypeGPU)
	if err != nil || len(ds) != 1 {
		t.Fatalf("devices: %v %v", ds, err)
	}
	ctx, err = c.CreateContext(ds)
	if err != nil {
		t.Fatal(err)
	}
	q, err = c.CreateQueue(ctx, ds[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, ds[0], q
}

func TestDiscoveryInfo(t *testing.T) {
	for name, c := range clients(t) {
		t.Run(name, func(t *testing.T) {
			ps, err := c.PlatformIDs()
			if err != nil {
				t.Fatal(err)
			}
			pname, err := c.PlatformInfo(ps[0], cl.PlatformName)
			if err != nil || !strings.Contains(string(pname), "AvA") {
				t.Fatalf("platform name %q, %v", pname, err)
			}
			ds, err := c.DeviceIDs(ps[0], cl.DeviceTypeAll)
			if err != nil || len(ds) != 1 {
				t.Fatalf("devices: %v", err)
			}
			dname, err := c.DeviceInfo(ds[0], cl.DeviceName)
			if err != nil || string(dname) != "test-gpu" {
				t.Fatalf("device name %q, %v", dname, err)
			}
			mem, err := c.DeviceInfo(ds[0], cl.DeviceGlobalMemSize)
			if err != nil || binary.LittleEndian.Uint64(mem) != 64<<20 {
				t.Fatalf("mem size: %v %v", mem, err)
			}
		})
	}
}

func TestDeviceTypeFilter(t *testing.T) {
	for name, c := range clients(t) {
		t.Run(name, func(t *testing.T) {
			ps, _ := c.PlatformIDs()
			if _, err := c.DeviceIDs(ps[0], 0x12345); err == nil {
				t.Fatal("bogus device type accepted")
			}
		})
	}
}

func TestContextInfo(t *testing.T) {
	for name, c := range clients(t) {
		t.Run(name, func(t *testing.T) {
			ctx, _, _ := bootstrap(t, c)
			nd, err := c.ContextInfo(ctx, cl.ContextNumDevices)
			if err != nil || binary.LittleEndian.Uint64(nd) != 1 {
				t.Fatalf("num devices: %v %v", nd, err)
			}
		})
	}
}

func TestBufferWriteReadRoundTrip(t *testing.T) {
	for name, c := range clients(t) {
		t.Run(name, func(t *testing.T) {
			ctx, _, q := bootstrap(t, c)
			buf, err := c.CreateBuffer(ctx, 1, 4096)
			if err != nil {
				t.Fatal(err)
			}
			src := make([]byte, 4096)
			for i := range src {
				src[i] = byte(i * 7)
			}
			if err := c.EnqueueWrite(q, buf, true, 0, src); err != nil {
				t.Fatal(err)
			}
			dst := make([]byte, 4096)
			if err := c.EnqueueRead(q, buf, true, 0, dst); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(src, dst) {
				t.Fatal("buffer corrupted in transit")
			}
			if err := c.ReleaseBuffer(buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestNonBlockingWriteThenFinish(t *testing.T) {
	for name, c := range clients(t) {
		t.Run(name, func(t *testing.T) {
			ctx, _, q := bootstrap(t, c)
			buf, _ := c.CreateBuffer(ctx, 1, 64)
			src := bytes.Repeat([]byte{0xAB}, 64)
			// Non-blocking write: async on the remote path.
			if err := c.EnqueueWrite(q, buf, false, 0, src); err != nil {
				t.Fatal(err)
			}
			if err := c.Finish(q); err != nil {
				t.Fatal(err)
			}
			dst := make([]byte, 64)
			if err := c.EnqueueRead(q, buf, true, 0, dst); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(src, dst) {
				t.Fatal("non-blocking write lost")
			}
		})
	}
}

func TestVectorAddKernel(t *testing.T) {
	for name, c := range clients(t) {
		t.Run(name, func(t *testing.T) {
			ctx, _, q := bootstrap(t, c)
			const n = 1024
			a := make([]float32, n)
			b := make([]float32, n)
			for i := 0; i < n; i++ {
				a[i] = float32(i)
				b[i] = float32(2 * i)
			}
			bufA, _ := c.CreateBuffer(ctx, 1, 4*n)
			bufB, _ := c.CreateBuffer(ctx, 1, 4*n)
			bufOut, _ := c.CreateBuffer(ctx, 1, 4*n)
			if err := c.EnqueueWrite(q, bufA, true, 0, bytesconv.Float32Bytes(a)); err != nil {
				t.Fatal(err)
			}
			if err := c.EnqueueWrite(q, bufB, true, 0, bytesconv.Float32Bytes(b)); err != nil {
				t.Fatal(err)
			}

			prog, err := c.CreateProgram(ctx, "vector_add")
			if err != nil {
				t.Fatal(err)
			}
			if err := c.BuildProgram(prog, ""); err != nil {
				t.Fatal(err)
			}
			kern, err := c.CreateKernel(prog, "vector_add")
			if err != nil {
				t.Fatal(err)
			}
			if err := c.SetKernelArgBuffer(kern, 0, bufA); err != nil {
				t.Fatal(err)
			}
			if err := c.SetKernelArgBuffer(kern, 1, bufB); err != nil {
				t.Fatal(err)
			}
			if err := c.SetKernelArgBuffer(kern, 2, bufOut); err != nil {
				t.Fatal(err)
			}
			if err := c.SetKernelArgScalar(kern, 3, cl.ArgU32(n)); err != nil {
				t.Fatal(err)
			}
			if err := c.EnqueueNDRange(q, kern, []uint64{n}, []uint64{64}); err != nil {
				t.Fatal(err)
			}
			if err := c.Finish(q); err != nil {
				t.Fatal(err)
			}

			out := make([]byte, 4*n)
			if err := c.EnqueueRead(q, bufOut, true, 0, out); err != nil {
				t.Fatal(err)
			}
			res := bytesconv.ToFloat32(out)
			for i := 0; i < n; i++ {
				if res[i] != float32(3*i) {
					t.Fatalf("out[%d] = %v, want %v", i, res[i], float32(3*i))
				}
			}
			if err := c.DeferredError(); err != nil {
				t.Fatalf("deferred error: %v", err)
			}
		})
	}
}

func TestKernelEventProfiling(t *testing.T) {
	for name, c := range clients(t) {
		t.Run(name, func(t *testing.T) {
			ctx, _, q := bootstrap(t, c)
			bufA, _ := c.CreateBuffer(ctx, 1, 4*16)
			bufB, _ := c.CreateBuffer(ctx, 1, 4*16)
			bufO, _ := c.CreateBuffer(ctx, 1, 4*16)
			prog, _ := c.CreateProgram(ctx, "vector_add")
			c.BuildProgram(prog, "")
			kern, _ := c.CreateKernel(prog, "vector_add")
			c.SetKernelArgBuffer(kern, 0, bufA)
			c.SetKernelArgBuffer(kern, 1, bufB)
			c.SetKernelArgBuffer(kern, 2, bufO)
			c.SetKernelArgScalar(kern, 3, cl.ArgU32(16))
			ev, err := c.EnqueueNDRangeEvent(q, kern, []uint64{16}, []uint64{16})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.WaitForEvents([]cl.Ref{ev}); err != nil {
				t.Fatal(err)
			}
			start, err := c.EventProfiling(ev, cl.ProfilingStart)
			if err != nil {
				t.Fatal(err)
			}
			end, err := c.EventProfiling(ev, cl.ProfilingEnd)
			if err != nil {
				t.Fatal(err)
			}
			if end < start {
				t.Fatalf("end %d < start %d", end, start)
			}
			if err := c.ReleaseEvent(ev); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCopyAndFill(t *testing.T) {
	for name, c := range clients(t) {
		t.Run(name, func(t *testing.T) {
			ctx, _, q := bootstrap(t, c)
			a, _ := c.CreateBuffer(ctx, 1, 64)
			b, _ := c.CreateBuffer(ctx, 1, 64)
			if err := c.EnqueueFill(q, a, []byte{1, 2, 3, 4}, 0, 64); err != nil {
				t.Fatal(err)
			}
			if err := c.EnqueueCopy(q, a, b, 0, 0, 64); err != nil {
				t.Fatal(err)
			}
			if err := c.Finish(q); err != nil {
				t.Fatal(err)
			}
			dst := make([]byte, 64)
			if err := c.EnqueueRead(q, b, true, 0, dst); err != nil {
				t.Fatal(err)
			}
			for i := range dst {
				if dst[i] != byte(i%4+1) {
					t.Fatalf("dst[%d] = %d", i, dst[i])
				}
			}
		})
	}
}

func TestMarkerAndBarrier(t *testing.T) {
	for name, c := range clients(t) {
		t.Run(name, func(t *testing.T) {
			_, _, q := bootstrap(t, c)
			if err := c.EnqueueBarrier(q); err != nil {
				t.Fatal(err)
			}
			ev, err := c.EnqueueMarker(q)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.WaitForEvents([]cl.Ref{ev}); err != nil {
				t.Fatal(err)
			}
			if err := c.Flush(q); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBuildFailure(t *testing.T) {
	for name, c := range clients(t) {
		t.Run(name, func(t *testing.T) {
			ctx, _, _ := bootstrap(t, c)
			prog, err := c.CreateProgram(ctx, "no_such_kernel_anywhere")
			if err != nil {
				t.Fatal(err)
			}
			if err := c.BuildProgram(prog, ""); err == nil {
				t.Fatal("bogus program built")
			}
			log, err := c.ProgramBuildLog(prog)
			if err != nil || !strings.Contains(log, "no_such_kernel_anywhere") {
				t.Fatalf("build log %q, %v", log, err)
			}
			if _, err := c.CreateKernel(prog, "no_such_kernel_anywhere"); err == nil {
				t.Fatal("kernel created from failed build")
			}
		})
	}
}

func TestLaunchWithUnsetArgsFails(t *testing.T) {
	for name, c := range clients(t) {
		t.Run(name, func(t *testing.T) {
			ctx, _, q := bootstrap(t, c)
			prog, _ := c.CreateProgram(ctx, "vector_add")
			c.BuildProgram(prog, "")
			kern, _ := c.CreateKernel(prog, "vector_add")
			err := c.EnqueueNDRange(q, kern, []uint64{8}, []uint64{8})
			// Launch is forwarded async on the remote path, so the failure
			// may arrive immediately (native) or deferred (remote).
			if err == nil {
				c.Finish(q)
				err = c.DeferredError()
			}
			if err == nil {
				t.Fatal("launch with unset args succeeded")
			}
		})
	}
}

func TestUseAfterReleaseFails(t *testing.T) {
	for name, c := range clients(t) {
		t.Run(name, func(t *testing.T) {
			ctx, _, q := bootstrap(t, c)
			buf, _ := c.CreateBuffer(ctx, 1, 64)
			if err := c.ReleaseBuffer(buf); err != nil {
				t.Fatal(err)
			}
			if err := c.EnqueueRead(q, buf, true, 0, make([]byte, 64)); err == nil {
				t.Fatal("read of released buffer succeeded")
			}
		})
	}
}

func TestOutOfMemoryCode(t *testing.T) {
	// Native path only: the raw CL status must be allocation failure.
	c := cl.NewNative(newSilo())
	ctx, _, _ := bootstrap(t, c)
	_, err := c.CreateBuffer(ctx, 1, 1<<40)
	var ce *cl.Error
	if !errors.As(err, &ce) || ce.Status != cl.ErrMemObjectAllocFailure {
		t.Fatalf("err = %v", err)
	}
}

func TestSpecConstantsMatchGoConstants(t *testing.T) {
	// The spec text and the Go silo constants must agree; drift here
	// would silently corrupt every remoted call.
	desc := cl.Descriptor()
	api := desc.API
	checks := map[string]int64{
		"CL_SUCCESS":                       int64(cl.Success),
		"CL_MEM_OBJECT_ALLOCATION_FAILURE": int64(cl.ErrMemObjectAllocFailure),
		"CL_INVALID_VALUE":                 int64(cl.ErrInvalidValue),
		"CL_INVALID_CONTEXT":               int64(cl.ErrInvalidContext),
		"CL_INVALID_MEM_OBJECT":            int64(cl.ErrInvalidMemObject),
		"CL_INVALID_KERNEL":                int64(cl.ErrInvalidKernel),
		"CL_DEVICE_TYPE_GPU":               int64(cl.DeviceTypeGPU),
		"CL_PLATFORM_NAME":                 int64(cl.PlatformName),
		"CL_DEVICE_NAME":                   int64(cl.DeviceName),
		"CL_DEVICE_GLOBAL_MEM_SIZE":        int64(cl.DeviceGlobalMemSize),
		"CL_PROFILING_COMMAND_START":       int64(cl.ProfilingStart),
		"CL_PROFILING_COMMAND_END":         int64(cl.ProfilingEnd),
		"CL_PROGRAM_BUILD_LOG":             int64(cl.ProgramBuildLog),
		"CL_KERNEL_WORK_GROUP_SIZE":        int64(cl.KernelWorkGroupSize),
	}
	for name, want := range checks {
		got, ok := api.Const(name)
		if !ok || got != want {
			t.Errorf("const %s: spec %d (%t), Go %d", name, got, ok, want)
		}
	}
}

func TestSpecHas39Functions(t *testing.T) {
	desc := cl.Descriptor()
	if len(desc.Funcs) != 39 {
		t.Fatalf("spec declares %d functions, the paper virtualizes 39", len(desc.Funcs))
	}
}

func TestAllFunctionsHaveHandlers(t *testing.T) {
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, newSilo())
	if missing := reg.Unregistered(); len(missing) != 0 {
		t.Fatalf("unhandled functions: %v", missing)
	}
}

func TestSetKernelArgIsAsyncInSpec(t *testing.T) {
	// §4.2: clSetKernelArg is forwarded asynchronously by annotation.
	desc := cl.Descriptor()
	fd, ok := desc.Lookup("clSetKernelArg")
	if !ok {
		t.Fatal("clSetKernelArg missing")
	}
	sync, err := fd.IsSync(desc.API, nil)
	if err != nil || sync {
		t.Fatalf("clSetKernelArg sync=%t err=%v", sync, err)
	}
}

func TestReadBufferConditionalSync(t *testing.T) {
	desc := cl.Descriptor()
	fd, _ := desc.Lookup("clEnqueueReadBuffer")
	if fd.CondParamIdx != 2 {
		t.Fatalf("cond param idx = %d", fd.CondParamIdx)
	}
}

func TestRemoteAsyncCallsActuallyBatched(t *testing.T) {
	silo := newSilo()
	desc := cl.Descriptor()
	reg := server.NewRegistry(desc)
	cl.BindServer(reg, silo)
	stack := ava.NewStack(desc, reg)
	defer stack.Close()
	lib, _ := stack.AttachVM(ava.VMConfig{ID: 1, Name: "vm"})
	c := cl.NewRemote(lib)

	ctx, _, q := bootstrap(t, c)
	bufA, _ := c.CreateBuffer(ctx, 1, 4*64)
	bufB, _ := c.CreateBuffer(ctx, 1, 4*64)
	bufO, _ := c.CreateBuffer(ctx, 1, 4*64)
	prog, _ := c.CreateProgram(ctx, "vector_add")
	c.BuildProgram(prog, "")
	kern, _ := c.CreateKernel(prog, "vector_add")

	before := lib.Stats()
	// 4 SetKernelArg + 1 NDRange: all async, delivered by the Finish.
	c.SetKernelArgBuffer(kern, 0, bufA)
	c.SetKernelArgBuffer(kern, 1, bufB)
	c.SetKernelArgBuffer(kern, 2, bufO)
	c.SetKernelArgScalar(kern, 3, cl.ArgU32(64))
	c.EnqueueNDRange(q, kern, []uint64{64}, []uint64{64})
	mid := lib.Stats()
	if mid.SyncCalls != before.SyncCalls {
		t.Fatalf("async calls performed sync round trips: %+v -> %+v", before, mid)
	}
	if err := c.Finish(q); err != nil {
		t.Fatal(err)
	}
	after := lib.Stats()
	if after.AsyncCalls-before.AsyncCalls != 5 {
		t.Fatalf("async calls = %d, want 5", after.AsyncCalls-before.AsyncCalls)
	}
	if after.Batches-mid.Batches != 1 {
		t.Fatalf("flush used %d transport frames, want 1", after.Batches-mid.Batches)
	}
}

func TestKernelRegistryDuplicate(t *testing.T) {
	r := cl.NewKernelRegistry()
	def := &cl.KernelDef{Name: "k", Args: nil, Run: func(*cl.KernelEnv) {}}
	if err := r.Register(def); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(def); err == nil {
		t.Fatal("duplicate kernel registered")
	}
	if err := r.Register(&cl.KernelDef{}); err == nil {
		t.Fatal("malformed kernel registered")
	}
	if r.Lookup("k") == nil || r.Lookup("ghost") != nil {
		t.Fatal("lookup broken")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "k" {
		t.Fatalf("names = %v", names)
	}
}

func TestDefaultKernelsPresent(t *testing.T) {
	for _, k := range []string{"vector_add", "saxpy"} {
		if cl.DefaultKernels.Lookup(k) == nil {
			t.Errorf("default kernel %q missing", k)
		}
	}
}

func TestEvictionTransparency(t *testing.T) {
	// Buffer-granularity swap (§4.3): evicting and touching a buffer must
	// be invisible to the application.
	silo := newSilo()
	c := cl.NewNative(silo)
	ctx, _, q := bootstrap(t, c)
	buf, _ := c.CreateBuffer(ctx, 1, 128)
	src := bytes.Repeat([]byte{0x5A}, 128)
	c.EnqueueWrite(q, buf, true, 0, src)

	m := refMem(t, buf)
	if err := silo.EvictBuffer(m); err != nil {
		t.Fatal(err)
	}
	if m.Resident() {
		t.Fatal("still resident after evict")
	}
	dst := make([]byte, 128)
	if err := c.EnqueueRead(q, buf, true, 0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("contents lost across eviction")
	}
	if !m.Resident() {
		t.Fatal("buffer not faulted back in")
	}
}

// refMem digs the *Mem out of a native Ref via the exported snapshot API.
func refMem(t *testing.T, r cl.Ref) *cl.Mem {
	t.Helper()
	m, ok := cl.NativeMem(r)
	if !ok {
		t.Fatal("not a native mem ref")
	}
	return m
}
