package cl

import (
	"encoding/binary"
	"fmt"
	"math"

	"ava/internal/marshal"
)

// Error is an OpenCL failure status surfaced through the Client facade.
type Error struct {
	Op     string
	Status Status
}

func (e *Error) Error() string { return fmt.Sprintf("cl: %s: status %d", e.Op, e.Status) }

func clErr(op string, st Status) error {
	if st == Success {
		return nil
	}
	return &Error{Op: op, Status: st}
}

// Ref is an opaque reference to an OpenCL object, valid for the Client
// that produced it. For a native client it wraps the silo object; for a
// remote client it wraps the guest-visible handle — the same duality a
// real application never observes.
type Ref struct {
	obj any
	h   marshal.Handle
}

// Nil reports whether the reference is empty.
func (r Ref) Nil() bool { return r.obj == nil && r.h == 0 }

// Handle exposes the remote handle (remote refs only); used by tests and
// the migration engine.
func (r Ref) Handle() marshal.Handle { return r.h }

// NativeMem unwraps a native client Ref to its buffer object; ok is false
// for remote refs or non-buffer refs. The swap manager and tests use it.
func NativeMem(r Ref) (*Mem, bool) {
	m, ok := r.obj.(*Mem)
	return m, ok
}

// NativeKernel unwraps a native client Ref to its kernel object.
func NativeKernel(r Ref) (*Kernel, bool) {
	k, ok := r.obj.(*Kernel)
	return k, ok
}

// Client is the uniform programming surface over the 39 virtualized
// functions. The Rodinia workloads and examples are written against this
// interface, so the identical program runs on the native silo (the paper's
// bare-metal baseline) and through the full AvA stack.
type Client interface {
	PlatformIDs() ([]Ref, error)
	PlatformInfo(p Ref, param uint32) ([]byte, error)
	DeviceIDs(p Ref, devType uint64) ([]Ref, error)
	DeviceInfo(d Ref, param uint32) ([]byte, error)

	CreateContext(devs []Ref) (Ref, error)
	ReleaseContext(c Ref) error
	ContextInfo(c Ref, param uint32) ([]byte, error)

	CreateQueue(c, d Ref, properties uint64) (Ref, error)
	ReleaseQueue(q Ref) error

	CreateBuffer(c Ref, flags uint64, size uint64) (Ref, error)
	ReleaseBuffer(m Ref) error

	CreateProgram(c Ref, source string) (Ref, error)
	BuildProgram(p Ref, options string) error
	ProgramBuildLog(p Ref) (string, error)
	ReleaseProgram(p Ref) error

	CreateKernel(p Ref, name string) (Ref, error)
	ReleaseKernel(k Ref) error
	SetKernelArgBuffer(k Ref, index uint32, m Ref) error
	SetKernelArgScalar(k Ref, index uint32, val []byte) error

	EnqueueNDRange(q, k Ref, global, local []uint64) error
	EnqueueNDRangeEvent(q, k Ref, global, local []uint64) (Ref, error)
	EnqueueRead(q, m Ref, blocking bool, offset uint64, dst []byte) error
	EnqueueWrite(q, m Ref, blocking bool, offset uint64, src []byte) error
	EnqueueCopy(q, src, dst Ref, srcOff, dstOff, size uint64) error
	EnqueueFill(q, m Ref, pattern []byte, offset, size uint64) error
	EnqueueMarker(q Ref) (Ref, error)
	EnqueueBarrier(q Ref) error

	Finish(q Ref) error
	Flush(q Ref) error
	WaitForEvents(events []Ref) error
	EventProfiling(e Ref, param uint32) (uint64, error)
	ReleaseEvent(e Ref) error

	// DeferredError surfaces failures of asynchronously forwarded calls
	// (always nil on the native path, where no call is ever deferred).
	DeferredError() error
}

// Scalar argument encoding helpers shared by workloads.

// ArgU32 encodes a uint32 kernel argument.
func ArgU32(v uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return b
}

// ArgI32 encodes an int32 kernel argument.
func ArgI32(v int32) []byte { return ArgU32(uint32(v)) }

// ArgF32 encodes a float32 kernel argument.
func ArgF32(v float32) []byte { return ArgU32(math.Float32bits(v)) }

// ArgU64 encodes a uint64 kernel argument.
func ArgU64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// --- Native client ---

// NativeClient executes directly against the silo: the paper's native
// (pass-through) baseline, with no marshalling, transport or routing.
type NativeClient struct {
	silo *Silo
}

// NewNative returns a client bound directly to silo.
func NewNative(s *Silo) *NativeClient { return &NativeClient{silo: s} }

func nref(obj any) Ref { return Ref{obj: obj} }

func (c *NativeClient) PlatformIDs() ([]Ref, error) {
	ps := c.silo.GetPlatformIDs()
	out := make([]Ref, len(ps))
	for i, p := range ps {
		out[i] = nref(p)
	}
	return out, nil
}

func (c *NativeClient) PlatformInfo(p Ref, param uint32) ([]byte, error) {
	pl, _ := p.obj.(*Platform)
	n, st := c.silo.GetPlatformInfo(pl, param, nil)
	if st != Success {
		return nil, clErr("clGetPlatformInfo", st)
	}
	buf := make([]byte, n)
	c.silo.GetPlatformInfo(pl, param, buf)
	return buf, nil
}

func (c *NativeClient) DeviceIDs(p Ref, devType uint64) ([]Ref, error) {
	pl, _ := p.obj.(*Platform)
	ds, st := c.silo.GetDeviceIDs(pl, devType)
	if st != Success {
		return nil, clErr("clGetDeviceIDs", st)
	}
	out := make([]Ref, len(ds))
	for i, d := range ds {
		out[i] = nref(d)
	}
	return out, nil
}

func (c *NativeClient) DeviceInfo(d Ref, param uint32) ([]byte, error) {
	dv, _ := d.obj.(*Device)
	n, st := c.silo.GetDeviceInfo(dv, param, nil)
	if st != Success {
		return nil, clErr("clGetDeviceInfo", st)
	}
	buf := make([]byte, n)
	c.silo.GetDeviceInfo(dv, param, buf)
	return buf, nil
}

func (c *NativeClient) CreateContext(devs []Ref) (Ref, error) {
	ds := make([]*Device, len(devs))
	for i, r := range devs {
		ds[i], _ = r.obj.(*Device)
	}
	ctx, st := c.silo.CreateContext(ds)
	if st != Success {
		return Ref{}, clErr("clCreateContext", st)
	}
	return nref(ctx), nil
}

func (c *NativeClient) ReleaseContext(r Ref) error {
	ctx, _ := r.obj.(*Context)
	return clErr("clReleaseContext", c.silo.ReleaseContext(ctx))
}

func (c *NativeClient) ContextInfo(r Ref, param uint32) ([]byte, error) {
	ctx, _ := r.obj.(*Context)
	n, st := c.silo.GetContextInfo(ctx, param, nil)
	if st != Success {
		return nil, clErr("clGetContextInfo", st)
	}
	buf := make([]byte, n)
	c.silo.GetContextInfo(ctx, param, buf)
	return buf, nil
}

func (c *NativeClient) CreateQueue(cr, dr Ref, properties uint64) (Ref, error) {
	ctx, _ := cr.obj.(*Context)
	dev, _ := dr.obj.(*Device)
	q, st := c.silo.CreateCommandQueue(ctx, dev, properties)
	if st != Success {
		return Ref{}, clErr("clCreateCommandQueue", st)
	}
	return nref(q), nil
}

func (c *NativeClient) ReleaseQueue(r Ref) error {
	q, _ := r.obj.(*Queue)
	return clErr("clReleaseCommandQueue", c.silo.ReleaseCommandQueue(q))
}

func (c *NativeClient) CreateBuffer(cr Ref, flags uint64, size uint64) (Ref, error) {
	ctx, _ := cr.obj.(*Context)
	m, st := c.silo.CreateBuffer(ctx, flags, size)
	if st != Success {
		return Ref{}, clErr("clCreateBuffer", st)
	}
	return nref(m), nil
}

func (c *NativeClient) ReleaseBuffer(r Ref) error {
	m, _ := r.obj.(*Mem)
	return clErr("clReleaseMemObject", c.silo.ReleaseMemObject(m))
}

func (c *NativeClient) CreateProgram(cr Ref, source string) (Ref, error) {
	ctx, _ := cr.obj.(*Context)
	p, st := c.silo.CreateProgramWithSource(ctx, source)
	if st != Success {
		return Ref{}, clErr("clCreateProgramWithSource", st)
	}
	return nref(p), nil
}

func (c *NativeClient) BuildProgram(r Ref, options string) error {
	p, _ := r.obj.(*Program)
	return clErr("clBuildProgram", c.silo.BuildProgram(p, options))
}

func (c *NativeClient) ProgramBuildLog(r Ref) (string, error) {
	p, _ := r.obj.(*Program)
	n, st := c.silo.GetProgramBuildInfo(p, ProgramBuildLog, nil)
	if st != Success {
		return "", clErr("clGetProgramBuildInfo", st)
	}
	buf := make([]byte, n)
	c.silo.GetProgramBuildInfo(p, ProgramBuildLog, buf)
	return string(buf), nil
}

func (c *NativeClient) ReleaseProgram(r Ref) error {
	p, _ := r.obj.(*Program)
	return clErr("clReleaseProgram", c.silo.ReleaseProgram(p))
}

func (c *NativeClient) CreateKernel(r Ref, name string) (Ref, error) {
	p, _ := r.obj.(*Program)
	k, st := c.silo.CreateKernel(p, name)
	if st != Success {
		return Ref{}, clErr("clCreateKernel", st)
	}
	return nref(k), nil
}

func (c *NativeClient) ReleaseKernel(r Ref) error {
	k, _ := r.obj.(*Kernel)
	return clErr("clReleaseKernel", c.silo.ReleaseKernel(k))
}

func (c *NativeClient) SetKernelArgBuffer(kr Ref, index uint32, mr Ref) error {
	k, _ := kr.obj.(*Kernel)
	m, _ := mr.obj.(*Mem)
	return clErr("clSetKernelArg", c.silo.SetKernelArgBuffer(k, index, m))
}

func (c *NativeClient) SetKernelArgScalar(kr Ref, index uint32, val []byte) error {
	k, _ := kr.obj.(*Kernel)
	return clErr("clSetKernelArg", c.silo.SetKernelArgBytes(k, index, val))
}

func (c *NativeClient) EnqueueNDRange(qr, kr Ref, global, local []uint64) error {
	_, err := c.EnqueueNDRangeEvent(qr, kr, global, local)
	return err
}

func (c *NativeClient) EnqueueNDRangeEvent(qr, kr Ref, global, local []uint64) (Ref, error) {
	q, _ := qr.obj.(*Queue)
	k, _ := kr.obj.(*Kernel)
	ev, st := c.silo.EnqueueNDRangeKernel(q, k, global, local)
	if st != Success {
		return Ref{}, clErr("clEnqueueNDRangeKernel", st)
	}
	return nref(ev), nil
}

func (c *NativeClient) EnqueueRead(qr, mr Ref, blocking bool, offset uint64, dst []byte) error {
	q, _ := qr.obj.(*Queue)
	m, _ := mr.obj.(*Mem)
	_, st := c.silo.EnqueueReadBuffer(q, m, offset, dst)
	return clErr("clEnqueueReadBuffer", st)
}

func (c *NativeClient) EnqueueWrite(qr, mr Ref, blocking bool, offset uint64, src []byte) error {
	q, _ := qr.obj.(*Queue)
	m, _ := mr.obj.(*Mem)
	_, st := c.silo.EnqueueWriteBuffer(q, m, offset, src)
	return clErr("clEnqueueWriteBuffer", st)
}

func (c *NativeClient) EnqueueCopy(qr, sr, dr Ref, srcOff, dstOff, size uint64) error {
	q, _ := qr.obj.(*Queue)
	s, _ := sr.obj.(*Mem)
	d, _ := dr.obj.(*Mem)
	_, st := c.silo.EnqueueCopyBuffer(q, s, d, srcOff, dstOff, size)
	return clErr("clEnqueueCopyBuffer", st)
}

func (c *NativeClient) EnqueueFill(qr, mr Ref, pattern []byte, offset, size uint64) error {
	q, _ := qr.obj.(*Queue)
	m, _ := mr.obj.(*Mem)
	_, st := c.silo.EnqueueFillBuffer(q, m, pattern, offset, size)
	return clErr("clEnqueueFillBuffer", st)
}

func (c *NativeClient) EnqueueMarker(qr Ref) (Ref, error) {
	q, _ := qr.obj.(*Queue)
	ev, st := c.silo.EnqueueMarker(q)
	if st != Success {
		return Ref{}, clErr("clEnqueueMarker", st)
	}
	return nref(ev), nil
}

func (c *NativeClient) EnqueueBarrier(qr Ref) error {
	q, _ := qr.obj.(*Queue)
	return clErr("clEnqueueBarrier", c.silo.EnqueueBarrier(q))
}

func (c *NativeClient) Finish(qr Ref) error {
	q, _ := qr.obj.(*Queue)
	return clErr("clFinish", c.silo.Finish(q))
}

func (c *NativeClient) Flush(qr Ref) error {
	q, _ := qr.obj.(*Queue)
	return clErr("clFlush", c.silo.Flush(q))
}

func (c *NativeClient) WaitForEvents(events []Ref) error {
	evs := make([]*Event, len(events))
	for i, r := range events {
		evs[i], _ = r.obj.(*Event)
	}
	return clErr("clWaitForEvents", c.silo.WaitForEvents(evs))
}

func (c *NativeClient) EventProfiling(er Ref, param uint32) (uint64, error) {
	e, _ := er.obj.(*Event)
	buf := make([]byte, 8)
	if _, st := c.silo.GetEventProfilingInfo(e, param, buf); st != Success {
		return 0, clErr("clGetEventProfilingInfo", st)
	}
	return binary.LittleEndian.Uint64(buf), nil
}

func (c *NativeClient) ReleaseEvent(er Ref) error {
	e, _ := er.obj.(*Event)
	return clErr("clReleaseEvent", c.silo.ReleaseEvent(e))
}

func (c *NativeClient) DeferredError() error { return nil }

var _ Client = (*NativeClient)(nil)

// NativeDevice unwraps a native client Ref to its device object.
func NativeDevice(r Ref) (*Device, bool) {
	d, ok := r.obj.(*Device)
	return d, ok
}
