package cl

import (
	"fmt"

	"ava/internal/marshal"
)

// MigrationAdapter provides the migration engine's silo-specific state
// operations for OpenCL objects: buffers carry device memory contents that
// must be copied out at capture and synthesized back at restore; every
// other object kind is fully reconstructed by replaying its recorded
// creation and modification calls.
type MigrationAdapter struct {
	Silo *Silo
}

// SnapshotObject implements migrate.Adapter.
func (a MigrationAdapter) SnapshotObject(obj any) ([]byte, bool, error) {
	m, ok := obj.(*Mem)
	if !ok {
		return nil, false, nil
	}
	b, err := a.Silo.SnapshotBuffer(m)
	return b, true, err
}

// SnapshotObjectDelta implements the failover guardian's DeltaSnapshotter:
// it drains the buffer's dirty-range tracking into a marshal.ObjectDelta
// holding only the ranges written since the previous delta snapshot. The
// returned delta's Handle is left zero — the caller keys it. stateful is
// false for non-buffer objects (nothing to checkpoint). Draining advances
// the buffer's watermark, so the caller must either commit the delta or
// force a full snapshot next round (the guardian does exactly that on an
// aborted checkpoint).
func (a MigrationAdapter) SnapshotObjectDelta(obj any) (marshal.ObjectDelta, bool, error) {
	m, ok := obj.(*Mem)
	if !ok {
		return marshal.ObjectDelta{}, false, nil
	}
	size, full, ranges, err := a.Silo.SnapshotBufferDelta(m)
	if err != nil {
		return marshal.ObjectDelta{}, true, err
	}
	d := marshal.ObjectDelta{BaseLen: size, Full: full}
	for _, r := range ranges {
		d.Ranges = append(d.Ranges, marshal.DeltaRange{Off: r.Off, Bytes: r.Data})
	}
	return d, true, nil
}

// RestoreObject implements migrate.Adapter.
func (a MigrationAdapter) RestoreObject(obj any, state []byte) error {
	m, ok := obj.(*Mem)
	if !ok {
		return fmt.Errorf("cl: state restore for non-buffer object %T", obj)
	}
	return a.Silo.RestoreBuffer(m, state)
}
