package cl

import "fmt"

// MigrationAdapter provides the migration engine's silo-specific state
// operations for OpenCL objects: buffers carry device memory contents that
// must be copied out at capture and synthesized back at restore; every
// other object kind is fully reconstructed by replaying its recorded
// creation and modification calls.
type MigrationAdapter struct {
	Silo *Silo
}

// SnapshotObject implements migrate.Adapter.
func (a MigrationAdapter) SnapshotObject(obj any) ([]byte, bool, error) {
	m, ok := obj.(*Mem)
	if !ok {
		return nil, false, nil
	}
	b, err := a.Silo.SnapshotBuffer(m)
	return b, true, err
}

// RestoreObject implements migrate.Adapter.
func (a MigrationAdapter) RestoreObject(obj any, state []byte) error {
	m, ok := obj.(*Mem)
	if !ok {
		return fmt.Errorf("cl: state restore for non-buffer object %T", obj)
	}
	return a.Silo.RestoreBuffer(m, state)
}
