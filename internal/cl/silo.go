// Package cl is the OpenCL-like accelerator silo.
//
// The paper evaluates AvA by para-virtualizing 39 OpenCL functions against
// an NVIDIA GTX 1080. No GPU exists here, so this package provides the
// closest synthetic equivalent: a complete software implementation of the
// same 39-function surface (platforms, devices, contexts, command queues,
// buffers, programs, kernels, events) executing real compute kernels on the
// devsim hardware model. AvA itself never looks inside this package — it
// interposes the public API only — which is precisely the property (§2)
// that makes API remoting the workable technique for silos.
//
// Simplifications relative to Khronos OpenCL, mirrored in the shipped
// specification and documented in DESIGN.md: kernels are Go functions
// registered in a KernelRegistry rather than compiled from OpenCL C (the
// program "source" names the registry entries); command queues are in-order
// and execute eagerly at enqueue time; clCreateBuffer takes no host_ptr.
package cl

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"ava/internal/clock"
	"ava/internal/devsim"
)

// Status is an OpenCL error code (cl_int).
type Status = int32

// OpenCL status codes, mirroring the spec constants (verified by test).
const (
	Success                  Status = 0
	ErrDeviceNotFound        Status = -1
	ErrMemObjectAllocFailure Status = -4
	ErrOutOfResources        Status = -5
	ErrBuildProgramFailure   Status = -11
	ErrInvalidValue          Status = -30
	ErrInvalidPlatform       Status = -32
	ErrInvalidDevice         Status = -33
	ErrInvalidContext        Status = -34
	ErrInvalidCommandQueue   Status = -36
	ErrInvalidMemObject      Status = -38
	ErrInvalidProgram        Status = -44
	ErrInvalidProgramExe     Status = -45
	ErrInvalidKernelName     Status = -46
	ErrInvalidKernel         Status = -48
	ErrInvalidArgIndex       Status = -49
	ErrInvalidKernelArgs     Status = -52
	ErrInvalidWorkDim        Status = -53
	ErrInvalidEvent          Status = -58
	ErrInvalidOperation      Status = -59
)

// Device/info constants mirrored from the spec.
const (
	DeviceTypeGPU uint64 = 4
	DeviceTypeAll uint64 = 0xFFFFFFFF

	PlatformName          uint32 = 0x0902
	PlatformVersion       uint32 = 0x0901
	DeviceName            uint32 = 0x102B
	DeviceType            uint32 = 0x1000
	DeviceMaxComputeUnits uint32 = 0x1002
	DeviceGlobalMemSize   uint32 = 0x101F
	DeviceMaxWorkGroup    uint32 = 0x1004
	ContextNumDevices     uint32 = 0x1083
	ContextRefCount       uint32 = 0x1080
	ProgramBuildStatus    uint32 = 0x1181
	ProgramBuildLog       uint32 = 0x1183
	KernelWorkGroupSize   uint32 = 0x11B0
	EventExecStatus       uint32 = 0x11D3
	ProfilingQueued       uint32 = 0x1280
	ProfilingStart        uint32 = 0x1282
	ProfilingEnd          uint32 = 0x1283

	BuildSuccess int64 = 0
	BuildError   int64 = -2
	Complete     int64 = 0
)

// Config describes a silo instance.
type Config struct {
	// PlatformName, default "AvA Software Platform".
	PlatformName string
	// Devices, default one 4 GiB GPU with 8 CUs.
	Devices []devsim.Config
	// Clock for event timestamps and devsim; nil = wall clock.
	Clock clock.Clock
	// Kernels; nil selects the process-global default registry.
	Kernels *KernelRegistry
}

// Platform is a cl_platform_id.
type Platform struct {
	silo    *Silo
	name    string
	version string
	devices []*Device
}

// Device is a cl_device_id.
type Device struct {
	platform *Platform
	sim      *devsim.Device
}

// Sim exposes the underlying simulated hardware (benchmarks and swap need it).
func (d *Device) Sim() *devsim.Device { return d.sim }

// Context is a cl_context.
type Context struct {
	silo    *Silo
	devices []*Device
	owner   string // accounting identity: VM/context name
	refs    int32
	dead    bool
}

// SetOwner labels the context for device-time accounting.
func (c *Context) SetOwner(owner string) { c.owner = owner }

// Queue is a cl_command_queue.
type Queue struct {
	ctx       *Context
	device    *Device
	profiling bool
	refs      int32
	dead      bool
}

// Mem is a cl_mem buffer object.
type Mem struct {
	ctx   *Context
	size  uint64
	flags uint64
	refs  int32
	dead  bool

	addr     devsim.Addr
	resident bool
	stash    []byte // host copy while evicted (swap) — nil when resident
	lastUse  int64  // monotonic use counter for LRU eviction

	// dirty tracks byte ranges written since the last delta watermark
	// (SnapshotBufferDelta); a fresh buffer starts clean. Guarded by the
	// silo mutex like the rest of the object.
	dirty dirtySet
}

// Size returns the buffer's size in bytes.
func (m *Mem) Size() uint64 { return m.size }

// Resident reports whether the buffer currently occupies device memory.
func (m *Mem) Resident() bool { return m.resident }

// Program is a cl_program.
type Program struct {
	ctx    *Context
	source string
	built  bool
	log    string
	refs   int32
	dead   bool
	names  []string // kernel names resolved at build
}

// Kernel is a cl_kernel.
type Kernel struct {
	program *Program
	def     *KernelDef
	args    []kernelArg
	refs    int32
	dead    bool
}

// Name returns the kernel's registry name.
func (k *Kernel) Name() string { return k.def.Name }

type kernelArg struct {
	set bool
	buf *Mem   // for ArgBuffer
	raw []byte // for ArgScalar (and the wire image of buffer handles)
}

// Event is a cl_event.
type Event struct {
	status  int64
	queued  time.Time
	start   time.Time
	end     time.Time
	refs    int32
	command string
}

// Silo is one OpenCL implementation instance over simulated hardware.
type Silo struct {
	mu       sync.Mutex
	platform *Platform
	clk      clock.Clock
	kernels  *KernelRegistry
	useTick  int64
	live     map[*Mem]struct{} // live buffers, for the swap manager
}

// NewSilo builds a silo from cfg.
func NewSilo(cfg Config) *Silo {
	if cfg.PlatformName == "" {
		cfg.PlatformName = "AvA Software Platform"
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if len(cfg.Devices) == 0 {
		cfg.Devices = []devsim.Config{{
			Name:         "ava-sim-gpu0",
			MemoryBytes:  4 << 30,
			ComputeUnits: 8,
		}}
	}
	if cfg.Kernels == nil {
		cfg.Kernels = DefaultKernels
	}
	s := &Silo{clk: cfg.Clock, kernels: cfg.Kernels, live: make(map[*Mem]struct{})}
	p := &Platform{silo: s, name: cfg.PlatformName, version: "OpenCL 1.2 AvA-sim"}
	for i := range cfg.Devices {
		dc := cfg.Devices[i]
		if dc.Clock == nil {
			dc.Clock = cfg.Clock
		}
		p.devices = append(p.devices, &Device{platform: p, sim: devsim.New(dc)})
	}
	s.platform = p
	return s
}

// Kernels returns the silo's kernel registry.
func (s *Silo) Kernels() *KernelRegistry { return s.kernels }

// --- Platform and device discovery ---

// GetPlatformIDs returns the available platforms.
func (s *Silo) GetPlatformIDs() []*Platform { return []*Platform{s.platform} }

// GetDeviceIDs returns the platform's devices matching devType.
func (s *Silo) GetDeviceIDs(p *Platform, devType uint64) ([]*Device, Status) {
	if p == nil {
		return nil, ErrInvalidPlatform
	}
	if devType != DeviceTypeGPU && devType != DeviceTypeAll {
		return nil, ErrDeviceNotFound
	}
	return p.devices, Success
}

// infoBytes encodes an info query result and reports the full size.
func infoBytes(dst []byte, val []byte) (uint64, Status) {
	if dst != nil {
		copy(dst, val)
	}
	return uint64(len(val)), Success
}

func u64Bytes(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

// GetPlatformInfo answers platform info queries.
func (s *Silo) GetPlatformInfo(p *Platform, param uint32, dst []byte) (uint64, Status) {
	if p == nil {
		return 0, ErrInvalidPlatform
	}
	switch param {
	case PlatformName:
		return infoBytes(dst, []byte(p.name))
	case PlatformVersion:
		return infoBytes(dst, []byte(p.version))
	}
	return 0, ErrInvalidValue
}

// GetDeviceInfo answers device info queries.
func (s *Silo) GetDeviceInfo(d *Device, param uint32, dst []byte) (uint64, Status) {
	if d == nil {
		return 0, ErrInvalidDevice
	}
	switch param {
	case DeviceName:
		return infoBytes(dst, []byte(d.sim.Name()))
	case DeviceType:
		return infoBytes(dst, u64Bytes(DeviceTypeGPU))
	case DeviceMaxComputeUnits:
		return infoBytes(dst, u64Bytes(uint64(8)))
	case DeviceGlobalMemSize:
		return infoBytes(dst, u64Bytes(d.sim.Capacity()))
	case DeviceMaxWorkGroup:
		return infoBytes(dst, u64Bytes(1024))
	}
	return 0, ErrInvalidValue
}

// --- Contexts ---

// CreateContext creates a context over devices.
func (s *Silo) CreateContext(devices []*Device) (*Context, Status) {
	if len(devices) == 0 {
		return nil, ErrInvalidValue
	}
	for _, d := range devices {
		if d == nil {
			return nil, ErrInvalidDevice
		}
	}
	return &Context{silo: s, devices: devices, owner: "native", refs: 1}, Success
}

// RetainContext increments the context refcount.
func (s *Silo) RetainContext(c *Context) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c == nil || c.dead {
		return ErrInvalidContext
	}
	c.refs++
	return Success
}

// ReleaseContext decrements the refcount, destroying at zero.
func (s *Silo) ReleaseContext(c *Context) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c == nil || c.dead {
		return ErrInvalidContext
	}
	c.refs--
	if c.refs <= 0 {
		c.dead = true
	}
	return Success
}

// GetContextInfo answers context info queries.
func (s *Silo) GetContextInfo(c *Context, param uint32, dst []byte) (uint64, Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c == nil || c.dead {
		return 0, ErrInvalidContext
	}
	switch param {
	case ContextNumDevices:
		return infoBytes(dst, u64Bytes(uint64(len(c.devices))))
	case ContextRefCount:
		return infoBytes(dst, u64Bytes(uint64(c.refs)))
	}
	return 0, ErrInvalidValue
}

// --- Command queues ---

// CreateCommandQueue creates an in-order queue on device d.
func (s *Silo) CreateCommandQueue(c *Context, d *Device, properties uint64) (*Queue, Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c == nil || c.dead {
		return nil, ErrInvalidContext
	}
	if d == nil {
		return nil, ErrInvalidDevice
	}
	return &Queue{ctx: c, device: d, profiling: properties&2 != 0, refs: 1}, Success
}

// RetainCommandQueue increments the queue refcount.
func (s *Silo) RetainCommandQueue(q *Queue) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q == nil || q.dead {
		return ErrInvalidCommandQueue
	}
	q.refs++
	return Success
}

// ReleaseCommandQueue decrements the queue refcount.
func (s *Silo) ReleaseCommandQueue(q *Queue) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q == nil || q.dead {
		return ErrInvalidCommandQueue
	}
	q.refs--
	if q.refs <= 0 {
		q.dead = true
	}
	return Success
}

// --- Buffers ---

// CreateBuffer allocates a device buffer.
func (s *Silo) CreateBuffer(c *Context, flags uint64, size uint64) (*Mem, Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c == nil || c.dead {
		return nil, ErrInvalidContext
	}
	if size == 0 {
		return nil, ErrInvalidValue
	}
	addr, err := c.devices[0].sim.Alloc(size)
	if err != nil {
		if errors.Is(err, devsim.ErrOutOfMemory) {
			return nil, ErrMemObjectAllocFailure
		}
		return nil, ErrOutOfResources
	}
	s.useTick++
	m := &Mem{ctx: c, size: size, flags: flags, refs: 1, addr: addr, resident: true, lastUse: s.useTick}
	// A buffer no delta snapshot has seen must ship in full the first time
	// (the checkpoint consumer holds no base to compose onto).
	m.dirty.markAll()
	s.live[m] = struct{}{}
	return m, Success
}

// RetainMemObject increments the buffer refcount.
func (s *Silo) RetainMemObject(m *Mem) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m == nil || m.dead {
		return ErrInvalidMemObject
	}
	m.refs++
	return Success
}

// ReleaseMemObject decrements the refcount, freeing device memory at zero.
func (s *Silo) ReleaseMemObject(m *Mem) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m == nil || m.dead {
		return ErrInvalidMemObject
	}
	m.refs--
	if m.refs <= 0 {
		m.dead = true
		if m.resident {
			m.ctx.devices[0].sim.FreeMem(m.addr)
			m.resident = false
		}
		m.stash = nil
		delete(s.live, m)
	}
	return Success
}

// LiveBuffers returns all live buffer objects across contexts, for the
// swap manager's victim selection.
func (s *Silo) LiveBuffers() []*Mem {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Mem, 0, len(s.live))
	for m := range s.live {
		out = append(out, m)
	}
	return out
}

// RestoreBuffer overwrites a buffer's logical contents (migration restore).
func (s *Silo) RestoreBuffer(m *Mem, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m == nil || m.dead {
		return fmt.Errorf("cl: restore of dead buffer")
	}
	if uint64(len(data)) != m.size {
		return fmt.Errorf("cl: restore of %d bytes into %d-byte buffer", len(data), m.size)
	}
	m.dirty.markAll()
	if !m.resident {
		copy(m.stash, data)
		return nil
	}
	return m.ctx.devices[0].sim.CopyIn(m.addr, 0, data)
}

// SnapshotBufferDelta drains the buffer's dirty-range tracking: it returns
// the buffer's logical size plus copies of the byte ranges written since
// the previous call (the delta watermark), and clears the tracking. full
// is true when the whole buffer must travel — tracking overflowed, an
// untracked write (kernel launch, restore) touched it, or every byte is
// dirty — in which case ranges is one range covering everything. A clean
// buffer returns no ranges. SnapshotBuffer (migration capture) does not
// interact with the watermark, so a full capture between checkpoints
// never loses delta coverage.
func (s *Silo) SnapshotBufferDelta(m *Mem) (size uint64, full bool, ranges []BufRange, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m == nil || m.dead {
		return 0, false, nil, fmt.Errorf("cl: delta snapshot of dead buffer")
	}
	size = m.size
	if m.dirty.all {
		var data []byte
		if !m.resident {
			data = append([]byte(nil), m.stash...)
		} else if data, err = m.ctx.devices[0].sim.Snapshot(m.addr); err != nil {
			return 0, false, nil, err
		}
		m.dirty.reset()
		return size, true, []BufRange{{Off: 0, Data: data}}, nil
	}
	for _, r := range m.dirty.ranges {
		data := make([]byte, r.end-r.off)
		if !m.resident {
			copy(data, m.stash[r.off:r.end])
		} else if err = m.ctx.devices[0].sim.CopyOut(m.addr, r.off, data); err != nil {
			return 0, false, nil, err
		}
		ranges = append(ranges, BufRange{Off: r.off, Data: data})
	}
	m.dirty.reset()
	return size, false, ranges, nil
}

// BufRange is one written byte range of a buffer's contents, as drained by
// SnapshotBufferDelta.
type BufRange struct {
	Off  uint64
	Data []byte
}

// DirtyBytes reports the buffer's currently tracked dirty volume (its full
// size when tracking degraded to whole-buffer), without draining it.
func (s *Silo) DirtyBytes(m *Mem) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m == nil || m.dead {
		return 0
	}
	return m.dirty.dirtyBytes(m.size)
}

// touch updates LRU state; callers hold s.mu.
func (s *Silo) touch(m *Mem) {
	s.useTick++
	m.lastUse = s.useTick
}

// ensureResidentLocked restores an evicted buffer to device memory;
// callers hold s.mu.
func (s *Silo) ensureResidentLocked(m *Mem) Status {
	if m.resident {
		return Success
	}
	addr, err := m.ctx.devices[0].sim.Alloc(m.size)
	if err != nil {
		return ErrMemObjectAllocFailure
	}
	if err := m.ctx.devices[0].sim.CopyIn(addr, 0, m.stash); err != nil {
		m.ctx.devices[0].sim.FreeMem(addr)
		return ErrOutOfResources
	}
	m.addr = addr
	m.resident = true
	m.stash = nil
	return Success
}

// EvictBuffer moves a buffer's contents to host memory and frees its device
// allocation — the buffer-object-granularity swapping of §4.3.
func (s *Silo) EvictBuffer(m *Mem) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m == nil || m.dead {
		return fmt.Errorf("cl: evict of dead buffer")
	}
	if !m.resident {
		return nil
	}
	snap, err := m.ctx.devices[0].sim.Snapshot(m.addr)
	if err != nil {
		return err
	}
	if err := m.ctx.devices[0].sim.FreeMem(m.addr); err != nil {
		return err
	}
	m.stash = snap
	m.resident = false
	return nil
}

// EnsureResident restores an evicted buffer (public form for swap tests).
func (s *Silo) EnsureResident(m *Mem) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m == nil || m.dead {
		return ErrInvalidMemObject
	}
	return s.ensureResidentLocked(m)
}

// SnapshotBuffer returns a copy of the buffer's logical contents whether
// resident or evicted (migration uses this to synthesize device copies).
func (s *Silo) SnapshotBuffer(m *Mem) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m == nil || m.dead {
		return nil, fmt.Errorf("cl: snapshot of dead buffer")
	}
	if !m.resident {
		return append([]byte(nil), m.stash...), nil
	}
	return m.ctx.devices[0].sim.Snapshot(m.addr)
}

// LRUVictim returns the least-recently-used resident buffer among the
// given candidates, or nil.
func LRUVictim(candidates []*Mem) *Mem {
	var victim *Mem
	for _, m := range candidates {
		if m == nil || m.dead || !m.resident {
			continue
		}
		if victim == nil || m.lastUse < victim.lastUse {
			victim = m
		}
	}
	return victim
}

// --- Programs and kernels ---

// CreateProgramWithSource creates an unbuilt program. Source is a
// comma/whitespace separated list of kernel registry names (the silo's
// "programming language").
func (s *Silo) CreateProgramWithSource(c *Context, source string) (*Program, Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c == nil || c.dead {
		return nil, ErrInvalidContext
	}
	if source == "" {
		return nil, ErrInvalidValue
	}
	return &Program{ctx: c, source: source, refs: 1}, Success
}

// BuildProgram resolves the program's kernel names against the registry.
func (s *Silo) BuildProgram(p *Program, options string) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p == nil || p.dead {
		return ErrInvalidProgram
	}
	fields := strings.FieldsFunc(p.source, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\n' || r == '\t' || r == ';'
	})
	var missing []string
	p.names = p.names[:0]
	for _, f := range fields {
		if f == "" {
			continue
		}
		if s.kernels.Lookup(f) == nil {
			missing = append(missing, f)
			continue
		}
		p.names = append(p.names, f)
	}
	if len(missing) > 0 || len(p.names) == 0 {
		p.built = false
		p.log = fmt.Sprintf("build error: unknown kernels %v", missing)
		return ErrBuildProgramFailure
	}
	p.built = true
	p.log = fmt.Sprintf("built %d kernels", len(p.names))
	return Success
}

// GetProgramBuildInfo answers build info queries.
func (s *Silo) GetProgramBuildInfo(p *Program, param uint32, dst []byte) (uint64, Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p == nil || p.dead {
		return 0, ErrInvalidProgram
	}
	switch param {
	case ProgramBuildStatus:
		st := BuildError
		if p.built {
			st = BuildSuccess
		}
		return infoBytes(dst, u64Bytes(uint64(st)))
	case ProgramBuildLog:
		return infoBytes(dst, []byte(p.log))
	}
	return 0, ErrInvalidValue
}

// RetainProgram increments the program refcount.
func (s *Silo) RetainProgram(p *Program) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p == nil || p.dead {
		return ErrInvalidProgram
	}
	p.refs++
	return Success
}

// ReleaseProgram decrements the program refcount.
func (s *Silo) ReleaseProgram(p *Program) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p == nil || p.dead {
		return ErrInvalidProgram
	}
	p.refs--
	if p.refs <= 0 {
		p.dead = true
	}
	return Success
}

// CreateKernel instantiates a kernel from a built program.
func (s *Silo) CreateKernel(p *Program, name string) (*Kernel, Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p == nil || p.dead {
		return nil, ErrInvalidProgram
	}
	if !p.built {
		return nil, ErrInvalidProgramExe
	}
	found := false
	for _, n := range p.names {
		if n == name {
			found = true
			break
		}
	}
	def := s.kernels.Lookup(name)
	if !found || def == nil {
		return nil, ErrInvalidKernelName
	}
	return &Kernel{program: p, def: def, args: make([]kernelArg, len(def.Args)), refs: 1}, Success
}

// RetainKernel increments the kernel refcount.
func (s *Silo) RetainKernel(k *Kernel) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k == nil || k.dead {
		return ErrInvalidKernel
	}
	k.refs++
	return Success
}

// ReleaseKernel decrements the kernel refcount.
func (s *Silo) ReleaseKernel(k *Kernel) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k == nil || k.dead {
		return ErrInvalidKernel
	}
	k.refs--
	if k.refs <= 0 {
		k.dead = true
	}
	return Success
}

// GetKernelWorkGroupInfo answers kernel work-group queries.
func (s *Silo) GetKernelWorkGroupInfo(k *Kernel, d *Device, param uint32, dst []byte) (uint64, Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k == nil || k.dead {
		return 0, ErrInvalidKernel
	}
	if param == KernelWorkGroupSize {
		return infoBytes(dst, u64Bytes(256))
	}
	return 0, ErrInvalidValue
}

// SetKernelArgBuffer binds a buffer object to a kernel argument.
func (s *Silo) SetKernelArgBuffer(k *Kernel, index uint32, m *Mem) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k == nil || k.dead {
		return ErrInvalidKernel
	}
	if int(index) >= len(k.args) {
		return ErrInvalidArgIndex
	}
	if k.def.Args[index] != ArgBuffer {
		return ErrInvalidKernelArgs
	}
	if m == nil || m.dead {
		return ErrInvalidMemObject
	}
	k.args[index] = kernelArg{set: true, buf: m}
	return Success
}

// SetKernelArgBytes binds a scalar argument's raw bytes.
func (s *Silo) SetKernelArgBytes(k *Kernel, index uint32, val []byte) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k == nil || k.dead {
		return ErrInvalidKernel
	}
	if int(index) >= len(k.args) {
		return ErrInvalidArgIndex
	}
	if k.def.Args[index] != ArgScalar {
		return ErrInvalidKernelArgs
	}
	k.args[index] = kernelArg{set: true, raw: append([]byte(nil), val...)}
	return Success
}

// KernelArgSnapshot returns the kernel's argument bindings for migration:
// scalars as bytes, buffers as the bound Mem (nil entries are unset).
func (s *Silo) KernelArgSnapshot(k *Kernel) ([]*Mem, [][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bufs := make([]*Mem, len(k.args))
	raws := make([][]byte, len(k.args))
	for i, a := range k.args {
		if !a.set {
			continue
		}
		if a.buf != nil {
			bufs[i] = a.buf
		} else {
			raws[i] = append([]byte(nil), a.raw...)
		}
	}
	return bufs, raws
}

// --- Enqueue operations (eager in-order execution) ---

func (s *Silo) newEvent(q *Queue, command string, start, end time.Time) *Event {
	return &Event{status: Complete, queued: start, start: start, end: end, refs: 1, command: command}
}

func (s *Silo) checkQueue(q *Queue) Status {
	if q == nil || q.dead {
		return ErrInvalidCommandQueue
	}
	return Success
}

// EnqueueWriteBuffer copies host data into a buffer.
func (s *Silo) EnqueueWriteBuffer(q *Queue, m *Mem, offset uint64, data []byte) (*Event, Status) {
	s.mu.Lock()
	if st := s.checkQueue(q); st != Success {
		s.mu.Unlock()
		return nil, st
	}
	if m == nil || m.dead {
		s.mu.Unlock()
		return nil, ErrInvalidMemObject
	}
	if st := s.ensureResidentLocked(m); st != Success {
		s.mu.Unlock()
		return nil, st
	}
	s.touch(m)
	m.dirty.mark(offset, uint64(len(data)), m.size)
	sim := m.ctx.devices[0].sim // buffer memory lives on its owning device
	addr := m.addr
	s.mu.Unlock()

	t0 := s.clk.Now()
	if err := sim.CopyIn(addr, offset, data); err != nil {
		return nil, ErrInvalidValue
	}
	return s.newEvent(q, "write", t0, s.clk.Now()), Success
}

// EnqueueReadBuffer copies a buffer into host memory.
func (s *Silo) EnqueueReadBuffer(q *Queue, m *Mem, offset uint64, dst []byte) (*Event, Status) {
	s.mu.Lock()
	if st := s.checkQueue(q); st != Success {
		s.mu.Unlock()
		return nil, st
	}
	if m == nil || m.dead {
		s.mu.Unlock()
		return nil, ErrInvalidMemObject
	}
	if st := s.ensureResidentLocked(m); st != Success {
		s.mu.Unlock()
		return nil, st
	}
	s.touch(m)
	sim := m.ctx.devices[0].sim
	addr := m.addr
	s.mu.Unlock()

	t0 := s.clk.Now()
	if err := sim.CopyOut(addr, offset, dst); err != nil {
		return nil, ErrInvalidValue
	}
	return s.newEvent(q, "read", t0, s.clk.Now()), Success
}

// EnqueueCopyBuffer copies between buffers on the device.
func (s *Silo) EnqueueCopyBuffer(q *Queue, src, dst *Mem, srcOff, dstOff, size uint64) (*Event, Status) {
	s.mu.Lock()
	if st := s.checkQueue(q); st != Success {
		s.mu.Unlock()
		return nil, st
	}
	if src == nil || src.dead || dst == nil || dst.dead {
		s.mu.Unlock()
		return nil, ErrInvalidMemObject
	}
	if st := s.ensureResidentLocked(src); st != Success {
		s.mu.Unlock()
		return nil, st
	}
	if st := s.ensureResidentLocked(dst); st != Success {
		s.mu.Unlock()
		return nil, st
	}
	s.touch(src)
	s.touch(dst)
	dst.dirty.mark(dstOff, size, dst.size)
	sim := src.ctx.devices[0].sim // same-context copy on the owning device
	sa, da := src.addr, dst.addr
	s.mu.Unlock()

	t0 := s.clk.Now()
	if err := sim.CopyDevice(da, dstOff, sa, srcOff, size); err != nil {
		return nil, ErrInvalidValue
	}
	return s.newEvent(q, "copy", t0, s.clk.Now()), Success
}

// EnqueueFillBuffer fills a buffer range with a repeating pattern.
func (s *Silo) EnqueueFillBuffer(q *Queue, m *Mem, pattern []byte, offset, size uint64) (*Event, Status) {
	if len(pattern) == 0 || size%uint64(len(pattern)) != 0 {
		return nil, ErrInvalidValue
	}
	s.mu.Lock()
	if st := s.checkQueue(q); st != Success {
		s.mu.Unlock()
		return nil, st
	}
	if m == nil || m.dead {
		s.mu.Unlock()
		return nil, ErrInvalidMemObject
	}
	if st := s.ensureResidentLocked(m); st != Success {
		s.mu.Unlock()
		return nil, st
	}
	s.touch(m)
	m.dirty.mark(offset, size, m.size)
	sim := m.ctx.devices[0].sim
	addr := m.addr
	s.mu.Unlock()

	t0 := s.clk.Now()
	fill := make([]byte, size)
	for off := uint64(0); off < size; off += uint64(len(pattern)) {
		copy(fill[off:], pattern)
	}
	if err := sim.CopyIn(addr, offset, fill); err != nil {
		return nil, ErrInvalidValue
	}
	return s.newEvent(q, "fill", t0, s.clk.Now()), Success
}

// EnqueueNDRangeKernel launches a kernel over the global work size.
func (s *Silo) EnqueueNDRangeKernel(q *Queue, k *Kernel, global, local []uint64) (*Event, Status) {
	if len(global) == 0 || len(global) > 3 {
		return nil, ErrInvalidWorkDim
	}
	s.mu.Lock()
	if st := s.checkQueue(q); st != Success {
		s.mu.Unlock()
		return nil, st
	}
	if k == nil || k.dead {
		s.mu.Unlock()
		return nil, ErrInvalidKernel
	}
	// All declared arguments must be bound, buffers resident.
	env := &KernelEnv{
		Global: append([]uint64(nil), global...),
		Local:  append([]uint64(nil), local...),
		bufs:   make([][]byte, len(k.args)),
		raws:   make([][]byte, len(k.args)),
	}
	for i, a := range k.args {
		if !a.set {
			s.mu.Unlock()
			return nil, ErrInvalidKernelArgs
		}
		if a.buf != nil {
			if a.buf.dead {
				s.mu.Unlock()
				return nil, ErrInvalidMemObject
			}
			if st := s.ensureResidentLocked(a.buf); st != Success {
				s.mu.Unlock()
				return nil, st
			}
			s.touch(a.buf)
			// A kernel receives the raw device memory slice, so the silo
			// cannot see which bytes it writes: the whole buffer turns
			// dirty for delta-checkpoint purposes.
			a.buf.dirty.markAll()
			// Kernels execute on the queue's device but address buffer
			// memory on its owning device (shared-context memory model).
			memBytes, err := a.buf.ctx.devices[0].sim.Mem(a.buf.addr)
			if err != nil {
				s.mu.Unlock()
				return nil, ErrInvalidMemObject
			}
			env.bufs[i] = memBytes
		} else {
			env.raws[i] = a.raw
		}
	}
	owner := q.ctx.owner
	def := k.def
	sim := q.device.sim
	s.mu.Unlock()

	t0 := s.clk.Now()
	if err := sim.RunKernel(owner, func() { def.Run(env) }); err != nil {
		return nil, ErrOutOfResources
	}
	return s.newEvent(q, "ndrange:"+def.Name, t0, s.clk.Now()), Success
}

// EnqueueTask launches a kernel with a single work item.
func (s *Silo) EnqueueTask(q *Queue, k *Kernel) (*Event, Status) {
	return s.EnqueueNDRangeKernel(q, k, []uint64{1}, []uint64{1})
}

// EnqueueMarker records a marker event.
func (s *Silo) EnqueueMarker(q *Queue) (*Event, Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.checkQueue(q); st != Success {
		return nil, st
	}
	now := s.clk.Now()
	return s.newEvent(q, "marker", now, now), Success
}

// EnqueueBarrier orders preceding commands; eager execution makes it a
// completed no-op.
func (s *Silo) EnqueueBarrier(q *Queue) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkQueue(q)
}

// Finish blocks until the queue drains; eager execution makes this a no-op
// barrier (the synchronization semantics matter to the remoting layer, not
// the silo).
func (s *Silo) Finish(q *Queue) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkQueue(q)
}

// Flush submits pending commands; a no-op under eager execution.
func (s *Silo) Flush(q *Queue) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkQueue(q)
}

// WaitForEvents blocks until the listed events complete.
func (s *Silo) WaitForEvents(events []*Event) Status {
	for _, e := range events {
		if e == nil {
			return ErrInvalidEvent
		}
	}
	return Success
}

// GetEventInfo answers event info queries.
func (s *Silo) GetEventInfo(e *Event, param uint32, dst []byte) (uint64, Status) {
	if e == nil {
		return 0, ErrInvalidEvent
	}
	if param == EventExecStatus {
		return infoBytes(dst, u64Bytes(uint64(e.status)))
	}
	return 0, ErrInvalidValue
}

// GetEventProfilingInfo answers profiling queries in nanoseconds.
func (s *Silo) GetEventProfilingInfo(e *Event, param uint32, dst []byte) (uint64, Status) {
	if e == nil {
		return 0, ErrInvalidEvent
	}
	switch param {
	case ProfilingQueued:
		return infoBytes(dst, u64Bytes(uint64(e.queued.UnixNano())))
	case ProfilingStart:
		return infoBytes(dst, u64Bytes(uint64(e.start.UnixNano())))
	case ProfilingEnd:
		return infoBytes(dst, u64Bytes(uint64(e.end.UnixNano())))
	}
	return 0, ErrInvalidValue
}

// RetainEvent increments the event refcount.
func (s *Silo) RetainEvent(e *Event) Status {
	if e == nil {
		return ErrInvalidEvent
	}
	s.mu.Lock()
	e.refs++
	s.mu.Unlock()
	return Success
}

// ReleaseEvent decrements the event refcount.
func (s *Silo) ReleaseEvent(e *Event) Status {
	if e == nil {
		return ErrInvalidEvent
	}
	s.mu.Lock()
	e.refs--
	s.mu.Unlock()
	return Success
}
