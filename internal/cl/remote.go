package cl

import (
	"encoding/binary"

	"ava/internal/guest"
	"ava/internal/marshal"
)

// RemoteClient is the generated guest library for OpenCL: typed stubs over
// the descriptor-driven guest engine. An application linked against it
// observes the 39-function API while every call is marshalled, batched,
// routed through the hypervisor, and executed by the API server.
type RemoteClient struct {
	lib  *guest.Lib
	opts guest.CallOptions
}

// NewRemote wraps an attached guest library (its descriptor must be the
// OpenCL Spec).
func NewRemote(lib *guest.Lib) *RemoteClient { return &RemoteClient{lib: lib} }

// Lib exposes the underlying stub engine (stats, flush).
func (c *RemoteClient) Lib() *guest.Lib { return c.lib }

// With returns a client whose calls also carry opts (deadline, priority,
// overload retry, flush slack); the receiver is unchanged, so clients for
// different urgency classes can share one attached library. Options fold
// over the receiver's set; pass a guest.CallOptions literal to replace it
// wholesale.
func (c *RemoteClient) With(opts ...guest.CallOption) *RemoteClient {
	d := *c
	d.opts = guest.ApplyCallOptions(d.opts, opts...)
	return &d
}

func rref(h marshal.Handle) Ref { return Ref{h: h} }

func boolArg(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// status interprets a cl_int return value plus stack errors.
func status(op string, v marshal.Value, err error) error {
	if err != nil {
		return err
	}
	var st Status
	switch v.Kind {
	case marshal.KindInt:
		st = Status(v.Int)
	case marshal.KindUint:
		st = Status(int64(v.Uint))
	}
	return clErr(op, st)
}

func (c *RemoteClient) PlatformIDs() ([]Ref, error) {
	// Two-phase query, as real OpenCL applications do.
	var n uint32
	ret, err := c.lib.CallWith(c.opts, "clGetPlatformIDs", uint32(0), nil, &n)
	if err := status("clGetPlatformIDs", ret, err); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	buf := make([]byte, 8*n)
	ret, err = c.lib.CallWith(c.opts, "clGetPlatformIDs", n, buf, nil)
	if err := status("clGetPlatformIDs", ret, err); err != nil {
		return nil, err
	}
	return refsFromBytes(buf), nil
}

func refsFromBytes(b []byte) []Ref {
	out := make([]Ref, len(b)/8)
	for i := range out {
		out[i] = rref(marshal.Handle(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return out
}

func (c *RemoteClient) info(op string, args func(dst []byte, szr *uint64) []any) ([]byte, error) {
	var size uint64
	ret, err := c.lib.CallWith(c.opts, op, args(nil, &size)...)
	if err := status(op, ret, err); err != nil {
		return nil, err
	}
	if size == 0 {
		return nil, nil
	}
	buf := make([]byte, size)
	ret, err = c.lib.CallWith(c.opts, op, args(buf, nil)...)
	if err := status(op, ret, err); err != nil {
		return nil, err
	}
	return buf, nil
}

func (c *RemoteClient) PlatformInfo(p Ref, param uint32) ([]byte, error) {
	return c.info("clGetPlatformInfo", func(dst []byte, szr *uint64) []any {
		if szr != nil {
			return []any{p.h, param, uint64(0), nil, szr}
		}
		return []any{p.h, param, uint64(len(dst)), dst, nil}
	})
}

func (c *RemoteClient) DeviceIDs(p Ref, devType uint64) ([]Ref, error) {
	var n uint32
	ret, err := c.lib.CallWith(c.opts, "clGetDeviceIDs", p.h, devType, uint32(0), nil, &n)
	if err := status("clGetDeviceIDs", ret, err); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	buf := make([]byte, 8*n)
	ret, err = c.lib.CallWith(c.opts, "clGetDeviceIDs", p.h, devType, n, buf, nil)
	if err := status("clGetDeviceIDs", ret, err); err != nil {
		return nil, err
	}
	return refsFromBytes(buf), nil
}

func (c *RemoteClient) DeviceInfo(d Ref, param uint32) ([]byte, error) {
	return c.info("clGetDeviceInfo", func(dst []byte, szr *uint64) []any {
		if szr != nil {
			return []any{d.h, param, uint64(0), nil, szr}
		}
		return []any{d.h, param, uint64(len(dst)), dst, nil}
	})
}

func (c *RemoteClient) CreateContext(devs []Ref) (Ref, error) {
	buf := make([]byte, 8*len(devs))
	for i, d := range devs {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(d.h))
	}
	var errcode int32
	ret, err := c.lib.CallWith(c.opts, "clCreateContext", uint32(len(devs)), buf, &errcode)
	if err != nil {
		return Ref{}, err
	}
	if errcode != int32(Success) {
		return Ref{}, clErr("clCreateContext", errcode)
	}
	return rref(ret.Handle()), nil
}

func (c *RemoteClient) ReleaseContext(r Ref) error {
	ret, err := c.lib.CallWith(c.opts, "clReleaseContext", r.h)
	return status("clReleaseContext", ret, err)
}

func (c *RemoteClient) ContextInfo(r Ref, param uint32) ([]byte, error) {
	return c.info("clGetContextInfo", func(dst []byte, szr *uint64) []any {
		if szr != nil {
			return []any{r.h, param, uint64(0), nil, szr}
		}
		return []any{r.h, param, uint64(len(dst)), dst, nil}
	})
}

func (c *RemoteClient) CreateQueue(cr, dr Ref, properties uint64) (Ref, error) {
	var errcode int32
	ret, err := c.lib.CallWith(c.opts, "clCreateCommandQueue", cr.h, dr.h, properties, &errcode)
	if err != nil {
		return Ref{}, err
	}
	if errcode != int32(Success) {
		return Ref{}, clErr("clCreateCommandQueue", errcode)
	}
	return rref(ret.Handle()), nil
}

func (c *RemoteClient) ReleaseQueue(r Ref) error {
	ret, err := c.lib.CallWith(c.opts, "clReleaseCommandQueue", r.h)
	return status("clReleaseCommandQueue", ret, err)
}

func (c *RemoteClient) CreateBuffer(cr Ref, flags uint64, size uint64) (Ref, error) {
	var errcode int32
	ret, err := c.lib.CallWith(c.opts, "clCreateBuffer", cr.h, flags, size, &errcode)
	if err != nil {
		return Ref{}, err
	}
	if errcode != int32(Success) {
		return Ref{}, clErr("clCreateBuffer", errcode)
	}
	return rref(ret.Handle()), nil
}

func (c *RemoteClient) ReleaseBuffer(r Ref) error {
	ret, err := c.lib.CallWith(c.opts, "clReleaseMemObject", r.h)
	return status("clReleaseMemObject", ret, err)
}

func (c *RemoteClient) CreateProgram(cr Ref, source string) (Ref, error) {
	var errcode int32
	ret, err := c.lib.CallWith(c.opts, "clCreateProgramWithSource", cr.h, source, &errcode)
	if err != nil {
		return Ref{}, err
	}
	if errcode != int32(Success) {
		return Ref{}, clErr("clCreateProgramWithSource", errcode)
	}
	return rref(ret.Handle()), nil
}

func (c *RemoteClient) BuildProgram(r Ref, options string) error {
	ret, err := c.lib.CallWith(c.opts, "clBuildProgram", r.h, options)
	return status("clBuildProgram", ret, err)
}

func (c *RemoteClient) ProgramBuildLog(r Ref) (string, error) {
	b, err := c.info("clGetProgramBuildInfo", func(dst []byte, szr *uint64) []any {
		if szr != nil {
			return []any{r.h, ProgramBuildLog, uint64(0), nil, szr}
		}
		return []any{r.h, ProgramBuildLog, uint64(len(dst)), dst, nil}
	})
	return string(b), err
}

func (c *RemoteClient) ReleaseProgram(r Ref) error {
	ret, err := c.lib.CallWith(c.opts, "clReleaseProgram", r.h)
	return status("clReleaseProgram", ret, err)
}

func (c *RemoteClient) CreateKernel(r Ref, name string) (Ref, error) {
	var errcode int32
	ret, err := c.lib.CallWith(c.opts, "clCreateKernel", r.h, name, &errcode)
	if err != nil {
		return Ref{}, err
	}
	if errcode != int32(Success) {
		return Ref{}, clErr("clCreateKernel", errcode)
	}
	return rref(ret.Handle()), nil
}

func (c *RemoteClient) ReleaseKernel(r Ref) error {
	ret, err := c.lib.CallWith(c.opts, "clReleaseKernel", r.h)
	return status("clReleaseKernel", ret, err)
}

func (c *RemoteClient) SetKernelArgBuffer(kr Ref, index uint32, mr Ref) error {
	// A cl_mem argument travels as its 8-byte guest handle; the API
	// server translates it through the per-VM handle table.
	val := make([]byte, 8)
	binary.LittleEndian.PutUint64(val, uint64(mr.h))
	ret, err := c.lib.CallWith(c.opts, "clSetKernelArg", kr.h, index, uint64(8), val)
	return status("clSetKernelArg", ret, err)
}

func (c *RemoteClient) SetKernelArgScalar(kr Ref, index uint32, val []byte) error {
	ret, err := c.lib.CallWith(c.opts, "clSetKernelArg", kr.h, index, uint64(len(val)), val)
	return status("clSetKernelArg", ret, err)
}

func sizesBytes(sz []uint64) []byte {
	b := make([]byte, 8*len(sz))
	for i, v := range sz {
		binary.LittleEndian.PutUint64(b[8*i:], v)
	}
	return b
}

func (c *RemoteClient) EnqueueNDRange(qr, kr Ref, global, local []uint64) error {
	ret, err := c.lib.CallWith(c.opts, "clEnqueueNDRangeKernel",
		qr.h, kr.h, uint32(len(global)), sizesBytes(global), sizesBytes(local),
		uint32(0), nil, nil)
	return status("clEnqueueNDRangeKernel", ret, err)
}

func (c *RemoteClient) EnqueueNDRangeEvent(qr, kr Ref, global, local []uint64) (Ref, error) {
	var ev marshal.Handle
	ret, err := c.lib.CallWith(c.opts, "clEnqueueNDRangeKernel",
		qr.h, kr.h, uint32(len(global)), sizesBytes(global), sizesBytes(local),
		uint32(0), nil, &ev)
	if err := status("clEnqueueNDRangeKernel", ret, err); err != nil {
		return Ref{}, err
	}
	return rref(ev), nil
}

func (c *RemoteClient) EnqueueRead(qr, mr Ref, blocking bool, offset uint64, dst []byte) error {
	ret, err := c.lib.CallWith(c.opts, "clEnqueueReadBuffer",
		qr.h, mr.h, boolArg(blocking), offset, uint64(len(dst)), dst,
		uint32(0), nil, nil)
	return status("clEnqueueReadBuffer", ret, err)
}

func (c *RemoteClient) EnqueueWrite(qr, mr Ref, blocking bool, offset uint64, src []byte) error {
	ret, err := c.lib.CallWith(c.opts, "clEnqueueWriteBuffer",
		qr.h, mr.h, boolArg(blocking), offset, uint64(len(src)), src,
		uint32(0), nil, nil)
	return status("clEnqueueWriteBuffer", ret, err)
}

func (c *RemoteClient) EnqueueCopy(qr, sr, dr Ref, srcOff, dstOff, size uint64) error {
	ret, err := c.lib.CallWith(c.opts, "clEnqueueCopyBuffer",
		qr.h, sr.h, dr.h, srcOff, dstOff, size, uint32(0), nil, nil)
	return status("clEnqueueCopyBuffer", ret, err)
}

func (c *RemoteClient) EnqueueFill(qr, mr Ref, pattern []byte, offset, size uint64) error {
	ret, err := c.lib.CallWith(c.opts, "clEnqueueFillBuffer",
		qr.h, mr.h, pattern, uint64(len(pattern)), offset, size, uint32(0), nil, nil)
	return status("clEnqueueFillBuffer", ret, err)
}

func (c *RemoteClient) EnqueueMarker(qr Ref) (Ref, error) {
	var ev marshal.Handle
	ret, err := c.lib.CallWith(c.opts, "clEnqueueMarker", qr.h, &ev)
	if err := status("clEnqueueMarker", ret, err); err != nil {
		return Ref{}, err
	}
	return rref(ev), nil
}

func (c *RemoteClient) EnqueueBarrier(qr Ref) error {
	ret, err := c.lib.CallWith(c.opts, "clEnqueueBarrier", qr.h)
	return status("clEnqueueBarrier", ret, err)
}

func (c *RemoteClient) Finish(qr Ref) error {
	ret, err := c.lib.CallWith(c.opts, "clFinish", qr.h)
	return status("clFinish", ret, err)
}

func (c *RemoteClient) Flush(qr Ref) error {
	ret, err := c.lib.CallWith(c.opts, "clFlush", qr.h)
	if err := status("clFlush", ret, err); err != nil {
		return err
	}
	// clFlush guarantees submission: push the async batch out now.
	return c.lib.Flush()
}

func (c *RemoteClient) WaitForEvents(events []Ref) error {
	buf := make([]byte, 8*len(events))
	for i, e := range events {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(e.h))
	}
	ret, err := c.lib.CallWith(c.opts, "clWaitForEvents", uint32(len(events)), buf)
	return status("clWaitForEvents", ret, err)
}

func (c *RemoteClient) EventProfiling(er Ref, param uint32) (uint64, error) {
	buf := make([]byte, 8)
	ret, err := c.lib.CallWith(c.opts, "clGetEventProfilingInfo", er.h, param, uint64(8), buf, nil)
	if err := status("clGetEventProfilingInfo", ret, err); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf), nil
}

func (c *RemoteClient) ReleaseEvent(er Ref) error {
	ret, err := c.lib.CallWith(c.opts, "clReleaseEvent", er.h)
	return status("clReleaseEvent", ret, err)
}

func (c *RemoteClient) DeferredError() error { return c.lib.DeferredError() }

var _ Client = (*RemoteClient)(nil)
