package backoff

import (
	"testing"
	"time"
)

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Base != time.Millisecond || cfg.Cap != 100*time.Millisecond || cfg.Budget != 2*time.Second {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}
