// Package backoff provides the jittered exponential retry pacing shared by
// every layer that redials a lost peer: guardian respawn attempts, guest
// resubmission and overload retries, fleet registry clients and remote
// mirror pumps all draw from this one shape, so a storm of retrying
// callers decorrelates instead of thundering in lock step.
package backoff

import (
	"math/rand"
	"sync"
	"time"
)

// Config shapes one backoff source.
type Config struct {
	// Base is the first retry delay; 0 means 1ms.
	Base time.Duration
	// Cap bounds a single delay; 0 means 100ms.
	Cap time.Duration
	// Budget bounds the total slept time of one retry series; once a
	// series has spent it, Next reports exhaustion and the caller must
	// surface the failure. 0 means 2s.
	Budget time.Duration
	// Seed seeds the jitter source for reproducible schedules in tests;
	// the zero seed is used as-is.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Base <= 0 {
		c.Base = time.Millisecond
	}
	if c.Cap <= 0 {
		c.Cap = 100 * time.Millisecond
	}
	if c.Budget <= 0 {
		c.Budget = 2 * time.Second
	}
	return c
}

// Backoff is a shared jitter source; Series hands out independent retry
// series that draw jitter from it.
type Backoff struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a backoff source from cfg.
func New(cfg Config) *Backoff {
	cfg = cfg.withDefaults()
	return &Backoff{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Series starts one retry series (one call's retries, or one recovery's
// respawn attempts).
func (b *Backoff) Series() *Series {
	return &Series{b: b, next: b.cfg.Base}
}

// Series tracks the state of one retry series against the shared budget.
type Series struct {
	b     *Backoff
	next  time.Duration // current exponential step (pre-jitter)
	spent time.Duration
}

// Next returns the delay to sleep before the next retry, or ok=false when
// the series' budget is exhausted. Delays are "equal jitter": half the
// exponential step plus a uniformly random half, doubling up to the cap.
func (s *Series) Next() (time.Duration, bool) {
	if s.spent >= s.b.cfg.Budget {
		return 0, false
	}
	step := s.next
	s.next *= 2
	if s.next > s.b.cfg.Cap {
		s.next = s.b.cfg.Cap
	}
	half := step / 2
	s.b.mu.Lock()
	d := half + time.Duration(s.b.rng.Int63n(int64(half)+1))
	s.b.mu.Unlock()
	if remaining := s.b.cfg.Budget - s.spent; d > remaining {
		d = remaining
	}
	s.spent += d
	return d, true
}

// Spent returns the total delay consumed by the series so far.
func (s *Series) Spent() time.Duration { return s.spent }
