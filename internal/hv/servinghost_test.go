package hv

import "testing"

// A serving-host move must re-fence the VM's endpoint epoch: if the dial
// path that landed on a new host forgot to advance the epoch, frames
// stamped for the old host would be admitted against the new one. The
// router bumps the epoch defensively on a host change whenever it has not
// moved since the previous host was recorded.
func TestSetServingHostReFencesOnHostChange(t *testing.T) {
	r := NewRouter(hvDesc(), nil, nil)
	if err := r.RegisterVM(VMConfig{ID: 1, Name: "vm1"}); err != nil {
		t.Fatal(err)
	}

	r.SetServingHost(1, "host-a")
	if st, _ := r.Stats(1); st.HostChanges != 0 {
		t.Fatalf("first host recorded as a change: %+v", st)
	}
	if got := r.ServingHost(1); got != "host-a" {
		t.Fatalf("serving host = %q", got)
	}
	e0 := r.Epoch(1)

	// Same host again: nothing moves.
	r.SetServingHost(1, "host-a")
	if st, _ := r.Stats(1); st.HostChanges != 0 {
		t.Fatal("re-recording the same host counted as a change")
	}
	if r.Epoch(1) != e0 {
		t.Fatal("re-recording the same host bumped the epoch")
	}

	// Host change without an epoch advance: the router fences itself.
	r.SetServingHost(1, "host-b")
	if st, _ := r.Stats(1); st.HostChanges != 1 {
		t.Fatalf("host change not counted: %+v", st)
	}
	if r.Epoch(1) != e0+1 {
		t.Fatalf("epoch = %d, want defensive bump to %d", r.Epoch(1), e0+1)
	}

	// Host change after the guardian already advanced the epoch: no
	// double-bump.
	r.SetEpoch(1, r.Epoch(1)+5)
	eAdvanced := r.Epoch(1)
	r.SetServingHost(1, "host-c")
	if r.Epoch(1) != eAdvanced {
		t.Fatalf("epoch = %d, want %d (already fenced by the dial path)", r.Epoch(1), eAdvanced)
	}
	if st, _ := r.Stats(1); st.HostChanges != 2 {
		t.Fatalf("stats = %+v", st)
	}
}
