package hv

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ava/internal/cava"
	"ava/internal/clock"
	"ava/internal/marshal"
	"ava/internal/transport"
)

const hvSpec = `
api "hvtest";
handle obj;
const OK = 0;
type st = int32_t { success(OK); };

st ping(uint32_t x);
st push(size_t size, const void *data) {
  parameter(data) { in; buffer(size); }
  resource(bandwidth, size);
}
st launch(size_t global, size_t local) {
  async;
  resource(device_time, global / local);
}
`

func hvDesc() *cava.Descriptor { return cava.MustCompile(hvSpec) }

func encCall(desc *cava.Descriptor, seq uint64, name string, flags uint16, args ...marshal.Value) []byte {
	fd, ok := desc.Lookup(name)
	if !ok {
		panic(name)
	}
	return marshal.EncodeCall(&marshal.Call{Seq: seq, Func: fd.ID, Flags: flags, Args: args})
}

// --- TokenBucket ---

func TestTokenBucketUnlimited(t *testing.T) {
	tb := NewTokenBucket(0, 0, clock.NewVirtual())
	if !tb.Unlimited() {
		t.Fatal("zero-rate bucket should be unlimited")
	}
	if d := tb.Reserve(1e9); d != 0 {
		t.Fatalf("unlimited Reserve = %v", d)
	}
	var nilTB *TokenBucket
	if !nilTB.Unlimited() {
		t.Fatal("nil bucket should be unlimited")
	}
}

func TestTokenBucketBurstThenDelay(t *testing.T) {
	clk := clock.NewVirtual()
	tb := NewTokenBucket(10, 5, clk) // 10/s, burst 5
	for i := 0; i < 5; i++ {
		if d := tb.Reserve(1); d != 0 {
			t.Fatalf("burst token %d delayed %v", i, d)
		}
	}
	d := tb.Reserve(1)
	if d != 100*time.Millisecond {
		t.Fatalf("6th token delay = %v, want 100ms", d)
	}
}

func TestTokenBucketRefill(t *testing.T) {
	clk := clock.NewVirtual()
	tb := NewTokenBucket(10, 5, clk)
	tb.Reserve(5)
	clk.Advance(time.Second)
	if got := tb.Tokens(); got < 4.99 || got > 5.01 {
		t.Fatalf("tokens after refill = %v", got)
	}
	// Refill caps at burst.
	clk.Advance(10 * time.Second)
	if got := tb.Tokens(); got > 5.01 {
		t.Fatalf("tokens exceeded burst: %v", got)
	}
}

func TestTokenBucketWaitSleepsOnClock(t *testing.T) {
	clk := clock.NewVirtual()
	tb := NewTokenBucket(1, 1, clk)
	t0 := clk.Now()
	tb.Wait(1) // burst
	tb.Wait(1) // must sleep 1s of virtual time
	if got := clk.Since(t0); got != time.Second {
		t.Fatalf("virtual sleep = %v", got)
	}
}

// Property: long-run admitted rate never exceeds the configured rate.
func TestQuickTokenBucketRate(t *testing.T) {
	f := func(seed uint8) bool {
		clk := clock.NewVirtual()
		rate := 100.0
		tb := NewTokenBucket(rate, 10, clk)
		t0 := clk.Now()
		n := 200 + int(seed)
		for i := 0; i < n; i++ {
			tb.Wait(1)
		}
		elapsed := clk.Since(t0).Seconds()
		// n admissions need at least (n-burst)/rate seconds.
		return elapsed >= float64(n-10)/rate-0.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- Schedulers ---

func TestFIFOSchedulerAccounts(t *testing.T) {
	s := NewFIFOScheduler()
	s.Admit(1, 10, 0)
	s.Done(1, 10, 0)
	s.Admit(1, 10, 0)
	s.Done(1, 10, 25) // measured overrides
	if got := s.Usage(1); got != 35 {
		t.Fatalf("usage = %d", got)
	}
}

func TestFairSchedulerSingleVMNeverBlocks(t *testing.T) {
	s := NewFairScheduler(10)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			s.Admit(1, 1000, 0)
			s.Done(1, 1000, 0)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("uncontended VM blocked")
	}
	if s.Usage(1) != 100*1000 {
		t.Fatalf("usage = %d", s.Usage(1))
	}
}

func TestFairSchedulerHoldsBackLeader(t *testing.T) {
	// Work-conserving fairness: a VM that ran ahead while uncontended must
	// be held back once a behind VM starts contending, until the laggard
	// catches up to within the window.
	s := NewFairScheduler(100)

	// VM1 runs ahead uncontended: usage 1000.
	for i := 0; i < 100; i++ {
		s.Admit(1, 10, 0)
		s.Done(1, 10, 0)
	}

	// VM2 starts contending and holds its slot open (Admit without Done).
	s.Admit(2, 10, 0)

	// VM1's next Admit must now block: 1000 > 10 + 100.
	admitted := make(chan struct{})
	go func() {
		s.Admit(1, 10, 0)
		close(admitted)
	}()
	select {
	case <-admitted:
		t.Fatal("leader admitted despite being over the window")
	case <-time.After(50 * time.Millisecond):
	}

	// VM2 catches up; once within the window, VM1 unblocks.
	s.Done(2, 10, 0)
	for s.Usage(2) < s.Usage(1)-100 {
		s.Admit(2, 10, 0)
		s.Done(2, 10, 0)
	}
	// VM1 may still be gated on VM2 contending; VM2 going idle must also
	// release it (work conservation).
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("leader never admitted after laggard caught up")
	}
	s.Done(1, 10, 0)
}

func TestFairSchedulerWeightedAccounting(t *testing.T) {
	// Usage is normalized by weight: a weight-4 VM is charged a quarter of
	// the cost, so it can issue 4x the work before being held back.
	s := NewFairScheduler(50)
	s.SetWeight(1, 4)
	s.SetWeight(2, 1)
	for i := 0; i < 100; i++ {
		s.Admit(1, 40, 0)
		s.Done(1, 40, 0)
		s.Admit(2, 10, 0)
		s.Done(2, 10, 0)
	}
	// VM1 did 4x the raw work but has identical normalized usage.
	if s.Usage(1) != 1000 || s.Usage(2) != 1000 {
		t.Fatalf("usage = %d, %d; want 1000, 1000", s.Usage(1), s.Usage(2))
	}
}

func TestFairSchedulerWeightedHoldBack(t *testing.T) {
	// Equal raw work: the low-weight VM accrues normalized usage faster
	// and is the one held back under contention.
	s := NewFairScheduler(50)
	s.SetWeight(1, 4)
	s.SetWeight(2, 1)
	for i := 0; i < 100; i++ {
		s.Admit(2, 10, 0)
		s.Done(2, 10, 0) // usage 1000 normalized
	}
	s.Admit(1, 40, 0) // usage 10; holds its slot open as the contender
	admitted := make(chan struct{})
	go func() {
		s.Admit(2, 10, 0)
		close(admitted)
	}()
	select {
	case <-admitted:
		t.Fatal("low-weight leader admitted despite contention")
	case <-time.After(50 * time.Millisecond):
	}
	s.Done(1, 40, 0) // contender leaves; work conservation releases VM2
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("VM2 never released")
	}
	s.Done(2, 10, 0)
}

func TestFairSchedulerZeroWeightCoerced(t *testing.T) {
	s := NewFairScheduler(10)
	s.SetWeight(1, 0)
	s.Admit(1, 10, 0)
	s.Done(1, 10, 0)
	if s.Usage(1) != 10 {
		t.Fatalf("usage = %d", s.Usage(1))
	}
}

func TestFairSchedulerReset(t *testing.T) {
	s := NewFairScheduler(10)
	s.Admit(1, 100, 0)
	s.Done(1, 100, 0)
	s.Reset()
	if s.Usage(1) != 0 {
		t.Fatal("usage survived reset")
	}
}

// --- Router ---

// routedStack builds guest <-> router <-> echo-server plumbing. The echo
// server executes nothing: it answers every sync call with StatusOK and
// counts frames, isolating router behaviour from server behaviour.
type echoServer struct {
	mu      sync.Mutex
	calls   []uint32
	decoded []*marshal.Call // full headers as the server received them
}

func (e *echoServer) serve(ep transport.Endpoint) {
	for {
		frame, err := ep.Recv()
		if err != nil {
			return
		}
		batch, err := marshal.DecodeBatch(frame)
		if err != nil {
			return
		}
		for _, cf := range batch {
			call, err := marshal.DecodeCall(cf)
			if err != nil {
				return
			}
			e.mu.Lock()
			e.calls = append(e.calls, call.Func)
			e.decoded = append(e.decoded, call)
			e.mu.Unlock()
			if call.Flags&marshal.FlagAsync == 0 {
				rep := marshal.EncodeReply(&marshal.Reply{Seq: call.Seq, Status: marshal.StatusOK, Ret: marshal.Int(0)})
				if err := ep.Send(rep); err != nil {
					return
				}
			}
		}
	}
}

func (e *echoServer) count() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.calls)
}

func (e *echoServer) call(i int) *marshal.Call {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.decoded[i]
}

func routedStack(t *testing.T, r *Router, id VMID) (transport.Endpoint, *echoServer) {
	t.Helper()
	guestEP, routerGuest := transport.NewInProc()
	routerServer, serverEP := transport.NewInProc()
	echo := &echoServer{}
	go echo.serve(serverEP)
	go r.Attach(id, routerGuest, routerServer)
	t.Cleanup(func() { guestEP.Close() })
	return guestEP, echo
}

func sendSync(t *testing.T, ep transport.Endpoint, frame []byte) *marshal.Reply {
	t.Helper()
	if err := ep.Send(marshal.EncodeBatch([][]byte{frame})); err != nil {
		t.Fatal(err)
	}
	rf, err := ep.Recv()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := marshal.DecodeReply(rf)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRouterForwardsAndReplies(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, nil, nil)
	if err := r.RegisterVM(VMConfig{ID: 1, Name: "vm1"}); err != nil {
		t.Fatal(err)
	}
	ep, echo := routedStack(t, r, 1)
	rep := sendSync(t, ep, encCall(desc, 1, "ping", 0, marshal.Uint(5)))
	if rep.Status != marshal.StatusOK {
		t.Fatalf("status = %v (%s)", rep.Status, rep.Err)
	}
	if echo.count() != 1 {
		t.Fatalf("server saw %d calls", echo.count())
	}
	st, _ := r.Stats(1)
	if st.Forwarded != 1 || st.Denied != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRouterDeniesUnknownFunction(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, nil, nil)
	r.RegisterVM(VMConfig{ID: 1})
	ep, echo := routedStack(t, r, 1)
	bad := marshal.EncodeCall(&marshal.Call{Seq: 9, Func: 777})
	rep := sendSync(t, ep, bad)
	if rep.Status != marshal.StatusDenied || rep.Seq != 9 {
		t.Fatalf("reply = %+v", rep)
	}
	if echo.count() != 0 {
		t.Fatal("denied call reached the server")
	}
}

func TestRouterDeniesArityMismatch(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, nil, nil)
	r.RegisterVM(VMConfig{ID: 1})
	ep, echo := routedStack(t, r, 1)
	rep := sendSync(t, ep, encCall(desc, 1, "ping", 0)) // missing arg
	if rep.Status != marshal.StatusDenied {
		t.Fatalf("reply = %+v", rep)
	}
	if echo.count() != 0 {
		t.Fatal("malformed call forwarded")
	}
}

func TestRouterDeniesIllegalAsync(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, nil, nil)
	r.RegisterVM(VMConfig{ID: 1})
	ep, echo := routedStack(t, r, 1)
	// ping is always-sync; an async flag must be dropped at the router.
	frame := encCall(desc, 1, "ping", marshal.FlagAsync, marshal.Uint(1))
	if err := ep.Send(marshal.EncodeBatch([][]byte{frame})); err != nil {
		t.Fatal(err)
	}
	// The next synchronization point observes the dropped call's denial
	// (§4.2 deferred-error contract), and the one after that is clean.
	rep := sendSync(t, ep, encCall(desc, 2, "ping", 0, marshal.Uint(1)))
	if rep.Status != marshal.StatusDenied || !strings.HasPrefix(rep.Err, "deferred: ") {
		t.Fatalf("reply = %+v, want deferred denial", rep)
	}
	rep = sendSync(t, ep, encCall(desc, 3, "ping", 0, marshal.Uint(1)))
	if rep.Status != marshal.StatusOK {
		t.Fatalf("reply after deferred drain = %+v", rep)
	}
	if echo.count() != 1 {
		t.Fatalf("server saw %d calls, want only the legal one", echo.count())
	}
	st, _ := r.Stats(1)
	if st.AsyncDropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRouterInterceptorVeto(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, nil, nil)
	r.RegisterVM(VMConfig{ID: 1})
	var seen []string
	r.AddInterceptor(func(vm VMID, fd *cava.FuncDesc, call *marshal.Call) error {
		seen = append(seen, fd.Name)
		if fd.Name == "push" {
			return errors.New("push is forbidden by policy")
		}
		return nil
	})
	ep, _ := routedStack(t, r, 1)
	rep := sendSync(t, ep, encCall(desc, 1, "ping", 0, marshal.Uint(1)))
	if rep.Status != marshal.StatusOK {
		t.Fatalf("ping denied: %+v", rep)
	}
	data := make([]byte, 8)
	rep = sendSync(t, ep, encCall(desc, 2, "push", 0, marshal.Uint(8), marshal.BytesVal(data)))
	if rep.Status != marshal.StatusDenied || !strings.Contains(rep.Err, "forbidden") {
		t.Fatalf("push reply = %+v", rep)
	}
	if len(seen) != 2 {
		t.Fatalf("interceptor saw %v", seen)
	}
}

func TestRouterStampsVMIdentity(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, nil, nil)
	r.RegisterVM(VMConfig{ID: 42})
	var gotVM VMID
	r.AddInterceptor(func(vm VMID, fd *cava.FuncDesc, call *marshal.Call) error {
		gotVM = call.VM
		return nil
	})
	ep, _ := routedStack(t, r, 42)
	// The guest lies about its identity; the router must overwrite it.
	fd, _ := desc.Lookup("ping")
	lie := marshal.EncodeCall(&marshal.Call{Seq: 1, VM: 7, Func: fd.ID, Args: []marshal.Value{marshal.Uint(0)}})
	sendSync(t, ep, lie)
	if gotVM != 42 {
		t.Fatalf("call.VM = %d, want 42", gotVM)
	}
}

func TestRouterRateLimitDelays(t *testing.T) {
	desc := hvDesc()
	// Use the real clock with a high rate so the test stays fast but the
	// delay is measurable.
	r := NewRouter(desc, nil, nil)
	r.RegisterVM(VMConfig{ID: 1, CallsPerSec: 200, CallBurst: 1})
	ep, _ := routedStack(t, r, 1)
	t0 := time.Now()
	for i := 0; i < 10; i++ {
		rep := sendSync(t, ep, encCall(desc, uint64(i+1), "ping", 0, marshal.Uint(1)))
		if rep.Status != marshal.StatusOK {
			t.Fatalf("reply = %+v", rep)
		}
	}
	elapsed := time.Since(t0)
	// 10 calls at 200/s with burst 1: at least ~45ms.
	if elapsed < 40*time.Millisecond {
		t.Fatalf("rate limit not enforced: %v", elapsed)
	}
	st, _ := r.Stats(1)
	if st.Stall == 0 {
		t.Fatal("stall time not recorded")
	}
}

func TestRouterResourceAccounting(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, nil, nil)
	r.RegisterVM(VMConfig{ID: 1})
	ep, _ := routedStack(t, r, 1)
	data := make([]byte, 4096)
	sendSync(t, ep, encCall(desc, 1, "push", 0, marshal.Uint(4096), marshal.BytesVal(data)))
	st, _ := r.Stats(1)
	if st.Resources["bandwidth"] != 4096 {
		t.Fatalf("resources = %v", st.Resources)
	}
	if st.Bytes == 0 {
		t.Fatal("bytes not counted")
	}
}

func TestRouterReplayBypassesRateLimit(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, nil, nil)
	// 1 call/sec: a non-replay stream would stall for seconds.
	r.RegisterVM(VMConfig{ID: 1, CallsPerSec: 1, CallBurst: 1})
	ep, echo := routedStack(t, r, 1)
	t0 := time.Now()
	for i := 0; i < 5; i++ {
		rep := sendSync(t, ep, encCall(desc, uint64(i+1), "ping", marshal.FlagReplay, marshal.Uint(1)))
		if rep.Status != marshal.StatusOK {
			t.Fatalf("reply = %+v", rep)
		}
	}
	if elapsed := time.Since(t0); elapsed > time.Second {
		t.Fatalf("replay stalled %v", elapsed)
	}
	if echo.count() != 5 {
		t.Fatalf("server saw %d", echo.count())
	}
}

func TestRouterUnknownVMAttach(t *testing.T) {
	r := NewRouter(hvDesc(), nil, nil)
	a, b := transport.NewInProc()
	defer a.Close()
	defer b.Close()
	if err := r.Attach(99, a, b); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("err = %v", err)
	}
}

func TestRouterDuplicateRegister(t *testing.T) {
	r := NewRouter(hvDesc(), nil, nil)
	if err := r.RegisterVM(VMConfig{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterVM(VMConfig{ID: 1}); err == nil {
		t.Fatal("duplicate registration allowed")
	}
	r.UnregisterVM(1)
	if err := r.RegisterVM(VMConfig{ID: 1}); err != nil {
		t.Fatalf("re-register after unregister: %v", err)
	}
}

func TestRouterStatsUnknownVM(t *testing.T) {
	r := NewRouter(hvDesc(), nil, nil)
	if _, err := r.Stats(3); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("err = %v", err)
	}
}

func TestRouterBatchPreserved(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, nil, nil)
	r.RegisterVM(VMConfig{ID: 1})
	ep, echo := routedStack(t, r, 1)
	// A batch of 3 async launches plus one sync ping.
	frames := [][]byte{
		encCall(desc, 1, "launch", marshal.FlagAsync, marshal.Uint(1024), marshal.Uint(64)),
		encCall(desc, 2, "launch", marshal.FlagAsync, marshal.Uint(1024), marshal.Uint(64)),
		encCall(desc, 3, "launch", marshal.FlagAsync, marshal.Uint(1024), marshal.Uint(64)),
		encCall(desc, 4, "ping", 0, marshal.Uint(1)),
	}
	if err := ep.Send(marshal.EncodeBatch(frames)); err != nil {
		t.Fatal(err)
	}
	rf, err := ep.Recv()
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := marshal.DecodeReply(rf)
	if rep.Seq != 4 || rep.Status != marshal.StatusOK {
		t.Fatalf("reply = %+v", rep)
	}
	if echo.count() != 4 {
		t.Fatalf("server saw %d calls", echo.count())
	}
	st, _ := r.Stats(1)
	if st.Resources["device_time"] != 3*16 {
		t.Fatalf("device_time = %d", st.Resources["device_time"])
	}
}

func TestRouterFairSchedulerIntegration(t *testing.T) {
	desc := hvDesc()
	sched := NewFairScheduler(50)
	r := NewRouter(desc, sched, nil)
	r.RegisterVM(VMConfig{ID: 1, Weight: 1})
	r.RegisterVM(VMConfig{ID: 2, Weight: 1})
	ep1, _ := routedStack(t, r, 1)
	ep2, _ := routedStack(t, r, 2)

	var wg sync.WaitGroup
	send := func(ep transport.Endpoint, n int) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			frame := encCall(desc, uint64(i+1), "launch", marshal.FlagAsync, marshal.Uint(6400), marshal.Uint(64))
			if err := ep.Send(marshal.EncodeBatch([][]byte{frame})); err != nil {
				return
			}
		}
	}
	wg.Add(2)
	go send(ep1, 50)
	go send(ep2, 50)
	wg.Wait()

	// Both VMs forwarded the same launch mix; usage should converge.
	waitFor(t, func() bool {
		s1, _ := r.Stats(1)
		s2, _ := r.Stats(2)
		return s1.Forwarded == 50 && s2.Forwarded == 50
	})
	u1, u2 := sched.Usage(1), sched.Usage(2)
	if u1 == 0 || u2 == 0 {
		t.Fatalf("usage = %d, %d", u1, u2)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestVMStatsCopyIsolated(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, nil, nil)
	r.RegisterVM(VMConfig{ID: 1})
	ep, _ := routedStack(t, r, 1)
	sendSync(t, ep, encCall(desc, 1, "push", 0, marshal.Uint(4), marshal.BytesVal(make([]byte, 4))))
	st, _ := r.Stats(1)
	st.Resources["bandwidth"] = 999999
	st2, _ := r.Stats(1)
	if st2.Resources["bandwidth"] != 4 {
		t.Fatal("Stats returned aliased map")
	}
}

func TestRouterClosePropagates(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, nil, nil)
	r.RegisterVM(VMConfig{ID: 1})
	guestEP, routerGuest := transport.NewInProc()
	routerServer, serverEP := transport.NewInProc()
	echo := &echoServer{}
	go echo.serve(serverEP)
	done := make(chan error, 1)
	go func() { done <- r.Attach(1, routerGuest, routerServer) }()
	guestEP.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Attach returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Attach did not unwind on guest close")
	}
}

func TestPoliceMalformedCallCounted(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, nil, nil)
	r.RegisterVM(VMConfig{ID: 1})
	ep, echo := routedStack(t, r, 1)
	if err := ep.Send(marshal.EncodeBatch([][]byte{{0xDE, 0xAD}})); err != nil {
		t.Fatal(err)
	}
	// Synchronize with a valid call.
	rep := sendSync(t, ep, encCall(desc, 2, "ping", 0, marshal.Uint(1)))
	if rep.Status != marshal.StatusOK {
		t.Fatalf("reply = %+v", rep)
	}
	if echo.count() != 1 {
		t.Fatal("garbage frame forwarded")
	}
	st, _ := r.Stats(1)
	if st.Denied != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConfigNamesInStats(t *testing.T) {
	r := NewRouter(hvDesc(), nil, nil)
	for i := 0; i < 3; i++ {
		if err := r.RegisterVM(VMConfig{ID: VMID(i), Name: fmt.Sprintf("vm%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Stats(VMID(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRouterResourceQuota(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, nil, nil)
	// 10 KB cumulative bandwidth allotment.
	r.RegisterVM(VMConfig{ID: 1, Quotas: map[string]int64{"bandwidth": 10 << 10}})
	ep, echo := routedStack(t, r, 1)

	data := make([]byte, 4096)
	// Two 4 KiB pushes fit; the third would exceed 10 KiB and is denied.
	for i := 0; i < 2; i++ {
		rep := sendSync(t, ep, encCall(desc, uint64(i+1), "push", 0, marshal.Uint(4096), marshal.BytesVal(data)))
		if rep.Status != marshal.StatusOK {
			t.Fatalf("push %d: %+v", i, rep)
		}
	}
	rep := sendSync(t, ep, encCall(desc, 3, "push", 0, marshal.Uint(4096), marshal.BytesVal(data)))
	if rep.Status != marshal.StatusDenied || !strings.Contains(rep.Err, "quota") {
		t.Fatalf("third push = %+v", rep)
	}
	// Unquota'd calls still flow.
	rep = sendSync(t, ep, encCall(desc, 4, "ping", 0, marshal.Uint(1)))
	if rep.Status != marshal.StatusOK {
		t.Fatalf("ping after quota denial: %+v", rep)
	}
	if echo.count() != 3 {
		t.Fatalf("server saw %d calls", echo.count())
	}
	st, _ := r.Stats(1)
	if st.Denied != 1 || st.Resources["bandwidth"] != 8192 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRouterQuotaDoesNotChargeDenied(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, nil, nil)
	r.RegisterVM(VMConfig{ID: 1, Quotas: map[string]int64{"bandwidth": 5000}})
	ep, _ := routedStack(t, r, 1)
	big := make([]byte, 8192)
	small := make([]byte, 1024)
	// Oversized push denied without consuming quota...
	rep := sendSync(t, ep, encCall(desc, 1, "push", 0, marshal.Uint(8192), marshal.BytesVal(big)))
	if rep.Status != marshal.StatusDenied {
		t.Fatalf("big push = %+v", rep)
	}
	// ...so smaller pushes still fit.
	for i := 0; i < 4; i++ {
		rep := sendSync(t, ep, encCall(desc, uint64(i+2), "push", 0, marshal.Uint(1024), marshal.BytesVal(small)))
		if rep.Status != marshal.StatusOK {
			t.Fatalf("small push %d: %+v", i, rep)
		}
	}
}

// --- PriorityScheduler ---

// admitOrder parks one waiter per entry of pris (arrival order = slice
// order) behind a held gate, then opens the gate and returns the indices
// in admission order. between, if non-nil, runs after waiter i is parked.
func admitOrder(t *testing.T, s *PriorityScheduler, pris []uint8, between func(i int)) []int {
	t.Helper()
	s.Admit(0, 1, 255) // hold the gate so waiters contend
	order := make(chan int, len(pris))
	var wg sync.WaitGroup
	for i, p := range pris {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Admit(1, 1, p)
			order <- i
			s.Done(1, 1, 0)
		}()
		// Each waiter must be parked before the next arrives, so FIFO
		// tiebreaks are deterministic.
		for s.Waiting() != i+1 {
			time.Sleep(time.Millisecond)
		}
		if between != nil {
			between(i)
		}
	}
	s.Done(0, 1, 0) // open the gate
	wg.Wait()
	close(order)
	got := make([]int, 0, len(pris))
	for i := range order {
		got = append(got, i)
	}
	return got
}

func TestPrioritySchedulerOrdersByPriority(t *testing.T) {
	// Arrival order 0,1,2 with priorities 0,5,3: a FIFO scheduler admits
	// in arrival order (its Admit never blocks), the priority scheduler
	// must serve 1 (pri 5), then 2 (pri 3), then 0 (pri 0).
	s := NewPriorityScheduler(clock.NewVirtual(), 0)
	got := admitOrder(t, s, []uint8{0, 5, 3}, nil)
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("admission order = %v, want %v", got, want)
		}
	}
	if s.Usage(1) != 3 {
		t.Fatalf("usage = %d", s.Usage(1))
	}
}

func TestPrioritySchedulerFIFOWithinLevel(t *testing.T) {
	s := NewPriorityScheduler(clock.NewVirtual(), 0)
	got := admitOrder(t, s, []uint8{7, 7, 7}, nil)
	for i, idx := range []int{0, 1, 2} {
		if got[i] != idx {
			t.Fatalf("same-priority admission order = %v, want FIFO", got)
		}
	}
}

func TestPrioritySchedulerAgingPromotes(t *testing.T) {
	// One level per millisecond of waiting: a priority-1 call parked for
	// 300ms of virtual time outranks a fresh priority-200 arrival.
	clk := clock.NewVirtual()
	s := NewPriorityScheduler(clk, time.Millisecond)
	got := admitOrder(t, s, []uint8{1, 200}, func(i int) {
		if i == 0 {
			clk.Advance(300 * time.Millisecond)
		}
	})
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("admission order = %v, want aged waiter first", got)
	}
}

// --- Router deadlines ---

// encCallDeadline builds a call frame with explicit deadline/stamp/priority
// header fields, as a guest library would emit.
func encCallDeadline(desc *cava.Descriptor, seq uint64, name string, pri uint8, encode, deadline int64, args ...marshal.Value) []byte {
	fd, ok := desc.Lookup(name)
	if !ok {
		panic(name)
	}
	c := &marshal.Call{Seq: seq, Func: fd.ID, Priority: pri, Deadline: deadline, Args: args}
	c.Stamps.Encode = encode
	return marshal.EncodeCall(c)
}

func TestRouterDeniesExpiredDeadline(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, nil, clock.NewVirtual())
	r.RegisterVM(VMConfig{ID: 1})
	ep, echo := routedStack(t, r, 1)
	// Deadline at or before the encode stamp: zero remaining budget in the
	// guest's own clock domain, regardless of router-clock skew.
	frame := encCallDeadline(desc, 7, "ping", 0, 2_000, 1_500, marshal.Uint(1))
	rep := sendSync(t, ep, frame)
	if rep.Status != marshal.StatusDeadline {
		t.Fatalf("reply = %+v, want StatusDeadline", rep)
	}
	if rep.Seq != 7 {
		t.Fatalf("reply seq = %d", rep.Seq)
	}
	if echo.count() != 0 {
		t.Fatal("expired call reached the server")
	}
	st, _ := r.Stats(1)
	if st.Denied != 1 || st.DeadlineDenied != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRouterDeniesDeadlineAfterStall(t *testing.T) {
	desc := hvDesc()
	clk := clock.NewVirtual()
	r := NewRouter(desc, nil, clk)
	// Burst 1 at 10 calls/s: the second call stalls 100ms of virtual time
	// in the rate limiter.
	r.RegisterVM(VMConfig{ID: 1, CallsPerSec: 10, CallBurst: 1})
	ep, echo := routedStack(t, r, 1)

	rep := sendSync(t, ep, encCallDeadline(desc, 1, "ping", 0, 1_000, 0, marshal.Uint(1)))
	if rep.Status != marshal.StatusOK {
		t.Fatalf("first call = %+v", rep)
	}

	// 50ms of budget cannot survive the 100ms stall: the router must deny
	// after the stall rather than forward a dead call to the silo.
	budget := (50 * time.Millisecond).Nanoseconds()
	rep = sendSync(t, ep, encCallDeadline(desc, 2, "ping", 0, 1_000, 1_000+budget, marshal.Uint(1)))
	if rep.Status != marshal.StatusDeadline {
		t.Fatalf("stalled call = %+v, want StatusDeadline", rep)
	}
	if echo.count() != 1 {
		t.Fatalf("server saw %d calls, want only the first", echo.count())
	}
	st, _ := r.Stats(1)
	if st.DeadlineDenied != 1 || st.Stall < 100*time.Millisecond {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRouterPatchesHeaderForForwarding(t *testing.T) {
	desc := hvDesc()
	clk := clock.NewVirtual()
	r := NewRouter(desc, nil, clk)
	r.RegisterVM(VMConfig{ID: 42})
	ep, echo := routedStack(t, r, 42)

	// Guest clock domain is arbitrary (epoch 5000); 1s of budget.
	budget := time.Second.Nanoseconds()
	rep := sendSync(t, ep, encCallDeadline(desc, 1, "ping", 9, 5_000, 5_000+budget, marshal.Uint(1)))
	if rep.Status != marshal.StatusOK {
		t.Fatalf("reply = %+v", rep)
	}
	got := echo.call(0)
	if got.VM != 42 {
		t.Fatalf("forwarded VM = %d, want hypervisor-asserted 42", got.VM)
	}
	if got.Priority != 9 {
		t.Fatalf("forwarded priority = %d", got.Priority)
	}
	now := clk.Now().UnixNano()
	if got.Deadline != now+budget {
		t.Fatalf("forwarded deadline = %d, want %d (re-anchored to router clock)", got.Deadline, now+budget)
	}
	if got.Stamps.Admit != now {
		t.Fatalf("admit stamp = %d, want %d", got.Stamps.Admit, now)
	}
	if got.Stamps.Encode != 5_000 {
		t.Fatalf("encode stamp clobbered: %d", got.Stamps.Encode)
	}
}

func TestRouterReplayBypassesDeadlineStall(t *testing.T) {
	// Replayed calls skip rate limiting, so their deadlines are only
	// checked at arrival; a generous deadline survives.
	desc := hvDesc()
	clk := clock.NewVirtual()
	r := NewRouter(desc, nil, clk)
	r.RegisterVM(VMConfig{ID: 1, CallsPerSec: 1, CallBurst: 1})
	ep, echo := routedStack(t, r, 1)
	rep := sendSync(t, ep, encCallDeadline(desc, 1, "ping", 0, 1_000, 0, marshal.Uint(1)))
	if rep.Status != marshal.StatusOK {
		t.Fatalf("first call = %+v", rep)
	}
	fd, _ := desc.Lookup("ping")
	c := &marshal.Call{Seq: 2, Func: fd.ID, Flags: marshal.FlagReplay, Deadline: 1_000 + time.Millisecond.Nanoseconds(), Args: []marshal.Value{marshal.Uint(1)}}
	c.Stamps.Encode = 1_000
	rep = sendSync(t, ep, marshal.EncodeCall(c))
	if rep.Status != marshal.StatusOK {
		t.Fatalf("replayed call = %+v", rep)
	}
	if echo.count() != 2 {
		t.Fatalf("server saw %d calls", echo.count())
	}
}
