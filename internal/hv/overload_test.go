package hv

import (
	"strings"
	"sync"
	"testing"
	"time"

	"ava/internal/clock"
	"ava/internal/marshal"
)

// --- PriorityBuckets ---

func TestPriorityBucketsFloorIsolation(t *testing.T) {
	clk := clock.NewVirtual()
	shares := [NumPriorityBands]float64{0.25, 0.25, 0.25, 0.25}
	pb := NewPriorityBuckets(100, 8, shares, clk)
	// Saturate band 0 far past its floor and the whole aggregate.
	if d := pb.Reserve(0, 100); d <= 0 {
		t.Fatalf("saturating reservation delayed %v, want > 0", d)
	}
	// Band 3's floor (2 tokens) is untouched: no delay despite the
	// exhausted shared bucket.
	if d := pb.Reserve(3, 1); d != 0 {
		t.Fatalf("high band delayed %v by low-band saturation", d)
	}
	if d := pb.Reserve(3, 1); d != 0 {
		t.Fatalf("high band second floor token delayed %v", d)
	}
	// Past its floor, band 3 must now wait like everyone else.
	if d := pb.Reserve(3, 1); d <= 0 {
		t.Fatal("band 3 past floor and past aggregate should wait")
	}
}

func TestPriorityBucketsBorrowSpareCapacity(t *testing.T) {
	clk := clock.NewVirtual()
	shares := [NumPriorityBands]float64{0.25, 0.25, 0.25, 0.25}
	pb := NewPriorityBuckets(100, 8, shares, clk)
	// Band 0's floor holds 2 tokens; the remaining burst is spare
	// aggregate capacity it may borrow, so 8 tokens flow without delay.
	for i := 0; i < 8; i++ {
		if d := pb.Reserve(0, 1); d != 0 {
			t.Fatalf("token %d delayed %v, want borrow at no delay", i, d)
		}
	}
	// The 9th finds both floor and aggregate dry: it waits for the
	// cheaper of the two refills — the aggregate at 100/s, 10ms.
	if d := pb.Reserve(0, 1); d != 10*time.Millisecond {
		t.Fatalf("9th token delay = %v, want 10ms", d)
	}
}

func TestPriorityBucketsZeroShareBand(t *testing.T) {
	clk := clock.NewVirtual()
	// Only band 0 has a floor; band 3 has no reservation and settles
	// against the shared bucket.
	pb := NewPriorityBuckets(10, 1, [NumPriorityBands]float64{1, 0, 0, 0}, clk)
	if d := pb.Reserve(3, 1); d != 0 {
		t.Fatalf("first shared token delayed %v", d)
	}
	if d := pb.Reserve(3, 1); d != 100*time.Millisecond {
		t.Fatalf("second token delay = %v, want 100ms (no free pass for floor-less bands)", d)
	}
}

func TestPriorityBucketsUnlimited(t *testing.T) {
	var pb *PriorityBuckets
	if !pb.Unlimited() {
		t.Fatal("nil hierarchy should be unlimited")
	}
	pb = NewPriorityBuckets(0, 0, [NumPriorityBands]float64{}, clock.NewVirtual())
	if !pb.Unlimited() {
		t.Fatal("zero-rate hierarchy should be unlimited")
	}
	if d := pb.Reserve(0, 1e9); d != 0 {
		t.Fatalf("unlimited Reserve = %v", d)
	}
}

func TestPriorityBandMapping(t *testing.T) {
	cases := []struct {
		pri  uint8
		band int
	}{{0, 0}, {63, 0}, {64, 1}, {127, 1}, {128, 2}, {192, 3}, {255, 3}}
	for _, c := range cases {
		if got := PriorityBand(c.pri); got != c.band {
			t.Fatalf("PriorityBand(%d) = %d, want %d", c.pri, got, c.band)
		}
	}
}

// --- TokenBucket concurrency ---

// Parallel Wait callers must never admit tokens faster than the configured
// rate: n admissions need at least (n-burst)/rate seconds of (virtual)
// time no matter how the callers interleave.
func TestTokenBucketConcurrentWaiters(t *testing.T) {
	clk := clock.NewVirtual()
	const (
		rate    = 100.0
		burst   = 10.0
		workers = 8
		perG    = 50
	)
	tb := NewTokenBucket(rate, burst, clk)
	t0 := clk.Now()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tb.Wait(1)
			}
		}()
	}
	wg.Wait()
	elapsed := clk.Since(t0).Seconds()
	if min := (workers*perG - burst) / rate; elapsed < min-0.001 {
		t.Fatalf("%d tokens admitted in %.3fs, rate limit requires >= %.3fs", workers*perG, elapsed, min)
	}
}

// An oversized reservation (n > burst) is admitted after a proportional
// delay and must not wedge the bucket for subsequent callers.
func TestTokenBucketOversizedReservation(t *testing.T) {
	clk := clock.NewVirtual()
	tb := NewTokenBucket(10, 5, clk)
	if d := tb.Wait(50); d != 4500*time.Millisecond {
		t.Fatalf("oversized Wait delay = %v, want 4.5s", d)
	}
	// The wait paid off the whole debt: the next caller sees a normal
	// one-token refill delay, not a wedged bucket.
	d := tb.Reserve(1)
	if d < 99*time.Millisecond || d > 101*time.Millisecond {
		t.Fatalf("post-oversized Reserve delay = %v, want ~100ms", d)
	}
}

// --- Bugfix regressions ---

// Regression: police must reserve the call and byte buckets up front and
// sleep once for the larger delay. The old sequential Wait-then-Wait lost
// refill credit to the byte bucket's burst cap while sleeping out a long
// call-bucket delay, charging more than the overlap.
func TestRouterStallIsMaxNotSum(t *testing.T) {
	desc := hvDesc()
	clk := clock.NewVirtual()
	r := NewRouter(desc, nil, clk)
	// One call per 10s (burst 1); 1000 B/s with a 100-byte burst. A single
	// share puts everything in band 0, making both levels of the hierarchy
	// identical to plain buckets.
	r.RegisterVM(VMConfig{
		ID: 1, CallsPerSec: 0.1, CallBurst: 1, BytesPerSec: 1000, ByteBurst: 100,
		PriorityShares: [NumPriorityBands]float64{1, 0, 0, 0},
	})
	ep, echo := routedStack(t, r, 1)

	// First call: a small ping fits both bursts, no stall.
	if rep := sendSync(t, ep, encCall(desc, 1, "ping", 0, marshal.Uint(1))); rep.Status != marshal.StatusOK {
		t.Fatalf("ping reply = %+v", rep)
	}
	// Second call: a 300-byte push. Call bucket wants 10s, byte bucket
	// ~0.3s; the stall must be their max (10s), not 10s plus whatever the
	// byte bucket re-charges after its burst-capped refill.
	data := make([]byte, 300)
	if rep := sendSync(t, ep, encCall(desc, 2, "push", 0, marshal.Uint(300), marshal.BytesVal(data))); rep.Status != marshal.StatusOK {
		t.Fatalf("push reply = %+v", rep)
	}
	if echo.count() != 2 {
		t.Fatalf("server saw %d calls", echo.count())
	}
	st, _ := r.Stats(1)
	if st.Stall != 10*time.Second {
		t.Fatalf("combined stall = %v, want exactly 10s (the max, not the sum)", st.Stall)
	}
	if st.BandStall[0] != st.Stall {
		t.Fatalf("band-0 stall = %v, want all of %v", st.BandStall[0], st.Stall)
	}
}

// Regression: a call with a deadline but no encode stamp must be anchored
// at admission on the router's clock, not misread as a near-infinite
// relative budget. Both skew directions: a deadline already behind the
// router's clock is denied; one ahead is admitted with the right budget.
func TestRouterDeadlineUnstampedEncode(t *testing.T) {
	desc := hvDesc()
	clk := clock.NewVirtual()
	r := NewRouter(desc, nil, clk)
	r.RegisterVM(VMConfig{ID: 1})
	ep, echo := routedStack(t, r, 1)
	now := clk.Now().UnixNano()

	// Deadline in the router's past, encode unstamped: deny.
	past := now - int64(time.Second)
	rep := sendSync(t, ep, encCallDeadline(desc, 1, "ping", 0, 0, past, marshal.Uint(1)))
	if rep.Status != marshal.StatusDeadline {
		t.Fatalf("expired unstamped call: reply = %+v, want deadline denial", rep)
	}
	st, _ := r.Stats(1)
	if st.DeadlineDenied != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Deadline in the router's future: admit, and the forwarded header
	// carries the same absolute instant re-anchored on the router's clock.
	future := now + int64(50*time.Millisecond)
	rep = sendSync(t, ep, encCallDeadline(desc, 2, "ping", 0, 0, future, marshal.Uint(1)))
	if rep.Status != marshal.StatusOK {
		t.Fatalf("future unstamped call: reply = %+v", rep)
	}
	if echo.count() != 1 {
		t.Fatalf("server saw %d calls", echo.count())
	}
	if got := echo.call(0).Deadline; got != future {
		t.Fatalf("forwarded deadline = %d, want %d (anchored at admission)", got, future)
	}
}

// Regression: an async call denied at the router must fail the VM's next
// synchronous call (§4.2's deferred-error contract) instead of vanishing
// into a counter.
func TestRouterDeferredAsyncDenial(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, nil, clock.NewVirtual())
	r.RegisterVM(VMConfig{ID: 1, Quotas: map[string]int64{"device_time": 10}})
	ep, echo := routedStack(t, r, 1)

	// Async launch whose device-time estimate (64/1) blows the quota: the
	// router drops it with no reply.
	frame := encCall(desc, 1, "launch", marshal.FlagAsync, marshal.Uint(64), marshal.Uint(1))
	if err := ep.Send(marshal.EncodeBatch([][]byte{frame})); err != nil {
		t.Fatal(err)
	}
	// The next synchronization point surfaces the recorded denial.
	rep := sendSync(t, ep, encCall(desc, 2, "ping", 0, marshal.Uint(1)))
	if rep.Status != marshal.StatusDenied {
		t.Fatalf("sync after dropped async: reply = %+v, want denial", rep)
	}
	if !strings.HasPrefix(rep.Err, "deferred: ") || !strings.Contains(rep.Err, "quota") {
		t.Fatalf("deferred error text = %q", rep.Err)
	}
	// The slot drains: the following sync call is clean.
	rep = sendSync(t, ep, encCall(desc, 3, "ping", 0, marshal.Uint(1)))
	if rep.Status != marshal.StatusOK {
		t.Fatalf("reply after deferred drain = %+v", rep)
	}
	if echo.count() != 1 {
		t.Fatalf("server saw %d calls, want only the clean ping", echo.count())
	}
	st, _ := r.Stats(1)
	// Two denials: the dropped async call and the sync call that absorbed
	// its deferred error.
	if st.AsyncDropped != 1 || st.Denied != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// --- Load shedding ---

// fakeLoadSched is a pass-through scheduler reporting configurable load.
type fakeLoadSched struct {
	mu    sync.Mutex
	depth int
	stall time.Duration
}

func (f *fakeLoadSched) Admit(vm VMID, cost int64, pri uint8)     {}
func (f *fakeLoadSched) Done(vm VMID, cost int64, measured int64) {}
func (f *fakeLoadSched) Usage(vm VMID) int64                      { return 0 }
func (f *fakeLoadSched) set(depth int, stall time.Duration) {
	f.mu.Lock()
	f.depth, f.stall = depth, stall
	f.mu.Unlock()
}
func (f *fakeLoadSched) QueueDepth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.depth
}
func (f *fakeLoadSched) RecentStall() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stall
}

func TestRouterShedsLowPriorityOnQueueDepth(t *testing.T) {
	desc := hvDesc()
	sched := &fakeLoadSched{}
	r := NewRouter(desc, sched, clock.NewVirtual())
	r.SetShedPolicy(ShedConfig{MaxQueueDepth: 5})
	r.RegisterVM(VMConfig{ID: 1})
	ep, echo := routedStack(t, r, 1)

	sched.set(10, 0) // overloaded
	// Band-0 sync call: immediate StatusOverload denial.
	rep := sendSync(t, ep, encCallDeadline(desc, 1, "ping", 0, 0, 0, marshal.Uint(1)))
	if rep.Status != marshal.StatusOverload {
		t.Fatalf("low-priority reply = %+v, want overload", rep)
	}
	// High-priority traffic is never shed.
	rep = sendSync(t, ep, encCallDeadline(desc, 2, "ping", 200, 0, 0, marshal.Uint(1)))
	if rep.Status != marshal.StatusOK {
		t.Fatalf("high-priority reply = %+v", rep)
	}
	// Async band-0 call: shed silently, surfaced at the next sync point.
	frame := encCall(desc, 3, "launch", marshal.FlagAsync, marshal.Uint(4), marshal.Uint(1))
	if err := ep.Send(marshal.EncodeBatch([][]byte{frame})); err != nil {
		t.Fatal(err)
	}
	rep = sendSync(t, ep, encCallDeadline(desc, 4, "ping", 200, 0, 0, marshal.Uint(1)))
	if rep.Status != marshal.StatusOverload || !strings.HasPrefix(rep.Err, "deferred: ") {
		t.Fatalf("sync after shed async: reply = %+v, want deferred overload", rep)
	}

	sched.set(0, 0) // pressure gone: band 0 flows again
	rep = sendSync(t, ep, encCallDeadline(desc, 5, "ping", 0, 0, 0, marshal.Uint(1)))
	if rep.Status != marshal.StatusOK {
		t.Fatalf("post-overload reply = %+v", rep)
	}
	// Forwarded: the first high-priority ping and the post-overload ping
	// (the second high-priority ping absorbed the deferred denial).
	if echo.count() != 2 {
		t.Fatalf("server saw %d calls", echo.count())
	}
	st, _ := r.Stats(1)
	if st.ShedDenied != 2 || st.AsyncDropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// The router's own rate-limit stall EWMA trips MaxRecentStall even with a
// non-introspective scheduler.
func TestRouterShedsOnRecentRateLimitStall(t *testing.T) {
	desc := hvDesc()
	clk := clock.NewVirtual()
	r := NewRouter(desc, nil, clk) // FIFO: no LoadIntrospector
	r.SetShedPolicy(ShedConfig{MaxRecentStall: 10 * time.Millisecond})
	r.RegisterVM(VMConfig{ID: 1, CallsPerSec: 10, CallBurst: 1})
	ep, _ := routedStack(t, r, 1)

	// First call rides the burst; the second stalls 100ms borrowing from
	// the shared bucket, pushing the EWMA (alpha 1/8) to 12.5ms.
	for seq := uint64(1); seq <= 2; seq++ {
		if rep := sendSync(t, ep, encCall(desc, seq, "ping", 0, marshal.Uint(1))); rep.Status != marshal.StatusOK {
			t.Fatalf("warm-up reply = %+v", rep)
		}
	}
	if got := r.RecentStall(); got < 10*time.Millisecond {
		t.Fatalf("RecentStall = %v, want >= threshold", got)
	}
	// Now band 0 is shed without stalling...
	rep := sendSync(t, ep, encCall(desc, 3, "ping", 0, marshal.Uint(1)))
	if rep.Status != marshal.StatusOverload {
		t.Fatalf("low-priority reply = %+v, want overload", rep)
	}
	// ...while band 3 rides its floor, un-stalled and un-shed.
	rep = sendSync(t, ep, encCallDeadline(desc, 4, "ping", 255, 0, 0, marshal.Uint(1)))
	if rep.Status != marshal.StatusOK {
		t.Fatalf("high-priority reply = %+v", rep)
	}
	st, _ := r.Stats(1)
	if st.ShedDenied != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BandStall[3] != 0 {
		t.Fatalf("high band absorbed stall %v", st.BandStall[3])
	}
}

// Stats (and the shed signals) must be safely readable while an Attach
// loop is actively policing traffic; run under -race.
func TestRouterStatsRaceWithAttach(t *testing.T) {
	desc := hvDesc()
	r := NewRouter(desc, NewPriorityScheduler(nil, 0), nil)
	r.SetShedPolicy(ShedConfig{MaxRecentStall: time.Hour}) // enabled, never trips
	r.RegisterVM(VMConfig{ID: 1, CallsPerSec: 1e9, CallBurst: 1e9})
	ep, _ := routedStack(t, r, 1)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := r.Stats(1); err != nil {
				return
			}
			r.RecentStall()
		}
	}()
	for seq := uint64(1); seq <= 300; seq++ {
		if rep := sendSync(t, ep, encCall(desc, seq, "ping", uint16(0), marshal.Uint(1))); rep.Status != marshal.StatusOK {
			t.Fatalf("reply = %+v", rep)
		}
	}
	close(done)
	wg.Wait()
	st, _ := r.Stats(1)
	if st.Forwarded != 300 {
		t.Fatalf("stats = %+v", st)
	}
}
