// Package hv is the hypervisor-level half of AvA: the VM abstraction and
// the invocation router.
//
// The router is what distinguishes AvA from prior API-remoting systems that
// forward calls over plain RPC and lose interposition (§2). Every forwarded
// call crosses the router, where the hypervisor can verify it against the
// API specification, enforce sharing policy (token-bucket rate limits on
// call and data rates, §4.3's "command rate-limiting"), schedule it against
// contending VMs using the specification's resource estimates, and observe
// it (interceptors) — without understanding the accelerator underneath.
package hv

import (
	"sync"
	"time"

	"ava/internal/clock"
)

// TokenBucket is a standard token-bucket limiter over an injectable clock.
// A zero rate means unlimited.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	clk    clock.Clock
}

// NewTokenBucket creates a bucket that refills at rate tokens/second up to
// burst. The bucket starts full.
func NewTokenBucket(rate float64, burst float64, clk clock.Clock) *TokenBucket {
	if clk == nil {
		clk = clock.NewReal()
	}
	if burst <= 0 {
		burst = rate
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: clk.Now(), clk: clk}
}

// Unlimited reports whether the bucket imposes no limit.
func (tb *TokenBucket) Unlimited() bool { return tb == nil || tb.rate <= 0 }

func (tb *TokenBucket) refill(now time.Time) {
	dt := now.Sub(tb.last).Seconds()
	if dt > 0 {
		tb.tokens += dt * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
}

// Reserve withdraws n tokens, going negative if necessary, and returns how
// long the caller must wait before proceeding so the long-run rate holds.
// Oversized requests (n > burst) are still admitted after a proportional
// delay — a single huge DMA must not wedge the VM forever.
func (tb *TokenBucket) Reserve(n float64) time.Duration {
	if tb.Unlimited() || n <= 0 {
		return 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refill(tb.clk.Now())
	tb.tokens -= n
	if tb.tokens >= 0 {
		return 0
	}
	return time.Duration(-tb.tokens / tb.rate * float64(time.Second))
}

// Wait reserves n tokens and sleeps out the required delay on the bucket's
// clock.
func (tb *TokenBucket) Wait(n float64) time.Duration {
	d := tb.Reserve(n)
	if d > 0 {
		tb.clk.Sleep(d)
	}
	return d
}

// Tokens returns the current token count (after refill), for tests and
// introspection.
func (tb *TokenBucket) Tokens() float64 {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refill(tb.clk.Now())
	return tb.tokens
}
