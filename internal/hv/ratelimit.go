// Package hv is the hypervisor-level half of AvA: the VM abstraction and
// the invocation router.
//
// The router is what distinguishes AvA from prior API-remoting systems that
// forward calls over plain RPC and lose interposition (§2). Every forwarded
// call crosses the router, where the hypervisor can verify it against the
// API specification, enforce sharing policy (token-bucket rate limits on
// call and data rates, §4.3's "command rate-limiting"), schedule it against
// contending VMs using the specification's resource estimates, and observe
// it (interceptors) — without understanding the accelerator underneath.
package hv

import (
	"sync"
	"time"

	"ava/internal/clock"
)

// TokenBucket is a standard token-bucket limiter over an injectable clock.
// A zero rate means unlimited.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	clk    clock.Clock
}

// NewTokenBucket creates a bucket that refills at rate tokens/second up to
// burst. The bucket starts full.
func NewTokenBucket(rate float64, burst float64, clk clock.Clock) *TokenBucket {
	if clk == nil {
		clk = clock.NewReal()
	}
	if burst <= 0 {
		burst = rate
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: clk.Now(), clk: clk}
}

// Unlimited reports whether the bucket imposes no limit.
func (tb *TokenBucket) Unlimited() bool { return tb == nil || tb.rate <= 0 }

func (tb *TokenBucket) refill(now time.Time) {
	dt := now.Sub(tb.last).Seconds()
	if dt > 0 {
		tb.tokens += dt * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
}

// Reserve withdraws n tokens, going negative if necessary, and returns how
// long the caller must wait before proceeding so the long-run rate holds.
// Oversized requests (n > burst) are still admitted after a proportional
// delay — a single huge DMA must not wedge the VM forever.
func (tb *TokenBucket) Reserve(n float64) time.Duration {
	if tb.Unlimited() || n <= 0 {
		return 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refill(tb.clk.Now())
	tb.tokens -= n
	if tb.tokens >= 0 {
		return 0
	}
	return time.Duration(-tb.tokens / tb.rate * float64(time.Second))
}

// Wait reserves n tokens and sleeps out the required delay on the bucket's
// clock.
func (tb *TokenBucket) Wait(n float64) time.Duration {
	d := tb.Reserve(n)
	if d > 0 {
		tb.clk.Sleep(d)
	}
	return d
}

// Tokens returns the current token count (after refill), for tests and
// introspection.
func (tb *TokenBucket) Tokens() float64 {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refill(tb.clk.Now())
	return tb.tokens
}

// reserveDelay returns the wait n tokens would require right now, without
// withdrawing them. charge withdraws unconditionally. Together they let
// PriorityBuckets compose a peek-then-charge decision across several
// buckets atomically (under its own lock).
func (tb *TokenBucket) reserveDelay(n float64) time.Duration {
	if tb.Unlimited() || n <= 0 {
		return 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refill(tb.clk.Now())
	if t := tb.tokens - n; t < 0 {
		return time.Duration(-t / tb.rate * float64(time.Second))
	}
	return 0
}

func (tb *TokenBucket) charge(n float64) {
	if tb.Unlimited() || n <= 0 {
		return
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refill(tb.clk.Now())
	tb.tokens -= n
}

// NumPriorityBands is how many priority bands the router's QoS machinery
// distinguishes. The call header's 0-255 priority byte maps onto bands by
// its two top bits, so band boundaries stay stable however guests pick
// byte values within a class.
const NumPriorityBands = 4

// PriorityBand maps a guest-stamped priority byte to its band index
// (0 = lowest, NumPriorityBands-1 = highest).
func PriorityBand(pri uint8) int { return int(pri >> 6) }

// DefaultPriorityShares is the per-band split of a VM's rate when the VM
// config does not override it: higher bands reserve larger floors.
var DefaultPriorityShares = [NumPriorityBands]float64{0.1, 0.2, 0.3, 0.4}

// PriorityBuckets is a two-level token-bucket hierarchy: a shared bucket
// enforcing the VM's aggregate rate, plus one reserved sub-bucket per
// priority band ("floor"). A call admitted within its band's floor never
// waits on the shared bucket, so saturating low-priority traffic cannot
// stall high-priority calls on the same VM; a band past its floor may
// borrow whatever aggregate headroom the shared bucket has spare, which
// keeps the hierarchy work-conserving. A band with a zero share has no
// floor and always settles against the shared bucket.
type PriorityBuckets struct {
	mu     sync.Mutex
	shared *TokenBucket
	sub    [NumPriorityBands]*TokenBucket // nil where the share is zero
}

// NewPriorityBuckets creates the hierarchy. rate<=0 means unlimited; an
// all-zero shares array selects DefaultPriorityShares, and shares are
// normalized so floors always partition the aggregate rate.
func NewPriorityBuckets(rate, burst float64, shares [NumPriorityBands]float64, clk clock.Clock) *PriorityBuckets {
	pb := &PriorityBuckets{}
	if rate <= 0 {
		return pb
	}
	var sum float64
	for _, s := range shares {
		if s > 0 {
			sum += s
		}
	}
	if sum <= 0 {
		shares, sum = DefaultPriorityShares, 1
	}
	if burst <= 0 {
		burst = rate
	}
	pb.shared = NewTokenBucket(rate, burst, clk)
	for i, s := range shares {
		if s <= 0 {
			continue
		}
		sb := s / sum * burst
		if sb < 1 {
			sb = 1 // a floor that cannot hold one call is no floor at all
		}
		pb.sub[i] = NewTokenBucket(s/sum*rate, sb, clk)
	}
	return pb
}

// Unlimited reports whether the hierarchy imposes no limit.
func (pb *PriorityBuckets) Unlimited() bool { return pb == nil || pb.shared.Unlimited() }

// Reserve withdraws n tokens for a band-b call and returns the delay the
// caller must sleep before proceeding. Within its floor a band pays no
// delay regardless of the shared bucket's debt; past the floor it takes
// the cheaper of waiting out its own floor or borrowing shared headroom.
func (pb *PriorityBuckets) Reserve(band int, n float64) time.Duration {
	if pb.Unlimited() || n <= 0 {
		return 0
	}
	if band < 0 {
		band = 0
	} else if band >= NumPriorityBands {
		band = NumPriorityBands - 1
	}
	pb.mu.Lock()
	defer pb.mu.Unlock()
	sub := pb.sub[band]
	if sub == nil {
		d := pb.shared.reserveDelay(n)
		pb.shared.charge(n)
		return d
	}
	subD := sub.reserveDelay(n)
	if subD == 0 {
		// Floors are carved out of the aggregate, so the shared bucket is
		// charged too — but never waited on.
		sub.charge(n)
		pb.shared.charge(n)
		return 0
	}
	if sharedD := pb.shared.reserveDelay(n); sharedD < subD {
		pb.shared.charge(n)
		return sharedD
	}
	sub.charge(n)
	pb.shared.charge(n)
	return subD
}

// SharedTokens and SubTokens expose bucket levels for tests and
// introspection; SubTokens reports 0 for floor-less bands.
func (pb *PriorityBuckets) SharedTokens() float64 {
	if pb.Unlimited() {
		return 0
	}
	pb.mu.Lock()
	defer pb.mu.Unlock()
	return pb.shared.Tokens()
}

func (pb *PriorityBuckets) SubTokens(band int) float64 {
	if pb.Unlimited() || band < 0 || band >= NumPriorityBands || pb.sub[band] == nil {
		return 0
	}
	pb.mu.Lock()
	defer pb.mu.Unlock()
	return pb.sub[band].Tokens()
}
