package hv

import (
	"sync"
	"time"

	"ava/internal/clock"
)

// Scheduler orders forwarded calls across contending VMs at function-call
// granularity (§4.3). Admit blocks the forwarding path of a VM until its
// call may proceed; Done reports the call's cost so the scheduler can
// account usage. Costs are the specification's resource-usage
// approximations — e.g. estimated device time for a kernel launch — which
// the paper conjectures are accurate enough for useful performance
// isolation.
type Scheduler interface {
	// Admit blocks until vm may forward a call with the given estimated
	// cost (nanoseconds of device time, or an abstract cost unit) and
	// guest-stamped priority (higher is more urgent; schedulers without a
	// priority policy ignore it).
	Admit(vm VMID, cost int64, pri uint8)
	// Done reports that the admitted call finished; measured, if positive,
	// replaces the estimate in the VM's accounting.
	Done(vm VMID, cost int64, measured int64)
	// Usage returns the accumulated normalized usage for a VM.
	Usage(vm VMID) int64
}

// LoadIntrospector is implemented by schedulers that can report admission
// pressure: the number of calls parked at the gate and a recent-stall
// signal (an exponentially weighted average of how long granted calls
// waited). The router's load shedder consults it when deciding to deny
// low-priority calls under overload.
type LoadIntrospector interface {
	QueueDepth() int
	RecentStall() time.Duration
}

// FIFOScheduler admits every call immediately: the no-policy baseline.
type FIFOScheduler struct {
	mu    sync.Mutex
	usage map[VMID]int64
}

// NewFIFOScheduler returns the pass-through scheduler.
func NewFIFOScheduler() *FIFOScheduler {
	return &FIFOScheduler{usage: make(map[VMID]int64)}
}

// Admit implements Scheduler.
func (s *FIFOScheduler) Admit(vm VMID, cost int64, pri uint8) {}

// Done implements Scheduler.
func (s *FIFOScheduler) Done(vm VMID, cost int64, measured int64) {
	if measured > 0 {
		cost = measured
	}
	s.mu.Lock()
	s.usage[vm] += cost
	s.mu.Unlock()
}

// Usage implements Scheduler.
func (s *FIFOScheduler) Usage(vm VMID) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usage[vm]
}

// FairScheduler implements weighted device-time fair sharing. Each VM
// accumulates cost normalized by its weight; a VM is blocked while it is
// more than window ahead of the furthest-behind VM that currently has work
// waiting. This is start-time fair queuing degenerated to one queue slot
// per VM, which matches the router's per-VM serial forwarding.
type FairScheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	weights map[VMID]int64
	usage   map[VMID]int64 // normalized accumulated cost
	waiting map[VMID]int   // VMs blocked in or about to pass Admit
	window  int64
}

// NewFairScheduler creates a fair scheduler. window is the allowed
// normalized-usage lead (e.g. 10ms of device time) before a VM is held
// back; weights default to 1.
func NewFairScheduler(window time.Duration) *FairScheduler {
	s := &FairScheduler{
		weights: make(map[VMID]int64),
		usage:   make(map[VMID]int64),
		waiting: make(map[VMID]int),
		window:  int64(window),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// SetWeight assigns a VM's share weight (higher = larger share).
func (s *FairScheduler) SetWeight(vm VMID, w int64) {
	if w <= 0 {
		w = 1
	}
	s.mu.Lock()
	s.weights[vm] = w
	s.mu.Unlock()
}

func (s *FairScheduler) weight(vm VMID) int64 {
	if w, ok := s.weights[vm]; ok {
		return w
	}
	return 1
}

// minWaitingUsage returns the lowest normalized usage among VMs with work
// pending, excluding self; ok is false if self is the only contender.
func (s *FairScheduler) minWaitingUsage(self VMID) (int64, bool) {
	found := false
	var m int64
	for vm, n := range s.waiting {
		if vm == self || n <= 0 {
			continue
		}
		u := s.usage[vm]
		if !found || u < m {
			m, found = u, true
		}
	}
	return m, found
}

// Admit implements Scheduler. Fair sharing is priority-blind: pri is
// ignored (use PriorityScheduler for urgency ordering).
func (s *FairScheduler) Admit(vm VMID, cost int64, pri uint8) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waiting[vm]++
	for {
		minU, contended := s.minWaitingUsage(vm)
		if !contended || s.usage[vm] <= minU+s.window {
			break
		}
		s.cond.Wait()
	}
	// Charge the estimate up front so concurrent admits see it.
	s.usage[vm] += cost / s.weight(vm)
}

// Done implements Scheduler.
func (s *FairScheduler) Done(vm VMID, cost int64, measured int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if measured > 0 && measured != cost {
		// Replace the estimate with the measurement.
		s.usage[vm] += (measured - cost) / s.weight(vm)
	}
	s.waiting[vm]--
	if s.waiting[vm] <= 0 {
		delete(s.waiting, vm)
	}
	s.cond.Broadcast()
}

// Usage implements Scheduler.
func (s *FairScheduler) Usage(vm VMID) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usage[vm]
}

// Reset clears accumulated usage (administrative epoch change).
func (s *FairScheduler) Reset() {
	s.mu.Lock()
	for vm := range s.usage {
		s.usage[vm] = 0
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// PriorityScheduler serializes admission through a single gate and serves
// waiters strictly by priority — highest guest-stamped priority first, FIFO
// within a level. To bound starvation, a waiter's effective priority is
// aged upward by one level per agingQuantum of waiting, so a long-parked
// low-priority call eventually outranks fresh high-priority arrivals.
// Effective priorities are evaluated against the scheduler's clock each
// time the gate opens, which keeps aging deterministic on a virtual clock.
type PriorityScheduler struct {
	clk   clock.Clock
	aging time.Duration

	mu     sync.Mutex
	cond   *sync.Cond
	usage  map[VMID]int64
	queue  []*priWaiter
	seq    uint64
	busy   bool
	recent time.Duration // EWMA of grant wait times
}

// priWaiter is one call parked at the admission gate.
type priWaiter struct {
	vm      VMID
	pri     uint8
	seq     uint64 // arrival order, tiebreak within a priority level
	parked  time.Time
	granted bool
}

// NewPriorityScheduler creates a strict-priority scheduler. agingQuantum
// is the waiting time that promotes a parked call by one priority level
// (0 disables aging); a nil clock selects the wall clock.
func NewPriorityScheduler(clk clock.Clock, agingQuantum time.Duration) *PriorityScheduler {
	if clk == nil {
		clk = clock.NewReal()
	}
	s := &PriorityScheduler{clk: clk, aging: agingQuantum, usage: make(map[VMID]int64)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// effective returns w's aged priority as of now.
func (s *PriorityScheduler) effective(w *priWaiter, now time.Time) int {
	p := int(w.pri)
	if s.aging > 0 {
		p += int(now.Sub(w.parked) / s.aging)
	}
	if p > 255 {
		p = 255
	}
	return p
}

// grantLocked opens the gate for the best waiter, if any. Called with
// s.mu held and the gate free.
func (s *PriorityScheduler) grantLocked() {
	if s.busy || len(s.queue) == 0 {
		return
	}
	now := s.clk.Now()
	best := 0
	for i := 1; i < len(s.queue); i++ {
		pi, pb := s.effective(s.queue[i], now), s.effective(s.queue[best], now)
		if pi > pb || (pi == pb && s.queue[i].seq < s.queue[best].seq) {
			best = i
		}
	}
	w := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	w.granted = true
	s.busy = true
	// Fold this grant's park time into the recent-stall EWMA (alpha 1/8);
	// zero-wait grants decay it, so the signal tracks current pressure.
	s.recent += (now.Sub(w.parked) - s.recent) / 8
	s.cond.Broadcast()
}

// Admit implements Scheduler.
func (s *PriorityScheduler) Admit(vm VMID, cost int64, pri uint8) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	w := &priWaiter{vm: vm, pri: pri, seq: s.seq, parked: s.clk.Now()}
	s.queue = append(s.queue, w)
	s.grantLocked()
	for !w.granted {
		s.cond.Wait()
	}
}

// Done implements Scheduler.
func (s *PriorityScheduler) Done(vm VMID, cost int64, measured int64) {
	if measured > 0 {
		cost = measured
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.usage[vm] += cost
	s.busy = false
	s.grantLocked()
}

// Usage implements Scheduler.
func (s *PriorityScheduler) Usage(vm VMID) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usage[vm]
}

// Waiting returns the number of calls parked at the gate (tests use this
// to sequence contention deterministically).
func (s *PriorityScheduler) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// QueueDepth implements LoadIntrospector: calls parked at the gate now.
func (s *PriorityScheduler) QueueDepth() int { return s.Waiting() }

// RecentStall implements LoadIntrospector: an exponentially weighted
// average of how long recently granted calls waited at the gate.
func (s *PriorityScheduler) RecentStall() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recent
}
