package hv

import (
	"sync"
	"time"
)

// Scheduler orders forwarded calls across contending VMs at function-call
// granularity (§4.3). Admit blocks the forwarding path of a VM until its
// call may proceed; Done reports the call's cost so the scheduler can
// account usage. Costs are the specification's resource-usage
// approximations — e.g. estimated device time for a kernel launch — which
// the paper conjectures are accurate enough for useful performance
// isolation.
type Scheduler interface {
	// Admit blocks until vm may forward a call with the given estimated
	// cost (nanoseconds of device time, or an abstract cost unit).
	Admit(vm VMID, cost int64)
	// Done reports that the admitted call finished; measured, if positive,
	// replaces the estimate in the VM's accounting.
	Done(vm VMID, cost int64, measured int64)
	// Usage returns the accumulated normalized usage for a VM.
	Usage(vm VMID) int64
}

// FIFOScheduler admits every call immediately: the no-policy baseline.
type FIFOScheduler struct {
	mu    sync.Mutex
	usage map[VMID]int64
}

// NewFIFOScheduler returns the pass-through scheduler.
func NewFIFOScheduler() *FIFOScheduler {
	return &FIFOScheduler{usage: make(map[VMID]int64)}
}

// Admit implements Scheduler.
func (s *FIFOScheduler) Admit(vm VMID, cost int64) {}

// Done implements Scheduler.
func (s *FIFOScheduler) Done(vm VMID, cost int64, measured int64) {
	if measured > 0 {
		cost = measured
	}
	s.mu.Lock()
	s.usage[vm] += cost
	s.mu.Unlock()
}

// Usage implements Scheduler.
func (s *FIFOScheduler) Usage(vm VMID) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usage[vm]
}

// FairScheduler implements weighted device-time fair sharing. Each VM
// accumulates cost normalized by its weight; a VM is blocked while it is
// more than window ahead of the furthest-behind VM that currently has work
// waiting. This is start-time fair queuing degenerated to one queue slot
// per VM, which matches the router's per-VM serial forwarding.
type FairScheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	weights map[VMID]int64
	usage   map[VMID]int64 // normalized accumulated cost
	waiting map[VMID]int   // VMs blocked in or about to pass Admit
	window  int64
}

// NewFairScheduler creates a fair scheduler. window is the allowed
// normalized-usage lead (e.g. 10ms of device time) before a VM is held
// back; weights default to 1.
func NewFairScheduler(window time.Duration) *FairScheduler {
	s := &FairScheduler{
		weights: make(map[VMID]int64),
		usage:   make(map[VMID]int64),
		waiting: make(map[VMID]int),
		window:  int64(window),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// SetWeight assigns a VM's share weight (higher = larger share).
func (s *FairScheduler) SetWeight(vm VMID, w int64) {
	if w <= 0 {
		w = 1
	}
	s.mu.Lock()
	s.weights[vm] = w
	s.mu.Unlock()
}

func (s *FairScheduler) weight(vm VMID) int64 {
	if w, ok := s.weights[vm]; ok {
		return w
	}
	return 1
}

// minWaitingUsage returns the lowest normalized usage among VMs with work
// pending, excluding self; ok is false if self is the only contender.
func (s *FairScheduler) minWaitingUsage(self VMID) (int64, bool) {
	found := false
	var m int64
	for vm, n := range s.waiting {
		if vm == self || n <= 0 {
			continue
		}
		u := s.usage[vm]
		if !found || u < m {
			m, found = u, true
		}
	}
	return m, found
}

// Admit implements Scheduler.
func (s *FairScheduler) Admit(vm VMID, cost int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waiting[vm]++
	for {
		minU, contended := s.minWaitingUsage(vm)
		if !contended || s.usage[vm] <= minU+s.window {
			break
		}
		s.cond.Wait()
	}
	// Charge the estimate up front so concurrent admits see it.
	s.usage[vm] += cost / s.weight(vm)
}

// Done implements Scheduler.
func (s *FairScheduler) Done(vm VMID, cost int64, measured int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if measured > 0 && measured != cost {
		// Replace the estimate with the measurement.
		s.usage[vm] += (measured - cost) / s.weight(vm)
	}
	s.waiting[vm]--
	if s.waiting[vm] <= 0 {
		delete(s.waiting, vm)
	}
	s.cond.Broadcast()
}

// Usage implements Scheduler.
func (s *FairScheduler) Usage(vm VMID) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usage[vm]
}

// Reset clears accumulated usage (administrative epoch change).
func (s *FairScheduler) Reset() {
	s.mu.Lock()
	for vm := range s.usage {
		s.usage[vm] = 0
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}
