package hv

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ava/internal/averr"
	"ava/internal/cava"
	"ava/internal/clock"
	"ava/internal/marshal"
	"ava/internal/transport"
)

// VMID identifies a guest VM.
type VMID = uint32

// VMConfig is the per-VM sharing policy, part of the API specification's
// "resource usage policy and scheduling configuration" (§3).
type VMConfig struct {
	ID   VMID
	Name string
	// CallsPerSec rate-limits forwarded commands (0 = unlimited).
	CallsPerSec float64
	CallBurst   float64
	// BytesPerSec rate-limits forwarded data (0 = unlimited).
	BytesPerSec float64
	ByteBurst   float64
	// Weight is the VM's fair-share weight (default 1).
	Weight int64
	// Quotas caps the VM's cumulative consumption of named resources from
	// the specification's resource annotations (e.g. "device_memory",
	// "bandwidth"); a call whose estimate would exceed a quota is denied.
	// This is §4.3's administration interface: "control how much of each
	// specified API resource each VM is allotted".
	Quotas map[string]int64
	// PriorityShares splits the VM's call/byte rate into per-priority-band
	// floors (see PriorityBuckets); the zero value selects
	// DefaultPriorityShares. A band within its floor is never delayed by
	// other bands' consumption on the same VM.
	PriorityShares [NumPriorityBands]float64
}

// VMStats counts router activity for one VM.
type VMStats struct {
	Forwarded    uint64
	Denied       uint64
	AsyncDropped uint64
	// DeadlineDenied counts calls denied with StatusDeadline: expired on
	// arrival, or the rate-limit/scheduling stall consumed the remaining
	// budget. Included in Denied.
	DeadlineDenied uint64
	// ShedDenied counts calls denied with StatusOverload by the load
	// shedder. Included in Denied.
	ShedDenied uint64
	// StaleEpochDropped counts frames dropped silently because their epoch
	// predates the VM's current endpoint epoch (failover fencing): they
	// were addressed to a dead server incarnation, and the guest's
	// resubmission supplies the authoritative copy. Not included in Denied.
	StaleEpochDropped uint64
	// HostChanges counts serving-host moves recorded via SetServingHost —
	// the number of cross-host failovers this VM has ridden through.
	HostChanges uint64
	Bytes       uint64
	Stall       time.Duration // time spent rate-limited or unscheduled
	// BandStall splits Stall by the call's priority band, so per-band QoS
	// (low bands absorbing the throttling) is observable.
	BandStall [NumPriorityBands]time.Duration
	Resources map[string]int64 // summed resource estimates
}

// ShedConfig configures the router's load shedder. When any threshold is
// crossed, calls in the lowest ShedBands priority bands are denied with
// StatusOverload instead of being stalled toward their deadlines. The
// zero value disables shedding.
type ShedConfig struct {
	// MaxQueueDepth sheds while the scheduler reports at least this many
	// parked calls (0 disables the depth signal; requires a scheduler
	// implementing LoadIntrospector).
	MaxQueueDepth int
	// MaxRecentStall sheds while the recent aggregate admission stall —
	// an EWMA over rate-limit and scheduling delays of admitted calls —
	// is at least this long (0 disables the stall signal).
	MaxRecentStall time.Duration
	// ShedBands is how many of the lowest priority bands are sheddable;
	// 0 defaults to 1 (only band 0).
	ShedBands int
	// AdaptiveStall derives the stall threshold from the deployment's own
	// uncontended stall floor instead of a hand-tuned constant: the router
	// samples an EWMA of admission stalls over a warm-up window, then
	// sheds when the recent stall reaches StallFloorMult times that floor.
	// MaxRecentStall, when also set, acts as a lower bound on the derived
	// threshold (and covers the warm-up window, during which the adaptive
	// signal is not yet calibrated).
	AdaptiveStall bool
	// StallFloorMult is the overload multiple applied to the observed
	// stall floor; values at or below 1 select the default of 8.
	StallFloorMult float64
}

func (sc ShedConfig) enabled() bool {
	return sc.MaxQueueDepth > 0 || sc.MaxRecentStall > 0 || sc.AdaptiveStall
}

func (sc ShedConfig) shedBands() int {
	if sc.ShedBands <= 0 {
		return 1
	}
	if sc.ShedBands > NumPriorityBands {
		return NumPriorityBands
	}
	return sc.ShedBands
}

// Interceptor observes (and may veto) every forwarded call — the
// hypervisor interposition point. Returning a non-nil error denies the
// call.
type Interceptor func(vm VMID, fd *cava.FuncDesc, call *marshal.Call) error

// ErrUnknownVM reports routing for a VM that was never registered — an
// alias of the stack-wide sentinel so errors.Is holds across layers.
var ErrUnknownVM = averr.ErrUnknownVM

type vmState struct {
	cfg    VMConfig
	callTB *PriorityBuckets
	byteTB *PriorityBuckets

	mu        sync.Mutex
	epoch     uint32 // current endpoint epoch; older frames are fenced
	host      string // fleet member ID currently serving this VM
	hostEpoch uint32 // epoch at the last SetServingHost
	stats     VMStats
	// First router-side denial of an async call since the last synchronous
	// call, held for §4.2's error-deferral contract: async denials cannot
	// be replied to (the guest is not waiting), so the VM's next sync call
	// fails with the recorded status instead of the denial vanishing.
	deferredStatus marshal.Status
	deferredErr    string
}

// deferDenial records the first pending async denial (first wins, like the
// server's deferred-error slot).
func (st *vmState) deferDenial(status marshal.Status, msg string) {
	st.mu.Lock()
	if st.deferredStatus == marshal.StatusOK {
		st.deferredStatus, st.deferredErr = status, msg
	}
	st.mu.Unlock()
}

// takeDeferred consumes the pending async denial, if any.
func (st *vmState) takeDeferred() (marshal.Status, string, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.deferredStatus == marshal.StatusOK {
		return marshal.StatusOK, "", false
	}
	status, msg := st.deferredStatus, st.deferredErr
	st.deferredStatus, st.deferredErr = marshal.StatusOK, ""
	return status, msg, true
}

// Router verifies, polices, schedules and forwards API calls between guest
// libraries and the API server.
type Router struct {
	desc  *cava.Descriptor
	clk   clock.Clock
	sched Scheduler

	mu        sync.Mutex
	vms       map[VMID]*vmState
	intercept []Interceptor
	shed      ShedConfig

	loadMu      sync.Mutex
	recentStall time.Duration // EWMA of admitted calls' rate-limit+sched stall
	stallFloor  time.Duration // EWMA of the uncontended stall, sampled at warm-up
	warmupLeft  int           // admissions left in the adaptive-shed warm-up
}

// shedWarmupCalls is how many admissions calibrate the adaptive shed
// threshold's stall floor after SetShedPolicy.
const shedWarmupCalls = 256

// SetShedPolicy installs (or, with the zero value, removes) the router's
// load-shedding configuration. Enabling AdaptiveStall (re)starts the
// warm-up window that calibrates the stall floor.
func (r *Router) SetShedPolicy(cfg ShedConfig) {
	r.mu.Lock()
	r.shed = cfg
	r.mu.Unlock()
	r.loadMu.Lock()
	if cfg.AdaptiveStall {
		r.warmupLeft = shedWarmupCalls
		r.stallFloor = 0
	} else {
		r.warmupLeft = 0
	}
	r.loadMu.Unlock()
}

func (r *Router) shedConfig() ShedConfig {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shed
}

// noteStall folds one admitted call's stall into the router-wide EWMA the
// load shedder reads (alpha 1/8; stall-free admissions decay it). During
// the adaptive-shed warm-up it also feeds the stall-floor estimate.
func (r *Router) noteStall(d time.Duration) {
	r.loadMu.Lock()
	r.recentStall += (d - r.recentStall) / 8
	if r.warmupLeft > 0 {
		r.stallFloor += (d - r.stallFloor) / 8
		r.warmupLeft--
	}
	r.loadMu.Unlock()
}

// RecentStall returns the router's recent aggregate admission stall.
func (r *Router) RecentStall() time.Duration {
	r.loadMu.Lock()
	defer r.loadMu.Unlock()
	return r.recentStall
}

// stallThreshold resolves the effective shed-stall threshold: the static
// MaxRecentStall, or — once the warm-up window has calibrated the floor —
// the adaptive StallFloorMult multiple of the observed uncontended stall,
// whichever is larger. ok=false means the stall signal is off (no static
// threshold and the adaptive one is not yet calibrated).
func (r *Router) stallThreshold(sc ShedConfig) (time.Duration, bool) {
	if !sc.AdaptiveStall {
		return sc.MaxRecentStall, sc.MaxRecentStall > 0
	}
	r.loadMu.Lock()
	warm := r.warmupLeft <= 0
	floor := r.stallFloor
	r.loadMu.Unlock()
	if !warm {
		return sc.MaxRecentStall, sc.MaxRecentStall > 0
	}
	mult := sc.StallFloorMult
	if mult <= 1 {
		mult = 8
	}
	thr := time.Duration(float64(floor) * mult)
	if thr < 100*time.Microsecond {
		// A near-zero floor (in-process transports can admit in
		// nanoseconds) would make the shedder hair-triggered; clamp to a
		// minimum overload threshold.
		thr = 100 * time.Microsecond
	}
	if sc.MaxRecentStall > thr {
		thr = sc.MaxRecentStall
	}
	return thr, true
}

// ShedStallThreshold reports the currently effective shed-stall threshold
// (0 when the stall signal is off or still calibrating).
func (r *Router) ShedStallThreshold() time.Duration {
	thr, ok := r.stallThreshold(r.shedConfig())
	if !ok {
		return 0
	}
	return thr
}

// overloaded evaluates the shed thresholds against the scheduler's queue
// depth and the recent aggregate stall (the larger of the scheduler's gate
// signal and the router's own rate-limit signal).
func (r *Router) overloaded(sc ShedConfig) bool {
	li, introspective := r.sched.(LoadIntrospector)
	if sc.MaxQueueDepth > 0 && introspective && li.QueueDepth() >= sc.MaxQueueDepth {
		return true
	}
	if thr, ok := r.stallThreshold(sc); ok {
		stall := r.RecentStall()
		if introspective {
			if s := li.RecentStall(); s > stall {
				stall = s
			}
		}
		if stall >= thr {
			return true
		}
	}
	return false
}

// NewRouter creates a router for one API. A nil scheduler selects FIFO;
// a nil clock selects the wall clock.
func NewRouter(desc *cava.Descriptor, sched Scheduler, clk clock.Clock) *Router {
	if sched == nil {
		sched = NewFIFOScheduler()
	}
	if clk == nil {
		clk = clock.NewReal()
	}
	return &Router{desc: desc, clk: clk, sched: sched, vms: make(map[VMID]*vmState)}
}

// Scheduler returns the router's scheduler.
func (r *Router) Scheduler() Scheduler { return r.sched }

// AddInterceptor installs an observation/veto hook, run for every call in
// installation order.
func (r *Router) AddInterceptor(ic Interceptor) {
	r.mu.Lock()
	r.intercept = append(r.intercept, ic)
	r.mu.Unlock()
}

// RegisterVM installs a VM's policy state.
func (r *Router) RegisterVM(cfg VMConfig) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.vms[cfg.ID]; dup {
		return fmt.Errorf("%w: hv: VM %d already registered", averr.ErrBadArg, cfg.ID)
	}
	st := &vmState{
		cfg:    cfg,
		callTB: NewPriorityBuckets(cfg.CallsPerSec, cfg.CallBurst, cfg.PriorityShares, r.clk),
		byteTB: NewPriorityBuckets(cfg.BytesPerSec, cfg.ByteBurst, cfg.PriorityShares, r.clk),
	}
	st.stats.Resources = make(map[string]int64)
	r.vms[cfg.ID] = st
	if fs, ok := r.sched.(*FairScheduler); ok {
		fs.SetWeight(cfg.ID, cfg.Weight)
	}
	return nil
}

// SetEpoch advances a VM's endpoint epoch (monotonic — older values are
// ignored). Frames stamped with an epoch below the current one are dropped
// silently: they were addressed to a server incarnation that no longer
// exists, and the guest's epoch-stamped resubmission supplies the
// authoritative copy. The failover guardian calls this before replaying
// state onto a replacement server.
func (r *Router) SetEpoch(id VMID, epoch uint32) {
	st, err := r.vm(id)
	if err != nil {
		return
	}
	st.mu.Lock()
	if epoch > st.epoch {
		st.epoch = epoch
	}
	st.mu.Unlock()
}

// SetServingHost records which fleet member now serves a VM's API. On a
// host change it counts the move and defensively re-fences: if the epoch
// has not advanced since the previous host was recorded, the router bumps
// it itself, so frames addressed to the old host can never reach the new
// one even if a buggy dial path forgot to advance the epoch first.
func (r *Router) SetServingHost(id VMID, host string) {
	st, err := r.vm(id)
	if err != nil {
		return
	}
	st.mu.Lock()
	if host != st.host {
		if st.host != "" {
			st.stats.HostChanges++
			if st.epoch == st.hostEpoch {
				st.epoch++
			}
		}
		st.host = host
	}
	st.hostEpoch = st.epoch
	st.mu.Unlock()
}

// ServingHost returns the fleet member ID recorded as serving the VM (""
// if never recorded).
func (r *Router) ServingHost(id VMID) string {
	st, err := r.vm(id)
	if err != nil {
		return ""
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.host
}

// Epoch returns a VM's current endpoint epoch.
func (r *Router) Epoch(id VMID) uint32 {
	st, err := r.vm(id)
	if err != nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.epoch
}

// UnregisterVM removes a VM.
func (r *Router) UnregisterVM(id VMID) {
	r.mu.Lock()
	delete(r.vms, id)
	r.mu.Unlock()
}

// Stats returns a copy of a VM's router statistics.
func (r *Router) Stats(id VMID) (VMStats, error) {
	r.mu.Lock()
	st, ok := r.vms[id]
	r.mu.Unlock()
	if !ok {
		return VMStats{}, fmt.Errorf("%w: %d", ErrUnknownVM, id)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := st.stats
	out.Resources = make(map[string]int64, len(st.stats.Resources))
	for k, v := range st.stats.Resources {
		out.Resources[k] = v
	}
	return out, nil
}

// VMSnapshot is one VM's router-side view for observability surfaces:
// identity, placement, and a consistent copy of the policy counters.
type VMSnapshot struct {
	ID    VMID
	Name  string
	Host  string // fleet member currently serving this VM ("" = configured endpoint)
	Epoch uint32 // endpoint epoch (bumped per recovery)
	Stats VMStats
}

// Snapshot returns a point-in-time copy of every registered VM's router
// state, sorted by VM ID. Each VM is copied under its own lock, so the
// snapshot is per-VM consistent (not cross-VM atomic) and never blocks
// the data path for longer than one stats copy.
func (r *Router) Snapshot() []VMSnapshot {
	r.mu.Lock()
	ids := make([]VMID, 0, len(r.vms))
	states := make(map[VMID]*vmState, len(r.vms))
	for id, st := range r.vms {
		ids = append(ids, id)
		states[id] = st
	}
	r.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	out := make([]VMSnapshot, 0, len(ids))
	for _, id := range ids {
		st := states[id]
		st.mu.Lock()
		snap := VMSnapshot{
			ID:    id,
			Name:  st.cfg.Name,
			Host:  st.host,
			Epoch: st.epoch,
			Stats: st.stats,
		}
		snap.Stats.Resources = make(map[string]int64, len(st.stats.Resources))
		for k, v := range st.stats.Resources {
			snap.Stats.Resources[k] = v
		}
		st.mu.Unlock()
		out = append(out, snap)
	}
	return out
}

func (r *Router) vm(id VMID) (*vmState, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.vms[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownVM, id)
	}
	return st, nil
}

func (r *Router) interceptors() []Interceptor {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Interceptor(nil), r.intercept...)
}

// Attach runs the forwarding loops for one VM: guestSide carries traffic
// to/from the guest library, serverSide to/from the API server. Attach
// blocks until either side closes; it closes both endpoints on return so
// the peer loops unwind.
func (r *Router) Attach(id VMID, guestSide, serverSide transport.Endpoint) error {
	st, err := r.vm(id)
	if err != nil {
		return err
	}
	defer guestSide.Close()
	defer serverSide.Close()

	// Downlink: replies flow back unmodified (the router could interpose
	// here too; stats suffice for now).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer guestSide.Close()
		for {
			frame, err := serverSide.Recv()
			if err != nil {
				return
			}
			if err := guestSide.Send(frame); err != nil {
				return
			}
		}
	}()

	err = r.uplink(id, st, guestSide, serverSide)
	serverSide.Close()
	wg.Wait()
	if errors.Is(err, transport.ErrClosed) {
		return nil
	}
	return err
}

func (r *Router) uplink(id VMID, st *vmState, guestSide, serverSide transport.Endpoint) error {
	for {
		frame, err := guestSide.Recv()
		if err != nil {
			return err
		}
		batch, err := marshal.DecodeBatch(frame)
		if err != nil {
			return fmt.Errorf("hv: VM %d sent malformed batch: %w", id, err)
		}
		ics := r.interceptors()
		allKept := true
		forward := make([][]byte, 0, len(batch))
		for _, cf := range batch {
			keep, deny := r.police(id, st, ics, cf)
			if deny != nil {
				if err := guestSide.Send(marshal.EncodeReply(deny)); err != nil {
					return err
				}
			}
			if keep {
				forward = append(forward, cf)
			} else {
				allKept = false
			}
		}
		if len(forward) == 0 {
			continue
		}
		// Fast path: nothing was denied, so the original batch frame can
		// flow onward unmodified (no re-encode copy).
		if allKept {
			if err := serverSide.Send(frame); err != nil {
				return err
			}
			continue
		}
		if err := serverSide.Send(marshal.EncodeBatch(forward)); err != nil {
			return err
		}
	}
}

// police verifies and schedules one call. It returns keep=true to forward
// the frame, or a denial reply for synchronous calls. Async denials are
// dropped, counted, and recorded as the VM's pending deferred error so the
// next synchronous call surfaces them (§4.2).
func (r *Router) police(id VMID, st *vmState, ics []Interceptor, cf []byte) (keep bool, deny *marshal.Reply) {
	call, err := marshal.DecodeCall(cf)
	if err != nil {
		st.note(func(s *VMStats) { s.Denied++ })
		return false, nil // unparseable: cannot even address a reply
	}
	async := call.Flags&marshal.FlagAsync != 0
	rejectAs := func(status marshal.Status, format string, args ...any) (bool, *marshal.Reply) {
		msg := fmt.Sprintf(format, args...)
		st.note(func(s *VMStats) {
			s.Denied++
			if status == marshal.StatusDeadline {
				s.DeadlineDenied++
			}
			if status == marshal.StatusOverload {
				s.ShedDenied++
			}
			if async {
				s.AsyncDropped++
			}
		})
		if async {
			// The guest is not waiting for a reply; record the denial so the
			// VM's next synchronization point observes it (§4.2).
			st.deferDenial(status, msg)
			return false, nil
		}
		return false, &marshal.Reply{
			Seq:    call.Seq,
			Status: status,
			Err:    msg,
		}
	}
	reject := func(format string, args ...any) (bool, *marshal.Reply) {
		return rejectAs(marshal.StatusDenied, format, args...)
	}

	call.VM = id // the hypervisor, not the guest, asserts identity

	// Epoch fencing (failover): a frame stamped with a pre-recovery epoch
	// was in flight when its server incarnation died. Executing this copy
	// would race the guest's resubmitted twin, so it is dropped with no
	// reply — the twin answers the caller.
	st.mu.Lock()
	stale := call.Epoch < st.epoch
	if stale {
		st.stats.StaleEpochDropped++
	}
	st.mu.Unlock()
	if stale {
		return false, nil
	}

	// §4.2 error deferral for router-side denials: if an earlier async call
	// was denied here, this VM's next synchronous call fails with the
	// recorded status — mirroring the server's deferred-error contract so
	// async denials never vanish into a counter. Replayed and resubmitted
	// calls are exempt: migration restore and failover recovery must not
	// absorb a pre-restore denial.
	if !async && call.Flags&(marshal.FlagReplay|marshal.FlagResubmit) == 0 {
		if status, msg, pending := st.takeDeferred(); pending {
			st.note(func(s *VMStats) { s.Denied++ })
			return false, &marshal.Reply{
				Seq:    call.Seq,
				Status: status,
				Err:    "deferred: " + msg,
			}
		}
	}

	fd, ok := r.desc.ByID(call.Func)
	if !ok {
		return reject("hv: unknown function #%d", call.Func)
	}

	// Deadline translation (gRPC-style): the wire deadline is absolute on
	// the guest's clock, which need not agree with ours (TCP transports can
	// cross machines). The remaining budget — deadline minus the guest's
	// encode stamp — is clock-skew-free, so re-anchor it against our own
	// clock and deny outright if it is already spent. A call with a
	// deadline but no encode stamp offers nothing to translate against:
	// anchor it at admission on our clock instead of misreading the raw
	// guest wall-clock value as a relative budget.
	now := r.clk.Now()
	var localDeadline time.Time
	if call.Deadline != 0 {
		var rel time.Duration
		if call.Stamps.Encode != 0 {
			rel = time.Duration(call.Deadline - call.Stamps.Encode)
		} else {
			rel = time.Duration(call.Deadline - now.UnixNano())
		}
		if rel <= 0 {
			return rejectAs(marshal.StatusDeadline, "hv: %s: deadline expired before admission", fd.Name)
		}
		localDeadline = now.Add(rel)
	}
	if len(call.Args) != len(fd.Params) {
		return reject("hv: %s: argument arity %d, want %d", fd.Name, len(call.Args), len(fd.Params))
	}
	if async {
		if sync, err := fd.IsSync(r.desc.API, call.Args); err != nil || sync {
			return reject("hv: %s: async forwarding violates specification", fd.Name)
		}
	}
	for _, ic := range ics {
		if err := ic(id, fd, call); err != nil {
			return reject("hv: %s: %v", fd.Name, err)
		}
	}

	// Policy enforcement. Replayed calls (migration restore) and
	// resubmitted calls (failover recovery) bypass rate limits and quota
	// charging: they reconstruct state the guest already paid for once.
	exempt := call.Flags&(marshal.FlagReplay|marshal.FlagResubmit) != 0
	est := fd.EstimateResources(r.desc.API, call.Args)
	if len(st.cfg.Quotas) > 0 && len(est) > 0 && !exempt {
		if res, limit, used := st.quotaExceeded(est); res != "" {
			return reject("hv: %s: %s quota exhausted (%d of %d used)", fd.Name, res, used, limit)
		}
	}
	if !exempt {
		band := PriorityBand(call.Priority)
		// Load shedding: under overload, deny sheddable (lowest-band) calls
		// immediately with StatusOverload rather than stalling them toward
		// their deadlines — admission-time backpressure the caller can see.
		if sc := r.shedConfig(); sc.enabled() && band < sc.shedBands() && r.overloaded(sc) {
			return rejectAs(marshal.StatusOverload, "hv: %s: shed under overload (priority band %d)", fd.Name, band)
		}
		// Reserve both buckets up front and sleep once for the larger
		// delay: the two limits overlap in time rather than compounding.
		stall := st.callTB.Reserve(band, 1)
		if d := st.byteTB.Reserve(band, float64(len(cf))); d > stall {
			stall = d
		}
		if stall > 0 {
			r.clk.Sleep(stall)
		}
		cost := est["device_time"]
		if cost <= 0 {
			cost = 1
		}
		t0 := r.clk.Now()
		r.sched.Admit(id, cost, call.Priority)
		r.sched.Done(id, cost, 0)
		stall += r.clk.Since(t0)
		r.noteStall(stall)
		st.note(func(s *VMStats) {
			s.Stall += stall
			s.BandStall[band] += stall
		})
		// The stall was spent inside the deadline's budget: a call held
		// back past its deadline by rate limiting or scheduling must not
		// reach the silo.
		if !localDeadline.IsZero() && !r.clk.Now().Before(localDeadline) {
			return rejectAs(marshal.StatusDeadline, "hv: %s: deadline expired while stalled %v", fd.Name, stall)
		}
	}

	// Rewrite the forwarded header in place — VM identity, the deadline
	// re-anchored into this router's clock domain, and the admission stamp
	// — so the zero-copy batch fast path still forwards the original frame.
	var wireDeadline int64
	if !localDeadline.IsZero() {
		wireDeadline = localDeadline.UnixNano()
	}
	marshal.PatchCallAdmit(cf, id, wireDeadline, r.clk.Now().UnixNano())

	st.note(func(s *VMStats) {
		s.Forwarded++
		s.Bytes += uint64(len(cf))
		if !exempt {
			for k, v := range est {
				s.Resources[k] += v
			}
		}
	})
	return true, nil
}

func (st *vmState) note(f func(*VMStats)) {
	st.mu.Lock()
	f(&st.stats)
	st.mu.Unlock()
}

// quotaExceeded checks whether charging est would push any quota'd
// resource over its allotment; the accumulated usage lives in
// stats.Resources, so denied calls are not charged.
func (st *vmState) quotaExceeded(est map[string]int64) (resource string, limit, used int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for res, amount := range est {
		lim, ok := st.cfg.Quotas[res]
		if !ok {
			continue
		}
		if st.stats.Resources[res]+amount > lim {
			return res, lim, st.stats.Resources[res]
		}
	}
	return "", 0, 0
}
