// Package nn is a small, real convolutional-network executor. It backs the
// simulated Movidius Neural Compute Stick (internal/mvnc): the paper's
// NCS experiment runs Inception v3, which no hardware here can run, so the
// substitute executes an Inception-v3-shaped network (stem convolutions,
// parallel-branch inception modules, global pooling, a classifier head) at
// reduced scale — real multiply-accumulate work with the same
// few-large-calls API profile that produced the paper's ~1% NCS overhead.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a C×H×W feature map.
type Tensor struct {
	C, H, W int
	Data    []float32
}

// NewTensor allocates a zero tensor.
func NewTensor(c, h, w int) *Tensor {
	return &Tensor{C: c, H: h, W: w, Data: make([]float32, c*h*w)}
}

// At returns element (c,y,x).
func (t *Tensor) At(c, y, x int) float32 { return t.Data[(c*t.H+y)*t.W+x] }

// Set stores element (c,y,x).
func (t *Tensor) Set(c, y, x int, v float32) { t.Data[(c*t.H+y)*t.W+x] = v }

// Len returns the element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Layer transforms a tensor.
type Layer interface {
	Forward(in *Tensor) *Tensor
	// Params returns the number of learned parameters (for model stats).
	Params() int
	Name() string
}

// Conv2D is a strided, padded convolution with bias and optional ReLU.
type Conv2D struct {
	InC, OutC, K, Stride, Pad int
	W                         []float32 // [outc][inc][k][k]
	B                         []float32
	Relu                      bool
}

// NewConv2D builds a convolution with deterministic He-style init.
func NewConv2D(r *rand.Rand, inC, outC, k, stride, pad int, relu bool) *Conv2D {
	c := &Conv2D{InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad, Relu: relu}
	c.W = make([]float32, outC*inC*k*k)
	c.B = make([]float32, outC)
	scale := float32(math.Sqrt(2.0 / float64(inC*k*k)))
	for i := range c.W {
		c.W[i] = (r.Float32()*2 - 1) * scale
	}
	for i := range c.B {
		c.B[i] = (r.Float32()*2 - 1) * 0.01
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return fmt.Sprintf("conv%dx%d/%d", c.K, c.K, c.Stride) }

// Params implements Layer.
func (c *Conv2D) Params() int { return len(c.W) + len(c.B) }

// Forward implements Layer.
func (c *Conv2D) Forward(in *Tensor) *Tensor {
	oh := (in.H+2*c.Pad-c.K)/c.Stride + 1
	ow := (in.W+2*c.Pad-c.K)/c.Stride + 1
	out := NewTensor(c.OutC, oh, ow)
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := c.B[oc]
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride + ky - c.Pad
						if iy < 0 || iy >= in.H {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							ix := ox*c.Stride + kx - c.Pad
							if ix < 0 || ix >= in.W {
								continue
							}
							w := c.W[((oc*c.InC+ic)*c.K+ky)*c.K+kx]
							sum += w * in.At(ic, iy, ix)
						}
					}
				}
				if c.Relu && sum < 0 {
					sum = 0
				}
				out.Set(oc, oy, ox, sum)
			}
		}
	}
	return out
}

// MaxPool is a K×K max pooling with stride.
type MaxPool struct{ K, Stride int }

// Name implements Layer.
func (p *MaxPool) Name() string { return fmt.Sprintf("maxpool%d/%d", p.K, p.Stride) }

// Params implements Layer.
func (p *MaxPool) Params() int { return 0 }

// Forward implements Layer.
func (p *MaxPool) Forward(in *Tensor) *Tensor {
	oh := (in.H-p.K)/p.Stride + 1
	ow := (in.W-p.K)/p.Stride + 1
	out := NewTensor(in.C, oh, ow)
	for c := 0; c < in.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				m := float32(math.Inf(-1))
				for ky := 0; ky < p.K; ky++ {
					for kx := 0; kx < p.K; kx++ {
						v := in.At(c, oy*p.Stride+ky, ox*p.Stride+kx)
						if v > m {
							m = v
						}
					}
				}
				out.Set(c, oy, ox, m)
			}
		}
	}
	return out
}

// GlobalAvgPool reduces H×W to 1×1 per channel.
type GlobalAvgPool struct{}

// Name implements Layer.
func (GlobalAvgPool) Name() string { return "gap" }

// Params implements Layer.
func (GlobalAvgPool) Params() int { return 0 }

// Forward implements Layer.
func (GlobalAvgPool) Forward(in *Tensor) *Tensor {
	out := NewTensor(in.C, 1, 1)
	for c := 0; c < in.C; c++ {
		var s float32
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				s += in.At(c, y, x)
			}
		}
		out.Set(c, 0, 0, s/float32(in.H*in.W))
	}
	return out
}

// Dense is a fully connected layer over a flattened tensor.
type Dense struct {
	In, Out int
	W, B    []float32
	Relu    bool
}

// NewDense builds a dense layer with deterministic init.
func NewDense(r *rand.Rand, in, out int, relu bool) *Dense {
	d := &Dense{In: in, Out: out, Relu: relu}
	d.W = make([]float32, in*out)
	d.B = make([]float32, out)
	scale := float32(math.Sqrt(2.0 / float64(in)))
	for i := range d.W {
		d.W[i] = (r.Float32()*2 - 1) * scale
	}
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("fc%d", d.Out) }

// Params implements Layer.
func (d *Dense) Params() int { return len(d.W) + len(d.B) }

// Forward implements Layer.
func (d *Dense) Forward(in *Tensor) *Tensor {
	out := NewTensor(d.Out, 1, 1)
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		for i := 0; i < d.In && i < len(in.Data); i++ {
			sum += d.W[o*d.In+i] * in.Data[i]
		}
		if d.Relu && sum < 0 {
			sum = 0
		}
		out.Data[o] = sum
	}
	return out
}

// Softmax normalizes the flattened input into a distribution.
type Softmax struct{}

// Name implements Layer.
func (Softmax) Name() string { return "softmax" }

// Params implements Layer.
func (Softmax) Params() int { return 0 }

// Forward implements Layer.
func (Softmax) Forward(in *Tensor) *Tensor {
	out := NewTensor(in.C, in.H, in.W)
	m := float32(math.Inf(-1))
	for _, v := range in.Data {
		if v > m {
			m = v
		}
	}
	var sum float64
	for i, v := range in.Data {
		e := math.Exp(float64(v - m))
		out.Data[i] = float32(e)
		_ = i
		sum += e
	}
	for i := range out.Data {
		out.Data[i] = float32(float64(out.Data[i]) / sum)
	}
	return out
}

// Inception runs parallel branches over the same input and concatenates
// their channel outputs (branch outputs must share H×W).
type Inception struct {
	Branches [][]Layer
}

// Name implements Layer.
func (b *Inception) Name() string { return fmt.Sprintf("inception[%d]", len(b.Branches)) }

// Params implements Layer.
func (b *Inception) Params() int {
	n := 0
	for _, br := range b.Branches {
		for _, l := range br {
			n += l.Params()
		}
	}
	return n
}

// Forward implements Layer.
func (b *Inception) Forward(in *Tensor) *Tensor {
	var outs []*Tensor
	totalC := 0
	for _, br := range b.Branches {
		t := in
		for _, l := range br {
			t = l.Forward(t)
		}
		outs = append(outs, t)
		totalC += t.C
	}
	h, w := outs[0].H, outs[0].W
	out := NewTensor(totalC, h, w)
	c0 := 0
	for _, t := range outs {
		copy(out.Data[c0*h*w:], t.Data)
		c0 += t.C
	}
	return out
}

// Network is a sequential stack of layers.
type Network struct {
	Name   string
	InC    int
	InHW   int
	Layers []Layer
}

// Forward runs the network on a C×H×W input.
func (n *Network) Forward(in *Tensor) (*Tensor, error) {
	if in.C != n.InC || in.H != n.InHW || in.W != n.InHW {
		return nil, fmt.Errorf("nn: input %dx%dx%d, want %dx%dx%d", in.C, in.H, in.W, n.InC, n.InHW, n.InHW)
	}
	t := in
	for _, l := range n.Layers {
		t = l.Forward(t)
	}
	return t, nil
}

// Params returns the total learned parameter count.
func (n *Network) Params() int {
	total := 0
	for _, l := range n.Layers {
		total += l.Params()
	}
	return total
}

// InceptionV3Sim builds the reduced-scale Inception-v3-shaped network used
// by the simulated NCS: stem convolutions with stride-2 downsampling, three
// inception modules with 1x1 / 3x3 / pooled branches, global average
// pooling, and a classifier over classes outputs. Weights are
// deterministic in seed.
func InceptionV3Sim(seed int64, classes int) *Network {
	r := rand.New(rand.NewSource(seed))
	const in = 3
	const hw = 64
	mkBranch := func(ls ...Layer) []Layer { return ls }
	net := &Network{Name: "inception_v3_sim", InC: in, InHW: hw}
	net.Layers = []Layer{
		NewConv2D(r, in, 8, 3, 2, 1, true), // 8x32x32 stem
		NewConv2D(r, 8, 16, 3, 1, 1, true), // 16x32x32
		&MaxPool{K: 2, Stride: 2},          // 16x16x16
		&Inception{Branches: [][]Layer{ // -> 40x16x16
			mkBranch(NewConv2D(r, 16, 8, 1, 1, 0, true)),
			mkBranch(NewConv2D(r, 16, 8, 1, 1, 0, true), NewConv2D(r, 8, 16, 3, 1, 1, true)),
			mkBranch(NewConv2D(r, 16, 8, 1, 1, 0, true), NewConv2D(r, 8, 8, 3, 1, 1, true), NewConv2D(r, 8, 8, 3, 1, 1, true)),
			mkBranch(&MaxPool{K: 3, Stride: 1}, padIdentity{}, NewConv2D(r, 16, 8, 1, 1, 0, true)),
		}},
		&MaxPool{K: 2, Stride: 2}, // 40x8x8
		&Inception{Branches: [][]Layer{ // -> 96x8x8
			mkBranch(NewConv2D(r, 40, 24, 1, 1, 0, true)),
			mkBranch(NewConv2D(r, 40, 16, 1, 1, 0, true), NewConv2D(r, 16, 32, 3, 1, 1, true)),
			mkBranch(NewConv2D(r, 40, 8, 1, 1, 0, true), NewConv2D(r, 8, 16, 3, 1, 1, true), NewConv2D(r, 16, 16, 3, 1, 1, true)),
			mkBranch(NewConv2D(r, 40, 24, 1, 1, 0, true)),
		}},
		&MaxPool{K: 2, Stride: 2}, // 96x4x4
		&Inception{Branches: [][]Layer{ // -> 128x4x4
			mkBranch(NewConv2D(r, 96, 64, 1, 1, 0, true)),
			mkBranch(NewConv2D(r, 96, 32, 1, 1, 0, true), NewConv2D(r, 32, 64, 3, 1, 1, true)),
		}},
		GlobalAvgPool{},
		NewDense(r, 128, classes, false),
		Softmax{},
	}
	return net
}

// padIdentity restores H×W after the unpadded 3x3/1 max pool in the
// pooled inception branch (same-size pooling), by edge-padding one pixel.
type padIdentity struct{}

// Name implements Layer.
func (padIdentity) Name() string { return "pad1" }

// Params implements Layer.
func (padIdentity) Params() int { return 0 }

// Forward implements Layer.
func (padIdentity) Forward(in *Tensor) *Tensor {
	out := NewTensor(in.C, in.H+2, in.W+2)
	for c := 0; c < in.C; c++ {
		for y := 0; y < out.H; y++ {
			for x := 0; x < out.W; x++ {
				iy, ix := y-1, x-1
				if iy < 0 {
					iy = 0
				}
				if iy >= in.H {
					iy = in.H - 1
				}
				if ix < 0 {
					ix = 0
				}
				if ix >= in.W {
					ix = in.W - 1
				}
				out.Set(c, y, x, in.At(c, iy, ix))
			}
		}
	}
	return out
}
