package nn

import (
	"math"
	"math/rand"
	"testing"
)

func input(seed int64, c, hw int) *Tensor {
	r := rand.New(rand.NewSource(seed))
	t := NewTensor(c, hw, hw)
	for i := range t.Data {
		t.Data[i] = r.Float32()
	}
	return t
}

func TestConvShape(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	c := NewConv2D(r, 3, 8, 3, 2, 1, true)
	out := c.Forward(input(2, 3, 64))
	if out.C != 8 || out.H != 32 || out.W != 32 {
		t.Fatalf("shape = %dx%dx%d", out.C, out.H, out.W)
	}
	if c.Params() != 8*3*3*3+8 {
		t.Fatalf("params = %d", c.Params())
	}
}

func TestConvKnownValues(t *testing.T) {
	// 1x1 input channel, identity-ish kernel: verify arithmetic by hand.
	c := &Conv2D{InC: 1, OutC: 1, K: 3, Stride: 1, Pad: 1,
		W: []float32{0, 0, 0, 0, 2, 0, 0, 0, 0}, B: []float32{1}}
	in := NewTensor(1, 3, 3)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	out := c.Forward(in)
	for i := range out.Data {
		if out.Data[i] != float32(i)*2+1 {
			t.Fatalf("out[%d] = %v", i, out.Data[i])
		}
	}
}

func TestReluClamps(t *testing.T) {
	c := &Conv2D{InC: 1, OutC: 1, K: 1, Stride: 1, Pad: 0,
		W: []float32{-1}, B: []float32{0}, Relu: true}
	in := NewTensor(1, 2, 2)
	for i := range in.Data {
		in.Data[i] = 1
	}
	out := c.Forward(in)
	for _, v := range out.Data {
		if v != 0 {
			t.Fatalf("relu failed: %v", v)
		}
	}
}

func TestMaxPool(t *testing.T) {
	in := NewTensor(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	out := (&MaxPool{K: 2, Stride: 2}).Forward(in)
	want := []float32{5, 7, 13, 15}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("pool[%d] = %v want %v", i, out.Data[i], w)
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := NewTensor(2, 2, 2)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	out := (GlobalAvgPool{}).Forward(in)
	if out.Data[0] != 1.5 || out.Data[1] != 5.5 {
		t.Fatalf("gap = %v", out.Data)
	}
}

func TestSoftmaxDistribution(t *testing.T) {
	in := NewTensor(10, 1, 1)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	out := (Softmax{}).Forward(in)
	var sum float64
	for i := 1; i < len(out.Data); i++ {
		if out.Data[i] <= out.Data[i-1] {
			t.Fatal("softmax not monotone over monotone input")
		}
	}
	for _, v := range out.Data {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("softmax sums to %v", sum)
	}
}

func TestDense(t *testing.T) {
	d := &Dense{In: 2, Out: 1, W: []float32{2, 3}, B: []float32{1}}
	in := NewTensor(2, 1, 1)
	in.Data[0], in.Data[1] = 5, 7
	out := d.Forward(in)
	if out.Data[0] != 2*5+3*7+1 {
		t.Fatalf("dense = %v", out.Data[0])
	}
}

func TestInceptionConcat(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	b := &Inception{Branches: [][]Layer{
		{NewConv2D(r, 4, 2, 1, 1, 0, true)},
		{NewConv2D(r, 4, 3, 1, 1, 0, true)},
	}}
	out := b.Forward(input(4, 4, 8))
	if out.C != 5 || out.H != 8 || out.W != 8 {
		t.Fatalf("shape = %dx%dx%d", out.C, out.H, out.W)
	}
}

func TestInceptionV3SimForward(t *testing.T) {
	net := InceptionV3Sim(42, 100)
	out, err := net.Forward(input(7, 3, 64))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 100 {
		t.Fatalf("classes = %d", out.Len())
	}
	var sum float64
	for _, v := range out.Data {
		if v < 0 || math.IsNaN(float64(v)) {
			t.Fatalf("bad probability %v", v)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if net.Params() < 50_000 {
		t.Fatalf("network suspiciously small: %d params", net.Params())
	}
}

func TestInceptionV3SimDeterministic(t *testing.T) {
	a, _ := InceptionV3Sim(42, 100).Forward(input(7, 3, 64))
	b, _ := InceptionV3Sim(42, 100).Forward(input(7, 3, 64))
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed produced different outputs")
		}
	}
	c, _ := InceptionV3Sim(43, 100).Forward(input(7, 3, 64))
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical outputs")
	}
}

func TestForwardShapeMismatch(t *testing.T) {
	net := InceptionV3Sim(1, 10)
	if _, err := net.Forward(NewTensor(1, 8, 8)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestLayerNames(t *testing.T) {
	net := InceptionV3Sim(1, 10)
	for _, l := range net.Layers {
		if l.Name() == "" {
			t.Fatal("unnamed layer")
		}
	}
}

func BenchmarkInceptionV3SimForward(b *testing.B) {
	net := InceptionV3Sim(42, 100)
	in := input(7, 3, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := net.Forward(in); err != nil {
			b.Fatal(err)
		}
	}
}
