package sched

import (
	"fmt"
	"reflect"
	"testing"

	"ava/internal/fleet"
)

func ids(ms []fleet.Member) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.ID
	}
	return out
}

func TestLeastLoadRanksDeterministically(t *testing.T) {
	ms := []fleet.Member{
		{ID: "c", Load: 1},
		{ID: "a", Load: 0, QueueDepth: 5},
		{ID: "b", Load: 0},
		{ID: "d", Load: 0},
	}
	got := ids(LeastLoad{}.Rank(7, ms))
	// b and d tie exactly: the ID breaks the tie, every time.
	want := []string{"b", "d", "a", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rank = %v, want %v", got, want)
	}
	for i := 0; i < 50; i++ {
		again := ids(LeastLoad{}.Rank(7, []fleet.Member{
			{ID: "d", Load: 0}, {ID: "b", Load: 0},
			{ID: "a", Load: 0, QueueDepth: 5}, {ID: "c", Load: 1},
		}))
		if !reflect.DeepEqual(again, want) {
			t.Fatalf("iteration %d: rank = %v, want %v (nondeterministic)", i, again, want)
		}
	}
}

func TestSpreadByVMCountBalancesBurst(t *testing.T) {
	p := NewSpreadByVMCount()
	members := []fleet.Member{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	counts := map[string]int{}
	// A burst of 30 attachments with no announced-load movement at all:
	// the spread policy must still distribute 10/10/10.
	for vm := uint32(1); vm <= 30; vm++ {
		ranked := p.Rank(vm, append([]fleet.Member(nil), members...))
		p.Observe(vm, ranked[0].ID)
		counts[ranked[0].ID]++
	}
	for _, id := range []string{"a", "b", "c"} {
		if counts[id] != 10 {
			t.Fatalf("spread counts = %v, want 10 per host", counts)
		}
	}
}

func TestSpreadByVMCountFollowsObservedMoves(t *testing.T) {
	p := NewSpreadByVMCount()
	p.Observe(1, "a")
	p.Observe(2, "a")
	p.Observe(3, "b")
	// VM 1 fails over to b (not the policy's doing): counts must follow.
	p.Observe(1, "b")
	ranked := p.Rank(4, []fleet.Member{{ID: "a"}, {ID: "b"}})
	if ranked[0].ID != "a" {
		t.Fatalf("after observed move, rank = %v, want a first", ids(ranked))
	}
	// Re-ranking a VM that already lives somewhere must not double-count
	// its own placement against that host.
	ranked = p.Rank(3, []fleet.Member{{ID: "a"}, {ID: "b"}})
	if ranked[0].ID != "a" && ranked[0].ID != "b" {
		t.Fatalf("unexpected rank %v", ids(ranked))
	}
	p.Forget(1)
	p.Forget(2)
	p.Forget(3)
	ranked = p.Rank(5, []fleet.Member{{ID: "a", Load: 1}, {ID: "b"}})
	if ranked[0].ID != "b" {
		t.Fatalf("after forget, load ranking should decide: got %v", ids(ranked))
	}
}

func TestLogRingBounded(t *testing.T) {
	l := NewLog()
	for i := 0; i < logCap+50; i++ {
		l.Add(Decision{Kind: "place", VM: uint32(i), To: fmt.Sprintf("h%d", i)})
	}
	ds := l.Decisions()
	if len(ds) != logCap {
		t.Fatalf("log retained %d, want %d", len(ds), logCap)
	}
	if ds[0].Seq != 51 || ds[len(ds)-1].Seq != logCap+50 {
		t.Fatalf("ring order wrong: first seq %d last %d", ds[0].Seq, ds[len(ds)-1].Seq)
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].Seq != ds[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %d then %d", i, ds[i-1].Seq, ds[i].Seq)
		}
	}
}
