package sched

import (
	"fmt"
	"reflect"
	"testing"

	"ava/internal/fleet"
)

func ids(ms []fleet.Member) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.ID
	}
	return out
}

func TestLeastLoadRanksDeterministically(t *testing.T) {
	ms := []fleet.Member{
		{ID: "c", Load: 1},
		{ID: "a", Load: 0, QueueDepth: 5},
		{ID: "b", Load: 0},
		{ID: "d", Load: 0},
	}
	got := ids(LeastLoad{}.Rank(7, ms))
	// b and d tie exactly: the ID breaks the tie, every time.
	want := []string{"b", "d", "a", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rank = %v, want %v", got, want)
	}
	for i := 0; i < 50; i++ {
		again := ids(LeastLoad{}.Rank(7, []fleet.Member{
			{ID: "d", Load: 0}, {ID: "b", Load: 0},
			{ID: "a", Load: 0, QueueDepth: 5}, {ID: "c", Load: 1},
		}))
		if !reflect.DeepEqual(again, want) {
			t.Fatalf("iteration %d: rank = %v, want %v (nondeterministic)", i, again, want)
		}
	}
}

// A policy over a quorum-merged fleet view ranks exactly as it would over
// a single registry holding the union: placement is agnostic to the
// Locator flavor behind it, which is what lets the HA MultiClient drop in
// under WithPlacement without touching this package.
func TestPolicyRanksQuorumMergedView(t *testing.T) {
	regA, regB := fleet.NewRegistry(0, nil), fleet.NewRegistry(0, nil)
	// A partitioned announce: each replica heard about a different subset
	// (with one host on both), the way a real fleet looks mid-gossip.
	regA.Announce(fleet.Member{ID: "host-a", Addr: "a:1", API: "opencl", Load: 2})
	regA.Announce(fleet.Member{ID: "host-c", Addr: "c:1", API: "opencl", Load: 0})
	regB.Announce(fleet.Member{ID: "host-b", Addr: "b:1", API: "opencl", Load: 1})
	regB.Announce(fleet.Member{ID: "host-c", Addr: "c:1", API: "opencl", Load: 0})

	single := fleet.NewRegistry(0, nil)
	for _, m := range []fleet.Member{
		{ID: "host-a", Addr: "a:1", API: "opencl", Load: 2},
		{ID: "host-b", Addr: "b:1", API: "opencl", Load: 1},
		{ID: "host-c", Addr: "c:1", API: "opencl", Load: 0},
	} {
		single.Announce(m)
	}

	var merged, union fleet.Locator = fleet.NewMultiClient(regA, regB), single
	for vm := uint32(1); vm <= 3; vm++ {
		a, err := merged.Live("opencl")
		if err != nil {
			t.Fatal(err)
		}
		b, err := union.Live("opencl")
		if err != nil {
			t.Fatal(err)
		}
		got, want := ids(LeastLoad{}.Rank(vm, a)), ids(LeastLoad{}.Rank(vm, b))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("vm %d: quorum-merged rank %v != single-registry rank %v", vm, got, want)
		}
		if got[0] != "host-c" {
			t.Fatalf("vm %d: lightest host not ranked first: %v", vm, got)
		}
	}
}

func TestSpreadByVMCountBalancesBurst(t *testing.T) {
	p := NewSpreadByVMCount()
	members := []fleet.Member{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	counts := map[string]int{}
	// A burst of 30 attachments with no announced-load movement at all:
	// the spread policy must still distribute 10/10/10.
	for vm := uint32(1); vm <= 30; vm++ {
		ranked := p.Rank(vm, append([]fleet.Member(nil), members...))
		p.Observe(vm, ranked[0].ID)
		counts[ranked[0].ID]++
	}
	for _, id := range []string{"a", "b", "c"} {
		if counts[id] != 10 {
			t.Fatalf("spread counts = %v, want 10 per host", counts)
		}
	}
}

func TestSpreadByVMCountFollowsObservedMoves(t *testing.T) {
	p := NewSpreadByVMCount()
	p.Observe(1, "a")
	p.Observe(2, "a")
	p.Observe(3, "b")
	// VM 1 fails over to b (not the policy's doing): counts must follow.
	p.Observe(1, "b")
	ranked := p.Rank(4, []fleet.Member{{ID: "a"}, {ID: "b"}})
	if ranked[0].ID != "a" {
		t.Fatalf("after observed move, rank = %v, want a first", ids(ranked))
	}
	// Re-ranking a VM that already lives somewhere must not double-count
	// its own placement against that host.
	ranked = p.Rank(3, []fleet.Member{{ID: "a"}, {ID: "b"}})
	if ranked[0].ID != "a" && ranked[0].ID != "b" {
		t.Fatalf("unexpected rank %v", ids(ranked))
	}
	p.Forget(1)
	p.Forget(2)
	p.Forget(3)
	ranked = p.Rank(5, []fleet.Member{{ID: "a", Load: 1}, {ID: "b"}})
	if ranked[0].ID != "b" {
		t.Fatalf("after forget, load ranking should decide: got %v", ids(ranked))
	}
}

func TestLogRingBounded(t *testing.T) {
	l := NewLog()
	for i := 0; i < logCap+50; i++ {
		l.Add(Decision{Kind: "place", VM: uint32(i), To: fmt.Sprintf("h%d", i)})
	}
	ds := l.Decisions()
	if len(ds) != logCap {
		t.Fatalf("log retained %d, want %d", len(ds), logCap)
	}
	if ds[0].Seq != 51 || ds[len(ds)-1].Seq != logCap+50 {
		t.Fatalf("ring order wrong: first seq %d last %d", ds[0].Seq, ds[len(ds)-1].Seq)
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].Seq != ds[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %d then %d", i, ds[i-1].Seq, ds[i].Seq)
		}
	}
}
