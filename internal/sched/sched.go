// Package sched is the cluster-scheduling subsystem: it closes the loop
// from discovery to placement. The fleet registry (internal/fleet) knows
// which hosts are alive and how loaded they are; this package decides
// where VMs should run — at admission time, when a stack attaches a VM
// through a registry locator (Policy), and continuously afterwards, when
// a background rebalancer detects sustained load skew and live-migrates
// VMs off hot hosts through the guardian's checkpoint/migrate machinery
// (Rebalancer).
//
// Both halves record their choices in a Decision log the control plane
// exposes (GET /sched), so an operator can always answer "why is this VM
// on that host?".
package sched

import (
	"sort"
	"sync"
	"time"

	"ava/internal/fleet"
)

// Policy orders placement candidates for one VM. Implementations must be
// deterministic: given the same members and the same observed history,
// the same VM ranks candidates identically — placement decisions must be
// reproducible from the decision log.
type Policy interface {
	// Name identifies the policy in decision logs ("least-load", ...).
	Name() string
	// Rank orders live members best-first for placing vm. The input
	// arrives in the registry's health ranking (lightest load first,
	// deterministic tie-break) and may be reordered in place.
	Rank(vm uint32, ms []fleet.Member) []fleet.Member
}

// LeastLoad places every VM on the lightest live member. The registry's
// Live ranking already orders members lexicographically by (Load,
// QueueDepth, BytesInFlight, ID); LeastLoad re-sorts defensively so the
// policy stays correct even over a locator with weaker ordering.
type LeastLoad struct{}

// Name implements Policy.
func (LeastLoad) Name() string { return "least-load" }

// Rank implements Policy.
func (LeastLoad) Rank(_ uint32, ms []fleet.Member) []fleet.Member {
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].Score() != ms[j].Score() {
			return ms[i].Score() < ms[j].Score()
		}
		return ms[i].ID < ms[j].ID
	})
	return ms
}

// SpreadByVMCount balances its own placements across hosts: it tracks how
// many VMs it has placed on each member and ranks the least-used first,
// falling back to the load ranking between equally used hosts. Unlike
// LeastLoad it does not depend on announced load catching up between two
// back-to-back placements, so a burst of attachments spreads immediately
// instead of piling onto the host whose announcement is stalest.
type SpreadByVMCount struct {
	mu     sync.Mutex
	counts map[string]int    // placements per member ID
	where  map[uint32]string // current member per VM
}

// NewSpreadByVMCount builds the spread policy with empty history.
func NewSpreadByVMCount() *SpreadByVMCount {
	return &SpreadByVMCount{counts: make(map[string]int), where: make(map[uint32]string)}
}

// Name implements Policy.
func (p *SpreadByVMCount) Name() string { return "spread-by-vm-count" }

// Rank implements Policy.
func (p *SpreadByVMCount) Rank(vm uint32, ms []fleet.Member) []fleet.Member {
	p.mu.Lock()
	counts := make(map[string]int, len(ms))
	for _, m := range ms {
		counts[m.ID] = p.counts[m.ID]
	}
	if cur, ok := p.where[vm]; ok {
		// The VM's own current placement must not count against its
		// destination candidates — a re-dial back to the same host is not
		// a second placement.
		if counts[cur] > 0 {
			counts[cur]--
		}
	}
	p.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool {
		if counts[ms[i].ID] != counts[ms[j].ID] {
			return counts[ms[i].ID] < counts[ms[j].ID]
		}
		if ms[i].Score() != ms[j].Score() {
			return ms[i].Score() < ms[j].Score()
		}
		return ms[i].ID < ms[j].ID
	})
	return ms
}

// Observe records that vm now runs on member id — called by the stack on
// every successful dial so the spread counts follow reality (including
// failover moves the policy did not initiate).
func (p *SpreadByVMCount) Observe(vm uint32, id string) {
	p.mu.Lock()
	if prev, ok := p.where[vm]; ok {
		if prev == id {
			p.mu.Unlock()
			return
		}
		if p.counts[prev] > 0 {
			p.counts[prev]--
		}
	}
	p.where[vm] = id
	p.counts[id]++
	p.mu.Unlock()
}

// Forget drops a detached VM from the spread counts.
func (p *SpreadByVMCount) Forget(vm uint32) {
	p.mu.Lock()
	if prev, ok := p.where[vm]; ok {
		if p.counts[prev] > 0 {
			p.counts[prev]--
		}
		delete(p.where, vm)
	}
	p.mu.Unlock()
}

// Decision is one scheduling choice: a placement, a failover landing, or
// a rebalance migration.
type Decision struct {
	// Seq orders decisions within one log.
	Seq uint64 `json:"seq"`
	// Time is when the decision was made.
	Time time.Time `json:"time"`
	// Kind is "place" (admission), "failover" (a dial that landed on a
	// new host after a failure), "rebalance" (skew-driven migration), or
	// "manual" (operator-triggered via the control plane).
	Kind string `json:"kind"`
	// VM is the guest the decision moved.
	VM uint32 `json:"vm"`
	// From is the previous host ("" at admission).
	From string `json:"from,omitempty"`
	// To is the chosen host.
	To string `json:"to"`
	// Policy names the policy that ranked the candidates.
	Policy string `json:"policy,omitempty"`
	// Reason is a short human-readable justification.
	Reason string `json:"reason,omitempty"`
}

// logCap bounds the decision ring; old decisions fall off the front.
const logCap = 256

// Log is a bounded, concurrency-safe ring of scheduling decisions.
type Log struct {
	mu   sync.Mutex
	seq  uint64
	buf  []Decision
	head int // index of the oldest entry when full
	full bool
}

// NewLog builds an empty decision log.
func NewLog() *Log { return &Log{buf: make([]Decision, 0, logCap)} }

// Add appends a decision, stamping its sequence number.
func (l *Log) Add(d Decision) {
	l.mu.Lock()
	l.seq++
	d.Seq = l.seq
	if l.full {
		l.buf[l.head] = d
		l.head = (l.head + 1) % logCap
	} else {
		l.buf = append(l.buf, d)
		if len(l.buf) == logCap {
			l.full = true
		}
	}
	l.mu.Unlock()
}

// Decisions returns the retained decisions, oldest first.
func (l *Log) Decisions() []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		return append([]Decision(nil), l.buf...)
	}
	out := make([]Decision, 0, logCap)
	out = append(out, l.buf[l.head:]...)
	out = append(out, l.buf[:l.head]...)
	return out
}

// Len returns how many decisions the log retains.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}
