package sched

import (
	"errors"
	"testing"
	"time"

	"ava/internal/clock"
	"ava/internal/fleet"
)

// simFleet is a synthetic cluster the rebalancer steers: migrations move
// VMs between hosts instantly and load is exactly the VM count, so every
// assertion is deterministic.
type simFleet struct {
	hosts map[string][]uint32
	order []string
	moves []string // "vm@from->to"
}

func newSimFleet(spread map[string]int) *simFleet {
	f := &simFleet{hosts: make(map[string][]uint32)}
	vm := uint32(1)
	for _, id := range []string{"host-a", "host-b", "host-c"} {
		n, ok := spread[id]
		if !ok {
			continue
		}
		f.order = append(f.order, id)
		for i := 0; i < n; i++ {
			f.hosts[id] = append(f.hosts[id], vm)
			vm++
		}
	}
	return f
}

func (f *simFleet) loads() []HostLoad {
	out := make([]HostLoad, 0, len(f.order))
	for _, id := range f.order {
		out = append(out, HostLoad{
			Member: fleet.Member{ID: id, API: "test", Load: len(f.hosts[id])},
			VMs:    append([]uint32(nil), f.hosts[id]...),
		})
	}
	return out
}

func (f *simFleet) migrate(vm uint32, target string) error {
	for id, vms := range f.hosts {
		for i, v := range vms {
			if v == vm {
				f.hosts[id] = append(vms[:i:i], vms[i+1:]...)
				f.hosts[target] = append(f.hosts[target], vm)
				f.moves = append(f.moves, formatMove(vm, id, target))
				return nil
			}
		}
	}
	return errors.New("unknown vm")
}

func formatMove(vm uint32, from, to string) string {
	return string(rune('0'+vm%10)) + "@" + from + "->" + to
}

func TestRebalancerMovesSustainedSkewAndConverges(t *testing.T) {
	f := newSimFleet(map[string]int{"host-a": 12, "host-b": 0, "host-c": 0})
	cfg := Config{
		Alpha:           1, // no smoothing: the sim is noise-free
		SkewRatio:       1.2,
		HysteresisTicks: 3,
		CooldownTicks:   1,
		WindowTicks:     10,
		MaxPerWindow:    4,
		BatchMax:        2,
		VMCooldownTicks: 1,
	}
	r := New(cfg, f.loads, f.migrate)

	// The first two ticks see the skew but hysteresis holds migrations.
	if n := r.Tick(); n != 0 {
		t.Fatalf("tick 1 migrated %d, want 0 (hysteresis)", n)
	}
	if n := r.Tick(); n != 0 {
		t.Fatalf("tick 2 migrated %d, want 0 (hysteresis)", n)
	}
	for i := 0; i < 60; i++ {
		r.Tick()
	}
	// Converged: 4/4/4 is perfectly balanced; anything within one VM of
	// even is acceptable given the no-inversion guard stops early.
	for id, vms := range f.hosts {
		if len(vms) < 3 || len(vms) > 5 {
			t.Fatalf("host %s ended with %d VMs, want ~4 (spread %v)", id, len(vms), f.hosts)
		}
	}
	st := r.Stats()
	if st.Migrations == 0 {
		t.Fatal("no migrations despite sustained skew")
	}

	// Balance holds: many more ticks must not move anything — the
	// rebalancer does not flap once the skew is gone.
	before := st.Migrations
	for i := 0; i < 50; i++ {
		r.Tick()
	}
	if after := r.Stats().Migrations; after != before {
		t.Fatalf("rebalancer flapped: %d extra migrations on a balanced fleet", after-before)
	}
}

// TestRebalancerBoundedMigrationsPerWindow is the no-flap acceptance
// assertion: across the whole run, no WindowTicks-wide window ever
// contains more than MaxPerWindow migrations.
func TestRebalancerBoundedMigrationsPerWindow(t *testing.T) {
	f := newSimFleet(map[string]int{"host-a": 40, "host-b": 0, "host-c": 0})
	cfg := Config{
		Alpha:           1,
		SkewRatio:       1.2,
		HysteresisTicks: 1,
		CooldownTicks:   1,
		WindowTicks:     5,
		MaxPerWindow:    3,
		BatchMax:        3, // would love to move 3 every tick; budget says no
		VMCooldownTicks: 1,
	}
	var migrationTicks []int
	tick := 0
	r := New(cfg, f.loads, func(vm uint32, target string) error {
		migrationTicks = append(migrationTicks, tick)
		return f.migrate(vm, target)
	})
	for tick = 1; tick <= 120; tick++ {
		r.Tick()
	}
	if len(migrationTicks) == 0 {
		t.Fatal("no migrations at all")
	}
	// Sliding-window audit over the recorded schedule.
	for i := range migrationTicks {
		n := 1
		for j := i + 1; j < len(migrationTicks); j++ {
			if migrationTicks[j]-migrationTicks[i] < cfg.WindowTicks {
				n++
			}
		}
		if n > cfg.MaxPerWindow {
			t.Fatalf("window starting at tick %d holds %d migrations, budget %d (schedule %v)",
				migrationTicks[i], n, cfg.MaxPerWindow, migrationTicks)
		}
	}
}

func TestRebalancerIgnoresTransientSpike(t *testing.T) {
	f := newSimFleet(map[string]int{"host-a": 2, "host-b": 2, "host-c": 2})
	r := New(Config{Alpha: 1, HysteresisTicks: 3}, f.loads, f.migrate)
	r.Tick()
	// One tick of artificial skew, then balance again.
	f.hosts["host-a"] = append(f.hosts["host-a"], 90, 91, 92, 93, 94, 95)
	r.Tick()
	f.hosts["host-a"] = f.hosts["host-a"][:2]
	for i := 0; i < 20; i++ {
		r.Tick()
	}
	if st := r.Stats(); st.Migrations != 0 {
		t.Fatalf("transient spike caused %d migrations, want 0", st.Migrations)
	}
}

func TestRebalancerFromRestrictsSource(t *testing.T) {
	f := newSimFleet(map[string]int{"host-a": 9, "host-b": 0, "host-c": 0})
	r := New(Config{
		Alpha: 1, HysteresisTicks: 1, CooldownTicks: 1, VMCooldownTicks: 1,
		From: "host-b", // only host-b may shed, and it is cold
	}, f.loads, f.migrate)
	for i := 0; i < 30; i++ {
		r.Tick()
	}
	if st := r.Stats(); st.Migrations != 0 {
		t.Fatalf("From-restricted rebalancer moved %d VMs off a foreign host", st.Migrations)
	}
	if len(f.hosts["host-a"]) != 9 {
		t.Fatalf("host-a lost VMs: %v", f.hosts)
	}
}

// Stats must never wait behind an in-flight migration: the migrate hook
// blocks for a full checkpoint-and-relocate round trip, and the /metrics
// scrape reads Stats while that happens.
func TestRebalancerStatsNonBlockingDuringMigration(t *testing.T) {
	f := newSimFleet(map[string]int{"host-a": 6, "host-b": 0, "host-c": 0})
	entered := make(chan struct{})
	release := make(chan struct{})
	r := New(Config{
		Alpha: 1, HysteresisTicks: 1, CooldownTicks: 1, VMCooldownTicks: 1,
	}, f.loads, func(vm uint32, target string) error {
		close(entered)
		<-release
		return f.migrate(vm, target)
	})
	tickDone := make(chan struct{})
	go func() {
		r.Tick()
		close(tickDone)
	}()
	<-entered
	got := make(chan Stats, 1)
	go func() { got <- r.Stats() }()
	select {
	case st := <-got:
		if st.Ticks != 1 {
			t.Fatalf("mid-migration stats = %+v, want Ticks=1", st)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Stats blocked behind an in-flight migration")
	}
	close(release)
	<-tickDone
	if st := r.Stats(); st.Migrations != 1 {
		t.Fatalf("post-migration stats = %+v, want Migrations=1", st)
	}
}

// Close must interrupt the interval wait rather than ride it out: on a
// manual test clock nobody advances (or a long Interval on the wall
// clock), a Sleep-based loop would block Close indefinitely.
func TestRebalancerCloseInterruptsIntervalWait(t *testing.T) {
	f := newSimFleet(map[string]int{"host-a": 2, "host-b": 2, "host-c": 2})
	r := New(Config{Interval: time.Hour, Clock: clock.NewVirtual()}, f.loads, f.migrate)
	r.Start()
	closed := make(chan struct{})
	go func() {
		r.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked on the interval wait")
	}
}

func TestRebalancerKickWaivesHysteresisOnly(t *testing.T) {
	f := newSimFleet(map[string]int{"host-a": 12, "host-b": 0, "host-c": 0})
	log := NewLog()
	r := New(Config{
		Alpha: 1, HysteresisTicks: 100, // ticks alone would never migrate
		CooldownTicks: 1, VMCooldownTicks: 1, BatchMax: 2, Log: log,
	}, f.loads, f.migrate)
	r.Tick()
	if n := r.Kick(); n == 0 {
		t.Fatal("Kick migrated nothing despite clear skew")
	}
	if log.Len() == 0 {
		t.Fatal("Kick's migrations missing from the decision log")
	}
	for _, d := range log.Decisions() {
		if d.Kind != "rebalance" || d.From != "host-a" {
			t.Fatalf("unexpected decision %+v", d)
		}
	}
}
