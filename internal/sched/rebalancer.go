package sched

import (
	"sync"
	"time"

	"ava/internal/clock"
	"ava/internal/fleet"
)

// HostLoad is one host's view in a rebalance evaluation: its announced
// member record (load signals included) joined with the VMs currently
// served there.
type HostLoad struct {
	Member fleet.Member
	VMs    []uint32
}

// Config tunes a Rebalancer. Every horizon is denominated in evaluation
// ticks, not wall time, so the decision procedure is exactly reproducible:
// a test driving Tick() by hand and a daemon driving it off a timer run
// the same state machine.
type Config struct {
	// Interval paces the background loop (Start); 0 = 1s. Tests that call
	// Tick directly never consult it.
	Interval time.Duration
	// Alpha is the per-tick EWMA smoothing factor applied to each host's
	// load score, in (0,1]; 0 = 0.25. Smaller alpha = longer memory = a
	// wider window before a skew registers.
	Alpha float64
	// SkewRatio declares a host hot when its load EWMA exceeds the fleet
	// mean EWMA by this factor; 0 = 1.5.
	SkewRatio float64
	// HysteresisTicks is how many consecutive ticks a host must stay hot
	// before the first migration — a transient spike never moves a VM.
	// 0 = 3.
	HysteresisTicks int
	// CooldownTicks is the minimum tick gap between migration batches;
	// 0 = 2. Together with the EWMA lag it gives announced loads time to
	// catch up with a migration before the next one is considered.
	CooldownTicks int
	// WindowTicks and MaxPerWindow bound migration churn: at most
	// MaxPerWindow migrations within any WindowTicks-tick sliding window.
	// Defaults: 10 and 4. This is the no-flap guarantee the tests assert.
	WindowTicks  int
	MaxPerWindow int
	// BatchMax caps migrations started by a single evaluation; 0 = 1.
	BatchMax int
	// VMCooldownTicks is how long after migrating a VM the rebalancer
	// refuses to move that same VM again; 0 = 2*WindowTicks. A VM bouncing
	// host-to-host is the classic flap signature.
	VMCooldownTicks int
	// From restricts migrations to VMs served by this host ID — the mode
	// avad uses to shed only its own load. "" considers any hot host.
	From string
	// Policy ranks migration targets; nil = LeastLoad.
	Policy Policy
	// Clock stamps decisions and paces the loop; nil = wall clock.
	Clock clock.Clock
	// Log, if set, receives a Decision per migration.
	Log *Log
}

// Stats counts a rebalancer's lifetime activity.
type Stats struct {
	// Ticks is how many evaluations have run.
	Ticks uint64 `json:"ticks"`
	// SkewTicks is how many evaluations saw a host over the skew ratio.
	SkewTicks uint64 `json:"skew_ticks"`
	// Migrations is how many live migrations were started successfully.
	Migrations uint64 `json:"migrations"`
	// Failed counts migrate-hook errors (VM mid-recovery, host vanished).
	Failed uint64 `json:"failed"`
	// Suppressed counts evaluations where a sustained skew existed but
	// hysteresis, cooldown, or the per-window budget blocked migration —
	// the anti-flap machinery doing its job.
	Suppressed uint64 `json:"suppressed"`
}

// Rebalancer watches per-host load and live-migrates VMs off sustained-hot
// hosts. It detects skew on an EWMA of each host's load score, requires
// the skew to persist (hysteresis), bounds migrations per sliding window,
// and never moves a VM it migrated recently — so it provably cannot flap.
type Rebalancer struct {
	cfg     Config
	loads   func() []HostLoad
	migrate func(vm uint32, target string) error

	// evalMu serializes whole evaluations (Tick, Kick, the Start loop):
	// the EWMA/hysteresis state machine and the window budget are only
	// correct when evaluations never interleave, and the migrate hook —
	// which can block for a full checkpoint-and-relocate round trip — runs
	// under it alone. mu guards only the stats snapshot, so Stats() (the
	// /metrics scrape path) never waits behind an in-flight migration.
	evalMu     sync.Mutex
	tick       uint64
	ewma       map[string]float64
	hotStreak  map[string]int
	vmCooldown map[uint32]uint64 // vm -> tick of its last migration
	recent     []uint64          // ticks of recent migrations (window budget)
	lastBatch  uint64            // tick of the last migration batch

	mu    sync.Mutex
	stats Stats

	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// New builds a rebalancer over a load source and a migration hook. loads
// returns the current per-host view (announced member + VMs served
// there); migrate starts one VM's live migration to the target host ID
// and is expected to coordinate with the VM's guardian (checkpoint, then
// re-dial under epoch fencing) exactly like the control plane's /migrate.
func New(cfg Config, loads func() []HostLoad, migrate func(vm uint32, target string) error) *Rebalancer {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.25
	}
	if cfg.SkewRatio <= 0 {
		cfg.SkewRatio = 1.5
	}
	if cfg.HysteresisTicks <= 0 {
		cfg.HysteresisTicks = 3
	}
	if cfg.CooldownTicks <= 0 {
		cfg.CooldownTicks = 2
	}
	if cfg.WindowTicks <= 0 {
		cfg.WindowTicks = 10
	}
	if cfg.MaxPerWindow <= 0 {
		cfg.MaxPerWindow = 4
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 1
	}
	if cfg.VMCooldownTicks <= 0 {
		cfg.VMCooldownTicks = 2 * cfg.WindowTicks
	}
	if cfg.Policy == nil {
		cfg.Policy = LeastLoad{}
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	return &Rebalancer{
		cfg:        cfg,
		loads:      loads,
		migrate:    migrate,
		ewma:       make(map[string]float64),
		hotStreak:  make(map[string]int),
		vmCooldown: make(map[uint32]uint64),
		done:       make(chan struct{}),
	}
}

// Start runs the background evaluation loop until Close.
func (r *Rebalancer) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			// An interruptible interval wait: Close must not sit out the
			// rest of a sleep (or, on a manual test clock, wait for an
			// Advance that never comes), so the timer races the done
			// channel instead of blocking in Clock.Sleep.
			wake := make(chan struct{})
			stop := r.cfg.Clock.AfterFunc(r.cfg.Interval, func() { close(wake) })
			select {
			case <-r.done:
				stop()
				return
			case <-wake:
			}
			select {
			case <-r.done:
				return
			default:
			}
			r.Tick()
		}
	}()
}

// Close stops the loop. Safe to call without Start.
func (r *Rebalancer) Close() {
	r.once.Do(func() { close(r.done) })
	r.wg.Wait()
}

// Stats returns a copy of the lifetime counters.
func (r *Rebalancer) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Tick runs one evaluation and returns how many migrations it started.
func (r *Rebalancer) Tick() int { return r.evaluate(false) }

// Kick is the manual trigger (POST /rebalance): one evaluation with the
// hysteresis requirement waived — the operator has already decided the
// skew is real — but the window budget, cooldowns and the no-inversion
// guard still hold, so even a scripted Kick loop cannot flap the fleet.
func (r *Rebalancer) Kick() int { return r.evaluate(true) }

// bump applies one mutation to the stats snapshot under its own lock.
func (r *Rebalancer) bump(f func(*Stats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}

func (r *Rebalancer) evaluate(force bool) int {
	r.evalMu.Lock()
	defer r.evalMu.Unlock()
	r.tick++
	r.bump(func(s *Stats) { s.Ticks++ })

	hosts := r.loads()
	if len(hosts) < 2 {
		r.hotStreak = make(map[string]int)
		return 0
	}

	// Smooth each host's score; forget hosts that left the fleet.
	present := make(map[string]bool, len(hosts))
	var sum float64
	for _, h := range hosts {
		id := h.Member.ID
		present[id] = true
		s := h.Member.Score()
		if prev, ok := r.ewma[id]; ok {
			r.ewma[id] = prev + r.cfg.Alpha*(s-prev)
		} else {
			r.ewma[id] = s
		}
		sum += r.ewma[id]
	}
	for id := range r.ewma {
		if !present[id] {
			delete(r.ewma, id)
			delete(r.hotStreak, id)
		}
	}
	mean := sum / float64(len(hosts))

	// Find the hottest eligible host: over the skew ratio, serving at
	// least one VM we may move, and matching the From restriction.
	var hot *HostLoad
	for i := range hosts {
		h := &hosts[i]
		id := h.Member.ID
		if mean <= 0 || r.ewma[id] <= r.cfg.SkewRatio*mean || len(h.VMs) == 0 {
			r.hotStreak[id] = 0
			continue
		}
		if r.cfg.From != "" && id != r.cfg.From {
			r.hotStreak[id] = 0
			continue
		}
		r.hotStreak[id]++
		if hot == nil || r.ewma[id] > r.ewma[hot.Member.ID] ||
			(r.ewma[id] == r.ewma[hot.Member.ID] && id < hot.Member.ID) {
			hot = h
		}
	}
	if hot == nil {
		return 0
	}
	r.bump(func(s *Stats) { s.SkewTicks++ })

	if !force && r.hotStreak[hot.Member.ID] < r.cfg.HysteresisTicks {
		r.bump(func(s *Stats) { s.Suppressed++ })
		return 0
	}
	// Cooldown between batches, and the sliding-window budget.
	if r.lastBatch != 0 && r.tick-r.lastBatch < uint64(r.cfg.CooldownTicks) {
		r.bump(func(s *Stats) { s.Suppressed++ })
		return 0
	}
	budget := r.cfg.MaxPerWindow - r.migrationsInWindow()
	if budget <= 0 {
		r.bump(func(s *Stats) { s.Suppressed++ })
		return 0
	}
	if budget > r.cfg.BatchMax {
		budget = r.cfg.BatchMax
	}

	// Rank targets and plan the batch. perVM approximates one VM's share
	// of the hot host's load; a move only happens while it cannot invert
	// the skew (hot stays at or above the target after the transfer) —
	// the structural anti-flap guard.
	targets := make([]fleet.Member, 0, len(hosts)-1)
	for _, h := range hosts {
		if h.Member.ID != hot.Member.ID {
			targets = append(targets, h.Member)
		}
	}
	hotScore := hot.Member.Score()
	perVM := hotScore / float64(len(hot.VMs))
	if perVM <= 0 {
		perVM = 1
	}
	targetScore := make(map[string]float64, len(targets))
	for _, t := range targets {
		targetScore[t.ID] = t.Score()
	}

	started := 0
	vmIdx := 0
	for started < budget {
		// Next candidate VM on the hot host, skipping recently moved ones.
		var vm uint32
		found := false
		for ; vmIdx < len(hot.VMs); vmIdx++ {
			v := hot.VMs[vmIdx]
			if last, ok := r.vmCooldown[v]; ok && r.tick-last < uint64(r.cfg.VMCooldownTicks) {
				continue
			}
			vm, found = v, true
			vmIdx++
			break
		}
		if !found {
			break
		}
		ranked := r.cfg.Policy.Rank(vm, append([]fleet.Member(nil), targets...))
		if len(ranked) == 0 {
			break
		}
		tgt := ranked[0]
		// Re-rank by the simulated scores: earlier moves in this batch
		// already claimed capacity on their targets.
		for _, c := range ranked {
			if targetScore[c.ID] < targetScore[tgt.ID] ||
				(targetScore[c.ID] == targetScore[tgt.ID] && c.ID < tgt.ID) {
				tgt = c
			}
		}
		if hotScore-perVM < targetScore[tgt.ID]+perVM {
			break // the move would invert the skew: stop, do not flap
		}
		if err := r.migrate(vm, tgt.ID); err != nil {
			r.bump(func(s *Stats) { s.Failed++ })
			continue // VM mid-recovery or similar; try the next one
		}
		r.bump(func(s *Stats) { s.Migrations++ })
		r.vmCooldown[vm] = r.tick
		r.recent = append(r.recent, r.tick)
		r.lastBatch = r.tick
		hotScore -= perVM
		targetScore[tgt.ID] += perVM
		started++
		if r.cfg.Log != nil {
			r.cfg.Log.Add(Decision{
				Time:   r.cfg.Clock.Now(),
				Kind:   "rebalance",
				VM:     vm,
				From:   hot.Member.ID,
				To:     tgt.ID,
				Policy: r.cfg.Policy.Name(),
				Reason: "sustained load skew",
			})
		}
	}
	if started == 0 {
		r.bump(func(s *Stats) { s.Suppressed++ })
	}
	return started
}

// migrationsInWindow counts migrations inside the sliding window ending
// now, pruning entries that aged out. Caller holds r.evalMu.
func (r *Rebalancer) migrationsInWindow() int {
	cut := uint64(0)
	if r.tick > uint64(r.cfg.WindowTicks) {
		cut = r.tick - uint64(r.cfg.WindowTicks)
	}
	keep := r.recent[:0]
	for _, t := range r.recent {
		if t > cut {
			keep = append(keep, t)
		}
	}
	r.recent = keep
	return len(r.recent)
}
