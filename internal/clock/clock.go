// Package clock provides real and virtual time sources.
//
// Every component in the AvA runtime that needs time (the DMA model in
// devsim, the rate limiter and schedulers in hv, the profiling counters in
// the API server) takes a Clock rather than calling time.Now directly, so
// tests can run on a deterministic virtual clock while benchmarks and the
// real daemons run on the wall clock.
package clock

import (
	"sync"
	"time"
)

// Clock is a time source.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the caller for d of this clock's time.
	Sleep(d time.Duration)
	// Since returns the time elapsed on this clock since t.
	Since(t time.Time) time.Duration
}

// Real is the wall clock.
type Real struct{}

// NewReal returns the wall clock.
func NewReal() *Real { return &Real{} }

// Now implements Clock.
func (*Real) Now() time.Time { return time.Now() }

// spinThreshold is the longest delay serviced by busy-waiting. The Go
// runtime's timer granularity is far coarser than the microsecond-scale
// device latencies (kernel launch, DMA setup) the hardware model charges,
// so short waits spin — as real device drivers do for doorbell latencies.
const spinThreshold = 100 * time.Microsecond

// Sleep implements Clock with microsecond precision.
func (*Real) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if d <= spinThreshold {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
		}
		return
	}
	time.Sleep(d)
}

// Since implements Clock.
func (*Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Virtual is a deterministic clock that only advances when told to.
// Sleep advances the clock rather than blocking, which makes timing-dependent
// logic (DMA transfer cost, token-bucket refill) fully deterministic in tests.
// Virtual is safe for concurrent use.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtual returns a virtual clock starting at an arbitrary fixed epoch.
func NewVirtual() *Virtual {
	return &Virtual{now: time.Unix(1_000_000_000, 0)}
}

// NewVirtualAt returns a virtual clock starting at t.
func NewVirtualAt(t time.Time) *Virtual { return &Virtual{now: t} }

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock by advancing virtual time immediately.
func (v *Virtual) Sleep(d time.Duration) { v.Advance(d) }

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Advance moves the clock forward by d. Negative d is ignored.
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// Set moves the clock to t if t is in the future of the clock.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
	}
	v.mu.Unlock()
}
