// Package clock provides real and virtual time sources.
//
// Every component in the AvA runtime that needs time (the DMA model in
// devsim, the rate limiter and schedulers in hv, the profiling counters in
// the API server) takes a Clock rather than calling time.Now directly, so
// tests can run on a deterministic virtual clock while benchmarks and the
// real daemons run on the wall clock.
package clock

import (
	"sync"
	"time"
)

// Clock is a time source.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the caller for d of this clock's time.
	Sleep(d time.Duration)
	// Since returns the time elapsed on this clock since t.
	Since(t time.Time) time.Duration
	// AfterFunc arranges for f to run once, in its own goroutine, after d
	// of this clock's time has elapsed. The returned stop function
	// prevents the firing if it has not happened yet and reports whether
	// it did so. The API server uses this for call-deadline cancellation
	// signals; on a Virtual clock the timer fires from Advance/Set, which
	// keeps cancellation deterministic in tests.
	AfterFunc(d time.Duration, f func()) (stop func() bool)
}

// Real is the wall clock.
type Real struct{}

// NewReal returns the wall clock.
func NewReal() *Real { return &Real{} }

// Now implements Clock.
func (*Real) Now() time.Time { return time.Now() }

// spinThreshold is the longest delay serviced by busy-waiting. The Go
// runtime's timer granularity is far coarser than the microsecond-scale
// device latencies (kernel launch, DMA setup) the hardware model charges,
// so short waits spin — as real device drivers do for doorbell latencies.
const spinThreshold = 100 * time.Microsecond

// Sleep implements Clock with microsecond precision.
func (*Real) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if d <= spinThreshold {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
		}
		return
	}
	time.Sleep(d)
}

// Since implements Clock.
func (*Real) Since(t time.Time) time.Duration { return time.Since(t) }

// AfterFunc implements Clock via the runtime timer.
func (*Real) AfterFunc(d time.Duration, f func()) (stop func() bool) {
	t := time.AfterFunc(d, f)
	return t.Stop
}

// Virtual is a deterministic clock that only advances when told to.
// Sleep advances the clock rather than blocking, which makes timing-dependent
// logic (DMA transfer cost, token-bucket refill) fully deterministic in tests.
// Virtual is safe for concurrent use.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	timers []*vtimer
}

// vtimer is one pending AfterFunc on a virtual clock.
type vtimer struct {
	when    time.Time
	f       func()
	stopped bool
	fired   bool
}

// NewVirtual returns a virtual clock starting at an arbitrary fixed epoch.
func NewVirtual() *Virtual {
	return &Virtual{now: time.Unix(1_000_000_000, 0)}
}

// NewVirtualAt returns a virtual clock starting at t.
func NewVirtualAt(t time.Time) *Virtual { return &Virtual{now: t} }

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock by advancing virtual time immediately.
func (v *Virtual) Sleep(d time.Duration) { v.Advance(d) }

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Advance moves the clock forward by d. Negative d is ignored.
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.fireDueLocked()
	v.mu.Unlock()
}

// Set moves the clock to t if t is in the future of the clock.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
		v.fireDueLocked()
	}
	v.mu.Unlock()
}

// AfterFunc implements Clock. Timers fire (each in its own goroutine, like
// time.AfterFunc) when Advance or Set moves the clock to or past their
// expiry; a timer whose delay is <= 0 fires immediately.
func (v *Virtual) AfterFunc(d time.Duration, f func()) (stop func() bool) {
	v.mu.Lock()
	t := &vtimer{when: v.now.Add(d), f: f}
	if !t.when.After(v.now) {
		t.fired = true
		v.mu.Unlock()
		go f()
		return func() bool { return false }
	}
	v.timers = append(v.timers, t)
	v.mu.Unlock()
	return func() bool {
		v.mu.Lock()
		defer v.mu.Unlock()
		if t.fired || t.stopped {
			return false
		}
		t.stopped = true
		return true
	}
}

// fireDueLocked launches every timer whose expiry has been reached and
// prunes finished entries. Called with v.mu held.
func (v *Virtual) fireDueLocked() {
	kept := v.timers[:0]
	for _, t := range v.timers {
		switch {
		case t.stopped:
		case !t.when.After(v.now):
			t.fired = true
			go t.f()
		default:
			kept = append(kept, t)
		}
	}
	v.timers = kept
}
