package clock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualStartsAtEpoch(t *testing.T) {
	v := NewVirtual()
	if got := v.Now(); !got.Equal(time.Unix(1_000_000_000, 0)) {
		t.Fatalf("epoch = %v", got)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	v.Advance(5 * time.Second)
	if d := v.Since(t0); d != 5*time.Second {
		t.Fatalf("Since = %v, want 5s", d)
	}
}

func TestVirtualSleepAdvances(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	done := make(chan struct{})
	go func() {
		v.Sleep(time.Minute)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("virtual Sleep blocked")
	}
	if d := v.Since(t0); d != time.Minute {
		t.Fatalf("Since = %v, want 1m", d)
	}
}

func TestVirtualNegativeAdvanceIgnored(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	v.Advance(-time.Hour)
	if !v.Now().Equal(t0) {
		t.Fatal("negative advance moved the clock")
	}
}

func TestVirtualSetOnlyForward(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	v.Set(t0.Add(-time.Hour))
	if !v.Now().Equal(t0) {
		t.Fatal("Set moved the clock backwards")
	}
	v.Set(t0.Add(time.Hour))
	if d := v.Since(t0); d != time.Hour {
		t.Fatalf("Since = %v, want 1h", d)
	}
}

func TestVirtualAt(t *testing.T) {
	at := time.Unix(42, 0)
	v := NewVirtualAt(at)
	if !v.Now().Equal(at) {
		t.Fatalf("Now = %v, want %v", v.Now(), at)
	}
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.Advance(time.Millisecond)
		}()
	}
	wg.Wait()
	if d := v.Since(t0); d != 50*time.Millisecond {
		t.Fatalf("Since = %v, want 50ms", d)
	}
}

func TestRealClockMonotonicEnough(t *testing.T) {
	r := NewReal()
	t0 := r.Now()
	r.Sleep(time.Millisecond)
	if r.Since(t0) <= 0 {
		t.Fatal("real clock did not advance")
	}
}

func TestVirtualAfterFuncFiresOnAdvance(t *testing.T) {
	v := NewVirtual()
	fired := make(chan struct{})
	v.AfterFunc(10*time.Millisecond, func() { close(fired) })
	v.Advance(9 * time.Millisecond)
	select {
	case <-fired:
		t.Fatal("timer fired early")
	default:
	}
	v.Advance(time.Millisecond)
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("timer did not fire at expiry")
	}
}

func TestVirtualAfterFuncStop(t *testing.T) {
	v := NewVirtual()
	fired := make(chan struct{})
	stop := v.AfterFunc(time.Millisecond, func() { close(fired) })
	if !stop() {
		t.Fatal("stop before expiry reported false")
	}
	if stop() {
		t.Fatal("second stop reported true")
	}
	v.Advance(time.Hour)
	select {
	case <-fired:
		t.Fatal("stopped timer fired")
	case <-time.After(10 * time.Millisecond):
	}
}

func TestVirtualAfterFuncImmediate(t *testing.T) {
	v := NewVirtual()
	fired := make(chan struct{})
	v.AfterFunc(0, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("non-positive delay did not fire immediately")
	}
}

func TestRealAfterFunc(t *testing.T) {
	r := NewReal()
	fired := make(chan struct{})
	r.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("real AfterFunc did not fire")
	}
	stop := r.AfterFunc(time.Hour, func() {})
	if !stop() {
		t.Fatal("stop of pending real timer reported false")
	}
}
