package clock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualStartsAtEpoch(t *testing.T) {
	v := NewVirtual()
	if got := v.Now(); !got.Equal(time.Unix(1_000_000_000, 0)) {
		t.Fatalf("epoch = %v", got)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	v.Advance(5 * time.Second)
	if d := v.Since(t0); d != 5*time.Second {
		t.Fatalf("Since = %v, want 5s", d)
	}
}

func TestVirtualSleepAdvances(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	done := make(chan struct{})
	go func() {
		v.Sleep(time.Minute)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("virtual Sleep blocked")
	}
	if d := v.Since(t0); d != time.Minute {
		t.Fatalf("Since = %v, want 1m", d)
	}
}

func TestVirtualNegativeAdvanceIgnored(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	v.Advance(-time.Hour)
	if !v.Now().Equal(t0) {
		t.Fatal("negative advance moved the clock")
	}
}

func TestVirtualSetOnlyForward(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	v.Set(t0.Add(-time.Hour))
	if !v.Now().Equal(t0) {
		t.Fatal("Set moved the clock backwards")
	}
	v.Set(t0.Add(time.Hour))
	if d := v.Since(t0); d != time.Hour {
		t.Fatalf("Since = %v, want 1h", d)
	}
}

func TestVirtualAt(t *testing.T) {
	at := time.Unix(42, 0)
	v := NewVirtualAt(at)
	if !v.Now().Equal(at) {
		t.Fatalf("Now = %v, want %v", v.Now(), at)
	}
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.Advance(time.Millisecond)
		}()
	}
	wg.Wait()
	if d := v.Since(t0); d != 50*time.Millisecond {
		t.Fatalf("Since = %v, want 50ms", d)
	}
}

func TestRealClockMonotonicEnough(t *testing.T) {
	r := NewReal()
	t0 := r.Now()
	r.Sleep(time.Millisecond)
	if r.Since(t0) <= 0 {
		t.Fatal("real clock did not advance")
	}
}
