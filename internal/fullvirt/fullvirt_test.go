package fullvirt

import (
	"errors"
	"testing"
	"time"

	"ava/internal/clock"
)

func TestVectorAddCorrect(t *testing.T) {
	d := New(Config{})
	a := []float32{1, 2, 3, 4}
	b := []float32{10, 20, 30, 40}
	out, traps, err := d.GuestVectorAdd(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != a[i]+b[i] {
			t.Fatalf("out[%d] = %v", i, out[i])
		}
	}
	// 4+4 uploads, 5 register writes, ≥1 status poll, 4 readbacks.
	if traps < 18 {
		t.Fatalf("traps = %d, implausibly low", traps)
	}
}

func TestTrapCountScalesWithData(t *testing.T) {
	d := New(Config{})
	small := make([]float32, 64)
	large := make([]float32, 1024)
	_, t1, err := d.GuestVectorAdd(small, small)
	if err != nil {
		t.Fatal(err)
	}
	_, t2, err := d.GuestVectorAdd(large, large)
	if err != nil {
		t.Fatal(err)
	}
	// Per-element trap cost: 3 traps per element (2 uploads + 1 readback)
	// plus constant overhead.
	if t2 < 15*t1/2 {
		t.Fatalf("traps do not scale: %d vs %d", t1, t2)
	}
}

func TestModeledTrapTime(t *testing.T) {
	clk := clock.NewVirtual()
	d := New(Config{TrapCost: time.Microsecond, Clock: clk})
	t0 := clk.Now()
	n := make([]float32, 128)
	if _, traps, err := d.GuestVectorAdd(n, n); err != nil {
		t.Fatal(err)
	} else {
		want := time.Duration(traps) * time.Microsecond
		if got := clk.Since(t0); got != want {
			t.Fatalf("virtual time %v, want %v", got, want)
		}
		if d.ModeledTrapTime() < want {
			t.Fatalf("modeled time %v < %v", d.ModeledTrapTime(), want)
		}
	}
}

func TestBadRegister(t *testing.T) {
	d := New(Config{})
	if err := d.WriteReg(0xFF0, 1); !errors.Is(err, ErrBadRegister) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.ReadReg(0xFF0); !errors.Is(err, ErrBadRegister) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadCommand(t *testing.T) {
	d := New(Config{})
	if err := d.WriteReg(RegControl, 99); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("err = %v", err)
	}
	st, _ := d.ReadReg(RegStatus)
	if st != 2 {
		t.Fatalf("status = %d, want error state", st)
	}
}

func TestBarRoundTrip(t *testing.T) {
	d := New(Config{})
	if err := d.WriteBar32(16, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := d.ReadBar32(16)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("bar = %#x, %v", v, err)
	}
}

func TestEveryAccessTraps(t *testing.T) {
	d := New(Config{})
	base := d.Traps()
	d.WriteBar32(0, 1)
	d.ReadBar32(0)
	d.WriteReg(RegSize, 1)
	d.ReadReg(RegStatus)
	if d.Traps()-base != 4 {
		t.Fatalf("4 accesses produced %d traps", d.Traps()-base)
	}
}
