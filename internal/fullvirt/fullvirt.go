// Package fullvirt models the full-virtualization baseline the paper's
// motivation dismisses (§2): trap-based interposition of every guest access
// to the device's MMIO registers and memory BARs. Each access costs a
// vm-exit (trap, decode, emulate, resume). The paper cites
// orders-of-magnitude slowdowns for this technique on GPUs; this model
// reproduces that comparison without a trap-and-emulate hypervisor by
// charging a configurable per-trap cost on a clock (virtual in tests,
// accounted in benchmarks) while performing the real data movement and
// compute so results stay verifiable.
package fullvirt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"ava/internal/clock"
	"ava/internal/devsim"
)

// Register offsets in the device's MMIO window.
const (
	RegControl  = 0x00 // doorbell: writing a command code starts it
	RegStatus   = 0x08 // 0 = idle, 1 = busy, 2 = error
	RegSrcAddr  = 0x10
	RegDstAddr  = 0x18
	RegSize     = 0x20
	RegKernelID = 0x28
	RegArg0     = 0x30
	RegArg1     = 0x38
)

// Commands written to RegControl.
const (
	CmdNop       = 0
	CmdVectorAdd = 1 // src=a addr, dst=out addr, arg0=b addr, arg1=n
)

// Errors.
var (
	ErrBadRegister = errors.New("fullvirt: access to unmapped register")
	ErrBadCommand  = errors.New("fullvirt: unknown command")
)

// Device is a GPU-like device exposed through MMIO only, as a guest would
// see it under full virtualization. All methods model a trapping access.
type Device struct {
	sim      *devsim.Device
	clk      clock.Clock
	trapCost time.Duration
	traps    uint64
	regs     map[uint64]uint64
	bar      devsim.Addr // the memory BAR: one big allocation
	barSize  uint64
}

// Config for the trap model.
type Config struct {
	// MemoryBytes sizes the device memory BAR (default 64 MiB).
	MemoryBytes uint64
	// TrapCost is the modeled vm-exit cost per MMIO/BAR access
	// (default 1.5µs, a typical hardware vm-exit round trip).
	TrapCost time.Duration
	// Clock to charge trap time against; nil = virtual (pure accounting).
	Clock clock.Clock
}

// New builds the trapping device.
func New(cfg Config) *Device {
	if cfg.MemoryBytes == 0 {
		cfg.MemoryBytes = 64 << 20
	}
	if cfg.TrapCost == 0 {
		cfg.TrapCost = 1500 * time.Nanosecond
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewVirtual()
	}
	sim := devsim.New(devsim.Config{Name: "fullvirt-gpu", MemoryBytes: cfg.MemoryBytes, ComputeUnits: 1})
	bar, err := sim.Alloc(cfg.MemoryBytes / 2)
	if err != nil {
		panic(err) // static sizing; cannot fail
	}
	return &Device{
		sim:      sim,
		clk:      cfg.Clock,
		trapCost: cfg.TrapCost,
		regs:     make(map[uint64]uint64),
		bar:      bar,
		barSize:  cfg.MemoryBytes / 2,
	}
}

// trap charges one vm-exit.
func (d *Device) trap() {
	d.traps++
	d.clk.Sleep(d.trapCost)
}

// Traps returns the number of vm-exits taken so far.
func (d *Device) Traps() uint64 { return d.traps }

// ModeledTrapTime returns the total modeled vm-exit cost.
func (d *Device) ModeledTrapTime() time.Duration {
	return time.Duration(d.traps) * d.trapCost
}

// WriteReg models a trapping 8-byte MMIO register write.
func (d *Device) WriteReg(off uint64, val uint64) error {
	d.trap()
	switch off {
	case RegControl:
		d.regs[off] = val
		return d.execute(val)
	case RegSrcAddr, RegDstAddr, RegSize, RegKernelID, RegArg0, RegArg1:
		d.regs[off] = val
		return nil
	default:
		return fmt.Errorf("%w: %#x", ErrBadRegister, off)
	}
}

// ReadReg models a trapping 8-byte MMIO register read.
func (d *Device) ReadReg(off uint64) (uint64, error) {
	d.trap()
	switch off {
	case RegControl, RegStatus, RegSrcAddr, RegDstAddr, RegSize, RegKernelID, RegArg0, RegArg1:
		return d.regs[off], nil
	default:
		return 0, fmt.Errorf("%w: %#x", ErrBadRegister, off)
	}
}

// WriteBar32 models a trapping 4-byte store into the memory BAR: how a
// guest uploads data when every BAR access is interposed.
func (d *Device) WriteBar32(off uint64, val uint32) error {
	d.trap()
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], val)
	return d.sim.CopyIn(d.bar, off, b[:])
}

// ReadBar32 models a trapping 4-byte load from the memory BAR.
func (d *Device) ReadBar32(off uint64) (uint32, error) {
	d.trap()
	var b [4]byte
	if err := d.sim.CopyOut(d.bar, off, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// execute runs the doorbelled command against device memory.
func (d *Device) execute(cmd uint64) error {
	switch cmd {
	case CmdNop:
		return nil
	case CmdVectorAdd:
		a := d.regs[RegSrcAddr]
		out := d.regs[RegDstAddr]
		b := d.regs[RegArg0]
		n := d.regs[RegArg1]
		d.regs[RegStatus] = 1
		err := d.sim.RunKernel("fullvirt", func() {
			mem, merr := d.sim.Mem(d.bar)
			if merr != nil {
				return
			}
			for i := uint64(0); i < n; i++ {
				av := binary.LittleEndian.Uint32(mem[a+4*i:])
				bv := binary.LittleEndian.Uint32(mem[b+4*i:])
				binary.LittleEndian.PutUint32(mem[out+4*i:], f32add(av, bv))
			}
		})
		d.regs[RegStatus] = 0
		return err
	default:
		d.regs[RegStatus] = 2
		return fmt.Errorf("%w: %d", ErrBadCommand, cmd)
	}
}

// GuestVectorAdd is the guest-driver code path: upload both vectors through
// the BAR word by word, ring the doorbell, poll status, read the result
// back word by word — every step trapping, as full virtualization of a
// silo'd device requires. It returns the result and the trap count the run
// added.
func (d *Device) GuestVectorAdd(a, b []float32) ([]float32, uint64, error) {
	start := d.traps
	n := uint64(len(a))
	offA := uint64(0)
	offB := 4 * n
	offOut := 8 * n
	for i := range a {
		if err := d.WriteBar32(offA+uint64(4*i), f32bits(a[i])); err != nil {
			return nil, 0, err
		}
	}
	for i := range b {
		if err := d.WriteBar32(offB+uint64(4*i), f32bits(b[i])); err != nil {
			return nil, 0, err
		}
	}
	if err := d.WriteReg(RegSrcAddr, offA); err != nil {
		return nil, 0, err
	}
	if err := d.WriteReg(RegArg0, offB); err != nil {
		return nil, 0, err
	}
	if err := d.WriteReg(RegDstAddr, offOut); err != nil {
		return nil, 0, err
	}
	if err := d.WriteReg(RegArg1, n); err != nil {
		return nil, 0, err
	}
	if err := d.WriteReg(RegControl, CmdVectorAdd); err != nil {
		return nil, 0, err
	}
	for {
		st, err := d.ReadReg(RegStatus)
		if err != nil {
			return nil, 0, err
		}
		if st == 0 {
			break
		}
		if st == 2 {
			return nil, 0, fmt.Errorf("fullvirt: device error")
		}
	}
	out := make([]float32, n)
	for i := range out {
		v, err := d.ReadBar32(offOut + uint64(4*i))
		if err != nil {
			return nil, 0, err
		}
		out[i] = f32from(v)
	}
	return out, d.traps - start, nil
}

func f32bits(v float32) uint32 { return math.Float32bits(v) }

func f32from(bits uint32) float32 { return math.Float32frombits(bits) }

// f32add adds two floats in bit representation (the device ALU).
func f32add(a, b uint32) uint32 {
	return math.Float32bits(math.Float32frombits(a) + math.Float32frombits(b))
}
