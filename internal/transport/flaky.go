package transport

import (
	"math/rand"
	"sync"
	"time"

	"ava/internal/clock"
)

// FlakyConfig tunes the Flaky fault-injection wrapper. All faults are drawn
// from a rand.Rand seeded with Seed, so a given config reproduces the same
// fault schedule run after run — the property `make chaos` relies on.
type FlakyConfig struct {
	// Seed seeds the fault schedule; the zero seed is used as-is.
	Seed int64
	// DropProb is the probability that a sent frame is silently discarded
	// (the peer never sees it and no error is reported — only liveness
	// probing can detect the loss).
	DropProb float64
	// DropAfterSends, when > 0, silently discards every frame after the
	// first N sends: a link that goes deaf without an error signal.
	DropAfterSends int
	// DelayProb is the probability that a send is delayed by Delay before
	// being forwarded.
	DelayProb float64
	// Delay is the injected latency for delayed sends.
	Delay time.Duration
	// SeverAfterSends, when > 0, severs the underlying link abruptly after
	// the first N sends — the scripted SIGKILL.
	SeverAfterSends int
	// Clock is the time source for injected delays; nil uses the wall
	// clock.
	Clock clock.Clock
}

// Flaky wraps an Endpoint with seeded fault injection: probabilistic frame
// drops, injected delays, and a scripted abrupt sever. It preserves the
// inner endpoint's frame-ownership semantics, so it can stand in for any
// transport in the stack.
type Flaky struct {
	inner Endpoint
	cfg   FlakyConfig
	clk   clock.Clock

	mu      sync.Mutex
	rng     *rand.Rand
	sends   int
	severed bool
}

// NewFlaky wraps inner with the configured fault schedule.
func NewFlaky(inner Endpoint, cfg FlakyConfig) *Flaky {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	return &Flaky{
		inner: inner,
		cfg:   cfg,
		clk:   clk,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

func (f *Flaky) Send(frame []byte) error {
	f.mu.Lock()
	if f.severed {
		f.mu.Unlock()
		return ErrSevered
	}
	f.sends++
	if f.cfg.SeverAfterSends > 0 && f.sends > f.cfg.SeverAfterSends {
		f.severed = true
		f.mu.Unlock()
		Sever(f.inner)
		return ErrSevered
	}
	drop := f.cfg.DropAfterSends > 0 && f.sends > f.cfg.DropAfterSends
	if !drop && f.cfg.DropProb > 0 {
		drop = f.rng.Float64() < f.cfg.DropProb
	}
	var delay time.Duration
	if f.cfg.DelayProb > 0 && f.rng.Float64() < f.cfg.DelayProb {
		delay = f.cfg.Delay
	}
	f.mu.Unlock()
	if delay > 0 {
		f.clk.Sleep(delay)
	}
	if drop {
		// The frame vanishes without an error: the failure mode only a
		// liveness probe can observe.
		return nil
	}
	return f.inner.Send(frame)
}

func (f *Flaky) Recv() ([]byte, error) {
	f.mu.Lock()
	severed := f.severed
	f.mu.Unlock()
	if severed {
		return nil, ErrSevered
	}
	return f.inner.Recv()
}

func (f *Flaky) Close() error { return f.inner.Close() }

// Sever implements Severer, cutting the wrapped link abruptly.
func (f *Flaky) Sever() error {
	f.mu.Lock()
	f.severed = true
	f.mu.Unlock()
	return Sever(f.inner)
}

// SendCopies implements FrameOwnership. A dropped frame is never retained,
// so the inner transport's answer stays accurate either way.
func (f *Flaky) SendCopies() bool { return SendCopies(f.inner) }

// RecvOwned implements FrameOwnership.
func (f *Flaky) RecvOwned() bool { return RecvOwned(f.inner) }
