// Package transport provides the pluggable frame transports AvA forwards
// API calls over.
//
// The paper's design requirement is that the remoting transport be
// hypervisor-interposable (unlike plain RPC in prior API-remoting systems)
// and pluggable, so VMs can use local or disaggregated accelerators. Three
// transports are provided:
//
//   - InProc: a pair of Go channels; the analogue of a hypercall path, used
//     when guest, router and server share a process (tests and benchmarks).
//   - Ring: a pair of fixed-size byte rings with doorbell semantics — the
//     analogue of the hypervisor-managed shared-memory FIFO queues that
//     VMware's SVGA device uses, which the paper cites as the model for
//     interposable transport.
//   - TCP: length-prefixed frames over a socket, supporting disaggregated
//     accelerators (the LegoOS-style configuration from §4.1).
//
// All transports carry opaque frames; marshal encodes/decodes them.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"

	"ava/internal/framebuf"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrSevered is returned when the link died abruptly — the peer vanished
// mid-stream (process death, connection reset, ring torn down under a
// parked frame) rather than shutting down at a frame boundary. The failover
// layer treats ErrSevered as an API-server failure signal, while ErrClosed
// stays an orderly teardown; conflating them would turn every crash into a
// silent end-of-stream.
var ErrSevered = errors.New("transport: peer severed mid-stream")

// Severer is implemented by endpoints that can cut the link abruptly,
// simulating peer death: in-flight and queued frames are lost and both
// sides observe ErrSevered instead of an orderly close. For TCP this is a
// hard reset (RST); for in-process transports it drops the queue on the
// floor.
type Severer interface {
	Sever() error
}

// Sever cuts ep abruptly if it supports severing, else falls back to an
// orderly Close. It is the SIGKILL of the transport layer.
func Sever(ep Endpoint) error {
	if s, ok := ep.(Severer); ok {
		return s.Sever()
	}
	return ep.Close()
}

// MaxFrame bounds a single frame (a call with its largest buffer argument).
const MaxFrame = 64 << 20

// Endpoint is one side of a bidirectional, ordered, reliable frame pipe.
// Send and Recv are each safe for one concurrent caller; different
// goroutines may send and receive simultaneously.
type Endpoint interface {
	// Send transmits one frame.
	Send(frame []byte) error
	// Recv blocks for the next frame.
	Recv() ([]byte, error)
	// Close releases the endpoint; blocked and future calls fail with
	// ErrClosed (or io.EOF mapped to ErrClosed for remote closure).
	Close() error
}

// VectoredSender is an optional Endpoint refinement for scatter-gather
// sends. SendVec transmits the concatenation of parts as one frame —
// byte-for-byte what Send(concat(parts)) would put on the wire — without
// the caller having to materialize the concatenation. total must equal the
// summed length of parts; it sizes the frame's length prefix. The borrowed
// part slices are released when SendVec returns (the write is synchronous),
// so a caller may reuse or recycle them immediately afterwards.
type VectoredSender interface {
	SendVec(parts [][]byte, total int) error
}

// FrameOwnership is an optional Endpoint refinement describing who owns a
// frame's backing buffer across Send and Recv. The frame-pooling layers
// (guest library, API server) consult it before recycling buffers through
// internal/framebuf. Endpoints that do not implement it get conservative
// defaults — sent frames are retained by the endpoint, received frames may
// be shared — under which no buffer is ever recycled.
type FrameOwnership interface {
	// SendCopies reports whether Send copies the frame out before
	// returning, leaving the buffer free for the caller to reuse.
	SendCopies() bool
	// RecvOwned reports whether frames returned by Recv are exclusively
	// owned by the caller, safe to recycle once fully consumed.
	RecvOwned() bool
}

// SendCopies reports whether ep's Send leaves the sent buffer reusable.
func SendCopies(ep Endpoint) bool {
	fo, ok := ep.(FrameOwnership)
	return ok && fo.SendCopies()
}

// RecvOwned reports whether frames from ep's Recv belong exclusively to
// the receiver.
func RecvOwned(ep Endpoint) bool {
	fo, ok := ep.(FrameOwnership)
	return ok && fo.RecvOwned()
}

// inprocEnd is a channel-backed endpoint half.
type inprocEnd struct {
	send chan<- []byte
	recv <-chan []byte

	mu      sync.Mutex
	closed  chan struct{}
	severed chan struct{} // shared with the peer: one cut kills both ends
	sevOnce *sync.Once    // shared with the peer
	peer    *inprocEnd
}

// NewInProc returns two connected in-process endpoints.
func NewInProc() (Endpoint, Endpoint) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	sev := make(chan struct{})
	once := &sync.Once{}
	a := &inprocEnd{send: ab, recv: ba, closed: make(chan struct{}), severed: sev, sevOnce: once}
	b := &inprocEnd{send: ba, recv: ab, closed: make(chan struct{}), severed: sev, sevOnce: once}
	a.peer, b.peer = b, a
	return a, b
}

func (e *inprocEnd) Send(frame []byte) error {
	// Zero-copy: ownership of frame transfers to the receiver (the
	// hypercall-page model). Senders must not modify a frame after Send;
	// every stack component already encodes into a fresh buffer per frame.
	select {
	case <-e.severed:
		return ErrSevered
	case <-e.closed:
		return ErrClosed
	case <-e.peer.closed:
		return ErrClosed
	default:
	}
	select {
	case e.send <- frame:
		return nil
	case <-e.severed:
		return ErrSevered
	case <-e.closed:
		return ErrClosed
	case <-e.peer.closed:
		return ErrClosed
	}
}

func (e *inprocEnd) Recv() ([]byte, error) {
	// A severed pipe reports immediately: queued frames are lost, exactly
	// as they would be in a dead peer's memory.
	select {
	case <-e.severed:
		return nil, ErrSevered
	default:
	}
	select {
	case f, ok := <-e.recv:
		if !ok {
			return nil, ErrClosed
		}
		return f, nil
	case <-e.severed:
		return nil, ErrSevered
	case <-e.closed:
		return nil, ErrClosed
	case <-e.peer.closed:
		// Drain anything already queued before reporting closure.
		select {
		case f, ok := <-e.recv:
			if ok {
				return f, nil
			}
		default:
		}
		return nil, ErrClosed
	}
}

// Sever implements Severer: both ends observe ErrSevered and queued frames
// are abandoned.
func (e *inprocEnd) Sever() error {
	e.sevOnce.Do(func() { close(e.severed) })
	return nil
}

// SendCopies implements FrameOwnership: Send transfers ownership of the
// frame to the receiver (the hypercall-page model), so the sender must
// not reuse it.
func (e *inprocEnd) SendCopies() bool { return false }

// RecvOwned implements FrameOwnership: a received frame was handed over
// whole by the peer and belongs to the receiver.
func (e *inprocEnd) RecvOwned() bool { return true }

func (e *inprocEnd) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case <-e.closed:
		return nil
	default:
		close(e.closed)
	}
	return nil
}

// ring is a fixed-capacity byte FIFO with blocking semantics, the shared
// memory region of a queue pair. Frames are stored as a 4-byte length
// followed by the payload, exactly as they would be in guest-visible
// shared memory.
type ring struct {
	mu      sync.Mutex
	notFull *sync.Cond // doorbell: consumer -> producer
	notEmpt *sync.Cond // doorbell: producer -> consumer
	buf     []byte
	head    int // read position
	tail    int // write position
	used    int
	closed  bool
	severed bool
}

func newRing(capacity int) *ring {
	r := &ring{buf: make([]byte, capacity)}
	r.notFull = sync.NewCond(&r.mu)
	r.notEmpt = sync.NewCond(&r.mu)
	return r
}

func (r *ring) put(frame []byte) error {
	need := 4 + len(frame)
	if need > len(r.buf) {
		return fmt.Errorf("transport: frame of %d bytes exceeds ring capacity %d", len(frame), len(r.buf))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.buf)-r.used < need && !r.closed {
		r.notFull.Wait()
	}
	if r.severed {
		return ErrSevered
	}
	if r.closed {
		return ErrClosed
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(frame)))
	r.write(hdr[:])
	r.write(frame)
	// Broadcast, not Signal: under pipelined use several waiters can be
	// parked here at once (a consumer racing close, or future multi-
	// consumer endpoints), and a Signal consumed by a waiter that then
	// observes `closed` would strand the rest.
	r.notEmpt.Broadcast()
	return nil
}

func (r *ring) write(b []byte) {
	n := copy(r.buf[r.tail:], b)
	if n < len(b) {
		copy(r.buf, b[n:])
	}
	r.tail = (r.tail + len(b)) % len(r.buf)
	r.used += len(b)
}

func (r *ring) get() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.used < 4 && !r.closed {
		r.notEmpt.Wait()
	}
	// A severed ring loses whatever sat in shared memory — even complete
	// queued frames are gone, the same way a dead peer's pages are.
	if r.severed {
		return nil, ErrSevered
	}
	if r.used < 4 && r.closed {
		return nil, ErrClosed
	}
	var hdr [4]byte
	r.read(hdr[:])
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	// Pooled scratch: the frame leaves the ring into a recycled buffer
	// instead of a fresh allocation per frame; the consumer owns it.
	frame := framebuf.GetLen(n)
	// The producer writes header+payload under one lock hold, so if the
	// header is here the payload is too.
	r.read(frame)
	r.notFull.Broadcast()
	return frame, nil
}

func (r *ring) read(b []byte) {
	n := copy(b, r.buf[r.head:min(r.head+len(b), len(r.buf))])
	if n < len(b) {
		copy(b[n:], r.buf)
	}
	r.head = (r.head + len(b)) % len(r.buf)
	r.used -= len(b)
}

func (r *ring) close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.notFull.Broadcast()
	r.notEmpt.Broadcast()
}

func (r *ring) sever() {
	r.mu.Lock()
	r.closed = true
	r.severed = true
	r.used = 0 // queued frames are lost with the peer
	r.mu.Unlock()
	r.notFull.Broadcast()
	r.notEmpt.Broadcast()
}

// ringEnd is one side of a ring queue pair.
type ringEnd struct {
	tx, rx *ring
}

// NewRing returns two endpoints connected by a pair of byte rings of the
// given capacity each (the simulated shared-memory FIFO queues).
func NewRing(capacity int) (Endpoint, Endpoint) {
	if capacity < 64 {
		capacity = 64
	}
	ab := newRing(capacity)
	ba := newRing(capacity)
	return &ringEnd{tx: ab, rx: ba}, &ringEnd{tx: ba, rx: ab}
}

func (e *ringEnd) Send(frame []byte) error { return e.tx.put(frame) }
func (e *ringEnd) Recv() ([]byte, error)   { return e.rx.get() }

// SendCopies implements FrameOwnership: put copies the frame into the
// shared ring, so the sender keeps its buffer.
func (e *ringEnd) SendCopies() bool { return true }

// RecvOwned implements FrameOwnership: get copies each frame out of the
// ring into a buffer owned by the caller.
func (e *ringEnd) RecvOwned() bool { return true }
func (e *ringEnd) Close() error {
	e.tx.close()
	e.rx.close()
	return nil
}

// Sever implements Severer: both rings of the pair are torn down abruptly
// and queued frames are lost, so the peer observes ErrSevered rather than
// an orderly close.
func (e *ringEnd) Sever() error {
	e.tx.sever()
	e.rx.sever()
	return nil
}

// connEnd adapts a net.Conn to Endpoint with 4-byte length prefixes.
type connEnd struct {
	conn    net.Conn
	severed atomic.Bool

	sendMu sync.Mutex
	recvMu sync.Mutex
}

// NewConn wraps an established connection as an Endpoint.
func NewConn(c net.Conn) Endpoint { return &connEnd{conn: c} }

func (e *connEnd) Send(frame []byte) error {
	if len(frame) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(frame))
	}
	e.sendMu.Lock()
	defer e.sendMu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(frame)))
	// One writev for header+payload: a single syscall per frame, and no
	// header-only segment for Nagle/delayed-ACK to trip over.
	bufs := net.Buffers{hdr[:], frame}
	if _, err := bufs.WriteTo(e.conn); err != nil {
		return e.mapErr(err)
	}
	return nil
}

// SendVec implements VectoredSender: one writev covers the length prefix,
// the frame pieces, and the borrowed payload segments, so large buffer
// arguments flow from the caller's memory straight into the socket without
// ever being copied into a frame. The receiver sees an ordinary
// length-prefixed frame, identical to a copying Send.
func (e *connEnd) SendVec(parts [][]byte, total int) error {
	if total > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", total)
	}
	e.sendMu.Lock()
	defer e.sendMu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(total))
	bufs := make(net.Buffers, 0, len(parts)+1)
	bufs = append(bufs, hdr[:])
	for _, p := range parts {
		if len(p) > 0 {
			bufs = append(bufs, p)
		}
	}
	if _, err := bufs.WriteTo(e.conn); err != nil {
		return e.mapErr(err)
	}
	return nil
}

func (e *connEnd) Recv() ([]byte, error) {
	e.recvMu.Lock()
	defer e.recvMu.Unlock()
	var hdr [4]byte
	if n, err := io.ReadFull(e.conn, hdr[:]); err != nil {
		// EOF cleanly between frames is an orderly close; EOF with a
		// partial header means the peer died mid-frame.
		if n > 0 && errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, e.mapErr(io.ErrUnexpectedEOF)
		}
		return nil, e.mapErr(err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: peer announced %d-byte frame", n)
	}
	frame := framebuf.GetLen(int(n))
	if _, err := io.ReadFull(e.conn, frame); err != nil {
		// The length prefix promised a payload: any EOF here — even a
		// "clean" one at a segment boundary — is a mid-frame death.
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, e.mapErr(err)
	}
	return frame, nil
}

// mapErr maps a net error, preferring ErrSevered when this end was
// explicitly severed (the raw error is then an uninformative
// "use of closed network connection").
func (e *connEnd) mapErr(err error) error {
	if e.severed.Load() {
		return ErrSevered
	}
	return mapNetErr(err)
}

// Sever implements Severer: the connection is reset (SO_LINGER 0 → RST on
// TCP) so the peer observes ECONNRESET, not an orderly FIN. This is the
// closest a live process gets to simulating a SIGKILL'd server.
func (e *connEnd) Sever() error {
	e.severed.Store(true)
	if tc, ok := e.conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	return e.conn.Close()
}

// SendCopies implements FrameOwnership: the kernel copies the frame into
// the socket buffer during Send.
func (e *connEnd) SendCopies() bool { return true }

// RecvOwned implements FrameOwnership: Recv reads each frame into a
// buffer owned by the caller.
func (e *connEnd) RecvOwned() bool { return true }

func (e *connEnd) Close() error { return e.conn.Close() }

func mapNetErr(err error) error {
	if err == nil {
		return nil
	}
	// Abrupt peer death: a reset connection or a stream cut mid-frame.
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return ErrSevered
	}
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
		return ErrClosed
	}
	return err
}

// Listener accepts TCP endpoint connections.
type Listener struct {
	l net.Listener
}

// Listen starts a TCP listener on addr (e.g. "127.0.0.1:0").
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept blocks for the next incoming endpoint.
func (l *Listener) Accept() (Endpoint, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, mapNetErr(err)
	}
	return NewConn(c), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }

// Dial connects to a Listener.
func Dial(addr string) (Endpoint, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}
