package transport

import (
	"encoding/binary"
	"fmt"
)

// Hello is the connection preamble a dialer sends as the first frame to a
// remote API server (avad): which VM the connection serves, the endpoint
// epoch it is dialing under (so a reconnect after failover is observable
// host-side), and a display name.
//
// The legacy preamble was just [vm u32 LE][name bytes]; the extended form
// inserts a magic tag so the two stay distinguishable on the wire:
//
//	[vm u32 LE] 'A' 'V' 'A' '1' [epoch u32 LE] [name bytes]
//
// A dialer that needs the server's verdict before treating the link as up
// (a fleet dialer, which must distinguish "connected" from "admitted" —
// an evicted VM's reconnect is refused host-side) sends the same layout
// under the 'AVA2' magic, which obliges the server to answer with exactly
// one HelloAck frame (accept or reject) before any data-plane traffic.
// Servers never ack 'AVA1' or legacy preambles, so old dialers see no
// protocol change; an 'AVA2' dialer must only target ack-aware servers
// (every server in this tree is).
//
// DecodeHello accepts all three forms, reporting epoch 0 for legacy
// frames and WantAck only for 'AVA2'.
type Hello struct {
	VM    uint32
	Epoch uint32
	Name  string
	// WantAck asks the server to confirm or refuse this VM with a
	// HelloAck frame before serving; the dialer blocks on that verdict,
	// so a host-side rejection is a dial failure, not a silent sever.
	WantAck bool
}

var (
	helloMagic    = [4]byte{'A', 'V', 'A', '1'}
	helloAckMagic = [4]byte{'A', 'V', 'A', '2'}
	ackMagic      = [4]byte{'A', 'V', 'A', 'K'}
)

// EncodeHello serializes the extended preamble.
func EncodeHello(h Hello) []byte {
	b := make([]byte, 12, 12+len(h.Name))
	binary.LittleEndian.PutUint32(b, h.VM)
	if h.WantAck {
		copy(b[4:], helloAckMagic[:])
	} else {
		copy(b[4:], helloMagic[:])
	}
	binary.LittleEndian.PutUint32(b[8:], h.Epoch)
	return append(b, h.Name...)
}

// DecodeHello parses a preamble frame, legacy or extended.
func DecodeHello(frame []byte) (Hello, error) {
	if len(frame) < 4 {
		return Hello{}, fmt.Errorf("transport: hello frame of %d bytes", len(frame))
	}
	h := Hello{VM: binary.LittleEndian.Uint32(frame)}
	rest := frame[4:]
	if len(rest) >= 8 {
		switch [4]byte(rest[:4]) {
		case helloMagic:
			h.Epoch = binary.LittleEndian.Uint32(rest[4:])
			rest = rest[8:]
		case helloAckMagic:
			h.Epoch = binary.LittleEndian.Uint32(rest[4:])
			h.WantAck = true
			rest = rest[8:]
		}
	}
	h.Name = string(rest)
	return h, nil
}

// HelloAck is the server's verdict on a WantAck hello: admitted (OK) or
// refused, with a human-readable reason on refusal. It travels as the
// first server-to-guest frame, before any reply:
//
//	'A' 'V' 'A' 'K' [ok u8] [reason bytes]
type HelloAck struct {
	OK     bool
	Reason string
}

// EncodeHelloAck serializes the verdict frame.
func EncodeHelloAck(a HelloAck) []byte {
	b := make([]byte, 5, 5+len(a.Reason))
	copy(b, ackMagic[:])
	if a.OK {
		b[4] = 1
	}
	return append(b, a.Reason...)
}

// DecodeHelloAck parses a verdict frame.
func DecodeHelloAck(frame []byte) (HelloAck, error) {
	if len(frame) < 5 || [4]byte(frame[:4]) != ackMagic {
		return HelloAck{}, fmt.Errorf("transport: not a hello ack frame (%d bytes)", len(frame))
	}
	return HelloAck{OK: frame[4] == 1, Reason: string(frame[5:])}, nil
}

// AckHello answers a decoded hello on ep: if the dialer asked for an ack,
// the verdict frame is sent (ok with an empty reason, or a refusal
// carrying reason); hellos that did not ask are left unanswered so legacy
// dialers see no unexpected frame. It returns any send error.
func AckHello(ep Endpoint, h Hello, ok bool, reason string) error {
	if !h.WantAck {
		return nil
	}
	if ok {
		reason = ""
	}
	return ep.Send(EncodeHelloAck(HelloAck{OK: ok, Reason: reason}))
}
