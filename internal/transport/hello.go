package transport

import (
	"encoding/binary"
	"fmt"
)

// Hello is the connection preamble a dialer sends as the first frame to a
// remote API server (avad): which VM the connection serves, the endpoint
// epoch it is dialing under (so a reconnect after failover is observable
// host-side), and a display name.
//
// The legacy preamble was just [vm u32 LE][name bytes]; the extended form
// inserts a magic tag so the two stay distinguishable on the wire:
//
//	[vm u32 LE] 'A' 'V' 'A' '1' [epoch u32 LE] [name bytes]
//
// DecodeHello accepts both, reporting epoch 0 for legacy frames.
type Hello struct {
	VM    uint32
	Epoch uint32
	Name  string
}

var helloMagic = [4]byte{'A', 'V', 'A', '1'}

// EncodeHello serializes the extended preamble.
func EncodeHello(h Hello) []byte {
	b := make([]byte, 12, 12+len(h.Name))
	binary.LittleEndian.PutUint32(b, h.VM)
	copy(b[4:], helloMagic[:])
	binary.LittleEndian.PutUint32(b[8:], h.Epoch)
	return append(b, h.Name...)
}

// DecodeHello parses a preamble frame, legacy or extended.
func DecodeHello(frame []byte) (Hello, error) {
	if len(frame) < 4 {
		return Hello{}, fmt.Errorf("transport: hello frame of %d bytes", len(frame))
	}
	h := Hello{VM: binary.LittleEndian.Uint32(frame)}
	rest := frame[4:]
	if len(rest) >= 8 && [4]byte(rest[:4]) == helloMagic {
		h.Epoch = binary.LittleEndian.Uint32(rest[4:])
		rest = rest[8:]
	}
	h.Name = string(rest)
	return h, nil
}
