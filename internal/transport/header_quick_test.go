package transport

import (
	"bytes"
	"testing"
	"testing/quick"

	"ava/internal/marshal"
)

// TestQuickHeaderOverTransports round-trips randomized extended Call and
// Reply headers — including unknown future flag bits and status codes —
// over every transport. The wire format and the framing layer must both
// preserve the header verbatim (the forward-compatibility contract behind
// marshal.FlagsKnown: bits this version does not assign still survive the
// trip through an intermediary).
func TestQuickHeaderOverTransports(t *testing.T) {
	for _, pm := range allPairs() {
		pm := pm
		t.Run(pm.name, func(t *testing.T) {
			a, b, done := pm.make(t)
			defer done()
			f := func(seq uint64, vm, fn uint32, flags uint16, pri uint8,
				deadline int64, stamps [4]int64, status uint8, payload []byte) bool {
				if len(payload) > 4096 {
					payload = payload[:4096] // stay well under the ring capacity
				}
				call := &marshal.Call{
					Seq: seq, VM: vm, Func: fn, Flags: flags,
					Priority: pri, Deadline: deadline,
					Stamps: marshal.Stamps{
						Encode: stamps[0], Admit: stamps[1],
						Dispatch: stamps[2], Done: stamps[3],
					},
					Args: []marshal.Value{marshal.BytesVal(payload)},
				}
				if err := a.Send(marshal.EncodeCall(call)); err != nil {
					return false
				}
				frame, err := b.Recv()
				if err != nil {
					return false
				}
				got, err := marshal.DecodeCall(frame)
				if err != nil {
					return false
				}
				if got.Seq != call.Seq || got.VM != call.VM || got.Func != call.Func ||
					got.Flags != call.Flags || got.Priority != call.Priority ||
					got.Deadline != call.Deadline || got.Stamps != call.Stamps {
					return false
				}
				if len(got.Args) != 1 || !bytes.Equal(got.Args[0].Bytes, payload) {
					return false
				}

				// Reply path: arbitrary status bytes (unknown future codes
				// included) and the stamp block must survive too.
				rep := &marshal.Reply{
					Seq: seq, Status: marshal.Status(status), Ret: marshal.Uint(uint64(fn)),
					Stamps: marshal.Stamps{
						Encode: stamps[3], Admit: stamps[2],
						Dispatch: stamps[1], Done: stamps[0],
					},
				}
				if err := b.Send(marshal.EncodeReply(rep)); err != nil {
					return false
				}
				rframe, err := a.Recv()
				if err != nil {
					return false
				}
				rgot, err := marshal.DecodeReply(rframe)
				if err != nil {
					return false
				}
				return rgot.Seq == rep.Seq && rgot.Status == rep.Status &&
					rgot.Stamps == rep.Stamps && rgot.Ret.Equal(rep.Ret)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
