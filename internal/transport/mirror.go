package transport

import (
	"encoding/binary"
	"fmt"
)

// Mirror frames carry a guardian's shadow-log replication stream to a
// mirror host — the control-plane analogue of the call/reply data plane.
// Like the hello preamble, the framing lives in the transport layer so
// both ends agree on the envelope without importing the failover package;
// the payload semantics (which op means what) belong to the sender.
//
// Layout: [magic "AVAM"][op u8][vm u32][opseq u64][payload...]. opseq is a
// per-connection sequence number the receiver echoes in acks, giving the
// sender a replication watermark: every op at or below the highest acked
// opseq is durable on the mirror host.

const mirrorMagic = "AVAM"

// MirrorHeaderLen is the fixed size of a mirror frame header.
const MirrorHeaderLen = 4 + 1 + 4 + 8

// EncodeMirrorFrame builds a mirror frame.
func EncodeMirrorFrame(op byte, vm uint32, opseq uint64, payload []byte) []byte {
	b := make([]byte, MirrorHeaderLen, MirrorHeaderLen+len(payload))
	copy(b, mirrorMagic)
	b[4] = op
	binary.LittleEndian.PutUint32(b[5:], vm)
	binary.LittleEndian.PutUint64(b[9:], opseq)
	return append(b, payload...)
}

// IsMirrorFrame reports whether frame starts with the mirror magic.
func IsMirrorFrame(frame []byte) bool {
	return len(frame) >= 4 && string(frame[:4]) == mirrorMagic
}

// DecodeMirrorFrame unpacks a mirror frame. The returned payload aliases
// frame.
func DecodeMirrorFrame(frame []byte) (op byte, vm uint32, opseq uint64, payload []byte, err error) {
	if !IsMirrorFrame(frame) {
		return 0, 0, 0, nil, fmt.Errorf("transport: not a mirror frame")
	}
	if len(frame) < MirrorHeaderLen {
		return 0, 0, 0, nil, fmt.Errorf("transport: mirror frame truncated: %d bytes", len(frame))
	}
	op = frame[4]
	vm = binary.LittleEndian.Uint32(frame[5:])
	opseq = binary.LittleEndian.Uint64(frame[9:])
	return op, vm, opseq, frame[MirrorHeaderLen:], nil
}
