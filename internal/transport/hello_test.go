package transport

import (
	"encoding/binary"
	"testing"
)

func TestHelloRoundTrip(t *testing.T) {
	in := Hello{VM: 7, Epoch: 3, Name: "vm-7"}
	out, err := DecodeHello(EncodeHello(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
}

func TestHelloLegacyFallback(t *testing.T) {
	legacy := make([]byte, 4)
	binary.LittleEndian.PutUint32(legacy, 9)
	legacy = append(legacy, "old-vm"...)
	h, err := DecodeHello(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if h.VM != 9 || h.Epoch != 0 || h.Name != "old-vm" {
		t.Fatalf("legacy decode: %+v", h)
	}
}

func TestHelloEmptyNameAndShortFrame(t *testing.T) {
	h, err := DecodeHello(EncodeHello(Hello{VM: 1, Epoch: 2}))
	if err != nil || h.Name != "" || h.Epoch != 2 {
		t.Fatalf("empty name: %+v, %v", h, err)
	}
	if _, err := DecodeHello([]byte{1, 2}); err == nil {
		t.Fatal("short frame accepted")
	}
}
