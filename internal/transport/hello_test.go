package transport

import (
	"encoding/binary"
	"testing"
)

func TestHelloRoundTrip(t *testing.T) {
	in := Hello{VM: 7, Epoch: 3, Name: "vm-7"}
	out, err := DecodeHello(EncodeHello(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
}

func TestHelloLegacyFallback(t *testing.T) {
	legacy := make([]byte, 4)
	binary.LittleEndian.PutUint32(legacy, 9)
	legacy = append(legacy, "old-vm"...)
	h, err := DecodeHello(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if h.VM != 9 || h.Epoch != 0 || h.Name != "old-vm" {
		t.Fatalf("legacy decode: %+v", h)
	}
}

func TestHelloEmptyNameAndShortFrame(t *testing.T) {
	h, err := DecodeHello(EncodeHello(Hello{VM: 1, Epoch: 2}))
	if err != nil || h.Name != "" || h.Epoch != 2 {
		t.Fatalf("empty name: %+v, %v", h, err)
	}
	if _, err := DecodeHello([]byte{1, 2}); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestHelloWantAckRoundTrip(t *testing.T) {
	in := Hello{VM: 11, Epoch: 4, Name: "vm-11", WantAck: true}
	out, err := DecodeHello(EncodeHello(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
	// The plain extended form must not report an ack request.
	out, err = DecodeHello(EncodeHello(Hello{VM: 11, Epoch: 4, Name: "vm-11"}))
	if err != nil || out.WantAck {
		t.Fatalf("AVA1 hello decoded WantAck=%v, err %v", out.WantAck, err)
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	for _, in := range []HelloAck{
		{OK: true},
		{OK: false, Reason: "vm 7 evicted 12ms ago, rebalancing"},
	} {
		out, err := DecodeHelloAck(EncodeHelloAck(in))
		if err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Fatalf("round trip: got %+v want %+v", out, in)
		}
	}
	if _, err := DecodeHelloAck([]byte("AVA")); err == nil {
		t.Fatal("short ack frame accepted")
	}
	if _, err := DecodeHelloAck(EncodeHello(Hello{VM: 1})); err == nil {
		t.Fatal("hello frame accepted as an ack")
	}
}

// AckHello must answer only dialers that asked: a legacy or AVA1 hello
// gets no unexpected frame ahead of its first reply.
func TestAckHelloOnlyWhenAsked(t *testing.T) {
	client, sv := NewInProc()
	defer client.Close()
	if err := AckHello(sv, Hello{VM: 1}, true, ""); err != nil {
		t.Fatal(err)
	}
	// Nothing was sent: the next frame the client sees is the sentinel.
	if err := sv.Send([]byte("sentinel")); err != nil {
		t.Fatal(err)
	}
	frame, err := client.Recv()
	if err != nil || string(frame) != "sentinel" {
		t.Fatalf("unasked ack produced a frame: %q, %v", frame, err)
	}

	if err := AckHello(sv, Hello{VM: 1, WantAck: true}, false, "full"); err != nil {
		t.Fatal(err)
	}
	frame, err = client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ack, err := DecodeHelloAck(frame)
	if err != nil || ack.OK || ack.Reason != "full" {
		t.Fatalf("reject ack = %+v, %v", ack, err)
	}
}
