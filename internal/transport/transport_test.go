package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// pairMaker builds a connected endpoint pair for table-driven tests.
type pairMaker struct {
	name string
	make func(t *testing.T) (Endpoint, Endpoint, func())
}

func allPairs() []pairMaker {
	return []pairMaker{
		{"inproc", func(t *testing.T) (Endpoint, Endpoint, func()) {
			a, b := NewInProc()
			return a, b, func() { a.Close(); b.Close() }
		}},
		{"ring", func(t *testing.T) (Endpoint, Endpoint, func()) {
			a, b := NewRing(1 << 16)
			return a, b, func() { a.Close(); b.Close() }
		}},
		{"tcp", func(t *testing.T) (Endpoint, Endpoint, func()) {
			l, err := Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			var (
				srv Endpoint
				wg  sync.WaitGroup
			)
			wg.Add(1)
			go func() {
				defer wg.Done()
				srv, err = l.Accept()
			}()
			cli, derr := Dial(l.Addr())
			if derr != nil {
				t.Fatal(derr)
			}
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			return cli, srv, func() { cli.Close(); srv.Close(); l.Close() }
		}},
	}
}

func TestSendRecvSingleFrame(t *testing.T) {
	for _, pm := range allPairs() {
		t.Run(pm.name, func(t *testing.T) {
			a, b, done := pm.make(t)
			defer done()
			want := []byte("hello accelerator")
			if err := a.Send(want); err != nil {
				t.Fatal(err)
			}
			got, err := b.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestBidirectional(t *testing.T) {
	for _, pm := range allPairs() {
		t.Run(pm.name, func(t *testing.T) {
			a, b, done := pm.make(t)
			defer done()
			if err := a.Send([]byte("ping")); err != nil {
				t.Fatal(err)
			}
			if f, err := b.Recv(); err != nil || string(f) != "ping" {
				t.Fatalf("recv %q %v", f, err)
			}
			if err := b.Send([]byte("pong")); err != nil {
				t.Fatal(err)
			}
			if f, err := a.Recv(); err != nil || string(f) != "pong" {
				t.Fatalf("recv %q %v", f, err)
			}
		})
	}
}

func TestOrderingPreserved(t *testing.T) {
	for _, pm := range allPairs() {
		t.Run(pm.name, func(t *testing.T) {
			a, b, done := pm.make(t)
			defer done()
			const n = 500
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					if err := a.Send([]byte(fmt.Sprintf("frame-%04d", i))); err != nil {
						t.Errorf("send %d: %v", i, err)
						return
					}
				}
			}()
			for i := 0; i < n; i++ {
				f, err := b.Recv()
				if err != nil {
					t.Fatalf("recv %d: %v", i, err)
				}
				if want := fmt.Sprintf("frame-%04d", i); string(f) != want {
					t.Fatalf("frame %d = %q, want %q", i, f, want)
				}
			}
			wg.Wait()
		})
	}
}

func TestEmptyFrame(t *testing.T) {
	for _, pm := range allPairs() {
		t.Run(pm.name, func(t *testing.T) {
			a, b, done := pm.make(t)
			defer done()
			if err := a.Send(nil); err != nil {
				t.Fatal(err)
			}
			f, err := b.Recv()
			if err != nil || len(f) != 0 {
				t.Fatalf("empty frame: %v %v", f, err)
			}
		})
	}
}

func TestLargeFrame(t *testing.T) {
	for _, pm := range allPairs() {
		t.Run(pm.name, func(t *testing.T) {
			a, b, done := pm.make(t)
			defer done()
			want := make([]byte, 48000) // near but under the ring capacity
			for i := range want {
				want[i] = byte(i * 31)
			}
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := a.Send(want); err != nil {
					t.Errorf("send: %v", err)
				}
			}()
			got, err := b.Recv()
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("large frame corrupted")
			}
		})
	}
}

func TestSenderBufferReusableAfterSend(t *testing.T) {
	// Ring and TCP endpoints copy at Send, so the sender may reuse its
	// buffer. InProc transfers ownership (zero-copy hypercall page) and is
	// excluded: its senders must encode into a fresh buffer per frame, as
	// every AvA component does.
	for _, pm := range allPairs() {
		if pm.name == "inproc" {
			continue
		}
		t.Run(pm.name, func(t *testing.T) {
			a, b, done := pm.make(t)
			defer done()
			buf := []byte("original")
			if err := a.Send(buf); err != nil {
				t.Fatal(err)
			}
			copy(buf, "CLOBBER!")
			got, err := b.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "original" {
				t.Fatalf("frame aliased sender buffer: %q", got)
			}
		})
	}
}

func TestRecvAfterCloseFails(t *testing.T) {
	for _, pm := range allPairs() {
		t.Run(pm.name, func(t *testing.T) {
			a, b, done := pm.make(t)
			defer done()
			errc := make(chan error, 1)
			go func() {
				_, err := b.Recv()
				errc <- err
			}()
			time.Sleep(10 * time.Millisecond)
			a.Close()
			b.Close()
			select {
			case err := <-errc:
				if err == nil {
					t.Fatal("Recv returned nil after close")
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Recv did not unblock on close")
			}
		})
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	for _, pm := range allPairs() {
		t.Run(pm.name, func(t *testing.T) {
			a, b, done := pm.make(t)
			defer done()
			a.Close()
			b.Close()
			// TCP may need a moment for the close to be observable.
			deadline := time.Now().Add(2 * time.Second)
			for {
				if err := a.Send([]byte("x")); err != nil {
					return
				}
				if time.Now().After(deadline) {
					t.Fatal("Send kept succeeding after close")
				}
				time.Sleep(5 * time.Millisecond)
			}
		})
	}
}

func TestRingBackpressure(t *testing.T) {
	a, b := NewRing(256)
	// Fill beyond capacity; sender must block, then drain.
	sent := make(chan int, 1)
	go func() {
		n := 0
		for i := 0; i < 64; i++ {
			if err := a.Send(make([]byte, 32)); err != nil {
				break
			}
			n++
		}
		sent <- n
	}()
	select {
	case <-sent:
		t.Fatal("sender never blocked on a full ring")
	case <-time.After(50 * time.Millisecond):
	}
	for i := 0; i < 64; i++ {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if n := <-sent; n != 64 {
		t.Fatalf("sent %d frames", n)
	}
}

func TestRingFrameTooLarge(t *testing.T) {
	a, _ := NewRing(128)
	if err := a.Send(make([]byte, 1024)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestRingWrapAround(t *testing.T) {
	a, b := NewRing(100)
	// Frames sized to force the ring to wrap repeatedly.
	for i := 0; i < 200; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 30)
		if err := a.Send(payload); err != nil {
			t.Fatal(err)
		}
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("iteration %d corrupted: %v", i, got)
		}
	}
}

func TestTCPPeerCloseUnblocksRecv(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		srv, err := l.Accept()
		if err != nil {
			return
		}
		srv.Close()
	}()
	cli, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

// Property: any sequence of frames survives a ring transit byte-for-byte in
// order.
func TestQuickRingRoundTrip(t *testing.T) {
	f := func(frames [][]byte) bool {
		a, b := NewRing(1 << 15)
		defer a.Close()
		defer b.Close()
		ok := true
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, fr := range frames {
				if len(fr) > 1<<12 {
					fr = fr[:1<<12]
				}
				if err := a.Send(fr); err != nil {
					ok = false
					return
				}
			}
		}()
		for _, fr := range frames {
			want := fr
			if len(want) > 1<<12 {
				want = want[:1<<12]
			}
			got, err := b.Recv()
			if err != nil || !bytes.Equal(got, want) {
				ok = false
				break
			}
		}
		wg.Wait()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func benchPair(b *testing.B, make func() (Endpoint, Endpoint, func()), size int) {
	b.Helper()
	a, bb, done := make()
	defer done()
	payload := bytes.Repeat([]byte{0xA5}, size)
	go func() {
		for {
			f, err := bb.Recv()
			if err != nil {
				return
			}
			if err := bb.Send(f); err != nil {
				return
			}
		}
	}()
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(payload); err != nil {
			b.Fatal(err)
		}
		if _, err := a.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInProcEcho64(b *testing.B) {
	benchPair(b, func() (Endpoint, Endpoint, func()) {
		x, y := NewInProc()
		return x, y, func() { x.Close(); y.Close() }
	}, 64)
}

func BenchmarkRingEcho64(b *testing.B) {
	benchPair(b, func() (Endpoint, Endpoint, func()) {
		x, y := NewRing(1 << 16)
		return x, y, func() { x.Close(); y.Close() }
	}, 64)
}

func BenchmarkRingEcho4K(b *testing.B) {
	benchPair(b, func() (Endpoint, Endpoint, func()) {
		x, y := NewRing(1 << 16)
		return x, y, func() { x.Close(); y.Close() }
	}, 4096)
}

func BenchmarkTCPEcho4K(b *testing.B) {
	benchPair(b, func() (Endpoint, Endpoint, func()) {
		l, err := Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		var srv Endpoint
		accepted := make(chan struct{})
		go func() {
			srv, _ = l.Accept()
			close(accepted)
		}()
		cli, err := Dial(l.Addr())
		if err != nil {
			b.Fatal(err)
		}
		<-accepted
		return cli, srv, func() { cli.Close(); srv.Close(); l.Close() }
	}, 4096)
}
