package transport

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

// Severed links must be distinguishable from orderly closes on every
// transport: failover detection keys on ErrSevered.

func TestInProcSever(t *testing.T) {
	a, b := NewInProc()
	if err := a.Send([]byte("queued")); err != nil {
		t.Fatal(err)
	}
	if err := Sever(a); err != nil {
		t.Fatal(err)
	}
	// Queued frames are lost with the "dead" peer; both ends sever.
	if _, err := b.Recv(); !errors.Is(err, ErrSevered) {
		t.Fatalf("peer Recv after sever: err=%v, want ErrSevered", err)
	}
	if err := a.Send([]byte("x")); !errors.Is(err, ErrSevered) {
		t.Fatalf("Send after sever: err=%v, want ErrSevered", err)
	}
	if _, err := a.Recv(); !errors.Is(err, ErrSevered) {
		t.Fatalf("own Recv after sever: err=%v, want ErrSevered", err)
	}
}

func TestInProcCloseStaysOrderly(t *testing.T) {
	a, b := NewInProc()
	if err := a.Send([]byte("last")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	// Orderly close still drains queued frames, then reports ErrClosed.
	if f, err := b.Recv(); err != nil || string(f) != "last" {
		t.Fatalf("Recv after close: %q, %v", f, err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv at end: err=%v, want ErrClosed", err)
	}
}

func TestRingSever(t *testing.T) {
	a, b := NewRing(1 << 12)
	if err := a.Send([]byte("queued")); err != nil {
		t.Fatal(err)
	}
	if err := Sever(b); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrSevered) {
		t.Fatalf("Recv after sever: err=%v, want ErrSevered", err)
	}
	if err := a.Send([]byte("x")); !errors.Is(err, ErrSevered) {
		t.Fatalf("Send after sever: err=%v, want ErrSevered", err)
	}
}

func TestRingSeverWakesBlockedReceiver(t *testing.T) {
	a, b := NewRing(1 << 12)
	errCh := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the receiver park
	Sever(a)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrSevered) {
			t.Fatalf("blocked Recv woke with %v, want ErrSevered", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Recv not woken by sever")
	}
}

func tcpPair(t *testing.T) (Endpoint, Endpoint) {
	t.Helper()
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	dialed := make(chan Endpoint, 1)
	go func() {
		ep, err := Dial(l.Addr())
		if err != nil {
			panic(err)
		}
		dialed <- ep
	}()
	accepted, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return <-dialed, accepted
}

func TestTCPSeverYieldsErrSevered(t *testing.T) {
	a, b := tcpPair(t)
	defer b.Close()
	if err := Sever(a); err != nil {
		t.Fatal(err)
	}
	// The RST may need a beat to arrive; the resulting error must be
	// ErrSevered (ECONNRESET), never a clean ErrClosed.
	if _, err := b.Recv(); !errors.Is(err, ErrSevered) {
		t.Fatalf("Recv after peer sever: err=%v, want ErrSevered", err)
	}
	if _, err := a.Recv(); !errors.Is(err, ErrSevered) {
		t.Fatalf("own Recv after sever: err=%v, want ErrSevered", err)
	}
}

func TestTCPMidFrameDeathYieldsErrSevered(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		// Announce an 8-byte frame but die after 3 payload bytes: a
		// mid-frame death even though the FIN itself is "clean".
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], 8)
		c.Write(hdr[:])
		c.Write([]byte{1, 2, 3})
		c.Close()
	}()
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ep := NewConn(c)
	defer ep.Close()
	if _, err := ep.Recv(); !errors.Is(err, ErrSevered) {
		t.Fatalf("mid-frame death: err=%v, want ErrSevered", err)
	}
}

func TestTCPCleanCloseYieldsErrClosed(t *testing.T) {
	a, b := tcpPair(t)
	if err := a.Send([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	if f, err := b.Recv(); err != nil || string(f) != "bye" {
		t.Fatalf("Recv before close: %q, %v", f, err)
	}
	// EOF exactly at a frame boundary is an orderly shutdown.
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv at clean EOF: err=%v, want ErrClosed", err)
	}
}

func TestFlakySeverAfterSends(t *testing.T) {
	a, b := NewInProc()
	f := NewFlaky(a, FlakyConfig{SeverAfterSends: 2})
	for i := 0; i < 2; i++ {
		if err := f.Send([]byte("ok")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Send([]byte("boom")); !errors.Is(err, ErrSevered) {
		t.Fatalf("send past sever budget: err=%v, want ErrSevered", err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrSevered) {
		t.Fatalf("peer after scripted sever: err=%v, want ErrSevered", err)
	}
}

func TestFlakyDropAfterSendsGoesSilent(t *testing.T) {
	a, b := NewInProc()
	f := NewFlaky(a, FlakyConfig{DropAfterSends: 1})
	if err := f.Send([]byte("heard")); err != nil {
		t.Fatal(err)
	}
	if err := f.Send([]byte("lost")); err != nil {
		t.Fatalf("silent drop must not error: %v", err)
	}
	if fr, err := b.Recv(); err != nil || string(fr) != "heard" {
		t.Fatalf("first frame: %q, %v", fr, err)
	}
	select {
	case fr := <-func() chan []byte {
		ch := make(chan []byte, 1)
		go func() {
			if fr, err := b.Recv(); err == nil {
				ch <- fr
			}
		}()
		return ch
	}():
		t.Fatalf("dropped frame delivered: %q", fr)
	case <-time.After(30 * time.Millisecond):
	}
}

func TestFlakyDropScheduleIsSeeded(t *testing.T) {
	schedule := func() []bool {
		a, _ := NewInProc()
		f := NewFlaky(a, FlakyConfig{Seed: 42, DropProb: 0.5})
		var drops []bool
		for i := 0; i < 64; i++ {
			f.mu.Lock()
			drops = append(drops, f.rng.Float64() < 0.5)
			f.mu.Unlock()
		}
		return drops
	}
	s1, s2 := schedule(), schedule()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("fault schedule diverged at %d with identical seeds", i)
		}
	}
}
