package transport

import (
	"fmt"
	"sync"
	"unsafe"
)

// BufRegistry is the registered-buffer fast path for transports whose two
// ends share an address space (InProc and the simulated shared-memory
// ring). A guest registers a buffer region once; subsequent large H2D/D2H
// transfers carry a marshal.KindRegRef — {region id, offset, length} —
// instead of the bytes, and the server resolves the reference against the
// same registry to read or write the region in place. This is the
// RDMA-style "register once, reference thereafter" protocol: the setup
// cost (registration) is paid once, the per-transfer cost drops to a
// 21-byte wire record.
//
// The registry deliberately is not an Endpoint method: whether two ends
// share memory is a property of the deployment, not of the pipe, so the
// stack assembler wires one registry to both sides only when the whole
// guest→server path stays in one address space. A TCP hop never gets one.
//
// Holding a region in the registry keeps its backing array reachable, so
// resolved slices never dangle. Go's GC does not move heap objects, which
// makes the pointer-identity containment test in Locate sound.
type BufRegistry struct {
	mu      sync.RWMutex
	regions map[uint32][]byte
	next    uint32
}

// NewBufRegistry returns an empty registry.
func NewBufRegistry() *BufRegistry {
	return &BufRegistry{regions: make(map[uint32][]byte)}
}

// Register adds a buffer region and returns its id. The caller must keep
// the region's contents stable for the duration of any call referencing
// it (the usual zero-copy contract: don't scribble on a buffer you handed
// to an in-flight transfer).
func (r *BufRegistry) Register(region []byte) uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	id := r.next
	r.regions[id] = region
	return id
}

// Unregister removes a region; outstanding references to it fail to
// resolve afterwards.
func (r *BufRegistry) Unregister(id uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.regions, id)
}

// Resolve returns the n-byte range at off within region id, aliasing the
// registered memory. The capacity is clipped so a resolver cannot grow the
// slice beyond its range.
func (r *BufRegistry) Resolve(id uint32, off, n uint64) ([]byte, error) {
	r.mu.RLock()
	region, ok := r.regions[id]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: unregistered buffer region %d", id)
	}
	if off > uint64(len(region)) || n > uint64(len(region))-off {
		return nil, fmt.Errorf("transport: regref [%d,+%d) exceeds %d-byte region %d", off, n, len(region), id)
	}
	return region[off : off+n : off+n], nil
}

// Locate reports whether b lies entirely inside a registered region,
// returning the region id and b's offset within it. The test compares
// backing-array pointers, so it finds subslices of the registered region
// (the common case: an application slicing transfer windows out of one
// registered staging buffer), not merely equal slices.
func (r *BufRegistry) Locate(b []byte) (id uint32, off uint64, ok bool) {
	if len(b) == 0 {
		return 0, 0, false
	}
	p := uintptr(unsafe.Pointer(unsafe.SliceData(b)))
	r.mu.RLock()
	defer r.mu.RUnlock()
	for rid, region := range r.regions {
		if len(region) == 0 {
			continue
		}
		base := uintptr(unsafe.Pointer(unsafe.SliceData(region)))
		if p >= base && p+uintptr(len(b)) <= base+uintptr(len(region)) {
			return rid, uint64(p - base), true
		}
	}
	return 0, 0, false
}
