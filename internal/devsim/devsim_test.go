package devsim

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ava/internal/clock"
)

func newDev(memMB uint64) *Device {
	return New(Config{Name: "test-gpu", MemoryBytes: memMB << 20, ComputeUnits: 4})
}

func TestAllocFreeAccounting(t *testing.T) {
	d := newDev(1)
	a, err := d.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if d.Used() != 1024 {
		t.Fatalf("used = %d", d.Used())
	}
	if err := d.FreeMem(a); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 0 {
		t.Fatalf("used after free = %d", d.Used())
	}
	st := d.Stats()
	if st.Allocs != 1 || st.Frees != 1 || st.PeakMemUsed != 1024 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAllocOutOfMemory(t *testing.T) {
	d := New(Config{Name: "tiny", MemoryBytes: 4096})
	if _, err := d.Alloc(8192); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	a, err := d.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Alloc(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory when full", err)
	}
	if err := d.FreeMem(a); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Alloc(4096); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestZeroSizeAllocGetsDistinctAddrs(t *testing.T) {
	d := newDev(1)
	a, err := d.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a == 0 || b == 0 {
		t.Fatalf("addresses %v %v", a, b)
	}
}

func TestCopyInOutRoundTrip(t *testing.T) {
	d := newDev(1)
	a, _ := d.Alloc(64)
	src := []byte("the quick brown fox jumps over the lazy accelerator....")
	if err := d.CopyIn(a, 4, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := d.CopyOut(a, 4, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatalf("round trip mismatch: %q vs %q", src, dst)
	}
	st := d.Stats()
	if st.BytesH2D != uint64(len(src)) || st.BytesD2H != uint64(len(src)) || st.DMATransfers != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCopyBoundsChecked(t *testing.T) {
	d := newDev(1)
	a, _ := d.Alloc(16)
	if err := d.CopyIn(a, 10, make([]byte, 10)); !errors.Is(err, ErrBounds) {
		t.Fatalf("overflowing CopyIn: %v", err)
	}
	if err := d.CopyOut(a, 0, make([]byte, 17)); !errors.Is(err, ErrBounds) {
		t.Fatalf("overflowing CopyOut: %v", err)
	}
	if err := d.CopyIn(Addr(0xdead), 0, []byte{1}); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("bad addr: %v", err)
	}
}

func TestCopyDevice(t *testing.T) {
	d := newDev(1)
	a, _ := d.Alloc(8)
	b, _ := d.Alloc(8)
	if err := d.CopyIn(a, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := d.CopyDevice(b, 2, a, 4, 4); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 8)
	if err := d.CopyOut(b, 0, out); err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 0, 5, 6, 7, 8, 0, 0}
	if !bytes.Equal(out, want) {
		t.Fatalf("got %v want %v", out, want)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	d := newDev(1)
	a, _ := d.Alloc(4)
	d.CopyIn(a, 0, []byte{9, 9, 9, 9})
	snap, err := d.Snapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	d.CopyIn(a, 0, []byte{1, 1, 1, 1})
	if !bytes.Equal(snap, []byte{9, 9, 9, 9}) {
		t.Fatal("snapshot aliases device memory")
	}
}

func TestMemAliasesDeviceMemory(t *testing.T) {
	d := newDev(1)
	a, _ := d.Alloc(4)
	mem, err := d.Mem(a)
	if err != nil {
		t.Fatal(err)
	}
	mem[0] = 42
	out := make([]byte, 1)
	d.CopyOut(a, 0, out)
	if out[0] != 42 {
		t.Fatal("Mem does not alias device memory")
	}
}

func TestRunKernelAccountsBusyTime(t *testing.T) {
	clk := clock.NewVirtual()
	d := New(Config{Name: "g", MemoryBytes: 1 << 20, Clock: clk})
	err := d.RunKernel("vm1", func() { clk.Advance(30 * time.Millisecond) })
	if err != nil {
		t.Fatal(err)
	}
	if got := d.BusyTime("vm1"); got != 30*time.Millisecond {
		t.Fatalf("busy = %v", got)
	}
	if got := d.BusyTime("vm2"); got != 0 {
		t.Fatalf("vm2 busy = %v", got)
	}
	if cs := d.Clients(); len(cs) != 1 || cs[0] != "vm1" {
		t.Fatalf("clients = %v", cs)
	}
}

func TestRunKernelConcurrencyBounded(t *testing.T) {
	d := New(Config{Name: "g", MemoryBytes: 1 << 20, ComputeUnits: 2})
	var mu sync.Mutex
	cur, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.RunKernel("c", func() {
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				time.Sleep(2 * time.Millisecond)
				mu.Lock()
				cur--
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	if peak > 2 {
		t.Fatalf("peak concurrency %d exceeds 2 compute units", peak)
	}
	if st := d.Stats(); st.KernelsRun != 16 {
		t.Fatalf("kernels run = %d", st.KernelsRun)
	}
}

func TestKernelOverheadCharged(t *testing.T) {
	clk := clock.NewVirtual()
	d := New(Config{Name: "g", MemoryBytes: 1 << 20, Clock: clk, KernelOverhead: 5 * time.Microsecond})
	t0 := clk.Now()
	d.RunKernel("c", func() {})
	if clk.Since(t0) != 5*time.Microsecond {
		t.Fatalf("launch overhead not charged: %v", clk.Since(t0))
	}
}

func TestDMAModelCharged(t *testing.T) {
	clk := clock.NewVirtual()
	d := New(Config{
		Name: "g", MemoryBytes: 1 << 20, Clock: clk,
		DMABandwidth: 1 << 30, DMALatency: 10 * time.Microsecond,
	})
	a, _ := d.Alloc(1 << 20)
	t0 := clk.Now()
	d.CopyIn(a, 0, make([]byte, 1<<20))
	elapsed := clk.Since(t0)
	mb := float64(1 << 20)
	gb := float64(1 << 30)
	want := 10*time.Microsecond + time.Duration(mb/gb*float64(time.Second))
	if elapsed < want-time.Microsecond || elapsed > want+time.Microsecond {
		t.Fatalf("modeled DMA time %v, want ~%v", elapsed, want)
	}
	if st := d.Stats(); st.TransferTime == 0 {
		t.Fatal("transfer time not recorded")
	}
}

func TestClosedDeviceRejectsEverything(t *testing.T) {
	d := newDev(1)
	a, _ := d.Alloc(8)
	d.Close()
	if _, err := d.Alloc(8); !errors.Is(err, ErrClosed) {
		t.Fatalf("Alloc after close: %v", err)
	}
	if err := d.CopyIn(a, 0, []byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("CopyIn after close: %v", err)
	}
	if err := d.RunKernel("c", func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("RunKernel after close: %v", err)
	}
}

func TestFreeUnknownAddr(t *testing.T) {
	d := newDev(1)
	if err := d.FreeMem(Addr(12345)); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("err = %v", err)
	}
}

func TestSizeQuery(t *testing.T) {
	d := newDev(1)
	a, _ := d.Alloc(321)
	n, err := d.Size(a)
	if err != nil || n != 321 {
		t.Fatalf("size = %d, %v", n, err)
	}
}

// Property: for any sequence of alloc/free, Used equals the sum of live
// allocation sizes and never exceeds capacity.
func TestQuickAllocInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		d := New(Config{Name: "q", MemoryBytes: 1 << 16})
		live := map[Addr]uint64{}
		var sum uint64
		for _, op := range ops {
			size := uint64(op % 4096)
			if op%3 == 0 && len(live) > 0 {
				for a, n := range live {
					if d.FreeMem(a) != nil {
						return false
					}
					sum -= n
					delete(live, a)
					break
				}
				continue
			}
			a, err := d.Alloc(size)
			if err != nil {
				if !errors.Is(err, ErrOutOfMemory) {
					return false
				}
				continue
			}
			if size == 0 {
				size = 1
			}
			live[a] = size
			sum += size
		}
		return d.Used() == sum && d.Used() <= d.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CopyIn then CopyOut over random offsets returns the data.
func TestQuickCopyRoundTrip(t *testing.T) {
	d := newDev(4)
	a, _ := d.Alloc(1 << 16)
	f := func(off uint16, data []byte) bool {
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		o := uint64(off) % ((1 << 16) - uint64(len(data)) - 1)
		if err := d.CopyIn(a, o, data); err != nil {
			return false
		}
		out := make([]byte, len(data))
		if err := d.CopyOut(a, o, out); err != nil {
			return false
		}
		return bytes.Equal(data, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCopyIn64K(b *testing.B) {
	d := newDev(64)
	a, _ := d.Alloc(1 << 16)
	buf := make([]byte, 1<<16)
	b.SetBytes(1 << 16)
	for i := 0; i < b.N; i++ {
		if err := d.CopyIn(a, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunKernelNop(b *testing.B) {
	d := newDev(1)
	for i := 0; i < b.N; i++ {
		d.RunKernel("bench", func() {})
	}
}
