// Package devsim simulates the accelerator hardware underneath a silo.
//
// The paper's prototype ran on an NVIDIA GTX 1080 and an Intel Movidius NCS.
// Neither is available here, so devsim provides the closest synthetic
// equivalent: a device with a fixed-capacity memory, a DMA engine that
// actually copies bytes (and can additionally model transfer time), and a
// pool of compute units that execute kernels as real Go functions while
// accounting busy time per client. AvA never sees any of this directly — it
// interposes the silo's public API — but the experiments need a device whose
// in-silo work is real so that API-boundary overhead is measured against
// genuine computation.
package devsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ava/internal/clock"
)

// Addr is a simulated device memory address. Zero is never a valid
// allocation address.
type Addr uint64

// Errors returned by the device.
var (
	ErrOutOfMemory = errors.New("devsim: out of device memory")
	ErrBadAddr     = errors.New("devsim: no allocation at address")
	ErrBounds      = errors.New("devsim: access outside allocation")
	ErrClosed      = errors.New("devsim: device closed")
)

// Config describes a simulated device.
type Config struct {
	// Name identifies the device in errors and stats.
	Name string
	// MemoryBytes is the device memory capacity.
	MemoryBytes uint64
	// ComputeUnits bounds concurrent kernel executions. Zero means 1.
	ComputeUnits int
	// DMABandwidth, if positive, models PCIe transfer time as
	// latency + bytes/bandwidth (bytes per second) charged to the clock.
	DMABandwidth float64
	// DMALatency is the fixed per-transfer setup cost when modeling time.
	DMALatency time.Duration
	// KernelOverhead is a fixed launch cost charged per kernel when
	// modeling time (the hardware queue/dispatch cost).
	KernelOverhead time.Duration
	// Clock supplies time; nil selects the wall clock.
	Clock clock.Clock
}

// Stats are the device's profiling counters, analogous to the profiling
// interface the paper suggests the hypervisor can use for precise
// measurements (§4.3).
type Stats struct {
	Allocs        uint64
	Frees         uint64
	BytesH2D      uint64
	BytesD2H      uint64
	DMATransfers  uint64
	KernelsRun    uint64
	KernelTime    time.Duration // summed wall/virtual time inside kernels
	TransferTime  time.Duration // summed modeled DMA time
	PeakMemUsed   uint64
	CurrentMemUse uint64
}

type allocation struct {
	addr Addr
	data []byte
}

// Device is a simulated accelerator.
type Device struct {
	cfg Config
	clk clock.Clock

	mu     sync.Mutex
	closed bool
	next   Addr
	allocs map[Addr]*allocation
	used   uint64
	stats  Stats

	cus chan struct{} // compute-unit tokens

	busyMu sync.Mutex
	busy   map[string]time.Duration // per-client kernel busy time
}

// New creates a device from cfg.
func New(cfg Config) *Device {
	if cfg.ComputeUnits <= 0 {
		cfg.ComputeUnits = 1
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	d := &Device{
		cfg:    cfg,
		clk:    clk,
		next:   4096, // keep a null page, like real address spaces
		allocs: make(map[Addr]*allocation),
		cus:    make(chan struct{}, cfg.ComputeUnits),
		busy:   make(map[string]time.Duration),
	}
	for i := 0; i < cfg.ComputeUnits; i++ {
		d.cus <- struct{}{}
	}
	return d
}

// Name returns the device name.
func (d *Device) Name() string { return d.cfg.Name }

// Capacity returns the device memory capacity in bytes.
func (d *Device) Capacity() uint64 { return d.cfg.MemoryBytes }

// Used returns the bytes of device memory currently allocated.
func (d *Device) Used() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Free returns the bytes of device memory currently available.
func (d *Device) Free() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cfg.MemoryBytes - d.used
}

// Close releases the device; further operations fail with ErrClosed.
func (d *Device) Close() {
	d.mu.Lock()
	d.closed = true
	d.allocs = make(map[Addr]*allocation)
	d.used = 0
	d.mu.Unlock()
}

// Alloc reserves size bytes of device memory.
func (d *Device) Alloc(size uint64) (Addr, error) {
	if size == 0 {
		size = 1 // zero-size allocations still need a distinct address
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	if d.used+size > d.cfg.MemoryBytes {
		return 0, fmt.Errorf("%w: want %d, free %d on %s",
			ErrOutOfMemory, size, d.cfg.MemoryBytes-d.used, d.cfg.Name)
	}
	addr := d.next
	d.next += Addr((size + 255) &^ 255) // 256-byte aligned spacing
	d.allocs[addr] = &allocation{addr: addr, data: make([]byte, size)}
	d.used += size
	d.stats.Allocs++
	d.stats.CurrentMemUse = d.used
	if d.used > d.stats.PeakMemUsed {
		d.stats.PeakMemUsed = d.used
	}
	return addr, nil
}

// FreeMem releases the allocation at addr.
func (d *Device) FreeMem(addr Addr) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	a, ok := d.allocs[addr]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadAddr, uint64(addr))
	}
	delete(d.allocs, addr)
	d.used -= uint64(len(a.data))
	d.stats.Frees++
	d.stats.CurrentMemUse = d.used
	return nil
}

// Size returns the size of the allocation at addr.
func (d *Device) Size(addr Addr) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.allocs[addr]
	if !ok {
		return 0, fmt.Errorf("%w: %#x", ErrBadAddr, uint64(addr))
	}
	return uint64(len(a.data)), nil
}

func (d *Device) region(addr Addr, off, n uint64) ([]byte, error) {
	a, ok := d.allocs[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %#x", ErrBadAddr, uint64(addr))
	}
	if off+n > uint64(len(a.data)) || off+n < off {
		return nil, fmt.Errorf("%w: [%d,%d) of %d", ErrBounds, off, off+n, len(a.data))
	}
	return a.data[off : off+n], nil
}

// modelDMA charges modeled transfer time for n bytes, if configured.
func (d *Device) modelDMA(n uint64) {
	if d.cfg.DMABandwidth <= 0 && d.cfg.DMALatency <= 0 {
		return
	}
	dur := d.cfg.DMALatency
	if d.cfg.DMABandwidth > 0 {
		dur += time.Duration(float64(n) / d.cfg.DMABandwidth * float64(time.Second))
	}
	d.clk.Sleep(dur)
	d.mu.Lock()
	d.stats.TransferTime += dur
	d.mu.Unlock()
}

// CopyIn transfers host data into device memory (H2D DMA).
func (d *Device) CopyIn(addr Addr, off uint64, src []byte) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	dst, err := d.region(addr, off, uint64(len(src)))
	if err != nil {
		d.mu.Unlock()
		return err
	}
	copy(dst, src)
	d.stats.BytesH2D += uint64(len(src))
	d.stats.DMATransfers++
	d.mu.Unlock()
	d.modelDMA(uint64(len(src)))
	return nil
}

// CopyOut transfers device memory to the host (D2H DMA).
func (d *Device) CopyOut(addr Addr, off uint64, dst []byte) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	src, err := d.region(addr, off, uint64(len(dst)))
	if err != nil {
		d.mu.Unlock()
		return err
	}
	copy(dst, src)
	d.stats.BytesD2H += uint64(len(dst))
	d.stats.DMATransfers++
	d.mu.Unlock()
	d.modelDMA(uint64(len(dst)))
	return nil
}

// CopyDevice copies n bytes between two device allocations (D2D).
func (d *Device) CopyDevice(dst Addr, dstOff uint64, src Addr, srcOff, n uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	s, err := d.region(src, srcOff, n)
	if err != nil {
		return err
	}
	t, err := d.region(dst, dstOff, n)
	if err != nil {
		return err
	}
	copy(t, s)
	return nil
}

// Mem exposes a device allocation as a host slice for kernel execution.
// Kernels are trusted silo code; this is the simulated equivalent of a
// compute unit dereferencing a device pointer. The slice aliases device
// memory and must not be retained past the kernel.
func (d *Device) Mem(addr Addr) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	a, ok := d.allocs[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %#x", ErrBadAddr, uint64(addr))
	}
	return a.data, nil
}

// Snapshot returns a copy of the allocation's current contents, used by the
// swap manager and migration engine.
func (d *Device) Snapshot(addr Addr) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.allocs[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %#x", ErrBadAddr, uint64(addr))
	}
	return append([]byte(nil), a.data...), nil
}

// RunKernel executes f on a compute unit, blocking until one is free, and
// charges the elapsed time to client (a VM or context identifier).
func (d *Device) RunKernel(client string, f func()) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	d.mu.Unlock()

	<-d.cus
	defer func() { d.cus <- struct{}{} }()

	if d.cfg.KernelOverhead > 0 {
		d.clk.Sleep(d.cfg.KernelOverhead)
	}
	start := d.clk.Now()
	f()
	elapsed := d.clk.Since(start) + d.cfg.KernelOverhead

	d.mu.Lock()
	d.stats.KernelsRun++
	d.stats.KernelTime += elapsed
	d.mu.Unlock()

	d.busyMu.Lock()
	d.busy[client] += elapsed
	d.busyMu.Unlock()
	return nil
}

// BusyTime returns the accumulated kernel time charged to client.
func (d *Device) BusyTime(client string) time.Duration {
	d.busyMu.Lock()
	defer d.busyMu.Unlock()
	return d.busy[client]
}

// Clients returns all clients that have been charged kernel time, sorted.
func (d *Device) Clients() []string {
	d.busyMu.Lock()
	defer d.busyMu.Unlock()
	out := make([]string, 0, len(d.busy))
	for c := range d.busy {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Stats returns a copy of the device's profiling counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
