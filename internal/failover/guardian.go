// Package failover makes an AvA stack crash-survivable: it detects API
// server death, respawns or rebinds a replacement server, reconstructs the
// VM's accelerator state from the §4.3 record log plus a periodic
// checkpoint, and coordinates the guest library's transparent resubmission
// of every call the crash swallowed.
//
// The central piece is the Guardian, a per-VM interposer that sits between
// the router and the API server link. On the way south it shadows the
// record log (keyed by guest sequence number) so recovery does not depend
// on the server that just died; on the way north it watches replies to
// learn which calls completed. Every CheckpointEvery calls it quiesces the
// server with a marker barrier and snapshots stateful objects, bounding
// replay work. When the link severs (or a liveness probe times out), it
// bumps the VM's endpoint epoch, dials a replacement via the injected
// closure, replays the filtered shadow log through migrate.RestoreWith —
// rebinding recreated objects to the handle values the guest already holds
// — and then tells the guest to resubmit its unacked window.
//
// The idempotency rule falls out of the spec's track annotations. Replay
// runs strictly up to the checkpoint watermark w, preserving the original
// order among creates, configs and modifies; everything past w flows
// through the guest's window resubmission, again in true sequence order:
//
//   - create/config at or below w: exactly once — replay rebuilt the object
//     under the guest's handle value, so a resubmitted copy is
//     short-circuited with the recorded reply.
//   - create/config past w with a recorded reply: re-executed by the
//     resubmission stream (replay cannot run them early — they may depend
//     on unreplayed modifies, e.g. a kernel created from a program built
//     after the checkpoint); the guardian rebinds the fresh handle to the
//     recorded one and the guest discards the duplicate reply.
//   - destroy: exactly once — if the original took effect and was pruned, a
//     resubmission gets a synthesized success; if it never confirmed, the
//     replayed log still contains the object and the destroy re-executes.
//   - modify/untracked: at-least-once — deterministically re-executed from
//     the checkpoint watermark in guest sequence order.
//
// Calls that cannot be resubmitted (their retained frame was trimmed, or
// recovery was abandoned) surface averr.ErrRetryable: never a silent drop.
package failover

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ava/internal/cava"
	"ava/internal/clock"
	"ava/internal/framebuf"
	"ava/internal/marshal"
	"ava/internal/migrate"
	"ava/internal/server"
	"ava/internal/spec"
	"ava/internal/transport"
)

// markerFunc is the function id of quiesce/liveness marker calls. It is
// never registered, so the server answers with a synchronous error reply —
// which, by the §4.2 sync-barrier contract, it can only send after every
// async issued before the marker has completed.
const markerFunc = ^uint32(0)

// Config tunes a Guardian.
type Config struct {
	// CheckpointEvery cuts a checkpoint after this many forwarded calls;
	// 0 disables periodic checkpoints (recovery then replays the whole
	// shadow log and the guest's full retained window).
	CheckpointEvery int
	// HeartbeatEvery probes server liveness with a marker when the link
	// has been idle this long; 0 disables probing, leaving detection to
	// transport errors alone.
	HeartbeatEvery time.Duration
	// LivenessTimeout bounds a marker round trip (quiesce barriers and
	// liveness probes); 0 means 2s.
	LivenessTimeout time.Duration
	// Backoff shapes respawn retries; the zero value gets defaults
	// (1ms base, 100ms cap, 2s budget).
	Backoff BackoffConfig
	// OnEpoch is called with each new endpoint epoch before the guest is
	// told to resubmit — the router uses it to fence stale frames.
	OnEpoch func(epoch uint32)
	// Clock is the time source; nil uses the wall clock.
	Clock clock.Clock
	// AdaptiveCheckpoint scales checkpoint cadence with device load
	// instead of cutting blindly every CheckpointEvery calls: a due
	// checkpoint is deferred while sync calls are in flight (the quiesce
	// barrier would stall them), until either the uncheckpointed span
	// approaches half the guest's retained window or the deferral reaches
	// 4x CheckpointEvery; the heartbeat cuts overdue checkpoints as soon
	// as the link goes idle.
	AdaptiveCheckpoint bool
	// Retain is the guest's retained-window size, bounding how far an
	// adaptive checkpoint may be deferred (the guest cannot trim frames
	// until the watermark advances); 0 means 4096, matching the guest
	// library's default.
	Retain int
	// Mirror, if set, receives a synchronous stream of shadow-log
	// mutations so replay state survives a guardian crash. See LogSink.
	//
	// Deprecated: set Sink.Log instead (or just Sink = UseSink(s)). Mirror
	// keeps working — New folds it into Sink when Sink.Log is nil — but
	// new wiring should name the sink once through SinkConfig, which also
	// auto-detects delta capability.
	Mirror LogSink
	// Sink names the replication sink the guardian streams to; see
	// SinkConfig. The zero value (with Mirror nil too) disables mirroring.
	Sink SinkConfig
	// FullCheckpoints disables incremental checkpoints: every checkpoint
	// ships complete object state even when the silo adapter (or the
	// remote server) supports dirty-range deltas.
	FullCheckpoints bool
	// Restore, if set, rehydrates the guardian from a mirrored shadow log
	// instead of starting empty: Start replays the restored log onto a
	// freshly dialed link (under the backoff budget), bumps the epoch past
	// the mirrored one, and tells the guest to resubmit everything past
	// the restored watermark.
	Restore *MirrorState
}

// ServerLink is one dialed attachment to an API server. EP carries frames;
// Server/Ctx/Adapter give the guardian direct access for replay and
// checkpointing (nil for links that cannot be replayed, e.g. a remote
// server reached only by wire — recovery then reconnects without replay).
type ServerLink struct {
	EP      transport.Endpoint
	Server  *server.Server
	Ctx     *server.Context
	Adapter migrate.Adapter
	// WireReplay marks a wire-only link (Server/Ctx nil) whose remote end
	// serves the marshal.FuncRebind/FuncRestore control calls: recovery
	// then replays the shadow log over the wire instead of reconnecting
	// without replay. This is how a VM fails over onto a different host.
	WireReplay bool
}

// DeltaSnapshotter is the optional incremental-capture extension of
// migrate.Adapter: an adapter that also implements it lets checkpoints
// drain each stateful object's dirty-range tracking into a delta, so
// checkpoint cost scales with the bytes written since the previous
// checkpoint rather than the object footprint. Draining advances the
// silo's dirty watermark, so a captured delta must be committed — the
// guardian forces the next checkpoint to be full whenever a delta capture
// does not commit.
type DeltaSnapshotter interface {
	SnapshotObjectDelta(obj any) (delta marshal.ObjectDelta, stateful bool, err error)
}

// Stats counts guardian activity.
type Stats struct {
	Recoveries          uint64
	Checkpoints         uint64
	ShortCircuited      uint64 // resubmitted calls answered from the shadow log
	SynthesizedDestroys uint64 // resubmitted destroys answered with synthetic success
	StaleDropped        uint64 // frames dropped for a stale epoch
	ResubmitForwarded   uint64 // resubmitted calls re-executed on the new server
	DeltaCheckpoints    uint64 // checkpoints captured incrementally (dirty ranges only)
	LastCkptBytes       uint64 // payload bytes the most recent checkpoint shipped
	LastCkptFootprint   uint64 // full object-state bytes the most recent checkpoint covers
	LastRecoveryPause   time.Duration
	LastWatermark       uint64
}

// destroyRec tracks one destroy call so the exactly-once rule can tell "took
// effect, reply lost" apart from "never confirmed".
type destroyRec struct {
	h      marshal.Handle
	pruned bool // shadow log pruned (destroy confirmed or async)
}

// Guardian is the per-VM failover interposer between router and server.
type Guardian struct {
	desc *cava.Descriptor
	cfg  Config
	clk  clock.Clock
	bo   *Backoff

	north transport.Endpoint // toward the router/guest
	dial  func() (ServerLink, error)

	northCh   chan []byte   // single-writer queue toward north
	done      chan struct{} // closed by Close
	closeOnce sync.Once

	southMu   sync.Mutex // serializes Sends on the current link
	quiesceMu sync.Mutex // serializes uplink processing vs. checkpoints

	markerMu      sync.Mutex
	markerN       uint64
	markerWaiters map[uint64]chan *marshal.Reply
	abort         chan struct{} // closed when recovery starts; remade per link

	lastRecv atomic.Int64 // UnixNano of the last frame received from the server

	mu            sync.Mutex
	cond          *sync.Cond // recovery completion
	closed        bool
	dead          bool
	deadErr       error
	epoch         uint32
	link          ServerLink
	linkGen       int
	recovering    bool
	entries       []*server.RecordedCall // shadow log, ascending guest seq
	bySeq         map[uint64]*server.RecordedCall
	replySeen     map[uint64]bool
	pendingRebind map[uint64]struct{} // completed creates/configs past the last recovery watermark: re-execute on resubmit, then rebind
	destroys      map[uint64]*destroyRec
	inflightSync  map[uint64]struct{}
	maxSeq        uint64 // highest guest seq forwarded south
	sinceCkpt     int
	ckptObjects   map[marshal.Handle][]byte
	ckptW         uint64 // checkpoint watermark: state covers seq <= ckptW
	ckptGen       int    // linkGen when ckptObjects was committed
	forceFull     bool   // next checkpoint must capture full state (uncommitted delta drain)
	stats         Stats
}

// New builds a Guardian for one VM. north faces the router; dial produces a
// fresh server link (spawning or rebinding a server as the deployment needs)
// and is invoked for the initial attach and after every failure. Call Start
// to dial the first link and begin pumping.
func New(desc *cava.Descriptor, north transport.Endpoint, dial func() (ServerLink, error), cfg Config) *Guardian {
	if cfg.LivenessTimeout <= 0 {
		cfg.LivenessTimeout = 2 * time.Second
	}
	// Normalize the two replication spellings: the deprecated Mirror field
	// folds into Sink, and a nil Sink.Delta auto-detects the sink's delta
	// capability. Internally the guardian reads cfg.Mirror (= Sink.Log)
	// and cfg.Sink.Delta.
	cfg.Sink = cfg.Sink.resolved(cfg.Mirror)
	cfg.Mirror = cfg.Sink.Log
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	g := &Guardian{
		desc:          desc,
		cfg:           cfg,
		clk:           clk,
		bo:            NewBackoff(cfg.Backoff),
		north:         north,
		dial:          dial,
		northCh:       make(chan []byte, 256),
		done:          make(chan struct{}),
		markerWaiters: make(map[uint64]chan *marshal.Reply),
		abort:         make(chan struct{}),
		bySeq:         make(map[uint64]*server.RecordedCall),
		replySeen:     make(map[uint64]bool),
		pendingRebind: make(map[uint64]struct{}),
		destroys:      make(map[uint64]*destroyRec),
		inflightSync:  make(map[uint64]struct{}),
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Start dials the initial server link and starts the pump goroutines. With
// Config.Restore set, it first rehydrates the shadow log from the mirrored
// state and replays it onto the fresh link, so a replacement guardian
// resumes from the last checkpoint instead of losing all replay state.
func (g *Guardian) Start() error {
	if g.cfg.Restore != nil {
		return g.startRestored(g.cfg.Restore)
	}
	link, err := g.dial()
	if err != nil {
		return fmt.Errorf("failover: initial dial: %w", err)
	}
	g.startPumps(link)
	return nil
}

func (g *Guardian) startPumps(link ServerLink) {
	g.mu.Lock()
	g.link = link
	gen := g.linkGen
	g.mu.Unlock()
	g.lastRecv.Store(g.clk.Now().UnixNano())
	go g.northWriter()
	go g.uplink()
	go g.downlink(link, gen)
	if g.cfg.HeartbeatEvery > 0 {
		go g.heartbeat()
	}
}

// startRestored seeds the shadow log from a mirrored snapshot and brings a
// replacement server to the snapshot's watermark before any traffic flows:
// dial under the backoff budget, replay the filtered log plus checkpointed
// object state, then announce a fresh epoch north so the guest resubmits
// everything past the watermark. The epoch advances past the mirrored one
// so frames the old guardian had in flight are fenced at the router.
func (g *Guardian) startRestored(st *MirrorState) error {
	g.mu.Lock()
	w := st.W
	g.epoch = st.Epoch + 1
	epoch := g.epoch
	for i := range st.Entries {
		rc := &st.Entries[i]
		fd, ok := g.desc.ByID(rc.Func)
		if !ok {
			continue
		}
		keep := false
		seen := st.ReplySeen[rc.Seq]
		switch fd.Track.Kind {
		case spec.TrackCreate, spec.TrackConfig:
			// Same rules as finishRecovery: completed creates/configs past
			// the watermark keep their recorded replies but re-execute when
			// resubmitted, rebinding fresh handles to the recorded values.
			keep = seen
			if keep && rc.Seq > w {
				g.pendingRebind[rc.Seq] = struct{}{}
			}
		case spec.TrackModify:
			keep = rc.Seq <= w
		}
		if !keep {
			continue
		}
		cp := &server.RecordedCall{
			Func:    rc.Func,
			Args:    server.CloneValues(rc.Args),
			Ret:     rc.Ret,
			Outs:    server.CloneValues(rc.Outs),
			Created: rc.Created,
			Seq:     rc.Seq,
		}
		g.entries = append(g.entries, cp)
		g.bySeq[cp.Seq] = cp
		if seen {
			g.replySeen[cp.Seq] = true
		}
	}
	g.ckptW = w
	g.maxSeq = w
	g.ckptObjects = make(map[marshal.Handle][]byte, len(st.Objects))
	for h, state := range st.Objects {
		g.ckptObjects[h] = append([]byte(nil), state...)
	}
	objects := g.ckptObjects
	log := g.filteredLogLocked(w)
	if g.cfg.Mirror != nil {
		// Seed the (possibly fresh) mirror so the next crash rehydrates too.
		for _, rc := range g.entries {
			g.cfg.Mirror.MirrorAppend(rc)
			if g.replySeen[rc.Seq] {
				g.cfg.Mirror.MirrorReply(rc)
			}
		}
		g.cfg.Mirror.MirrorCheckpoint(epoch, w, objects)
	}
	g.mu.Unlock()

	if g.cfg.OnEpoch != nil {
		g.cfg.OnEpoch(epoch)
	}
	series := g.bo.Series()
	var link ServerLink
	for {
		l, err := g.dial()
		if err == nil {
			err = g.replayOnto(l, log, objects)
			if err != nil && l.EP != nil {
				transport.Sever(l.EP)
			}
		}
		if err == nil {
			link = l
			break
		}
		d, ok := series.Next()
		if !ok {
			return fmt.Errorf("failover: rehydration abandoned after %v (last: %w)", series.Spent(), err)
		}
		g.clk.Sleep(d)
	}
	g.mu.Lock()
	g.stats.LastWatermark = w
	g.mu.Unlock()
	g.startPumps(link)
	// Announce after the pumps are live: the resubmission batch this
	// triggers must find a working path.
	g.sendNorth(EncodeControl(CtrlRecover, epoch, w))
	return nil
}

// Close tears the guardian down; the current server link is severed.
func (g *Guardian) Close() {
	g.closeOnce.Do(func() {
		g.mu.Lock()
		g.closed = true
		link := g.link
		g.mu.Unlock()
		close(g.done)
		g.north.Close()
		if link.EP != nil {
			link.EP.Close()
		}
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	})
}

// Stats returns a copy of the guardian's counters.
func (g *Guardian) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Epoch returns the current endpoint epoch.
func (g *Guardian) Epoch() uint32 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// KillServer severs the current server link abruptly — the SIGKILL
// equivalent used by chaos tests and E12. The guardian notices through its
// pumps and recovers as it would from a real crash.
func (g *Guardian) KillServer() {
	g.mu.Lock()
	ep := g.link.EP
	g.mu.Unlock()
	if ep != nil {
		transport.Sever(ep)
	}
}

// CheckpointNow cuts a checkpoint synchronously (tests, pre-migration).
func (g *Guardian) CheckpointNow() error {
	g.quiesceMu.Lock()
	defer g.quiesceMu.Unlock()
	return g.checkpoint()
}

// ---------------------------------------------------------------------------
// North writer: the single goroutine that Sends toward the router.

func (g *Guardian) northWriter() {
	var failed bool
	sendCopies := transport.SendCopies(g.north)
	for {
		select {
		case <-g.done:
			return
		case frame := <-g.northCh:
			if failed {
				continue
			}
			if err := g.north.Send(frame); err != nil {
				failed = true // keep draining so pumps never block
				continue
			}
			if sendCopies {
				framebuf.Put(frame)
			}
		}
	}
}

func (g *Guardian) sendNorth(frame []byte) {
	select {
	case g.northCh <- frame:
	case <-g.done:
	}
}

// ---------------------------------------------------------------------------
// Uplink: guest/router → guardian → server.

func (g *Guardian) uplink() {
	for {
		frame, err := g.north.Recv()
		if err != nil {
			return
		}
		g.quiesceMu.Lock()
		g.handleUplinkFrame(frame)
		g.quiesceMu.Unlock()
	}
}

func (g *Guardian) handleUplinkFrame(frame []byte) {
	// Hold new work while a recovery is rebuilding the server.
	g.mu.Lock()
	for g.recovering && !g.closed && !g.dead {
		g.cond.Wait()
	}
	if g.closed || g.dead {
		g.mu.Unlock()
		return // drop: the guest has been told via CtrlDead (or is closing)
	}
	epoch := g.epoch
	link := g.link
	gen := g.linkGen
	g.mu.Unlock()

	calls, err := marshal.DecodeBatch(frame)
	if err != nil {
		return // malformed; the server would reject it anyway
	}
	decoded := make([]*marshal.Call, len(calls))
	hasResub := false
	for i, cf := range calls {
		call, err := marshal.DecodeCall(cf)
		if err != nil {
			continue
		}
		decoded[i] = call
		if call.Flags&marshal.FlagResubmit != 0 {
			hasResub = true
		}
	}
	kept := make([][]byte, 0, len(calls))
	allKept := true
	if hasResub {
		// Resubmission replays program order: the guest originally issued
		// each of these calls only after every earlier sync call had
		// returned, and the server's dependency tracking cannot
		// reconstruct ordering edges through handles that do not exist yet
		// (a context created from devices an enumeration call is still
		// materializing). Forward one call at a time, draining sync
		// replies in between — this is the recovery path, so latency is
		// irrelevant next to correctness.
		allKept = false
		for i, cf := range calls {
			call := decoded[i]
			if call == nil {
				continue
			}
			if !g.drainSyncs(gen) {
				break // link died again; the guest resubmits under the new epoch
			}
			if !g.admit(call, epoch) {
				continue
			}
			if err := g.sendSouth(link, marshal.EncodeBatch([][]byte{cf})); err != nil {
				g.recover(gen, err)
				break
			}
		}
	} else {
		for i, cf := range calls {
			call := decoded[i]
			if call == nil {
				allKept = false
				continue
			}
			if g.admit(call, epoch) {
				kept = append(kept, cf)
			} else {
				allKept = false
			}
		}
		if len(kept) > 0 {
			out := frame
			if !allKept {
				out = marshal.EncodeBatch(kept)
			}
			if err := g.sendSouth(link, out); err != nil {
				g.recover(gen, err)
				// The frame reached the shadow log before the send, so the
				// guest's resubmission covers everything in it.
			}
		}
	}
	if transport.RecvOwned(g.north) {
		// Tracked entries were deep-copied and any re-encoded batch copied
		// the call bodies, so the original frame can recycle unless it was
		// forwarded as-is over an ownership-transferring transport.
		forwardedWhole := len(kept) > 0 && allKept
		g.mu.Lock()
		south := g.link.EP
		g.mu.Unlock()
		if !(forwardedWhole && !transport.SendCopies(south)) {
			framebuf.Put(frame)
		}
	}
	g.mu.Lock()
	due := g.checkpointDueLocked()
	g.mu.Unlock()
	if due {
		g.checkpoint()
	}
}

// checkpointDueLocked decides whether to cut a checkpoint now. With
// AdaptiveCheckpoint the cadence scales to load: while sync calls are in
// flight the quiesce barrier would stall them, so a due checkpoint is
// deferred until the uncheckpointed span approaches half the guest's
// retained window (past that, the guest cannot trim frames and recovery
// replay grows unboundedly) or the deferral reaches 4x CheckpointEvery.
// The heartbeat cuts overdue checkpoints once the link goes idle.
func (g *Guardian) checkpointDueLocked() bool {
	if g.cfg.CheckpointEvery <= 0 || g.recovering || g.dead || g.closed {
		return false
	}
	if g.sinceCkpt < g.cfg.CheckpointEvery {
		return false
	}
	if !g.cfg.AdaptiveCheckpoint || len(g.inflightSync) == 0 {
		return true
	}
	retain := g.cfg.Retain
	if retain <= 0 {
		retain = 4096
	}
	if g.maxSeq-g.ckptW >= uint64(retain/2) {
		return true
	}
	return g.sinceCkpt >= 4*g.cfg.CheckpointEvery
}

// admit applies epoch fencing, the resubmission dedupe rules and shadow
// recording to one decoded call. It reports whether the call should be
// forwarded to the server.
func (g *Guardian) admit(call *marshal.Call, epoch uint32) bool {
	g.mu.Lock()
	defer g.mu.Unlock()

	if call.Epoch != epoch {
		// A frame from before the last recovery: the guest has (or will)
		// resubmit its window under the new epoch, so forwarding this copy
		// would double-execute. Dropping is safe precisely because
		// resubmission covers it.
		g.stats.StaleDropped++
		return false
	}

	resubmit := call.Flags&marshal.FlagResubmit != 0
	fd, known := g.desc.ByID(call.Func)

	if resubmit && known {
		if d, ok := g.destroys[call.Seq]; ok && d.pruned {
			// The destroy took effect before the crash (its prune is
			// final), so the object was never recreated by replay; a
			// re-execution would fail on a dangling handle. Answer
			// success directly — unless the call was asynchronous, in
			// which case nobody awaits a reply and the drop alone is the
			// correct outcome.
			g.stats.SynthesizedDestroys++
			if call.Flags&marshal.FlagAsync == 0 {
				g.synthesizeOKLocked(call, fd)
			}
			return false
		}
		if rc, ok := g.bySeq[call.Seq]; ok && g.replySeen[call.Seq] {
			if _, rebind := g.pendingRebind[call.Seq]; !rebind {
				// The original completed and its reply was recorded; replay
				// already rebuilt the object under the guest's handle
				// values. Short-circuit with the recorded reply.
				g.stats.ShortCircuited++
				g.sendRecordedLocked(call.Seq, rc)
				return false
			}
			// A completed create/config past the recovery watermark: replay
			// could not include it (it may depend on unreplayed modifies),
			// so it re-executes here in window order. noteReply rebinds the
			// fresh handle to the recorded one; the guest discards the
			// duplicate reply.
		}
		g.stats.ResubmitForwarded++
	}

	if known {
		switch fd.Track.Kind {
		case spec.TrackConfig, spec.TrackCreate, spec.TrackModify:
			if _, dup := g.bySeq[call.Seq]; !dup {
				rc := &server.RecordedCall{
					Func: call.Func,
					Args: server.CloneValues(call.Args),
					Seq:  call.Seq,
				}
				g.entries = append(g.entries, rc)
				g.bySeq[call.Seq] = rc
				if g.cfg.Mirror != nil {
					g.cfg.Mirror.MirrorAppend(rc)
				}
			}
		case spec.TrackDestroy:
			if fd.TrackIdx >= 0 && fd.TrackIdx < len(call.Args) {
				h := call.Args[fd.TrackIdx].Handle()
				if d, ok := g.destroys[call.Seq]; ok {
					_ = d // resubmitted unconfirmed destroy: forward again
				} else {
					d := &destroyRec{h: h}
					g.destroys[call.Seq] = d
					if call.Flags&marshal.FlagAsync != 0 {
						// No reply will confirm it; prune optimistically.
						g.pruneLocked(h)
						d.pruned = true
					}
				}
			}
		}
	}
	if call.Flags&marshal.FlagAsync == 0 {
		g.inflightSync[call.Seq] = struct{}{}
	}
	if call.Seq < marshal.CtrlSeqBase && call.Seq > g.maxSeq {
		g.maxSeq = call.Seq
	}
	g.sinceCkpt++
	return true
}

// pruneLocked drops every shadow entry a destroyed handle obsoletes,
// mirroring Context.record's destroy rule.
func (g *Guardian) pruneLocked(h marshal.Handle) {
	kept := g.entries[:0]
	for _, rc := range g.entries {
		if rc.Obsoleted(h) {
			delete(g.bySeq, rc.Seq)
			delete(g.replySeen, rc.Seq)
			continue
		}
		kept = append(kept, rc)
	}
	g.entries = kept
	if g.cfg.Mirror != nil {
		g.cfg.Mirror.MirrorPrune(h)
	}
}

// synthesizeOKLocked answers a resubmitted, already-effective destroy with
// a success reply built from the spec's success value.
func (g *Guardian) synthesizeOKLocked(call *marshal.Call, fd *cava.FuncDesc) {
	ret := marshal.Null()
	if fd.HasSuccess {
		ret = marshal.Int(fd.SuccessVal)
	}
	rep := &marshal.Reply{Seq: call.Seq, Status: marshal.StatusOK, Ret: ret}
	g.syncDoneLocked(call.Seq)
	g.sendNorth(marshal.EncodeReply(rep))
}

// sendRecordedLocked answers a resubmitted call with its recorded reply.
func (g *Guardian) sendRecordedLocked(seq uint64, rc *server.RecordedCall) {
	rep := &marshal.Reply{Seq: seq, Status: marshal.StatusOK, Ret: rc.Ret, Outs: rc.Outs}
	g.syncDoneLocked(seq)
	g.sendNorth(marshal.EncodeReply(rep))
}

func (g *Guardian) sendSouth(link ServerLink, frame []byte) error {
	g.southMu.Lock()
	defer g.southMu.Unlock()
	if link.EP == nil {
		return transport.ErrClosed
	}
	return link.EP.Send(frame)
}

// ---------------------------------------------------------------------------
// Downlink: server → guardian → guest. One instance per link generation.

func (g *Guardian) downlink(link ServerLink, gen int) {
	recvOwned := transport.RecvOwned(link.EP)
	for {
		frame, err := link.EP.Recv()
		if err != nil {
			g.mu.Lock()
			closed := g.closed
			g.mu.Unlock()
			if closed || errors.Is(err, transport.ErrClosed) {
				return
			}
			g.recover(gen, err)
			return
		}
		g.lastRecv.Store(g.clk.Now().UnixNano())
		if len(frame) < 8 {
			continue
		}
		seq := peekSeq(frame)
		if seq >= marshal.MarkerSeqBase {
			g.markerMu.Lock()
			ch, ok := g.markerWaiters[seq]
			if ok {
				delete(g.markerWaiters, seq)
			}
			g.markerMu.Unlock()
			if ok {
				// Deep-copy the reply before recycling the frame (DecodeReply
				// keeps references into it): a snapshot control reply carries
				// a byte payload the waiter reads after this loop moves on.
				if rep, err := marshal.DecodeReply(frame); err == nil {
					if rep.Ret.Kind == marshal.KindBytes {
						rep.Ret.Bytes = append([]byte(nil), rep.Ret.Bytes...)
					}
					rep.Outs = server.CloneValues(rep.Outs)
					ch <- rep
				}
				close(ch)
			}
			if recvOwned {
				framebuf.Put(frame)
			}
			continue
		}
		g.noteReply(seq, frame)
		g.sendNorth(frame)
	}
}

func peekSeq(frame []byte) uint64 {
	return uint64(frame[0]) | uint64(frame[1])<<8 | uint64(frame[2])<<16 | uint64(frame[3])<<24 |
		uint64(frame[4])<<32 | uint64(frame[5])<<40 | uint64(frame[6])<<48 | uint64(frame[7])<<56
}

// noteReply completes the shadow bookkeeping for one server reply: sync
// drain tracking, recorded-reply capture for creates/configs/modifies, and
// destroy confirmation.
func (g *Guardian) noteReply(seq uint64, frame []byte) {
	g.mu.Lock()
	rc, tracked := g.bySeq[seq]
	_, rebind := g.pendingRebind[seq]
	if !rebind {
		// For pendingRebind replies the sync-drain release waits until the
		// rebind below has been applied, so a quiesce cannot snapshot the
		// object under its fresh (not yet rebound) handle.
		g.syncDoneLocked(seq)
	}
	needBody := tracked && (!g.replySeen[seq] || rebind)
	d, isDestroy := g.destroys[seq]
	needBody = needBody || (isDestroy && !d.pruned)
	g.mu.Unlock()
	if !needBody {
		return
	}
	rep, err := marshal.DecodeReply(frame)
	if err != nil {
		if rebind {
			g.mu.Lock()
			g.syncDoneLocked(seq)
			g.mu.Unlock()
		}
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if isDestroy && !d.pruned {
		if rep.Status == marshal.StatusOK {
			g.pruneLocked(d.h)
			d.pruned = true
		} else {
			// The destroy failed; the object lives on. Forget the record
			// so a resubmission re-executes rather than synthesizing.
			delete(g.destroys, seq)
		}
		return
	}
	if rebind {
		// Re-execution of a completed create/config past the recovery
		// watermark: keep the RECORDED reply (the guest holds its handles)
		// and move the freshly created object under the recorded handle
		// values in the server's table.
		delete(g.pendingRebind, seq)
		if rep.Status != marshal.StatusOK {
			// Re-execution failed: the object no longer exists on the new
			// server. Forget it so neither replay nor short-circuiting
			// claims otherwise.
			g.syncDoneLocked(seq)
			g.dropEntryLocked(seq)
			return
		}
		fd, ok := g.desc.ByID(rc.Func)
		if !ok {
			g.syncDoneLocked(seq)
			return
		}
		if g.link.Ctx != nil {
			g.syncDoneLocked(seq)
			g.rebindRecordedLocked(fd, rc, rep)
			return
		}
		if g.link.WireReplay && g.link.EP != nil {
			// Wire-only link: the rebind travels as a FuncRebind control
			// call. The sync-drain release waits for its confirmation (in
			// wireRebind) so the next resubmitted call cannot race it.
			pairs := rebindPairs(fd, rc, rep)
			go g.wireRebind(g.link, pairs, seq)
			return
		}
		g.syncDoneLocked(seq)
		return
	}
	if rep.Status != marshal.StatusOK {
		// The call failed: it contributes no device state. Drop the
		// provisional entry so replay never re-executes a failure.
		g.dropEntryLocked(seq)
		return
	}
	rc.Ret = rep.Ret
	rc.Outs = server.CloneValues(rep.Outs)
	if fd, ok := g.desc.ByID(rc.Func); ok && fd.Track.Kind == spec.TrackCreate {
		rc.Created = createdHandle(fd, rep)
	}
	g.replySeen[seq] = true
	if rc.Ret.Kind == marshal.KindBytes {
		rc.Ret.Bytes = append([]byte(nil), rc.Ret.Bytes...)
	}
	if g.cfg.Mirror != nil {
		g.cfg.Mirror.MirrorReply(rc)
	}
}

// createdHandle extracts the handle a create call produced, mirroring the
// server's record path: the tracked out-parameter slot if any, else a
// handle-typed return value.
func createdHandle(fd *cava.FuncDesc, rep *marshal.Reply) marshal.Handle {
	if fd.TrackIdx >= 0 {
		slot := 0
		for i := range fd.Params {
			if !fd.Params[i].Out() {
				continue
			}
			if i == fd.TrackIdx {
				if slot < len(rep.Outs) && rep.Outs[slot].Kind == marshal.KindHandle {
					return rep.Outs[slot].Handle()
				}
				return 0
			}
			slot++
		}
		return 0
	}
	if rep.Ret.Kind == marshal.KindHandle {
		return rep.Ret.Handle()
	}
	return 0
}

func (g *Guardian) dropEntryLocked(seq uint64) {
	rc, ok := g.bySeq[seq]
	if !ok {
		return
	}
	delete(g.bySeq, seq)
	delete(g.replySeen, seq)
	delete(g.pendingRebind, seq)
	for i, e := range g.entries {
		if e == rc {
			g.entries = append(g.entries[:i], g.entries[i+1:]...)
			break
		}
	}
	if g.cfg.Mirror != nil {
		g.cfg.Mirror.MirrorDrop(seq)
	}
}

// rebindRecordedLocked moves the handles a re-executed create/config just
// produced (in rep) to the values its original execution gave the guest (in
// rc), mirroring migrate's rebind. Best-effort: a link without a local
// server table (wire-only) or a vanished fresh handle leaves the table
// untouched rather than failing the reply path.
func (g *Guardian) rebindRecordedLocked(fd *cava.FuncDesc, rc *server.RecordedCall, rep *marshal.Reply) {
	ctx := g.link.Ctx
	if ctx == nil {
		return
	}
	pairs := rebindPairs(fd, rc, rep)
	// Two phases so fresh handles that collide with original values within
	// one reply cannot shadow each other.
	objs := make([]any, len(pairs))
	for i, p := range pairs {
		obj, ok := ctx.Handles.Remove(p.fresh)
		if !ok {
			objs[i] = nil
			continue
		}
		objs[i] = obj
	}
	for i, p := range pairs {
		if objs[i] == nil {
			continue
		}
		if err := ctx.Handles.InsertAt(p.recorded, objs[i]); err != nil {
			// The original slot is occupied (exotic handle reuse); leave the
			// object under its fresh value so server state stays consistent.
			_ = ctx.Handles.InsertAt(p.fresh, objs[i])
			continue
		}
		ctx.RemapRecorded(p.fresh, p.recorded)
	}
}

// handlePair relates a handle value from a call's original execution (the
// one the guest holds) to the value its re-execution produced.
type handlePair struct{ recorded, fresh marshal.Handle }

// rebindPairs diffs a call's recorded reply against its re-execution reply
// and returns the handle moves required to put recreated objects back under
// the guest's handle values. Shared by the local-table rebind, the wire
// rebind, and the wire replay.
func rebindPairs(fd *cava.FuncDesc, rc *server.RecordedCall, rep *marshal.Reply) []handlePair {
	var pairs []handlePair
	add := func(recorded, fresh marshal.Handle) {
		if recorded != 0 && fresh != 0 && recorded != fresh {
			pairs = append(pairs, handlePair{recorded, fresh})
		}
	}
	if rc.Ret.Kind == marshal.KindHandle && rep.Ret.Kind == marshal.KindHandle {
		add(rc.Ret.Handle(), rep.Ret.Handle())
	}
	if len(rc.Outs) == len(rep.Outs) {
		slot := 0
		for i := range fd.Params {
			pd := &fd.Params[i]
			if !pd.Out() {
				continue
			}
			oldV, newV := rc.Outs[slot], rep.Outs[slot]
			slot++
			switch {
			case oldV.Kind == marshal.KindHandle && newV.Kind == marshal.KindHandle:
				add(oldV.Handle(), newV.Handle())
			case pd.Kind == spec.KindHandle && oldV.Kind == marshal.KindBytes && newV.Kind == marshal.KindBytes:
				n := min(len(oldV.Bytes), len(newV.Bytes)) / 8
				for j := 0; j < n; j++ {
					add(marshal.Handle(binary.LittleEndian.Uint64(oldV.Bytes[8*j:])),
						marshal.Handle(binary.LittleEndian.Uint64(newV.Bytes[8*j:])))
				}
			}
		}
	}
	return pairs
}

// wireRebind moves re-executed objects back under their recorded handles on
// a wire-only link, then releases the sync-drain slot so the resubmission
// stream can proceed. Best-effort like the local path: a failed move leaves
// the object under its fresh handle; a dead link is the pumps' problem.
func (g *Guardian) wireRebind(link ServerLink, pairs []handlePair, seq uint64) {
	for _, p := range pairs {
		st, err := g.ctrlCall(link, marshal.FuncRebind, []marshal.Value{
			marshal.HandleVal(p.fresh), marshal.HandleVal(p.recorded),
		})
		if err != nil || st != marshal.StatusOK {
			break
		}
	}
	g.mu.Lock()
	g.syncDoneLocked(seq)
	g.mu.Unlock()
}

// ctrlCall round-trips one control call on a link whose downlink pump is
// running, returning just the reply status.
func (g *Guardian) ctrlCall(link ServerLink, fn uint32, args []marshal.Value) (marshal.Status, error) {
	rep, err := g.ctrlCallReply(link, fn, args)
	if err != nil {
		return 0, err
	}
	return rep.Status, nil
}

// ctrlCallReply round-trips one control call on a link whose downlink pump
// is running, using the marker-waiter channel to claim the full reply.
func (g *Guardian) ctrlCallReply(link ServerLink, fn uint32, args []marshal.Value) (*marshal.Reply, error) {
	g.mu.Lock()
	abort := g.abort
	g.mu.Unlock()
	id, ch := g.newMarkerWaiter()
	cleanup := func() {
		g.markerMu.Lock()
		delete(g.markerWaiters, id)
		g.markerMu.Unlock()
	}
	frame := marshal.EncodeCall(&marshal.Call{Seq: id, Func: fn, Args: args})
	if err := g.sendSouth(link, marshal.EncodeBatch([][]byte{frame})); err != nil {
		cleanup()
		return nil, err
	}
	timeout := make(chan struct{})
	stop := g.clk.AfterFunc(g.cfg.LivenessTimeout, func() { close(timeout) })
	defer stop()
	select {
	case rep := <-ch:
		if rep == nil {
			return nil, fmt.Errorf("failover: control call reply undecodable")
		}
		return rep, nil
	case <-timeout:
		cleanup()
		return nil, fmt.Errorf("failover: control call unanswered after %v", g.cfg.LivenessTimeout)
	case <-abort:
		cleanup()
		return nil, fmt.Errorf("failover: control call aborted by recovery")
	case <-g.done:
		cleanup()
		return nil, fmt.Errorf("failover: guardian closed")
	}
}

// wireSnapshot checkpoints the serving host's stateful objects over the
// wire: one FuncSnapshot control call returns every object's serialized
// state. It is the wire-only link's substitute for walking the handle table
// through an in-process Adapter — without it a cross-host failover could
// replay tracked creates and configs but would lose untracked device state
// (buffer contents mutated by kernels and writes).
func (g *Guardian) wireSnapshot(link ServerLink) (map[marshal.Handle][]byte, error) {
	rep, err := g.ctrlCallReply(link, marshal.FuncSnapshot, nil)
	if err != nil {
		return nil, err
	}
	if rep.Status != marshal.StatusOK {
		return nil, fmt.Errorf("failover: wire snapshot: %s", rep.Err)
	}
	if rep.Ret.Kind != marshal.KindBytes {
		return nil, fmt.Errorf("failover: wire snapshot: reply carries no payload")
	}
	return marshal.DecodeObjectStates(rep.Ret.Bytes)
}

// ---------------------------------------------------------------------------
// Checkpoints.

// checkpoint quiesces the server and snapshots stateful objects, advancing
// the watermark. The caller holds quiesceMu, so no new calls flow south
// while it runs; in-flight ones drain through the live downlink.
func (g *Guardian) checkpoint() error {
	g.mu.Lock()
	if g.recovering || g.dead || g.closed {
		g.mu.Unlock()
		return fmt.Errorf("failover: checkpoint skipped: guardian not steady")
	}
	link := g.link
	gen := g.linkGen
	w := g.maxSeq
	base := g.ckptObjects
	// Delta-capable capture always goes through the delta snapshotter (so
	// every checkpoint advances the silo's dirty watermark), but non-Full
	// deltas may only compose onto the previous committed checkpoint while
	// that base is current: same link generation and no uncommitted
	// dirty-range drain in between. Without a usable base, partial deltas
	// fall back to full per-object state.
	deltaOK := !g.cfg.FullCheckpoints
	canCompose := base != nil && g.ckptGen == gen && !g.forceFull
	if !canCompose {
		base = nil
	}
	g.mu.Unlock()

	if err := g.waitSyncDrain(gen); err != nil {
		return err
	}
	// Marker barrier: the server replies only after every async issued
	// before the marker has completed, so device state is now exactly the
	// effects of calls with seq <= w.
	if err := g.probeMarker(link); err != nil {
		return err
	}

	var objects map[marshal.Handle][]byte
	var deltas []marshal.ObjectDelta // non-nil when the capture was incremental
	if link.Ctx != nil && link.Adapter != nil {
		if ds, ok := link.Adapter.(DeltaSnapshotter); ok && deltaOK {
			// Draining dirty ranges moves the silo's watermark, so if this
			// checkpoint does not commit the next one must not compose.
			g.mu.Lock()
			g.forceFull = true
			g.mu.Unlock()
			objects, deltas = g.localDeltaSnapshot(link, ds, base)
		}
		if objects == nil {
			objects = make(map[marshal.Handle][]byte)
			var snapErr error
			link.Ctx.Handles.ForEach(func(h marshal.Handle, obj any) {
				if snapErr != nil {
					return
				}
				state, stateful, err := link.Adapter.SnapshotObject(obj)
				if err != nil {
					snapErr = err
					return
				}
				if stateful {
					objects[h] = state
				}
			})
			if snapErr != nil {
				return fmt.Errorf("failover: checkpoint snapshot: %w", snapErr)
			}
		}
	} else if link.WireReplay && link.EP != nil {
		// Wire-only link: the objects live on a remote host — snapshot them
		// with a control call so a cross-host failover can restore untracked
		// device state (buffer contents) on the replacement.
		if deltaOK {
			g.mu.Lock()
			g.forceFull = true
			g.mu.Unlock()
			objects, deltas = g.wireSnapshotDelta(link, base)
		}
		if objects == nil {
			var err error
			if objects, err = g.wireSnapshot(link); err != nil {
				return fmt.Errorf("failover: checkpoint: %w", err)
			}
		}
	}

	g.mu.Lock()
	// Recheck the full steady-state condition, not just the link generation:
	// a recovery that started after the snapshot round-trip completed has
	// already captured the OLD watermark for replay, but linkGen only
	// advances when the replacement link is installed. Committing (and
	// announcing) the new watermark here would make the guest trim retained
	// frames the in-flight replay does not cover — losing their effects on
	// the replacement server.
	if g.recovering || g.dead || g.closed || g.linkGen != gen {
		g.mu.Unlock()
		return fmt.Errorf("failover: checkpoint aborted by recovery")
	}
	g.ckptObjects = objects
	g.ckptW = w
	g.ckptGen = gen
	g.forceFull = false
	g.sinceCkpt = 0
	g.stats.Checkpoints++
	g.stats.LastWatermark = w
	var footprint uint64
	for _, state := range objects {
		footprint += uint64(len(state))
	}
	shipped := footprint
	if deltas != nil {
		shipped = 0
		for _, d := range deltas {
			shipped += uint64(d.DeltaBytes())
		}
		if canCompose {
			g.stats.DeltaCheckpoints++
		}
	}
	g.stats.LastCkptBytes = shipped
	g.stats.LastCkptFootprint = footprint
	// Destroy records at or below the watermark can never be resubmitted
	// (the guest trims its window to seq > w); drop them.
	for seq, d := range g.destroys {
		if seq <= w && d.pruned {
			delete(g.destroys, seq)
		}
	}
	epoch := g.epoch
	if g.cfg.Mirror != nil {
		sent := false
		if deltas != nil {
			// A delta-capable sink applies the ranges to its own held base,
			// so mirror traffic scales with touched bytes too; a sink that
			// cannot compose (missing base) reports false and gets the
			// composed full set instead.
			if ds := g.cfg.Sink.Delta; ds != nil {
				sent = ds.MirrorCheckpointDelta(epoch, w, deltas)
			}
		}
		if !sent {
			g.cfg.Mirror.MirrorCheckpoint(epoch, w, objects)
		}
	}
	g.mu.Unlock()

	g.sendNorth(EncodeControl(CtrlCheckpoint, epoch, w))
	return nil
}

// localDeltaSnapshot captures an incremental checkpoint through the
// in-process adapter: each stateful object's dirty ranges drain into a
// delta that composes onto the previous checkpoint's state for that
// handle. An object absent from the base (created since the last
// checkpoint) that does not self-report Full snapshots in full. Any
// failure returns nil — the caller falls back to a full capture, which is
// always safe because a drain only moves the silo's dirty watermark
// earlier than the full snapshot that subsumes it.
func (g *Guardian) localDeltaSnapshot(link ServerLink, ds DeltaSnapshotter, base map[marshal.Handle][]byte) (map[marshal.Handle][]byte, []marshal.ObjectDelta) {
	objects := make(map[marshal.Handle][]byte)
	deltas := make([]marshal.ObjectDelta, 0, len(base))
	ok := true
	link.Ctx.Handles.ForEach(func(h marshal.Handle, obj any) {
		if !ok {
			return
		}
		d, stateful, err := ds.SnapshotObjectDelta(obj)
		if err != nil {
			ok = false
			return
		}
		if !stateful {
			return
		}
		d.Handle = h
		if _, has := base[h]; !has && !d.Full {
			state, stateful2, serr := link.Adapter.SnapshotObject(obj)
			if serr != nil || !stateful2 {
				ok = false
				return
			}
			d = marshal.FullDelta(h, state)
		}
		state, aerr := marshal.ApplyObjectDelta(base[h], d)
		if aerr != nil {
			ok = false
			return
		}
		objects[h] = state
		deltas = append(deltas, d)
	})
	if !ok {
		return nil, nil
	}
	return objects, deltas
}

// wireSnapshotDelta captures an incremental checkpoint over the wire: one
// FuncSnapshotDelta control call returns every stateful object's dirty
// ranges, composed here onto the previous checkpoint's state. Any failure
// — including StatusDenied from a server without delta support and a
// missing base for a freshly created object — returns nil and the caller
// falls back to a full wire snapshot (safe for the same drain-subsumption
// reason as the local path).
func (g *Guardian) wireSnapshotDelta(link ServerLink, base map[marshal.Handle][]byte) (map[marshal.Handle][]byte, []marshal.ObjectDelta) {
	rep, err := g.ctrlCallReply(link, marshal.FuncSnapshotDelta, nil)
	if err != nil || rep.Status != marshal.StatusOK || rep.Ret.Kind != marshal.KindBytes {
		return nil, nil
	}
	deltas, err := marshal.DecodeObjectDeltas(rep.Ret.Bytes)
	if err != nil {
		return nil, nil
	}
	objects := make(map[marshal.Handle][]byte, len(deltas))
	for _, d := range deltas {
		state, aerr := marshal.ApplyObjectDelta(base[d.Handle], d)
		if aerr != nil {
			return nil, nil
		}
		objects[d.Handle] = state
	}
	return objects, deltas
}

// drainSyncs waits until every forwarded sync call has been answered,
// reporting false if the link changed (recovery, death, close) meanwhile.
// Used to serialize resubmitted calls into original program order; woken
// by syncDoneLocked each time the in-flight set empties.
func (g *Guardian) drainSyncs(gen int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.linkGen != gen || g.recovering || g.closed || g.dead {
			return false
		}
		if len(g.inflightSync) == 0 {
			return true
		}
		g.cond.Wait()
	}
}

// syncDoneLocked retires one answered sync call and wakes resubmission
// serialization when the in-flight set drains.
func (g *Guardian) syncDoneLocked(seq uint64) {
	delete(g.inflightSync, seq)
	if len(g.inflightSync) == 0 {
		g.cond.Broadcast()
	}
}

// waitSyncDrain blocks until every forwarded sync call has been answered.
func (g *Guardian) waitSyncDrain(gen int) error {
	for {
		g.mu.Lock()
		n := len(g.inflightSync)
		aborted := g.linkGen != gen || g.recovering || g.closed || g.dead
		g.mu.Unlock()
		if aborted {
			return fmt.Errorf("failover: quiesce aborted by recovery")
		}
		if n == 0 {
			return nil
		}
		g.clk.Sleep(200 * time.Microsecond)
	}
}

// newMarkerWaiter allocates a marker-space sequence number and registers a
// reply waiter for it. The channel is buffered so the downlink's reply
// delivery never blocks on a waiter that timed out.
func (g *Guardian) newMarkerWaiter() (uint64, chan *marshal.Reply) {
	g.markerMu.Lock()
	g.markerN++
	id := marshal.MarkerSeqBase + g.markerN
	ch := make(chan *marshal.Reply, 1)
	g.markerWaiters[id] = ch
	g.markerMu.Unlock()
	return id, ch
}

// probeMarker sends one marker call south and waits for its reply within
// the liveness timeout; a recovery starting meanwhile aborts the wait.
func (g *Guardian) probeMarker(link ServerLink) error {
	g.mu.Lock()
	abort := g.abort
	g.mu.Unlock()
	id, ch := g.newMarkerWaiter()

	cleanup := func() {
		g.markerMu.Lock()
		delete(g.markerWaiters, id)
		g.markerMu.Unlock()
	}

	marker := marshal.EncodeCall(&marshal.Call{Seq: id, Func: markerFunc})
	if err := g.sendSouth(link, marshal.EncodeBatch([][]byte{marker})); err != nil {
		cleanup()
		return err
	}

	timeout := make(chan struct{})
	stop := g.clk.AfterFunc(g.cfg.LivenessTimeout, func() { close(timeout) })
	defer stop()
	select {
	case <-ch:
		return nil
	case <-timeout:
		cleanup()
		return fmt.Errorf("failover: marker unanswered after %v", g.cfg.LivenessTimeout)
	case <-abort:
		cleanup()
		return fmt.Errorf("failover: marker aborted by recovery")
	case <-g.done:
		cleanup()
		return fmt.Errorf("failover: guardian closed")
	}
}

// ---------------------------------------------------------------------------
// Liveness probing.

func (g *Guardian) heartbeat() {
	for {
		g.clk.Sleep(g.cfg.HeartbeatEvery)
		select {
		case <-g.done:
			return
		default:
		}
		g.mu.Lock()
		busy := g.recovering || g.dead || g.closed
		link := g.link
		gen := g.linkGen
		g.mu.Unlock()
		if busy {
			if g.isDead() {
				return
			}
			continue
		}
		idle := g.clk.Now().UnixNano()-g.lastRecv.Load() >= int64(g.cfg.HeartbeatEvery)
		if !idle {
			continue
		}
		if g.cfg.AdaptiveCheckpoint {
			// An idle link is the cheapest moment to cut a checkpoint that
			// was deferred while the device was busy. Its marker barrier
			// doubles as the liveness probe.
			g.mu.Lock()
			overdue := g.cfg.CheckpointEvery > 0 && g.sinceCkpt >= g.cfg.CheckpointEvery &&
				!g.recovering && !g.dead && !g.closed
			g.mu.Unlock()
			if overdue {
				g.quiesceMu.Lock()
				err := g.checkpoint()
				g.quiesceMu.Unlock()
				if err != nil {
					g.recover(gen, err)
				}
				continue
			}
		}
		if err := g.probeMarker(link); err != nil {
			// A deaf link (silent drops) produces no transport error; the
			// unanswered marker is the only failure signal.
			g.recover(gen, err)
		}
	}
}

func (g *Guardian) isDead() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dead || g.closed
}

// ---------------------------------------------------------------------------
// Recovery.

// recover rebuilds the server side after gen's link failed: bump the epoch
// (fencing stale frames at the router), dial a replacement under the
// backoff budget, replay the filtered shadow log onto it, then announce the
// new epoch north so the guest resubmits its unacked window.
func (g *Guardian) recover(gen int, cause error) {
	g.mu.Lock()
	if g.linkGen != gen || g.recovering || g.closed || g.dead {
		g.mu.Unlock()
		return // someone else already recovered (or is recovering) this link
	}
	g.recovering = true
	// Abort in-flight marker waits immediately: their replies died with
	// the server, and a checkpoint blocked on one holds quiesceMu — which
	// would stall the uplink (and the guest's resubmission) for the full
	// liveness timeout.
	close(g.abort)
	g.epoch++
	epoch := g.epoch
	oldEP := g.link.EP
	w := g.ckptW
	objects := g.ckptObjects
	log := g.filteredLogLocked(w)
	g.mu.Unlock()

	start := g.clk.Now()
	if g.cfg.OnEpoch != nil {
		// Fence first: the router drops stale-epoch frames from here on,
		// so nothing sent under the old epoch can reach the new server.
		g.cfg.OnEpoch(epoch)
	}
	if oldEP != nil {
		transport.Sever(oldEP)
	}

	series := g.bo.Series()
	for {
		link, err := g.dial()
		if err == nil {
			err = g.replayOnto(link, log, objects)
			if err != nil && link.EP != nil {
				transport.Sever(link.EP)
			}
		}
		if err == nil {
			g.finishRecovery(link, epoch, w, start)
			return
		}
		d, ok := series.Next()
		if !ok {
			g.die(fmt.Errorf("failover: recovery abandoned after %v (cause: %w; last: %v)", series.Spent(), cause, err))
			return
		}
		select {
		case <-g.done:
			return
		default:
		}
		g.clk.Sleep(d)
	}
}

// filteredLogLocked derives the replay log for a recovery at watermark w.
// Replay runs strictly up to the watermark so the original order between
// creates, configs and modifies is preserved — a create past w may depend
// on a modify past w (a kernel created from a freshly built program), and
// only the guest's in-order window resubmission can re-execute that
// correctly:
//
//   - confirmed creates and configs at or below w replay and rebind to the
//     guest's handle values;
//   - modifies at or below w replay in place;
//   - everything past w — and any unconfirmed create/config — is left to
//     the guest's resubmission, which re-executes the window in true
//     sequence order.
func (g *Guardian) filteredLogLocked(w uint64) []server.RecordedCall {
	out := make([]server.RecordedCall, 0, len(g.entries))
	for _, rc := range g.entries {
		if rc.Seq > w {
			continue
		}
		fd, ok := g.desc.ByID(rc.Func)
		if !ok {
			continue
		}
		switch fd.Track.Kind {
		case spec.TrackCreate, spec.TrackConfig:
			if g.replySeen[rc.Seq] {
				out = append(out, *rc)
			}
		case spec.TrackModify:
			out = append(out, *rc)
		}
	}
	// Modifies re-recorded during a past resubmission append after older
	// kept entries; replay must run in true guest sequence order.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// replayOnto reconstructs accelerator state on a fresh link: recorded calls
// re-execute and rebind, then stateful objects restore from the checkpoint.
func (g *Guardian) replayOnto(link ServerLink, log []server.RecordedCall, objects map[marshal.Handle][]byte) error {
	if link.Server == nil || link.Ctx == nil {
		if link.WireReplay && link.EP != nil {
			return g.replayWire(link, log, objects)
		}
		return nil // wire-only link without replay support: reconnect only
	}
	snap := &migrate.Snapshot{
		VM:      link.Ctx.VM,
		Name:    link.Ctx.Name,
		Log:     log,
		Objects: objects,
	}
	// Objects destroyed after the checkpoint have no recreated handle;
	// skip their state instead of failing the whole recovery.
	_, err := migrate.RestoreWith(snap, link.Server, link.Ctx, link.Adapter, migrate.RestoreOptions{
		SkipUnknownObjects: true,
	})
	return err
}

// replayWire is migrate.RestoreWith spoken over the wire: the recorded log
// re-executes on the remote server call by call, FuncRebind control calls
// move each recreated object back under the guest's handle values, and
// FuncRestore pushes the checkpointed object state. It runs before the
// link's pumps start, so it owns the endpoint and round-trips directly.
// All frames use marker-space sequence numbers: a reply that somehow
// outlives this phase is dropped by the downlink's marker filter instead
// of surfacing as a phantom guest reply.
func (g *Guardian) replayWire(link ServerLink, log []server.RecordedCall, objects map[marshal.Handle][]byte) error {
	roundTrip := func(fn uint32, flags uint16, args []marshal.Value) (*marshal.Reply, error) {
		g.markerMu.Lock()
		g.markerN++
		id := marshal.MarkerSeqBase + g.markerN
		g.markerMu.Unlock()
		call := &marshal.Call{Seq: id, Func: fn, Flags: flags, Args: args}
		if err := link.EP.Send(marshal.EncodeBatch([][]byte{marshal.EncodeCall(call)})); err != nil {
			return nil, err
		}
		for {
			frame, err := link.EP.Recv()
			if err != nil {
				return nil, err
			}
			rep, err := marshal.DecodeReply(frame)
			if err != nil || rep.Seq != id {
				continue // residue from the link's previous life; skip
			}
			return rep, nil
		}
	}
	for i := range log {
		rc := &log[i]
		fd, ok := g.desc.ByID(rc.Func)
		if !ok {
			continue
		}
		rep, err := roundTrip(rc.Func, marshal.FlagReplay, rc.Args)
		if err != nil {
			return err
		}
		if rep.Status != marshal.StatusOK {
			return fmt.Errorf("failover: wire replay of %s failed: %s", fd.Name, rep.Err)
		}
		for _, p := range rebindPairs(fd, rc, rep) {
			rrep, err := roundTrip(marshal.FuncRebind, 0, []marshal.Value{
				marshal.HandleVal(p.fresh), marshal.HandleVal(p.recorded),
			})
			if err != nil {
				return err
			}
			if rrep.Status != marshal.StatusOK {
				return fmt.Errorf("failover: wire rebind %d->%d failed: %s", p.fresh, p.recorded, rrep.Err)
			}
		}
	}
	for h, state := range objects {
		rep, err := roundTrip(marshal.FuncRestore, 0, []marshal.Value{
			marshal.HandleVal(h), marshal.BytesVal(state),
		})
		if err != nil {
			return err
		}
		// Ret 0 means the handle no longer exists (destroyed after the
		// checkpoint) — the SkipUnknownObjects rule, not a failure.
		if rep.Status != marshal.StatusOK {
			return fmt.Errorf("failover: wire restore of handle %d failed: %s", h, rep.Err)
		}
	}
	return nil
}

// finishRecovery installs the fresh link and rebuilds shadow state to match
// exactly what was replayed.
func (g *Guardian) finishRecovery(link ServerLink, epoch uint32, w uint64, start time.Time) {
	g.mu.Lock()
	// Rebuild the shadow log to match the replayed state: unconfirmed
	// entries and modifies past the watermark were dropped and will be
	// re-recorded when the guest resubmits them. Completed creates/configs
	// past the watermark keep their recorded replies (the guest holds those
	// handle values) but are marked pendingRebind: their resubmitted copies
	// re-execute and the fresh handles are rebound to the recorded ones.
	kept := make([]*server.RecordedCall, 0, len(g.entries))
	bySeq := make(map[uint64]*server.RecordedCall, len(g.entries))
	replySeen := make(map[uint64]bool, len(g.entries))
	pendingRebind := make(map[uint64]struct{})
	for _, rc := range g.entries {
		fd, ok := g.desc.ByID(rc.Func)
		if !ok {
			continue
		}
		keep := false
		switch fd.Track.Kind {
		case spec.TrackCreate, spec.TrackConfig:
			keep = g.replySeen[rc.Seq]
			if keep && rc.Seq > w {
				pendingRebind[rc.Seq] = struct{}{}
			}
		case spec.TrackModify:
			keep = rc.Seq <= w
		}
		if keep {
			kept = append(kept, rc)
			bySeq[rc.Seq] = rc
			if g.replySeen[rc.Seq] {
				replySeen[rc.Seq] = true
			}
		}
	}
	g.entries = kept
	g.bySeq = bySeq
	g.replySeen = replySeen
	g.pendingRebind = pendingRebind
	g.inflightSync = make(map[uint64]struct{})
	g.abort = make(chan struct{})
	// The new server's state lineage only covers replayed calls (<= w);
	// resubmission re-forwards the window in seq order and maxSeq climbs
	// back as it does. A checkpoint cut mid-resubmission therefore cannot
	// claim a watermark past what has actually re-executed — which would
	// let the guest trim retained frames it still needs.
	g.maxSeq = w
	g.link = link
	g.linkGen++
	gen := g.linkGen
	g.recovering = false
	g.stats.Recoveries++
	g.stats.LastRecoveryPause = g.clk.Since(start)
	if g.cfg.Mirror != nil {
		// Entries the rebuild discarded stay in the mirror; rehydration
		// applies the same keep rules, so they filter out again there.
		g.cfg.Mirror.MirrorEpoch(epoch, w)
	}
	g.mu.Unlock()

	g.lastRecv.Store(g.clk.Now().UnixNano())
	go g.downlink(link, gen)
	// Announce after the link is live: the guest's resubmission batch must
	// find a working path.
	g.sendNorth(EncodeControl(CtrlRecover, epoch, w))
	g.mu.Lock()
	g.cond.Broadcast()
	g.mu.Unlock()
}

// die abandons recovery: the guest is told to surface ErrRetryable.
func (g *Guardian) die(err error) {
	g.mu.Lock()
	g.dead = true
	g.deadErr = err
	g.recovering = false
	epoch := g.epoch
	g.mu.Unlock()
	g.cond.Broadcast()
	g.sendNorth(EncodeControl(CtrlDead, epoch, 0))
}

// DeadErr returns the terminal error if recovery was abandoned, else nil.
func (g *Guardian) DeadErr() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.deadErr
}
