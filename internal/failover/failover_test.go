package failover

import (
	"testing"
	"time"

	"ava/internal/marshal"
)

func TestBackoffDeterministicSchedule(t *testing.T) {
	cfg := BackoffConfig{Base: time.Millisecond, Cap: 16 * time.Millisecond, Budget: time.Second, Seed: 7}
	a := NewBackoff(cfg).Series()
	b := NewBackoff(cfg).Series()
	for i := 0; i < 10; i++ {
		da, oka := a.Next()
		db, okb := b.Next()
		if da != db || oka != okb {
			t.Fatalf("step %d: schedules diverge: %v/%v vs %v/%v", i, da, oka, db, okb)
		}
	}
}

func TestBackoffShape(t *testing.T) {
	s := NewBackoff(BackoffConfig{Base: 4 * time.Millisecond, Cap: 32 * time.Millisecond, Budget: time.Hour, Seed: 1}).Series()
	step := 4 * time.Millisecond
	for i := 0; i < 8; i++ {
		d, ok := s.Next()
		if !ok {
			t.Fatalf("step %d: unexpectedly exhausted", i)
		}
		// Equal jitter: delay in [step/2, step].
		if d < step/2 || d > step {
			t.Fatalf("step %d: delay %v outside [%v, %v]", i, d, step/2, step)
		}
		if step < 32*time.Millisecond {
			step *= 2
		}
	}
}

func TestBackoffBudgetExhaustion(t *testing.T) {
	s := NewBackoff(BackoffConfig{Base: 10 * time.Millisecond, Cap: 10 * time.Millisecond, Budget: 25 * time.Millisecond, Seed: 3}).Series()
	var total time.Duration
	steps := 0
	for {
		d, ok := s.Next()
		if !ok {
			break
		}
		total += d
		steps++
		if steps > 100 {
			t.Fatal("budget never exhausted")
		}
	}
	if total > 25*time.Millisecond {
		t.Fatalf("series slept %v, over the 25ms budget", total)
	}
	if got := s.Spent(); got != total {
		t.Fatalf("Spent() = %v, want %v", got, total)
	}
	// Exhaustion is sticky.
	if _, ok := s.Next(); ok {
		t.Fatal("Next succeeded after exhaustion")
	}
}

func TestControlRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		kind  byte
		epoch uint32
		w     uint64
	}{
		{CtrlCheckpoint, 0, 0},
		{CtrlCheckpoint, 3, 4096},
		{CtrlRecover, 1, 128},
		{CtrlDead, 9, 0},
	} {
		frame := EncodeControl(tc.kind, tc.epoch, tc.w)
		rep, err := marshal.DecodeReply(frame)
		if err != nil {
			t.Fatalf("kind %d: decode reply: %v", tc.kind, err)
		}
		if rep.Seq < marshal.CtrlSeqBase || rep.Seq >= marshal.MarkerSeqBase {
			t.Fatalf("kind %d: seq %#x outside control range", tc.kind, rep.Seq)
		}
		kind, epoch, w, ok := DecodeControl(rep)
		if !ok {
			t.Fatalf("kind %d: DecodeControl rejected its own encoding", tc.kind)
		}
		if kind != tc.kind || epoch != tc.epoch || w != tc.w {
			t.Fatalf("round trip mismatch: got (%d,%d,%d) want (%d,%d,%d)",
				kind, epoch, w, tc.kind, tc.epoch, tc.w)
		}
	}
}

func TestControlRejectsOrdinaryReplies(t *testing.T) {
	rep := &marshal.Reply{Seq: 42, Status: marshal.StatusOK, Ret: marshal.BytesVal(make([]byte, 13))}
	if _, _, _, ok := DecodeControl(rep); ok {
		t.Fatal("DecodeControl accepted an ordinary reply")
	}
	bad := &marshal.Reply{Seq: marshal.CtrlSeqBase | 1, Status: marshal.StatusOK, Ret: marshal.Int(5)}
	if _, _, _, ok := DecodeControl(bad); ok {
		t.Fatal("DecodeControl accepted a malformed payload")
	}
}
