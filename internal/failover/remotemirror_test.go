package failover

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"ava/internal/backoff"
	"ava/internal/marshal"
	"ava/internal/transport"
)

// mirrorTestHost is a MirrorServer "machine" a test can SIGKILL: kill
// closes the accept socket and severs every established replication
// stream, exactly what a dead host presents to its guardians.
type mirrorTestHost struct {
	srv *MirrorServer
	l   *transport.Listener

	mu  sync.Mutex
	eps []transport.Endpoint
}

func startMirrorHost(t *testing.T, addr string) *mirrorTestHost {
	t.Helper()
	l, err := transport.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	return serveMirrorOn(t, l)
}

func serveMirrorOn(t *testing.T, l *transport.Listener) *mirrorTestHost {
	t.Helper()
	h := &mirrorTestHost{srv: NewMirrorServer(), l: l}
	go func() {
		for {
			ep, err := l.Accept()
			if err != nil {
				return
			}
			h.mu.Lock()
			h.eps = append(h.eps, ep)
			h.mu.Unlock()
			go h.srv.ServeConn(ep)
		}
	}()
	t.Cleanup(h.kill)
	return h
}

func (h *mirrorTestHost) addr() string { return h.l.Addr() }

func (h *mirrorTestHost) kill() {
	h.l.Close()
	h.mu.Lock()
	eps := append([]transport.Endpoint(nil), h.eps...)
	h.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}

func quickBackoff() backoff.Config {
	return backoff.Config{Base: time.Millisecond, Cap: 5 * time.Millisecond, Budget: 200 * time.Millisecond, Seed: 3}
}

// sameMirrorState compares the fields rehydration depends on.
func sameMirrorState(a, b *MirrorState) bool {
	if a.W != b.W || a.Epoch != b.Epoch || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		if !reflect.DeepEqual(a.Entries[i], b.Entries[i]) {
			return false
		}
	}
	return reflect.DeepEqual(a.ReplySeen, b.ReplySeen) && reflect.DeepEqual(a.Objects, b.Objects)
}

// The full replication path: LogSink mutations stream over the AVAM wire,
// and FetchMirrorState retrieves a byte-equal copy of the staging state —
// what a replacement guardian on another machine would rehydrate from.
func TestRemoteMirrorReplicatesAndFetches(t *testing.T) {
	h := startMirrorHost(t, "127.0.0.1:0")
	srv := h.srv
	rm := NewRemoteMirror(h.addr(), RemoteMirrorConfig{VM: 7, Name: "vm-seven", Backoff: quickBackoff()})
	defer rm.Close()

	rm.MirrorAppend(rec(1, 10, marshal.BytesVal([]byte{1, 2})))
	done := rec(1, 10)
	done.Ret = marshal.Int(0)
	done.Outs = []marshal.Value{marshal.BytesVal([]byte{3})}
	rm.MirrorReply(done)
	rm.MirrorAppend(rec(2, 0, marshal.HandleVal(10)))
	rm.MirrorCheckpoint(1, 1, map[marshal.Handle][]byte{10: {7, 7, 7}})
	rm.MirrorAppend(rec(3, 11))
	rm.MirrorDrop(3)

	if !rm.Flush(2 * time.Second) {
		t.Fatal("mirror did not drain")
	}
	if rm.Acked() == 0 {
		t.Fatal("no batch was ever acked")
	}

	want := rm.State()
	if got := srv.State(7); !sameMirrorState(want, got) {
		t.Fatalf("remote state diverged:\n remote %+v\n local  %+v", got, want)
	}
	fetched, err := FetchMirrorState(h.addr(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMirrorState(want, fetched) {
		t.Fatalf("fetched state diverged:\n fetched %+v\n local   %+v", fetched, want)
	}

	// The admin snapshot names the VM from the hello.
	snap := srv.Snapshot()
	if len(snap) != 1 || snap[0].VM != 7 || snap[0].Name != "vm-seven" || snap[0].Entries != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// Delta checkpoints replicate incrementally and converge; a full resync
// after the host restarts (empty state, same address) restores the
// invariant without guardian involvement.
func TestRemoteMirrorDeltaAndResyncAfterHostRestart(t *testing.T) {
	h := startMirrorHost(t, "127.0.0.1:0")
	srv := h.srv
	addr := h.addr()
	rm := NewRemoteMirror(addr, RemoteMirrorConfig{VM: 1, Backoff: quickBackoff()})
	defer rm.Close()

	rm.MirrorAppend(rec(1, 10))
	rm.MirrorCheckpoint(1, 1, map[marshal.Handle][]byte{10: {0, 0, 0, 0}})
	if !rm.Flush(2 * time.Second) {
		t.Fatal("initial state did not replicate")
	}

	// An incremental checkpoint riding the established stream: one dirty
	// byte at offset 1 of a 4-byte object.
	delta := []marshal.ObjectDelta{{
		Handle: 10, BaseLen: 4,
		Ranges: []marshal.DeltaRange{{Off: 1, Bytes: []byte{9}}},
	}}
	if !rm.MirrorCheckpointDelta(2, 2, delta) {
		t.Fatal("delta refused against a matching base")
	}
	if !rm.Flush(2 * time.Second) {
		t.Fatal("delta did not replicate")
	}
	if got := srv.State(1); got.W != 2 || got.Objects[10][1] != 9 {
		t.Fatalf("delta not composed remotely: %+v", got)
	}

	// SIGKILL the mirror host; a replacement process binds the same address
	// with empty state.
	h.kill()
	var l2 *transport.Listener
	for deadline := time.Now().Add(2 * time.Second); ; {
		var err error
		if l2, err = transport.Listen(addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Skipf("cannot rebind %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	h2 := serveMirrorOn(t, l2)

	// The next mutation reconnects and resyncs the full staging state.
	rm.MirrorAppend(rec(5, 12))
	if !rm.Flush(5 * time.Second) {
		t.Fatal("resync after host restart did not drain")
	}
	if !sameMirrorState(rm.State(), h2.srv.State(1)) {
		t.Fatalf("replacement host did not converge:\n remote %+v\n local  %+v", h2.srv.State(1), rm.State())
	}
}

// A dead mirror host must never stall the guardian: every LogSink call
// returns promptly and the staging state stays authoritative.
func TestRemoteMirrorDeadHostNeverBlocks(t *testing.T) {
	rm := NewRemoteMirror("127.0.0.1:1", RemoteMirrorConfig{VM: 1, Backoff: quickBackoff()})
	defer rm.Close()

	start := time.Now()
	for i := uint64(1); i <= 100; i++ {
		rm.MirrorAppend(rec(i, marshal.Handle(i)))
	}
	rm.MirrorCheckpoint(1, 50, map[marshal.Handle][]byte{1: {1}})
	if spent := time.Since(start); spent > time.Second {
		t.Fatalf("mutations against a dead mirror host took %v", spent)
	}
	if rm.State().W != 50 {
		t.Fatal("staging state lost a mutation")
	}
	if rm.Flush(20 * time.Millisecond) {
		t.Fatal("Flush claimed durability on a dead host")
	}
}

// The -race hammer: LogSink traffic from several goroutines (serialized
// by a stand-in for the guardian's state lock, which is the sink
// contract) races against lock-free State/Acked/Snapshot readers and the
// RemoteMirror's own pump goroutine.
func TestMirrorConcurrentHammer(t *testing.T) {
	h := startMirrorHost(t, "127.0.0.1:0")
	srv := h.srv
	rm := NewRemoteMirror(h.addr(), RemoteMirrorConfig{VM: 3, Backoff: quickBackoff()})
	defer rm.Close()
	mm := NewMemoryMirror()

	sinks := []LogSink{mm, rm}
	var writers, readers sync.WaitGroup
	var guardianMu sync.Mutex // LogSink calls are serialized under the guardian's lock
	stop := make(chan struct{})

	// Writers: appends, replies, drops, checkpoints over disjoint seq
	// ranges per goroutine so the traffic stays valid while interleaving.
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			base := uint64(g) * 1000
			for i := uint64(1); i <= 50; i++ {
				seq := base + i
				rc := rec(seq, marshal.Handle(seq), marshal.BytesVal([]byte{byte(g), byte(i)}))
				guardianMu.Lock()
				for _, s := range sinks {
					s.MirrorAppend(rc)
				}
				switch rng.Intn(3) {
				case 0:
					done := rec(seq, marshal.Handle(seq))
					done.Ret = marshal.Int(0)
					for _, s := range sinks {
						s.MirrorReply(done)
					}
				case 1:
					for _, s := range sinks {
						s.MirrorDrop(seq)
					}
				case 2:
					for _, s := range sinks {
						s.MirrorCheckpoint(uint32(g), seq, map[marshal.Handle][]byte{marshal.Handle(seq): {byte(i)}})
					}
				}
				guardianMu.Unlock()
			}
		}(g)
	}

	// Readers: state snapshots from every side while writers run.
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = mm.State()
				_ = rm.State()
				_ = rm.Acked()
				_ = srv.Snapshot()
				_ = srv.State(3)
			}
		}()
	}

	// Wait for the writers, stop the readers, then require convergence.
	wgWait := make(chan struct{})
	go func() { writers.Wait(); close(wgWait) }()
	select {
	case <-wgWait:
	case <-time.After(10 * time.Second):
		t.Fatal("hammer wedged")
	}
	close(stop)
	readers.Wait()
	if !rm.Flush(5 * time.Second) {
		t.Fatal("remote mirror did not drain after the hammer")
	}
	if !sameMirrorState(rm.State(), srv.State(3)) {
		t.Fatal("remote mirror did not converge to staging after the hammer")
	}
}
