package failover

import (
	"encoding/binary"
	"fmt"

	"ava/internal/marshal"
	"ava/internal/server"
)

// Mirror wire protocol: the payload layer of transport's AVAM frames. A
// RemoteMirror streams its guardian's shadow-log mutations to a mirror
// host as batches of sub-ops; the mirror host applies them to a per-VM
// MemoryMirror and acks each batch by opseq, giving the sender a
// replication watermark. A replacement guardian on any machine fetches the
// accumulated MirrorState back over the same connection kind.
//
// The sub-op payloads reuse the marshal call/reply codecs — an append IS
// the recorded call, a reply IS the recorded reply — so the mirror stream
// inherits the data plane's wire discipline instead of inventing a second
// serialization.

// Frame-level mirror ops (the op byte of transport.EncodeMirrorFrame).
const (
	// MirrorOpHello opens a session: payload = VM name. Acked.
	MirrorOpHello byte = 1
	// MirrorOpBatch carries sub-ops: payload = marshal.EncodeBatch of
	// sub-frames. Acked with ok=false if any sub-op failed to apply.
	MirrorOpBatch byte = 2
	// MirrorOpState requests the VM's accumulated state; answered with
	// MirrorOpStateResp instead of an ack.
	MirrorOpState byte = 3
	// MirrorOpAck is the server's per-frame verdict: opseq echoes the
	// acked frame, payload = [ok u8].
	MirrorOpAck byte = 4
	// MirrorOpStateResp answers MirrorOpState: payload = EncodeMirrorState.
	MirrorOpStateResp byte = 5
)

// Batch sub-ops: each sub-frame is [subop u8][payload].
const (
	mirrorSubAppend     byte = 1 // [created u64] + EncodeCall(Seq, Func, Args)
	mirrorSubReply      byte = 2 // [created u64] + EncodeReply(Seq, Ret, Outs)
	mirrorSubDrop       byte = 3 // [seq u64]
	mirrorSubPrune      byte = 4 // [handle u64]
	mirrorSubCheckpoint byte = 5 // [epoch u32][w u64] + EncodeObjectStates
	mirrorSubDelta      byte = 6 // [epoch u32][w u64] + EncodeObjectDeltas
	mirrorSubEpoch      byte = 7 // [epoch u32][w u64]
	mirrorSubReset      byte = 8 // empty: discard the VM's state (resync follows)
)

func subAppend(rc *server.RecordedCall) []byte {
	// Created rides along even though the guardian normally learns it from
	// the reply: the remote mirror must converge to the staging mirror
	// byte-for-byte, whatever the sink was fed.
	body := marshal.EncodeCall(&marshal.Call{Seq: rc.Seq, Func: rc.Func, Args: rc.Args})
	out := make([]byte, 9, 9+len(body))
	out[0] = mirrorSubAppend
	binary.LittleEndian.PutUint64(out[1:], uint64(rc.Created))
	return append(out, body...)
}

func subReply(rc *server.RecordedCall) []byte {
	body := marshal.EncodeReply(&marshal.Reply{Seq: rc.Seq, Status: marshal.StatusOK, Ret: rc.Ret, Outs: rc.Outs})
	out := make([]byte, 9, 9+len(body))
	out[0] = mirrorSubReply
	binary.LittleEndian.PutUint64(out[1:], uint64(rc.Created))
	return append(out, body...)
}

func subSeq(op byte, v uint64) []byte {
	var out [9]byte
	out[0] = op
	binary.LittleEndian.PutUint64(out[1:], v)
	return out[:]
}

func subMark(op byte, epoch uint32, w uint64, body []byte) []byte {
	out := make([]byte, 13, 13+len(body))
	out[0] = op
	binary.LittleEndian.PutUint32(out[1:], epoch)
	binary.LittleEndian.PutUint64(out[5:], w)
	return append(out, body...)
}

func splitMark(p []byte) (epoch uint32, w uint64, rest []byte, err error) {
	if len(p) < 12 {
		return 0, 0, nil, fmt.Errorf("failover: mirror mark truncated: %d bytes", len(p))
	}
	return binary.LittleEndian.Uint32(p), binary.LittleEndian.Uint64(p[4:]), p[12:], nil
}

// applyMirrorSub applies one decoded sub-frame to m. composed=false means
// a delta sub-op could not compose (the sender must resync with full
// state); err means the frame itself is malformed.
func applyMirrorSub(m *MemoryMirror, sub []byte) (composed bool, err error) {
	if len(sub) < 1 {
		return true, fmt.Errorf("failover: empty mirror sub-op")
	}
	op, p := sub[0], sub[1:]
	switch op {
	case mirrorSubAppend:
		if len(p) < 8 {
			return true, fmt.Errorf("failover: mirror append truncated")
		}
		created := marshal.Handle(binary.LittleEndian.Uint64(p))
		c, err := marshal.DecodeCall(p[8:])
		if err != nil {
			return true, err
		}
		m.MirrorAppend(&server.RecordedCall{Func: c.Func, Args: c.Args, Seq: c.Seq, Created: created})
	case mirrorSubReply:
		if len(p) < 8 {
			return true, fmt.Errorf("failover: mirror reply truncated")
		}
		created := marshal.Handle(binary.LittleEndian.Uint64(p))
		rep, err := marshal.DecodeReply(p[8:])
		if err != nil {
			return true, err
		}
		m.MirrorReply(&server.RecordedCall{Seq: rep.Seq, Ret: rep.Ret, Outs: rep.Outs, Created: created})
	case mirrorSubDrop:
		if len(p) < 8 {
			return true, fmt.Errorf("failover: mirror drop truncated")
		}
		m.MirrorDrop(binary.LittleEndian.Uint64(p))
	case mirrorSubPrune:
		if len(p) < 8 {
			return true, fmt.Errorf("failover: mirror prune truncated")
		}
		m.MirrorPrune(marshal.Handle(binary.LittleEndian.Uint64(p)))
	case mirrorSubCheckpoint:
		epoch, w, rest, err := splitMark(p)
		if err != nil {
			return true, err
		}
		objects, err := marshal.DecodeObjectStates(rest)
		if err != nil {
			return true, err
		}
		m.MirrorCheckpoint(epoch, w, objects)
	case mirrorSubDelta:
		epoch, w, rest, err := splitMark(p)
		if err != nil {
			return true, err
		}
		deltas, err := marshal.DecodeObjectDeltas(rest)
		if err != nil {
			return true, err
		}
		if !m.MirrorCheckpointDelta(epoch, w, deltas) {
			return false, nil
		}
	case mirrorSubEpoch:
		epoch, w, _, err := splitMark(p)
		if err != nil {
			return true, err
		}
		m.MirrorEpoch(epoch, w)
	case mirrorSubReset:
		m.reset()
	default:
		return true, fmt.Errorf("failover: unknown mirror sub-op %d", op)
	}
	return true, nil
}

// EncodeMirrorState serializes a MirrorState for the wire: the payload of
// MirrorOpStateResp, and the unit a cross-machine rehydration fetches.
func EncodeMirrorState(st *MirrorState) []byte {
	var out []byte
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[:], st.Epoch)
	binary.LittleEndian.PutUint64(hdr[4:], st.W)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(st.Entries)))
	out = append(out, hdr[:]...)
	for i := range st.Entries {
		rc := &st.Entries[i]
		call := marshal.EncodeCall(&marshal.Call{Seq: rc.Seq, Func: rc.Func, Args: rc.Args})
		reply := marshal.EncodeReply(&marshal.Reply{Seq: rc.Seq, Status: marshal.StatusOK, Ret: rc.Ret, Outs: rc.Outs})
		var eh [9]byte
		binary.LittleEndian.PutUint64(eh[:], uint64(rc.Created))
		if st.ReplySeen[rc.Seq] {
			eh[8] = 1
		}
		out = append(out, eh[:]...)
		out = appendLenPrefixed(out, call)
		out = appendLenPrefixed(out, reply)
	}
	return append(out, marshal.EncodeObjectStates(st.Objects)...)
}

func appendLenPrefixed(out, frame []byte) []byte {
	var ln [4]byte
	binary.LittleEndian.PutUint32(ln[:], uint32(len(frame)))
	return append(append(out, ln[:]...), frame...)
}

func takeLenPrefixed(b []byte) (frame, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("failover: mirror state truncated")
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) < 4+n {
		return nil, nil, fmt.Errorf("failover: mirror state truncated")
	}
	return b[4 : 4+n], b[4+n:], nil
}

// DecodeMirrorState unpacks an EncodeMirrorState payload. The returned
// state shares nothing with b.
func DecodeMirrorState(b []byte) (*MirrorState, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("failover: mirror state truncated: %d bytes", len(b))
	}
	st := &MirrorState{
		Epoch:     binary.LittleEndian.Uint32(b),
		W:         binary.LittleEndian.Uint64(b[4:]),
		ReplySeen: make(map[uint64]bool),
	}
	n := int(binary.LittleEndian.Uint32(b[12:]))
	b = b[16:]
	for i := 0; i < n; i++ {
		if len(b) < 9 {
			return nil, fmt.Errorf("failover: mirror state entry %d truncated", i)
		}
		created := marshal.Handle(binary.LittleEndian.Uint64(b))
		seen := b[8] == 1
		b = b[9:]
		var callFrame, replyFrame []byte
		var err error
		if callFrame, b, err = takeLenPrefixed(b); err != nil {
			return nil, err
		}
		if replyFrame, b, err = takeLenPrefixed(b); err != nil {
			return nil, err
		}
		c, err := marshal.DecodeCall(callFrame)
		if err != nil {
			return nil, fmt.Errorf("failover: mirror state entry %d: %w", i, err)
		}
		rep, err := marshal.DecodeReply(replyFrame)
		if err != nil {
			return nil, fmt.Errorf("failover: mirror state entry %d: %w", i, err)
		}
		st.Entries = append(st.Entries, server.RecordedCall{
			Func: c.Func, Args: c.Args, Seq: c.Seq,
			Ret: rep.Ret, Outs: rep.Outs, Created: created,
		})
		if seen {
			st.ReplySeen[c.Seq] = true
		}
	}
	objects, err := marshal.DecodeObjectStates(b)
	if err != nil {
		return nil, fmt.Errorf("failover: mirror state objects: %w", err)
	}
	st.Objects = objects
	return st, nil
}
