package failover

import "testing"

// newCadenceGuardian builds just enough guardian state to drive the
// checkpoint-cadence policy directly; no pumps run.
func newCadenceGuardian(cfg Config) *Guardian {
	return &Guardian{cfg: cfg, inflightSync: make(map[uint64]struct{})}
}

// The adaptive policy must never add a stall to a hot workload: a due
// checkpoint is deferred while sync calls are in flight, because the
// quiesce barrier would hold those calls hostage.
func TestAdaptiveCheckpointDefersWhileBusy(t *testing.T) {
	g := newCadenceGuardian(Config{CheckpointEvery: 8, AdaptiveCheckpoint: true, Retain: 4096})
	g.sinceCkpt = 8
	g.maxSeq, g.ckptW = 8, 0

	if !g.checkpointDueLocked() {
		t.Fatal("idle link at cadence: checkpoint must be due")
	}
	g.inflightSync[1] = struct{}{}
	if g.checkpointDueLocked() {
		t.Fatal("sync call in flight: a due checkpoint must be deferred, not stall the caller")
	}
	delete(g.inflightSync, 1)
	if !g.checkpointDueLocked() {
		t.Fatal("link drained: the deferred checkpoint must become due again")
	}
}

// Deferral is bounded two ways: the uncheckpointed span approaching half
// the guest's retained window, or the deferral reaching 4x the cadence.
// Past either bound the checkpoint cuts even under load, because the guest
// can no longer trim frames and recovery replay grows without limit.
func TestAdaptiveCheckpointDeferralBounds(t *testing.T) {
	g := newCadenceGuardian(Config{CheckpointEvery: 8, AdaptiveCheckpoint: true, Retain: 64})
	g.inflightSync[1] = struct{}{}

	g.sinceCkpt = 8
	g.maxSeq, g.ckptW = 8, 0
	if g.checkpointDueLocked() {
		t.Fatal("span well inside the window: must defer")
	}

	// Span reaches retain/2.
	g.maxSeq = 32
	if !g.checkpointDueLocked() {
		t.Fatal("span at half the retained window: must cut despite load")
	}

	// Deferral reaches 4x cadence with a small span.
	g.maxSeq = 8
	g.sinceCkpt = 32
	if !g.checkpointDueLocked() {
		t.Fatal("deferral at 4x cadence: must cut despite load")
	}
}

// Without AdaptiveCheckpoint the legacy behavior is unchanged: cadence
// alone decides, busy or not.
func TestFixedCadenceIgnoresLoad(t *testing.T) {
	g := newCadenceGuardian(Config{CheckpointEvery: 8})
	g.sinceCkpt = 8
	g.inflightSync[1] = struct{}{}
	if !g.checkpointDueLocked() {
		t.Fatal("fixed cadence must cut at CheckpointEvery regardless of load")
	}
	g.sinceCkpt = 7
	if g.checkpointDueLocked() {
		t.Fatal("below cadence: not due")
	}
}
