package failover

import (
	"sync"

	"ava/internal/marshal"
	"ava/internal/server"
)

// LogSink receives a live stream of the guardian's shadow-log mutations so
// replay state survives a guardian (host-stack) crash, not just an API
// server crash. Every method is invoked synchronously under the guardian's
// state lock — implementations must return quickly and must never call back
// into the guardian. A remote mirror wraps MemoryMirror behind its own
// transport pump.
type LogSink interface {
	// MirrorAppend records a newly admitted tracked call. The same seq may
	// be appended again after a recovery (a modify past the watermark being
	// re-recorded by resubmission): upsert by Seq.
	MirrorAppend(rc *server.RecordedCall)
	// MirrorReply attaches the completed reply (Ret/Outs/Created filled in)
	// to the entry with rc.Seq.
	MirrorReply(rc *server.RecordedCall)
	// MirrorDrop removes the entry with this seq (failed call, failed
	// re-execution).
	MirrorDrop(seq uint64)
	// MirrorPrune removes every entry a destroyed handle obsoletes,
	// mirroring the guardian's prune rule.
	MirrorPrune(h marshal.Handle)
	// MirrorCheckpoint advances the watermark and replaces the object
	// snapshot set after a checkpoint commits.
	MirrorCheckpoint(epoch uint32, w uint64, objects map[marshal.Handle][]byte)
	// MirrorEpoch records an epoch advance (recovery or rehydration) and
	// the watermark it recovered to.
	MirrorEpoch(epoch uint32, w uint64)
}

// DeltaSink is the optional incremental extension of LogSink: a sink that
// also implements it receives checkpoint deltas (dirty ranges only) and
// composes them onto the object states it already holds, so a remote
// mirror's checkpoint traffic scales with touched bytes. The sink must
// replace its object set with exactly the handles the delta set names —
// an absent handle means the object was destroyed. Returning false (the
// sink cannot compose, e.g. a missing or mismatched base) makes the
// guardian fall back to MirrorCheckpoint with the composed full set.
type DeltaSink interface {
	MirrorCheckpointDelta(epoch uint32, w uint64, deltas []marshal.ObjectDelta) bool
}

// SinkConfig is the one place replication wiring names its sink. Log
// receives the shadow-log stream; Delta, when non-nil, receives
// incremental checkpoints instead of full object sets. Leaving Delta nil
// auto-detects: a Log that also implements DeltaSink gets deltas. UseSink
// builds the common case.
type SinkConfig struct {
	Log   LogSink
	Delta DeltaSink
}

// UseSink wraps a sink, auto-detecting its delta capability — the
// functional-option-friendly constructor for Config.Sink.
func UseSink(s LogSink) SinkConfig {
	sc := SinkConfig{Log: s}
	if ds, ok := s.(DeltaSink); ok {
		sc.Delta = ds
	}
	return sc
}

// resolved folds the deprecated Config.Mirror value in (it wins only when
// Sink.Log is unset) and fills a nil Delta by capability detection.
func (sc SinkConfig) resolved(legacy LogSink) SinkConfig {
	if sc.Log == nil {
		sc.Log = legacy
	}
	if sc.Delta == nil && sc.Log != nil {
		if ds, ok := sc.Log.(DeltaSink); ok {
			sc.Delta = ds
		}
	}
	return sc
}

// MirrorState is a point-in-time snapshot of a mirrored shadow log — the
// payload a replacement guardian rehydrates from (Config.Restore).
type MirrorState struct {
	// Entries is the mirrored shadow log in ascending guest seq order.
	Entries []server.RecordedCall
	// ReplySeen marks entries whose recorded reply completed.
	ReplySeen map[uint64]bool
	// W is the last committed checkpoint watermark.
	W uint64
	// Objects is the stateful-object snapshot set cut at W.
	Objects map[marshal.Handle][]byte
	// Epoch is the endpoint epoch at snapshot time.
	Epoch uint32
}

// MemoryMirror is the in-process LogSink: a deep-copying replica of the
// guardian's shadow log. In a real deployment it lives in a separate
// process (or host) from the guardian it shadows; tests and single-host
// deployments embed it directly.
type MemoryMirror struct {
	mu        sync.Mutex
	entries   []*server.RecordedCall
	bySeq     map[uint64]*server.RecordedCall
	replySeen map[uint64]bool
	w         uint64
	objects   map[marshal.Handle][]byte
	epoch     uint32
}

// NewMemoryMirror builds an empty mirror.
func NewMemoryMirror() *MemoryMirror {
	return &MemoryMirror{
		bySeq:     make(map[uint64]*server.RecordedCall),
		replySeen: make(map[uint64]bool),
	}
}

func cloneRecorded(rc *server.RecordedCall) *server.RecordedCall {
	return &server.RecordedCall{
		Func:    rc.Func,
		Args:    server.CloneValues(rc.Args),
		Ret:     rc.Ret,
		Outs:    server.CloneValues(rc.Outs),
		Created: rc.Created,
		Seq:     rc.Seq,
	}
}

// MirrorAppend implements LogSink.
func (m *MemoryMirror) MirrorAppend(rc *server.RecordedCall) {
	cp := cloneRecorded(rc)
	m.mu.Lock()
	if old, ok := m.bySeq[rc.Seq]; ok {
		// Re-recorded seq (resubmission after recovery): replace in place.
		for i, e := range m.entries {
			if e == old {
				m.entries[i] = cp
				break
			}
		}
		delete(m.replySeen, rc.Seq)
	} else {
		m.entries = append(m.entries, cp)
	}
	m.bySeq[rc.Seq] = cp
	m.mu.Unlock()
}

// MirrorReply implements LogSink.
func (m *MemoryMirror) MirrorReply(rc *server.RecordedCall) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.bySeq[rc.Seq]
	if !ok {
		return
	}
	e.Ret = rc.Ret
	if e.Ret.Kind == marshal.KindBytes {
		e.Ret.Bytes = append([]byte(nil), e.Ret.Bytes...)
	}
	e.Outs = server.CloneValues(rc.Outs)
	e.Created = rc.Created
	m.replySeen[rc.Seq] = true
}

// MirrorDrop implements LogSink.
func (m *MemoryMirror) MirrorDrop(seq uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rc, ok := m.bySeq[seq]
	if !ok {
		return
	}
	delete(m.bySeq, seq)
	delete(m.replySeen, seq)
	for i, e := range m.entries {
		if e == rc {
			m.entries = append(m.entries[:i], m.entries[i+1:]...)
			break
		}
	}
}

// MirrorPrune implements LogSink.
func (m *MemoryMirror) MirrorPrune(h marshal.Handle) {
	m.mu.Lock()
	defer m.mu.Unlock()
	kept := m.entries[:0]
	for _, rc := range m.entries {
		if rc.Obsoleted(h) {
			delete(m.bySeq, rc.Seq)
			delete(m.replySeen, rc.Seq)
			continue
		}
		kept = append(kept, rc)
	}
	m.entries = kept
}

// MirrorCheckpoint implements LogSink.
func (m *MemoryMirror) MirrorCheckpoint(epoch uint32, w uint64, objects map[marshal.Handle][]byte) {
	cp := make(map[marshal.Handle][]byte, len(objects))
	for h, state := range objects {
		cp[h] = append([]byte(nil), state...)
	}
	m.mu.Lock()
	m.epoch = epoch
	m.w = w
	m.objects = cp
	m.mu.Unlock()
}

// MirrorCheckpointDelta implements DeltaSink: it composes the deltas onto
// the mirror's held object states. All-or-nothing — a single object that
// fails to compose rejects the whole delta set, leaving the previous
// checkpoint intact for the guardian's full-set fallback.
func (m *MemoryMirror) MirrorCheckpointDelta(epoch uint32, w uint64, deltas []marshal.ObjectDelta) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := make(map[marshal.Handle][]byte, len(deltas))
	for _, d := range deltas {
		state, err := marshal.ApplyObjectDelta(m.objects[d.Handle], d)
		if err != nil {
			return false
		}
		cp[d.Handle] = state
	}
	m.epoch = epoch
	m.w = w
	m.objects = cp
	return true
}

// MirrorEpoch implements LogSink.
func (m *MemoryMirror) MirrorEpoch(epoch uint32, w uint64) {
	m.mu.Lock()
	m.epoch = epoch
	m.w = w
	m.mu.Unlock()
}

// reset clears the mirror back to empty — the receiving end of a remote
// mirror resync, which always pushes full state right after.
func (m *MemoryMirror) reset() {
	m.mu.Lock()
	m.entries = nil
	m.bySeq = make(map[uint64]*server.RecordedCall)
	m.replySeen = make(map[uint64]bool)
	m.w = 0
	m.objects = nil
	m.epoch = 0
	m.mu.Unlock()
}

// Len reports how many shadow-log entries the mirror holds.
func (m *MemoryMirror) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// State snapshots the mirror for rehydration. The returned state shares
// nothing with the mirror's internals.
func (m *MemoryMirror) State() *MirrorState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := &MirrorState{
		Entries:   make([]server.RecordedCall, 0, len(m.entries)),
		ReplySeen: make(map[uint64]bool, len(m.replySeen)),
		W:         m.w,
		Objects:   make(map[marshal.Handle][]byte, len(m.objects)),
		Epoch:     m.epoch,
	}
	for _, rc := range m.entries {
		st.Entries = append(st.Entries, *cloneRecorded(rc))
	}
	for seq := range m.replySeen {
		st.ReplySeen[seq] = true
	}
	for h, state := range m.objects {
		st.Objects[h] = append([]byte(nil), state...)
	}
	return st
}
