package failover

import (
	"bytes"
	"testing"

	"ava/internal/marshal"
	"ava/internal/server"
)

func rec(seq uint64, created marshal.Handle, args ...marshal.Value) *server.RecordedCall {
	return &server.RecordedCall{Func: 1, Seq: seq, Created: created, Args: args}
}

func mirrorSeqs(st *MirrorState) []uint64 {
	out := make([]uint64, 0, len(st.Entries))
	for _, rc := range st.Entries {
		out = append(out, rc.Seq)
	}
	return out
}

func TestMemoryMirrorAppendReplyDrop(t *testing.T) {
	m := NewMemoryMirror()
	m.MirrorAppend(rec(1, 10))
	m.MirrorAppend(rec(2, 0, marshal.HandleVal(10)))

	done := rec(1, 10)
	done.Ret = marshal.Int(0)
	done.Outs = []marshal.Value{marshal.BytesVal([]byte{1, 2, 3})}
	m.MirrorReply(done)

	st := m.State()
	if got := mirrorSeqs(st); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("entries = %v", got)
	}
	if !st.ReplySeen[1] || st.ReplySeen[2] {
		t.Fatalf("replySeen = %v", st.ReplySeen)
	}
	if !bytes.Equal(st.Entries[0].Outs[0].Bytes, []byte{1, 2, 3}) {
		t.Fatalf("reply outs not mirrored: %+v", st.Entries[0])
	}

	m.MirrorDrop(2)
	if got := mirrorSeqs(m.State()); len(got) != 1 || got[0] != 1 {
		t.Fatalf("after drop: entries = %v", got)
	}
}

// A re-recorded seq (resubmission after recovery) must replace the old
// entry in place and clear its reply-seen mark, exactly as the guardian's
// shadow log does.
func TestMemoryMirrorAppendUpserts(t *testing.T) {
	m := NewMemoryMirror()
	first := rec(5, 50)
	m.MirrorAppend(first)
	m.MirrorReply(first)

	replacement := rec(5, 51)
	m.MirrorAppend(replacement)

	st := m.State()
	if len(st.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(st.Entries))
	}
	if st.Entries[0].Created != 51 {
		t.Fatalf("upsert kept the old record: %+v", st.Entries[0])
	}
	if st.ReplySeen[5] {
		t.Fatal("reply-seen survived the re-record")
	}
}

func TestMemoryMirrorPrune(t *testing.T) {
	m := NewMemoryMirror()
	m.MirrorAppend(rec(1, 10))                       // created the handle
	m.MirrorAppend(rec(2, 0, marshal.HandleVal(10))) // touches it
	m.MirrorAppend(rec(3, 0, marshal.HandleVal(11))) // unrelated
	m.MirrorPrune(10)
	if got := mirrorSeqs(m.State()); len(got) != 1 || got[0] != 3 {
		t.Fatalf("after prune: entries = %v", got)
	}
}

// State must be a deep copy: mutating the snapshot or feeding the mirror
// afterwards cannot corrupt the other side.
func TestMemoryMirrorStateIsolation(t *testing.T) {
	m := NewMemoryMirror()
	m.MirrorAppend(rec(1, 10, marshal.BytesVal([]byte{9})))
	m.MirrorCheckpoint(3, 1, map[marshal.Handle][]byte{10: {7, 7}})

	st := m.State()
	if st.Epoch != 3 || st.W != 1 {
		t.Fatalf("epoch/w = %d/%d", st.Epoch, st.W)
	}
	st.Entries[0].Args[0].Bytes[0] = 0xFF
	st.Objects[10][0] = 0xFF

	st2 := m.State()
	if st2.Entries[0].Args[0].Bytes[0] != 9 {
		t.Fatal("snapshot mutation leaked into the mirror's entries")
	}
	if st2.Objects[10][0] != 7 {
		t.Fatal("snapshot mutation leaked into the mirror's objects")
	}

	m.MirrorCheckpoint(4, 2, map[marshal.Handle][]byte{10: {8}})
	if st2.W != 1 || st2.Objects[10][0] != 7 {
		t.Fatal("later checkpoint mutated an earlier snapshot")
	}
}

func TestObjectStatesRoundTrip(t *testing.T) {
	in := map[marshal.Handle][]byte{
		1:   {0xA, 0xB},
		999: {},
		42:  {1, 2, 3, 4, 5},
	}
	b := marshal.EncodeObjectStates(in)
	out, err := marshal.DecodeObjectStates(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost entries: %v", out)
	}
	for h, state := range in {
		if !bytes.Equal(out[h], state) {
			t.Fatalf("handle %d: %v != %v", h, out[h], state)
		}
	}
	// Deterministic encoding: equal maps produce equal bytes.
	if !bytes.Equal(b, marshal.EncodeObjectStates(in)) {
		t.Fatal("encoding is not deterministic")
	}
	if _, err := marshal.DecodeObjectStates([]byte{1, 0, 0, 0, 9}); err == nil {
		t.Fatal("truncated payload decoded")
	}
}
