package failover

import (
	"fmt"
	"sync"
	"time"

	"ava/internal/backoff"
	"ava/internal/marshal"
	"ava/internal/server"
	"ava/internal/transport"
)

// RemoteMirror replicates a guardian's shadow log to a mirror host over
// the AVAM wire protocol, so failover.Restore can rehydrate a replacement
// guardian on a different machine after the guardian's own host dies.
//
// Structure: every LogSink mutation is applied synchronously to a local
// staging MemoryMirror (keeping the fast under-the-guardian-lock contract)
// and enqueued for an asynchronous pump goroutine that batches queued ops
// into one AVAM frame and awaits the mirror host's watermark ack. The
// staging copy makes the remote connection a durability upgrade rather
// than a liveness dependency — a dead mirror host never stalls the
// guardian — and doubles as the resync source: on every (re)connect, and
// whenever the host nacks a batch (e.g. a delta arriving before its base),
// the pump pushes a reset plus the full staging state, restoring the
// invariant that the remote mirror converges to the staging mirror.
type RemoteMirror struct {
	addr string
	vm   uint32
	name string
	bo   *backoff.Backoff
	onEv func(string)

	mu         sync.Mutex
	cond       *sync.Cond
	queue      [][]byte // encoded sub-frames awaiting replication
	needResync bool
	closed     bool
	inFlight   bool // pump is sending a batch drawn from the queue
	kick       bool // a Flush waits: perform a pending resync even with no connection

	ep transport.Endpoint // pump-owned; under mu only for Close/sever

	// replication watermark
	sent  uint64 // opseq of the last batch sent
	acked uint64 // highest opseq acked by the mirror host

	done chan struct{}
	once sync.Once

	local *MemoryMirror
}

// RemoteMirrorConfig tunes a RemoteMirror.
type RemoteMirrorConfig struct {
	// VM and Name identify the guest on the mirror host.
	VM   uint32
	Name string
	// Backoff paces reconnect attempts to the mirror host; the zero value
	// selects the failover layer's defaults. The budget bounds one
	// reconnect series — when it exhausts, the pump starts a fresh series
	// after the next mutation arrives, so a long mirror-host outage costs
	// retries, never correctness.
	Backoff backoff.Config
	// OnEvent, when set, observes connection-state transitions (for the
	// daemon's log). Must not block.
	OnEvent func(msg string)
}

// NewRemoteMirror builds a mirror replicating to the AVAM listener at
// addr (an avad started with -mirror). No connection is attempted until
// the first mutation.
func NewRemoteMirror(addr string, cfg RemoteMirrorConfig) *RemoteMirror {
	rm := &RemoteMirror{
		addr:       addr,
		vm:         cfg.VM,
		name:       cfg.Name,
		bo:         backoff.New(cfg.Backoff),
		onEv:       cfg.OnEvent,
		needResync: true, // first connect pushes whatever staging holds
		done:       make(chan struct{}),
		local:      NewMemoryMirror(),
	}
	rm.cond = sync.NewCond(&rm.mu)
	go rm.pump()
	return rm
}

// Staging returns the local staging mirror. Its State() is always current
// (it does not wait for replication) — the guardian's local rehydration
// path reads it exactly like a plain MemoryMirror.
func (rm *RemoteMirror) Staging() *MemoryMirror { return rm.local }

// State snapshots the staging mirror.
func (rm *RemoteMirror) State() *MirrorState { return rm.local.State() }

// Acked returns the replication watermark: every mutation batched at or
// below this opseq is durable on the mirror host.
func (rm *RemoteMirror) Acked() uint64 {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.acked
}

// Flush blocks until every queued mutation has been replicated and acked,
// or the timeout lapses. It reports whether the mirror drained — the hook
// tests and graceful drains use to bound divergence before a planned kill.
func (rm *RemoteMirror) Flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	rm.mu.Lock()
	defer rm.mu.Unlock()
	for {
		if rm.closed {
			return false
		}
		if len(rm.queue) == 0 && !rm.needResync && !rm.inFlight {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		// A pending resync is normally performed lazily on the next
		// mutation, but a flush IS a demand for durability now: kick the
		// pump so it dials and resyncs even though the queue is empty.
		if rm.needResync {
			rm.kick = true
		}
		// The pump broadcasts after every batch verdict; poll the deadline
		// at a modest cadence in case the pump is wedged on a dead dial.
		waitWithTimeout(rm.cond, 10*time.Millisecond)
	}
}

// waitWithTimeout waits on c for at most d. The caller must hold c.L.
func waitWithTimeout(c *sync.Cond, d time.Duration) {
	t := time.AfterFunc(d, c.Broadcast)
	c.Wait()
	t.Stop()
}

// Close stops the pump and drops the connection. The staging mirror stays
// readable.
func (rm *RemoteMirror) Close() {
	rm.once.Do(func() {
		rm.mu.Lock()
		rm.closed = true
		ep := rm.ep
		rm.mu.Unlock()
		close(rm.done)
		if ep != nil {
			ep.Close()
		}
		rm.cond.Broadcast()
	})
}

func (rm *RemoteMirror) event(format string, args ...any) {
	if rm.onEv != nil {
		rm.onEv(fmt.Sprintf(format, args...))
	}
}

// enqueue applies nothing itself — callers mutate the staging mirror first
// — it just hands the encoded sub-frame to the pump.
func (rm *RemoteMirror) enqueue(sub []byte) {
	rm.mu.Lock()
	if !rm.closed {
		rm.queue = append(rm.queue, sub)
	}
	rm.mu.Unlock()
	rm.cond.Broadcast()
}

// MirrorAppend implements LogSink.
func (rm *RemoteMirror) MirrorAppend(rc *server.RecordedCall) {
	rm.local.MirrorAppend(rc)
	rm.enqueue(subAppend(rc))
}

// MirrorReply implements LogSink.
func (rm *RemoteMirror) MirrorReply(rc *server.RecordedCall) {
	rm.local.MirrorReply(rc)
	rm.enqueue(subReply(rc))
}

// MirrorDrop implements LogSink.
func (rm *RemoteMirror) MirrorDrop(seq uint64) {
	rm.local.MirrorDrop(seq)
	rm.enqueue(subSeq(mirrorSubDrop, seq))
}

// MirrorPrune implements LogSink.
func (rm *RemoteMirror) MirrorPrune(h marshal.Handle) {
	rm.local.MirrorPrune(h)
	rm.enqueue(subSeq(mirrorSubPrune, uint64(h)))
}

// MirrorCheckpoint implements LogSink.
func (rm *RemoteMirror) MirrorCheckpoint(epoch uint32, w uint64, objects map[marshal.Handle][]byte) {
	rm.local.MirrorCheckpoint(epoch, w, objects)
	rm.enqueue(subMark(mirrorSubCheckpoint, epoch, w, marshal.EncodeObjectStates(objects)))
}

// MirrorCheckpointDelta implements DeltaSink. All-or-nothing is judged
// against the staging mirror: if the deltas compose there, they will
// compose on the mirror host too (it converges to staging), so the
// guardian proceeds without waiting a round trip. A remote nack — the host
// reconnected mid-stream and lacks the base — triggers a full resync from
// staging instead of failing the checkpoint.
func (rm *RemoteMirror) MirrorCheckpointDelta(epoch uint32, w uint64, deltas []marshal.ObjectDelta) bool {
	if !rm.local.MirrorCheckpointDelta(epoch, w, deltas) {
		return false
	}
	rm.enqueue(subMark(mirrorSubDelta, epoch, w, marshal.EncodeObjectDeltas(deltas)))
	return true
}

// MirrorEpoch implements LogSink.
func (rm *RemoteMirror) MirrorEpoch(epoch uint32, w uint64) {
	rm.local.MirrorEpoch(epoch, w)
	rm.enqueue(subMark(mirrorSubEpoch, epoch, w, nil))
}

// pump is the replication goroutine: wait for work, connect if needed,
// push one batch (or a resync), await the ack.
func (rm *RemoteMirror) pump() {
	for {
		rm.mu.Lock()
		// A pending resync with no connection is not work by itself: it is
		// performed lazily when the next mutation forces a connect (so an
		// idle VM does not spin dialing a dead mirror host) — unless a
		// Flush kicked, demanding the resync now.
		for !rm.closed && len(rm.queue) == 0 && !(rm.needResync && (rm.ep != nil || rm.kick)) {
			rm.cond.Wait()
		}
		if rm.closed {
			rm.mu.Unlock()
			return
		}
		rm.kick = false // one attempt per kick: a dead host cannot make us spin
		rm.inFlight = true
		rm.mu.Unlock()

		ok := rm.replicateOnce()

		rm.mu.Lock()
		rm.inFlight = false
		rm.mu.Unlock()
		rm.cond.Broadcast()
		if !ok {
			select {
			case <-rm.done:
				return
			default:
			}
		}
	}
}

// replicateOnce pushes the current backlog: (re)connect when necessary
// (which converts the backlog into a full resync), then one batch, then
// the ack. Returns false when the attempt failed and state was marked for
// resync.
func (rm *RemoteMirror) replicateOnce() bool {
	ep, err := rm.connect()
	if err != nil {
		rm.event("mirror %s unreachable: %v", rm.addr, err)
		return false
	}

	rm.mu.Lock()
	resync := rm.needResync
	var subs [][]byte
	if resync {
		// The full staging state supersedes anything queued.
		rm.queue = nil
	} else {
		subs = rm.queue
		rm.queue = nil
	}
	rm.sent++
	opseq := rm.sent
	rm.mu.Unlock()

	if resync {
		st := rm.local.State()
		subs = resyncSubs(st)
	}
	if len(subs) == 0 {
		return true
	}
	frame := transport.EncodeMirrorFrame(MirrorOpBatch, rm.vm, opseq, marshal.EncodeBatch(subs))
	if err := ep.Send(frame); err != nil {
		rm.dropConn(ep, "send: %v", err)
		return false
	}
	ack, err := ep.Recv()
	if err != nil {
		rm.dropConn(ep, "ack: %v", err)
		return false
	}
	op, _, ackSeq, payload, err := transport.DecodeMirrorFrame(ack)
	if err != nil || op != MirrorOpAck || ackSeq != opseq {
		rm.dropConn(ep, "bad ack")
		return false
	}
	if len(payload) < 1 || payload[0] != 1 {
		// The host applied what it could but could not compose everything
		// (a delta without its base). Resync from staging.
		rm.mu.Lock()
		rm.needResync = true
		rm.mu.Unlock()
		rm.event("mirror %s nacked batch %d; resyncing", rm.addr, opseq)
		return false
	}
	rm.mu.Lock()
	rm.acked = opseq
	if resync {
		rm.needResync = false
	}
	rm.mu.Unlock()
	return true
}

// resyncSubs flattens a full MirrorState into the sub-op stream that
// reproduces it on an empty mirror.
func resyncSubs(st *MirrorState) [][]byte {
	subs := make([][]byte, 0, 2*len(st.Entries)+3)
	subs = append(subs, []byte{mirrorSubReset})
	for i := range st.Entries {
		rc := &st.Entries[i]
		subs = append(subs, subAppend(rc))
		if st.ReplySeen[rc.Seq] {
			subs = append(subs, subReply(rc))
		}
	}
	if st.W != 0 || len(st.Objects) > 0 {
		subs = append(subs, subMark(mirrorSubCheckpoint, st.Epoch, st.W, marshal.EncodeObjectStates(st.Objects)))
	} else {
		subs = append(subs, subMark(mirrorSubEpoch, st.Epoch, st.W, nil))
	}
	return subs
}

// connect returns the live connection, dialing (with hello) under the
// backoff series when there is none. A fresh connection always forces a
// resync — the host may be a replacement process with empty state.
func (rm *RemoteMirror) connect() (transport.Endpoint, error) {
	rm.mu.Lock()
	if rm.ep != nil {
		ep := rm.ep
		rm.mu.Unlock()
		return ep, nil
	}
	rm.mu.Unlock()

	series := rm.bo.Series()
	for {
		ep, err := rm.dialHello()
		if err == nil {
			rm.mu.Lock()
			if rm.closed {
				rm.mu.Unlock()
				ep.Close()
				return nil, fmt.Errorf("failover: mirror closed")
			}
			rm.ep = ep
			rm.needResync = true
			rm.mu.Unlock()
			rm.event("mirror %s connected", rm.addr)
			return ep, nil
		}
		d, ok := series.Next()
		if !ok {
			return nil, err
		}
		select {
		case <-rm.done:
			return nil, fmt.Errorf("failover: mirror closed")
		case <-time.After(d):
		}
	}
}

func (rm *RemoteMirror) dialHello() (transport.Endpoint, error) {
	ep, err := transport.Dial(rm.addr)
	if err != nil {
		return nil, err
	}
	hello := transport.EncodeMirrorFrame(MirrorOpHello, rm.vm, 0, []byte(rm.name))
	if err := ep.Send(hello); err != nil {
		ep.Close()
		return nil, err
	}
	ack, err := ep.Recv()
	if err != nil {
		ep.Close()
		return nil, err
	}
	op, _, _, payload, err := transport.DecodeMirrorFrame(ack)
	if err != nil || op != MirrorOpAck || len(payload) < 1 || payload[0] != 1 {
		ep.Close()
		return nil, fmt.Errorf("failover: mirror %s refused hello", rm.addr)
	}
	return ep, nil
}

func (rm *RemoteMirror) dropConn(ep transport.Endpoint, format string, args ...any) {
	ep.Close()
	rm.mu.Lock()
	if rm.ep == ep {
		rm.ep = nil
	}
	rm.needResync = true
	rm.mu.Unlock()
	rm.event("mirror %s connection lost (%s)", rm.addr, fmt.Sprintf(format, args...))
}
