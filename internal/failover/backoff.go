package failover

import "ava/internal/backoff"

// The backoff implementation moved to internal/backoff so layers below
// failover in the import graph (internal/fleet, whose Client failover
// itself consumes) can pace their retries with the same jittered shape.
// These aliases keep every existing call site — guardian, guest, bench,
// tests — compiling unchanged; new code should import ava/internal/backoff
// directly.

// BackoffConfig shapes the jittered exponential backoff every retry in the
// fault-tolerance layer draws from: guardian respawn attempts, guest
// resubmission retries and guest overload retries all share this shape, so
// a storm of retrying callers decorrelates instead of thundering in lock
// step.
type BackoffConfig = backoff.Config

// Backoff is a shared jitter source; Series hands out independent retry
// series that draw jitter from it.
type Backoff = backoff.Backoff

// Series tracks the state of one retry series against the shared budget.
type Series = backoff.Series

// NewBackoff builds a backoff source from cfg.
func NewBackoff(cfg BackoffConfig) *Backoff { return backoff.New(cfg) }
