package failover

import (
	"encoding/binary"

	"ava/internal/marshal"
)

// Control notices travel guardian→guest on the reply channel, disguised as
// Reply frames whose Seq lives in the reserved marshal.CtrlSeqBase range so
// they can never collide with a real call's reply. The payload rides in
// Ret as an opaque byte buffer: [kind u8][epoch u32 LE][watermark u64 LE].

// Control notice kinds.
const (
	// CtrlCheckpoint announces a completed periodic checkpoint at
	// watermark W: the guest may trim its retained-call window to seq > W.
	CtrlCheckpoint = 1
	// CtrlRecover announces a completed recovery onto a fresh endpoint
	// epoch: the guest must resubmit its unacked window stamped with the
	// new epoch.
	CtrlRecover = 2
	// CtrlDead announces an abandoned recovery (respawn budget exhausted):
	// the guest must fail in-flight calls with averr.ErrRetryable.
	CtrlDead = 3
)

// EncodeControl builds the control Reply frame for a notice.
func EncodeControl(kind byte, epoch uint32, watermark uint64) []byte {
	var payload [13]byte
	payload[0] = kind
	binary.LittleEndian.PutUint32(payload[1:], epoch)
	binary.LittleEndian.PutUint64(payload[5:], watermark)
	return marshal.EncodeReply(&marshal.Reply{
		Seq:    marshal.CtrlSeqBase | uint64(kind),
		Status: marshal.StatusOK,
		Ret:    marshal.BytesVal(payload[:]),
	})
}

// DecodeControl extracts a control notice from a decoded Reply whose Seq is
// in the control range. ok=false means the frame is not a well-formed
// notice and must be ignored.
func DecodeControl(rep *marshal.Reply) (kind byte, epoch uint32, watermark uint64, ok bool) {
	if rep.Seq < marshal.CtrlSeqBase || rep.Seq >= marshal.MarkerSeqBase {
		return 0, 0, 0, false
	}
	if rep.Ret.Kind != marshal.KindBytes || len(rep.Ret.Bytes) != 13 {
		return 0, 0, 0, false
	}
	b := rep.Ret.Bytes
	return b[0], binary.LittleEndian.Uint32(b[1:]), binary.LittleEndian.Uint64(b[5:]), true
}
