package failover

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"ava/internal/fleet"
	"ava/internal/transport"
)

// fakeLocator serves a fixed ranked member list and honors exclusions.
type fakeLocator struct {
	members []fleet.Member
	queries int
}

func (f *fakeLocator) Announce(fleet.Member) error { return nil }
func (f *fakeLocator) Deregister(string) error     { return nil }
func (f *fakeLocator) Live(api string, exclude ...string) ([]fleet.Member, error) {
	f.queries++
	skip := make(map[string]bool, len(exclude))
	for _, id := range exclude {
		skip[id] = true
	}
	var out []fleet.Member
	for _, m := range f.members {
		if m.API == api && !skip[m.ID] {
			out = append(out, m)
		}
	}
	return out, nil
}

// scriptedResolver fails hosts by name and records the order of attempts.
type scriptedResolver struct {
	down     map[string]bool
	attempts []string
	epochs   []uint32
}

func (r *scriptedResolver) resolve(m fleet.Member, epoch uint32) (ServerLink, error) {
	r.attempts = append(r.attempts, m.ID)
	r.epochs = append(r.epochs, epoch)
	if r.down[m.ID] {
		return ServerLink{}, fmt.Errorf("host %s down", m.ID)
	}
	return ServerLink{WireReplay: true}, nil
}

func newTestDialer(loc fleet.Locator, res *scriptedResolver, attempts int) *FleetDialer {
	return NewFleetDialer(loc, FleetDialConfig{
		API: "opencl", VM: 1, Name: "test-vm",
		PerHostAttempts: attempts,
		Resolve:         res.resolve,
	})
}

func TestFleetDialerPicksBestLivePeer(t *testing.T) {
	loc := &fakeLocator{members: []fleet.Member{
		{ID: "a", API: "opencl"},
		{ID: "b", API: "opencl"},
		{ID: "m", API: "mvnc"},
	}}
	res := &scriptedResolver{}
	d := newTestDialer(loc, res, 2)
	if _, err := d.Dial(); err != nil {
		t.Fatal(err)
	}
	if d.Host() != "a" {
		t.Fatalf("host = %q, want the registry's first rank", d.Host())
	}
	if d.HostChanges() != 0 {
		t.Fatalf("first dial counted as a host change")
	}
	if len(res.attempts) != 1 || res.attempts[0] == "m" {
		t.Fatalf("attempts = %v", res.attempts)
	}
}

// The dialer must spend the per-host attempt budget on the current host
// before failing over: a same-host restart is far cheaper than a cross-host
// replay.
func TestFleetDialerPerHostBudgetThenFailover(t *testing.T) {
	loc := &fakeLocator{members: []fleet.Member{
		{ID: "a", API: "opencl"},
		{ID: "b", API: "opencl", Load: 1},
	}}
	res := &scriptedResolver{}
	d := newTestDialer(loc, res, 2)
	if _, err := d.Dial(); err != nil {
		t.Fatal(err)
	}

	// Host a dies. The next PerHostAttempts dials must target only a.
	res.down = map[string]bool{"a": true}
	for i := 0; i < 2; i++ {
		if _, err := d.Dial(); err == nil {
			t.Fatalf("dial %d against dead host succeeded", i)
		} else if !strings.Contains(err.Error(), "a") {
			t.Fatalf("dial %d error does not blame host a: %v", i, err)
		}
	}
	// Budget spent: the next dial excludes a and lands on b.
	if _, err := d.Dial(); err != nil {
		t.Fatal(err)
	}
	if d.Host() != "b" {
		t.Fatalf("host = %q, want b", d.Host())
	}
	if d.HostChanges() != 1 {
		t.Fatalf("hostChanges = %d, want 1", d.HostChanges())
	}
	for _, id := range res.attempts[:len(res.attempts)-1] {
		if id == "b" {
			t.Fatalf("dialer moved to b before a's budget was spent: %v", res.attempts)
		}
	}
}

// When every member has failed, the exclusion set must be cleared (except
// the freshly dead host) so recovered peers get another chance instead of
// the VM being abandoned.
func TestFleetDialerRevivesExcludedHosts(t *testing.T) {
	loc := &fakeLocator{members: []fleet.Member{
		{ID: "a", API: "opencl"},
		{ID: "b", API: "opencl", Load: 1},
	}}
	res := &scriptedResolver{down: map[string]bool{"a": true, "b": true}}
	d := newTestDialer(loc, res, 1)

	// Both hosts down: the first dial tries and marks every candidate.
	if _, err := d.Dial(); err == nil {
		t.Fatal("dial with the whole fleet down succeeded")
	}
	// b comes back. With a still marked failed, the revival path must
	// clear b's mark and land there.
	res.down = map[string]bool{"a": true}
	var err error
	for i := 0; i < 3 && d.Host() == ""; i++ {
		_, err = d.Dial()
	}
	if d.Host() != "b" {
		t.Fatalf("host = %q after revival, want b (last err %v)", d.Host(), err)
	}
}

// Relocate must move the VM off a live host in one dial — no retry budget
// — without marking the old host failed, and honor a pinned target.
func TestFleetDialerRelocateLeavesLiveHost(t *testing.T) {
	loc := &fakeLocator{members: []fleet.Member{
		{ID: "a", API: "opencl"},
		{ID: "b", API: "opencl", Load: 1},
		{ID: "c", API: "opencl", Load: 2},
	}}
	res := &scriptedResolver{}
	d := newTestDialer(loc, res, 2)
	if _, err := d.Dial(); err != nil {
		t.Fatal(err)
	}
	if d.Host() != "a" {
		t.Fatalf("host = %q, want a", d.Host())
	}

	// Relocate with a pinned target: lands on c even though b ranks better.
	d.Relocate("c")
	if _, err := d.Dial(); err != nil {
		t.Fatal(err)
	}
	if d.Host() != "c" {
		t.Fatalf("host after pinned relocation = %q, want c", d.Host())
	}
	if d.HostChanges() != 1 {
		t.Fatalf("hostChanges = %d, want 1", d.HostChanges())
	}

	// The old host was not marked failed: a later relocation with no pin
	// may land back on it (it ranks best).
	d.Relocate("")
	if _, err := d.Dial(); err != nil {
		t.Fatal(err)
	}
	if d.Host() != "a" {
		t.Fatalf("host after unpinned relocation = %q, want a (not marked failed)", d.Host())
	}

	// The directive cleared on success: the next dial stays put.
	if _, err := d.Dial(); err != nil {
		t.Fatal(err)
	}
	if d.Host() != "a" || d.HostChanges() != 2 {
		t.Fatalf("relocation directive leaked: host=%q changes=%d", d.Host(), d.HostChanges())
	}
}

// A relocation with no reachable peer must fall back to the current host
// rather than strand the VM.
func TestFleetDialerRelocateFallsBackWhenAlone(t *testing.T) {
	loc := &fakeLocator{members: []fleet.Member{{ID: "a", API: "opencl"}}}
	res := &scriptedResolver{}
	d := newTestDialer(loc, res, 2)
	if _, err := d.Dial(); err != nil {
		t.Fatal(err)
	}
	d.Relocate("")
	if _, err := d.Dial(); err != nil {
		t.Fatal(err)
	}
	if d.Host() != "a" {
		t.Fatalf("host = %q, want fallback to a", d.Host())
	}
}

// Rank must reorder candidates ahead of the dial walk, and OnDial must
// observe every landing with the previous host.
func TestFleetDialerRankAndOnDialHooks(t *testing.T) {
	loc := &fakeLocator{members: []fleet.Member{
		{ID: "a", API: "opencl"},
		{ID: "b", API: "opencl", Load: 9},
	}}
	res := &scriptedResolver{}
	type landing struct{ host, prev string }
	var seen []landing
	d := NewFleetDialer(loc, FleetDialConfig{
		API: "opencl", VM: 3, Name: "test-vm", PerHostAttempts: 1,
		Resolve: res.resolve,
		Rank: func(vm uint32, ms []fleet.Member) []fleet.Member {
			// Invert the registry order: heavy host first.
			for i, j := 0, len(ms)-1; i < j; i, j = i+1, j-1 {
				ms[i], ms[j] = ms[j], ms[i]
			}
			return ms
		},
		OnDial: func(vm uint32, host, prev string) {
			if vm != 3 {
				t.Errorf("OnDial vm = %d, want 3", vm)
			}
			seen = append(seen, landing{host, prev})
		},
	})
	if _, err := d.Dial(); err != nil {
		t.Fatal(err)
	}
	if d.Host() != "b" {
		t.Fatalf("host = %q, want rank-inverted b", d.Host())
	}
	d.Relocate("")
	if _, err := d.Dial(); err != nil {
		t.Fatal(err)
	}
	want := []landing{{"b", ""}, {"a", "b"}}
	if len(seen) != 2 || seen[0] != want[0] || seen[1] != want[1] {
		t.Fatalf("OnDial landings = %v, want %v", seen, want)
	}
}

// ackServer is a minimal avad stand-in for the default (TCP + hello)
// resolve path: it answers every ack-requesting hello with the current
// verdict and, on acceptance, holds the connection open.
type ackServer struct {
	l *transport.Listener

	mu     sync.Mutex
	reject bool
	eps    []transport.Endpoint
	hellos int
}

func newAckServer(t *testing.T) *ackServer {
	t.Helper()
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &ackServer{l: l}
	go func() {
		for {
			ep, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				frame, err := ep.Recv()
				if err != nil {
					ep.Close()
					return
				}
				h, err := transport.DecodeHello(frame)
				if err != nil {
					ep.Close()
					return
				}
				s.mu.Lock()
				s.hellos++
				rej := s.reject
				if !rej {
					s.eps = append(s.eps, ep)
				}
				s.mu.Unlock()
				if rej {
					transport.AckHello(ep, h, false, "evicted, rebalancing")
					ep.Close()
					return
				}
				transport.AckHello(ep, h, true, "")
			}()
		}
	}()
	t.Cleanup(s.close)
	return s
}

func (s *ackServer) setReject(v bool) {
	s.mu.Lock()
	s.reject = v
	s.mu.Unlock()
}

func (s *ackServer) helloCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hellos
}

func (s *ackServer) close() {
	s.l.Close()
	s.mu.Lock()
	eps := append([]transport.Endpoint(nil), s.eps...)
	s.eps = nil
	s.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}

// The eviction-convergence regression: a host that admits the TCP connect
// but refuses the VM at the hello must register as a *failed* dial — the
// old behavior counted it a success (hello sent, no verdict awaited),
// reset the per-host budget on every bounce, and pinned the evicted VM to
// its rejecting host for the whole refusal window.
func TestFleetDialerRejectedHelloSpendsBudget(t *testing.T) {
	a, b := newAckServer(t), newAckServer(t)
	loc := &fakeLocator{members: []fleet.Member{
		{ID: "a", API: "opencl", Addr: a.l.Addr()},
		{ID: "b", API: "opencl", Addr: b.l.Addr(), Load: 1},
	}}
	d := NewFleetDialer(loc, FleetDialConfig{
		API: "opencl", VM: 7, Name: "evictee", PerHostAttempts: 2,
	})
	link, err := d.Dial()
	if err != nil {
		t.Fatal(err)
	}
	link.EP.Close()
	if d.Host() != "a" {
		t.Fatalf("host = %q, want a", d.Host())
	}

	// Host a evicts the VM: it keeps accepting TCP but rejects the hello.
	a.setReject(true)
	for i := 0; i < 2; i++ {
		if _, err := d.Dial(); err == nil {
			t.Fatalf("dial %d against the rejecting host succeeded", i)
		} else if !strings.Contains(err.Error(), "refused") {
			t.Fatalf("dial %d error is not a refusal: %v", i, err)
		}
		if d.Host() != "a" {
			t.Fatalf("dialer left host a before the budget was spent")
		}
	}
	// Budget spent: the next dial must land on the peer, not bounce back.
	link, err = d.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer link.EP.Close()
	if d.Host() != "b" {
		t.Fatalf("host after eviction = %q, want b", d.Host())
	}
	if n := a.helloCount(); n != 3 { // first admit + exactly PerHostAttempts rejections
		t.Fatalf("rejecting host saw %d hellos, want 3", n)
	}
	if d.HostChanges() != 1 {
		t.Fatalf("hostChanges = %d, want 1", d.HostChanges())
	}
}

// The hello preamble must carry the guardian's current epoch.
func TestFleetDialerStampsEpoch(t *testing.T) {
	loc := &fakeLocator{members: []fleet.Member{{ID: "a", API: "opencl"}}}
	res := &scriptedResolver{}
	d := newTestDialer(loc, res, 2)
	epoch := uint32(0)
	d.SetEpochSource(func() uint32 { return epoch })

	if _, err := d.Dial(); err != nil {
		t.Fatal(err)
	}
	epoch = 7
	if _, err := d.Dial(); err != nil {
		t.Fatal(err)
	}
	if len(res.epochs) != 2 || res.epochs[0] != 0 || res.epochs[1] != 7 {
		t.Fatalf("stamped epochs = %v", res.epochs)
	}
}
