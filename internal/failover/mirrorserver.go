package failover

import (
	"fmt"
	"sort"
	"sync"

	"ava/internal/marshal"
	"ava/internal/transport"
)

// MirrorServer is the hosting side of the AVAM protocol: one per-VM
// MemoryMirror fed by remote guardians' replication streams, served from
// an avad started with -mirror. A replacement guardian on any machine
// fetches a VM's accumulated MirrorState back with FetchMirrorState and
// rehydrates from it exactly as it would from an in-process mirror.
type MirrorServer struct {
	mu   sync.Mutex
	vms  map[uint32]*MemoryMirror
	name map[uint32]string
}

// NewMirrorServer builds an empty mirror host.
func NewMirrorServer() *MirrorServer {
	return &MirrorServer{vms: make(map[uint32]*MemoryMirror), name: make(map[uint32]string)}
}

// Mirror returns vm's mirror, creating it empty on first use.
func (s *MirrorServer) Mirror(vm uint32) *MemoryMirror {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.vms[vm]
	if !ok {
		m = NewMemoryMirror()
		s.vms[vm] = m
	}
	return m
}

// State snapshots vm's mirrored state (empty state for an unknown VM).
func (s *MirrorServer) State(vm uint32) *MirrorState {
	return s.Mirror(vm).State()
}

// MirroredVM is one VM's standing on the mirror host — the admin view the
// control plane scrapes.
type MirroredVM struct {
	VM      uint32 `json:"vm"`
	Name    string `json:"name,omitempty"`
	Entries int    `json:"entries"`
	W       uint64 `json:"w"`
	Epoch   uint32 `json:"epoch"`
	Objects int    `json:"objects"`
}

// Snapshot lists every mirrored VM sorted by ID.
func (s *MirrorServer) Snapshot() []MirroredVM {
	s.mu.Lock()
	type pair struct {
		vm   uint32
		m    *MemoryMirror
		name string
	}
	ps := make([]pair, 0, len(s.vms))
	for vm, m := range s.vms {
		ps = append(ps, pair{vm, m, s.name[vm]})
	}
	s.mu.Unlock()
	sort.Slice(ps, func(i, j int) bool { return ps[i].vm < ps[j].vm })
	out := make([]MirroredVM, 0, len(ps))
	for _, p := range ps {
		st := p.m.State()
		out = append(out, MirroredVM{
			VM: p.vm, Name: p.name, Entries: len(st.Entries),
			W: st.W, Epoch: st.Epoch, Objects: len(st.Objects),
		})
	}
	return out
}

// Serve accepts replication connections on l until the listener closes.
func (s *MirrorServer) Serve(l *transport.Listener) {
	for {
		ep, err := l.Accept()
		if err != nil {
			return
		}
		go s.ServeConn(ep)
	}
}

// ServeConn runs one replication session: batches applied in arrival
// order, each acked by opseq with an ok bit (false = a sub-op could not
// compose and the sender must resync), state requests answered in line.
func (s *MirrorServer) ServeConn(ep transport.Endpoint) {
	defer ep.Close()
	for {
		frame, err := ep.Recv()
		if err != nil {
			return
		}
		op, vm, opseq, payload, err := transport.DecodeMirrorFrame(frame)
		if err != nil {
			return
		}
		switch op {
		case MirrorOpHello:
			s.mu.Lock()
			s.name[vm] = string(payload)
			s.mu.Unlock()
			if err := ep.Send(transport.EncodeMirrorFrame(MirrorOpAck, vm, opseq, []byte{1})); err != nil {
				return
			}
		case MirrorOpBatch:
			ok := byte(1)
			subs, err := marshal.DecodeBatch(payload)
			if err != nil {
				ok = 0
			} else {
				m := s.Mirror(vm)
				for _, sub := range subs {
					composed, err := applyMirrorSub(m, sub)
					if err != nil || !composed {
						ok = 0
						break
					}
				}
			}
			if err := ep.Send(transport.EncodeMirrorFrame(MirrorOpAck, vm, opseq, []byte{ok})); err != nil {
				return
			}
		case MirrorOpState:
			body := EncodeMirrorState(s.State(vm))
			if err := ep.Send(transport.EncodeMirrorFrame(MirrorOpStateResp, vm, opseq, body)); err != nil {
				return
			}
		default:
			return
		}
	}
}

// FetchMirrorState dials a mirror host and retrieves vm's accumulated
// state — the first step of rehydrating a replacement guardian on a
// different machine than the one that died.
func FetchMirrorState(addr string, vm uint32) (*MirrorState, error) {
	ep, err := transport.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("failover: dial mirror %s: %w", addr, err)
	}
	defer ep.Close()
	if err := ep.Send(transport.EncodeMirrorFrame(MirrorOpState, vm, 0, nil)); err != nil {
		return nil, fmt.Errorf("failover: mirror %s: %w", addr, err)
	}
	frame, err := ep.Recv()
	if err != nil {
		return nil, fmt.Errorf("failover: mirror %s: %w", addr, err)
	}
	op, _, _, payload, err := transport.DecodeMirrorFrame(frame)
	if err != nil || op != MirrorOpStateResp {
		return nil, fmt.Errorf("failover: mirror %s sent an unexpected reply", addr)
	}
	return DecodeMirrorState(payload)
}
