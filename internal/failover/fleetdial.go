package failover

import (
	"fmt"
	"sync"

	"ava/internal/fleet"
	"ava/internal/transport"
)

// FleetDialConfig tunes a FleetDialer.
type FleetDialConfig struct {
	// API is the accelerator API the VM needs; only fleet members serving
	// it are candidates.
	API string
	// VM and Name identify the guest in the dial-time hello preamble.
	VM   uint32
	Name string
	// PerHostAttempts is how many consecutive dial failures against the
	// current host are tolerated before the dialer gives up on it and
	// fails over to a peer; 0 means 2. A transient blip (server restart
	// on the same host) is far cheaper to ride out than a cross-host
	// replay.
	PerHostAttempts int
	// Epoch supplies the current endpoint epoch for the hello preamble;
	// nil stamps 0. Wire it to Guardian.Epoch so the serving host can
	// observe reconnects across failovers.
	Epoch func() uint32
	// Resolve turns a fleet member into a live ServerLink. Nil uses the
	// default: TCP-dial m.Addr, send the hello preamble with an ack
	// request, wait for the server's admission verdict, and return a
	// WireReplay link. Waiting for the verdict is what makes host-side
	// rejection (an evicted VM bounced off its old host) a dial failure
	// that spends the per-host attempt budget, instead of a silent
	// connect-then-sever loop that resets it.
	Resolve func(m fleet.Member, epoch uint32) (ServerLink, error)
	// Rank, when set, reorders the live candidates best-first before the
	// dialer walks them — the hook a placement policy (internal/sched)
	// plugs into. Nil keeps the registry's health ranking.
	Rank func(vm uint32, ms []fleet.Member) []fleet.Member
	// OnDial, when set, observes every successful dial: the host landed
	// on and the previous host ("" for the first dial). The stack uses it
	// to feed the scheduling decision log and spread-policy counts.
	OnDial func(vm uint32, host, prev string)
}

// FleetDialer is a registry-backed implementation of the guardian's dial
// closure: it serves cross-host failover by retrying the current host under
// a small attempt budget and then moving to the best live peer the fleet
// registry knows, excluding hosts that already failed. Pass its Dial method
// as the Guardian's dial function.
type FleetDialer struct {
	loc fleet.Locator
	cfg FleetDialConfig

	mu          sync.Mutex
	host        string // member ID currently (or last) serving this VM
	attempts    int    // consecutive dial failures against host
	failed      map[string]bool
	hostChanges int
	relocating  bool   // next dial must leave the current host
	relocateTo  string // preferred relocation target ("" = best peer)
}

// NewFleetDialer builds a dialer over loc.
func NewFleetDialer(loc fleet.Locator, cfg FleetDialConfig) *FleetDialer {
	if cfg.PerHostAttempts <= 0 {
		cfg.PerHostAttempts = 2
	}
	return &FleetDialer{loc: loc, cfg: cfg, failed: make(map[string]bool)}
}

// Host returns the fleet member ID currently serving this VM ("" before the
// first successful dial).
func (d *FleetDialer) Host() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.host
}

// HostChanges counts successful dials that landed on a different host than
// the previous one — the number of cross-host failovers.
func (d *FleetDialer) HostChanges() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hostChanges
}

// SetEpochSource installs the epoch supplier after construction (the
// guardian that owns the epoch is usually built after its dialer).
func (d *FleetDialer) SetEpochSource(f func() uint32) {
	d.mu.Lock()
	d.cfg.Epoch = f
	d.mu.Unlock()
}

// Relocate directs the next dial away from the current host even though
// it is alive: the per-host retry budget is skipped and the current host
// is excluded from that one candidate query (without being marked failed
// — it is hot, not dead). target, when non-empty and live, is tried
// first; "" lets the ranking pick the best peer. The directive clears on
// the next successful dial, and if no peer is reachable the dialer falls
// back to the current host rather than stranding the VM.
//
// This is the migration half of the rebalance contract: the caller
// checkpoints through the guardian, calls Relocate, then severs the
// serving link so the guardian's recovery dials — and lands — elsewhere.
func (d *FleetDialer) Relocate(target string) {
	d.mu.Lock()
	d.relocating = true
	d.relocateTo = target
	d.mu.Unlock()
}

// Dial implements the guardian's dial closure. Each call is one attempt;
// the guardian's backoff series paces retries between calls.
func (d *FleetDialer) Dial() (ServerLink, error) {
	d.mu.Lock()
	cur, tried := d.host, d.attempts
	reloc, prefer := d.relocating, d.relocateTo
	epochFn := d.cfg.Epoch
	d.mu.Unlock()
	var epoch uint32
	if epochFn != nil {
		epoch = epochFn()
	}

	if !reloc && cur != "" && tried < d.cfg.PerHostAttempts {
		// Spend the current host's attempt budget before moving: the state
		// already lives there if the failure was a blip. A relocation skips
		// this branch entirely — the point is to leave a live host.
		d.mu.Lock()
		d.attempts++
		d.mu.Unlock()
		cause := fmt.Errorf("not in fleet view")
		if m, ok := d.lookup(cur); ok {
			link, err := d.resolve(m, epoch)
			if err == nil {
				d.noteSuccess(m.ID)
				return link, nil
			}
			cause = err
		}
		return ServerLink{}, fmt.Errorf("failover: host %s unreachable (attempt %d/%d): %w",
			cur, tried+1, d.cfg.PerHostAttempts, cause)
	}

	// The current host's budget is spent (or there is no host yet, or a
	// relocation is pending): pick the best live peer, excluding
	// everything that already failed. A relocation excludes the current
	// host from this one query without marking it failed — it is hot,
	// not dead, and stays a legitimate failover target afterwards.
	d.mu.Lock()
	if cur != "" && !reloc {
		d.failed[cur] = true
	}
	exclude := make([]string, 0, len(d.failed)+1)
	for id := range d.failed {
		exclude = append(exclude, id)
	}
	if reloc && cur != "" && !d.failed[cur] {
		exclude = append(exclude, cur)
	}
	d.mu.Unlock()

	ms, err := d.loc.Live(d.cfg.API, exclude...)
	if err != nil {
		return ServerLink{}, fmt.Errorf("failover: fleet query: %w", err)
	}
	if len(ms) == 0 && len(exclude) > 0 {
		// Every known host has failed at least once. Hosts other than the
		// one that just died may have recovered since — clear their marks
		// and try again rather than abandoning the VM. A relocation with
		// no live peer gives up on relocating for the same reason: the
		// current host beats no host.
		d.mu.Lock()
		d.failed = make(map[string]bool)
		if cur != "" && !reloc {
			d.failed[cur] = true
		}
		d.relocating = false
		d.relocateTo = ""
		reloc, prefer = false, ""
		d.mu.Unlock()
		ms, err = d.loc.Live(d.cfg.API)
		if err != nil {
			return ServerLink{}, fmt.Errorf("failover: fleet query: %w", err)
		}
	}
	if d.cfg.Rank != nil {
		ms = d.cfg.Rank(d.cfg.VM, ms)
	}
	if reloc && prefer != "" {
		// A pinned relocation target jumps the ranking when it is live.
		for i, m := range ms {
			if m.ID == prefer {
				ms[0], ms[i] = ms[i], ms[0]
				break
			}
		}
	}
	var lastErr error
	for _, m := range ms {
		link, err := d.resolve(m, epoch)
		if err == nil {
			d.noteSuccess(m.ID)
			return link, nil
		}
		lastErr = err
		d.mu.Lock()
		d.failed[m.ID] = true
		d.mu.Unlock()
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no live members")
	}
	return ServerLink{}, fmt.Errorf("failover: no reachable %q host in fleet: %w", d.cfg.API, lastErr)
}

func (d *FleetDialer) lookup(id string) (fleet.Member, bool) {
	ms, err := d.loc.Live(d.cfg.API)
	if err != nil {
		return fleet.Member{}, false
	}
	for _, m := range ms {
		if m.ID == id {
			return m, true
		}
	}
	return fleet.Member{}, false
}

func (d *FleetDialer) resolve(m fleet.Member, epoch uint32) (ServerLink, error) {
	if d.cfg.Resolve != nil {
		return d.cfg.Resolve(m, epoch)
	}
	ep, err := transport.Dial(m.Addr)
	if err != nil {
		return ServerLink{}, err
	}
	hello := transport.EncodeHello(transport.Hello{VM: d.cfg.VM, Epoch: epoch, Name: d.cfg.Name, WantAck: true})
	if err := ep.Send(hello); err != nil {
		ep.Close()
		return ServerLink{}, err
	}
	// Success means admitted, not merely connected: the server's verdict
	// frame arrives before any data-plane traffic, so a rejection (the VM
	// was just evicted from this host) fails the dial here and the caller
	// charges it against the per-host budget like any other failure.
	frame, err := ep.Recv()
	if err != nil {
		ep.Close()
		return ServerLink{}, fmt.Errorf("hello ack from %s: %w", m.ID, err)
	}
	ack, err := transport.DecodeHelloAck(frame)
	if err != nil {
		ep.Close()
		return ServerLink{}, fmt.Errorf("hello ack from %s: %w", m.ID, err)
	}
	if !ack.OK {
		ep.Close()
		return ServerLink{}, fmt.Errorf("host %s refused VM %d: %s", m.ID, d.cfg.VM, ack.Reason)
	}
	return ServerLink{EP: ep, WireReplay: true}, nil
}

func (d *FleetDialer) noteSuccess(id string) {
	d.mu.Lock()
	prev := d.host
	if d.host != "" && d.host != id {
		d.hostChanges++
	}
	d.host = id
	d.attempts = 0
	d.relocating = false
	d.relocateTo = ""
	delete(d.failed, id)
	onDial := d.cfg.OnDial
	vm := d.cfg.VM
	d.mu.Unlock()
	if onDial != nil {
		onDial(vm, id, prev)
	}
}
