package fleet

import (
	"sync"
	"time"

	"ava/internal/clock"
)

// Announcer keeps one member's registration alive: it announces
// immediately, re-announces on a heartbeat interval (carrying the current
// self-reported load), and deregisters on Close — the graceful half of the
// liveness contract, with the TTL covering crashes.
type Announcer struct {
	loc   Locator
	clk   clock.Clock
	every time.Duration

	mu   sync.Mutex
	m    Member
	done chan struct{}
	once sync.Once
}

// StartAnnouncer registers m with loc and starts the heartbeat goroutine.
// every <= 0 selects DefaultTTL/4; clk nil uses the wall clock. Announce
// failures are retried on the next beat (the registry may be restarting),
// never fatal.
func StartAnnouncer(loc Locator, m Member, every time.Duration, clk clock.Clock) *Announcer {
	if every <= 0 {
		every = DefaultTTL / 4
	}
	if clk == nil {
		clk = clock.NewReal()
	}
	if m.ID == "" {
		m.ID = m.Addr
	}
	a := &Announcer{loc: loc, clk: clk, every: every, m: m, done: make(chan struct{})}
	a.loc.Announce(m)
	go a.loop()
	return a
}

func (a *Announcer) loop() {
	for {
		a.clk.Sleep(a.every)
		select {
		case <-a.done:
			return
		default:
		}
		a.mu.Lock()
		m := a.m
		a.mu.Unlock()
		a.loc.Announce(m)
	}
}

// SetLoad updates the load the next heartbeat reports.
func (a *Announcer) SetLoad(n int) {
	a.mu.Lock()
	a.m.Load = n
	a.mu.Unlock()
}

// Member returns the announced member record.
func (a *Announcer) Member() Member {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.m
}

// Close stops the heartbeat and deregisters the member.
func (a *Announcer) Close() {
	a.once.Do(func() {
		close(a.done)
		a.loc.Deregister(a.m.ID)
	})
}
