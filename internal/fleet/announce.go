package fleet

import (
	"sync"
	"time"

	"ava/internal/clock"
)

// Announcer keeps one member's registration alive: it announces
// immediately, re-announces on a heartbeat interval (carrying the current
// self-reported load), and deregisters on Close — the graceful half of the
// liveness contract, with the TTL covering crashes.
type Announcer struct {
	loc   Locator
	clk   clock.Clock
	every time.Duration

	mu      sync.Mutex
	m       Member
	sampler func(*Member)
	done    chan struct{}
	once    sync.Once
}

// StartAnnouncer registers m with loc and starts the heartbeat goroutine.
// every <= 0 selects DefaultTTL/4; clk nil uses the wall clock. Announce
// failures are retried on the next beat (the registry may be restarting),
// never fatal.
func StartAnnouncer(loc Locator, m Member, every time.Duration, clk clock.Clock) *Announcer {
	if every <= 0 {
		every = DefaultTTL / 4
	}
	if clk == nil {
		clk = clock.NewReal()
	}
	if m.ID == "" {
		m.ID = m.Addr
	}
	a := &Announcer{loc: loc, clk: clk, every: every, m: m, done: make(chan struct{})}
	a.loc.Announce(m)
	go a.loop()
	return a
}

func (a *Announcer) loop() {
	for {
		a.clk.Sleep(a.every)
		select {
		case <-a.done:
			return
		default:
		}
		a.loc.Announce(a.sample())
	}
}

// sample snapshots the member record, letting the sampler refresh the
// drifting load signals (queue depth, bytes moved) first.
func (a *Announcer) sample() Member {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sampler != nil {
		a.sampler(&a.m)
	}
	return a.m
}

// SetLoad updates the load the next heartbeat reports.
func (a *Announcer) SetLoad(n int) {
	a.mu.Lock()
	a.m.Load = n
	a.mu.Unlock()
}

// SetDetail updates the full load signal the next heartbeat reports:
// active VMs, summed dispatch backlog, and bytes moved over the last
// interval.
func (a *Announcer) SetDetail(load, queueDepth int, bytesInFlight uint64) {
	a.mu.Lock()
	a.m.Load = load
	a.m.QueueDepth = queueDepth
	a.m.BytesInFlight = bytesInFlight
	a.mu.Unlock()
}

// SetSampler installs a hook the announcer calls under its lock just
// before each announcement (heartbeat or AnnounceNow) to refresh the
// member's load fields in place. It must not block: it runs on the
// heartbeat path.
func (a *Announcer) SetSampler(fn func(*Member)) {
	a.mu.Lock()
	a.sampler = fn
	a.mu.Unlock()
}

// AnnounceNow pushes the current member record immediately instead of
// waiting for the next heartbeat tick — the load just changed abruptly
// (a VM migrated away, a drain completed) and placement decisions made
// against the stale figure would pile onto the wrong host.
func (a *Announcer) AnnounceNow() {
	select {
	case <-a.done:
		return
	default:
	}
	a.loc.Announce(a.sample())
}

// Member returns the announced member record.
func (a *Announcer) Member() Member {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.m
}

// Close stops the heartbeat and deregisters the member.
func (a *Announcer) Close() {
	a.once.Do(func() {
		close(a.done)
		a.loc.Deregister(a.m.ID)
	})
}
