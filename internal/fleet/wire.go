package fleet

import (
	"encoding/json"
	"fmt"
	"sync"

	"ava/internal/transport"
)

// The wire protocol is one JSON request frame per operation, answered by
// one JSON response frame, over the same length-prefixed transport the
// call path uses. Discovery traffic is tiny and rare next to call traffic,
// so readability wins over marshalling speed here.

type wireReq struct {
	Op      string   `json:"op"` // "announce", "deregister", "live"
	Member  Member   `json:"member,omitempty"`
	ID      string   `json:"id,omitempty"`
	API     string   `json:"api,omitempty"`
	Exclude []string `json:"exclude,omitempty"`
}

type wireResp struct {
	OK      bool     `json:"ok"`
	Err     string   `json:"err,omitempty"`
	Members []Member `json:"members,omitempty"`
}

// Serve answers registry requests on l until the listener closes. Each
// connection may issue any number of requests; avad's announcer keeps one
// open for its heartbeat stream.
func Serve(l *transport.Listener, reg *Registry) {
	for {
		ep, err := l.Accept()
		if err != nil {
			return
		}
		go serveConn(ep, reg)
	}
}

func serveConn(ep transport.Endpoint, reg *Registry) {
	defer ep.Close()
	for {
		frame, err := ep.Recv()
		if err != nil {
			return
		}
		var req wireReq
		resp := wireResp{OK: true}
		if err := json.Unmarshal(frame, &req); err != nil {
			resp = wireResp{Err: fmt.Sprintf("malformed request: %v", err)}
		} else {
			switch req.Op {
			case "announce":
				reg.Announce(req.Member)
			case "deregister":
				reg.Deregister(req.ID)
			case "live":
				resp.Members, _ = reg.Live(req.API, req.Exclude...)
			default:
				resp = wireResp{Err: fmt.Sprintf("unknown op %q", req.Op)}
			}
		}
		out, err := json.Marshal(resp)
		if err != nil {
			return
		}
		if err := ep.Send(out); err != nil {
			return
		}
	}
}

// Client is a Locator over a TCP connection to a served registry. It
// redials transparently after a connection failure, so a registry restart
// does not kill every announcer in the fleet.
type Client struct {
	addr string

	mu sync.Mutex
	ep transport.Endpoint
}

// DialRegistry connects to a registry served at addr. The connection is
// established lazily on the first request.
func DialRegistry(addr string) *Client {
	return &Client{addr: addr}
}

// Close releases the client's connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ep != nil {
		c.ep.Close()
		c.ep = nil
	}
}

// roundTrip sends one request and awaits its response, redialing once if
// the cached connection has gone stale.
func (c *Client) roundTrip(req wireReq) (wireResp, error) {
	frame, err := json.Marshal(req)
	if err != nil {
		return wireResp{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if c.ep == nil {
			ep, err := transport.Dial(c.addr)
			if err != nil {
				return wireResp{}, fmt.Errorf("fleet: dial registry %s: %w", c.addr, err)
			}
			c.ep = ep
		}
		if err := c.ep.Send(frame); err == nil {
			if reply, err := c.ep.Recv(); err == nil {
				var resp wireResp
				if err := json.Unmarshal(reply, &resp); err != nil {
					return wireResp{}, fmt.Errorf("fleet: malformed registry response: %w", err)
				}
				if resp.Err != "" {
					return wireResp{}, fmt.Errorf("fleet: registry: %s", resp.Err)
				}
				return resp, nil
			}
		}
		c.ep.Close()
		c.ep = nil
		if attempt > 0 {
			return wireResp{}, fmt.Errorf("fleet: registry %s unreachable", c.addr)
		}
	}
}

// Announce implements Locator.
func (c *Client) Announce(m Member) error {
	_, err := c.roundTrip(wireReq{Op: "announce", Member: m})
	return err
}

// Deregister implements Locator.
func (c *Client) Deregister(id string) error {
	_, err := c.roundTrip(wireReq{Op: "deregister", ID: id})
	return err
}

// Live implements Locator.
func (c *Client) Live(api string, exclude ...string) ([]Member, error) {
	resp, err := c.roundTrip(wireReq{Op: "live", API: api, Exclude: exclude})
	if err != nil {
		return nil, err
	}
	return resp.Members, nil
}
