package fleet

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"ava/internal/backoff"
	"ava/internal/transport"
)

// The wire protocol is one JSON request frame per operation, answered by
// one JSON response frame, over the same length-prefixed transport the
// call path uses. Discovery traffic is tiny and rare next to call traffic,
// so readability wins over marshalling speed here.

type wireReq struct {
	Op      string        `json:"op"` // "announce", "deregister", "live", "gossip"
	Member  Member        `json:"member,omitempty"`
	ID      string        `json:"id,omitempty"`
	API     string        `json:"api,omitempty"`
	Exclude []string      `json:"exclude,omitempty"`
	Entries []GossipEntry `json:"entries,omitempty"`
}

type wireResp struct {
	OK      bool     `json:"ok"`
	Err     string   `json:"err,omitempty"`
	Members []Member `json:"members,omitempty"`
}

// Serve answers registry requests on l until the listener closes. Each
// connection may issue any number of requests; avad's announcer keeps one
// open for its heartbeat stream.
func Serve(l *transport.Listener, reg *Registry) {
	for {
		ep, err := l.Accept()
		if err != nil {
			return
		}
		go ServeConn(ep, reg)
	}
}

// ServeConn answers registry requests on one established connection until
// it drops — the per-connection half of Serve, exported so harnesses that
// track accepted endpoints (to sever them like a machine crash) can drive
// the same protocol loop.
func ServeConn(ep transport.Endpoint, reg *Registry) {
	defer ep.Close()
	for {
		frame, err := ep.Recv()
		if err != nil {
			return
		}
		var req wireReq
		resp := wireResp{OK: true}
		if err := json.Unmarshal(frame, &req); err != nil {
			resp = wireResp{Err: fmt.Sprintf("malformed request: %v", err)}
		} else {
			switch req.Op {
			case "announce":
				reg.Announce(req.Member)
			case "deregister":
				reg.Deregister(req.ID)
			case "live":
				resp.Members, _ = reg.Live(req.API, req.Exclude...)
			case "gossip":
				reg.Merge(req.Entries)
			default:
				resp = wireResp{Err: fmt.Sprintf("unknown op %q", req.Op)}
			}
		}
		out, err := json.Marshal(resp)
		if err != nil {
			return
		}
		if err := ep.Send(out); err != nil {
			return
		}
	}
}

// Client is a Locator over a TCP connection to a served registry. It
// redials transparently after a connection failure, pacing reconnect
// attempts with a jittered backoff series, so a registry restart does not
// kill every announcer in the fleet: the client rides out the restart
// window instead of failing on the first dropped frame.
type Client struct {
	addr string

	mu    sync.Mutex
	ep    transport.Endpoint
	retry *backoff.Backoff
}

// DialRegistry connects to a registry served at addr. The connection is
// established lazily on the first request.
func DialRegistry(addr string) *Client {
	return &Client{addr: addr, retry: backoff.New(backoff.Config{})}
}

// SetRetry replaces the client's reconnect pacing — the same jittered
// shape the failover layer uses. Call before the first request; a fixed
// Seed makes the retry schedule reproducible in tests.
func (c *Client) SetRetry(cfg backoff.Config) {
	c.mu.Lock()
	c.retry = backoff.New(cfg)
	c.mu.Unlock()
}

// Close releases the client's connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ep != nil {
		c.ep.Close()
		c.ep = nil
	}
}

// roundTrip sends one request and awaits its response, redialing under a
// bounded jittered-backoff series if the cached connection has gone stale.
// All registry operations are idempotent (announce and deregister are
// last-write-wins, live is a read), so retrying a whole request after a
// mid-flight connection loss is safe. Protocol-level failures — a
// malformed response or an error verdict from the registry — are not
// retried: the registry answered, it just said no.
func (c *Client) roundTrip(req wireReq) (wireResp, error) {
	frame, err := json.Marshal(req)
	if err != nil {
		return wireResp{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var series *backoff.Series
	for {
		resp, retryable, err := c.attemptLocked(frame)
		if err == nil || !retryable {
			return resp, err
		}
		if series == nil {
			series = c.retry.Series()
		}
		d, ok := series.Next()
		if !ok {
			return wireResp{}, fmt.Errorf("fleet: registry %s unreachable after %v of retries: %w",
				c.addr, series.Spent(), err)
		}
		time.Sleep(d)
	}
}

// attemptLocked makes one dial-send-recv attempt; retryable reports whether
// the failure was a transport loss worth another attempt.
func (c *Client) attemptLocked(frame []byte) (wireResp, bool, error) {
	if c.ep == nil {
		ep, err := transport.Dial(c.addr)
		if err != nil {
			return wireResp{}, true, fmt.Errorf("fleet: dial registry %s: %w", c.addr, err)
		}
		c.ep = ep
	}
	if err := c.ep.Send(frame); err != nil {
		c.dropLocked()
		return wireResp{}, true, fmt.Errorf("fleet: registry %s: %w", c.addr, err)
	}
	reply, err := c.ep.Recv()
	if err != nil {
		c.dropLocked()
		return wireResp{}, true, fmt.Errorf("fleet: registry %s: %w", c.addr, err)
	}
	var resp wireResp
	if err := json.Unmarshal(reply, &resp); err != nil {
		c.dropLocked()
		return wireResp{}, false, fmt.Errorf("fleet: malformed registry response: %w", err)
	}
	if resp.Err != "" {
		return wireResp{}, false, fmt.Errorf("fleet: registry: %s", resp.Err)
	}
	return resp, false, nil
}

func (c *Client) dropLocked() {
	if c.ep != nil {
		c.ep.Close()
		c.ep = nil
	}
}

// Announce implements Locator.
func (c *Client) Announce(m Member) error {
	_, err := c.roundTrip(wireReq{Op: "announce", Member: m})
	return err
}

// Deregister implements Locator.
func (c *Client) Deregister(id string) error {
	_, err := c.roundTrip(wireReq{Op: "deregister", ID: id})
	return err
}

// Live implements Locator.
func (c *Client) Live(api string, exclude ...string) ([]Member, error) {
	resp, err := c.roundTrip(wireReq{Op: "live", API: api, Exclude: exclude})
	if err != nil {
		return nil, err
	}
	return resp.Members, nil
}

// Gossip implements GossipPeer: it pushes a registry table export to the
// remote registry, which merges it last-write-wins.
func (c *Client) Gossip(entries []GossipEntry) error {
	_, err := c.roundTrip(wireReq{Op: "gossip", Entries: entries})
	return err
}
