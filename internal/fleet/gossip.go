package fleet

import (
	"sync"
	"time"

	"ava/internal/clock"
)

// Registry replication: avaregd instances gossip their TTL'd member tables
// to each other so a VM can keep resolving peers after any single registry
// dies. The protocol is anti-entropy push — each registry periodically
// sends its full table (tombstones included) to every peer, and the
// receiver merges with last-write-wins on announce time. Full-table push
// is deliberate: fleets are tens of hosts, a table is a few KB, and full
// state makes convergence independent of delivery order or lost rounds.

// GossipEntry is one member record as replicated between registries: the
// member, the time of its last write (announce heartbeat or deregister),
// and whether that write was a deregister.
type GossipEntry struct {
	Member Member    `json:"member"`
	Beat   time.Time `json:"beat"`
	Gone   bool      `json:"gone,omitempty"`
}

// Export snapshots the registry's table for a gossip push, tombstones
// included — a peer must learn about deregisters, not just arrivals.
func (r *Registry) Export() []GossipEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GossipEntry, 0, len(r.members))
	for _, e := range r.members {
		out = append(out, GossipEntry{Member: e.m, Beat: e.beat, Gone: e.gone})
	}
	return out
}

// Merge folds a peer's exported table into this registry: for each entry,
// the copy with the newer beat wins (ties keep the local copy — both
// copies carry the same write). Returns how many entries were adopted.
// Entries already older than the TTL at merge time are still recorded —
// Live ignores them and Expire reclaims them — so two registries that
// merge the same dead entry agree it is dead rather than disagreeing on
// whether it exists.
func (r *Registry) Merge(entries []GossipEntry) int {
	n := 0
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ge := range entries {
		id := ge.Member.ID
		if id == "" {
			continue
		}
		if local, ok := r.members[id]; ok && !ge.Beat.After(local.beat) {
			continue
		}
		r.members[id] = &entry{m: ge.Member, beat: ge.Beat, gone: ge.Gone}
		n++
	}
	return n
}

// GossipPeer is the push target a Gossiper replicates to — *Client
// implements it over the wire, *Registry in process.
type GossipPeer interface {
	Gossip(entries []GossipEntry) error
}

// Gossip merges entries directly, making *Registry a GossipPeer for
// in-process tests and single-binary deployments.
func (r *Registry) Gossip(entries []GossipEntry) error {
	r.Merge(entries)
	return nil
}

// Gossiper pushes one registry's table to a set of peers on an interval.
// Push failures are silently retried next round: a dead peer is exactly
// the condition gossip exists to ride out.
type Gossiper struct {
	reg   *Registry
	peers []GossipPeer
	every time.Duration
	clk   clock.Clock
	done  chan struct{}
	once  sync.Once
}

// StartGossip begins replicating reg to peers. every <= 0 selects
// DefaultTTL/4 (the announcer's heartbeat cadence — member freshness at a
// peer lags by at most one gossip interval); clk nil uses the wall clock.
func StartGossip(reg *Registry, peers []GossipPeer, every time.Duration, clk clock.Clock) *Gossiper {
	if every <= 0 {
		every = DefaultTTL / 4
	}
	if clk == nil {
		clk = clock.NewReal()
	}
	g := &Gossiper{reg: reg, peers: peers, every: every, clk: clk, done: make(chan struct{})}
	go g.loop()
	return g
}

func (g *Gossiper) loop() {
	for {
		g.clk.Sleep(g.every)
		select {
		case <-g.done:
			return
		default:
		}
		g.PushNow()
	}
}

// PushNow pushes the current table to every peer immediately.
func (g *Gossiper) PushNow() {
	entries := g.reg.Export()
	if len(entries) == 0 {
		return
	}
	for _, p := range g.peers {
		p.Gossip(entries)
	}
}

// Close stops the gossip loop.
func (g *Gossiper) Close() {
	g.once.Do(func() { close(g.done) })
}
