package fleet

import (
	"fmt"
	"sort"
	"sync"
)

// MultiClient is a Locator over several registry replicas: writes fan out
// to every replica, reads merge the replies of however many answered
// (subject to a quorum floor). Because it satisfies Locator, everything
// built on the single-registry seam — FleetDialer, placement policies,
// announcers — works against an HA registry set unchanged.
//
// The consistency model matches the registry itself: TTL'd last-write-wins
// soft state, not consensus. Announces reach the replicas that are up and
// gossip repairs the ones that were not; a read is correct if it sees at
// least one replica that heard from the member within a TTL.
type MultiClient struct {
	locs   []Locator
	quorum int

	mu sync.Mutex
}

// NewMultiClient builds a quorum locator over the given replicas. The
// default read quorum is 1 — any reachable replica serves the fleet view,
// which is the right availability/staleness trade for TTL'd soft state.
// Raise it with SetQuorum when a partitioned minority replica must not be
// trusted alone.
func NewMultiClient(locs ...Locator) *MultiClient {
	return &MultiClient{locs: locs, quorum: 1}
}

// DialRegistries builds a MultiClient of TCP clients, one per registry
// address.
func DialRegistries(addrs ...string) *MultiClient {
	locs := make([]Locator, 0, len(addrs))
	for _, a := range addrs {
		locs = append(locs, DialRegistry(a))
	}
	return NewMultiClient(locs...)
}

// SetQuorum sets how many replicas must answer a Live read before the
// merged view is trusted; values are clamped to [1, len(replicas)].
func (mc *MultiClient) SetQuorum(q int) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if q < 1 {
		q = 1
	}
	if q > len(mc.locs) {
		q = len(mc.locs)
	}
	mc.quorum = q
}

// Announce implements Locator: the member is announced to every replica,
// and the announce succeeds if any replica took it — the others catch up
// by gossip or the next heartbeat.
func (mc *MultiClient) Announce(m Member) error {
	return mc.fanout("announce", func(l Locator) error { return l.Announce(m) })
}

// Deregister implements Locator with the same any-replica-success rule.
func (mc *MultiClient) Deregister(id string) error {
	return mc.fanout("deregister", func(l Locator) error { return l.Deregister(id) })
}

func (mc *MultiClient) fanout(op string, f func(Locator) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(mc.locs))
	for i, l := range mc.locs {
		wg.Add(1)
		go func(i int, l Locator) {
			defer wg.Done()
			errs[i] = f(l)
		}(i, l)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			return nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return fmt.Errorf("fleet: %s failed on all %d registries: %w", op, len(mc.locs), firstErr)
}

// Live implements Locator: every replica is queried concurrently, at least
// quorum of them must answer, and the answers are merged — union deduped
// by member ID (first replica in construction order wins a conflict, so a
// single call is deterministic) and re-ranked with the fleet's health
// ordering, exactly as a single registry would rank them.
func (mc *MultiClient) Live(api string, exclude ...string) ([]Member, error) {
	mc.mu.Lock()
	quorum := mc.quorum
	mc.mu.Unlock()

	var wg sync.WaitGroup
	views := make([][]Member, len(mc.locs))
	errs := make([]error, len(mc.locs))
	for i, l := range mc.locs {
		wg.Add(1)
		go func(i int, l Locator) {
			defer wg.Done()
			views[i], errs[i] = l.Live(api, exclude...)
		}(i, l)
	}
	wg.Wait()

	answered := 0
	var firstErr error
	seen := make(map[string]bool)
	var ms []Member
	for i := range mc.locs {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		answered++
		for _, m := range views[i] {
			if seen[m.ID] {
				continue
			}
			seen[m.ID] = true
			ms = append(ms, m)
		}
	}
	if answered < quorum {
		return nil, fmt.Errorf("fleet: %d/%d registries answered, quorum is %d: %w",
			answered, len(mc.locs), quorum, firstErr)
	}
	sort.Slice(ms, func(i, j int) bool { return less(ms[i], ms[j]) })
	return ms, nil
}

// Close releases every underlying TCP client (replicas that are not
// *Client are left alone).
func (mc *MultiClient) Close() {
	for _, l := range mc.locs {
		if c, ok := l.(*Client); ok {
			c.Close()
		}
	}
}
