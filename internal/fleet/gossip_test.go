package fleet

import (
	"testing"
	"time"

	"ava/internal/clock"
)

// Two registries that missed each other's announces converge to the same
// member table after one gossip exchange in each direction, and agree on
// TTL expiry because beats replicate verbatim.
func TestGossipConvergenceAfterPartitionedAnnounce(t *testing.T) {
	clk := clock.NewVirtualAt(time.Unix(1000, 0))
	regA := NewRegistry(time.Second, clk)
	regB := NewRegistry(time.Second, clk)

	// The "partition": host-a's announce only reached registry A, host-b's
	// only registry B.
	regA.Announce(Member{ID: "host-a", Addr: "a:1", API: "opencl"})
	clk.Advance(10 * time.Millisecond)
	regB.Announce(Member{ID: "host-b", Addr: "b:1", API: "opencl"})

	// One anti-entropy push each way repairs both tables.
	if n := regB.Merge(regA.Export()); n != 1 {
		t.Fatalf("B adopted %d entries from A, want 1", n)
	}
	if n := regA.Merge(regB.Export()); n != 1 {
		t.Fatalf("A adopted %d entries from B, want 1", n)
	}
	for _, reg := range []*Registry{regA, regB} {
		ms, err := reg.Live("opencl")
		if err != nil || len(ms) != 2 {
			t.Fatalf("converged Live = %v, %v; want both hosts", ms, err)
		}
	}

	// A replicated beat is the original write time, not the merge time:
	// when host-a's heartbeat stops, both registries expire it at the same
	// virtual instant even though B learned of it second-hand.
	clk.Advance(time.Second - 2*time.Millisecond) // host-a 8ms past its TTL, host-b 2ms inside it
	for _, reg := range []*Registry{regA, regB} {
		ms, err := reg.Live("opencl")
		if err != nil || len(ms) != 1 || ms[0].ID != "host-b" {
			t.Fatalf("post-TTL Live = %v, %v; want exactly host-b", ms, err)
		}
	}
}

// A merge never resurrects a deregistered member from a peer's stale
// announce: the tombstone is a newer write and last-write-wins keeps it.
func TestGossipTombstoneBeatsStaleAnnounce(t *testing.T) {
	clk := clock.NewVirtualAt(time.Unix(1000, 0))
	regA := NewRegistry(time.Second, clk)
	regB := NewRegistry(time.Second, clk)

	regA.Announce(Member{ID: "host-a", Addr: "a:1", API: "opencl"})
	regB.Merge(regA.Export()) // B learns of host-a

	clk.Advance(10 * time.Millisecond)
	regA.Deregister("host-a") // graceful shutdown seen only by A

	// B still believes in host-a; its push must not revive it on A.
	regA.Merge(regB.Export())
	if ms, _ := regA.Live("opencl"); len(ms) != 0 {
		t.Fatalf("stale gossip resurrected deregistered member: %v", ms)
	}
	// And A's push teaches B about the deregister.
	regB.Merge(regA.Export())
	if ms, _ := regB.Live("opencl"); len(ms) != 0 {
		t.Fatalf("tombstone did not replicate: %v", ms)
	}

	// A newer announce (the host actually came back) revives through the
	// same last-write-wins rule.
	clk.Advance(10 * time.Millisecond)
	regB.Announce(Member{ID: "host-a", Addr: "a:1", API: "opencl"})
	regA.Merge(regB.Export())
	if ms, _ := regA.Live("opencl"); len(ms) != 1 {
		t.Fatalf("fresh announce did not revive tombstoned member")
	}
}

// Ties on beat keep the local copy and count nothing adopted, so repeated
// pushes of an unchanged table are idempotent.
func TestGossipMergeIdempotent(t *testing.T) {
	clk := clock.NewVirtualAt(time.Unix(1000, 0))
	regA := NewRegistry(time.Second, clk)
	regB := NewRegistry(time.Second, clk)
	regA.Announce(Member{ID: "host-a", Addr: "a:1", API: "opencl"})

	ex := regA.Export()
	if n := regB.Merge(ex); n != 1 {
		t.Fatalf("first merge adopted %d, want 1", n)
	}
	if n := regB.Merge(ex); n != 0 {
		t.Fatalf("repeat merge adopted %d, want 0", n)
	}
}

// The Gossiper delivers an announce that hit only one registry to the
// peer within a push interval or two.
func TestGossiperPushesOnCadence(t *testing.T) {
	regA := NewRegistry(0, nil)
	regB := NewRegistry(0, nil)
	regA.Announce(Member{ID: "host-a", Addr: "a:1", API: "opencl"})

	g := StartGossip(regA, []GossipPeer{regB}, 2*time.Millisecond, nil)
	defer g.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if ms, _ := regB.Live("opencl"); len(ms) == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("gossip never delivered the member to the peer")
}
