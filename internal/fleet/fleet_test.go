package fleet

import (
	"testing"
	"time"

	"ava/internal/clock"
	"ava/internal/transport"
)

func TestRegistryLiveRankingAndExclusion(t *testing.T) {
	clk := clock.NewVirtual()
	r := NewRegistry(time.Second, clk)
	r.Announce(Member{ID: "a", Addr: "1:1", API: "opencl", Load: 2})
	r.Announce(Member{ID: "b", Addr: "2:2", API: "opencl", Load: 0})
	r.Announce(Member{ID: "c", Addr: "3:3", API: "opencl", Load: 1})
	r.Announce(Member{ID: "d", Addr: "4:4", API: "mvnc", Load: 0})

	ms, err := r.Live("opencl")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[0].ID != "b" || ms[1].ID != "c" || ms[2].ID != "a" {
		t.Fatalf("health ranking wrong: %+v", ms)
	}

	ms, _ = r.Live("opencl", "b")
	if len(ms) != 2 || ms[0].ID != "c" {
		t.Fatalf("exclusion ignored: %+v", ms)
	}
	if ms, _ := r.Live("mvnc"); len(ms) != 1 || ms[0].ID != "d" {
		t.Fatalf("API filter wrong: %+v", ms)
	}
}

func TestRegistryTTLExpiryAndHeartbeat(t *testing.T) {
	clk := clock.NewVirtual()
	r := NewRegistry(time.Second, clk)
	r.Announce(Member{ID: "a", Addr: "1:1", API: "opencl"})
	r.Announce(Member{ID: "b", Addr: "2:2", API: "opencl"})

	clk.Advance(900 * time.Millisecond)
	r.Announce(Member{ID: "a", Addr: "1:1", API: "opencl"}) // heartbeat
	clk.Advance(500 * time.Millisecond)

	ms, _ := r.Live("opencl")
	if len(ms) != 1 || ms[0].ID != "a" {
		t.Fatalf("TTL expiry wrong: %+v", ms)
	}
	sts := r.Members()
	if len(sts) != 2 {
		t.Fatalf("Members() hid expired entries: %+v", sts)
	}
	if n := r.Expire(); n != 1 {
		t.Fatalf("Expire() dropped %d entries, want 1", n)
	}
	if sts := r.Members(); len(sts) != 1 {
		t.Fatalf("expired entry survived Expire: %+v", sts)
	}
}

func TestRegistryDeregister(t *testing.T) {
	r := NewRegistry(0, nil)
	r.Announce(Member{ID: "a", Addr: "1:1", API: "opencl"})
	r.Deregister("a")
	if ms, _ := r.Live("opencl"); len(ms) != 0 {
		t.Fatalf("deregistered member still live: %+v", ms)
	}
}

func TestWireClientRoundTrip(t *testing.T) {
	reg := NewRegistry(time.Minute, nil)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, reg)

	c := DialRegistry(l.Addr())
	defer c.Close()
	if err := c.Announce(Member{ID: "h1", Addr: "1.2.3.4:7272", API: "opencl", Load: 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.Announce(Member{ID: "h2", Addr: "1.2.3.5:7272", API: "opencl", Load: 1}); err != nil {
		t.Fatal(err)
	}
	ms, err := c.Live("opencl", "h2")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].ID != "h1" || ms[0].Load != 3 {
		t.Fatalf("Live over the wire: %+v", ms)
	}
	if err := c.Deregister("h1"); err != nil {
		t.Fatal(err)
	}
	if ms, _ := c.Live("opencl"); len(ms) != 1 || ms[0].ID != "h2" {
		t.Fatalf("Deregister over the wire: %+v", ms)
	}
}

func TestWireClientRedialsAfterRegistryRestart(t *testing.T) {
	reg := NewRegistry(time.Minute, nil)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	go Serve(l, reg)

	c := DialRegistry(addr)
	defer c.Close()
	if err := c.Announce(Member{ID: "h1", Addr: "x", API: "opencl"}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Restart the registry on the same address; the client's next request
	// rides a fresh connection.
	l2, err := transport.Listen(addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer l2.Close()
	go Serve(l2, reg)
	if err := c.Announce(Member{ID: "h1", Addr: "x", API: "opencl"}); err != nil {
		t.Fatalf("redial failed: %v", err)
	}
}

func TestAnnouncerHeartbeatAndClose(t *testing.T) {
	reg := NewRegistry(200*time.Millisecond, nil)
	a := StartAnnouncer(reg, Member{Addr: "1:1", API: "opencl"}, 50*time.Millisecond, nil)
	if ms, _ := reg.Live("opencl"); len(ms) != 1 || ms[0].ID != "1:1" {
		t.Fatalf("initial announce missing: %+v", ms)
	}
	a.SetLoad(7)
	deadline := time.Now().Add(2 * time.Second)
	for {
		ms, _ := reg.Live("opencl")
		if len(ms) == 1 && ms[0].Load == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("heartbeat never carried updated load: %+v", ms)
		}
		time.Sleep(5 * time.Millisecond)
	}
	a.Close()
	if ms, _ := reg.Live("opencl"); len(ms) != 0 {
		t.Fatalf("Close did not deregister: %+v", ms)
	}
}
