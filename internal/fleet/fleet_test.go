package fleet

import (
	"testing"
	"time"

	"ava/internal/clock"
	"ava/internal/transport"
)

func TestRegistryLiveRankingAndExclusion(t *testing.T) {
	clk := clock.NewVirtual()
	r := NewRegistry(time.Second, clk)
	r.Announce(Member{ID: "a", Addr: "1:1", API: "opencl", Load: 2})
	r.Announce(Member{ID: "b", Addr: "2:2", API: "opencl", Load: 0})
	r.Announce(Member{ID: "c", Addr: "3:3", API: "opencl", Load: 1})
	r.Announce(Member{ID: "d", Addr: "4:4", API: "mvnc", Load: 0})

	ms, err := r.Live("opencl")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[0].ID != "b" || ms[1].ID != "c" || ms[2].ID != "a" {
		t.Fatalf("health ranking wrong: %+v", ms)
	}

	ms, _ = r.Live("opencl", "b")
	if len(ms) != 2 || ms[0].ID != "c" {
		t.Fatalf("exclusion ignored: %+v", ms)
	}
	if ms, _ := r.Live("mvnc"); len(ms) != 1 || ms[0].ID != "d" {
		t.Fatalf("API filter wrong: %+v", ms)
	}
}

func TestRegistryTTLExpiryAndHeartbeat(t *testing.T) {
	clk := clock.NewVirtual()
	r := NewRegistry(time.Second, clk)
	r.Announce(Member{ID: "a", Addr: "1:1", API: "opencl"})
	r.Announce(Member{ID: "b", Addr: "2:2", API: "opencl"})

	clk.Advance(900 * time.Millisecond)
	r.Announce(Member{ID: "a", Addr: "1:1", API: "opencl"}) // heartbeat
	clk.Advance(500 * time.Millisecond)

	ms, _ := r.Live("opencl")
	if len(ms) != 1 || ms[0].ID != "a" {
		t.Fatalf("TTL expiry wrong: %+v", ms)
	}
	sts := r.Members()
	if len(sts) != 2 {
		t.Fatalf("Members() hid expired entries: %+v", sts)
	}
	if n := r.Expire(); n != 1 {
		t.Fatalf("Expire() dropped %d entries, want 1", n)
	}
	if sts := r.Members(); len(sts) != 1 {
		t.Fatalf("expired entry survived Expire: %+v", sts)
	}
}

func TestRegistryDeregister(t *testing.T) {
	r := NewRegistry(0, nil)
	r.Announce(Member{ID: "a", Addr: "1:1", API: "opencl"})
	r.Deregister("a")
	if ms, _ := r.Live("opencl"); len(ms) != 0 {
		t.Fatalf("deregistered member still live: %+v", ms)
	}
}

func TestWireClientRoundTrip(t *testing.T) {
	reg := NewRegistry(time.Minute, nil)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, reg)

	c := DialRegistry(l.Addr())
	defer c.Close()
	if err := c.Announce(Member{ID: "h1", Addr: "1.2.3.4:7272", API: "opencl", Load: 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.Announce(Member{ID: "h2", Addr: "1.2.3.5:7272", API: "opencl", Load: 1}); err != nil {
		t.Fatal(err)
	}
	ms, err := c.Live("opencl", "h2")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].ID != "h1" || ms[0].Load != 3 {
		t.Fatalf("Live over the wire: %+v", ms)
	}
	if err := c.Deregister("h1"); err != nil {
		t.Fatal(err)
	}
	if ms, _ := c.Live("opencl"); len(ms) != 1 || ms[0].ID != "h2" {
		t.Fatalf("Deregister over the wire: %+v", ms)
	}
}

func TestWireClientRedialsAfterRegistryRestart(t *testing.T) {
	reg := NewRegistry(time.Minute, nil)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	go Serve(l, reg)

	c := DialRegistry(addr)
	defer c.Close()
	if err := c.Announce(Member{ID: "h1", Addr: "x", API: "opencl"}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Restart the registry on the same address; the client's next request
	// rides a fresh connection.
	l2, err := transport.Listen(addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer l2.Close()
	go Serve(l2, reg)
	if err := c.Announce(Member{ID: "h1", Addr: "x", API: "opencl"}); err != nil {
		t.Fatalf("redial failed: %v", err)
	}
}

func TestAnnouncerHeartbeatAndClose(t *testing.T) {
	reg := NewRegistry(200*time.Millisecond, nil)
	a := StartAnnouncer(reg, Member{Addr: "1:1", API: "opencl"}, 50*time.Millisecond, nil)
	if ms, _ := reg.Live("opencl"); len(ms) != 1 || ms[0].ID != "1:1" {
		t.Fatalf("initial announce missing: %+v", ms)
	}
	a.SetLoad(7)
	deadline := time.Now().Add(2 * time.Second)
	for {
		ms, _ := reg.Live("opencl")
		if len(ms) == 1 && ms[0].Load == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("heartbeat never carried updated load: %+v", ms)
		}
		time.Sleep(5 * time.Millisecond)
	}
	a.Close()
	if ms, _ := reg.Live("opencl"); len(ms) != 0 {
		t.Fatalf("Close did not deregister: %+v", ms)
	}
}

// TestLiveTTLBoundaryMidQuery pins the expiry boundary: a member is live
// through the exact TTL instant and excluded one tick past it, and a
// heartbeat between queries revives it — the edge the dialer's retry
// branch hits when a host's announcement races its own query.
func TestLiveTTLBoundaryMidQuery(t *testing.T) {
	clk := clock.NewVirtual()
	r := NewRegistry(time.Second, clk)
	r.Announce(Member{ID: "a", Addr: "1:1", API: "opencl"})

	clk.Advance(time.Second) // exactly TTL: still live (expiry is strict)
	if ms, _ := r.Live("opencl"); len(ms) != 1 {
		t.Fatalf("member expired at exactly TTL: %+v", ms)
	}
	clk.Advance(time.Nanosecond) // one tick past: gone
	if ms, _ := r.Live("opencl"); len(ms) != 0 {
		t.Fatalf("member outlived its TTL: %+v", ms)
	}
	// A heartbeat mid-sequence revives it without a re-register.
	r.Announce(Member{ID: "a", Addr: "1:1", API: "opencl"})
	if ms, _ := r.Live("opencl"); len(ms) != 1 || ms[0].ID != "a" {
		t.Fatalf("heartbeat did not revive the member: %+v", ms)
	}
	// And the revived beat restarts the full TTL, not the remainder.
	clk.Advance(time.Second)
	if ms, _ := r.Live("opencl"); len(ms) != 1 {
		t.Fatalf("revived member expired early: %+v", ms)
	}
}

// TestLiveEqualLoadTieBreakDeterministic: members tying on every load
// signal rank by ID, whatever order they announced in — placement must
// be reproducible from the decision log, so the ranking cannot depend on
// map iteration or announce arrival.
func TestLiveEqualLoadTieBreakDeterministic(t *testing.T) {
	orders := [][]string{
		{"c", "a", "b"},
		{"b", "c", "a"},
		{"a", "b", "c"},
	}
	for _, order := range orders {
		r := NewRegistry(time.Minute, clock.NewVirtual())
		for _, id := range order {
			r.Announce(Member{ID: id, Addr: id, API: "opencl", Load: 3})
		}
		for i := 0; i < 20; i++ {
			ms, _ := r.Live("opencl")
			if len(ms) != 3 || ms[0].ID != "a" || ms[1].ID != "b" || ms[2].ID != "c" {
				t.Fatalf("announce order %v, query %d: rank %+v, want a,b,c", order, i, ms)
			}
		}
	}

	// The tie-break is lexicographic across the full signal: queue depth
	// splits equal loads, bytes-in-flight splits equal queue depths.
	r := NewRegistry(time.Minute, clock.NewVirtual())
	r.Announce(Member{ID: "a", Addr: "a", API: "opencl", Load: 1, QueueDepth: 9})
	r.Announce(Member{ID: "b", Addr: "b", API: "opencl", Load: 1, QueueDepth: 2, BytesInFlight: 500})
	r.Announce(Member{ID: "c", Addr: "c", API: "opencl", Load: 1, QueueDepth: 2, BytesInFlight: 100})
	ms, _ := r.Live("opencl")
	if len(ms) != 3 || ms[0].ID != "c" || ms[1].ID != "b" || ms[2].ID != "a" {
		t.Fatalf("lexicographic signal ranking wrong: %+v", ms)
	}
}

// TestAnnouncerSurvivesRegistryRestart: an announcer heartbeating over
// the TCP client re-registers its member after the registry process is
// replaced by an empty one on the same address — no operator involved.
func TestAnnouncerSurvivesRegistryRestart(t *testing.T) {
	reg := NewRegistry(time.Minute, nil)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	go Serve(l, reg)

	c := DialRegistry(addr)
	defer c.Close()
	a := StartAnnouncer(c, Member{ID: "h1", Addr: "1.2.3.4:7272", API: "opencl"}, 20*time.Millisecond, nil)
	defer a.Close()
	if ms, _ := reg.Live("opencl"); len(ms) != 1 {
		t.Fatalf("initial announce missing: %+v", ms)
	}

	// Kill the registry and bring up a fresh, empty one on the same port.
	// Closing the listener alone leaves the established connection to the
	// old process alive (a real crash would sever it); drop the client's
	// cached connection to model that.
	l.Close()
	c.Close()
	reg2 := NewRegistry(time.Minute, nil)
	l2, err := transport.Listen(addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer l2.Close()
	go Serve(l2, reg2)

	deadline := time.Now().Add(2 * time.Second)
	for {
		ms, _ := reg2.Live("opencl")
		if len(ms) == 1 && ms[0].ID == "h1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("announcer never re-registered with the restarted registry: %+v", ms)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAnnouncerSamplerAndAnnounceNow: the sampler refreshes the load
// signal on every push, and AnnounceNow lands immediately — the path the
// daemon uses when a VM migrates away and the stale load must not
// attract placements.
func TestAnnouncerSamplerAndAnnounceNow(t *testing.T) {
	reg := NewRegistry(time.Minute, nil)
	load := 5
	a := StartAnnouncer(reg, Member{ID: "h1", Addr: "1:1", API: "opencl"}, time.Hour, nil)
	defer a.Close()
	a.SetSampler(func(m *Member) { m.Load = load; m.QueueDepth = load * 2 })

	load = 1
	a.AnnounceNow()
	ms, _ := reg.Live("opencl")
	if len(ms) != 1 || ms[0].Load != 1 || ms[0].QueueDepth != 2 {
		t.Fatalf("AnnounceNow did not carry sampled load: %+v", ms)
	}
	a.SetDetail(9, 4, 1<<20)
	a.SetSampler(nil)
	a.AnnounceNow()
	ms, _ = reg.Live("opencl")
	if len(ms) != 1 || ms[0].Load != 9 || ms[0].QueueDepth != 4 || ms[0].BytesInFlight != 1<<20 {
		t.Fatalf("AnnounceNow did not carry SetDetail values: %+v", ms)
	}
}
