// Package fleet is the tiny discovery service behind cross-host failover:
// a registry of live avad API servers, fed by periodic announcements and
// queried by the failover dialer when it must move a VM's serving host.
//
// The registry is deliberately minimal — an in-process table with a
// heartbeat TTL and a health-ranked Live query — because the paper's
// disaggregated deployment (§4.1) only needs to answer one question: which
// peer avad can take over this VM's API right now? A thin JSON wire
// protocol (Serve/Dial in wire.go) lets real avad processes announce over
// TCP; in-process deployments and tests use the Registry directly. Both
// sides of that split implement Locator, so the failover dialer does not
// care which it was given.
package fleet

import (
	"sort"
	"sync"
	"time"

	"ava/internal/clock"
)

// DefaultTTL is how long an announcement stays live without a refresh.
// Announcers default to re-announcing every DefaultTTL/4.
const DefaultTTL = 3 * time.Second

// Member is one announced avad instance.
type Member struct {
	// ID names the instance uniquely across the fleet (avad defaults to
	// its advertised address).
	ID string `json:"id"`
	// Addr is the address peers dial to reach the instance's API server.
	Addr string `json:"addr"`
	// API is the accelerator API the instance serves ("opencl", "mvnc",
	// "qat"); Live matches on it so a VM never fails over onto a host
	// serving a different silo.
	API string `json:"api"`
	// Load is the instance's self-reported load (active VM connections);
	// Live ranks lighter hosts first.
	Load int `json:"load"`
	// QueueDepth is the instance's summed server dispatch backlog across
	// its VMs at the last announcement — calls admitted but not yet
	// executing. It breaks Load ties in ranking: two hosts with the same
	// VM count are not equally loaded if one has a queue.
	QueueDepth int `json:"queue_depth,omitempty"`
	// BytesInFlight is the data-plane payload volume the instance moved
	// over its last heartbeat interval — a coarse throughput-pressure
	// signal that breaks QueueDepth ties.
	BytesInFlight uint64 `json:"bytes_in_flight,omitempty"`
}

// Score folds the load signals into one scalar for skew math: each active
// VM counts 1, queue backlog adds fractionally (64 queued calls weigh like
// one VM), and recent bytes add up to one VM per GiB moved. Ranking itself
// compares the signals lexicographically (Load, QueueDepth, BytesInFlight,
// ID) so equal-load ordering stays exactly deterministic; Score is for the
// rebalancer's EWMA, where a scalar is needed.
func (m Member) Score() float64 {
	return float64(m.Load) + float64(m.QueueDepth)/64 + float64(m.BytesInFlight)/(1<<30)
}

// less is the fleet's health ranking: lexicographic on the load signals,
// with the member ID as the final tie-break so the order is deterministic
// — a placement policy re-running the same query must pick the same host.
func less(a, b Member) bool {
	if a.Load != b.Load {
		return a.Load < b.Load
	}
	if a.QueueDepth != b.QueueDepth {
		return a.QueueDepth < b.QueueDepth
	}
	if a.BytesInFlight != b.BytesInFlight {
		return a.BytesInFlight < b.BytesInFlight
	}
	return a.ID < b.ID
}

// Status is a member plus its registry-side liveness bookkeeping.
type Status struct {
	Member
	// LastBeat is when the member last announced.
	LastBeat time.Time
	// Live reports whether the member's TTL had not expired at query time.
	Live bool
}

// Locator is the discovery surface the failover dialer consumes: the
// in-process Registry and the TCP Client both implement it.
type Locator interface {
	// Announce upserts a member and refreshes its heartbeat.
	Announce(m Member) error
	// Deregister removes a member immediately (graceful shutdown).
	Deregister(id string) error
	// Live returns the live members serving api, health-ranked (lightest
	// load first, queue depth then bytes-in-flight then member ID breaking
	// ties — fully deterministic), excluding the given member IDs.
	Live(api string, exclude ...string) ([]Member, error)
}

type entry struct {
	m    Member
	beat time.Time
	// gone marks a tombstone: the member deregistered at beat. The record
	// is kept (instead of deleted) so gossip peers that have not yet seen
	// the deregister cannot resurrect the member with an older announce —
	// last-write-wins needs the write to exist. Tombstones expire like
	// ordinary entries.
	gone bool
}

// Registry is the in-process fleet table.
type Registry struct {
	clk clock.Clock
	ttl time.Duration

	mu      sync.Mutex
	members map[string]*entry
}

// NewRegistry builds a registry. ttl <= 0 selects DefaultTTL; clk nil uses
// the wall clock.
func NewRegistry(ttl time.Duration, clk clock.Clock) *Registry {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	if clk == nil {
		clk = clock.NewReal()
	}
	return &Registry{clk: clk, ttl: ttl, members: make(map[string]*entry)}
}

// Announce implements Locator. An announce revives a tombstoned member:
// the new beat is a newer write than the deregister.
func (r *Registry) Announce(m Member) error {
	if m.ID == "" {
		m.ID = m.Addr
	}
	now := r.clk.Now()
	r.mu.Lock()
	if e, ok := r.members[m.ID]; ok {
		e.m = m
		e.beat = now
		e.gone = false
	} else {
		r.members[m.ID] = &entry{m: m, beat: now}
	}
	r.mu.Unlock()
	return nil
}

// Deregister implements Locator. The member disappears from queries
// immediately but leaves a TTL'd tombstone behind so gossip peers cannot
// resurrect it with a pre-deregister announce.
func (r *Registry) Deregister(id string) error {
	now := r.clk.Now()
	r.mu.Lock()
	if e, ok := r.members[id]; ok {
		e.gone = true
		e.beat = now
	}
	r.mu.Unlock()
	return nil
}

// Live implements Locator: live members serving api, health-ranked by the
// deterministic less ordering, excluding the given IDs. The ranking never
// consults heartbeat freshness — two equally loaded hosts must sort the
// same way on every query, or admission-time placement would scatter
// depending on announce arrival order.
func (r *Registry) Live(api string, exclude ...string) ([]Member, error) {
	skip := make(map[string]bool, len(exclude))
	for _, id := range exclude {
		skip[id] = true
	}
	now := r.clk.Now()
	r.mu.Lock()
	ms := make([]Member, 0, len(r.members))
	for id, e := range r.members {
		if skip[id] || e.gone || e.m.API != api || now.Sub(e.beat) > r.ttl {
			continue
		}
		ms = append(ms, e.m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return less(ms[i], ms[j]) })
	return ms, nil
}

// Members returns every registered member with its liveness status
// (expired entries included), sorted by ID — the fleet's admin view.
func (r *Registry) Members() []Status {
	now := r.clk.Now()
	r.mu.Lock()
	out := make([]Status, 0, len(r.members))
	for _, e := range r.members {
		if e.gone {
			continue
		}
		out = append(out, Status{Member: e.m, LastBeat: e.beat, Live: now.Sub(e.beat) <= r.ttl})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Expire drops every member whose TTL has lapsed and returns how many were
// dropped. Queries already ignore expired members; Expire just reclaims
// the table space (long-running registries call it opportunistically).
// Lapsed tombstones are reclaimed too but not counted — they stopped being
// members at deregister time.
func (r *Registry) Expire() int {
	now := r.clk.Now()
	n := 0
	r.mu.Lock()
	for id, e := range r.members {
		if now.Sub(e.beat) > r.ttl {
			delete(r.members, id)
			if !e.gone {
				n++
			}
		}
	}
	r.mu.Unlock()
	return n
}
