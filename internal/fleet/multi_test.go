package fleet

import (
	"strings"
	"sync"
	"testing"
	"time"

	"ava/internal/backoff"
	"ava/internal/transport"
)

// regHost is one wire-served registry "machine" a test can SIGKILL:
// killing it closes the accept socket and severs every established
// connection, the failure a dead host actually presents.
type regHost struct {
	reg *Registry
	l   *transport.Listener

	mu  sync.Mutex
	eps []transport.Endpoint
}

func serveRegistry(t *testing.T) *regHost {
	t.Helper()
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := &regHost{reg: NewRegistry(0, nil), l: l}
	go func() {
		for {
			ep, err := l.Accept()
			if err != nil {
				return
			}
			h.mu.Lock()
			h.eps = append(h.eps, ep)
			h.mu.Unlock()
			go ServeConn(ep, h.reg)
		}
	}()
	t.Cleanup(h.kill)
	return h
}

func (h *regHost) addr() string { return h.l.Addr() }

func (h *regHost) kill() {
	h.l.Close()
	h.mu.Lock()
	eps := append([]transport.Endpoint(nil), h.eps...)
	h.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}

// shortRetry keeps dead-replica probes from dragging tests out.
func shortRetry(c *Client) *Client {
	c.SetRetry(backoff.Config{Base: time.Millisecond, Cap: 2 * time.Millisecond, Budget: 20 * time.Millisecond, Seed: 7})
	return c
}

// A MultiClient write lands on every live replica, and the merged read is
// ranked exactly as a single registry would rank it.
func TestMultiClientFanoutAndMergedRead(t *testing.T) {
	hA, hB := serveRegistry(t), serveRegistry(t)

	mc := NewMultiClient(shortRetry(DialRegistry(hA.addr())), shortRetry(DialRegistry(hB.addr())))
	defer mc.Close()

	if err := mc.Announce(Member{ID: "host-1", Addr: "h1:1", API: "opencl", Load: 2}); err != nil {
		t.Fatal(err)
	}
	if err := mc.Announce(Member{ID: "host-2", Addr: "h2:1", API: "opencl", Load: 1}); err != nil {
		t.Fatal(err)
	}
	for name, reg := range map[string]*Registry{"A": hA.reg, "B": hB.reg} {
		if ms, _ := reg.Live("opencl"); len(ms) != 2 {
			t.Fatalf("replica %s saw %d members, want 2", name, len(ms))
		}
	}
	ms, err := mc.Live("opencl")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].ID != "host-2" || ms[1].ID != "host-1" {
		t.Fatalf("merged Live = %v, want host-2 (lighter) then host-1", ms)
	}

	if err := mc.Deregister("host-2"); err != nil {
		t.Fatal(err)
	}
	if ms, _ := mc.Live("opencl"); len(ms) != 1 || ms[0].ID != "host-1" {
		t.Fatalf("post-deregister Live = %v, want only host-1", ms)
	}
}

// Killing one registry replica is invisible at quorum 1: the surviving
// replica answers reads, and writes still succeed by the any-replica rule.
func TestMultiClientSurvivesOneDeadRegistry(t *testing.T) {
	hA, hB := serveRegistry(t), serveRegistry(t)

	mc := NewMultiClient(shortRetry(DialRegistry(hA.addr())), shortRetry(DialRegistry(hB.addr())))
	defer mc.Close()
	if err := mc.Announce(Member{ID: "host-1", Addr: "h1:1", API: "opencl"}); err != nil {
		t.Fatal(err)
	}

	hA.kill() // SIGKILL the first registry machine

	ms, err := mc.Live("opencl")
	if err != nil {
		t.Fatalf("Live with one dead replica: %v", err)
	}
	if len(ms) != 1 || ms[0].ID != "host-1" {
		t.Fatalf("Live = %v, want host-1 from the survivor", ms)
	}
	if err := mc.Announce(Member{ID: "host-2", Addr: "h2:1", API: "opencl"}); err != nil {
		t.Fatalf("Announce with one dead replica: %v", err)
	}

	// A quorum of 2 is no longer reachable: the merged view must refuse
	// rather than silently degrade below the caller's floor.
	mc.SetQuorum(2)
	if _, err := mc.Live("opencl"); err == nil {
		t.Fatal("quorum 2 with one dead replica should fail")
	} else if !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("quorum failure not named in error: %v", err)
	}
}

// With every replica dead, reads and writes report the failure instead of
// pretending an empty fleet.
func TestMultiClientAllDead(t *testing.T) {
	hA := serveRegistry(t)
	hA.kill()
	mc := NewMultiClient(shortRetry(DialRegistry(hA.addr())))
	defer mc.Close()
	if _, err := mc.Live("opencl"); err == nil {
		t.Fatal("Live against an all-dead registry set should fail")
	}
	if err := mc.Announce(Member{ID: "x", Addr: "x:1", API: "opencl"}); err == nil {
		t.Fatal("Announce against an all-dead registry set should fail")
	}
}

// The wire client's bounded retry: while the registry is down, a call
// spends the jittered backoff budget and reports unreachable; once the
// registry is back (same address), the next call transparently recovers.
func TestWireClientBoundedRetryWhileRegistryDown(t *testing.T) {
	h := serveRegistry(t)
	addr := h.addr()

	c := shortRetry(DialRegistry(addr))
	defer c.Close()
	if err := c.Announce(Member{ID: "host-1", Addr: "h1:1", API: "opencl"}); err != nil {
		t.Fatal(err)
	}

	h.kill() // registry machine dies
	start := time.Now()
	if _, err := c.Live("opencl"); err == nil {
		t.Fatal("Live against a dead registry should fail after the retry budget")
	} else if !strings.Contains(err.Error(), "unreachable after") {
		t.Fatalf("retry exhaustion not named in error: %v", err)
	}
	if spent := time.Since(start); spent < 5*time.Millisecond {
		t.Fatalf("failed after %v — too fast to have retried under backoff", spent)
	}

	// Restart on the same address: the registry lost its soft state, the
	// client must redial and serve the (now re-announced) table.
	l2, err := transport.Listen(addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer l2.Close()
	go Serve(l2, NewRegistry(0, nil))
	if err := c.Announce(Member{ID: "host-1", Addr: "h1:1", API: "opencl"}); err != nil {
		t.Fatalf("Announce after registry restart: %v", err)
	}
	ms, err := c.Live("opencl")
	if err != nil || len(ms) != 1 {
		t.Fatalf("Live after restart = %v, %v; want the re-announced member", ms, err)
	}
}
