package fleet_test

import (
	"fmt"
	"log"

	"ava/internal/fleet"
	"ava/internal/transport"
)

// The in-process Registry is the simplest Locator: embed it directly when
// guest, router and server share one process (tests, single-host stacks).
func ExampleRegistry() {
	reg := fleet.NewRegistry(0, nil)
	reg.Announce(fleet.Member{ID: "gpu-host-a", Addr: "10.0.0.1:7272", API: "opencl", Load: 2})
	reg.Announce(fleet.Member{ID: "gpu-host-b", Addr: "10.0.0.2:7272", API: "opencl", Load: 0})

	ms, _ := reg.Live("opencl")
	for _, m := range ms {
		fmt.Printf("%s load=%d\n", m.ID, m.Load)
	}
	// Output:
	// gpu-host-b load=0
	// gpu-host-a load=2
}

// DialRegistry yields the wire-backed Locator: the same surface served by
// a remote avaregd over TCP. The client lazily dials, transparently
// redials a restarted registry, and retries transient failures under a
// bounded jittered backoff before reporting an error.
func ExampleDialRegistry() {
	// A real deployment points this at avaregd; here we serve an
	// in-process registry over a loopback listener.
	reg := fleet.NewRegistry(0, nil)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go fleet.Serve(l, reg)

	loc := fleet.DialRegistry(l.Addr())
	defer loc.Close()
	loc.Announce(fleet.Member{ID: "gpu-host-a", Addr: "10.0.0.1:7272", API: "opencl"})

	ms, err := loc.Live("opencl")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(ms), "live")
	// Output:
	// 1 live
}

// DialRegistries yields the replicated Locator: announces fan out to
// every registry replica, Live quorum-reads and merges, so any single
// registry can die without placement or failover noticing. All three
// flavors satisfy Locator — FleetDialer, ava.WithPlacement and the
// rebalancer take whichever the deployment runs.
func ExampleDialRegistries() {
	regA, regB := fleet.NewRegistry(0, nil), fleet.NewRegistry(0, nil)
	lA, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lA.Close()
	lB, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lB.Close()
	go fleet.Serve(lA, regA)
	go fleet.Serve(lB, regB)

	loc := fleet.DialRegistries(lA.Addr(), lB.Addr())
	defer loc.Close()
	loc.Announce(fleet.Member{ID: "gpu-host-a", Addr: "10.0.0.1:7272", API: "opencl"})

	// The announce reached both replicas; either alone can answer.
	lA.Close() // one registry machine dies
	ms, err := loc.Live("opencl")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(ms), "live via the surviving replica")
	// Output:
	// 1 live via the surviving replica
}
