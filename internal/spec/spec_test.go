package spec

import (
	"strings"
	"testing"
)

// figure4 is the paper's Figure 4 example, transcribed into the
// self-contained spec dialect (the cl.h declarations are folded in).
const figure4 = `
api "opencl" version "1.2";

handle cl_command_queue;
handle cl_mem;
handle cl_event;

const CL_SUCCESS = 0;
const CL_TRUE = 1;

type cl_int = int32_t { success(CL_SUCCESS); };
type cl_bool = uint32_t;
type cl_uint = uint32_t;

cl_int clEnqueueReadBuffer(
    cl_command_queue command_queue,
    cl_mem buf, cl_bool blocking_read,
    size_t offset, size_t size, void *ptr,
    cl_uint num_events_in_wait_list,
    const cl_event *event_wait_list, cl_event *event) {
  if (blocking_read == CL_TRUE) sync; else async;
  parameter(ptr) { out; buffer(size); }
  parameter(event_wait_list) { in; buffer(num_events_in_wait_list); }
  parameter(event) { out; element { allocates; } }
  resource(bandwidth, size);
}
`

func mustParse(t *testing.T, src string) *API {
	t.Helper()
	api, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return api
}

func TestParseFigure4(t *testing.T) {
	api := mustParse(t, figure4)
	if api.Name != "opencl" || api.Version != "1.2" {
		t.Fatalf("api header: %q %q", api.Name, api.Version)
	}
	if len(api.Handles) != 3 || len(api.Consts) != 2 || len(api.Types) != 3 {
		t.Fatalf("decl counts: %d handles, %d consts, %d types",
			len(api.Handles), len(api.Consts), len(api.Types))
	}
	fn := api.Func("clEnqueueReadBuffer")
	if fn == nil {
		t.Fatal("function missing")
	}
	if len(fn.Params) != 9 {
		t.Fatalf("params = %d", len(fn.Params))
	}

	if fn.Sync.Mode != SyncConditional || fn.Sync.CondParam != "blocking_read" || fn.Sync.Negate {
		t.Fatalf("sync = %+v", fn.Sync)
	}
	v, err := EvalExpr(fn.Sync.CondValue, api, nil)
	if err != nil || v != 1 {
		t.Fatalf("cond value = %d, %v", v, err)
	}

	ptr := fn.Param("ptr")
	if ptr.Dir != DirOut || !ptr.IsBuffer || ptr.SizeExpr.String() != "size" {
		t.Fatalf("ptr = %+v", ptr)
	}
	ewl := fn.Param("event_wait_list")
	if ewl.Dir != DirIn || !ewl.IsBuffer || !ewl.Type.Const {
		t.Fatalf("event_wait_list = %+v", ewl)
	}
	ev := fn.Param("event")
	if ev.Dir != DirOut || !ev.IsElement || !ev.Allocates {
		t.Fatalf("event = %+v", ev)
	}

	if len(fn.Resources) != 1 || fn.Resources[0].Resource != "bandwidth" {
		t.Fatalf("resources = %+v", fn.Resources)
	}
}

func TestSuccessValue(t *testing.T) {
	api := mustParse(t, figure4)
	fn := api.Func("clEnqueueReadBuffer")
	v, ok := api.SuccessValue(fn)
	if !ok || v != 0 {
		t.Fatalf("success = %d, %t", v, ok)
	}
}

func TestResolveAliasChain(t *testing.T) {
	api := mustParse(t, `
		type a = int32_t;
		type b = a;
		type c = b;
	`)
	rt, err := api.Resolve("c")
	if err != nil || rt.Kind != KindInt || rt.Size != 4 {
		t.Fatalf("resolve c = %+v, %v", rt, err)
	}
}

func TestResolveCycleDetected(t *testing.T) {
	api := NewAPI("x")
	api.Types["a"] = &TypeDecl{Name: "a", Base: "b"}
	api.Types["b"] = &TypeDecl{Name: "b", Base: "a"}
	if _, err := api.Resolve("a"); err == nil {
		t.Fatal("alias cycle not detected")
	}
}

func TestResolveHandle(t *testing.T) {
	api := mustParse(t, `handle cl_mem;`)
	rt, err := api.Resolve("cl_mem")
	if err != nil || rt.Kind != KindHandle || rt.Size != 8 {
		t.Fatalf("resolve handle = %+v, %v", rt, err)
	}
}

func TestElemSizeVoidIsOne(t *testing.T) {
	api := NewAPI("x")
	n, err := api.ElemSize("void")
	if err != nil || n != 1 {
		t.Fatalf("void elem size = %d, %v", n, err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unterminated comment", `/* nope`, "unterminated block comment"},
		{"unterminated string", `api "x`, "unterminated string"},
		{"bad char", `type a = int32_t; %`, "unexpected character"},
		{"bad hex", `const X = 0x;`, "malformed hex"},
		{"dup type", "type a = int32_t;\ntype a = int64_t;", "redeclared"},
		{"dup const", "const A = 1;\nconst A = 2;", "redeclared"},
		{"dup handle", "handle h;\nhandle h;", "redeclared"},
		{"dup func", "handle h;\nvoid f(h x);\nvoid f(h x);", "redeclared"},
		{"dup param", `void f(int32_t a, int64_t a);`, "duplicate parameter"},
		{"unknown annotation", `void f(int32_t a) { frobnicate; }`, "unknown annotation"},
		{"unknown param in ann", `void f(int32_t a) { parameter(b) { in; } }`, "no such parameter"},
		{"same branches", `void f(int32_t a) { if (a == 1) sync; else sync; }`, "identical branches"},
		{"bad track kind", `void f(int32_t a) { track(explode); }`, "unknown track kind"},
		{"two tracks", "handle h;\nvoid f(h a) { track(modify, a); track(config); }", "multiple track"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown type", `mystery f(int32_t a);`, "unknown type"},
		{"deep pointer", `void f(int32_t **a) { parameter(a) { in; buffer(1); } }`, "pointer depth"},
		{"buffer on scalar", `void f(int32_t a) { parameter(a) { in; buffer(4); } }`, "scalar parameter"},
		{"out on scalar", `void f(int32_t a) { parameter(a) { out; } }`, "by-value"},
		{"void value", `void f(void a);`, "not a value type"},
		{"buffer and element", `void f(int32_t *a) { parameter(a) { out; buffer(1); element; } }`, "both buffer and element"},
		{"const out", `void f(const int32_t *a) { parameter(a) { out; buffer(1); } }`, "const pointer cannot be an output"},
		{"unannotated pointer", `void f(int32_t *a);`, "needs a buffer"},
		{"size refs pointer", `void f(const int32_t *a, const int32_t *b) { parameter(a) { in; buffer(b); } parameter(b) { in; buffer(1); } }`, "references pointer parameter"},
		{"size refs unknown", `void f(const int32_t *a) { parameter(a) { in; buffer(nope); } }`, "unknown identifier"},
		{"allocates non-handle", `void f(int32_t *a) { parameter(a) { out; element; allocates; } }`, "requires a handle"},
		{"cond on pointer", `void f(const int32_t *a) { parameter(a) { in; buffer(1); } if (a == 1) sync; else async; }`, "must be scalar"},
		{"cond unknown param", `void f(int32_t a) { if (b == 1) sync; else async; }`, "unknown parameter"},
		{"async no success", `int32_t f(int32_t a) { async; }`, "declares no success value"},
		{"track missing param", "handle h;\nvoid f(h a) { track(modify); }", "requires an object parameter"},
		{"track unknown param", "handle h;\nvoid f(h a) { track(destroy, b); }", "no such parameter"},
		{"track create non-handle ret", `int32_t f(int32_t a) { track(create); }`, "requires a handle return"},
		{"bad sizeof", `void f(const int32_t *a, size_t n) { parameter(a) { in; buffer(n * sizeof(nothing)); } }`, "unknown type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateReportsAllErrors(t *testing.T) {
	_, err := Parse(`
		mystery f1(int32_t a);
		mystery f2(int32_t a);
	`)
	if err == nil {
		t.Fatal("expected errors")
	}
	if strings.Count(err.Error(), "unknown type") < 2 {
		t.Fatalf("want both errors reported, got: %v", err)
	}
}

func TestEvalExpr(t *testing.T) {
	api := mustParse(t, `
		const K = 10;
		type cl_float = float;
	`)
	env := Env{"n": 7, "m": 3}
	cases := []struct {
		src  string
		want int64
	}{
		{"5", 5},
		{"n", 7},
		{"K", 10},
		{"n * m", 21},
		{"n + m * 2", 13},
		{"(n + m) * 2", 20},
		{"n - m", 4},
		{"n / m", 2},
		{"n * sizeof(cl_float)", 28},
		{"sizeof(double) * K", 80},
	}
	for _, tc := range cases {
		e, err := parseExprString(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		got, err := EvalExpr(e, api, env)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got != tc.want {
			t.Errorf("%s = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestEvalExprErrors(t *testing.T) {
	api := NewAPI("x")
	for _, src := range []string{"nope", "1 / 0", "sizeof(ghost)"} {
		e, err := parseExprString(src)
		if err != nil {
			t.Fatalf("parse %s: %v", src, err)
		}
		if _, err := EvalExpr(e, api, nil); err == nil {
			t.Errorf("%s: expected evaluation error", src)
		}
	}
}

// parseExprString parses a standalone expression using the full parser.
func parseExprString(src string) (Expr, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseExpr()
}

func TestNegativeConst(t *testing.T) {
	api := mustParse(t, `const CL_INVALID_VALUE = -30;`)
	v, ok := api.Const("CL_INVALID_VALUE")
	if !ok || v != -30 {
		t.Fatalf("const = %d, %t", v, ok)
	}
}

func TestHexConst(t *testing.T) {
	api := mustParse(t, `const FLAG = 0x10;`)
	if v, _ := api.Const("FLAG"); v != 16 {
		t.Fatalf("const = %d", v)
	}
}

func TestCommentsSkipped(t *testing.T) {
	api := mustParse(t, `
		// line comment
		/* block
		   comment */
		handle h; // trailing
	`)
	if len(api.Handles) != 1 {
		t.Fatal("handle not parsed")
	}
}

func TestVoidParameterList(t *testing.T) {
	api := mustParse(t, `int32_t getVersion(void);`)
	fn := api.Func("getVersion")
	if fn == nil || len(fn.Params) != 0 {
		t.Fatalf("fn = %+v", fn)
	}
}

func TestVoidPointerFirstParam(t *testing.T) {
	api := mustParse(t, `void f(void *p, size_t size) { parameter(p) { in; buffer(size); } }`)
	fn := api.Func("f")
	if len(fn.Params) != 2 || fn.Params[0].Type.Name != "void" || fn.Params[0].Type.Stars != 1 {
		t.Fatalf("params = %+v", fn.Params[0])
	}
}

func TestNeqSyncCondition(t *testing.T) {
	api := mustParse(t, `
		const FALSE = 0;
		void f(int32_t blocking) { if (blocking != FALSE) sync; else async; }
	`)
	fn := api.Func("f")
	if fn.Sync.Mode != SyncConditional || !fn.Sync.Negate {
		t.Fatalf("sync = %+v", fn.Sync)
	}
}

func TestSwappedBranchesNormalized(t *testing.T) {
	api := mustParse(t, `void f(int32_t b) { if (b == 0) async; else sync; }`)
	fn := api.Func("f")
	// "async when b==0" normalizes to "sync when b != 0".
	if fn.Sync.Mode != SyncConditional || !fn.Sync.Negate {
		t.Fatalf("sync = %+v", fn.Sync)
	}
}

func TestInferFigure4Unannotated(t *testing.T) {
	src := `
		api "opencl";
		handle cl_command_queue;
		handle cl_mem;
		handle cl_event;
		const CL_SUCCESS = 0;
		type cl_int = int32_t { success(CL_SUCCESS); };
		type cl_bool = uint32_t;
		type cl_uint = uint32_t;

		cl_int clEnqueueReadBuffer(
			cl_command_queue command_queue,
			cl_mem buf, cl_bool blocking_read,
			size_t offset, size_t size, void *ptr,
			cl_uint num_events_in_wait_list,
			const cl_event *event_wait_list, cl_event *event);
	`
	api, err := ParseNoValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	notes := Infer(api)
	fn := api.Func("clEnqueueReadBuffer")

	// Figure 4's commentary: event_wait_list inferred input buffer (const
	// pointer) sized by num_events_in_wait_list; event inferred as a
	// freshly allocated single-element output handle.
	ewl := fn.Param("event_wait_list")
	if ewl.Dir != DirIn || !ewl.IsBuffer {
		t.Fatalf("event_wait_list = %+v", ewl)
	}
	if ewl.SizeExpr.String() != "num_events_in_wait_list" {
		t.Fatalf("event_wait_list size = %s", ewl.SizeExpr)
	}
	ev := fn.Param("event")
	if ev.Dir != DirOut || !ev.IsElement || !ev.Allocates {
		t.Fatalf("event = %+v", ev)
	}
	// void *ptr: inferred output buffer sized by the "size" sibling.
	ptr := fn.Param("ptr")
	if ptr.Dir != DirOut || !ptr.IsBuffer || ptr.SizeExpr.String() != "size" {
		t.Fatalf("ptr = %+v", ptr)
	}
	// The inferred spec must validate as-is.
	if err := Validate(api); err != nil {
		t.Fatalf("inferred spec invalid: %v", err)
	}
	for _, n := range notes {
		if n.NeedsReview {
			t.Errorf("unexpected review note: %v", n)
		}
	}
}

func TestInferConstCharString(t *testing.T) {
	api, err := ParseNoValidate(`void log_msg(const char *msg);`)
	if err != nil {
		t.Fatal(err)
	}
	Infer(api)
	p := api.Func("log_msg").Param("msg")
	if p.Dir != DirIn || p.IsBuffer {
		t.Fatalf("msg = %+v", p)
	}
}

func TestInferScalarOutPointer(t *testing.T) {
	api, err := ParseNoValidate(`void get_count(int32_t *count);`)
	if err != nil {
		t.Fatal(err)
	}
	Infer(api)
	p := api.Func("get_count").Param("count")
	if p.Dir != DirOut || !p.IsElement || p.Allocates {
		t.Fatalf("count = %+v", p)
	}
}

func TestInferUnresolvedSizeNeedsReview(t *testing.T) {
	api, err := ParseNoValidate(`void write_all(const uint8_t *data);`)
	if err != nil {
		t.Fatal(err)
	}
	notes := Infer(api)
	found := false
	for _, n := range notes {
		if n.NeedsReview && n.Param == "data" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no review note for unsized buffer; notes = %v", notes)
	}
}

func TestInferAsyncEligibilityNote(t *testing.T) {
	api, err := ParseNoValidate(`
		const OK = 0;
		type st = int32_t { success(OK); };
		handle krn;
		st setArg(krn k, uint32_t idx, uint64_t value);
	`)
	if err != nil {
		t.Fatal(err)
	}
	notes := Infer(api)
	found := false
	for _, n := range notes {
		if n.Func == "setArg" && strings.Contains(n.Msg, "async") {
			found = true
		}
	}
	if !found {
		t.Fatalf("async eligibility not noted: %v", notes)
	}
}

func TestInferDoesNotOverrideAnnotations(t *testing.T) {
	api, err := ParseNoValidate(`
		void f(const int32_t *a, size_t a_size) {
			parameter(a) { inout; buffer(2); }
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	Infer(api)
	p := api.Func("f").Param("a")
	if p.Dir != DirInOut || p.SizeExpr.String() != "2" {
		t.Fatalf("explicit annotation overridden: %+v", p)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	api := mustParse(t, figure4)
	text := Print(api)
	api2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	text2 := Print(api2)
	if text != text2 {
		t.Fatalf("print not idempotent:\n--- first\n%s\n--- second\n%s", text, text2)
	}
	fn := api2.Func("clEnqueueReadBuffer")
	if fn == nil || fn.Sync.Mode != SyncConditional {
		t.Fatal("semantics lost in round trip")
	}
}

func TestPrintBareSimpleFunction(t *testing.T) {
	api := mustParse(t, `int32_t f(int32_t a);`)
	out := Print(api)
	if strings.Contains(out, "{") {
		t.Fatalf("simple function printed with a body:\n%s", out)
	}
}

func TestPrintInferredSpecValidates(t *testing.T) {
	// Workflow test: bare header -> Infer -> Print -> Parse (validating).
	src := `
		handle dev;
		const OK = 0;
		type st = int32_t { success(OK); };
		st dev_write(dev d, const uint8_t *data, size_t data_size);
		st dev_read(dev d, uint8_t *out, size_t out_size) {
			parameter(out) { out; buffer(out_size); }
		}
	`
	api, err := ParseNoValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	Infer(api)
	printed := Print(api)
	if _, err := Parse(printed); err != nil {
		t.Fatalf("printed inferred spec does not validate: %v\n%s", err, printed)
	}
}

func TestFuncLookupHelpers(t *testing.T) {
	api := mustParse(t, figure4)
	fn := api.Func("clEnqueueReadBuffer")
	if fn.ParamIndex("size") != 4 {
		t.Fatalf("ParamIndex(size) = %d", fn.ParamIndex("size"))
	}
	if fn.ParamIndex("ghost") != -1 || fn.Param("ghost") != nil {
		t.Fatal("ghost parameter found")
	}
	if api.Func("ghost") != nil {
		t.Fatal("ghost function found")
	}
	names := api.ConstNames()
	if len(names) != 2 || names[0] != "CL_SUCCESS" {
		t.Fatalf("const names = %v", names)
	}
}

func TestDirectionAndKindStrings(t *testing.T) {
	for _, d := range []Direction{DirDefault, DirIn, DirOut, DirInOut, Direction(9)} {
		if d.String() == "" {
			t.Errorf("empty Direction string")
		}
	}
	for _, k := range []BaseKind{KindVoid, KindBool, KindInt, KindUint, KindFloat, KindHandle, KindString, BaseKind(9)} {
		if k.String() == "" {
			t.Errorf("empty BaseKind string")
		}
	}
	for _, k := range []TrackKind{TrackNone, TrackConfig, TrackCreate, TrackDestroy, TrackModify, TrackKind(9)} {
		if k.String() == "" {
			t.Errorf("empty TrackKind string")
		}
	}
}

func TestTypeRefString(t *testing.T) {
	tr := TypeRef{Name: "cl_event", Stars: 1, Const: true}
	if tr.String() != "const cl_event*" {
		t.Fatalf("TypeRef.String() = %q", tr.String())
	}
}

func TestNoteString(t *testing.T) {
	n := Note{Func: "f", Param: "p", Msg: "m", NeedsReview: true}
	s := n.String()
	if !strings.Contains(s, "NEEDS REVIEW") || !strings.Contains(s, "f(p)") {
		t.Fatalf("note string = %q", s)
	}
}
