package spec

import "fmt"

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokString
	tokLParen // (
	tokRParen // )
	tokLBrace // {
	tokRBrace // }
	tokSemi   // ;
	tokComma  // ,
	tokStar   // *
	tokAssign // =
	tokEq     // ==
	tokNeq    // !=
	tokPlus   // +
	tokMinus  // -
	tokSlash  // /
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "EOF"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokSemi:
		return "';'"
	case tokComma:
		return "','"
	case tokStar:
		return "'*'"
	case tokAssign:
		return "'='"
	case tokEq:
		return "'=='"
	case tokNeq:
		return "'!='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokSlash:
		return "'/'"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

type token struct {
	kind tokKind
	pos  Pos
	text string // identifier text or string literal contents
	num  int64  // integer value
}

func (t token) String() string {
	switch t.kind {
	case tokIdent:
		return t.text
	case tokInt:
		return fmt.Sprintf("%d", t.num)
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.kind.String()
	}
}

// Error is a spec parse or validation error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("spec:%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
