package spec

import (
	"errors"
	"fmt"
	"strings"
)

// Validate checks the semantic consistency of a parsed specification:
// every type resolves, buffer annotations sit on pointer parameters, size
// and resource expressions reference only parameters and constants, sync
// conditions name scalar parameters, and track annotations name real
// object parameters. All problems are reported at once.
func Validate(api *API) error {
	var errs []string
	report := func(pos Pos, format string, args ...any) {
		errs = append(errs, errf(pos, format, args...).Error())
	}

	for _, name := range api.typeOrder {
		td := api.Types[name]
		if _, err := api.Resolve(name); err != nil {
			report(td.Pos, "type %s: %v", name, err)
		}
		if td.Success != nil {
			if err := checkExpr(api, nil, td.Success); err != nil {
				report(td.Pos, "type %s success value: %v", name, err)
			}
		}
	}

	for _, fn := range api.Funcs {
		validateFunc(api, fn, report)
	}

	if len(errs) == 0 {
		return nil
	}
	return errors.New(strings.Join(errs, "\n"))
}

func validateFunc(api *API, fn *Func, report func(Pos, string, ...any)) {
	if _, err := api.Resolve(fn.Ret.Name); err != nil {
		report(fn.Pos, "%s: return type: %v", fn.Name, err)
	}
	if fn.Ret.Stars > 0 && fn.Ret.Name != "char" {
		rt, err := api.Resolve(fn.Ret.Name)
		if err == nil && rt.Kind != KindHandle && rt.Kind != KindVoid {
			report(fn.Pos, "%s: pointer return types other than handles are not remotable", fn.Name)
		}
	}

	seen := map[string]bool{}
	for _, prm := range fn.Params {
		if seen[prm.Name] {
			report(prm.Pos, "%s: duplicate parameter %q", fn.Name, prm.Name)
		}
		seen[prm.Name] = true
		validateParam(api, fn, prm, report)
	}

	switch fn.Sync.Mode {
	case SyncConditional:
		cp := fn.Param(fn.Sync.CondParam)
		if cp == nil {
			report(fn.Pos, "%s: sync condition references unknown parameter %q", fn.Name, fn.Sync.CondParam)
		} else if cp.Type.Stars > 0 {
			report(cp.Pos, "%s: sync condition parameter %q must be scalar", fn.Name, cp.Name)
		}
		if err := checkExpr(api, fn, fn.Sync.CondValue); err != nil {
			report(fn.Pos, "%s: sync condition: %v", fn.Name, err)
		}
	case AsyncAlways:
		// An always-async call must not have synchronous outputs the caller
		// can observe: output buffers are permitted only when the spec also
		// declares a success value (errors are deferred, §4.2), and the
		// call must not return data other than a status code.
		if _, ok := api.SuccessValue(fn); !ok {
			rt, err := api.Resolve(fn.Ret.Name)
			if err == nil && rt.Kind != KindVoid {
				report(fn.Pos, "%s: async function's return type %s declares no success value", fn.Name, fn.Ret.Name)
			}
		}
	}

	for _, res := range fn.Resources {
		if err := checkExpr(api, fn, res.Amount); err != nil {
			report(res.Pos, "%s: resource(%s): %v", fn.Name, res.Resource, err)
		}
	}

	switch fn.Track.Kind {
	case TrackCreate:
		if fn.Track.Param != "" {
			prm := fn.Param(fn.Track.Param)
			if prm == nil {
				report(fn.Pos, "%s: track(create, %s): no such parameter", fn.Name, fn.Track.Param)
			} else if !isHandleParam(api, prm) {
				report(prm.Pos, "%s: track(create, %s): parameter is not an object handle", fn.Name, fn.Track.Param)
			}
		} else {
			rt, err := api.Resolve(fn.Ret.Name)
			if err != nil || rt.Kind != KindHandle {
				report(fn.Pos, "%s: track(create) without a parameter requires a handle return type", fn.Name)
			}
		}
	case TrackDestroy, TrackModify:
		if fn.Track.Param == "" {
			report(fn.Pos, "%s: track(%s) requires an object parameter", fn.Name, fn.Track.Kind)
		} else if fn.Param(fn.Track.Param) == nil {
			report(fn.Pos, "%s: track(%s, %s): no such parameter", fn.Name, fn.Track.Kind, fn.Track.Param)
		}
	}
}

func isHandleParam(api *API, prm *Param) bool {
	rt, err := api.Resolve(prm.Type.Name)
	return err == nil && rt.Kind == KindHandle
}

func validateParam(api *API, fn *Func, prm *Param, report func(Pos, string, ...any)) {
	rt, err := api.Resolve(prm.Type.Name)
	if err != nil {
		report(prm.Pos, "%s(%s): %v", fn.Name, prm.Name, err)
		return
	}
	if prm.Type.Stars > 1 {
		report(prm.Pos, "%s(%s): pointer depth %d is not supported (flatten the API)", fn.Name, prm.Name, prm.Type.Stars)
	}
	if prm.Type.Stars == 0 {
		if rt.Kind == KindVoid {
			report(prm.Pos, "%s(%s): void is not a value type", fn.Name, prm.Name)
		}
		if prm.IsBuffer || prm.IsElement {
			report(prm.Pos, "%s(%s): buffer/element annotation on a scalar parameter", fn.Name, prm.Name)
		}
		if prm.Dir == DirOut || prm.Dir == DirInOut {
			report(prm.Pos, "%s(%s): out annotation on a by-value parameter", fn.Name, prm.Name)
		}
		return
	}

	// Pointer parameter.
	if prm.IsBuffer && prm.IsElement {
		report(prm.Pos, "%s(%s): both buffer and element", fn.Name, prm.Name)
	}
	if prm.IsBuffer && prm.SizeExpr == nil {
		report(prm.Pos, "%s(%s): buffer annotation requires a size expression", fn.Name, prm.Name)
	}
	if prm.SizeExpr != nil {
		if err := checkExpr(api, fn, prm.SizeExpr); err != nil {
			report(prm.Pos, "%s(%s): buffer size: %v", fn.Name, prm.Name, err)
		}
	}
	if prm.Allocates {
		if rt.Kind != KindHandle {
			report(prm.Pos, "%s(%s): allocates requires a handle element type", fn.Name, prm.Name)
		}
		if prm.Dir != DirOut && prm.Dir != DirInOut {
			report(prm.Pos, "%s(%s): allocates requires an out direction", fn.Name, prm.Name)
		}
	}
	if prm.Type.Const && (prm.Dir == DirOut || prm.Dir == DirInOut) {
		report(prm.Pos, "%s(%s): const pointer cannot be an output", fn.Name, prm.Name)
	}
	isCharString := prm.Type.Name == "char" && prm.Type.Const && prm.Type.Stars == 1
	if !prm.IsBuffer && !prm.IsElement && rt.Kind != KindString && !isCharString {
		report(prm.Pos, "%s(%s): pointer parameter needs a buffer(...) or element annotation", fn.Name, prm.Name)
	}
}

// checkExpr verifies that e references only fn's scalar parameters and the
// API's constants (fn may be nil for type-level expressions).
func checkExpr(api *API, fn *Func, e Expr) error {
	refs := map[string]bool{}
	exprRefs(e, refs)
	for name := range refs {
		if fn != nil {
			if prm := fn.Param(name); prm != nil {
				if prm.Type.Stars > 0 {
					return fmt.Errorf("expression references pointer parameter %q", name)
				}
				continue
			}
		}
		if _, ok := api.Const(name); ok {
			continue
		}
		return fmt.Errorf("expression references unknown identifier %q", name)
	}
	// Sizeof operands must resolve.
	return checkSizeofs(api, e)
}

func checkSizeofs(api *API, e Expr) error {
	switch n := e.(type) {
	case *Sizeof:
		if _, err := api.ElemSize(n.TypeName); err != nil {
			return err
		}
	case *Binary:
		if err := checkSizeofs(api, n.L); err != nil {
			return err
		}
		return checkSizeofs(api, n.R)
	}
	return nil
}
