package spec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randAPI generates a random but well-formed specification: a mix of
// handles, constants, alias types and functions with random parameter
// shapes and annotations. Used to property-test the printer/parser/
// validator pipeline far beyond the hand-written specs.
func randAPI(r *rand.Rand) string {
	var b strings.Builder
	fmt.Fprintf(&b, "api \"rand%d\" version \"%d.%d\";\n", r.Intn(100), r.Intn(9), r.Intn(9))

	nHandles := 1 + r.Intn(3)
	for i := 0; i < nHandles; i++ {
		fmt.Fprintf(&b, "handle h%d;\n", i)
	}
	fmt.Fprintf(&b, "const OK = 0;\nconst MAGIC = %d;\n", r.Intn(1000)+1)
	b.WriteString("type st = int32_t { success(OK); };\n")

	scalarTypes := []string{"uint32_t", "uint64_t", "int32_t", "size_t", "double", "bool"}
	nFuncs := 1 + r.Intn(6)
	for i := 0; i < nFuncs; i++ {
		var params []string
		var anns []string
		nParams := r.Intn(5)
		var scalars []string
		// Always have one size-ish scalar available for buffers.
		params = append(params, "size_t size")
		scalars = append(scalars, "size")
		for j := 0; j < nParams; j++ {
			name := fmt.Sprintf("p%d", j)
			switch r.Intn(5) {
			case 0: // scalar
				ty := scalarTypes[r.Intn(len(scalarTypes))]
				params = append(params, ty+" "+name)
				if ty != "double" && ty != "bool" {
					scalars = append(scalars, name)
				}
			case 1: // handle by value
				params = append(params, fmt.Sprintf("h%d %s", r.Intn(nHandles), name))
			case 2: // in buffer sized by an existing scalar
				params = append(params, "const void *"+name)
				anns = append(anns, fmt.Sprintf("parameter(%s) { in; buffer(%s); }", name, scalars[r.Intn(len(scalars))]))
			case 3: // out buffer
				params = append(params, "void *"+name)
				anns = append(anns, fmt.Sprintf("parameter(%s) { out; buffer(size); }", name))
			default: // out element (scalar or allocated handle)
				if r.Intn(2) == 0 {
					params = append(params, "uint64_t *"+name)
					anns = append(anns, fmt.Sprintf("parameter(%s) { out; element; }", name))
				} else {
					params = append(params, fmt.Sprintf("h%d *%s", r.Intn(nHandles), name))
					anns = append(anns, fmt.Sprintf("parameter(%s) { out; element { allocates; } }", name))
				}
			}
		}
		// Synchrony: sync, async (only if no out params), or conditional
		// on a scalar.
		hasOut := false
		for _, a := range anns {
			if strings.Contains(a, "out;") {
				hasOut = true
			}
		}
		switch r.Intn(3) {
		case 0:
			if !hasOut {
				anns = append(anns, "async;")
			}
		case 1:
			anns = append(anns, fmt.Sprintf("if (%s == MAGIC) sync; else async;", scalars[r.Intn(len(scalars))]))
		}
		if r.Intn(3) == 0 {
			anns = append(anns, fmt.Sprintf("resource(bandwidth, %s);", scalars[r.Intn(len(scalars))]))
		}
		fmt.Fprintf(&b, "st f%d(%s)", i, strings.Join(params, ", "))
		if len(anns) == 0 {
			b.WriteString(";\n")
		} else {
			fmt.Fprintf(&b, " {\n  %s\n}\n", strings.Join(anns, "\n  "))
		}
	}
	return b.String()
}

// Property: every generated spec parses, validates, prints to a canonical
// fixed point, and the reparsed form is structurally identical.
func TestQuickRandomSpecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		src := randAPI(rand.New(rand.NewSource(seed)))
		api, err := Parse(src)
		if err != nil {
			t.Logf("seed %d: parse: %v\n%s", seed, err, src)
			return false
		}
		printed := Print(api)
		api2, err := Parse(printed)
		if err != nil {
			t.Logf("seed %d: reparse: %v\n%s", seed, err, printed)
			return false
		}
		printed2 := Print(api2)
		if printed != printed2 {
			t.Logf("seed %d: print not a fixed point", seed)
			return false
		}
		if len(api.Funcs) != len(api2.Funcs) {
			return false
		}
		for i, fn := range api.Funcs {
			fn2 := api2.Funcs[i]
			if fn.Name != fn2.Name || len(fn.Params) != len(fn2.Params) ||
				fn.Sync.Mode != fn2.Sync.Mode || len(fn.Resources) != len(fn2.Resources) {
				return false
			}
			for j, p := range fn.Params {
				q := fn2.Params[j]
				if p.Name != q.Name || p.Dir != q.Dir || p.IsBuffer != q.IsBuffer ||
					p.IsElement != q.IsElement || p.Allocates != q.Allocates {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: inference over stripped (annotation-free) versions of random
// declarations never panics and always yields a printable spec.
func TestQuickInferNeverPanics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b strings.Builder
		b.WriteString("handle h0;\nconst OK = 0;\ntype st = int32_t { success(OK); };\n")
		for i := 0; i < 1+r.Intn(4); i++ {
			kinds := []string{
				"st g%d(uint32_t a, h0 x);",
				"st g%d(const uint8_t *data, size_t data_size);",
				"st g%d(h0 *out);",
				"st g%d(uint64_t *value);",
				"st g%d(const char *name);",
				"st g%d(void *buf, size_t size);",
			}
			fmt.Fprintf(&b, kinds[r.Intn(len(kinds))]+"\n", i)
		}
		api, err := ParseNoValidate(b.String())
		if err != nil {
			return false
		}
		Infer(api)
		out := Print(api)
		_, err = Parse(out)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
