package spec

// Parse parses a complete CAvA specification.
//
// Grammar (see package doc and the paper's Figure 4):
//
//	spec       = { decl } .
//	decl       = apiDecl | typeDecl | handleDecl | constDecl | funcDecl .
//	apiDecl    = "api" STRING [ "version" STRING ] ";" .
//	typeDecl   = "type" IDENT "=" IDENT [ "{" "success" "(" expr ")" ";" "}" ] [";"] .
//	handleDecl = "handle" IDENT ";" .
//	constDecl  = "const" IDENT "=" ["-"] INT ";" .
//	funcDecl   = typeRef IDENT "(" [ param { "," param } ] ")" ( ";" | body ) .
//	param      = ["const"] typeRef IDENT .
//	typeRef    = IDENT { "*" } .
//	body       = "{" { stmt } "}" .
//	stmt       = ("sync"|"async") ";"
//	           | "if" "(" IDENT ("=="|"!=") expr ")" stmt "else" stmt
//	           | "parameter" "(" IDENT ")" "{" { pAnn } "}"
//	           | "resource" "(" IDENT "," expr ")" ";"
//	           | "track" "(" IDENT [ "," IDENT ] ")" ";" .
//	pAnn       = ("in"|"out"|"inout"|"allocates"|"deallocates") ";"
//	           | "buffer" "(" expr ")" ";"
//	           | "element" [ "{" { pAnn } "}" ] ";"? .
//	expr       = term { ("+"|"-") term } .
//	term       = factor { ("*"|"/") factor } .
//	factor     = INT | IDENT | "sizeof" "(" IDENT ")" | "(" expr ")" .
func Parse(src string) (*API, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	api := NewAPI("")
	for p.tok.kind != tokEOF {
		if err := p.parseDecl(api); err != nil {
			return nil, err
		}
	}
	if err := Validate(api); err != nil {
		return nil, err
	}
	return api, nil
}

// ParseNoValidate parses without running semantic validation; used by the
// inference pass, which deliberately accepts incomplete annotations.
func ParseNoValidate(src string) (*API, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	api := NewAPI("")
	for p.tok.kind != tokEOF {
		if err := p.parseDecl(api); err != nil {
			return nil, err
		}
	}
	return api, nil
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.tok.kind != k {
		return token{}, errf(p.tok.pos, "expected %s, found %s", k, p.tok)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) expectIdent(word string) error {
	if p.tok.kind != tokIdent || p.tok.text != word {
		return errf(p.tok.pos, "expected %q, found %s", word, p.tok)
	}
	return p.advance()
}

func (p *parser) atIdent(word string) bool {
	return p.tok.kind == tokIdent && p.tok.text == word
}

func (p *parser) parseDecl(api *API) error {
	if p.tok.kind != tokIdent {
		return errf(p.tok.pos, "expected declaration, found %s", p.tok)
	}
	switch p.tok.text {
	case "api":
		return p.parseAPIDecl(api)
	case "type":
		return p.parseTypeDecl(api)
	case "handle":
		return p.parseHandleDecl(api)
	case "const":
		// Could be `const T* p` only inside parameter lists; at top level
		// `const` always begins a constant declaration.
		return p.parseConstDecl(api)
	default:
		return p.parseFuncDecl(api)
	}
}

func (p *parser) parseAPIDecl(api *API) error {
	if err := p.advance(); err != nil { // consume "api"
		return err
	}
	name, err := p.expect(tokString)
	if err != nil {
		return err
	}
	api.Name = name.text
	if p.atIdent("version") {
		if err := p.advance(); err != nil {
			return err
		}
		v, err := p.expect(tokString)
		if err != nil {
			return err
		}
		api.Version = v.text
	}
	_, err = p.expect(tokSemi)
	return err
}

func (p *parser) parseTypeDecl(api *API) error {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume "type"
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return err
	}
	base, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	td := &TypeDecl{Name: name.text, Base: base.text, Pos: pos}
	if p.tok.kind == tokLBrace {
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expectIdent("success"); err != nil {
			return err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return err
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		td.Success = e
		if _, err := p.expect(tokRParen); err != nil {
			return err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return err
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return err
		}
	}
	if p.tok.kind == tokSemi {
		if err := p.advance(); err != nil {
			return err
		}
	}
	if _, dup := api.Types[td.Name]; dup {
		return errf(pos, "type %q redeclared", td.Name)
	}
	api.Types[td.Name] = td
	api.typeOrder = append(api.typeOrder, td.Name)
	return nil
}

func (p *parser) parseHandleDecl(api *API) error {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume "handle"
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	if _, dup := api.Handles[name.text]; dup {
		return errf(pos, "handle %q redeclared", name.text)
	}
	api.Handles[name.text] = &HandleDecl{Name: name.text, Pos: pos}
	api.handleOrder = append(api.handleOrder, name.text)
	return nil
}

func (p *parser) parseConstDecl(api *API) error {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume "const"
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return err
	}
	neg := false
	if p.tok.kind == tokMinus {
		neg = true
		if err := p.advance(); err != nil {
			return err
		}
	}
	val, err := p.expect(tokInt)
	if err != nil {
		return err
	}
	v := val.num
	if neg {
		v = -v
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	if _, dup := api.Consts[name.text]; dup {
		return errf(pos, "const %q redeclared", name.text)
	}
	api.Consts[name.text] = &ConstDecl{Name: name.text, Value: v, Pos: pos}
	api.constOrder = append(api.constOrder, name.text)
	return nil
}

func (p *parser) parseTypeRef() (TypeRef, error) {
	var tr TypeRef
	if p.atIdent("const") {
		tr.Const = true
		if err := p.advance(); err != nil {
			return tr, err
		}
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return tr, err
	}
	tr.Name = name.text
	for p.tok.kind == tokStar {
		tr.Stars++
		if err := p.advance(); err != nil {
			return tr, err
		}
	}
	return tr, nil
}

func (p *parser) parseFuncDecl(api *API) error {
	pos := p.tok.pos
	ret, err := p.parseTypeRef()
	if err != nil {
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	fn := &Func{Name: name.text, Ret: ret, Pos: pos}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	if p.tok.kind != tokRParen {
		// `void` alone means an empty parameter list, C-style.
		if p.atIdent("void") {
			save := p.tok
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokRParen {
				// It was a `void*` parameter after all; rewind is not
				// possible with a one-token lexer, so parse the remainder
				// of the parameter from here.
				tr := TypeRef{Name: save.text}
				for p.tok.kind == tokStar {
					tr.Stars++
					if err := p.advance(); err != nil {
						return err
					}
				}
				pn, err := p.expect(tokIdent)
				if err != nil {
					return err
				}
				fn.Params = append(fn.Params, &Param{Name: pn.text, Type: tr, Pos: save.pos})
				for p.tok.kind == tokComma {
					if err := p.advance(); err != nil {
						return err
					}
					prm, err := p.parseParam()
					if err != nil {
						return err
					}
					fn.Params = append(fn.Params, prm)
				}
			}
		} else {
			for {
				prm, err := p.parseParam()
				if err != nil {
					return err
				}
				fn.Params = append(fn.Params, prm)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return err
				}
			}
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	switch p.tok.kind {
	case tokSemi:
		if err := p.advance(); err != nil {
			return err
		}
	case tokLBrace:
		if err := p.parseFuncBody(fn); err != nil {
			return err
		}
	default:
		return errf(p.tok.pos, "expected ';' or annotation body after %s(...), found %s", fn.Name, p.tok)
	}
	for _, existing := range api.Funcs {
		if existing.Name == fn.Name {
			return errf(pos, "function %q redeclared", fn.Name)
		}
	}
	api.Funcs = append(api.Funcs, fn)
	return nil
}

func (p *parser) parseParam() (*Param, error) {
	pos := p.tok.pos
	tr, err := p.parseTypeRef()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	return &Param{Name: name.text, Type: tr, Pos: pos}, nil
}

func (p *parser) parseFuncBody(fn *Func) error {
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.tok.kind != tokRBrace {
		if err := p.parseStmt(fn); err != nil {
			return err
		}
	}
	return p.advance() // consume '}'
}

func (p *parser) parseStmt(fn *Func) error {
	if p.tok.kind != tokIdent {
		return errf(p.tok.pos, "expected annotation, found %s", p.tok)
	}
	switch p.tok.text {
	case "sync":
		fn.Sync = SyncSpec{Mode: SyncAlways}
		if err := p.advance(); err != nil {
			return err
		}
		_, err := p.expect(tokSemi)
		return err
	case "async":
		fn.Sync = SyncSpec{Mode: AsyncAlways}
		if err := p.advance(); err != nil {
			return err
		}
		_, err := p.expect(tokSemi)
		return err
	case "if":
		return p.parseIfSync(fn)
	case "parameter":
		return p.parseParameterAnn(fn)
	case "resource":
		return p.parseResourceAnn(fn)
	case "track":
		return p.parseTrackAnn(fn)
	default:
		return errf(p.tok.pos, "unknown annotation %q", p.tok.text)
	}
}

// parseIfSync handles `if (param == CONST) sync; else async;` and the
// negated / swapped variants.
func (p *parser) parseIfSync(fn *Func) error {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume "if"
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	param, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	negate := false
	switch p.tok.kind {
	case tokEq:
	case tokNeq:
		negate = true
	default:
		return errf(p.tok.pos, "expected '==' or '!=', found %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return err
	}
	value, err := p.parseExpr()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	thenSync, err := p.parseSyncWord()
	if err != nil {
		return err
	}
	if err := p.expectIdent("else"); err != nil {
		return err
	}
	elseSync, err := p.parseSyncWord()
	if err != nil {
		return err
	}
	if thenSync == elseSync {
		return errf(pos, "conditional synchrony with identical branches")
	}
	// Normalize so that the condition being true means sync.
	if !thenSync {
		negate = !negate
	}
	fn.Sync = SyncSpec{
		Mode:      SyncConditional,
		CondParam: param.text,
		CondValue: value,
		Negate:    negate,
	}
	return nil
}

func (p *parser) parseSyncWord() (bool, error) {
	var sync bool
	switch {
	case p.atIdent("sync"):
		sync = true
	case p.atIdent("async"):
		sync = false
	default:
		return false, errf(p.tok.pos, "expected 'sync' or 'async', found %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return false, err
	}
	_, err := p.expect(tokSemi)
	return sync, err
}

func (p *parser) parseParameterAnn(fn *Func) error {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume "parameter"
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	prm := fn.Param(name.text)
	if prm == nil {
		return errf(pos, "parameter(%s): no such parameter on %s", name.text, fn.Name)
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.tok.kind != tokRBrace {
		if err := p.parseParamAnnItem(prm); err != nil {
			return err
		}
	}
	return p.advance() // consume '}'
}

func (p *parser) parseParamAnnItem(prm *Param) error {
	if p.tok.kind != tokIdent {
		return errf(p.tok.pos, "expected parameter annotation, found %s", p.tok)
	}
	word := p.tok.text
	pos := p.tok.pos
	if err := p.advance(); err != nil {
		return err
	}
	switch word {
	case "in":
		prm.Dir = DirIn
	case "out":
		prm.Dir = DirOut
	case "inout":
		prm.Dir = DirInOut
	case "allocates":
		prm.Allocates = true
	case "deallocates":
		prm.Deallocates = true
	case "buffer":
		if _, err := p.expect(tokLParen); err != nil {
			return err
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return err
		}
		prm.IsBuffer = true
		prm.SizeExpr = e
	case "element":
		prm.IsElement = true
		if p.tok.kind == tokLBrace {
			if err := p.advance(); err != nil {
				return err
			}
			for p.tok.kind != tokRBrace {
				if err := p.parseParamAnnItem(prm); err != nil {
					return err
				}
			}
			if err := p.advance(); err != nil {
				return err
			}
			// `element { ... }` needs no trailing semicolon, but accept one.
			if p.tok.kind == tokSemi {
				return p.advance()
			}
			return nil
		}
	default:
		return errf(pos, "unknown parameter annotation %q", word)
	}
	_, err := p.expect(tokSemi)
	return err
}

func (p *parser) parseResourceAnn(fn *Func) error {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume "resource"
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokComma); err != nil {
		return err
	}
	e, err := p.parseExpr()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	fn.Resources = append(fn.Resources, ResourceAnn{Resource: name.text, Amount: e, Pos: pos})
	return nil
}

func (p *parser) parseTrackAnn(fn *Func) error {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume "track"
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	kind, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	var k TrackKind
	switch kind.text {
	case "config":
		k = TrackConfig
	case "create":
		k = TrackCreate
	case "destroy":
		k = TrackDestroy
	case "modify":
		k = TrackModify
	default:
		return errf(pos, "unknown track kind %q (want config/create/destroy/modify)", kind.text)
	}
	ta := TrackAnn{Kind: k}
	if p.tok.kind == tokComma {
		if err := p.advance(); err != nil {
			return err
		}
		prm, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		ta.Param = prm.text
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	if fn.Track.Kind != TrackNone {
		return errf(pos, "function %s has multiple track annotations", fn.Name)
	}
	fn.Track = ta
	return nil
}

func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPlus || p.tok.kind == tokMinus {
		op := byte('+')
		if p.tok.kind == tokMinus {
			op = '-'
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokStar || p.tok.kind == tokSlash {
		op := byte('*')
		if p.tok.kind == tokSlash {
			op = '/'
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseFactor() (Expr, error) {
	switch p.tok.kind {
	case tokInt:
		v := p.tok.num
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &IntLit{Value: v}, nil
	case tokIdent:
		if p.tok.text == "sizeof" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			tn, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return &Sizeof{TypeName: tn.text}, nil
		}
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Ref{Name: name}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errf(p.tok.pos, "expected expression, found %s", p.tok)
	}
}
