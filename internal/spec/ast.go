// Package spec implements the CAvA declarative API specification language.
//
// A specification embeds C-like function declarations and augments them with
// the annotations from the paper's Figure 4: synchrony (sync / async /
// conditional on an argument), parameter directions and buffer sizes,
// single-element output pointers whose element is freshly allocated, resource
// usage estimates for the hypervisor scheduler, and object-tracking
// annotations that drive record/replay migration. The package provides the
// lexer, parser, semantic validation, the inference pass that produces a
// preliminary specification from bare declarations (the step CAvA performs
// on an unannotated header), an expression evaluator used at call time to
// compute buffer sizes and resource estimates, and a canonical printer.
package spec

import (
	"fmt"
	"sort"
)

// BaseKind enumerates the primitive kinds a type resolves to.
type BaseKind uint8

// Primitive kinds.
const (
	KindVoid BaseKind = iota
	KindBool
	KindInt    // signed integer of Size bytes
	KindUint   // unsigned integer of Size bytes
	KindFloat  // IEEE float of Size bytes
	KindHandle // opaque object handle
	KindString // NUL-terminated char* treated as a value
)

func (k BaseKind) String() string {
	switch k {
	case KindVoid:
		return "void"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindUint:
		return "uint"
	case KindFloat:
		return "float"
	case KindHandle:
		return "handle"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("base(%d)", uint8(k))
	}
}

// builtin describes a predeclared type.
type builtin struct {
	kind BaseKind
	size int
}

// builtins maps the predeclared type names of the spec language.
var builtins = map[string]builtin{
	"void":     {KindVoid, 0},
	"bool":     {KindBool, 1},
	"char":     {KindInt, 1},
	"int8_t":   {KindInt, 1},
	"int16_t":  {KindInt, 2},
	"int32_t":  {KindInt, 4},
	"int64_t":  {KindInt, 8},
	"int":      {KindInt, 4},
	"long":     {KindInt, 8},
	"uint8_t":  {KindUint, 1},
	"uint16_t": {KindUint, 2},
	"uint32_t": {KindUint, 4},
	"uint64_t": {KindUint, 8},
	"size_t":   {KindUint, 8},
	"float":    {KindFloat, 4},
	"double":   {KindFloat, 8},
	"string":   {KindString, 0},
}

// ResolvedType is the fully resolved meaning of a type name.
type ResolvedType struct {
	Name string
	Kind BaseKind
	Size int // element size in bytes; 1 for void buffers, 8 for handles
}

// TypeRef is a type as written at a use site.
type TypeRef struct {
	Name  string
	Stars int  // pointer depth
	Const bool // const-qualified pointee
}

func (t TypeRef) String() string {
	s := ""
	if t.Const {
		s = "const "
	}
	s += t.Name
	for i := 0; i < t.Stars; i++ {
		s += "*"
	}
	return s
}

// TypeDecl is `type name = base { success(V); }`.
type TypeDecl struct {
	Name    string
	Base    string
	Success Expr // optional: value meaning success for this return type
	Pos     Pos
}

// HandleDecl is `handle name;`, declaring an opaque object type.
type HandleDecl struct {
	Name string
	Pos  Pos
}

// ConstDecl is `const NAME = value;`.
type ConstDecl struct {
	Name  string
	Value int64
	Pos   Pos
}

// Direction of a parameter with respect to the forwarded call.
type Direction uint8

// Parameter directions.
const (
	DirDefault Direction = iota // scalar by-value, or unannotated pointer
	DirIn
	DirOut
	DirInOut
)

func (d Direction) String() string {
	switch d {
	case DirDefault:
		return "default"
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	case DirInOut:
		return "inout"
	default:
		return fmt.Sprintf("dir(%d)", uint8(d))
	}
}

// Param is one function parameter plus its annotations.
type Param struct {
	Name string
	Type TypeRef
	Pos  Pos

	Dir         Direction
	IsBuffer    bool // pointer to SizeExpr elements
	SizeExpr    Expr // element count for buffers
	IsElement   bool // pointer to exactly one element
	Allocates   bool // element written by the call is a freshly allocated object
	Deallocates bool // the call releases the object passed here
	Inferred    bool // annotation produced by Infer, not the developer
}

// SyncMode describes how a call is forwarded.
type SyncMode uint8

// Forwarding modes.
const (
	SyncAlways SyncMode = iota
	AsyncAlways
	SyncConditional // sync iff CondParam == CondValue (or != if Negate)
)

// SyncSpec is the synchrony annotation for a function.
type SyncSpec struct {
	Mode      SyncMode
	CondParam string
	CondValue Expr
	Negate    bool
}

// ResourceAnn estimates consumption of a named resource (e.g. "bandwidth",
// "device_time") as an expression over the arguments; the router's scheduler
// consumes these (§4.3).
type ResourceAnn struct {
	Resource string
	Amount   Expr
	Pos      Pos
}

// TrackKind classifies a function for record/replay migration (§4.3).
type TrackKind uint8

// Tracking categories.
const (
	TrackNone    TrackKind = iota
	TrackConfig            // global configuration; always recorded
	TrackCreate            // allocates the object returned/output
	TrackDestroy           // releases the object in Param
	TrackModify            // mutates the object in Param; recorded
)

func (k TrackKind) String() string {
	switch k {
	case TrackNone:
		return "none"
	case TrackConfig:
		return "config"
	case TrackCreate:
		return "create"
	case TrackDestroy:
		return "destroy"
	case TrackModify:
		return "modify"
	default:
		return fmt.Sprintf("track(%d)", uint8(k))
	}
}

// TrackAnn is the migration-tracking annotation.
type TrackAnn struct {
	Kind  TrackKind
	Param string // object parameter for create/destroy/modify; "" = return value
}

// Func is one API function with its annotations.
type Func struct {
	Name      string
	Ret       TypeRef
	Params    []*Param
	Sync      SyncSpec
	Resources []ResourceAnn
	Track     TrackAnn
	Pos       Pos
}

// Param returns the named parameter, or nil.
func (f *Func) Param(name string) *Param {
	for _, p := range f.Params {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// ParamIndex returns the index of the named parameter, or -1.
func (f *Func) ParamIndex(name string) int {
	for i, p := range f.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// API is a parsed specification.
type API struct {
	Name    string
	Version string
	Types   map[string]*TypeDecl
	Handles map[string]*HandleDecl
	Consts  map[string]*ConstDecl
	Funcs   []*Func

	typeOrder   []string // declaration order, for the printer
	handleOrder []string
	constOrder  []string
}

// NewAPI returns an empty API with initialized tables.
func NewAPI(name string) *API {
	return &API{
		Name:    name,
		Types:   make(map[string]*TypeDecl),
		Handles: make(map[string]*HandleDecl),
		Consts:  make(map[string]*ConstDecl),
	}
}

// Func returns the named function, or nil.
func (a *API) Func(name string) *Func {
	for _, f := range a.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Const returns the value of a declared constant.
func (a *API) Const(name string) (int64, bool) {
	c, ok := a.Consts[name]
	if !ok {
		return 0, false
	}
	return c.Value, true
}

// ConstNames returns declared constant names, sorted.
func (a *API) ConstNames() []string {
	out := make([]string, 0, len(a.Consts))
	for n := range a.Consts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Resolve resolves a type name through alias chains to its primitive
// meaning. Handle types resolve to KindHandle with size 8.
func (a *API) Resolve(name string) (ResolvedType, error) {
	seen := map[string]bool{}
	cur := name
	for {
		if b, ok := builtins[cur]; ok {
			return ResolvedType{Name: name, Kind: b.kind, Size: b.size}, nil
		}
		if _, ok := a.Handles[cur]; ok {
			return ResolvedType{Name: name, Kind: KindHandle, Size: 8}, nil
		}
		td, ok := a.Types[cur]
		if !ok {
			return ResolvedType{}, fmt.Errorf("spec: unknown type %q", cur)
		}
		if seen[cur] {
			return ResolvedType{}, fmt.Errorf("spec: type alias cycle at %q", cur)
		}
		seen[cur] = true
		cur = td.Base
	}
}

// ElemSize returns the in-memory element size for a pointer to the named
// type; void pointees have element size 1 (byte buffers).
func (a *API) ElemSize(name string) (int, error) {
	rt, err := a.Resolve(name)
	if err != nil {
		return 0, err
	}
	if rt.Kind == KindVoid {
		return 1, nil
	}
	if rt.Size <= 0 {
		return 0, fmt.Errorf("spec: type %q has no element size", name)
	}
	return rt.Size, nil
}

// SuccessValue returns the declared success value for the function's return
// type, if any. Asynchronously forwarded calls report this value
// immediately (§4.2: "the return value from asynchronous calls returning the
// type cl_int is CL_SUCCESS").
func (a *API) SuccessValue(f *Func) (int64, bool) {
	td, ok := a.Types[f.Ret.Name]
	if !ok || td.Success == nil {
		return 0, false
	}
	v, err := EvalExpr(td.Success, a, nil)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Expr is a size/resource expression over parameters and constants.
type Expr interface {
	exprNode()
	String() string
}

// IntLit is an integer literal.
type IntLit struct{ Value int64 }

// Ref names a parameter or declared constant.
type Ref struct{ Name string }

// Sizeof is sizeof(typename).
type Sizeof struct{ TypeName string }

// Binary is a binary arithmetic expression.
type Binary struct {
	Op   byte // '*', '/', '+', '-'
	L, R Expr
}

func (*IntLit) exprNode() {}
func (*Ref) exprNode()    {}
func (*Sizeof) exprNode() {}
func (*Binary) exprNode() {}

func (e *IntLit) String() string { return fmt.Sprintf("%d", e.Value) }
func (e *Ref) String() string    { return e.Name }
func (e *Sizeof) String() string { return fmt.Sprintf("sizeof(%s)", e.TypeName) }
func (e *Binary) String() string {
	return fmt.Sprintf("(%s %c %s)", e.L.String(), e.Op, e.R.String())
}

// Env supplies parameter values for expression evaluation at call time.
type Env map[string]int64

// EvalExpr evaluates e. Identifier resolution order: call-time parameter
// environment, then declared constants.
func EvalExpr(e Expr, api *API, env Env) (int64, error) {
	if env == nil {
		return EvalExprWith(e, api, nil)
	}
	return EvalExprWith(e, api, func(name string) (int64, bool) {
		v, ok := env[name]
		return v, ok
	})
}

// EvalExprWith evaluates e resolving identifiers through lookup (then
// declared constants). The callback form lets hot paths avoid building an
// environment map per call.
func EvalExprWith(e Expr, api *API, lookup func(string) (int64, bool)) (int64, error) {
	switch n := e.(type) {
	case *IntLit:
		return n.Value, nil
	case *Ref:
		if lookup != nil {
			if v, ok := lookup(n.Name); ok {
				return v, nil
			}
		}
		if api != nil {
			if v, ok := api.Const(n.Name); ok {
				return v, nil
			}
		}
		return 0, fmt.Errorf("spec: unresolved identifier %q in expression", n.Name)
	case *Sizeof:
		if api == nil {
			return 0, fmt.Errorf("spec: sizeof(%s) requires an API context", n.TypeName)
		}
		sz, err := api.ElemSize(n.TypeName)
		if err != nil {
			return 0, err
		}
		return int64(sz), nil
	case *Binary:
		l, err := EvalExprWith(n.L, api, lookup)
		if err != nil {
			return 0, err
		}
		r, err := EvalExprWith(n.R, api, lookup)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case '*':
			return l * r, nil
		case '/':
			if r == 0 {
				return 0, fmt.Errorf("spec: division by zero in expression")
			}
			return l / r, nil
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		}
		return 0, fmt.Errorf("spec: unknown operator %q", string(n.Op))
	}
	return 0, fmt.Errorf("spec: unknown expression node %T", e)
}

// exprRefs collects parameter/constant names referenced by e.
func exprRefs(e Expr, out map[string]bool) {
	switch n := e.(type) {
	case *Ref:
		out[n.Name] = true
	case *Binary:
		exprRefs(n.L, out)
		exprRefs(n.R, out)
	}
}
